package amuletiso

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds and executes every program under
// examples/. The examples are package main and otherwise invisible to the
// test suite — this is the only thing keeping them compiling and running as
// the library underneath them evolves.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn the go tool; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	for _, name := range dirs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+filepath.Join("examples", name))
			// On timeout the context kills only the `go run` wrapper; the
			// example binary inherits the output pipes and would block
			// CombinedOutput forever without a bounded wait.
			cmd.WaitDelay = 10 * time.Second
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("examples/%s produced no output", name)
			}
		})
	}
}
