// Package amuletiso is a full reproduction, in pure Go, of
//
//	Hardin, Scott, Proctor, Hester, Sorber, Kotz.
//	"Application Memory Isolation on Ultra-Low-Power MCUs."
//	USENIX Annual Technical Conference, 2018.
//
// The paper's contribution — sandboxing applications on an MCU whose MPU is
// too weak to do it alone, by combining hardware segment protection with
// compiler-inserted bound checks — is implemented end to end on a simulated
// MSP430FR5969-class machine:
//
//   - internal/isa, internal/cpu, internal/mem, internal/mpu: a
//     cycle-counting MSP430-style CPU with the FRAM MPU's real limitations;
//   - internal/cc: the AmuletC compiler, which emits the isolation checks;
//   - internal/aft: the Amulet Firmware Toolchain (layout, gates, linking);
//   - internal/kernel: the AmuletOS analogue (events, services, faults);
//   - internal/apps, internal/arp, internal/energy: the application suite
//     and the Amulet Resource Profiler pipeline behind the evaluation.
//
// This package is the public facade: build systems, run applications under
// any of the four memory models, and regenerate every table and figure of
// the paper's evaluation. See README.md for a tour and EXPERIMENTS.md for
// measured-versus-published results.
package amuletiso

import (
	"context"

	"amuletiso/internal/apps"
	"amuletiso/internal/arp"
	"amuletiso/internal/core"
	"amuletiso/internal/fleet"
	"amuletiso/internal/kernel"
)

// Mode selects the memory-isolation model (the paper's four columns).
type Mode = core.Mode

// The four memory models.
const (
	// NoIsolation runs apps with no protection at all (the baseline).
	NoIsolation = core.NoIsolation
	// FeatureLimited is original Amulet C: no pointers or recursion, and
	// helper-based bounds checks on array accesses.
	FeatureLimited = core.FeatureLimited
	// SoftwareOnly inserts lower and upper bound compares around every
	// computed memory access.
	SoftwareOnly = core.SoftwareOnly
	// MPU is the paper's hybrid: hardware segments above the app, a single
	// compiler-inserted lower-bound compare below it.
	MPU = core.MPU
)

// Modes lists all four models in the paper's order.
var Modes = core.Modes

// App is an application: AmuletC source plus metadata.
type App = apps.App

// System is a built firmware image plus a running kernel.
type System = core.System

// NewSystem compiles the applications under the given isolation mode and
// boots the kernel. The same list and seed always produce the same machine.
func NewSystem(list []App, mode Mode) (*System, error) {
	return core.NewSystem(list, mode)
}

// Suite returns the nine Amulet platform applications used in Figure 2.
func Suite() []App { return apps.Suite() }

// Benchmarks returns the Table 1 / Figure 3 benchmark applications.
func Benchmarks() []App { return apps.Benchmarks() }

// AppByName looks up any bundled application.
func AppByName(name string) (App, bool) { return apps.ByName(name) }

// Table1Result is the measured Table 1 (plus a yield-gate ablation row).
type Table1Result = core.Table1Result

// Table1 measures the two primitive isolation costs — memory access and
// context switch — under all four models, reproducing the paper's Table 1.
func Table1() (*Table1Result, error) { return core.Table1() }

// Figure2Result is the measured Figure 2 data set.
type Figure2Result = core.Figure2Result

// Figure2 runs the ARP pipeline over the nine-app suite: weekly isolation
// overhead in cycles and battery-lifetime impact per app and method.
// sampleMS = 0 uses the default 20-minute wear window.
func Figure2(sampleMS uint64) (*Figure2Result, error) { return core.Figure2(sampleMS) }

// Figure3Result is the measured Figure 3 data set.
type Figure3Result = core.Figure3Result

// Figure3 measures benchmark slowdown per isolation method against the
// NoIsolation baseline, hardware-timer timed, reproducing Figure 3.
// iters <= 0 uses the paper's 200 iterations.
func Figure3(iters int) (*Figure3Result, error) { return core.Figure3(iters) }

// Overhead is one Figure 2 bar (weekly cycles and battery impact).
type Overhead = arp.Overhead

// MeasureApp profiles a single application under one mode and extrapolates
// its weekly isolation overhead — the per-app ARP entry point.
func MeasureApp(app App, mode Mode, sampleMS uint64) (*Overhead, error) {
	return arp.Measure(app, mode, sampleMS)
}

// FleetScenario configures a concurrent multi-device simulation: the app
// set, isolation mode, wear window, fleet size and seed, plus optional event
// schedule and fault-injection knobs. See cmd/amuletfleet for the CLI form.
type FleetScenario = fleet.Scenario

// FleetEvent is one entry of a FleetScenario's event schedule.
type FleetEvent = fleet.ScheduledEvent

// RestartPolicy governs what happens to faulting apps (a FleetScenario's
// Policy field, and the kernel's default fault handling).
type RestartPolicy = kernel.RestartPolicy

// FleetReport aggregates a fleet run: totals, per-device percentile
// summaries and fault histograms. Reports of disjoint shards of the same
// scenario merge with its Merge method.
type FleetReport = fleet.Report

// RunFleet simulates the scenario's devices in parallel (bounded by
// GOMAXPROCS), compiling each (app set, mode) firmware exactly once. The
// same scenario always produces an identical report, independent of worker
// scheduling.
func RunFleet(ctx context.Context, sc FleetScenario) (*FleetReport, error) {
	return fleet.Run(ctx, sc)
}
