// Quicksort slowdown demo: the Figure 3 experiment in miniature. The same
// quicksort runs under all four memory models — recursive pointer C where
// the dialect allows it, the iterative Amulet C port under Feature Limited
// — and the example reports cycles and slowdown, plus proof the array
// really is sorted in every mode.
//
//	go run ./examples/quicksort
package main

import (
	"fmt"
	"log"

	"amuletiso"
	"amuletiso/internal/abi"
	"amuletiso/internal/apps"
)

func main() {
	app := apps.Quicksort()
	const iters = 100

	fmt.Printf("quicksort of 64 pseudo-random int16, %d runs per mode\n\n", iters)
	var base uint64
	for _, mode := range amuletiso.Modes {
		sys, err := amuletiso.NewSystem([]amuletiso.App{app}, mode)
		if err != nil {
			log.Fatal(err)
		}
		sys.RunFor(1) // init event

		before := sys.Kernel.CPU.Cycles
		for i := 0; i < iters; i++ {
			sys.Kernel.Post(0, apps.EvSort, uint16(i), 0)
			sys.Kernel.Step()
		}
		cycles := sys.Kernel.CPU.Cycles - before
		if len(sys.Kernel.Faults) > 0 {
			log.Fatalf("%v: faults: %v", mode, sys.Kernel.Faults)
		}

		// Verify sortedness straight out of simulated memory.
		dataAddr := sys.Firmware.Image.MustSym(abi.SymGlobal("quicksort", "data"))
		sorted := true
		prev := int16(-32768)
		for i := uint16(0); i < 64; i++ {
			v := int16(sys.Kernel.Bus.Peek16(dataAddr + 2*i))
			if v < prev {
				sorted = false
			}
			prev = v
		}

		if mode == amuletiso.NoIsolation {
			base = cycles
			fmt.Printf("%-15s %10d cycles   baseline        sorted=%v\n", mode, cycles, sorted)
			continue
		}
		slow := 100 * (float64(cycles) - float64(base)) / float64(base)
		fmt.Printf("%-15s %10d cycles   %+6.1f%% slower  sorted=%v\n", mode, cycles, slow, sorted)
	}
	fmt.Println("\n(the paper's Figure 3: FeatureLimited slowest, the MPU hybrid fastest)")
}
