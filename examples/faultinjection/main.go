// Fault injection: the paper's security story, live. A buggy app forges a
// pointer at a neighbor's state and at the OS. Under each memory model this
// example shows who catches the bug — the compiler's lower-bound check, the
// MPU's segment fault, the bounds helper — or, with no isolation, nobody.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"amuletiso"
	"amuletiso/internal/abi"
)

// The buggy app dereferences whatever address arrives in arg.
// Event 3 = "write through a forged pointer".
const buggySource = `
void handle_event(int ev, int arg) {
    if (ev == 3) {
        int *p = 0;
        uint a = arg;
        p = p + (a >> 1);
        *p = 0x0BAD;
    }
}
`

// The Amulet C variant forges an array index instead (no pointers exist).
const buggyRestricted = `
int buf[2];
void handle_event(int ev, int arg) {
    if (ev == 3) {
        int i = arg;
        buf[i] = 0x0BAD;
    }
}
`

const victimSource = `
int secret = 0x5EC2;
void handle_event(int ev, int arg) {}
`

func main() {
	buggy := amuletiso.App{Name: "buggy", Source: buggySource, RestrictedSource: buggyRestricted}
	victim := amuletiso.App{Name: "victim", Source: victimSource}

	fmt.Println("attack: buggy app writes 0x0BAD into its neighbor's `secret`")
	fmt.Println()
	for _, mode := range amuletiso.Modes {
		sys, err := amuletiso.NewSystem([]amuletiso.App{buggy, victim}, mode)
		if err != nil {
			log.Fatal(err)
		}
		secretAddr := sys.Firmware.Image.MustSym(abi.SymGlobal("victim", "secret"))

		// Feature Limited has no pointers: aim the array index instead.
		arg := secretAddr
		if mode == amuletiso.FeatureLimited {
			bufAddr := sys.Firmware.Image.MustSym(abi.SymGlobal("buggy", "buf"))
			arg = (secretAddr - bufAddr) / 2
		}
		sys.Kernel.Post(0, 3, arg, 1)
		sys.RunFor(100)

		secret := sys.Kernel.Bus.Peek16(secretAddr)
		fmt.Printf("%-15s secret=0x%04X  ", mode, secret)
		switch {
		case secret != 0x5EC2:
			fmt.Println("CORRUPTED — no one stopped the write")
		case len(sys.Kernel.Faults) > 0:
			fmt.Printf("intact — %s\n", sys.Kernel.Faults[0].Reason)
		default:
			fmt.Println("intact")
		}
	}

	fmt.Println()
	fmt.Println("attack: buggy app writes into OS data (below its segment)")
	fmt.Println()
	for _, mode := range []amuletiso.Mode{amuletiso.MPU, amuletiso.SoftwareOnly} {
		sys, err := amuletiso.NewSystem([]amuletiso.App{buggy, victim}, mode)
		if err != nil {
			log.Fatal(err)
		}
		target := sys.Firmware.Vars[abi.SymVarGateCount]
		sys.Kernel.Post(0, 3, target, 1)
		sys.RunFor(100)
		fmt.Printf("%-15s ", mode)
		if len(sys.Kernel.Faults) > 0 {
			fmt.Printf("blocked by the compiler's lower-bound check (%s)\n", sys.Kernel.Faults[0].Reason)
		} else {
			fmt.Println("NOT blocked (unexpected)")
		}
	}
}
