// Pedometer walk-through: a realistic multi-app wearable workload. The
// pedometer and fall-detection apps consume 20 Hz accelerometer events
// while the clock keeps time, across the wearer model's rest and walking
// phases. Afterwards the ARP pipeline prices the isolation overhead of this
// exact workload.
//
//	go run ./examples/pedometer
package main

import (
	"fmt"
	"log"

	"amuletiso"
	"amuletiso/internal/abi"
)

func main() {
	pedometer, _ := amuletiso.AppByName("pedometer")
	fall, _ := amuletiso.AppByName("falldetection")
	clock, _ := amuletiso.AppByName("clock")

	sys, err := amuletiso.NewSystem([]amuletiso.App{pedometer, fall, clock}, amuletiso.MPU)
	if err != nil {
		log.Fatal(err)
	}

	// The wearer rests for 5 minutes, then walks for 5 (see the sensor
	// model); run 8 minutes so the walk is well underway.
	fmt.Println("simulating 8 minutes of wear (5 min rest, then walking)...")
	sys.RunFor(8 * 60 * 1000)

	stepsAddr := sys.Firmware.Image.MustSym(abi.SymGlobal("pedometer", "steps"))
	steps := sys.Kernel.Bus.Peek16(stepsAddr)
	fmt.Printf("pedometer counted %d steps\n", steps)
	for row, text := range sys.Kernel.Display.Rows {
		fmt.Printf("display[%d] = %q\n", row, text)
	}
	for i, name := range []string{"pedometer", "falldetect", "clock"} {
		st := sys.App(i)
		fmt.Printf("%-10s dispatches=%-6d syscalls=%-6d cycles=%d\n",
			name, st.Dispatches, st.Syscalls, st.Cycles)
	}
	if len(sys.Kernel.Faults) > 0 {
		fmt.Printf("faults: %v\n", sys.Kernel.Faults)
	}

	// Price this workload: what does sandboxing the pedometer cost per
	// week of wear, under each isolation method?
	fmt.Println("\nARP: weekly isolation cost of the pedometer app alone")
	for _, mode := range []amuletiso.Mode{amuletiso.FeatureLimited, amuletiso.MPU, amuletiso.SoftwareOnly} {
		o, err := amuletiso.MeasureApp(pedometer, mode, 2*60*1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %7.3f Gcycles/week  %6.3f%% battery  (%.1f h of lifetime)\n",
			mode, o.BillionsPerWeek, o.BatteryImpactPct, o.LifetimeLossHours)
	}
}
