// Quickstart: write an AmuletC application, build it under the paper's
// hybrid MPU isolation together with a bundled app, run some virtual wear
// time, and inspect what it did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"amuletiso"
)

// An application is a state machine driven by events: ev 0 is init, ev 1 a
// timer. This one samples the temperature every two seconds and logs a
// running maximum.
const mySource = `
int maxTemp = -9999;

void handle_event(int ev, int arg) {
    if (ev == 0) {
        amulet_set_timer(2000);
        return;
    }
    if (ev == 1) {
        int t = amulet_read_temp();
        if (t > maxTemp) {
            maxTemp = t;
            amulet_log_value(1, maxTemp);
        }
        amulet_set_timer(2000);
    }
}
`

func main() {
	myApp := amuletiso.App{Name: "maxtemp", Title: "MaxTemp", Source: mySource}
	clock, _ := amuletiso.AppByName("clock")

	// Build a firmware image with both apps sandboxed under the hybrid
	// MPU+compiler model and boot the kernel.
	sys, err := amuletiso.NewSystem([]amuletiso.App{myApp, clock}, amuletiso.MPU)
	if err != nil {
		log.Fatal(err)
	}

	// One minute of virtual wear.
	events := sys.RunFor(60_000)

	fmt.Printf("ran %d events in one virtual minute under %v isolation\n", events, amuletiso.MPU)
	for i, name := range []string{"maxtemp", "clock"} {
		st := sys.App(i)
		fmt.Printf("%-8s dispatches=%-4d syscalls=%-4d active cycles=%d\n",
			name, st.Dispatches, st.Syscalls, st.Cycles)
	}
	for _, v := range sys.App(0).LogValues {
		fmt.Printf("maxtemp log: new maximum %d.%d C at t=%dms\n", v.Value/10, v.Value%10, v.AtMS)
	}
	fmt.Printf("context switches through OS gates: %d\n", sys.Kernel.GateCount())
	if n := len(sys.Kernel.Faults); n > 0 {
		fmt.Printf("faults: %d (unexpected!)\n", n)
	} else {
		fmt.Println("no isolation faults — both apps stayed inside their segments")
	}
}
