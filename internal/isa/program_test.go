package isa

import "testing"

// testWords adapts a word map to WordReader; absent addresses read erased
// FRAM (0xFFFF), like an image or a fresh bus.
type testWords map[uint16]uint16

func (m testWords) ReadCodeWord(addr uint16) uint16 {
	if v, ok := m[addr&^1]; ok {
		return v
	}
	return 0xFFFF
}

// encodeAt encodes in into mem starting at addr and returns its size.
func encodeAt(t *testing.T, mem testWords, addr uint16, in Instr) uint16 {
	t.Helper()
	ws, err := Encode(in)
	if err != nil {
		t.Fatalf("encode %v: %v", in, err)
	}
	for i, w := range ws {
		mem[addr+2*uint16(i)] = w
	}
	return uint16(2 * len(ws))
}

// TestPredecodeMatchesDecode checks that every cached slot agrees with a
// live Decode at the same address, and that undecodable or range-spilling
// slots are uncacheable.
func TestPredecodeMatchesDecode(t *testing.T) {
	mem := testWords{}
	addr := uint16(0x4400)
	prog := []Instr{
		{Op: MOV, Src: Imm(0x1234), Dst: RegOp(R4)},
		{Op: ADD, Src: RegOp(R4), Dst: Idx(6, R5)},
		{Op: PUSH, Src: Abs(0x2000)},
		{Op: CALL, Src: Imm(0x4400)},
		{Op: JNE, Dst: Operand{Mode: ModeNone, X: uint16(0xFFFD)}}, // offset -3 words
		{Op: XOR, Byte: true, Src: Ind(R6), Dst: RegOp(R7)},
		{Op: RETI, Src: NoOperand, Dst: NoOperand},
	}
	for _, in := range prog {
		addr += encodeAt(t, mem, addr, in)
	}
	end := addr
	// An illegal word (format II opc 7) right after the program.
	mem[end] = 0x13C0
	end += 2

	p := Predecode(mem, []TextRange{{Lo: 0x4400, Hi: end}})
	if p == nil {
		t.Fatal("Predecode returned nil for a non-empty range")
	}
	for pc := uint16(0x4400); pc < end; pc += 2 {
		in, size, err := Decode(mem, pc)
		e := p.At(pc)
		switch {
		case err != nil || uint32(pc)+uint32(size) > uint32(end):
			if e != nil {
				t.Errorf("pc=0x%04X: expected uncacheable slot, got %+v", pc, e)
			}
		case e == nil:
			t.Errorf("pc=0x%04X: decodable instruction %v not cached", pc, in)
		default:
			if e.In != in || e.Size != size || int(e.Cost) != Cycles(in) {
				t.Errorf("pc=0x%04X: cached (%v, size=%d, cost=%d) != decoded (%v, size=%d, cost=%d)",
					pc, e.In, e.Size, e.Cost, in, size, Cycles(in))
			}
		}
	}
	if p.Cached() == 0 {
		t.Error("no slots cached")
	}
}

// TestPredecodeRangeSpill checks an instruction whose extension words would
// cross the end of its text range is left uncacheable (those words live in
// mutable memory the cache cannot watch).
func TestPredecodeRangeSpill(t *testing.T) {
	mem := testWords{}
	// MOV #imm, R4 is 4 bytes; cache a range that cuts it in half.
	size := encodeAt(t, mem, 0x5000, Instr{Op: MOV, Src: Imm(0x5555), Dst: RegOp(R4)})
	if size != 4 {
		t.Fatalf("test instruction should be 4 bytes, got %d", size)
	}
	p := Predecode(mem, []TextRange{{Lo: 0x5000, Hi: 0x5002}})
	if e := p.At(0x5000); e != nil {
		t.Errorf("instruction spilling past its range was cached: %+v", e)
	}
}

// TestPredecodeOutside checks PCs outside every range are uncached.
func TestPredecodeOutside(t *testing.T) {
	mem := testWords{}
	encodeAt(t, mem, 0x5000, Instr{Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)})
	encodeAt(t, mem, 0x6000, Instr{Op: MOV, Src: RegOp(R5), Dst: RegOp(R6)})
	p := Predecode(mem, []TextRange{{Lo: 0x5000, Hi: 0x5002}, {Lo: 0x6000, Hi: 0x6002}})
	for _, pc := range []uint16{0x4FFE, 0x5002, 0x5FFE, 0x6002, 0x0000, 0xFFFE} {
		if e := p.At(pc); e != nil {
			t.Errorf("pc=0x%04X outside text ranges was cached: %+v", pc, e)
		}
	}
	for _, pc := range []uint16{0x5000, 0x6000} {
		if p.At(pc) == nil {
			t.Errorf("pc=0x%04X inside a text range was not cached", pc)
		}
	}
	if got := p.Cached(); got != 2 {
		t.Errorf("Cached() = %d, want 2", got)
	}
}

// TestPredecodeEmpty checks the nil contract for empty or degenerate range
// sets (a reversed range must not underflow the slot-count allocation).
func TestPredecodeEmpty(t *testing.T) {
	if p := Predecode(testWords{}, nil); p != nil {
		t.Errorf("Predecode(nil ranges) = %v, want nil", p)
	}
	if p := Predecode(testWords{}, []TextRange{{Lo: 0x5000, Hi: 0x4000}, {Lo: 0x6000, Hi: 0x6000}}); p != nil {
		t.Errorf("Predecode(degenerate ranges) = %v, want nil", p)
	}
	mem := testWords{}
	encodeAt(t, mem, 0x5000, Instr{Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)})
	p := Predecode(mem, []TextRange{{Lo: 0x5000, Hi: 0x5002}, {Lo: 0x7000, Hi: 0x6000}})
	if p == nil || p.At(0x5000) == nil {
		t.Error("valid range alongside a degenerate one was not cached")
	}
}
