package isa

import "testing"

// words flattens encoded instructions into a word slice readable at base.
func assemble(t *testing.T, instrs ...Instr) (WordReaderFunc, uint16, uint16) {
	t.Helper()
	const base = 0x4400
	var ws []uint16
	for _, in := range instrs {
		ws = append(ws, MustEncode(in)...)
	}
	end := base + uint16(len(ws))*2
	r := func(addr uint16) uint16 {
		idx := int(addr-base) >> 1
		if idx < 0 || idx >= len(ws) {
			return 0xFFFF
		}
		return ws[idx]
	}
	return r, base, end
}

func TestFusePatterns(t *testing.T) {
	cases := []struct {
		name   string
		instrs []Instr
		// wantAt maps head offsets (in bytes from base) to the expected
		// pattern; offsets absent from the map must not head a group.
		wantAt map[uint16]FuseKind
		parts  map[uint16]int
	}{
		{
			name: "cmp+jcc",
			instrs: []Instr{
				{Op: CMP, Src: Imm(60), Dst: RegOp(R4)}, // 2 words
				{Op: JL, Dst: Operand{X: 0xFFFD}},       // backward jump
				{Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)},
			},
			wantAt: map[uint16]FuseKind{0: FuseCmpJcc},
			parts:  map[uint16]int{0: 2},
		},
		{
			name: "movimm+alu",
			instrs: []Instr{
				{Op: MOV, Src: Imm(3), Dst: RegOp(R5)},
				{Op: ADD, Src: RegOp(R5), Dst: RegOp(R4)},
				{Op: RETI},
			},
			wantAt: map[uint16]FuseKind{0: FuseMovImmALU},
			parts:  map[uint16]int{0: 2},
		},
		{
			name: "movimm to PC is a jump, not a head",
			instrs: []Instr{
				{Op: MOV, Src: Imm(0x4400), Dst: RegOp(PC)},
				{Op: ADD, Src: RegOp(R5), Dst: RegOp(R4)},
			},
			wantAt: map[uint16]FuseKind{},
		},
		{
			name: "push run caps at 8 and chains suffixes",
			instrs: []Instr{
				{Op: PUSH, Src: RegOp(R4)}, {Op: PUSH, Src: RegOp(R5)},
				{Op: PUSH, Src: RegOp(R6)}, {Op: PUSH, Src: RegOp(R7)},
				{Op: PUSH, Src: RegOp(R8)}, {Op: PUSH, Src: RegOp(R9)},
				{Op: PUSH, Src: RegOp(R10)}, {Op: PUSH, Src: RegOp(R11)},
				{Op: PUSH, Src: RegOp(R12)},
				{Op: RETI},
			},
			wantAt: map[uint16]FuseKind{
				0: FusePushRun, 2: FusePushRun, 4: FusePushRun, 6: FusePushRun,
				8: FusePushRun, 10: FusePushRun, 12: FusePushRun, 14: FusePushRun,
			},
			parts: map[uint16]int{0: 8, 2: 8, 4: 7, 14: 2},
		},
		{
			name: "push with non-register source breaks the run",
			instrs: []Instr{
				{Op: PUSH, Src: RegOp(R4)},
				{Op: PUSH, Src: Imm(0x1234)},
				{Op: RETI},
			},
			wantAt: map[uint16]FuseKind{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, base, end := assemble(t, tc.instrs...)
			p := Predecode(r, []TextRange{{Lo: base, Hi: end}})
			if p.FusedHeads() != len(tc.wantAt) {
				t.Errorf("FusedHeads = %d, want %d", p.FusedHeads(), len(tc.wantAt))
			}
			for off := uint16(0); base+off < end; off += 2 {
				e := p.At(base + off)
				if e == nil {
					continue
				}
				want, ok := tc.wantAt[off]
				if !ok {
					if e.Fused != nil {
						t.Errorf("offset %d: unexpected %v group", off, e.Fused.Kind)
					}
					continue
				}
				if e.Fused == nil {
					t.Errorf("offset %d: expected %v group, got none", off, want)
					continue
				}
				if e.Fused.Kind != want {
					t.Errorf("offset %d: kind %v, want %v", off, e.Fused.Kind, want)
				}
				if n, ok := tc.parts[off]; ok && len(e.Fused.Parts) != n {
					t.Errorf("offset %d: %d parts, want %d", off, len(e.Fused.Parts), n)
				}
				// Group invariants: sizes and costs sum, components stay in
				// range, and each component slot still caches individually so
				// a PC landing mid-group executes normally.
				var size uint16
				a := base + off
				for _, part := range e.Fused.Parts {
					slot := p.At(a)
					if slot == nil || slot.In != part.In || slot.Size != part.Size || slot.Cost != part.Cost {
						t.Errorf("offset %d: component at 0x%04X disagrees with its own slot", off, a)
					}
					size += part.Size
					a += part.Size
				}
				if size != e.Fused.Size {
					t.Errorf("offset %d: Size %d != sum of parts %d", off, e.Fused.Size, size)
				}
				if uint32(base+off)+uint32(size) > uint32(end) {
					t.Errorf("offset %d: group spills past the text range", off)
				}
			}
		})
	}
}

// TestFuseStopsAtRangeEnd checks a pair whose second half would spill past
// the text range is not fused: the bytes beyond Hi are unwatched data.
func TestFuseStopsAtRangeEnd(t *testing.T) {
	r, base, end := assemble(t,
		Instr{Op: CMP, Src: Imm(0), Dst: RegOp(R4)}, // 1 word (CG)
		Instr{Op: JEQ, Dst: Operand{X: 1}},          // 1 word
	)
	// Full range: fuses.
	p := Predecode(r, []TextRange{{Lo: base, Hi: end}})
	if e := p.At(base); e == nil || e.Fused == nil {
		t.Fatal("full range: expected a fused head")
	}
	// Range truncated before the jump: no fusion (and no cached slot for it).
	p = Predecode(r, []TextRange{{Lo: base, Hi: end - 2}})
	if e := p.At(base); e == nil || e.Fused != nil {
		t.Fatal("truncated range: pair must not fuse across Hi")
	}
}

// TestSetFusion checks the -nofuse escape hatch gates the pass at build
// time, like the decode-cache switch.
func TestSetFusion(t *testing.T) {
	defer SetFusion(true)
	r, base, end := assemble(t,
		Instr{Op: CMP, Src: Imm(0), Dst: RegOp(R4)},
		Instr{Op: JEQ, Dst: Operand{X: 1}},
	)
	SetFusion(false)
	if FusionEnabled() {
		t.Fatal("FusionEnabled after SetFusion(false)")
	}
	p := Predecode(r, []TextRange{{Lo: base, Hi: end}})
	if p.FusedHeads() != 0 {
		t.Fatalf("fusion disabled, got %d fused heads", p.FusedHeads())
	}
	SetFusion(true)
	p = Predecode(r, []TextRange{{Lo: base, Hi: end}})
	if p.FusedHeads() != 1 {
		t.Fatalf("fusion enabled, got %d fused heads", p.FusedHeads())
	}
}
