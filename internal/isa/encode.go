package isa

import "fmt"

// Encoding field positions, format I:
//
//	15..12 opcode | 11..8 src reg | 7 Ad | 6 B/W | 5..4 As | 3..0 dst reg
//
// Format II:
//
//	15..10 000100 | 9..7 opcode | 6 B/W | 5..4 Ad | 3..0 reg
//
// Format III:
//
//	15..13 001 | 12..10 condition | 9..0 signed word offset

// EncodeError describes an instruction that cannot be encoded.
type EncodeError struct {
	Instr  Instr
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %q: %s", e.Instr.String(), e.Reason)
}

// srcBits returns (As, reg, extWord, hasExt) for a source operand.
func srcBits(o Operand) (as uint16, reg Reg, ext uint16, hasExt bool, err string) {
	return srcBitsOpt(o, false)
}

// srcBitsOpt is srcBits with optional suppression of the constant
// generators (forceImm), used for symbol-patched immediates whose value is
// unknown when instruction sizes are fixed.
func srcBitsOpt(o Operand, forceImm bool) (as uint16, reg Reg, ext uint16, hasExt bool, err string) {
	if forceImm && o.Mode == ModeImmediate {
		return 3, PC, o.X, true, ""
	}
	switch o.Mode {
	case ModeRegister:
		if o.Reg == CG {
			return 0, 0, 0, false, "R3 is the constant generator and cannot be a source register"
		}
		return 0, o.Reg, 0, false, ""
	case ModeIndexed:
		if o.Reg == SR || o.Reg == CG {
			return 0, 0, 0, false, "indexed mode on R2/R3 conflicts with constant generator encodings"
		}
		return 1, o.Reg, o.X, true, ""
	case ModeAbsolute:
		return 1, SR, o.X, true, ""
	case ModeIndirect:
		if o.Reg == SR || o.Reg == CG {
			return 0, 0, 0, false, "indirect mode on R2/R3 conflicts with constant generator encodings"
		}
		return 2, o.Reg, 0, false, ""
	case ModeIndirectInc:
		if o.Reg == SR || o.Reg == CG {
			return 0, 0, 0, false, "autoincrement mode on R2/R3 conflicts with constant generator encodings"
		}
		return 3, o.Reg, 0, false, ""
	case ModeImmediate:
		switch o.X {
		case 0:
			return 0, CG, 0, false, ""
		case 1:
			return 1, CG, 0, false, ""
		case 2:
			return 2, CG, 0, false, ""
		case 0xFFFF:
			return 3, CG, 0, false, ""
		case 4:
			return 2, SR, 0, false, ""
		case 8:
			return 3, SR, 0, false, ""
		default:
			return 3, PC, o.X, true, ""
		}
	}
	return 0, 0, 0, false, "operand mode invalid as source"
}

// dstBits returns (Ad, reg, extWord, hasExt) for a destination operand.
func dstBits(o Operand) (ad uint16, reg Reg, ext uint16, hasExt bool, err string) {
	switch o.Mode {
	case ModeRegister:
		return 0, o.Reg, 0, false, ""
	case ModeIndexed:
		if o.Reg == SR || o.Reg == CG {
			return 0, 0, 0, false, "indexed destination on R2/R3 is not encodable"
		}
		return 1, o.Reg, o.X, true, ""
	case ModeAbsolute:
		return 1, SR, o.X, true, ""
	}
	return 0, 0, 0, false, "operand mode invalid as destination"
}

// Encode converts an instruction to its binary form (1-3 words).
func Encode(i Instr) ([]uint16, error) { return encode(i, false) }

// EncodeForceImm is like Encode but never uses the constant generators for
// an immediate source, always emitting the @PC+ extension-word form. The
// assembler uses it for symbol-patched immediates: their final values are
// unknown when instruction sizes are fixed, so the long form must be
// reserved and used regardless of the value linked in.
func EncodeForceImm(i Instr) ([]uint16, error) { return encode(i, true) }

func encode(i Instr, forceImm bool) ([]uint16, error) {
	bw := uint16(0)
	if i.Byte {
		bw = 1
	}
	switch {
	case i.Op.IsTwoOperand():
		as, sreg, sext, shas, serr := srcBitsOpt(i.Src, forceImm)
		if serr != "" {
			return nil, &EncodeError{i, serr}
		}
		ad, dreg, dext, dhas, derr := dstBits(i.Dst)
		if derr != "" {
			return nil, &EncodeError{i, derr}
		}
		w := (uint16(i.Op)+4)<<12 | uint16(sreg)<<8 | ad<<7 | bw<<6 | as<<4 | uint16(dreg)
		out := []uint16{w}
		if shas {
			out = append(out, sext)
		}
		if dhas {
			out = append(out, dext)
		}
		return out, nil

	case i.Op == RETI:
		return []uint16{0x1300}, nil

	case i.Op.IsOneOperand():
		if i.Byte && (i.Op == SWPB || i.Op == SXT || i.Op == CALL) {
			return nil, &EncodeError{i, "byte form not defined for this operation"}
		}
		if i.Src.Mode == ModeImmediate && i.Op != PUSH && i.Op != CALL {
			return nil, &EncodeError{i, "immediate operand only valid for PUSH and CALL"}
		}
		as, reg, ext, has, serr := srcBitsOpt(i.Src, forceImm)
		if serr != "" {
			return nil, &EncodeError{i, serr}
		}
		opc := uint16(i.Op - RRC)
		w := 0x1000 | opc<<7 | bw<<6 | as<<4 | uint16(reg)
		out := []uint16{w}
		if has {
			out = append(out, ext)
		}
		return out, nil

	case i.Op.IsJump():
		off := int16(i.Dst.X)
		if off < -512 || off > 511 {
			return nil, &EncodeError{i, "jump offset out of range"}
		}
		w := 0x2000 | uint16(i.Op-JNE)<<10 | uint16(off)&0x3FF
		return []uint16{w}, nil
	}
	return nil, &EncodeError{i, "unknown operation"}
}

// MustEncode is like Encode but panics on error; for use with instruction
// streams constructed by the code generator, which only emits encodable
// forms.
func MustEncode(i Instr) []uint16 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
