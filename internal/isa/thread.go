package isa

// Threaded-dispatch handler binding. The predecode pass resolves every cached
// instruction to a HandlerID — an index into the CPU package's executor table
// — so the interpreter's hot loop becomes one indirect call per instruction
// instead of a cascade of format and opcode switches. The binding is
// per-opcode and per-addressing-mode-class: jumps and RETI get dedicated
// handlers (no operand machinery at all), the hot format-I shape
// (register/immediate source into a register destination) gets a specialized
// handler per opcode, and everything else falls to a generic handler that
// still skips the outer format dispatch.
//
// The ID space lives here (next to the opcodes it mirrors) because predecode
// computes it, but the handlers themselves are CPU methods: internal/cpu owns
// a table indexed by HandlerID and asserts at test time that every ID is
// bound. HNone (the zero value) means "unbound — execute through the classic
// switch", which is both the escape hatch (`-nothread` leaves every slot at
// HNone via SetThreading) and the enforcement oracle the equivalence battery
// replays against.

import "sync/atomic"

// threadingOff globally disables handler binding when set — the `-nothread`
// escape hatch the CLIs expose (mirroring `-nofuse`) so any run can be
// replayed on the switch-dispatch engine for differential checks.
var threadingOff atomic.Bool

// SetThreading enables or disables threaded-dispatch handler binding
// process-wide. Like SetFusion it is consulted when a Program is built
// (Predecode), so set it once, before building firmware, as the CLIs do;
// already-built programs keep whatever binding they were built with.
func SetThreading(on bool) { threadingOff.Store(!on) }

// ThreadingEnabled reports whether Predecode binds dispatch handlers.
func ThreadingEnabled() bool { return !threadingOff.Load() }

// HandlerID indexes the CPU package's threaded-dispatch executor table.
// The zero value HNone marks a slot with no bound handler (threading
// disabled, or an instruction only the live decoder ever sees).
type HandlerID uint8

// Handler IDs. Order is load-bearing in two places: the jump block mirrors
// the JNE..JMP opcode order, and the fast format-I block mirrors MOV..AND,
// so binding is pure index arithmetic.
const (
	HNone HandlerID = iota

	// Format III: one dedicated handler per condition.
	HJNE
	HJEQ
	HJNC
	HJC
	HJN
	HJGE
	HJL
	HJMP

	HRETI

	// Format II specializations for the shapes gate and call-heavy code
	// runs hot: PUSH of a register (word) and CALL of an immediate target.
	HPushReg
	HCallImm
	// HOneGeneric covers the remaining format-II shapes.
	HOneGeneric

	// Format I fast path: source in a register or immediate, destination a
	// register — no memory operands, so no extension-word or bus traffic.
	// One handler per opcode, MOV..AND order.
	HFastMOV
	HFastADD
	HFastADDC
	HFastSUBC
	HFastSUB
	HFastCMP
	HFastDADD
	HFastBIT
	HFastBIC
	HFastBIS
	HFastXOR
	HFastAND

	// Format I generic path: a memory operand on either side. Still one
	// handler per opcode — the operand machinery is shared, but the op core
	// is resolved at predecode instead of re-switched per execution.
	HGenMOV
	HGenADD
	HGenADDC
	HGenSUBC
	HGenSUB
	HGenCMP
	HGenDADD
	HGenBIT
	HGenBIC
	HGenBIS
	HGenXOR
	HGenAND

	// NumHandlers sizes the executor table.
	NumHandlers
)

// HandlerFor resolves the dispatch handler for a decoded instruction. It is
// a pure function of the instruction shape; Predecode calls it once per slot
// (and per fused component) when threading is enabled.
func HandlerFor(in Instr) HandlerID {
	switch {
	case in.Op.IsJump():
		return HJNE + HandlerID(in.Op-JNE)
	case in.Op == RETI:
		return HRETI
	case in.Op == PUSH && in.Src.Mode == ModeRegister && !in.Byte:
		return HPushReg
	case in.Op == CALL && in.Src.Mode == ModeImmediate:
		return HCallImm
	case in.Op.IsOneOperand():
		return HOneGeneric
	case (in.Src.Mode == ModeRegister || in.Src.Mode == ModeImmediate) &&
		in.Dst.Mode == ModeRegister:
		return HFastMOV + HandlerID(in.Op-MOV)
	}
	return HGenMOV + HandlerID(in.Op-MOV)
}
