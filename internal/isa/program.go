package isa

// Predecoded program cache. The paper's threat model makes application and
// OS text immutable at run time (load-time verified, execute-only under the
// MPU plans), which is exactly the property execute-only-memory systems
// exploit: code that cannot change need only be decoded once. A Program is
// that decode-once cache — every word-aligned offset of the firmware's text
// ranges decoded up front into a dense array of CachedInstr (pre-resolved
// operands and cycle costs) indexed by (pc - base) >> 1.
//
// The cache is a pure function of the image bytes: it holds no bus or device
// state, so one Program built from a linked image serves any number of
// concurrently running machines (the fleet engine shares one per
// (app-set, mode) build). Correctness under self-modifying or hostile code is
// the CPU's job: it tracks overwritten code words and falls back to the live
// decoder for them (see cpu.UseProgram).

import "sync"

// TextRange is one executable text span [Lo, Hi) of an image. Ranges must
// not wrap the address space.
type TextRange struct {
	Lo, Hi uint16
}

// CachedInstr is one predecoded instruction slot.
type CachedInstr struct {
	In   Instr
	Size uint16 // encoded size in bytes; 0 marks an uncacheable slot
	Cost uint16 // Cycles(In), precomputed
	// H is the threaded-dispatch handler bound at predecode (see thread.go);
	// HNone routes the slot through the CPU's classic switch executor.
	H HandlerID
	// Fused, when non-nil, is the superinstruction headed by this slot
	// (see fuse.go). The component slots keep their own entries, so a PC
	// landing mid-group executes normally from its own slot.
	Fused *Fused
}

// Program is a decode-once cache over an image's text ranges.
type Program struct {
	base   uint16
	ins    []CachedInstr
	ranges []TextRange
	cached int
	fused  int
	// blocks are the superblocks discovered for the block JIT (see jit.go);
	// empty when SetJIT was off at build time.
	blocks []Block
	// jitOnce/jitPlan hold the compiled executor plan a CPU package binds to
	// this program (see JITPlan). The plan lives on the Program — not in a
	// global table — so it shares the Program's lifetime and, like the
	// decode cache itself, is built once and shared by every machine running
	// this firmware.
	jitOnce sync.Once
	jitPlan any
}

// Predecode decodes every word-aligned offset of the given text ranges
// through r (typically a linked image or a freshly loaded bus). Offsets that
// do not decode, or whose extension words would spill past the end of their
// text range (into mutable data the cache cannot watch), are left
// uncacheable and serviced by the CPU's live-decode path.
func Predecode(r WordReader, ranges []TextRange) *Program {
	// Degenerate ranges (Hi <= Lo) cover nothing; dropping them here also
	// keeps the slot-count arithmetic below from underflowing.
	valid := make([]TextRange, 0, len(ranges))
	for _, tr := range ranges {
		if tr.Hi > tr.Lo {
			valid = append(valid, tr)
		}
	}
	ranges = valid
	if len(ranges) == 0 {
		return nil
	}
	base, end := ranges[0].Lo, ranges[0].Hi
	for _, tr := range ranges[1:] {
		if tr.Lo < base {
			base = tr.Lo
		}
		if tr.Hi > end {
			end = tr.Hi
		}
	}
	base &^= 1
	p := &Program{
		base:   base,
		ins:    make([]CachedInstr, (uint32(end)-uint32(base)+1)/2),
		ranges: append([]TextRange(nil), ranges...),
	}
	thread := ThreadingEnabled()
	for _, tr := range ranges {
		// An odd Lo rounds UP: the partial word below it lies outside the
		// watched range, so caching it could never be invalidated.
		for a := (tr.Lo + 1) &^ 1; a+1 < tr.Hi && a >= tr.Lo; a += 2 {
			in, size, err := Decode(r, a)
			if err != nil || uint32(a)+uint32(size) > uint32(tr.Hi) {
				continue // uncacheable: live decode handles it
			}
			e := CachedInstr{In: in, Size: size, Cost: uint16(Cycles(in))}
			if thread {
				e.H = HandlerFor(in)
			}
			p.ins[(a-base)>>1] = e
			p.cached++
		}
	}
	if FusionEnabled() {
		p.fuse()
	}
	if JITEnabled() {
		p.discoverBlocks()
	}
	return p
}

// At returns the cached slot for pc, or nil when pc lies outside the cached
// text or the slot is uncacheable. pc must be even (the CPU's PC always is).
func (p *Program) At(pc uint16) *CachedInstr {
	if pc < p.base {
		return nil
	}
	idx := int(pc-p.base) >> 1
	if idx >= len(p.ins) {
		return nil
	}
	e := &p.ins[idx]
	if e.Size == 0 {
		return nil
	}
	return e
}

// Ranges returns the text ranges the cache covers (the spans a bus watch
// must guard against writes). The slice is a fresh copy on EVERY call — the
// Program is shared read-only across machines, so callers must not be able
// to mutate the backing array, and memoizing one copy would just move the
// aliasing hazard to whichever caller got it first. Allocation-sensitive
// callers (per-device boot paths) should iterate with NumRanges/RangeAt
// instead of calling this in a loop.
func (p *Program) Ranges() []TextRange { return append([]TextRange(nil), p.ranges...) }

// NumRanges returns how many text ranges the cache covers.
func (p *Program) NumRanges() int { return len(p.ranges) }

// RangeAt returns the i-th text range — the allocation-free companion to
// Ranges for hot boot paths.
func (p *Program) RangeAt(i int) TextRange { return p.ranges[i] }

// Cached returns how many instruction slots decoded successfully —
// introspection for tests and tooling.
func (p *Program) Cached() int { return p.cached }

// FusedHeads returns how many slots head a fused superinstruction —
// introspection for tests and tooling.
func (p *Program) FusedHeads() int { return p.fused }

// Blocks returns how many superblocks discovery found — introspection for
// tests and tooling, beside Cached and FusedHeads.
func (p *Program) Blocks() int { return len(p.blocks) }

// BlockSpans returns the discovered superblocks, sorted by address. The
// slice is shared and must be treated as read-only (it is consumed once per
// Program by the JIT plan build, not per device).
func (p *Program) BlockSpans() []Block { return p.blocks }

// Base returns the lowest word-aligned address the cache covers, and Slots
// the number of word slots from it — together they define the slot indexing
// ((pc - Base) >> 1) a JIT plan mirrors for its block table.
func (p *Program) Base() uint16 { return p.base }

// Slots returns the number of word-aligned instruction slots in the cache.
func (p *Program) Slots() int { return len(p.ins) }

// JITPlan returns the compiled-executor plan bound to this program, building
// it on first use via build. The plan type is opaque to isa (the CPU package
// owns the executors); storing it here gives it exactly the Program's
// lifetime and shares one compile across every machine and fleet device
// running this firmware. Concurrent callers coalesce on the one build.
func (p *Program) JITPlan(build func() any) any {
	p.jitOnce.Do(func() { p.jitPlan = build() })
	return p.jitPlan
}
