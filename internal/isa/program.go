package isa

// Predecoded program cache. The paper's threat model makes application and
// OS text immutable at run time (load-time verified, execute-only under the
// MPU plans), which is exactly the property execute-only-memory systems
// exploit: code that cannot change need only be decoded once. A Program is
// that decode-once cache — every word-aligned offset of the firmware's text
// ranges decoded up front into a dense array of CachedInstr (pre-resolved
// operands and cycle costs) indexed by (pc - base) >> 1.
//
// The cache is a pure function of the image bytes: it holds no bus or device
// state, so one Program built from a linked image serves any number of
// concurrently running machines (the fleet engine shares one per
// (app-set, mode) build). Correctness under self-modifying or hostile code is
// the CPU's job: it tracks overwritten code words and falls back to the live
// decoder for them (see cpu.UseProgram).

// TextRange is one executable text span [Lo, Hi) of an image. Ranges must
// not wrap the address space.
type TextRange struct {
	Lo, Hi uint16
}

// CachedInstr is one predecoded instruction slot.
type CachedInstr struct {
	In   Instr
	Size uint16 // encoded size in bytes; 0 marks an uncacheable slot
	Cost uint16 // Cycles(In), precomputed
	// H is the threaded-dispatch handler bound at predecode (see thread.go);
	// HNone routes the slot through the CPU's classic switch executor.
	H HandlerID
	// Fused, when non-nil, is the superinstruction headed by this slot
	// (see fuse.go). The component slots keep their own entries, so a PC
	// landing mid-group executes normally from its own slot.
	Fused *Fused
}

// Program is a decode-once cache over an image's text ranges.
type Program struct {
	base   uint16
	ins    []CachedInstr
	ranges []TextRange
	cached int
	fused  int
}

// Predecode decodes every word-aligned offset of the given text ranges
// through r (typically a linked image or a freshly loaded bus). Offsets that
// do not decode, or whose extension words would spill past the end of their
// text range (into mutable data the cache cannot watch), are left
// uncacheable and serviced by the CPU's live-decode path.
func Predecode(r WordReader, ranges []TextRange) *Program {
	// Degenerate ranges (Hi <= Lo) cover nothing; dropping them here also
	// keeps the slot-count arithmetic below from underflowing.
	valid := make([]TextRange, 0, len(ranges))
	for _, tr := range ranges {
		if tr.Hi > tr.Lo {
			valid = append(valid, tr)
		}
	}
	ranges = valid
	if len(ranges) == 0 {
		return nil
	}
	base, end := ranges[0].Lo, ranges[0].Hi
	for _, tr := range ranges[1:] {
		if tr.Lo < base {
			base = tr.Lo
		}
		if tr.Hi > end {
			end = tr.Hi
		}
	}
	base &^= 1
	p := &Program{
		base:   base,
		ins:    make([]CachedInstr, (uint32(end)-uint32(base)+1)/2),
		ranges: append([]TextRange(nil), ranges...),
	}
	thread := ThreadingEnabled()
	for _, tr := range ranges {
		// An odd Lo rounds UP: the partial word below it lies outside the
		// watched range, so caching it could never be invalidated.
		for a := (tr.Lo + 1) &^ 1; a+1 < tr.Hi && a >= tr.Lo; a += 2 {
			in, size, err := Decode(r, a)
			if err != nil || uint32(a)+uint32(size) > uint32(tr.Hi) {
				continue // uncacheable: live decode handles it
			}
			e := CachedInstr{In: in, Size: size, Cost: uint16(Cycles(in))}
			if thread {
				e.H = HandlerFor(in)
			}
			p.ins[(a-base)>>1] = e
			p.cached++
		}
	}
	if FusionEnabled() {
		p.fuse()
	}
	return p
}

// At returns the cached slot for pc, or nil when pc lies outside the cached
// text or the slot is uncacheable. pc must be even (the CPU's PC always is).
func (p *Program) At(pc uint16) *CachedInstr {
	if pc < p.base {
		return nil
	}
	idx := int(pc-p.base) >> 1
	if idx >= len(p.ins) {
		return nil
	}
	e := &p.ins[idx]
	if e.Size == 0 {
		return nil
	}
	return e
}

// Ranges returns the text ranges the cache covers (the spans a bus watch
// must guard against writes). The slice is a copy: the Program is shared
// read-only across machines, so callers must not be able to mutate it.
func (p *Program) Ranges() []TextRange { return append([]TextRange(nil), p.ranges...) }

// Cached returns how many instruction slots decoded successfully —
// introspection for tests and tooling.
func (p *Program) Cached() int { return p.cached }

// FusedHeads returns how many slots head a fused superinstruction —
// introspection for tests and tooling.
func (p *Program) FusedHeads() int { return p.fused }
