package isa

import "fmt"

// DecodeError describes an undecodable instruction word.
type DecodeError struct {
	Addr uint16
	Word uint16
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: illegal instruction word 0x%04X at 0x%04X", e.Word, e.Addr)
}

// WordReader supplies instruction words to the decoder. Implementations must
// not have side effects visible to the program (the CPU charges cycles from
// the cycle tables, not per decoder read).
type WordReader interface {
	ReadCodeWord(addr uint16) uint16
}

// WordReaderFunc adapts a function to the WordReader interface.
type WordReaderFunc func(addr uint16) uint16

// ReadCodeWord implements WordReader.
func (f WordReaderFunc) ReadCodeWord(addr uint16) uint16 { return f(addr) }

// decodeSrc reconstructs a source operand from As/reg fields, consuming an
// extension word via next() when required.
func decodeSrc(as uint16, reg Reg, next func() uint16) Operand {
	// Constant generators first.
	if reg == CG {
		switch as {
		case 0:
			return Imm(0)
		case 1:
			return Imm(1)
		case 2:
			return Imm(2)
		default:
			return Imm(0xFFFF)
		}
	}
	if reg == SR {
		switch as {
		case 0:
			return RegOp(SR)
		case 1:
			return Abs(next())
		case 2:
			return Imm(4)
		default:
			return Imm(8)
		}
	}
	switch as {
	case 0:
		return RegOp(reg)
	case 1:
		return Idx(next(), reg)
	case 2:
		return Ind(reg)
	default:
		if reg == PC {
			return Imm(next())
		}
		return IndInc(reg)
	}
}

// decodeDst reconstructs a destination operand from Ad/reg fields.
func decodeDst(ad uint16, reg Reg, next func() uint16) Operand {
	if ad == 0 {
		return RegOp(reg)
	}
	if reg == SR {
		return Abs(next())
	}
	return Idx(next(), reg)
}

// Decode decodes the instruction starting at addr. It returns the symbolic
// instruction and its size in bytes (2, 4 or 6).
func Decode(r WordReader, addr uint16) (Instr, uint16, error) {
	w := r.ReadCodeWord(addr)
	nextAddr := addr + 2
	next := func() uint16 {
		v := r.ReadCodeWord(nextAddr)
		nextAddr += 2
		return v
	}

	switch {
	case w&0xE000 == 0x2000: // format III jump
		op := JNE + Op((w>>10)&7)
		off := int16(w<<6) >> 6 // sign-extend 10-bit field
		return Instr{Op: op, Dst: Operand{Mode: ModeNone, X: uint16(off)}}, 2, nil

	case w&0xFC00 == 0x1000: // format II
		opc := (w >> 7) & 7
		if opc == 6 { // RETI
			return Instr{Op: RETI, Src: NoOperand, Dst: NoOperand}, 2, nil
		}
		if opc == 7 {
			return Instr{}, 0, &DecodeError{addr, w}
		}
		op := RRC + Op(opc)
		byteOp := w&0x40 != 0
		if byteOp && (op == SWPB || op == SXT || op == CALL) {
			return Instr{}, 0, &DecodeError{addr, w}
		}
		src := decodeSrc((w>>4)&3, Reg(w&0xF), next)
		if src.Mode == ModeImmediate && op != PUSH && op != CALL {
			return Instr{}, 0, &DecodeError{addr, w}
		}
		return Instr{Op: op, Byte: byteOp, Src: src, Dst: NoOperand}, nextAddr - addr, nil

	case w>>12 >= 4: // format I
		op := Op(w>>12) - 4
		src := decodeSrc((w>>4)&3, Reg((w>>8)&0xF), next)
		dst := decodeDst((w>>7)&1, Reg(w&0xF), next)
		return Instr{Op: op, Byte: w&0x40 != 0, Src: src, Dst: dst}, nextAddr - addr, nil
	}
	return Instr{}, 0, &DecodeError{addr, w}
}
