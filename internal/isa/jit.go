package isa

// Superblock discovery for the block JIT. The same immutability argument
// behind the predecode cache (text is load-time verified and execute-only, so
// decode once) extends one granularity tier up: whole straight-line runs of
// cached instructions can be discovered once, lifted to a small IR, optimized
// and bound to a compiled Go executor (see internal/jit for the IR and
// internal/cpu for the executor). This file owns what the isa layer can know
// without a CPU: where the superblocks are.
//
// A superblock starts at any address control flow can enter from outside —
// a text-range start, the instruction after a terminator, a static branch or
// CALL #imm target, a call's return address — and runs forward through
// straight-line code until a terminator (an instruction that can write the
// PC), an uncacheable slot, the end of the text range, or the length cap.
// Blocks deliberately extend THROUGH interior join points rather than
// stopping at them (the "superblock" part): an interior entry simply starts
// its own, overlapping block, so every PC still means exactly what it meant
// to the interpreter and a branch landing mid-block never executes compiled
// code it did not enter at the head of.

import "sync/atomic"

// jitOff globally disables superblock discovery when set — the `-nojit`
// escape hatch the CLIs expose (mirroring `-nothread`) so any run can be
// replayed on the pure interpreter engines for differential checks.
var jitOff atomic.Bool

// SetJIT enables or disables superblock discovery process-wide. Like
// SetThreading and SetFusion it is consulted when a Program is built
// (Predecode), so set it once, before building firmware, as the CLIs do;
// already-built programs keep whatever blocks they were built with.
func SetJIT(on bool) { jitOff.Store(!on) }

// JITEnabled reports whether Predecode discovers superblocks.
func JITEnabled() bool { return !jitOff.Load() }

// Block is one discovered superblock: N cacheable instructions, contiguous
// in a single text range, of which only the last may transfer control.
type Block struct {
	Addr uint16 // address of the first instruction
	Size uint16 // total encoded bytes
	N    uint16 // instruction count
}

// Block length bounds: one instruction is not a block (the single-slot path
// already handles it optimally), and the cap bounds both compile cost and
// the span the executor's entry checks must cover.
const (
	minBlockLen = 2
	maxBlockLen = 32
)

// BlockTerminator reports whether in ends a straight-line run: any
// instruction that can write the PC — jumps, CALL, RETI, a format-I
// destination of PC (BR, RET = MOV @SP+,PC, computed branches), or a
// format-II register operand of PC (excluding PUSH, which only reads it).
func BlockTerminator(in Instr) bool {
	switch {
	case in.Op.IsJump() || in.Op == CALL || in.Op == RETI:
		return true
	case in.Op.IsTwoOperand() && in.Dst.Mode == ModeRegister && in.Dst.Reg == PC:
		return true
	case in.Op.IsOneOperand() && in.Op != PUSH &&
		in.Src.Mode == ModeRegister && in.Src.Reg == PC:
		return true
	}
	return false
}

// discoverBlocks runs superblock discovery over the predecoded slots: one
// pass collecting every statically known entry point, then a walk extending
// a block from each. Results are sorted by address so the discovery order is
// deterministic regardless of map iteration.
func (p *Program) discoverBlocks() {
	heads := make(map[uint16]struct{})
	for _, tr := range p.ranges {
		heads[(tr.Lo+1)&^1] = struct{}{}
		for a := (tr.Lo + 1) &^ 1; a+1 < tr.Hi && a >= tr.Lo; a += 2 {
			e := p.At(a)
			if e == nil || uint32(a)+uint32(e.Size) > uint32(tr.Hi) {
				continue
			}
			if e.In.Op.IsJump() {
				// Taken target: PC past the encoding plus the word offset.
				heads[a+2+2*uint16(e.In.JmpOffsetWords())] = struct{}{}
			}
			if e.In.Op == CALL && e.In.Src.Mode == ModeImmediate {
				heads[e.In.Src.X&^1] = struct{}{}
			}
			if BlockTerminator(e.In) {
				// Fall-through successor (and a CALL's return address).
				heads[a+e.Size] = struct{}{}
			}
		}
	}
	for _, tr := range p.ranges {
		for h := range heads {
			if h < tr.Lo || h >= tr.Hi || h&1 != 0 {
				continue
			}
			if b, ok := p.walkBlock(h, tr); ok {
				p.blocks = append(p.blocks, b)
			}
		}
	}
	sortBlocks(p.blocks)
}

// walkBlock extends a block forward from head h inside text range tr.
func (p *Program) walkBlock(h uint16, tr TextRange) (Block, bool) {
	a, n := h, uint16(0)
	for n < maxBlockLen {
		if a < tr.Lo || a >= tr.Hi {
			break
		}
		e := p.At(a)
		if e == nil || uint32(a)+uint32(e.Size) > uint32(tr.Hi) {
			break
		}
		a += e.Size
		n++
		if BlockTerminator(e.In) {
			break
		}
	}
	if n < minBlockLen {
		return Block{}, false
	}
	return Block{Addr: h, Size: a - h, N: n}, true
}

// sortBlocks is an insertion sort by address — block counts are small and
// this keeps the file free of a sort import on the Predecode path.
func sortBlocks(bs []Block) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Addr < bs[j-1].Addr; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
