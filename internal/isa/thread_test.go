package isa

import "testing"

// TestHandlerFor pins the shape → handler mapping threaded dispatch relies
// on: jumps and the fast format-I block are pure index arithmetic over the
// opcode order, and memory operands always fall to the generic handlers.
func TestHandlerFor(t *testing.T) {
	cases := []struct {
		in   Instr
		want HandlerID
	}{
		{Instr{Op: JNE, Dst: Operand{X: 4}}, HJNE},
		{Instr{Op: JMP, Dst: Operand{X: 4}}, HJMP},
		{Instr{Op: JGE, Dst: Operand{X: 0xFFFD}}, HJGE},
		{Instr{Op: RETI}, HRETI},
		{Instr{Op: PUSH, Src: RegOp(R4)}, HPushReg},
		{Instr{Op: PUSH, Byte: true, Src: RegOp(R4)}, HOneGeneric},
		{Instr{Op: PUSH, Src: Abs(0x2000)}, HOneGeneric},
		{Instr{Op: CALL, Src: Imm(0x4400)}, HCallImm},
		{Instr{Op: CALL, Src: RegOp(R10)}, HOneGeneric},
		{Instr{Op: RRC, Src: RegOp(R4)}, HOneGeneric},
		{Instr{Op: SXT, Src: Abs(0x1C00)}, HOneGeneric},
		{Instr{Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)}, HFastMOV},
		{Instr{Op: MOV, Src: Imm(7), Dst: RegOp(R5)}, HFastMOV},
		{Instr{Op: ADD, Src: Imm(1), Dst: RegOp(SP)}, HFastADD},
		{Instr{Op: ADDC, Src: RegOp(R4), Dst: RegOp(R5)}, HFastADDC},
		{Instr{Op: SUBC, Src: RegOp(R4), Dst: RegOp(R5)}, HFastSUBC},
		{Instr{Op: SUB, Byte: true, Src: RegOp(R4), Dst: RegOp(R5)}, HFastSUB},
		{Instr{Op: CMP, Src: Imm(10), Dst: RegOp(R12)}, HFastCMP},
		{Instr{Op: DADD, Src: RegOp(R4), Dst: RegOp(R5)}, HFastDADD},
		{Instr{Op: BIT, Src: Imm(8), Dst: RegOp(SR)}, HFastBIT},
		{Instr{Op: BIC, Src: Imm(1), Dst: RegOp(SR)}, HFastBIC},
		{Instr{Op: BIS, Src: Imm(0x10), Dst: RegOp(SR)}, HFastBIS},
		{Instr{Op: XOR, Src: RegOp(R6), Dst: RegOp(R7)}, HFastXOR},
		{Instr{Op: AND, Src: Imm(0xFF), Dst: RegOp(R12)}, HFastAND},
		{Instr{Op: MOV, Src: Abs(0x2000), Dst: RegOp(R5)}, HGenMOV},
		{Instr{Op: MOV, Src: RegOp(R4), Dst: Abs(0x2000)}, HGenMOV},
		{Instr{Op: ADD, Src: Ind(R4), Dst: RegOp(R5)}, HGenADD},
		{Instr{Op: XOR, Src: IndInc(R4), Dst: Idx(2, R5)}, HGenXOR},
		{Instr{Op: CMP, Src: Abs(0x2000), Dst: RegOp(R5)}, HGenCMP},
		{Instr{Op: AND, Src: Idx(2, R4), Dst: Abs(0x2000)}, HGenAND},
	}
	for _, c := range cases {
		if got := HandlerFor(c.in); got != c.want {
			t.Errorf("HandlerFor(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestPredecodeBindsHandlers checks handler binding is on by default, reaches
// fused components, and is fully disabled by SetThreading(false).
func TestPredecodeBindsHandlers(t *testing.T) {
	defer SetThreading(true)
	mem := testWords{}
	addr := uint16(0x4400)
	prog := []Instr{
		{Op: CMP, Src: Imm(10), Dst: RegOp(R4)},
		{Op: JNE, Dst: Operand{X: uint16(0xFFFD)}},
		{Op: MOV, Src: Abs(0x2000), Dst: RegOp(R5)},
	}
	for _, in := range prog {
		addr += encodeAt(t, mem, addr, in)
	}
	ranges := []TextRange{{Lo: 0x4400, Hi: addr}}

	p := Predecode(mem, ranges)
	head := p.At(0x4400)
	if head == nil || head.H != HFastCMP {
		t.Fatalf("CMP slot handler = %+v, want HFastCMP", head)
	}
	if head.Fused == nil {
		t.Fatal("CMP+JNE did not fuse")
	}
	if head.Fused.Parts[0].H != HFastCMP || head.Fused.Parts[1].H != HJNE {
		t.Errorf("fused part handlers = %d,%d, want %d,%d",
			head.Fused.Parts[0].H, head.Fused.Parts[1].H, HFastCMP, HJNE)
	}
	for pc := uint16(0x4400); pc < addr; pc += 2 {
		if e := p.At(pc); e != nil && e.H == HNone {
			t.Errorf("pc=0x%04X: cached slot left unbound with threading on", pc)
		}
	}

	SetThreading(false)
	p = Predecode(mem, ranges)
	for pc := uint16(0x4400); pc < addr; pc += 2 {
		e := p.At(pc)
		if e == nil {
			continue
		}
		if e.H != HNone {
			t.Errorf("pc=0x%04X: handler bound with threading off", pc)
		}
		if e.Fused != nil {
			for i, part := range e.Fused.Parts {
				if part.H != HNone {
					t.Errorf("pc=0x%04X part %d: handler bound with threading off", pc, i)
				}
			}
		}
	}
}
