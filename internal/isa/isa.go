// Package isa defines the instruction-set architecture of the simulated
// MSP430-class CPU used throughout this repository: registers, status flags,
// opcodes, addressing modes, the symbolic Instr form, binary encoding and
// decoding, and the per-instruction cycle-cost tables.
//
// The ISA follows the classic TI MSP430 CPU (16-bit, 27 core instructions in
// three formats, orthogonal addressing modes, constant generators on R2/R3).
// Cycle counts follow the public TI user-guide tables so that measured
// overheads of compiler-inserted isolation checks have realistic relative
// magnitudes. See DESIGN.md for why cycle fidelity matters to the
// reproduction.
package isa

import "fmt"

// Reg is a CPU register number, R0 through R15.
//
// R0 is the program counter, R1 the stack pointer, R2 the status register
// (and constant generator 1), R3 constant generator 2. R4-R15 are general
// purpose.
type Reg uint8

// Architectural register names.
const (
	PC  Reg = 0 // program counter (R0)
	SP  Reg = 1 // stack pointer (R1)
	SR  Reg = 2 // status register / constant generator 1 (R2)
	CG  Reg = 3 // constant generator 2 (R3)
	R4  Reg = 4
	R5  Reg = 5
	R6  Reg = 6
	R7  Reg = 7
	R8  Reg = 8
	R9  Reg = 9
	R10 Reg = 10
	R11 Reg = 11
	R12 Reg = 12
	R13 Reg = 13
	R14 Reg = 14
	R15 Reg = 15
)

// NumRegs is the number of architectural registers.
const NumRegs = 16

// String returns the conventional assembler name of the register.
func (r Reg) String() string {
	switch r {
	case PC:
		return "PC"
	case SP:
		return "SP"
	case SR:
		return "SR"
	case CG:
		return "CG"
	}
	return fmt.Sprintf("R%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Status-register flag bits.
const (
	FlagC      uint16 = 1 << 0 // carry
	FlagZ      uint16 = 1 << 1 // zero
	FlagN      uint16 = 1 << 2 // negative
	FlagGIE    uint16 = 1 << 3 // general interrupt enable
	FlagCPUOFF uint16 = 1 << 4 // CPU off (low-power mode)
	FlagOSCOFF uint16 = 1 << 5 // oscillator off
	FlagSCG0   uint16 = 1 << 6 // system clock generator 0
	FlagSCG1   uint16 = 1 << 7 // system clock generator 1
	FlagV      uint16 = 1 << 8 // overflow
)

// Op identifies an instruction operation. The three MSP430 formats are
// represented by contiguous ranges: two-operand (format I), one-operand
// (format II) and relative jumps (format III).
type Op uint8

// Format I: two-operand arithmetic and data movement.
const (
	MOV  Op = iota // dst = src
	ADD            // dst += src
	ADDC           // dst += src + C
	SUBC           // dst = dst - src - 1 + C
	SUB            // dst -= src
	CMP            // dst - src, flags only
	DADD           // BCD add with carry
	BIT            // dst & src, flags only
	BIC            // dst &^= src
	BIS            // dst |= src
	XOR            // dst ^= src
	AND            // dst &= src

	// Format II: one-operand.
	RRC  // rotate right through carry
	SWPB // swap bytes
	RRA  // arithmetic shift right
	SXT  // sign-extend low byte
	PUSH // push operand
	CALL // push PC, jump to operand
	RETI // return from interrupt

	// Format III: PC-relative conditional jumps.
	JNE // jump if Z==0 (aka JNZ)
	JEQ // jump if Z==1 (aka JZ)
	JNC // jump if C==0 (aka JLO)
	JC  // jump if C==1 (aka JHS)
	JN  // jump if N==1
	JGE // jump if N XOR V == 0
	JL  // jump if N XOR V == 1
	JMP // jump always

	numOps
)

var opNames = [...]string{
	MOV: "MOV", ADD: "ADD", ADDC: "ADDC", SUBC: "SUBC", SUB: "SUB",
	CMP: "CMP", DADD: "DADD", BIT: "BIT", BIC: "BIC", BIS: "BIS",
	XOR: "XOR", AND: "AND",
	RRC: "RRC", SWPB: "SWPB", RRA: "RRA", SXT: "SXT", PUSH: "PUSH",
	CALL: "CALL", RETI: "RETI",
	JNE: "JNE", JEQ: "JEQ", JNC: "JNC", JC: "JC", JN: "JN",
	JGE: "JGE", JL: "JL", JMP: "JMP",
}

// String returns the assembler mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsTwoOperand reports whether o is a format-I instruction.
func (o Op) IsTwoOperand() bool { return o <= AND }

// IsOneOperand reports whether o is a format-II instruction.
func (o Op) IsOneOperand() bool { return o >= RRC && o <= RETI }

// IsJump reports whether o is a format-III conditional jump.
func (o Op) IsJump() bool { return o >= JNE && o <= JMP }

// Valid reports whether o names a defined operation.
func (o Op) Valid() bool { return o < numOps }

// AddrMode is an operand addressing mode.
type AddrMode uint8

// Addressing modes. Symbolic mode (ADDR, encoded as x(PC)) is resolved by the
// assembler into Absolute or Indexed form before encoding, so it does not
// appear here.
const (
	ModeNone        AddrMode = iota // absent operand (RETI, jumps); the zero value
	ModeRegister                    // Rn
	ModeIndexed                     // x(Rn)
	ModeAbsolute                    // &ADDR (encoded as x(SR) with As=01/Ad=1)
	ModeIndirect                    // @Rn (source only)
	ModeIndirectInc                 // @Rn+ (source only)
	ModeImmediate                   // #N (source only; encoded @PC+ or const gen)
)

// String returns a short name for the addressing mode.
func (m AddrMode) String() string {
	switch m {
	case ModeRegister:
		return "Rn"
	case ModeIndexed:
		return "x(Rn)"
	case ModeAbsolute:
		return "&ADDR"
	case ModeIndirect:
		return "@Rn"
	case ModeIndirectInc:
		return "@Rn+"
	case ModeImmediate:
		return "#N"
	case ModeNone:
		return "-"
	}
	return fmt.Sprintf("AddrMode(%d)", uint8(m))
}

// Operand describes one instruction operand.
type Operand struct {
	Mode AddrMode
	Reg  Reg    // register for Register/Indexed/Indirect/IndirectInc modes
	X    uint16 // index for Indexed, address for Absolute, value for Immediate
}

// Common operand constructors, used heavily by the code generator.

// RegOp returns a register-mode operand.
func RegOp(r Reg) Operand { return Operand{Mode: ModeRegister, Reg: r} }

// Imm returns an immediate-mode operand with value v.
func Imm(v uint16) Operand { return Operand{Mode: ModeImmediate, X: v} }

// Abs returns an absolute-mode operand addressing addr.
func Abs(addr uint16) Operand { return Operand{Mode: ModeAbsolute, X: addr} }

// Idx returns an indexed-mode operand x(r).
func Idx(x uint16, r Reg) Operand { return Operand{Mode: ModeIndexed, Reg: r, X: x} }

// Ind returns an indirect-register operand @r.
func Ind(r Reg) Operand { return Operand{Mode: ModeIndirect, Reg: r} }

// IndInc returns an indirect-autoincrement operand @r+.
func IndInc(r Reg) Operand { return Operand{Mode: ModeIndirectInc, Reg: r} }

// NoOperand is the absent operand used by RETI and jump instructions.
var NoOperand = Operand{Mode: ModeNone}

// String renders the operand in assembler syntax.
func (o Operand) String() string {
	switch o.Mode {
	case ModeRegister:
		return o.Reg.String()
	case ModeIndexed:
		return fmt.Sprintf("%d(%s)", int16(o.X), o.Reg)
	case ModeAbsolute:
		return fmt.Sprintf("&0x%04X", o.X)
	case ModeIndirect:
		return "@" + o.Reg.String()
	case ModeIndirectInc:
		return "@" + o.Reg.String() + "+"
	case ModeImmediate:
		return fmt.Sprintf("#%d", int16(o.X))
	case ModeNone:
		return ""
	}
	return "?"
}

// NeedsExtWord reports whether the operand consumes an instruction extension
// word when encoded as a source (src=true) or destination.
//
// Immediates representable by the constant generators (-1, 0, 1, 2, 4, 8)
// need no extension word as sources; all other immediates do. Register,
// indirect and autoincrement modes never need one; indexed and absolute
// always do.
func (o Operand) NeedsExtWord(src bool) bool {
	switch o.Mode {
	case ModeIndexed, ModeAbsolute:
		return true
	case ModeImmediate:
		if !src {
			return true // immediates are source-only; callers validate
		}
		return !isCGImmediate(o.X)
	default:
		return false
	}
}

// isCGImmediate reports whether v is generated by the R2/R3 constant
// generators and therefore encodes without an extension word.
func isCGImmediate(v uint16) bool {
	switch v {
	case 0, 1, 2, 4, 8, 0xFFFF:
		return true
	}
	return false
}

// Instr is one decoded (or to-be-encoded) instruction.
type Instr struct {
	Op   Op
	Byte bool    // true for .B (byte) operation; word otherwise
	Src  Operand // format I source; format II operand; jumps: unused
	Dst  Operand // format I destination; jumps: signed word offset in Dst.X
}

// JmpOffsetWords returns the signed jump offset in words for a format-III
// instruction (range -511..+512, PC-relative to the following instruction).
func (i Instr) JmpOffsetWords() int16 { return int16(i.Dst.X) }

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	suffix := ""
	if i.Byte {
		suffix = ".B"
	}
	switch {
	case i.Op.IsTwoOperand():
		return fmt.Sprintf("%s%s %s, %s", i.Op, suffix, i.Src, i.Dst)
	case i.Op == RETI:
		return "RETI"
	case i.Op.IsOneOperand():
		return fmt.Sprintf("%s%s %s", i.Op, suffix, i.Src)
	case i.Op.IsJump():
		return fmt.Sprintf("%s %+d", i.Op, int16(i.Dst.X)*2)
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// Words returns the encoded size of the instruction in 16-bit words (1-3).
func (i Instr) Words() int {
	n := 1
	switch {
	case i.Op.IsTwoOperand():
		if i.Src.NeedsExtWord(true) {
			n++
		}
		if i.Dst.NeedsExtWord(false) {
			n++
		}
	case i.Op == RETI || i.Op.IsJump():
		// single word
	case i.Op.IsOneOperand():
		if i.Src.NeedsExtWord(true) {
			n++
		}
	}
	return n
}

// Size returns the encoded size in bytes.
func (i Instr) Size() uint16 { return uint16(i.Words()) * 2 }
