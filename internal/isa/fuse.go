package isa

// Superinstruction fusion. The predecode pass sees whole text ranges, so it
// can recognize instruction pairs (and runs) that always execute back to
// back and staple them into one cached superinstruction: the CPU then pays
// the per-step overhead (interrupt poll, cache lookup, dirty check, loop
// iteration) once per group instead of once per instruction. Fusion changes
// dispatch granularity only — each component still fetches, executes and
// charges cycles exactly as the unfused engine would, and the CPU re-checks
// every stop condition (pending interrupt, halt, CPUOFF, cycle budget,
// overwritten text) at component boundaries, so the architectural trace is
// bit-identical either way (the torture equivalence battery pins this).
//
// A fused group lives on the slot of its FIRST instruction; the component
// slots keep their own single-instruction entries. A branch landing in the
// middle of a group therefore just executes from that component's own slot —
// fusion never changes what a PC means.

import "sync/atomic"

// fusionOff globally disables the fusion pass when set — the `-nofuse`
// escape hatch the CLIs expose (mirroring `-nodecodecache`) so any run can
// be replayed on the unfused engine for differential checks.
var fusionOff atomic.Bool

// SetFusion enables or disables superinstruction fusion process-wide. Like
// cpu.SetDecodeCache it is consulted when a Program is built (Predecode), so
// set it once, before building firmware, as the CLIs do; already-built
// programs keep whatever fusion they were built with.
func SetFusion(on bool) { fusionOff.Store(!on) }

// FusionEnabled reports whether Predecode runs the fusion pass.
func FusionEnabled() bool { return !fusionOff.Load() }

// FuseKind names a fusion pattern, for introspection and test assertions.
type FuseKind uint8

// Fusion patterns: the pairs the torture corpus and the AFT's generated code
// actually produce hot.
const (
	// FuseCmpJcc is a CMP (any operands) immediately followed by a
	// conditional jump — the compiled form of every if/while/for condition.
	FuseCmpJcc FuseKind = iota + 1
	// FuseMovImmALU is a MOV #imm into a register (not PC) followed by any
	// format-I ALU op — the "load constant, then use it" idiom the code
	// generator emits for bounds checks and arithmetic.
	FuseMovImmALU
	// FusePushRun is a run of 2..8 consecutive PUSH Rn instructions — the
	// OS gate prologue saving R4..R11 on every API call.
	FusePushRun
)

// String names the pattern.
func (k FuseKind) String() string {
	switch k {
	case FuseCmpJcc:
		return "cmp+jcc"
	case FuseMovImmALU:
		return "movimm+alu"
	case FusePushRun:
		return "push-run"
	}
	return "?"
}

// maxPushRun caps FusePushRun length at the gate prologue's 8 registers.
const maxPushRun = 8

// FusedPart is one component of a fused group: its own decode, size and
// cycle cost, charged individually so mid-group stops observe exactly the
// unfused accounting.
type FusedPart struct {
	In   Instr
	Size uint16 // encoded size in bytes
	Cost uint16 // Cycles(In)
	// H carries the component's threaded-dispatch handler (copied from its
	// own cache slot), so fused execution dispatches components exactly as
	// the single-slot path would.
	H HandlerID
}

// Fused is a superinstruction: 2..maxPushRun components that are contiguous
// in one text range. It hangs off the first component's cache slot.
type Fused struct {
	Kind  FuseKind
	Size  uint16 // total encoded bytes of all parts
	Parts []FusedPart
	// Fast marks a pair whose HEAD is memory-free and control-safe: it
	// cannot fault, write memory (so no device side effects, no code
	// dirtying, no halt), or change GIE/CPUOFF. The CPU's combined pair
	// executor then inlines the head and only re-checks the cycle budget at
	// the component boundary — every other split condition is provably
	// unreachable. The second component is unconstrained (it is last, so
	// the ordinary per-instruction rules apply to it unchanged).
	Fast bool
}

// fastHead reports whether in, as a fused-pair head, can neither touch
// memory nor alter control state: CMP over registers/immediates (flags
// only), or MOV #imm into a plain register (not PC — never a head — and not
// SR, which could set GIE or CPUOFF mid-group).
func fastHead(in Instr) bool {
	switch in.Op {
	case CMP:
		return (in.Src.Mode == ModeRegister || in.Src.Mode == ModeImmediate) &&
			in.Dst.Mode == ModeRegister
	case MOV:
		return in.Src.Mode == ModeImmediate && in.Dst.Mode == ModeRegister &&
			in.Dst.Reg != PC && in.Dst.Reg != SR
	}
	return false
}

// fuse runs the fusion pass over every predecoded slot. Groups never cross a
// text-range boundary: the gap between ranges is mutable data the code watch
// does not guard.
func (p *Program) fuse() {
	for _, tr := range p.ranges {
		for a := (tr.Lo + 1) &^ 1; a+1 < tr.Hi && a >= tr.Lo; a += 2 {
			e := p.At(a)
			if e == nil {
				continue
			}
			if f := p.matchFuse(a, e, tr); f != nil {
				e.Fused = f
				p.fused++
			}
		}
	}
}

// part converts a cache slot into a fused component.
func part(e *CachedInstr) FusedPart {
	return FusedPart{In: e.In, Size: e.Size, Cost: e.Cost, H: e.H}
}

// matchFuse tries every fusion pattern with the instruction at addr as the
// group head. Only the LAST component of a group may transfer control (Jcc,
// or an ALU op writing PC): earlier components are restricted to shapes that
// fall through, so execution always reaches every component sequentially.
func (p *Program) matchFuse(addr uint16, head *CachedInstr, tr TextRange) *Fused {
	// next returns the cacheable slot at a if its full encoding lies inside
	// this text range, nil otherwise.
	next := func(a uint16) *CachedInstr {
		if a < tr.Lo || a >= tr.Hi {
			return nil
		}
		e := p.At(a)
		if e == nil || uint32(a)+uint32(e.Size) > uint32(tr.Hi) {
			return nil
		}
		return e
	}

	in := head.In
	switch {
	case in.Op == CMP:
		n := next(addr + head.Size)
		if n != nil && n.In.Op.IsJump() {
			return &Fused{Kind: FuseCmpJcc, Size: head.Size + n.Size,
				Parts: []FusedPart{part(head), part(n)}, Fast: fastHead(in)}
		}

	case in.Op == MOV && in.Src.Mode == ModeImmediate &&
		in.Dst.Mode == ModeRegister && in.Dst.Reg != PC:
		// Dst may be any register but PC (a MOV #imm,PC is a jump, which
		// would leave the group head mid-flight). SR is fine: a component
		// that sets CPUOFF or GIE is caught by the CPU's boundary checks
		// (such a pair just isn't Fast).
		n := next(addr + head.Size)
		if n != nil && n.In.Op.IsTwoOperand() {
			return &Fused{Kind: FuseMovImmALU, Size: head.Size + n.Size,
				Parts: []FusedPart{part(head), part(n)}, Fast: fastHead(in)}
		}

	case in.Op == PUSH && in.Src.Mode == ModeRegister:
		parts := []FusedPart{part(head)}
		a := addr + head.Size
		for len(parts) < maxPushRun {
			n := next(a)
			if n == nil || n.In.Op != PUSH || n.In.Src.Mode != ModeRegister {
				break
			}
			parts = append(parts, part(n))
			a += n.Size
		}
		if len(parts) >= 2 {
			return &Fused{Kind: FusePushRun, Size: a - addr, Parts: parts}
		}
	}
	return nil
}
