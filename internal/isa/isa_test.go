package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sliceReader serves instruction words from a slice for decoding tests.
type sliceReader []uint16

func (s sliceReader) ReadCodeWord(addr uint16) uint16 {
	i := int(addr) / 2
	if i >= len(s) {
		return 0xFFFF
	}
	return s[i]
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{PC: "PC", SP: "SP", SR: "SR", CG: "CG", R4: "R4", R15: "R15"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpClasses(t *testing.T) {
	for op := MOV; op <= AND; op++ {
		if !op.IsTwoOperand() || op.IsOneOperand() || op.IsJump() {
			t.Errorf("%v misclassified", op)
		}
	}
	for op := RRC; op <= RETI; op++ {
		if op.IsTwoOperand() || !op.IsOneOperand() || op.IsJump() {
			t.Errorf("%v misclassified", op)
		}
	}
	for op := JNE; op <= JMP; op++ {
		if op.IsTwoOperand() || op.IsOneOperand() || !op.IsJump() {
			t.Errorf("%v misclassified", op)
		}
	}
}

func TestEncodeKnownWords(t *testing.T) {
	// Hand-assembled reference encodings, cross-checked against the MSP430
	// instruction-set encoding rules.
	cases := []struct {
		in   Instr
		want []uint16
	}{
		// MOV R4, R5 -> 0x4405
		{Instr{Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)}, []uint16{0x4405}},
		// MOV #0, R5 via CG (As=00, reg=R3) -> 0x4305
		{Instr{Op: MOV, Src: Imm(0), Dst: RegOp(R5)}, []uint16{0x4305}},
		// MOV #1, R5 via CG (As=01, reg=R3) -> 0x4315
		{Instr{Op: MOV, Src: Imm(1), Dst: RegOp(R5)}, []uint16{0x4315}},
		// MOV #2, R5 -> 0x4325 ; #-1 -> 0x4335 ; #4 -> 0x4225 ; #8 -> 0x4235
		{Instr{Op: MOV, Src: Imm(2), Dst: RegOp(R5)}, []uint16{0x4325}},
		{Instr{Op: MOV, Src: Imm(0xFFFF), Dst: RegOp(R5)}, []uint16{0x4335}},
		{Instr{Op: MOV, Src: Imm(4), Dst: RegOp(R5)}, []uint16{0x4225}},
		{Instr{Op: MOV, Src: Imm(8), Dst: RegOp(R5)}, []uint16{0x4235}},
		// MOV #0x1234, R5 -> 0x4035 0x1234 (@PC+)
		{Instr{Op: MOV, Src: Imm(0x1234), Dst: RegOp(R5)}, []uint16{0x4035, 0x1234}},
		// MOV @R4, R5 -> 0x4425 ; MOV @R4+, R5 -> 0x4435
		{Instr{Op: MOV, Src: Ind(R4), Dst: RegOp(R5)}, []uint16{0x4425}},
		{Instr{Op: MOV, Src: IndInc(R4), Dst: RegOp(R5)}, []uint16{0x4435}},
		// MOV 6(R4), R5 -> 0x4415 0x0006
		{Instr{Op: MOV, Src: Idx(6, R4), Dst: RegOp(R5)}, []uint16{0x4415, 0x0006}},
		// MOV &0x0200, R5 -> 0x4215 0x0200
		{Instr{Op: MOV, Src: Abs(0x0200), Dst: RegOp(R5)}, []uint16{0x4215, 0x0200}},
		// MOV R5, &0x0200 -> 0x4582 0x0200
		{Instr{Op: MOV, Src: RegOp(R5), Dst: Abs(0x0200)}, []uint16{0x4582, 0x0200}},
		// MOV.B R4, R5 -> 0x4445
		{Instr{Op: MOV, Byte: true, Src: RegOp(R4), Dst: RegOp(R5)}, []uint16{0x4445}},
		// ADD R4, R5 -> 0x5405 ; XOR -> 0xE405 ; AND -> 0xF405
		{Instr{Op: ADD, Src: RegOp(R4), Dst: RegOp(R5)}, []uint16{0x5405}},
		{Instr{Op: XOR, Src: RegOp(R4), Dst: RegOp(R5)}, []uint16{0xE405}},
		{Instr{Op: AND, Src: RegOp(R4), Dst: RegOp(R5)}, []uint16{0xF405}},
		// PUSH R10 -> 0x120A ; CALL R10 -> 0x128A
		{Instr{Op: PUSH, Src: RegOp(R10)}, []uint16{0x120A}},
		{Instr{Op: CALL, Src: RegOp(R10)}, []uint16{0x128A}},
		// CALL #0x4400 -> 0x12B0 0x4400
		{Instr{Op: CALL, Src: Imm(0x4400)}, []uint16{0x12B0, 0x4400}},
		// RETI -> 0x1300
		{Instr{Op: RETI}, []uint16{0x1300}},
		// SWPB R9 -> 0x1089 ; RRA R9 -> 0x1109 ; SXT R9 -> 0x1189 ; RRC R9 -> 0x1009
		{Instr{Op: SWPB, Src: RegOp(R9)}, []uint16{0x1089}},
		{Instr{Op: RRA, Src: RegOp(R9)}, []uint16{0x1109}},
		{Instr{Op: SXT, Src: RegOp(R9)}, []uint16{0x1189}},
		{Instr{Op: RRC, Src: RegOp(R9)}, []uint16{0x1009}},
		// JMP +0 -> 0x3C00 ; JNE -1 word -> 0x23FF ; JEQ +2 words -> 0x2402
		{Instr{Op: JMP, Dst: Operand{Mode: ModeNone, X: 0}}, []uint16{0x3C00}},
		{Instr{Op: JNE, Dst: Operand{Mode: ModeNone, X: 0xFFFF}}, []uint16{0x23FF}},
		{Instr{Op: JEQ, Dst: Operand{Mode: ModeNone, X: 2}}, []uint16{0x2402}},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("Encode(%v) = %04X, want %04X", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Encode(%v) = %04X, want %04X", c.in, got, c.want)
				break
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Instr{
		{Op: MOV, Src: RegOp(CG), Dst: RegOp(R5)},          // R3 as plain src
		{Op: MOV, Src: Idx(2, SR), Dst: RegOp(R5)},         // indexed on R2
		{Op: MOV, Src: RegOp(R4), Dst: Ind(R5)},            // indirect dst
		{Op: MOV, Src: RegOp(R4), Dst: Imm(7)},             // immediate dst
		{Op: SWPB, Byte: true, Src: RegOp(R4)},             // SWPB.B
		{Op: SXT, Src: Imm(0x1234)},                        // SXT #imm
		{Op: JMP, Dst: Operand{Mode: ModeNone, X: 600}},    // offset too far
		{Op: JMP, Dst: Operand{Mode: ModeNone, X: 0xFC00}}, // offset -1024
		{Op: CALL, Byte: true, Src: RegOp(R4)},             // CALL.B
		{Op: MOV, Src: Ind(SR), Dst: RegOp(R4)},            // @SR
		{Op: MOV, Src: IndInc(CG), Dst: RegOp(R4)},         // @CG+
		{Op: MOV, Src: RegOp(R4), Dst: Idx(0, SR)},         // x(SR) dst
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) unexpectedly succeeded", in)
		}
	}
}

func TestDecodeMatchesEncode(t *testing.T) {
	progs := []Instr{
		{Op: MOV, Src: Imm(0x4400), Dst: RegOp(SP)},
		{Op: CMP, Src: Imm(2), Dst: RegOp(R12)},
		{Op: SUB, Src: Imm(6), Dst: RegOp(SP)},
		{Op: MOV, Src: Abs(0x1C00), Dst: Abs(0x1C02)},
		{Op: ADD, Byte: true, Src: Idx(3, R10), Dst: RegOp(R11)},
		{Op: PUSH, Src: Imm(0x55AA)},
		{Op: CALL, Src: Ind(R7)},
		{Op: BIT, Src: Imm(8), Dst: RegOp(SR)},
	}
	for _, in := range progs {
		words := MustEncode(in)
		got, size, err := Decode(sliceReader(words), 0)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if int(size) != len(words)*2 {
			t.Errorf("Decode(%v) size = %d, want %d", in, size, len(words)*2)
		}
		if got != in {
			t.Errorf("Decode(Encode(%v)) = %v", in, got)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	for _, w := range []uint16{0x0000, 0x0FFF, 0x1380, 0x13FF} {
		if _, _, err := Decode(sliceReader{w}, 0); err == nil {
			t.Errorf("Decode(%04X) unexpectedly succeeded", w)
		}
	}
}

// randInstr builds a random encodable instruction for round-trip properties.
func randInstr(r *rand.Rand) Instr {
	gpr := func() Reg { return Reg(4 + r.Intn(12)) }
	srcOp := func() Operand {
		switch r.Intn(6) {
		case 0:
			return RegOp(gpr())
		case 1:
			return Idx(uint16(r.Intn(0x7FFF)), gpr())
		case 2:
			return Abs(uint16(r.Intn(0xFFFF)))
		case 3:
			return Ind(gpr())
		case 4:
			return IndInc(gpr())
		default:
			return Imm(uint16(r.Intn(0xFFFF)))
		}
	}
	dstOp := func() Operand {
		switch r.Intn(3) {
		case 0:
			return RegOp(gpr())
		case 1:
			return Idx(uint16(r.Intn(0x7FFF)), gpr())
		default:
			return Abs(uint16(r.Intn(0xFFFF)))
		}
	}
	switch r.Intn(3) {
	case 0:
		return Instr{
			Op:   Op(r.Intn(int(AND) + 1)),
			Byte: r.Intn(2) == 0,
			Src:  srcOp(),
			Dst:  dstOp(),
		}
	case 1:
		op := RRC + Op(r.Intn(5)) // RRC..PUSH
		in := Instr{Op: op, Src: srcOp()}
		if op == SWPB || op == SXT {
			in.Byte = false
			if in.Src.Mode == ModeImmediate {
				in.Src = RegOp(gpr())
			}
		} else if op != PUSH && in.Src.Mode == ModeImmediate {
			in.Src = RegOp(gpr())
		} else if op == PUSH {
			in.Byte = r.Intn(2) == 0
		} else {
			in.Byte = r.Intn(2) == 0
		}
		return in
	default:
		off := r.Intn(1024) - 512
		if off == -512 {
			off = 0
		}
		return Instr{Op: JNE + Op(r.Intn(8)), Dst: Operand{Mode: ModeNone, X: uint16(int16(off))}}
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		in := randInstr(r)
		words, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		if len(words) != in.Words() {
			t.Logf("Words(%v) = %d, encoded %d", in, in.Words(), len(words))
			return false
		}
		out, size, err := Decode(sliceReader(words), 0)
		if err != nil {
			t.Logf("Decode(%v): %v", in, err)
			return false
		}
		if int(size) != 2*len(words) {
			return false
		}
		if out != in {
			t.Logf("round trip %v -> %v", in, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCyclesKnownValues(t *testing.T) {
	cases := []struct {
		in   Instr
		want int
	}{
		{Instr{Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)}, 1},
		{Instr{Op: MOV, Src: Imm(0), Dst: RegOp(R5)}, 1},      // CG: register timing
		{Instr{Op: MOV, Src: Imm(0x1234), Dst: RegOp(R5)}, 2}, // @PC+
		{Instr{Op: MOV, Src: Ind(R4), Dst: RegOp(R5)}, 2},
		{Instr{Op: MOV, Src: IndInc(R4), Dst: RegOp(R5)}, 2},
		{Instr{Op: MOV, Src: Idx(2, R4), Dst: RegOp(R5)}, 3},
		{Instr{Op: MOV, Src: Abs(0x200), Dst: RegOp(R5)}, 3},
		{Instr{Op: MOV, Src: RegOp(R4), Dst: Idx(2, R5)}, 4},
		{Instr{Op: MOV, Src: RegOp(R4), Dst: Abs(0x200)}, 4},
		{Instr{Op: MOV, Src: Imm(0x1234), Dst: Abs(0x200)}, 5},
		{Instr{Op: MOV, Src: Abs(0x200), Dst: Abs(0x202)}, 6},
		{Instr{Op: MOV, Src: RegOp(R4), Dst: RegOp(PC)}, 2},
		{Instr{Op: MOV, Src: Imm(0x4400), Dst: RegOp(PC)}, 3},
		{Instr{Op: MOV, Src: IndInc(SP), Dst: RegOp(PC)}, 3}, // RET
		{Instr{Op: CMP, Src: Imm(2), Dst: RegOp(R12)}, 1},    // CG compare
		{Instr{Op: PUSH, Src: RegOp(R10)}, 3},
		{Instr{Op: PUSH, Src: Imm(0x1234)}, 4},
		{Instr{Op: CALL, Src: RegOp(R10)}, 4},
		{Instr{Op: CALL, Src: Imm(0x4400)}, 5},
		{Instr{Op: CALL, Src: Abs(0x4400)}, 6},
		{Instr{Op: RETI}, 5},
		{Instr{Op: JMP}, 2},
		{Instr{Op: JNE}, 2},
		{Instr{Op: RRA, Src: RegOp(R9)}, 1},
		{Instr{Op: RRA, Src: Abs(0x200)}, 4},
		{Instr{Op: SWPB, Src: Ind(R9)}, 3},
	}
	for _, c := range cases {
		if got := Cycles(c.in); got != c.want {
			t.Errorf("Cycles(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuickCyclesPositiveAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(int64) bool {
		in := randInstr(r)
		c := Cycles(in)
		return c >= 1 && c <= 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInstrStrings(t *testing.T) {
	cases := map[string]Instr{
		"MOV R4, R5":      {Op: MOV, Src: RegOp(R4), Dst: RegOp(R5)},
		"MOV.B #1, 2(R6)": {Op: MOV, Byte: true, Src: Imm(1), Dst: Idx(2, R6)},
		"CALL #17408":     {Op: CALL, Src: Imm(0x4400)},
		"RETI":            {Op: RETI},
		"JMP +4":          {Op: JMP, Dst: Operand{Mode: ModeNone, X: 2}},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
