package asm

import (
	"fmt"
	"strings"

	"amuletiso/internal/isa"
)

// DisasmLine is one decoded instruction with its location.
type DisasmLine struct {
	Addr  uint16
	Size  uint16
	Instr isa.Instr
	Bad   bool // undecodable word
}

// String renders "ADDR: INSTR".
func (l DisasmLine) String() string {
	if l.Bad {
		return fmt.Sprintf("%04X: .word ?", l.Addr)
	}
	return fmt.Sprintf("%04X: %s", l.Addr, l.Instr)
}

// Disassemble decodes [lo, hi) from r, resynchronizing on undecodable words.
func Disassemble(r isa.WordReader, lo, hi uint16) []DisasmLine {
	var out []DisasmLine
	for addr := lo &^ 1; addr < hi; {
		in, size, err := isa.Decode(r, addr)
		if err != nil {
			out = append(out, DisasmLine{Addr: addr, Size: 2, Bad: true})
			addr += 2
			continue
		}
		out = append(out, DisasmLine{Addr: addr, Size: size, Instr: in})
		addr += size
	}
	return out
}

// DumpSegment disassembles a whole image segment to text.
func DumpSegment(s Segment) string {
	r := isa.WordReaderFunc(func(addr uint16) uint16 {
		off := int(addr) - int(s.Addr)
		if off < 0 || off+1 >= len(s.Data) {
			return 0xFFFF
		}
		return uint16(s.Data[off]) | uint16(s.Data[off+1])<<8
	})
	var sb strings.Builder
	for _, l := range Disassemble(r, s.Addr, uint16(s.End()-1)+1) {
		sb.WriteString(l.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
