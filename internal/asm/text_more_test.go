package asm

import (
	"testing"

	"amuletiso/internal/isa"
)

// Coverage for the remaining emulated mnemonics and jump aliases.

func TestJumpAliases(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV  #5, R4
        CMP  #5, R4
        JZ   eq           ; alias of JEQ
        MOV  #1, R15
eq:     CMP  #6, R4
        JLO  lo           ; alias of JNC: 5 < 6 unsigned
        MOV  #2, R15
lo:     CMP  #5, R4
        JHS  hs           ; alias of JC: 5 >= 5
        MOV  #3, R15
hs:     MOV  #0, &0x01E0
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 1000)
	if c.Regs[isa.R15] != 0 {
		t.Fatalf("alias jump missed: R15=%d", c.Regs[isa.R15])
	}
}

func TestFlagManipulationMnemonics(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        SETC
        MOV  #0, R4
        ADC  R4           ; R4 += carry -> 1
        SETZ
        CLRZ
        SETN
        CLRN
        DINT
        EINT
        CLRC
        SBC  R4           ; R4 -= 1-C -> 0
        MOV  R4, &out
        MOV  #0, &0x01E0
.org 0x1C00
out:    .word 0xFFFF
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 1000)
	if got := c.Bus.Peek16(img.MustSym("out")); got != 0 {
		t.Fatalf("ADC/SBC chain = %04X, want 0", got)
	}
	if c.SRBits()&isa.FlagGIE == 0 {
		t.Fatal("EINT did not set GIE")
	}
}

func TestDADCMnemonic(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV  #0x0099, R4
        CLRC
        DADD #1, R4       ; 99 + 1 = 100 BCD
        MOV  #0x0000, R5
        DADC R5           ; propagate BCD carry (none here)
        MOV  R4, &out
        MOV  #0, &0x01E0
.org 0x1C00
out:    .word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 1000)
	if got := c.Bus.Peek16(img.MustSym("out")); got != 0x0100 {
		t.Fatalf("DADD = %04X, want 0100", got)
	}
}

func TestSymbolsListing(t *testing.T) {
	b := NewBuilder()
	b.Org(0x4400)
	b.Label("zmain")
	b.Equ("CONST", 7)
	b.Label("aux")
	got := b.Symbols()
	if len(got) != 3 || got[0] != "CONST" || got[1] != "aux" || got[2] != "zmain" {
		t.Fatalf("Symbols() = %v", got)
	}
}

func TestParseIntoExistingBuilder(t *testing.T) {
	// The runtime library path: Go-emitted code and parsed text share one
	// builder and can reference each other's labels.
	b := NewBuilder()
	b.Org(0x4400)
	b.Label("__start")
	b.EmitRef(isa.Instr{Op: isa.CALL, Src: isa.Imm(0)}, Ref{Sym: "helper"}, NoRef)
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R12), Dst: isa.Abs(0x01E0)})
	if err := Parse(`
helper: MOV #41, R12
        INC R12
        RET
`, b); err != nil {
		t.Fatal(err)
	}
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 1000)
	if c.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", c.ExitCode)
	}
}
