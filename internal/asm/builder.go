// Package asm provides the assembly layer between the compiler and the
// simulated machine: a programmatic instruction builder with labels,
// relocation and automatic long-branch relaxation; a textual MSP430-syntax
// assembler used for the hand-written runtime library and tests; firmware
// images; and a disassembler for diagnostics.
package asm

import (
	"fmt"
	"sort"

	"amuletiso/internal/isa"
)

// Ref is a symbolic reference to be added into an operand's extension word
// (immediate value, absolute address or index) at link time.
type Ref struct {
	Sym string // symbol name; empty means "no reference"
	Add uint16 // constant addend
}

// NoRef is the absent reference.
var NoRef = Ref{}

type entryKind uint8

const (
	kInstr entryKind = iota
	kBranch
	kLabel
	kOrg
	kAlign
	kWord
	kBytes
	kSpace
)

type entry struct {
	kind entryKind

	in       isa.Instr // kInstr, kBranch (branch op + condition)
	src, dst Ref       // kInstr operand patches
	target   string    // kBranch target label
	long     bool      // kBranch: relaxed to BR form

	name string // kLabel
	val  uint16 // kOrg address, kAlign grain, kWord literal, kSpace size
	ref  Ref    // kWord symbolic value
	data []byte // kBytes

	addr uint16 // assigned address (after layout)
	size uint16 // assigned size in bytes
}

// LinkError reports a failure to resolve or encode the program.
type LinkError struct {
	Sym    string
	Detail string
}

func (e *LinkError) Error() string {
	if e.Sym != "" {
		return fmt.Sprintf("asm: symbol %q: %s", e.Sym, e.Detail)
	}
	return "asm: " + e.Detail
}

// Builder assembles a program as a sequence of located chunks. Use Org to
// set the location counter; emit instructions, labels and data; then Link to
// resolve symbols and produce an Image.
type Builder struct {
	entries []entry
	equs    map[string]uint16
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{equs: make(map[string]uint16)}
}

// Org sets the location counter for subsequent code and data.
func (b *Builder) Org(addr uint16) {
	b.entries = append(b.entries, entry{kind: kOrg, val: addr})
}

// Label binds name to the current location.
func (b *Builder) Label(name string) {
	b.entries = append(b.entries, entry{kind: kLabel, name: name})
}

// Equ defines an absolute symbol.
func (b *Builder) Equ(name string, v uint16) {
	b.equs[name] = v
}

// Emit appends a concrete instruction.
func (b *Builder) Emit(in isa.Instr) {
	b.entries = append(b.entries, entry{kind: kInstr, in: in})
}

// EmitRef appends an instruction whose source and/or destination extension
// word is patched with a symbol value at link time. The operand's X field
// is replaced by sym+add (any existing X is ignored; put constants in Add).
func (b *Builder) EmitRef(in isa.Instr, src, dst Ref) {
	b.entries = append(b.entries, entry{kind: kInstr, in: in, src: src, dst: dst})
}

// Branch appends a conditional or unconditional jump to a label, relaxed
// automatically to a BR (MOV #addr, PC) sequence when out of short range.
func (b *Builder) Branch(op isa.Op, label string) {
	if !op.IsJump() {
		panic("asm: Branch requires a jump op")
	}
	b.entries = append(b.entries, entry{kind: kBranch, in: isa.Instr{Op: op}, target: label})
}

// Word appends a literal data word.
func (b *Builder) Word(v uint16) {
	b.entries = append(b.entries, entry{kind: kWord, val: v})
}

// WordRef appends a data word holding sym+add.
func (b *Builder) WordRef(r Ref) {
	b.entries = append(b.entries, entry{kind: kWord, ref: r})
}

// Bytes appends raw bytes.
func (b *Builder) Bytes(p []byte) {
	cp := make([]byte, len(p))
	copy(cp, p)
	b.entries = append(b.entries, entry{kind: kBytes, data: cp})
}

// Space appends n zero bytes.
func (b *Builder) Space(n uint16) {
	b.entries = append(b.entries, entry{kind: kSpace, val: n})
}

// Align pads with zero bytes to the given power-of-two grain.
func (b *Builder) Align(grain uint16) {
	b.entries = append(b.entries, entry{kind: kAlign, val: grain})
}

// invertJump returns the opposite condition, for long-branch relaxation.
func invertJump(op isa.Op) isa.Op {
	switch op {
	case isa.JNE:
		return isa.JEQ
	case isa.JEQ:
		return isa.JNE
	case isa.JNC:
		return isa.JC
	case isa.JC:
		return isa.JNC
	case isa.JGE:
		return isa.JL
	case isa.JL:
		return isa.JGE
	}
	return op // JMP, JN have no single-jump inverse; JMP handled separately
}

// layout assigns addresses and sizes; returns the label table.
func (b *Builder) layout() (map[string]uint16, error) {
	syms := make(map[string]uint16, len(b.equs))
	for k, v := range b.equs {
		syms[k] = v
	}
	seen := make(map[string]bool)
	pc := uint16(0)
	for i := range b.entries {
		e := &b.entries[i]
		e.addr = pc
		switch e.kind {
		case kOrg:
			pc = e.val
			e.addr = pc
			e.size = 0
		case kLabel:
			if _, isEqu := b.equs[e.name]; isEqu {
				return nil, &LinkError{e.name, "label collides with EQU symbol"}
			}
			if seen[e.name] {
				return nil, &LinkError{e.name, "defined more than once"}
			}
			seen[e.name] = true
			syms[e.name] = pc
			e.size = 0
		case kAlign:
			g := e.val
			if g == 0 {
				g = 2
			}
			rem := pc % g
			if rem != 0 {
				e.size = g - rem
			} else {
				e.size = 0
			}
			pc += e.size
		case kInstr:
			in := e.in
			if e.src.Sym != "" && in.Src.Mode == isa.ModeImmediate {
				// Symbol-patched immediates always get an extension word,
				// whatever value links in (see isa.EncodeForceImm).
				in.Src.X = 0x7FFF
			}
			e.size = in.Size()
			pc += e.size
		case kBranch:
			if e.long {
				if e.in.Op == isa.JMP {
					e.size = 4 // MOV #addr, PC
				} else {
					e.size = 6 // J!cc +skip ; MOV #addr, PC
				}
			} else {
				e.size = 2
			}
			pc += e.size
		case kWord:
			e.size = 2
			pc += 2
		case kBytes:
			e.size = uint16(len(e.data))
			pc += e.size
		case kSpace:
			e.size = e.val
			pc += e.size
		}
	}
	return syms, nil
}

// resolveRef computes the patched extension value for a reference.
func resolveRef(syms map[string]uint16, r Ref, orig uint16) (uint16, error) {
	if r.Sym == "" {
		return orig, nil
	}
	v, ok := syms[r.Sym]
	if !ok {
		return 0, &LinkError{r.Sym, "undefined symbol"}
	}
	return v + r.Add, nil
}

// Link resolves all symbols and branches and produces a firmware image.
func (b *Builder) Link() (*Image, error) {
	// Iterate layout until branch sizes are stable (relaxation only grows
	// entries, so this terminates).
	var syms map[string]uint16
	for pass := 0; ; pass++ {
		if pass > len(b.entries)+2 {
			return nil, &LinkError{Detail: "branch relaxation did not converge"}
		}
		var err error
		syms, err = b.layout()
		if err != nil {
			return nil, err
		}
		changed := false
		for i := range b.entries {
			e := &b.entries[i]
			if e.kind != kBranch || e.long {
				continue
			}
			tgt, ok := syms[e.target]
			if !ok {
				return nil, &LinkError{e.target, "undefined branch target"}
			}
			diff := int32(tgt) - int32(e.addr+2)
			off := diff / 2
			if diff%2 != 0 || off < -511 || off > 511 {
				e.long = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	img := NewImage()
	for k, v := range syms {
		img.Symbols[k] = v
	}
	for i := range b.entries {
		e := &b.entries[i]
		switch e.kind {
		case kInstr:
			in := e.in
			forceImm := false
			if e.src.Sym != "" {
				switch in.Src.Mode {
				case isa.ModeImmediate:
					forceImm = true
				case isa.ModeAbsolute, isa.ModeIndexed:
				default:
					return nil, &LinkError{e.src.Sym,
						fmt.Sprintf("source mode %v cannot carry a symbol reference", in.Src.Mode)}
				}
				v, err := resolveRef(syms, e.src, in.Src.X)
				if err != nil {
					return nil, err
				}
				in.Src.X = v
			}
			if e.dst.Sym != "" {
				switch in.Dst.Mode {
				case isa.ModeAbsolute, isa.ModeIndexed:
				default:
					return nil, &LinkError{e.dst.Sym,
						fmt.Sprintf("destination mode %v cannot carry a symbol reference", in.Dst.Mode)}
				}
				v, err := resolveRef(syms, e.dst, in.Dst.X)
				if err != nil {
					return nil, err
				}
				in.Dst.X = v
			}
			var words []uint16
			var err error
			if forceImm {
				words, err = isa.EncodeForceImm(in)
			} else {
				words, err = isa.Encode(in)
			}
			if err != nil {
				return nil, &LinkError{Detail: err.Error()}
			}
			img.putWords(e.addr, words)
		case kBranch:
			tgt := syms[e.target]
			if !e.long {
				off := (int32(tgt) - int32(e.addr+2)) / 2
				in := e.in
				in.Dst = isa.Operand{Mode: isa.ModeNone, X: uint16(int16(off))}
				img.putWords(e.addr, isa.MustEncode(in))
				break
			}
			if e.in.Op == isa.JMP {
				br := isa.Instr{Op: isa.MOV, Src: isa.Imm(tgt), Dst: isa.RegOp(isa.PC)}
				img.putWords(e.addr, isa.MustEncode(br))
				break
			}
			inv := invertJump(e.in.Op)
			if inv == e.in.Op {
				return nil, &LinkError{e.target, fmt.Sprintf("cannot relax %v to long form", e.in.Op)}
			}
			// J!cc skips the 4-byte BR that follows.
			skip := isa.Instr{Op: inv, Dst: isa.Operand{Mode: isa.ModeNone, X: 2}}
			img.putWords(e.addr, isa.MustEncode(skip))
			br := isa.Instr{Op: isa.MOV, Src: isa.Imm(tgt), Dst: isa.RegOp(isa.PC)}
			img.putWords(e.addr+2, isa.MustEncode(br))
		case kWord:
			v, err := resolveRef(syms, e.ref, e.val)
			if err != nil {
				return nil, err
			}
			img.putWords(e.addr, []uint16{v})
		case kBytes:
			img.putBytes(e.addr, e.data)
		case kSpace:
			img.putBytes(e.addr, make([]byte, e.size))
		case kAlign:
			img.putBytes(e.addr, make([]byte, e.size))
		}
	}
	img.normalize()
	return img, nil
}

// Symbols returns a sorted list of symbol names defined so far (labels bound
// on a prior Link pass are not required; this is a convenience for tools).
func (b *Builder) Symbols() []string {
	var names []string
	for i := range b.entries {
		if b.entries[i].kind == kLabel {
			names = append(names, b.entries[i].name)
		}
	}
	for n := range b.equs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
