package asm

import (
	"fmt"
	"sort"

	"amuletiso/internal/mem"
)

// Segment is a contiguous run of bytes at an absolute address.
type Segment struct {
	Addr uint16
	Data []byte
}

// End returns the first address past the segment.
func (s Segment) End() uint32 { return uint32(s.Addr) + uint32(len(s.Data)) }

// Image is linked firmware: located segments plus the symbol table.
type Image struct {
	Segments []Segment
	Symbols  map[string]uint16
	// Entry is the initial PC; loaders fall back to the symbol "__start".
	Entry uint16
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{Symbols: make(map[string]uint16)}
}

func (img *Image) putBytes(addr uint16, p []byte) {
	if len(p) == 0 {
		return
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	img.Segments = append(img.Segments, Segment{Addr: addr, Data: cp})
}

func (img *Image) putWords(addr uint16, ws []uint16) {
	p := make([]byte, 2*len(ws))
	for i, w := range ws {
		p[2*i] = byte(w)
		p[2*i+1] = byte(w >> 8)
	}
	img.Segments = append(img.Segments, Segment{Addr: addr, Data: p})
}

// normalize sorts segments and coalesces adjacent runs.
func (img *Image) normalize() {
	if len(img.Segments) == 0 {
		return
	}
	sort.SliceStable(img.Segments, func(i, j int) bool {
		return img.Segments[i].Addr < img.Segments[j].Addr
	})
	out := img.Segments[:1]
	for _, s := range img.Segments[1:] {
		last := &out[len(out)-1]
		if uint32(s.Addr) == last.End() {
			last.Data = append(last.Data, s.Data...)
		} else {
			out = append(out, s)
		}
	}
	img.Segments = out
	if e, ok := img.Symbols["__start"]; ok && img.Entry == 0 {
		img.Entry = e
	}
}

// Overlaps returns a description of the first pair of overlapping segments,
// or the empty string. The AFT uses this as a layout sanity check.
func (img *Image) Overlaps() string {
	for i := 1; i < len(img.Segments); i++ {
		prev, cur := img.Segments[i-1], img.Segments[i]
		if cur.Addr < prev.Addr || prev.End() > uint32(cur.Addr) {
			return fmt.Sprintf("segment at 0x%04X (%d bytes) overlaps segment at 0x%04X",
				prev.Addr, len(prev.Data), cur.Addr)
		}
	}
	return ""
}

// Size returns the total number of image bytes.
func (img *Image) Size() int {
	n := 0
	for _, s := range img.Segments {
		n += len(s.Data)
	}
	return n
}

// Sym returns the address of a symbol, with presence flag.
func (img *Image) Sym(name string) (uint16, bool) {
	v, ok := img.Symbols[name]
	return v, ok
}

// MustSym returns the address of a required symbol, panicking if absent;
// for toolchain-internal symbols whose absence is a toolchain bug.
func (img *Image) MustSym(name string) uint16 {
	v, ok := img.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: required symbol %q missing from image", name))
	}
	return v
}

// ReadCodeWord implements isa.WordReader over the linked image (segments are
// sorted and coalesced by normalize, so a binary search finds the byte's
// segment). Unmapped addresses read 0xFF, matching the erased-FRAM
// convention of a freshly loaded bus — a predecode cache built from the
// image therefore sees exactly the bytes a booted machine would.
func (img *Image) ReadCodeWord(addr uint16) uint16 {
	return uint16(img.byteAt(addr)) | uint16(img.byteAt(addr+1))<<8
}

// byteAt returns the image byte at addr, or 0xFF when unmapped.
func (img *Image) byteAt(addr uint16) byte {
	lo, hi := 0, len(img.Segments)
	for lo < hi {
		mid := (lo + hi) / 2
		s := img.Segments[mid]
		switch {
		case addr < s.Addr:
			hi = mid
		case uint32(addr) >= s.End():
			lo = mid + 1
		default:
			return s.Data[addr-s.Addr]
		}
	}
	return 0xFF
}

// LoadInto copies all segments into the bus (loader path, unchecked). The
// image itself is untouched: every loaded machine gets its own byte copy, so
// one linked image can boot any number of concurrent machines.
func (img *Image) LoadInto(b *mem.Bus) {
	for _, s := range img.Segments {
		b.LoadBytes(s.Addr, s.Data)
	}
}

// Clone returns a deep copy of the image — segments, symbols and entry —
// for callers that need a mutable copy (patching experiments, per-device
// firmware variants) without re-running the linker.
func (img *Image) Clone() *Image {
	cp := &Image{
		Segments: make([]Segment, len(img.Segments)),
		Symbols:  make(map[string]uint16, len(img.Symbols)),
		Entry:    img.Entry,
	}
	for i, s := range img.Segments {
		data := make([]byte, len(s.Data))
		copy(data, s.Data)
		cp.Segments[i] = Segment{Addr: s.Addr, Data: data}
	}
	for name, v := range img.Symbols {
		cp.Symbols[name] = v
	}
	return cp
}

// Merge copies another image's segments and symbols into img. Symbol
// collisions are reported as errors.
func (img *Image) Merge(other *Image) error {
	for name, v := range other.Symbols {
		if old, ok := img.Symbols[name]; ok && old != v {
			return &LinkError{name, fmt.Sprintf("defined at both 0x%04X and 0x%04X", old, v)}
		}
		img.Symbols[name] = v
	}
	img.Segments = append(img.Segments, other.Segments...)
	img.normalize()
	return nil
}
