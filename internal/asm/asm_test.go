package asm

import (
	"strings"
	"testing"

	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// runImage loads img into a fresh machine and runs until halt.
func runImage(t *testing.T, img *Image, budget uint64) *cpu.CPU {
	t.Helper()
	bus := mem.NewBus()
	c := cpu.New(bus)
	img.LoadInto(bus)
	c.SetPC(img.Entry)
	c.SetSP(0x2400)
	reason, f := c.Run(budget)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if reason != cpu.StopHalt {
		t.Fatalf("stop reason = %v, want halt", reason)
	}
	return c
}

func TestBuilderBasicProgram(t *testing.T) {
	b := NewBuilder()
	b.Org(0x4400)
	b.Label("__start")
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(3), Dst: isa.RegOp(isa.R4)})
	b.Label("loop")
	b.Emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R5)})
	b.Emit(isa.Instr{Op: isa.SUB, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)})
	b.Branch(isa.JNE, "loop")
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R5), Dst: isa.Abs(0)},
		NoRef, Ref{Sym: "result"})
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(cpu.PortHalt)})
	b.Org(0x1C00)
	b.Label("result")
	b.Word(0)

	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 10000)
	addr := img.MustSym("result")
	if got := c.Bus.Peek16(addr); got != 6 {
		t.Fatalf("result = %d, want 6 (3+2+1)", got)
	}
}

func TestBuilderUndefinedSymbol(t *testing.T) {
	b := NewBuilder()
	b.Org(0x4400)
	b.Branch(isa.JMP, "nowhere")
	if _, err := b.Link(); err == nil {
		t.Fatal("undefined branch target not reported")
	}

	b = NewBuilder()
	b.Org(0x4400)
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)},
		Ref{Sym: "ghost"}, NoRef)
	if _, err := b.Link(); err == nil {
		t.Fatal("undefined operand symbol not reported")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Org(0x4400)
	b.Label("x")
	b.Word(0)
	b.Label("x")
	if _, err := b.Link(); err == nil {
		t.Fatal("duplicate label not reported")
	}
}

func TestBranchRelaxation(t *testing.T) {
	// A conditional branch over >1 KiB of code must relax to J!cc + BR and
	// still behave correctly.
	b := NewBuilder()
	b.Org(0x4400)
	b.Label("__start")
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)})
	b.Emit(isa.Instr{Op: isa.CMP, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)})
	b.Branch(isa.JEQ, "far") // taken, but out of short range
	// 600 filler words of 1-cycle instructions (MOV R5,R5 = 1 word each).
	for i := 0; i < 600; i++ {
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R5)})
	}
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0xDEAD), Dst: isa.RegOp(isa.R6)})
	b.Label("far")
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0x600D), Dst: isa.RegOp(isa.R7)})
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(cpu.PortHalt)})
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 100000)
	if c.Regs[isa.R6] == 0xDEAD {
		t.Fatal("relaxed branch fell through")
	}
	if c.Regs[isa.R7] != 0x600D {
		t.Fatalf("R7 = %04X", c.Regs[isa.R7])
	}
}

func TestBackwardLongBranch(t *testing.T) {
	// Long backward JMP: code at high address jumps back past 1 KiB.
	b := NewBuilder()
	b.Org(0x4400)
	b.Label("__start")
	b.Branch(isa.JMP, "mid") // forward long jump
	b.Label("back")
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0x11), Dst: isa.RegOp(isa.R4)})
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(cpu.PortHalt)})
	for i := 0; i < 600; i++ {
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R5)})
	}
	b.Label("mid")
	b.Branch(isa.JMP, "back") // backward long jump
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 100000)
	if c.Regs[isa.R4] != 0x11 {
		t.Fatal("long backward jump missed")
	}
}

func TestImageOverlapDetection(t *testing.T) {
	b := NewBuilder()
	b.Org(0x4400)
	b.Word(1)
	b.Word(2)
	b.Org(0x4402) // overlaps second word
	b.Word(3)
	img, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if img.Overlaps() == "" {
		t.Fatal("overlap not detected")
	}
}

func TestImageMergeCollision(t *testing.T) {
	a := NewImage()
	a.Symbols["f"] = 0x4400
	b := NewImage()
	b.Symbols["f"] = 0x5000
	if err := a.Merge(b); err == nil {
		t.Fatal("symbol collision not reported")
	}
}

func TestAssembleTextProgram(t *testing.T) {
	img, err := Assemble(`
; compute 7 * 6 by repeated addition
.equ HALT, 0x01E0
.org 0x4400
__start:
        MOV   #7, R4        ; multiplicand
        MOV   #6, R5        ; count
        CLR   R6
loop:   ADD   R4, R6
        DEC   R5
        JNZ   loop
        MOV   R6, &product
        MOV   #0, &HALT
.org 0x1C00
product: .word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 10000)
	if got := c.Bus.Peek16(img.MustSym("product")); got != 42 {
		t.Fatalf("product = %d", got)
	}
}

func TestAssembleAddressingModes(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV   #buf, R4
        MOV   #0x1122, 0(R4)
        MOV   #0x3344, 2(R4)
        MOV   @R4+, R5      ; R5 = 1122, R4 = buf+2
        MOV   @R4, R6       ; R6 = 3344
        MOV.B #0xFF, &buf+4
        MOV   &buf+4, R7
        MOV   #0, &0x01E0
.org 0x1C00
buf:    .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 10000)
	if c.Regs[isa.R5] != 0x1122 || c.Regs[isa.R6] != 0x3344 {
		t.Fatalf("R5=%04X R6=%04X", c.Regs[isa.R5], c.Regs[isa.R6])
	}
	if c.Regs[isa.R7]&0xFF != 0xFF {
		t.Fatalf("R7=%04X", c.Regs[isa.R7])
	}
}

func TestAssembleEmulatedMnemonics(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV  #5, R4
        PUSH R4
        CLR  R4
        POP  R5          ; 5
        INC  R5          ; 6
        INCD R5          ; 8
        DEC  R5          ; 7
        TST  R5
        JZ   bad
        INV  R5          ; FFF8
        RLA  R5          ; FFF0
        SETC
        RLC  R4          ; 1
        NOP
        BR   #done
bad:    MOV  #1, R15
done:   MOV  #0, &0x01E0
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 10000)
	if c.Regs[isa.R5] != 0xFFF0 {
		t.Fatalf("R5 = %04X, want FFF0", c.Regs[isa.R5])
	}
	if c.Regs[isa.R4] != 1 {
		t.Fatalf("R4 = %04X, want 1 (RLC with carry)", c.Regs[isa.R4])
	}
	if c.Regs[isa.R15] == 1 {
		t.Fatal("JZ taken wrongly")
	}
}

func TestAssembleCallRet(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV  #3, R12
        CALL #double
        MOV  R12, &out
        MOV  #0, &0x01E0
double: ADD  R12, R12
        RET
.org 0x1C00
out:    .word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runImage(t, img, 10000)
	if got := c.Bus.Peek16(img.MustSym("out")); got != 6 {
		t.Fatalf("out = %d", got)
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	img, err := Assemble(`
.org 0x1C00
tbl:    .word 1, 2, tbl
bytes:  .byte 0xAA, 0xBB
msg:    .asciz "ok"
.align 4
aligned: .word 0
`)
	if err != nil {
		t.Fatal(err)
	}
	bus := mem.NewBus()
	img.LoadInto(bus)
	if bus.Peek16(0x1C04) != 0x1C00 {
		t.Fatalf("symbol in .word: %04X", bus.Peek16(0x1C04))
	}
	if bus.Peek8(0x1C06) != 0xAA || bus.Peek8(0x1C07) != 0xBB {
		t.Fatal(".byte wrong")
	}
	if bus.Peek8(0x1C08) != 'o' || bus.Peek8(0x1C09) != 'k' || bus.Peek8(0x1C0A) != 0 {
		t.Fatal(".asciz wrong")
	}
	if a := img.MustSym("aligned"); a%4 != 0 {
		t.Fatalf("aligned at %04X", a)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"BOGUS R4",
		"MOV #1",
		"JNE #5",
		".org zzz+",
		".equ 9name, 4",
		"MOV #1, @R4", // indirect destination
		".word \"str\"",
	}
	for _, src := range bad {
		if _, err := Assemble(".org 0x4400\n" + src); err == nil {
			t.Errorf("Assemble(%q) unexpectedly succeeded", src)
		}
	}
	// Error messages carry line numbers.
	_, err := Assemble("\n\nBOGUS R4\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("line number missing: %v", err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV  #0x1234, R4
        ADD  R4, R5
        CALL #__start
        RETI
`)
	if err != nil {
		t.Fatal(err)
	}
	text := DumpSegment(img.Segments[0])
	for _, want := range []string{"MOV #4660, R4", "ADD R4, R5", "CALL #17408", "RETI"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestImageClone(t *testing.T) {
	img, err := Assemble(`
.org 0x4400
__start:
        MOV  #0x1234, R4
        RETI
`)
	if err != nil {
		t.Fatal(err)
	}
	cp := img.Clone()
	if cp.Entry != img.Entry || cp.Size() != img.Size() {
		t.Fatalf("clone shape differs: entry %04X/%04X size %d/%d",
			cp.Entry, img.Entry, cp.Size(), img.Size())
	}
	if len(cp.Symbols) != len(img.Symbols) {
		t.Fatalf("clone lost symbols: %d vs %d", len(cp.Symbols), len(img.Symbols))
	}
	// Mutating the clone must not touch the original (deep copy).
	cp.Segments[0].Data[0] ^= 0xFF
	cp.Symbols["extra"] = 0x4400
	if img.Segments[0].Data[0] == cp.Segments[0].Data[0] {
		t.Error("clone shares segment bytes with the original")
	}
	if _, ok := img.Symbols["extra"]; ok {
		t.Error("clone shares the symbol table with the original")
	}
}
