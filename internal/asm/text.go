package asm

import (
	"fmt"
	"strconv"
	"strings"

	"amuletiso/internal/isa"
)

// SyntaxError reports a problem in assembler source text.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Assemble parses MSP430-syntax assembler text and links it into an image.
// See Parse for the accepted syntax.
func Assemble(src string) (*Image, error) {
	b := NewBuilder()
	if err := Parse(src, b); err != nil {
		return nil, err
	}
	return b.Link()
}

// Parse appends the program in src to the builder. The syntax is classic
// MSP430 assembler:
//
//	; comment                     // comment
//	label:  MOV.B  #5, &flag      ; immediate, absolute
//	        MOV    2(R4), R5      ; indexed
//	        ADD    @R4+, R5       ; autoincrement
//	        JNE    label          ; branches take labels
//	        CALL   #func
//	        RET                   ; emulated instructions supported
//	.org   0x4400                 ; location counter
//	.equ   NAME, 0x1234           ; absolute symbol
//	.word  1, label, label+2      ; data
//	.byte  1, 2, 3
//	.ascii "text"                 ; also .asciz
//	.space 16
//	.align 2
func Parse(src string, b *Builder) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		if err := parseLine(raw, line, b); err != nil {
			return err
		}
	}
	return nil
}

func parseLine(raw string, line int, b *Builder) error {
	s := raw
	if j := strings.IndexAny(s, ";"); j >= 0 {
		s = s[:j]
	}
	if j := strings.Index(s, "//"); j >= 0 {
		s = s[:j]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Leading label(s).
	for {
		j := strings.Index(s, ":")
		if j < 0 {
			break
		}
		name := strings.TrimSpace(s[:j])
		if !isIdent(name) {
			break
		}
		b.Label(name)
		s = strings.TrimSpace(s[j+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return parseDirective(s, line, b)
	}
	return parseInstr(s, line, b)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.', r == '$':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitArgs splits a comma-separated argument list (no nesting in this
// syntax, so a plain split suffices — string literals are handled by the
// directives that accept them before calling this).
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseDirective(s string, line int, b *Builder) error {
	fields := strings.SplitN(s, " ", 2)
	dir := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".org":
		v, _, err := parseExprConst(rest, line)
		if err != nil {
			return err
		}
		b.Org(v)
	case ".equ", ".set":
		args := splitArgs(rest)
		if len(args) != 2 || !isIdent(args[0]) {
			return &SyntaxError{line, ".equ needs NAME, VALUE"}
		}
		v, _, err := parseExprConst(args[1], line)
		if err != nil {
			return err
		}
		b.Equ(args[0], v)
	case ".word":
		for _, a := range splitArgs(rest) {
			ref, c, err := parseExpr(a, line)
			if err != nil {
				return err
			}
			if ref.Sym != "" {
				b.WordRef(ref)
			} else {
				b.Word(c)
			}
		}
	case ".byte":
		var bs []byte
		for _, a := range splitArgs(rest) {
			v, _, err := parseExprConst(a, line)
			if err != nil {
				return err
			}
			bs = append(bs, byte(v))
		}
		b.Bytes(bs)
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return &SyntaxError{line, "bad string literal: " + rest}
		}
		data := []byte(str)
		if dir == ".asciz" {
			data = append(data, 0)
		}
		b.Bytes(data)
	case ".space", ".skip":
		v, _, err := parseExprConst(rest, line)
		if err != nil {
			return err
		}
		b.Space(v)
	case ".align":
		v, _, err := parseExprConst(rest, line)
		if err != nil {
			return err
		}
		b.Align(v)
	default:
		return &SyntaxError{line, "unknown directive " + dir}
	}
	return nil
}

// parseExpr parses NUMBER | SYM | SYM+N | SYM-N, returning either a symbol
// reference or a constant.
func parseExpr(s string, line int) (Ref, uint16, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return NoRef, 0, &SyntaxError{line, "empty expression"}
	}
	// Character literal.
	if strings.HasPrefix(s, "'") {
		r, err := strconv.Unquote(s)
		if err != nil || len(r) != 1 {
			return NoRef, 0, &SyntaxError{line, "bad char literal " + s}
		}
		return NoRef, uint16(r[0]), nil
	}
	// Pure number (including negative).
	if v, err := strconv.ParseInt(s, 0, 32); err == nil {
		return NoRef, uint16(int32(v)), nil
	}
	// SYM, SYM+N, SYM-N.
	sym, add := s, uint16(0)
	for _, opc := range []byte{'+', '-'} {
		if j := strings.LastIndexByte(s, opc); j > 0 {
			n, err := strconv.ParseInt(strings.TrimSpace(s[j+1:]), 0, 32)
			if err != nil {
				continue
			}
			sym = strings.TrimSpace(s[:j])
			if opc == '-' {
				n = -n
			}
			add = uint16(int32(n))
			break
		}
	}
	if !isIdent(sym) {
		return NoRef, 0, &SyntaxError{line, "bad expression " + s}
	}
	return Ref{Sym: sym, Add: add}, 0, nil
}

// parseExprConst parses an expression that must be constant.
func parseExprConst(s string, line int) (uint16, bool, error) {
	ref, c, err := parseExpr(s, line)
	if err != nil {
		return 0, false, err
	}
	if ref.Sym != "" {
		return 0, false, &SyntaxError{line, "constant required, got symbol " + ref.Sym}
	}
	return c, true, nil
}

var regNames = map[string]isa.Reg{
	"PC": isa.PC, "SP": isa.SP, "SR": isa.SR, "CG": isa.CG,
	"R0": isa.PC, "R1": isa.SP, "R2": isa.SR, "R3": isa.CG,
	"R4": isa.R4, "R5": isa.R5, "R6": isa.R6, "R7": isa.R7,
	"R8": isa.R8, "R9": isa.R9, "R10": isa.R10, "R11": isa.R11,
	"R12": isa.R12, "R13": isa.R13, "R14": isa.R14, "R15": isa.R15,
}

// parseOperand parses one operand, returning the operand template and an
// optional symbol reference for its extension word.
func parseOperand(s string, line int) (isa.Operand, Ref, error) {
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	if r, ok := regNames[up]; ok {
		return isa.RegOp(r), NoRef, nil
	}
	switch {
	case strings.HasPrefix(s, "#"):
		ref, c, err := parseExpr(s[1:], line)
		if err != nil {
			return isa.Operand{}, NoRef, err
		}
		return isa.Imm(c), ref, nil
	case strings.HasPrefix(s, "&"):
		ref, c, err := parseExpr(s[1:], line)
		if err != nil {
			return isa.Operand{}, NoRef, err
		}
		return isa.Abs(c), ref, nil
	case strings.HasPrefix(s, "@"):
		rest := strings.TrimPrefix(s, "@")
		inc := strings.HasSuffix(rest, "+")
		rest = strings.ToUpper(strings.TrimSuffix(rest, "+"))
		r, ok := regNames[rest]
		if !ok {
			return isa.Operand{}, NoRef, &SyntaxError{line, "bad indirect operand " + s}
		}
		if inc {
			return isa.IndInc(r), NoRef, nil
		}
		return isa.Ind(r), NoRef, nil
	case strings.HasSuffix(s, ")"):
		j := strings.LastIndex(s, "(")
		if j < 0 {
			return isa.Operand{}, NoRef, &SyntaxError{line, "bad indexed operand " + s}
		}
		r, ok := regNames[strings.ToUpper(strings.TrimSpace(s[j+1:len(s)-1]))]
		if !ok {
			return isa.Operand{}, NoRef, &SyntaxError{line, "bad index register in " + s}
		}
		ref, c, err := parseExpr(s[:j], line)
		if err != nil {
			return isa.Operand{}, NoRef, err
		}
		return isa.Idx(c, r), ref, nil
	default:
		// Bare symbol or number: absolute addressing of that location.
		ref, c, err := parseExpr(s, line)
		if err != nil {
			return isa.Operand{}, NoRef, err
		}
		return isa.Abs(c), ref, nil
	}
}

var jumpOps = map[string]isa.Op{
	"JNE": isa.JNE, "JNZ": isa.JNE,
	"JEQ": isa.JEQ, "JZ": isa.JEQ,
	"JNC": isa.JNC, "JLO": isa.JNC,
	"JC": isa.JC, "JHS": isa.JC,
	"JN": isa.JN, "JGE": isa.JGE, "JL": isa.JL, "JMP": isa.JMP,
}

var twoOps = map[string]isa.Op{
	"MOV": isa.MOV, "ADD": isa.ADD, "ADDC": isa.ADDC, "SUBC": isa.SUBC,
	"SUB": isa.SUB, "CMP": isa.CMP, "DADD": isa.DADD, "BIT": isa.BIT,
	"BIC": isa.BIC, "BIS": isa.BIS, "XOR": isa.XOR, "AND": isa.AND,
}

var oneOps = map[string]isa.Op{
	"RRC": isa.RRC, "SWPB": isa.SWPB, "RRA": isa.RRA, "SXT": isa.SXT,
	"PUSH": isa.PUSH, "CALL": isa.CALL,
}

func parseInstr(s string, line int, b *Builder) error {
	var mn, rest string
	if j := strings.IndexAny(s, " \t"); j >= 0 {
		mn, rest = s[:j], strings.TrimSpace(s[j+1:])
	} else {
		mn = s
	}
	mn = strings.ToUpper(mn)

	byteOp := false
	if strings.HasSuffix(mn, ".B") {
		byteOp = true
		mn = strings.TrimSuffix(mn, ".B")
	} else {
		mn = strings.TrimSuffix(mn, ".W")
	}

	if op, ok := jumpOps[mn]; ok {
		tgt := strings.TrimSpace(rest)
		if !isIdent(tgt) {
			return &SyntaxError{line, "jump needs a label target, got " + rest}
		}
		b.Branch(op, tgt)
		return nil
	}

	emitOne := func(op isa.Op, operand string) error {
		o, ref, err := parseOperand(operand, line)
		if err != nil {
			return err
		}
		b.EmitRef(isa.Instr{Op: op, Byte: byteOp, Src: o}, ref, NoRef)
		return nil
	}
	emitTwo := func(op isa.Op, srcS, dstS string) error {
		so, sref, err := parseOperand(srcS, line)
		if err != nil {
			return err
		}
		do, dref, err := parseOperand(dstS, line)
		if err != nil {
			return err
		}
		b.EmitRef(isa.Instr{Op: op, Byte: byteOp, Src: so, Dst: do}, sref, dref)
		return nil
	}

	if op, ok := twoOps[mn]; ok {
		args := splitArgs(rest)
		if len(args) != 2 {
			return &SyntaxError{line, mn + " needs 2 operands"}
		}
		return emitTwo(op, args[0], args[1])
	}
	if op, ok := oneOps[mn]; ok {
		args := splitArgs(rest)
		if len(args) != 1 {
			return &SyntaxError{line, mn + " needs 1 operand"}
		}
		return emitOne(op, args[0])
	}

	// Emulated instructions.
	args := splitArgs(rest)
	need := func(n int) error {
		if len(args) != n {
			return &SyntaxError{line, fmt.Sprintf("%s needs %d operand(s)", mn, n)}
		}
		return nil
	}
	switch mn {
	case "RETI":
		b.Emit(isa.Instr{Op: isa.RETI})
	case "RET":
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)})
	case "NOP":
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.CG)})
	case "POP":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.MOV, "@SP+", args[0])
	case "BR":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.MOV, args[0], "PC")
	case "CLR":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.MOV, "#0", args[0])
	case "CLRC":
		b.Emit(isa.Instr{Op: isa.BIC, Src: isa.Imm(1), Dst: isa.RegOp(isa.SR)})
	case "SETC":
		b.Emit(isa.Instr{Op: isa.BIS, Src: isa.Imm(1), Dst: isa.RegOp(isa.SR)})
	case "CLRZ":
		b.Emit(isa.Instr{Op: isa.BIC, Src: isa.Imm(2), Dst: isa.RegOp(isa.SR)})
	case "SETZ":
		b.Emit(isa.Instr{Op: isa.BIS, Src: isa.Imm(2), Dst: isa.RegOp(isa.SR)})
	case "CLRN":
		b.Emit(isa.Instr{Op: isa.BIC, Src: isa.Imm(4), Dst: isa.RegOp(isa.SR)})
	case "SETN":
		b.Emit(isa.Instr{Op: isa.BIS, Src: isa.Imm(4), Dst: isa.RegOp(isa.SR)})
	case "DINT":
		b.Emit(isa.Instr{Op: isa.BIC, Src: isa.Imm(8), Dst: isa.RegOp(isa.SR)})
	case "EINT":
		b.Emit(isa.Instr{Op: isa.BIS, Src: isa.Imm(8), Dst: isa.RegOp(isa.SR)})
	case "INC":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.ADD, "#1", args[0])
	case "INCD":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.ADD, "#2", args[0])
	case "DEC":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.SUB, "#1", args[0])
	case "DECD":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.SUB, "#2", args[0])
	case "TST":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.CMP, "#0", args[0])
	case "INV":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.XOR, "#-1", args[0])
	case "RLA":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.ADD, args[0], args[0])
	case "RLC":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.ADDC, args[0], args[0])
	case "ADC":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.ADDC, "#0", args[0])
	case "SBC":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.SUBC, "#0", args[0])
	case "DADC":
		if err := need(1); err != nil {
			return err
		}
		return emitTwo(isa.DADD, "#0", args[0])
	default:
		return &SyntaxError{line, "unknown mnemonic " + mn}
	}
	return nil
}
