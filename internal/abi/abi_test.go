package abi

import (
	"strings"
	"testing"
)

func TestAPITableConsistent(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAPIByName(t *testing.T) {
	f, ok := APIByName("amulet_read_hr")
	if !ok || f.Sys != SysReadHR {
		t.Fatalf("lookup failed: %+v %v", f, ok)
	}
	if _, ok := APIByName("not_an_api"); ok {
		t.Fatal("phantom API found")
	}
}

func TestPointerAPIsDeclareTheirArgument(t *testing.T) {
	for _, f := range API {
		if f.PtrArg >= 0 && f.PtrArg >= f.NArgs {
			t.Errorf("%s: PtrArg out of range", f.Name)
		}
		if !strings.HasPrefix(f.Name, "amulet_") {
			t.Errorf("%s: API names must carry the amulet_ prefix", f.Name)
		}
	}
}

func TestSymbolNamingDisjoint(t *testing.T) {
	// Per-unit symbols for different units must never collide, and the
	// different kinds within one unit must be distinct.
	syms := []string{
		SymCodeLo("a"), SymCodeHi("a"), SymDataLo("a"), SymDataHi("a"),
		SymFault("a"), SymStackTop("a"), SymFunc("a", "f"), SymGlobal("a", "g"),
		SymCodeLo("b"), SymFunc("b", "f"), SymGlobal("b", "g"),
		SymGate("amulet_yield"), SymRT("mul"), SymOSCodeLo,
	}
	seen := map[string]bool{}
	for _, s := range syms {
		if seen[s] {
			t.Errorf("symbol collision: %s", s)
		}
		seen[s] = true
	}
}
