// Package abi pins down the binary interface shared by the AmuletC compiler
// (internal/cc), the firmware toolchain (internal/aft) and the AmuletOS
// kernel (internal/kernel): the calling convention, the OS API table and
// syscall numbers, kernel port addresses, and the naming scheme for the
// per-application boundary symbols that isolation checks compare against.
package abi

import "fmt"

// Calling convention (mspgcc-style):
//
//   - the first four word arguments travel in R12, R13, R14, R15;
//     further arguments are pushed right to left;
//   - the result is returned in R12;
//   - R12-R15 are caller-saved, R4-R11 callee-saved;
//   - the stack grows downward; SP points at the last pushed word.
const (
	// MaxRegArgs is the number of arguments passed in registers.
	MaxRegArgs = 4
)

// Kernel ports (memory-mapped in peripheral space, above the CPU debug
// ports). Gate code writes these with ordinary MOV instructions.
const (
	PortFault    uint16 = 0x01F0 // write: app raised an isolation fault; value = app ID
	PortYield    uint16 = 0x01F2 // write: dispatch veneer finished an event
	PortSvcExtra uint16 = 0x01F4 // write: 5th+ syscall argument staging
)

// Kernel-owned OS globals referenced by generated gate code. These live in
// OS data (placed by the AFT) and are addressed through link-time symbols.
const (
	SymVarSavedSP   = "os.var.saved_sp"   // app SP stashed while in the OS
	SymVarOSStackSP = "os.var.stack_top"  // holds the OS stack top value (SRAM)
	SymVarAppSP     = "os.var.app_sp"     // app SP to install on dispatch
	SymVarCurB1     = "os.var.cur_b1"     // current app's MPU boundary 1
	SymVarCurB2     = "os.var.cur_b2"     // current app's MPU boundary 2
	SymVarCurSAM    = "os.var.cur_sam"    // current app's MPUSAM rights
	SymVarGateCount = "os.var.gate_count" // context-switch bookkeeping counter
	SymVarCurApp    = "os.var.cur_app"    // current app ID
)

// Fixed OS layout symbols defined by the AFT.
const (
	SymOSDataLo = "os.__data_lo"   // start of OS data (MPU boundary 1, OS plan)
	SymAppsBase = "os.__apps_base" // first app address (MPU boundary 2, OS plan)
	SymDispatch = "os.dispatch"    // event dispatch veneer
	SymOSFault  = "os.fault"       // shared fault sink (runtime library target)
	SymGateFail = "os.gate.fail"   // gate pointer-validation failure stub
)

// FaultCurrentApp is the PortFault value meaning "the currently-running
// app" (used by shared stubs that cannot name an app statically).
const FaultCurrentApp uint16 = 0xFFFF

// Syscall numbers. The id is written to the CPU syscall port by gate code;
// the kernel dispatches to the matching service.
const (
	SysGetTime      uint16 = 1  // () -> ms since boot (low word)
	SysReadAccel    uint16 = 2  // (axis 0..2) -> milli-g sample
	SysReadHR       uint16 = 3  // () -> heart rate bpm
	SysReadTemp     uint16 = 4  // () -> temperature in 0.1 C
	SysReadLight    uint16 = 5  // () -> ambient light lux
	SysReadBattery  uint16 = 6  // () -> battery percent
	SysDisplayClear uint16 = 7  // () -> 0
	SysDisplayText  uint16 = 8  // (ptr, len, row) -> 0
	SysDisplayDraw  uint16 = 9  // (x, y, glyph) -> 0
	SysLogWrite     uint16 = 10 // (ptr, len) -> bytes logged
	SysLogValue     uint16 = 11 // (tag, value) -> 0
	SysSetTimer     uint16 = 12 // (ms) -> timer id; fires a TimerEvent
	SysRand         uint16 = 13 // () -> pseudo-random word
	SysSubscribe    uint16 = 14 // (sensor, rate) -> 0; enables sensor events
	SysGetSteps     uint16 = 15 // () -> pedometer hardware step register
	SysYield        uint16 = 16 // () -> 0; cooperative yield point
	SysPing         uint16 = 17 // (ptr) -> 0; no-op probe with a pointer argument,
	//                             used to measure bare gate cost (Table 1)
)

// APIFunc describes one OS API function callable from AmuletC.
type APIFunc struct {
	Name    string // AmuletC-visible name
	Sys     uint16 // syscall number
	NArgs   int    // number of word arguments
	HasRet  bool   // returns a word in R12
	PtrArg  int    // index of a pointer argument, or -1 (gates validate it)
	LenArg  int    // index of the matching length argument, or -1
	Comment string
}

// API is the OS call table, in stable order. Sema checks app calls against
// this list; the AFT generates one gate per entry; the kernel implements
// each service.
var API = []APIFunc{
	{"amulet_get_time", SysGetTime, 0, true, -1, -1, "milliseconds since boot"},
	{"amulet_read_accel", SysReadAccel, 1, true, -1, -1, "accelerometer axis sample (milli-g)"},
	{"amulet_read_hr", SysReadHR, 0, true, -1, -1, "heart-rate sensor (bpm)"},
	{"amulet_read_temp", SysReadTemp, 0, true, -1, -1, "temperature (deci-celsius)"},
	{"amulet_read_light", SysReadLight, 0, true, -1, -1, "ambient light (lux)"},
	{"amulet_read_battery", SysReadBattery, 0, true, -1, -1, "battery level (percent)"},
	{"amulet_display_clear", SysDisplayClear, 0, false, -1, -1, "clear the display"},
	{"amulet_display_text", SysDisplayText, 3, false, 0, 1, "draw text (ptr, len, row)"},
	{"amulet_display_draw", SysDisplayDraw, 3, false, -1, -1, "draw a glyph (x, y, glyph)"},
	{"amulet_log_write", SysLogWrite, 2, true, 0, 1, "append raw bytes to the app log"},
	{"amulet_log_value", SysLogValue, 2, false, -1, -1, "append a tagged value to the app log"},
	{"amulet_set_timer", SysSetTimer, 1, true, -1, -1, "arm a one-shot timer (ms)"},
	{"amulet_rand", SysRand, 0, true, -1, -1, "pseudo-random word"},
	{"amulet_subscribe", SysSubscribe, 2, false, -1, -1, "subscribe to sensor events (sensor, rate)"},
	{"amulet_get_steps", SysGetSteps, 0, true, -1, -1, "hardware step-counter register"},
	{"amulet_yield", SysYield, 0, false, -1, -1, "cooperative yield"},
	{"amulet_ping", SysPing, 1, false, 0, -1, "no-op probe carrying a pointer (gate microbenchmark)"},
}

// APIByName returns the API entry for an AmuletC-visible name.
func APIByName(name string) (APIFunc, bool) {
	for _, f := range API {
		if f.Name == name {
			return f, true
		}
	}
	return APIFunc{}, false
}

// Sensor identifiers for amulet_subscribe / sensor events.
const (
	SensorAccel  = 0
	SensorHR     = 1
	SensorTemp   = 2
	SensorLight  = 3
	SensorButton = 4
)

// Event codes delivered to app handlers (first handler argument).
const (
	EvInit   = 0 // app start
	EvTimer  = 1 // timer expiry (arg = timer id)
	EvSensor = 2 // sensor sample (arg = value); sensor in high byte of event? no: one event per subscription
	EvButton = 3 // user button (arg = button id)
	EvTick   = 4 // periodic scheduler tick
)

// Boundary and toolchain symbol naming. Every app compilation unit "u" gets
// these link-time symbols; isolation checks compare addresses against them.
func SymCodeLo(unit string) string { return unit + ".__code_lo" }

// SymCodeHi names the first address past the unit's code.
func SymCodeHi(unit string) string { return unit + ".__code_hi" }

// SymDataLo names the start of the unit's data/stack segment (the paper's Di).
func SymDataLo(unit string) string { return unit + ".__data_lo" }

// SymDataHi names the first address past the unit's data segment (Ei).
func SymDataHi(unit string) string { return unit + ".__data_hi" }

// SymFault names the unit's fault stub (jump target of failed checks).
func SymFault(unit string) string { return unit + ".__fault" }

// SymStackTop names the initial stack pointer of the unit.
func SymStackTop(unit string) string { return unit + ".__stack_top" }

// SymGate names the shared OS gate for one API function.
func SymGate(apiName string) string { return "os.gate." + apiName }

// SymFunc names a compiled AmuletC function within a unit.
func SymFunc(unit, fn string) string { return unit + "." + fn }

// SymGlobal names a compiled AmuletC global within a unit.
func SymGlobal(unit, g string) string { return unit + ".g." + g }

// SymRT names a shared runtime-library routine (multiply, divide, bounds).
func SymRT(name string) string { return "rt." + name }

// SymOSCodeLo names the base of executable code (start of OS code in FRAM).
// Return-address checks use it as their lower bound: a return may land in
// the app's own code or in OS code below it (the dispatch veneer and gates
// live there), but never in data, stacks or higher apps.
const SymOSCodeLo = "os.__code_lo"

// Validate performs internal consistency checks on the API table; returns
// the first problem found, or nil. Used by tests.
func Validate() error {
	seen := map[string]bool{}
	ids := map[uint16]string{}
	for _, f := range API {
		if seen[f.Name] {
			return fmt.Errorf("abi: duplicate API name %q", f.Name)
		}
		seen[f.Name] = true
		if prev, dup := ids[f.Sys]; dup {
			return fmt.Errorf("abi: syscall %d shared by %q and %q", f.Sys, prev, f.Name)
		}
		ids[f.Sys] = f.Name
		if f.NArgs > MaxRegArgs {
			return fmt.Errorf("abi: %q has %d args; gates support at most %d", f.Name, f.NArgs, MaxRegArgs)
		}
		if f.PtrArg >= f.NArgs || f.LenArg >= f.NArgs {
			return fmt.Errorf("abi: %q pointer/length argument out of range", f.Name)
		}
	}
	return nil
}
