package fleet

import "sync/atomic"

// Wear-window batching. Two amortizations, both behind one switch (the
// `-nobatch` escape hatch the CLIs expose):
//
//   - workers claim contiguous batches of work items instead of one item per
//     channel round trip, so the pool's coordination cost stays flat as
//     fleets grow to thousands of devices;
//   - inside one device, the wear window is delivered in bounded batches of
//     kernel events (kernel.RunBatch) between cancellation checks, keeping
//     workers responsive without paying a context poll per event.
//
// Batching is a scheduling change only: per-device results are pure
// functions of (firmware, seed, scenario), workers write disjoint slots, and
// RunBatch advances virtual time exactly as RunUntil would — so reports stay
// byte-identical at any parallelism with batching on or off (the fleet
// determinism tests pin this).

// batchingOff globally disables wear-window batching when set.
var batchingOff atomic.Bool

// SetBatching enables or disables wear-window batching process-wide. It is
// consulted at the start of each run, so it may be toggled between runs.
func SetBatching(on bool) { batchingOff.Store(!on) }

// BatchingEnabled reports whether fleet runs use wear-window batching.
func BatchingEnabled() bool { return !batchingOff.Load() }

// EventBatch is the number of kernel events a worker delivers per slice of a
// device's wear window before re-checking for cancellation.
const EventBatch = 64

// maxChunk bounds how many work items one worker claim may cover; small
// enough that tail workers never idle behind one long claim.
const maxChunk = 64

// chunkFor sizes a worker claim for n items over the given pool, honoring
// the batching switch.
func chunkFor(n, workers int) int {
	if !BatchingEnabled() || workers <= 0 {
		return 1
	}
	c := n / (workers * 4)
	if c < 1 {
		return 1
	}
	if c > maxChunk {
		return maxChunk
	}
	return c
}
