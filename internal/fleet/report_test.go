package fleet

import (
	"bytes"
	"context"
	"math"
	"testing"

	"amuletiso/internal/obs"
)

// TestSummarizeNearestRank pins summarize to the nearest-rank (ceiling)
// convention at the boundary sizes where the old round-half-up conversion
// picked the wrong element: the p-th percentile over n sorted values is
// s[ceil(p/100*n)-1].
func TestSummarizeNearestRank(t *testing.T) {
	ladder := func(n int) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i + 1) // sorted 1..n: value == 1-based rank
		}
		return vals
	}
	rank := func(p float64, n int) float64 {
		return math.Ceil(p / 100 * float64(n)) // expected value in a 1..n ladder
	}
	for _, n := range []int{1, 3, 7, 10, 100} {
		sum := summarize(ladder(n))
		for _, tc := range []struct {
			p    float64
			got  float64
			name string
		}{
			{50, sum.P50, "p50"},
			{90, sum.P90, "p90"},
			{99, sum.P99, "p99"},
		} {
			want := rank(tc.p, n)
			if tc.got != want {
				t.Errorf("n=%d %s = %v, want rank %v", n, tc.name, tc.got, want)
			}
		}
		if sum.Min != 1 || sum.Max != float64(n) {
			t.Errorf("n=%d min/max = %v/%v, want 1/%d", n, sum.Min, sum.Max, n)
		}
	}
	// The regression from the issue: p90 over 7 devices must be the 7th
	// value (ceil(6.3) = 7), not the 6th the rounding conversion returned.
	if got := summarize(ladder(7)).P90; got != 7 {
		t.Errorf("p90 over 7 values = %v, want 7", got)
	}
	// n=10 p50 sits exactly on a rank boundary: ceil(5.0) = 5, no off-by-one.
	if got := summarize(ladder(10)).P50; got != 5 {
		t.Errorf("p50 over 10 values = %v, want 5", got)
	}
	if got := summarize(nil); got != (Summary{}) {
		t.Errorf("summarize(nil) = %+v, want zero", got)
	}
}

// TestSummarizeMatchesCycleHistConvention cross-checks summarize against
// obs.CycleHist.Quantile (the convention PR 7 fixed): feeding both the same
// samples, summarize's percentile must land in the bucket CycleHist reports.
func TestSummarizeMatchesCycleHistConvention(t *testing.T) {
	for _, n := range []int{1, 3, 7, 10, 100} {
		var h obs.CycleHist
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			v := uint64(i+1) * 100 // well inside distinct low buckets
			h.Observe(v)
			vals[i] = float64(v)
		}
		sum := summarize(vals)
		for _, q := range []struct {
			frac float64
			pct  float64
			got  float64
		}{
			{0.50, 50, sum.P50},
			{0.90, 90, sum.P90},
			{0.99, 99, sum.P99},
		} {
			bound := h.Quantile(q.frac)
			// CycleHist reports the bucket upper bound (or Max for the last
			// bucket); the exact nearest-rank value must not exceed it, and
			// must fall past the previous bucket's bound.
			if uint64(q.got) > bound && bound != h.Max {
				t.Errorf("n=%d p%.0f: summarize %v above CycleHist bound %d",
					n, q.pct, q.got, bound)
			}
			// Both conventions must agree on the rank itself: recompute the
			// rank CycleHist used and check summarize picked the same sample.
			rank := int(math.Ceil(q.frac * float64(n)))
			if want := float64(rank * 100); q.got != want {
				t.Errorf("n=%d p%.0f = %v, want rank-%d value %v", n, q.pct, q.got, rank, want)
			}
		}
	}
}

// TestReportMergeFailurePaths exercises every rejection branch of Merge and
// asserts a failed merge leaves the receiver untouched.
func TestReportMergeFailurePaths(t *testing.T) {
	sc := testScenario(4)
	full, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	shard := func(devs []DeviceResult) *Report {
		return &Report{
			Scenario: full.Scenario, Mode: full.Mode, Seed: full.Seed,
			DurationMS: full.DurationMS,
			PerDevice:  append([]DeviceResult(nil), devs...),
		}
	}
	base := shard(full.PerDevice[:2])
	base.finalize()
	golden := marshal(t, base)

	mutations := []struct {
		name   string
		mutate func(r *Report)
	}{
		{"scenario name", func(r *Report) { r.Scenario = "other" }},
		{"mode", func(r *Report) { r.Mode = "NoIsolation" }},
		{"seed", func(r *Report) { r.Seed++ }},
		{"duration", func(r *Report) { r.DurationMS++ }},
	}
	for _, m := range mutations {
		other := shard(full.PerDevice[2:])
		m.mutate(other)
		if err := base.Merge(other); err == nil {
			t.Errorf("merge with mismatched %s succeeded", m.name)
		}
	}
	// Device overlap: same indices on both sides.
	if err := base.Merge(shard(full.PerDevice[1:3])); err == nil {
		t.Error("merge with overlapping device indices succeeded")
	}
	// Self-merge is the degenerate overlap case.
	if err := base.Merge(base); err == nil {
		t.Error("self-merge succeeded")
	}
	if !bytes.Equal(golden, marshal(t, base)) {
		t.Error("failed merges mutated the receiver")
	}
}

// TestSchedulerShardUnionByteIdentity asserts the daemon scheduler's shard
// planning — contiguous FirstDevice ranges of varying sizes, merged in
// completion order rather than index order — reproduces the union run
// byte-for-byte. This is the property the fleetd NDJSON stream relies on.
func TestSchedulerShardUnionByteIdentity(t *testing.T) {
	sc := testScenario(11)
	full, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, shardDevices := range []int{1, 3, 4, 11, 20} {
		runner := &Runner{Workers: 2, Cache: NewBuildCache()}
		var reports []*Report
		for first := 0; first < sc.Devices; first += shardDevices {
			n := shardDevices
			if first+n > sc.Devices {
				n = sc.Devices - first
			}
			shard := sc
			shard.FirstDevice = first
			shard.Devices = n
			rep, err := runner.Run(context.Background(), shard)
			if err != nil {
				t.Fatalf("shardDevices=%d first=%d: %v", shardDevices, first, err)
			}
			reports = append(reports, rep)
		}
		// Merge out of order (last shard first), as a daemon receiving
		// completions from a pool would.
		merged := reports[len(reports)-1]
		for i := len(reports) - 2; i >= 0; i-- {
			if err := merged.Merge(reports[i]); err != nil {
				t.Fatalf("shardDevices=%d: merge: %v", shardDevices, err)
			}
		}
		if !bytes.Equal(marshal(t, merged), marshal(t, full)) {
			t.Fatalf("shardDevices=%d: merged shard union differs from union run", shardDevices)
		}
	}
}
