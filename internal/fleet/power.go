package fleet

import (
	"sync/atomic"

	"amuletiso/internal/kernel"
	"amuletiso/internal/obs"
	"amuletiso/internal/power"
)

// This file wires the intermittent-power model into the device loop. A
// powered device carries a supercapacitor whose charge is integrated at
// fixed PowerCheckMS boundaries of virtual time: harvest from the device's
// seeded trace, drain from executed cycles (power.EnergyPerCyclePJ) plus the
// platform's idle draw. When charge falls to the brownout threshold the
// device takes a power-loss fault: its volatile state is dropped through
// kernel.PersistentCut, its COW pages go back to the arena, and it sits dark
// — harvesting, drawing nothing — until the capacitor recovers to the
// restart threshold, when it reboots from the FRAM cut.
//
// All charge arithmetic is integer picojoules and happens only at the fixed
// boundaries, so a device browns out at exactly the same virtual millisecond
// no matter how the wear window is segmented, how many workers run the
// fleet, or how often the campaign is checkpointed and resumed.

// powerOff globally disables the intermittent-power model when set — the
// -nopower escape hatch. With the model off, scenarios with power knobs run
// exactly as if the knobs were absent.
var powerOff atomic.Bool

// SetPower enables or disables intermittent-power modeling process-wide. It
// is consulted at device boot, so it may be toggled between runs.
func SetPower(on bool) { powerOff.Store(!on) }

// PowerEnabled reports whether fleet runs model intermittent power.
func PowerEnabled() bool { return !powerOff.Load() }

// PowerCheckMS is the charge-integration quantum: the supercapacitor state
// is updated, and brownout/restart decisions taken, every this many virtual
// milliseconds. Fixed (never scenario-tunable) so power event times are a
// pure function of the device, not of run segmentation.
const PowerCheckMS = 50

// defaultForcedOffMS is how long a forced brownout (Scenario.BrownoutEveryMS)
// keeps the device dark when the scenario leaves BrownoutOffMS zero.
const defaultForcedOffMS = 500

// powered reports whether this scenario models power for its devices.
func (sc *Scenario) powered() bool {
	return PowerEnabled() && (sc.PowerTrace != "" || sc.BrownoutEveryMS > 0)
}

// powerState is one device's supercapacitor and brownout bookkeeping.
type powerState struct {
	trace  power.Trace
	traced bool // false in forced-interval mode
	cap    power.Supercap

	chargePJ   uint64
	lastMS     uint64 // virtual time of the last charge integration
	lastCycles uint64 // CPU cycle odometer at the last integration
	next       uint64 // next power event: integration boundary, forced brownout, or forced restart
	offMS      uint64 // forced-mode dark interval

	off             bool
	brownouts       int
	firstBrownoutMS uint64
	// cut is the FRAM-persistent remainder the device reboots from; non-nil
	// exactly while the device is off.
	cut *kernel.Checkpoint
}

// newPowerState builds the boot-time power state for a device. The scenario
// must already be validated (a non-empty PowerTrace parses).
func newPowerState(sc *Scenario, seed uint32) *powerState {
	if sc.BrownoutEveryMS > 0 {
		offMS := sc.BrownoutOffMS
		if offMS == 0 {
			offMS = defaultForcedOffMS
		}
		return &powerState{next: sc.BrownoutEveryMS, offMS: offMS}
	}
	prof, _ := power.Parse(sc.PowerTrace)
	cap := power.DefaultSupercap()
	return &powerState{
		trace:    prof.Trace(seed),
		traced:   true,
		cap:      cap,
		chargePJ: cap.CapacityPJ, // boots with a full capacitor
		next:     PowerCheckMS,
	}
}

// powerStep handles the power event due at d.now (== p.next): charge
// integration and brownout in trace mode, the scripted fault/restart pair in
// forced mode. The kernel is parked between events when this runs — the
// checkpoint boundary brownouts require.
func (d *deviceSim) powerStep() error {
	p := d.power
	t := d.now
	if !p.traced {
		if p.off {
			return d.powerReboot(t)
		}
		d.powerBrownout(t)
		p.next = t + p.offMS
		return nil
	}

	if p.off {
		// Dark device: harvest-only, no draw. Reboot once the capacitor
		// clears the restart threshold (hysteresis above brownout).
		p.chargePJ += p.trace.HarvestRangePJ(p.lastMS, t)
		if p.chargePJ > p.cap.CapacityPJ {
			p.chargePJ = p.cap.CapacityPJ
		}
		p.lastMS = t
		p.next = t + PowerCheckMS
		if p.chargePJ >= p.cap.RestartPJ {
			return d.powerReboot(t)
		}
		return nil
	}

	cycles := d.k.CPU.Cycles
	drain := (cycles-p.lastCycles)*power.EnergyPerCyclePJ + (t-p.lastMS)*power.IdleDrainPJPerMS
	p.chargePJ += p.trace.HarvestRangePJ(p.lastMS, t)
	if p.chargePJ > p.cap.CapacityPJ {
		p.chargePJ = p.cap.CapacityPJ
	}
	if p.chargePJ <= drain {
		p.chargePJ = 0
	} else {
		p.chargePJ -= drain
	}
	p.lastMS, p.lastCycles = t, cycles
	p.next = t + PowerCheckMS
	mChargePJ.Set(int64(p.chargePJ))
	if p.chargePJ <= p.cap.BrownoutPJ {
		d.powerBrownout(t)
	}
	return nil
}

// powerBrownout kills the device's power at time t: volatile state is lost,
// the FRAM-persistent cut is kept for the eventual reboot, and the dead
// kernel's COW pages go back to the arena immediately.
func (d *deviceSim) powerBrownout(t uint64) {
	p := d.power
	p.cut = d.tmpl.PersistentCut(d.tmpl.Checkpoint(d.k), t)
	d.k.Bus.ReleasePages()
	d.k = nil
	p.off = true
	p.brownouts++
	if p.brownouts == 1 {
		p.firstBrownoutMS = t
		mFirstBrownout.Observe(t)
	}
	mBrownouts.Inc()
}

// powerReboot brings the device back at time t from its persistent cut: the
// OS boot path re-initializes volatile state, surviving apps re-init, and
// the scenario's event schedule is re-installed relative to the reboot.
func (d *deviceSim) powerReboot(t uint64) error {
	p := d.power
	k, err := d.tmpl.RebootFromCut(p.cut, t, d.arena)
	if err != nil {
		return err
	}
	if d.sc.FaultTrace {
		k.AttachRecorder(obs.NewRecorder(obs.DefaultRing))
	}
	for _, ev := range d.sc.Events {
		k.PostPeriodic(ev.App, ev.Code, ev.Arg, ev.AtMS, ev.PeriodMS)
	}
	d.k = k
	p.cut = nil
	p.off = false
	p.lastMS, p.lastCycles = t, k.CPU.Cycles
	if p.traced {
		p.next = t + PowerCheckMS
	} else {
		p.next = t + d.sc.BrownoutEveryMS
	}
	mReboots.Inc()
	return nil
}

// PowerCheckpoint serializes a device's powerState for resumable campaigns.
// Cut is non-nil exactly when the device is parked dark; the sibling kernel
// checkpoint is nil in that case.
type PowerCheckpoint struct {
	ChargePJ        uint64             `json:"chargePJ"`
	LastMS          uint64             `json:"lastMS"`
	LastCycles      uint64             `json:"lastCycles,omitempty"`
	Next            uint64             `json:"next"`
	Off             bool               `json:"off,omitempty"`
	Brownouts       int                `json:"brownouts,omitempty"`
	FirstBrownoutMS uint64             `json:"firstBrownoutMS,omitempty"`
	Cut             *kernel.Checkpoint `json:"cut,omitempty"`
}

// checkpoint serializes the power state.
func (p *powerState) checkpoint() *PowerCheckpoint {
	return &PowerCheckpoint{
		ChargePJ:        p.chargePJ,
		LastMS:          p.lastMS,
		LastCycles:      p.lastCycles,
		Next:            p.next,
		Off:             p.off,
		Brownouts:       p.brownouts,
		FirstBrownoutMS: p.firstBrownoutMS,
		Cut:             p.cut,
	}
}

// resumePowerState rebuilds a powerState from its checkpoint for a device of
// the given scenario and seed.
func resumePowerState(sc *Scenario, seed uint32, pc *PowerCheckpoint) *powerState {
	p := newPowerState(sc, seed)
	p.chargePJ = pc.ChargePJ
	p.lastMS = pc.LastMS
	p.lastCycles = pc.LastCycles
	p.next = pc.Next
	p.off = pc.Off
	p.brownouts = pc.Brownouts
	p.firstBrownoutMS = pc.FirstBrownoutMS
	p.cut = pc.Cut
	return p
}
