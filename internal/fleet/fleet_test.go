package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/kernel"
)

// testScenario is a small but non-trivial fleet: two interacting apps, a
// button schedule and periodic fault injection, so determinism is tested
// against every moving part at once.
func testScenario(devices int) Scenario {
	pedometer, _ := apps.ByName("pedometer")
	hr, _ := apps.ByName("hr")
	return Scenario{
		Name:          "test",
		Apps:          []apps.App{pedometer, hr},
		Mode:          cc.ModeMPU,
		DurationMS:    5_000,
		Devices:       devices,
		Seed:          42,
		ButtonEveryMS: 1_700,
		FaultEveryMS:  2_300,
		FaultApp:      1,
		Policy:        &kernel.RestartPolicy{MaxFaults: 3, BackoffMS: 400},
	}
}

// marshal serializes a report the way cmd/amuletfleet -json does.
func marshal(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFleetDeterministicAcrossRunsAndWorkers(t *testing.T) {
	sc := testScenario(12)
	var golden []byte
	for _, workers := range []int{1, 3, 8} {
		r := &Runner{Workers: workers}
		rep, err := r.Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b := marshal(t, rep)
		if golden == nil {
			golden = b
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("workers=%d: report differs from workers=1 run", workers)
		}
	}
	// Same seed, fresh runner: byte-identical again.
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, marshal(t, rep)) {
		t.Fatal("repeated run with the same seed produced a different report")
	}
}

func TestFleetSeedDecorrelatesDevices(t *testing.T) {
	sc := testScenario(6)
	sc.FaultEveryMS = 0
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != 6 {
		t.Fatalf("devices = %d, want 6", rep.Devices)
	}
	seeds := map[uint32]bool{}
	distinctCycles := map[uint64]bool{}
	for _, d := range rep.PerDevice {
		seeds[d.Seed] = true
		distinctCycles[d.Cycles] = true
		if d.Dispatches == 0 || d.Cycles == 0 {
			t.Fatalf("device %d did not run: %+v", d.Device, d)
		}
	}
	if len(seeds) != 6 {
		t.Fatalf("expected 6 distinct device seeds, got %d", len(seeds))
	}
	// The seeded sensor noise must actually decorrelate workloads: with six
	// devices reading HR samples, at least two should differ in cycles.
	if len(distinctCycles) < 2 {
		t.Error("all devices consumed identical cycles; seeds appear unused")
	}
	// A different fleet seed must shift per-device seeds.
	sc2 := sc
	sc2.Seed = 43
	rep2, err := Run(context.Background(), sc2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PerDevice[0].Seed == rep.PerDevice[0].Seed {
		t.Error("fleet seed change did not change device seeds")
	}
}

func TestBuildCacheCompilesOnce(t *testing.T) {
	cache := NewBuildCache()
	pedometer, _ := apps.ByName("pedometer")
	list := []apps.App{pedometer}

	const callers = 8
	var wg sync.WaitGroup
	fws := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fw, err := cache.Get(list, cc.ModeMPU)
			if err != nil {
				t.Error(err)
				return
			}
			fws[i] = fw
		}(i)
	}
	wg.Wait()
	builds, hits := cache.Stats()
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	if hits != callers-1 {
		t.Fatalf("hits = %d, want %d", hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if fws[i] != fws[0] {
			t.Fatal("cache handed out different firmware instances for one key")
		}
	}
	// A different mode is a different key.
	if _, err := cache.Get(list, cc.ModeSoftwareOnly); err != nil {
		t.Fatal(err)
	}
	if builds, _ := cache.Stats(); builds != 2 {
		t.Fatalf("builds after second mode = %d, want 2", builds)
	}
}

// TestFleetSharesPredecodedText asserts the decode-once property at fleet
// scale: every kernel booted from a cached build executes from the one
// Program the firmware carries, so decode cost is paid once per
// (app set, mode), not once per device.
func TestFleetSharesPredecodedText(t *testing.T) {
	cache := NewBuildCache()
	pedometer, _ := apps.ByName("pedometer")
	list := []apps.App{pedometer}
	fw, err := cache.Get(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Text == nil {
		t.Fatal("cached firmware has no predecoded text")
	}
	k1 := kernel.NewSeeded(fw, 1)
	k2 := kernel.NewSeeded(fw, 2)
	if k1.CPU.Program() != fw.Text || k2.CPU.Program() != fw.Text {
		t.Fatal("kernels do not share the firmware's predecode cache")
	}
	// The shared cache must survive a device's workload untouched: run one
	// device and confirm the other still points at the same immutable cache.
	k1.RunUntil(1_000)
	if k2.CPU.Program() != fw.Text {
		t.Fatal("running one device perturbed another's cache attachment")
	}
}

func TestFaultInjectionExercisesRestartPolicy(t *testing.T) {
	sc := testScenario(4)
	rep, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	// 2300 and 4600 ms injections within the 5000 ms window: two faults per
	// device, both within MaxFaults, so the app restarts each time.
	if rep.TotalFaults != 2*4 {
		t.Fatalf("total faults = %d, want 8", rep.TotalFaults)
	}
	if rep.DevicesFaulted != 4 {
		t.Fatalf("devices faulted = %d, want 4", rep.DevicesFaulted)
	}
	if rep.FaultReasons["fleet: injected fault"] != 8 {
		t.Fatalf("fault histogram = %v", rep.FaultReasons)
	}
	for _, d := range rep.PerDevice {
		if d.AppsAlive != 2 {
			t.Fatalf("device %d: %d apps alive, want 2 (restart policy should revive)", d.Device, d.AppsAlive)
		}
	}
	// With a kill-on-first-fault policy the app must stay dead.
	sc.Policy = &kernel.RestartPolicy{MaxFaults: 0}
	rep, err = Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.PerDevice {
		if d.AppsAlive != 1 {
			t.Fatalf("device %d: %d apps alive, want 1 (no-restart policy)", d.Device, d.AppsAlive)
		}
	}
	if rep.TotalFaults != 4 {
		t.Fatalf("total faults = %d, want 4 (dead apps cannot re-fault)", rep.TotalFaults)
	}
}

func TestReportMerge(t *testing.T) {
	sc := testScenario(8)
	full, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	shard := func(devs []DeviceResult) *Report {
		return &Report{
			Scenario: full.Scenario, Mode: full.Mode, Seed: full.Seed,
			DurationMS: full.DurationMS,
			PerDevice:  append([]DeviceResult(nil), devs...),
		}
	}
	a := shard(full.PerDevice[:3])
	b := shard(full.PerDevice[3:])
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, a), marshal(t, full)) {
		t.Fatal("merged shards differ from the union run")
	}
	// The cross-machine path: two independent runs of disjoint device
	// ranges (via FirstDevice) must merge into exactly the union run.
	lo, hi := sc, sc
	lo.Devices = 3
	hi.Devices = 5
	hi.FirstDevice = 3
	repLo, err := Run(context.Background(), lo)
	if err != nil {
		t.Fatal(err)
	}
	repHi, err := Run(context.Background(), hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := repLo.Merge(repHi); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, repLo), marshal(t, full)) {
		t.Fatal("sharded runs merged differently from the union run")
	}
	// Overlapping shards must be rejected.
	if err := a.Merge(shard(full.PerDevice[4:5])); err == nil {
		t.Fatal("overlap merge succeeded")
	}
	// Mismatched scenarios must be rejected.
	other := shard(nil)
	other.Seed++
	if err := a.Merge(other); err == nil {
		t.Fatal("cross-scenario merge succeeded")
	}
}

func TestScenarioValidation(t *testing.T) {
	pedometer, _ := apps.ByName("pedometer")
	cases := []Scenario{
		{},
		{Apps: []apps.App{pedometer}, DurationMS: 100},
		{Apps: []apps.App{pedometer}, Devices: 1},
		{Apps: []apps.App{pedometer}, Devices: 1, DurationMS: 100,
			FaultEveryMS: 10, FaultApp: 5},
		{Apps: []apps.App{pedometer}, Devices: 1, DurationMS: 100, FirstDevice: -1},
		{Apps: []apps.App{pedometer}, Devices: 1, DurationMS: 100,
			Events: []ScheduledEvent{{AtMS: 10, App: 5, Code: 1}}},
	}
	for i, sc := range cases {
		if _, err := Run(context.Background(), sc); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := testScenario(64)
	if _, err := Run(ctx, sc); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
