package fleet

import (
	"bytes"
	"context"
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// engineCell is one cell of the {threading, fusion, certificates} matrix the
// COW identity test sweeps (mirroring the torture battery's engineMatrix).
type engineCell struct {
	name                string
	thread, fuse, certs bool
}

var engineCells = []engineCell{
	{"threaded+fused+certified", true, true, true},
	{"threaded+fused+perword", true, true, false},
	{"threaded+unfused+certified", true, false, true},
	{"threaded+unfused+perword", true, false, false},
	{"switch+fused+certified", false, true, true},
	{"switch+fused+perword", false, true, false},
	{"switch+unfused+certified", false, false, true},
	{"switch+unfused+perword", false, false, false},
}

// TestFleetReportByteIdenticalCOWAcrossEngines is the fleet-level COW
// guarantee: the serialized report for a scenario with faults, restarts and
// button noise must be byte-identical with COW device memory and with the
// flat-clone oracle, in every cell of the engine matrix.
func TestFleetReportByteIdenticalCOWAcrossEngines(t *testing.T) {
	defer func() {
		isa.SetThreading(true)
		isa.SetFusion(true)
		mem.SetExecCerts(true)
		mem.SetCOW(true)
	}()
	sc := testScenario(6)
	var golden []byte
	for _, cell := range engineCells {
		isa.SetThreading(cell.thread)
		isa.SetFusion(cell.fuse)
		mem.SetExecCerts(cell.certs)
		for _, cow := range []bool{true, false} {
			mem.SetCOW(cow)
			rep, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatalf("%s cow=%v: %v", cell.name, cow, err)
			}
			b := marshal(t, rep)
			if golden == nil {
				golden = b
				continue
			}
			if !bytes.Equal(golden, b) {
				t.Fatalf("%s cow=%v: report differs from %s cow=true",
					cell.name, cow, engineCells[0].name)
			}
		}
	}
}

// TestRunnerArenaRecyclesPages drives one runner through consecutive runs and
// asserts the page arena actually cycles: the second run boots devices from
// the first run's recycled pages.
func TestRunnerArenaRecyclesPages(t *testing.T) {
	mem.SetCOW(true)
	defer mem.SetCOW(true)
	sc := testScenario(4)
	r := &Runner{Workers: 2}
	if _, err := r.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	_, puts1 := r.ArenaStats()
	if puts1 == 0 {
		t.Fatal("first run recycled no pages; devices should dirty and release pages")
	}
	if _, err := r.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	gets2, puts2 := r.ArenaStats()
	if gets2 == 0 {
		t.Fatal("second run reused no recycled pages")
	}
	if puts2 <= puts1 {
		t.Fatalf("second run returned no pages (puts %d -> %d)", puts1, puts2)
	}
}
