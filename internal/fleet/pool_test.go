package fleet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexAtAnyParallelism(t *testing.T) {
	for _, workers := range []int{1, 3, 16, 0} {
		const n = 200
		hits := make([]int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachStopsFeedingOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(context.Background(), 10_000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 10_000 {
		t.Fatalf("error did not stop the feed (%d calls ran)", n)
	}
}

func TestForEachHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEach(ctx, 10_000, 2, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
