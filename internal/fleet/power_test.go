package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// poweredScenario is testScenario under forced brownouts: every device loses
// power every 500 ms of wear and reboots from its FRAM cut 500 ms later.
func poweredScenario(devices int) Scenario {
	sc := testScenario(devices)
	sc.BrownoutEveryMS = 500
	return sc
}

// TestForcedBrownoutDeterministicAcrossWorkers is the satellite determinism
// property: a brownout at every 500 ms boundary yields byte-identical
// reports at any worker count — power loss is part of the simulated device,
// not of the host schedule.
func TestForcedBrownoutDeterministicAcrossWorkers(t *testing.T) {
	sc := poweredScenario(8)
	var golden []byte
	for _, workers := range []int{1, 2, 4} {
		r := &Runner{Workers: workers, Cache: NewBuildCache()}
		rep, err := r.Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.TotalBrownouts == 0 || rep.DevicesBrownedOut != sc.Devices {
			t.Fatalf("workers=%d: brownouts=%d over %d devices, want every device dark at least once",
				workers, rep.TotalBrownouts, rep.DevicesBrownedOut)
		}
		b := marshal(t, rep)
		if golden == nil {
			golden = b
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("workers=%d: powered report differs from workers=1 run", workers)
		}
	}
}

// TestHarvestTraceDeterministicAcrossWorkers runs a real harvest trace long
// enough to cross the supercap's brownout threshold and asserts the same
// worker-count independence.
func TestHarvestTraceDeterministicAcrossWorkers(t *testing.T) {
	sc := testScenario(3)
	sc.DurationMS = 30_000
	sc.PowerTrace = "kinetic:0.5"
	var golden []byte
	for _, workers := range []int{1, 3} {
		r := &Runner{Workers: workers, Cache: NewBuildCache()}
		rep, err := r.Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.TotalBrownouts == 0 {
			t.Fatalf("workers=%d: starving harvest trace produced no brownouts", workers)
		}
		b := marshal(t, rep)
		if golden == nil {
			golden = b
			continue
		}
		if !bytes.Equal(golden, b) {
			t.Fatalf("workers=%d: traced report differs", workers)
		}
	}
}

// TestPowerHatchByteIdentity: with the power escape hatch thrown, a scenario
// carrying power configuration must produce exactly the bytes of the same
// scenario without any — the -nopower differential contract.
func TestPowerHatchByteIdentity(t *testing.T) {
	plain := testScenario(5)
	want, err := Run(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	SetPower(false)
	defer SetPower(true)
	for name, sc := range map[string]Scenario{
		"trace":  func() Scenario { s := plain; s.PowerTrace = "solar"; return s }(),
		"forced": poweredScenario(5),
	} {
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(marshal(t, rep), marshal(t, want)) {
			t.Fatalf("%s: -nopower run differs from a run without power config", name)
		}
	}
}

// TestPoweredKilledAndResumedByteIdentity extends the PR 9 acceptance
// property to intermittent power: interrupt a forced-brownout campaign
// twice (JSON round-tripping the cut each time, dark-parked devices
// included), resume, and compare byte-for-byte against an uninterrupted
// run.
func TestPoweredKilledAndResumedByteIdentity(t *testing.T) {
	sc := poweredScenario(6)
	want, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	opt := ResumableOptions{SegmentMS: 700}
	var cut *CampaignCheckpoint
	for round, limit := range []int{25, 60} {
		r := &Runner{Workers: 2, Cache: NewBuildCache()}
		rep, c, err := r.RunResumable(newCancelAfter(limit), sc, cut, opt)
		if err != context.Canceled {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
		}
		if rep != nil {
			t.Fatalf("round %d: cancelled run returned a report", round)
		}
		if c == nil {
			t.Fatalf("round %d: cancelled run returned no cut", round)
		}
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("round %d: marshal cut: %v", round, err)
		}
		cut = new(CampaignCheckpoint)
		if err := json.Unmarshal(wire, cut); err != nil {
			t.Fatalf("round %d: unmarshal cut: %v", round, err)
		}
	}
	if len(cut.Done)+len(cut.InFlight) == 0 {
		t.Fatal("two interrupted rounds made no checkpointable progress")
	}

	r := &Runner{Workers: 3, Cache: NewBuildCache()}
	rep, c, err := r.RunResumable(context.Background(), sc, cut, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatal("finished resume returned a cut")
	}
	if !bytes.Equal(marshal(t, rep), marshal(t, want)) {
		t.Fatal("killed+resumed powered campaign differs from uninterrupted run")
	}
}

// TestResumeRejectsForeignPowerCut: the campaign identity check must cover
// the power configuration — a cut from a powered run may not seed an
// unpowered one, or one with different power parameters.
func TestResumeRejectsForeignPowerCut(t *testing.T) {
	sc := poweredScenario(3)
	r := &Runner{Workers: 2, Cache: NewBuildCache()}
	_, cut, err := r.RunResumable(newCancelAfter(5), sc, nil, ResumableOptions{SegmentMS: 500})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for name, mutate := range map[string]func(*CampaignCheckpoint){
		"trace":        func(c *CampaignCheckpoint) { c.PowerTrace = "solar" },
		"brownout":     func(c *CampaignCheckpoint) { c.BrownoutEveryMS = 0 },
		"brownout-off": func(c *CampaignCheckpoint) { c.BrownoutOffMS = 777 },
	} {
		bad := *cut
		mutate(&bad)
		if _, _, err := r.RunResumable(context.Background(), sc, &bad, ResumableOptions{}); err == nil {
			t.Errorf("%s-mutated cut accepted", name)
		}
	}
}
