// Package fleet simulates fleets of independent Amulet devices concurrently:
// the scaling substrate that turns the single-device reproduction into an
// experiment platform. A Scenario describes one device's configuration (app
// set, isolation mode, event schedule, fault-injection knobs) plus the fleet
// shape (device count, fleet seed); a Runner shards the devices over a
// bounded worker pool where each worker owns one kernel at a time.
//
// Three properties make fleets cheap and reproducible:
//
//   - each (app set, mode) pair is compiled and linked exactly once through
//     a BuildCache; devices boot by cloning the shared image bytes into
//     their private bus rather than recompiling;
//   - every device's noise sources derive from a per-device seed obtained by
//     splitmix64 from the fleet seed, so device i's workload is the same no
//     matter which worker runs it, in which order, at which parallelism;
//   - the Report sorts per-device results by device index before computing
//     aggregates, so serialized reports are byte-identical across runs and
//     worker counts.
package fleet

import (
	"context"
	"fmt"
	"runtime"

	"sync"

	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/kernel"
	"amuletiso/internal/mem"
	"amuletiso/internal/obs"
	"amuletiso/internal/power"
)

// ScheduledEvent is one entry of a scenario's event schedule, delivered to
// every device: Code/Arg posted to App at AtMS, re-armed every PeriodMS when
// PeriodMS > 0.
type ScheduledEvent struct {
	AtMS     uint64
	App      int
	Code     uint16
	Arg      uint16
	PeriodMS uint64
}

// Scenario configures a fleet run: what every device runs and how many of
// them to simulate.
type Scenario struct {
	// Name labels the report.
	Name string
	// Apps is the application set each device boots (required).
	Apps []apps.App
	// Mode is the isolation model.
	Mode cc.Mode
	// DurationMS is the virtual wear window per device (required).
	DurationMS uint64
	// Devices is the fleet size (required).
	Devices int
	// FirstDevice offsets this run's device indices: it simulates devices
	// [FirstDevice, FirstDevice+Devices). Per-device seeds depend only on
	// the global index, so disjoint shards of one scenario — run anywhere,
	// at any parallelism — Merge into exactly the union run's report.
	FirstDevice int
	// Seed is the fleet seed; per-device seeds derive from it.
	Seed uint64

	// Events is an optional schedule posted to every device at boot.
	Events []ScheduledEvent
	// ButtonEveryMS injects a button press (cycling buttons 1-3, sequence
	// derived from the device seed) every interval, when > 0.
	ButtonEveryMS uint64
	// FaultEveryMS injects a synthetic fault into FaultApp every interval,
	// when > 0 — the knob that exercises kernel.RestartPolicy at scale.
	FaultEveryMS uint64
	// FaultApp is the app index FaultEveryMS targets.
	FaultApp int
	// Policy overrides the kernel's default restart policy when non-nil.
	Policy *kernel.RestartPolicy
	// WatchdogBudget overrides the kernel's per-event cycle budget when
	// > 0 — the knob watchdog-starvation sweeps use to land the watchdog at
	// arbitrary points of a wear window.
	WatchdogBudget uint64
	// FaultTrace attaches a flight recorder to every device and embeds its
	// last-events window into the DeviceResult of devices that faulted. It is
	// the only way recorder data reaches a report: without it, results are
	// byte-identical whether or not tracing is armed.
	FaultTrace bool

	// PowerTrace arms the intermittent-power model with a harvest trace spec
	// (power.Parse grammar, e.g. "solar" or "kinetic:3"). Each device gets a
	// seeded supercapacitor that harvest charges and execution drains;
	// crossing the brownout threshold power-faults the device, which later
	// reboots from its FRAM-persistent state. Empty = stable bench supply.
	PowerTrace string
	// BrownoutEveryMS forces a brownout at every interval boundary instead of
	// modeling charge — the crash-consistency sweep knob. Mutually exclusive
	// with PowerTrace.
	BrownoutEveryMS uint64
	// BrownoutOffMS is how long a forced brownout keeps the device dark
	// before it reboots (default 500 ms). Only meaningful with
	// BrownoutEveryMS.
	BrownoutOffMS uint64
}

// validate rejects scenarios the runner cannot execute.
func (sc *Scenario) validate() error {
	if len(sc.Apps) == 0 {
		return fmt.Errorf("fleet: scenario has no apps")
	}
	if sc.Devices <= 0 {
		return fmt.Errorf("fleet: scenario needs a positive device count (got %d)", sc.Devices)
	}
	if sc.FirstDevice < 0 {
		return fmt.Errorf("fleet: negative first device %d", sc.FirstDevice)
	}
	if sc.DurationMS == 0 {
		return fmt.Errorf("fleet: scenario needs a positive duration")
	}
	if sc.FaultEveryMS > 0 && (sc.FaultApp < 0 || sc.FaultApp >= len(sc.Apps)) {
		return fmt.Errorf("fleet: fault app %d out of range (%d apps)", sc.FaultApp, len(sc.Apps))
	}
	for i, ev := range sc.Events {
		if ev.App < 0 || ev.App >= len(sc.Apps) {
			return fmt.Errorf("fleet: event %d targets app %d, out of range (%d apps)",
				i, ev.App, len(sc.Apps))
		}
	}
	if sc.PowerTrace != "" {
		if _, err := power.Parse(sc.PowerTrace); err != nil {
			return err
		}
		if sc.BrownoutEveryMS > 0 {
			return fmt.Errorf("fleet: PowerTrace and BrownoutEveryMS are mutually exclusive")
		}
	}
	if sc.BrownoutOffMS > 0 && sc.BrownoutEveryMS == 0 {
		return fmt.Errorf("fleet: BrownoutOffMS needs BrownoutEveryMS")
	}
	return nil
}

// Runner executes scenarios over a worker pool. The zero value is usable:
// GOMAXPROCS workers and a private build cache.
type Runner struct {
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// Cache is the firmware build cache; nil allocates a private one. Share
	// a cache across runs to reuse builds between scenarios (e.g. the same
	// app set under several modes still builds once per mode).
	Cache *BuildCache

	// arena recycles COW data pages between devices: finished devices hand
	// their dirty pages back, the next boot's write-faults reuse them. One
	// arena per runner, shared by all workers and across Run calls, so a
	// long soak settles into zero page allocations per device.
	arenaOnce sync.Once
	arena     *mem.PageArena
}

// pageArena lazily builds the runner's shared page arena.
func (r *Runner) pageArena() *mem.PageArena {
	r.arenaOnce.Do(func() { r.arena = mem.NewPageArena() })
	return r.arena
}

// ArenaStats reports cumulative page recycling traffic (pages handed out,
// pages returned) for the runner's arena. Diagnostics only — never part of
// a Report.
func (r *Runner) ArenaStats() (gets, puts uint64) {
	return r.pageArena().Stats()
}

// workerCount resolves the effective pool size.
func (r *Runner) workerCount() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run simulates the scenario's fleet and aggregates the per-device results.
// It returns early with ctx's error when cancelled.
func (r *Runner) Run(ctx context.Context, sc Scenario) (*Report, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	cache := r.Cache
	if cache == nil {
		cache = NewBuildCache()
	}
	// Build up front: one compile+link per (app set, mode), shared by every
	// device, plus the boot template every device clones its memory from.
	// Both are immutable, so workers need no further locking.
	tmpl, err := cache.Template(sc.Apps, sc.Mode)
	if err != nil {
		return nil, err
	}

	workers := r.workerCount()
	results := make([]DeviceResult, sc.Devices)
	arena := r.pageArena()
	err = ForEachBatch(ctx, sc.Devices, workers, chunkFor(sc.Devices, workers), func(i int) error {
		res, err := simulate(ctx, &sc, tmpl, arena, sc.FirstDevice+i)
		if err != nil {
			return err
		}
		results[i] = res // workers own disjoint slots
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Scenario:   sc.Name,
		Mode:       sc.Mode.String(),
		Seed:       sc.Seed,
		DurationMS: sc.DurationMS,
		PerDevice:  results,
	}
	rep.finalize()
	return rep, nil
}

// Run executes the scenario with a default runner (GOMAXPROCS workers,
// private build cache).
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	return (&Runner{}).Run(ctx, sc)
}

// splitmix64 is the SplitMix64 output function: the standard way to expand
// one seed into a stream of decorrelated ones.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeviceSeed derives device i's kernel seed from the fleet seed. The
// derivation is position-based, so a device's workload does not depend on
// which worker simulates it or when.
func DeviceSeed(fleetSeed uint64, device int) uint32 {
	s := uint32(splitmix64(fleetSeed + uint64(device) + 1))
	if s == 0 {
		s = 0xA5A5A5A5
	}
	return s
}

// simulate runs one device start to finish: clone a kernel from the shared
// boot template with the device's seed, install the schedule, and walk the
// wear window in injection-bounded segments. With batching on, each segment
// is delivered in bounded event batches (cancellation is checked between
// batches rather than only between segments); either way the delivered
// event sequence — and therefore the DeviceResult — is identical.
func simulate(ctx context.Context, sc *Scenario, tmpl *kernel.BootTemplate, arena *mem.PageArena, device int) (DeviceResult, error) {
	d := newDeviceSim(sc, tmpl, arena, device)
	// The deferred close releases the device's COW pages on EVERY exit —
	// including the cancellation returns inside advance, which used to skip
	// the release and leak the cancelled device's dirty pages for good.
	defer d.close()
	if err := d.advance(ctx, sc.DurationMS); err != nil {
		return DeviceResult{}, err
	}
	return d.result(), nil
}

// deviceSim is one device mid-wear-window: the kernel plus the segment-loop
// cursors (injection deadlines, button RNG, delivered-event count) that
// simulate's old closed loop kept on the stack. Factoring them out lets a
// device stop at any segment boundary, be serialized (DeviceCheckpoint), and
// continue on another runner — the substrate for resumable campaigns.
type deviceSim struct {
	sc     *Scenario
	tmpl   *kernel.BootTemplate
	k      *kernel.Kernel
	arena  *mem.PageArena
	device int
	seed   uint32

	events     int
	now        uint64
	nextButton uint64
	nextFault  uint64
	buttonRNG  uint64

	// power is the device's supercapacitor state; nil on a stable bench
	// supply. While the device is dark after a brownout, k is nil and
	// power.cut holds the FRAM state the reboot will restore.
	power *powerState
}

// newDeviceSim boots a fresh device at the start of its wear window.
func newDeviceSim(sc *Scenario, tmpl *kernel.BootTemplate, arena *mem.PageArena, device int) *deviceSim {
	seed := DeviceSeed(sc.Seed, device)
	mDevicesStarted.Inc()
	k := tmpl.NewKernelArena(seed, arena)
	if sc.FaultTrace {
		// Always a fresh recorder — even when global tracing already attached
		// one at boot (which saw the boot-time posts this one won't) — so the
		// dump is the same bytes whether or not tracing is armed.
		k.AttachRecorder(obs.NewRecorder(obs.DefaultRing))
	}
	if sc.Policy != nil {
		k.Policy = *sc.Policy
	}
	if sc.WatchdogBudget > 0 {
		k.WatchdogBudget = sc.WatchdogBudget
	}
	for _, ev := range sc.Events {
		k.PostPeriodic(ev.App, ev.Code, ev.Arg, ev.AtMS, ev.PeriodMS)
	}
	d := &deviceSim{
		sc: sc, tmpl: tmpl, k: k, arena: arena, device: device, seed: seed,
		nextButton: injectStart(sc.ButtonEveryMS),
		nextFault:  injectStart(sc.FaultEveryMS),
		buttonRNG:  uint64(seed),
	}
	if sc.powered() {
		d.power = newPowerState(sc, seed)
	}
	return d
}

// advance walks the wear window to min(until, DurationMS). Extra stopping
// points are observably free — RunUntil(t1);RunUntil(t2) delivers exactly
// what RunUntil(t2) would — so callers may segment the window however they
// like (simulate uses one segment; resumable runs stop per checkpoint
// interval). On cancellation the device stays parked between event
// deliveries: a subsequent advance (or checkpoint) continues it exactly.
func (d *deviceSim) advance(ctx context.Context, until uint64) error {
	if until > d.sc.DurationMS {
		until = d.sc.DurationMS
	}
	batch := BatchingEnabled()
	for d.now < until {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := until
		if d.nextButton < next {
			next = d.nextButton
		}
		if d.nextFault < next {
			next = d.nextFault
		}
		if d.power != nil && d.power.next < next {
			next = d.power.next
		}
		// A dark device delivers nothing: injection and power cursors still
		// advance through the outage, but the kernel is gone until reboot.
		if d.k != nil {
			if batch {
				for {
					n, more := d.k.RunBatch(next, EventBatch)
					d.events += n
					if !more {
						break
					}
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			} else {
				d.events += d.k.RunUntil(next)
			}
		}
		d.now = next
		if d.now == d.nextButton {
			// The press sequence advances whether or not the device is up —
			// the user keeps pressing; a dark device just misses the press.
			d.buttonRNG = splitmix64(d.buttonRNG)
			if d.k != nil {
				d.k.InjectButton(uint16(d.buttonRNG%3) + 1)
			}
			d.nextButton += d.sc.ButtonEveryMS
		}
		if d.now == d.nextFault {
			if d.k != nil {
				d.k.InjectFault(d.sc.FaultApp, "fleet: injected fault")
			}
			d.nextFault += d.sc.FaultEveryMS
		}
		if d.power != nil && d.now == d.power.next {
			if err := d.powerStep(); err != nil {
				return err
			}
		}
	}
	return nil
}

// finished reports whether the device has worn through its whole window.
func (d *deviceSim) finished() bool { return d.now >= d.sc.DurationMS }

// result assembles the DeviceResult of a finished device. A device that
// wore out its window dark (browned out, never recovered) reports from its
// FRAM-persistent cut instead of a live kernel.
func (d *deviceSim) result() DeviceResult {
	var res DeviceResult
	if d.k != nil {
		k := d.k
		dispatches, syscalls, cycles := k.Totals()
		res = DeviceResult{
			Dispatches: dispatches,
			Syscalls:   syscalls,
			Cycles:     cycles,
			Insns:      k.CPU.Insns,
			OSCycles:   k.OSCycles,
			Faults:     len(k.Faults),
			Latency:    k.Latency,
		}
		for _, a := range k.Apps {
			if a.Alive {
				res.AppsAlive++
			}
		}
		for _, f := range k.Faults {
			res.FaultReasons = append(res.FaultReasons, f.Reason)
			res.FaultClasses = append(res.FaultClasses, f.Class.String())
		}
		if d.sc.FaultTrace && len(k.Faults) > 0 {
			res.FaultTrace = k.Recorder().Dump(faultTraceWindow)
		}
	} else {
		// Dark at window end: the cut carries every FRAM-resident counter.
		// No fault trace — the recorder ring died with the power.
		ck := d.power.cut
		var dispatches, syscalls, cycles uint64
		for _, a := range ck.Apps {
			dispatches += a.Dispatches
			syscalls += a.Syscalls
			cycles += a.Cycles
		}
		res = DeviceResult{
			Dispatches: dispatches,
			Syscalls:   syscalls,
			Cycles:     cycles,
			Insns:      ck.CPU.Insns,
			OSCycles:   ck.OSCycles,
			Faults:     len(ck.Faults),
			Latency:    ck.Latency,
		}
		for _, a := range ck.Apps {
			if a.Alive {
				res.AppsAlive++
			}
		}
		for _, f := range ck.Faults {
			res.FaultReasons = append(res.FaultReasons, f.Reason)
			res.FaultClasses = append(res.FaultClasses, f.Class.String())
		}
	}
	res.Device = d.device
	res.Seed = d.seed
	res.Events = d.events
	res.WeeklyBatteryPct = batteryPct(res.Cycles, d.sc.DurationMS)
	res.ProjectedLifetimeHours = projectedLifetimeHours(res.Cycles, d.sc.DurationMS)
	if d.power != nil {
		res.Brownouts = d.power.brownouts
		res.FirstBrownoutMS = d.power.firstBrownoutMS
	}
	mDevicesCompleted.Inc()
	mInstrSimulated.Add(res.Insns)
	mWearMS.Add(d.sc.DurationMS)
	return res
}

// close hands the device's dirty COW pages back to the arena (no-op on a
// flat oracle bus, or on a dark device whose brownout already released
// them). Idempotent, so callers defer it unconditionally.
func (d *deviceSim) close() {
	if d.k != nil {
		d.k.Bus.ReleasePages()
	}
}

// faultTraceWindow is how many trailing flight-recorder events a faulting
// device's DeviceResult carries when Scenario.FaultTrace is set.
const faultTraceWindow = 64

// injectStart returns the first firing time of a periodic injection knob, or
// an effectively-never sentinel when the knob is off.
func injectStart(everyMS uint64) uint64 {
	if everyMS == 0 {
		return ^uint64(0)
	}
	return everyMS
}
