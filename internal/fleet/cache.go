package fleet

import (
	"fmt"
	"strings"
	"sync"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
)

// BuildCache memoizes firmware builds by (app set, isolation mode), so a
// fleet of N devices running the same scenario compiles and links exactly
// once and every device boots from the shared immutable image (the kernel
// clones the image bytes into its private bus at load).
//
// The build includes the firmware's predecoded instruction cache
// (aft.Firmware.Text): all N devices execute from the one shared decode of
// their common text, so per-device decode cost amortizes to zero — only
// devices whose code is overwritten at run time fall back to live decoding,
// and only for the overwritten words.
//
// The cache is safe for concurrent use; concurrent requests for the same key
// coalesce onto a single build.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	builds  int
	hits    int
}

type cacheEntry struct {
	once sync.Once
	fw   *aft.Firmware
	err  error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: make(map[string]*cacheEntry)}
}

// cacheKey fingerprints an app set and mode. Sources are included whole:
// two registries whose apps share a name but differ in source must not
// collide.
func cacheKey(list []apps.App, mode cc.Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%d", int(mode))
	for _, a := range list {
		fmt.Fprintf(&b, "|%q;%q;%q;%d", a.Name, a.Source, a.RestrictedSource, a.StackBytes)
	}
	return b.String()
}

// Get returns the firmware for the app set under the mode, building it on
// first use. Callers on other goroutines requesting the same key block until
// the one build completes and then share its result.
func (c *BuildCache) Get(list []apps.App, mode cc.Mode) (*aft.Firmware, error) {
	key := cacheKey(list, mode)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		srcs := make([]aft.AppSource, len(list))
		for i, a := range list {
			srcs[i] = a.AFT()
		}
		e.fw, e.err = aft.Build(srcs, mode)
		c.mu.Lock()
		c.builds++
		c.mu.Unlock()
	})
	return e.fw, e.err
}

// Stats reports how many builds ran and how many requests were served from
// the cache instead.
func (c *BuildCache) Stats() (builds, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds, c.hits
}
