package fleet

import (
	"fmt"
	"strings"
	"sync"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/kernel"
	"amuletiso/internal/mem"
)

// BuildCache memoizes firmware builds by (app set, isolation mode, engine
// configuration), so a fleet of N devices running the same scenario compiles
// and links exactly once and every device boots from the shared immutable
// image.
//
// The build includes the firmware's predecoded instruction cache
// (aft.Firmware.Text): all N devices execute from the one shared decode of
// their common text, so per-device decode cost amortizes to zero — only
// devices whose code is overwritten at run time fall back to live decoding,
// and only for the overwritten words.
//
// Each entry also lazily holds a kernel.BootTemplate — the post-load memory
// snapshot devices clone at boot instead of re-running the erased-FRAM fill
// and firmware load (the "zero-cost boot" path). Keying on the engine
// configuration (decode cache, fusion, threading, certificates) makes both
// memoizations eviction-safe: flipping an escape hatch between runs in one
// process gets a correctly built firmware and a matching template instead of
// silently reusing artifacts built under different engine flags.
//
// The cache is safe for concurrent use; concurrent requests for the same key
// coalesce onto a single build.
type BuildCache struct {
	mu         sync.Mutex
	entries    map[string]*cacheEntry
	builds     int
	hits       int
	tmplBuilds int
	tmplHits   int
}

type cacheEntry struct {
	once sync.Once
	fw   *aft.Firmware
	err  error

	tmplOnce sync.Once
	tmpl     *kernel.BootTemplate
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: make(map[string]*cacheEntry)}
}

// cacheKey fingerprints an app set, mode and the engine flags the build
// bakes in. Sources are included whole: two registries whose apps share a
// name but differ in source must not collide. The engine flags matter
// because Predecode consults them at build time — a firmware built with,
// say, fusion off must not be served to a run expecting it on.
func cacheKey(list []apps.App, mode cc.Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%d|dc=%t|fuse=%t|thread=%t|cert=%t|jit=%t",
		int(mode), cpu.DecodeCacheEnabled(), isa.FusionEnabled(),
		isa.ThreadingEnabled(), mem.ExecCertsEnabled(), isa.JITEnabled())
	for _, a := range list {
		fmt.Fprintf(&b, "|%q;%q;%q;%d", a.Name, a.Source, a.RestrictedSource, a.StackBytes)
	}
	return b.String()
}

// entry returns (creating if needed) the cache slot for the key, counting a
// hit when the slot already existed.
func (c *BuildCache) entry(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	} else {
		c.hits++
		mCacheHits.Inc()
	}
	return e
}

// build runs (or waits for) the entry's one firmware build.
func (c *BuildCache) build(e *cacheEntry, list []apps.App, mode cc.Mode) (*aft.Firmware, error) {
	e.once.Do(func() {
		srcs := make([]aft.AppSource, len(list))
		for i, a := range list {
			srcs[i] = a.AFT()
		}
		e.fw, e.err = aft.Build(srcs, mode)
		c.mu.Lock()
		c.builds++
		c.mu.Unlock()
	})
	return e.fw, e.err
}

// Get returns the firmware for the app set under the mode, building it on
// first use. Callers on other goroutines requesting the same key block until
// the one build completes and then share its result.
func (c *BuildCache) Get(list []apps.App, mode cc.Mode) (*aft.Firmware, error) {
	return c.build(c.entry(cacheKey(list, mode)), list, mode)
}

// Template returns the boot template for the app set under the mode,
// building the firmware and snapshotting its loaded image on first use.
// Like Get, concurrent requests for the same key coalesce.
func (c *BuildCache) Template(list []apps.App, mode cc.Mode) (*kernel.BootTemplate, error) {
	e := c.entry(cacheKey(list, mode))
	fw, err := c.build(e, list, mode)
	if err != nil {
		return nil, err
	}
	built := false
	e.tmplOnce.Do(func() {
		e.tmpl = kernel.NewBootTemplate(fw)
		built = true
	})
	c.mu.Lock()
	if built {
		c.tmplBuilds++
		mTemplateBuilds.Inc()
	} else {
		c.tmplHits++
		mTemplateHits.Inc()
	}
	c.mu.Unlock()
	return e.tmpl, nil
}

// Stats reports how many builds ran and how many requests were served from
// the cache instead.
func (c *BuildCache) Stats() (builds, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds, c.hits
}

// TemplateStats reports how many boot templates were built and how many
// template requests were cache hits — the counter amuletfleet surfaces so
// operators can see the zero-cost-boot path working.
func (c *BuildCache) TemplateStats() (builds, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tmplBuilds, c.tmplHits
}
