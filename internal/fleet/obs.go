package fleet

import "amuletiso/internal/obs"

// Process-wide fleet metrics: run progress (the `-metrics-addr` /metrics and
// progress-line series) and build-cache effectiveness. Deterministic
// aggregates live in Report; these exist for live observation only.
var (
	mDevicesStarted = obs.Default.Counter(obs.MetricDevicesStarted,
		"Device simulations started.")
	mDevicesCompleted = obs.Default.Counter(obs.MetricDevicesCompleted,
		"Device simulations completed.")
	mInstrSimulated = obs.Default.Counter(obs.MetricInstrSimulated,
		"Simulated instructions retired across all devices.")
	mWearMS = obs.Default.Counter(obs.MetricWearMS,
		"Virtual wear-window milliseconds simulated across all devices.")

	mCacheHits = obs.Default.Counter(obs.MetricBuildCacheHits,
		"Firmware build-cache hits.")
	mTemplateBuilds = obs.Default.Counter(obs.MetricTemplateBuilds,
		"Boot templates captured.")
	mTemplateHits = obs.Default.Counter(obs.MetricTemplateHits,
		"Boot-template cache hits.")
)
