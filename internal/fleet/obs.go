package fleet

import "amuletiso/internal/obs"

// Process-wide fleet metrics: run progress (the `-metrics-addr` /metrics and
// progress-line series) and build-cache effectiveness. Deterministic
// aggregates live in Report; these exist for live observation only.
var (
	mDevicesStarted = obs.Default.Counter(obs.MetricDevicesStarted,
		"Device simulations started.")
	mDevicesCompleted = obs.Default.Counter(obs.MetricDevicesCompleted,
		"Device simulations completed.")
	mInstrSimulated = obs.Default.Counter(obs.MetricInstrSimulated,
		"Simulated instructions retired across all devices.")
	mWearMS = obs.Default.Counter(obs.MetricWearMS,
		"Virtual wear-window milliseconds simulated across all devices.")

	mCacheHits = obs.Default.Counter(obs.MetricBuildCacheHits,
		"Firmware build-cache hits.")
	mTemplateBuilds = obs.Default.Counter(obs.MetricTemplateBuilds,
		"Boot templates captured.")
	mTemplateHits = obs.Default.Counter(obs.MetricTemplateHits,
		"Boot-template cache hits.")

	mBrownouts = obs.Default.Counter(obs.MetricBrownouts,
		"Brownout power-loss faults taken across all devices.")
	mReboots = obs.Default.Counter(obs.MetricReboots,
		"Post-brownout reboots completed across all devices.")
	mChargePJ = obs.Default.Gauge(obs.MetricChargePJ,
		"Supercapacitor charge of the most recently integrated device, picojoules.")
	mFirstBrownout = obs.Default.Histogram(obs.MetricFirstBrownoutMS,
		"Virtual milliseconds until each device's first brownout.",
		[]uint64{1000, 5000, 10000, 20000, 30000, 45000, 60000, 120000, 300000})
)
