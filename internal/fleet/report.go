package fleet

import (
	"fmt"
	"math"
	"sort"

	"amuletiso/internal/arp"
	"amuletiso/internal/energy"
	"amuletiso/internal/obs"
)

// DeviceResult is the outcome of simulating one device: the accounting the
// kernel accumulated over the scenario's wear window, plus the per-device
// battery projection. Results are pure functions of (firmware, device seed,
// scenario), so they are identical across runs and worker counts.
type DeviceResult struct {
	Device int    `json:"device"`
	Seed   uint32 `json:"seed"`

	Events     int    `json:"events"` // delivered by the scheduler
	Dispatches uint64 `json:"dispatches"`
	Syscalls   uint64 `json:"syscalls"`
	Cycles     uint64 `json:"cycles"`   // active cycles across all apps
	Insns      uint64 `json:"insns"`    // retired simulated instructions
	OSCycles   uint64 `json:"osCycles"` // modeled scheduler/service share
	Faults     int    `json:"faults"`
	AppsAlive  int    `json:"appsAlive"`

	FaultReasons []string `json:"faultReasons,omitempty"`
	// FaultClasses mirrors FaultReasons with the kernel's per-layer
	// attribution (check/gate/mpu/watchdog/injected/...).
	FaultClasses []string `json:"faultClasses,omitempty"`

	// Latency is the device's post→dispatch latency histogram in simulated
	// cycles — deterministic simulation output like every other field, never
	// wall-clock.
	Latency obs.CycleHist `json:"latency"`

	// FaultTrace is the flight recorder's last-events window around this
	// device's faults, present only when the scenario requested it
	// (Scenario.FaultTrace) and the device faulted. It never appears
	// otherwise, so reports stay byte-identical across tracing settings.
	FaultTrace []obs.DumpEvent `json:"faultTrace,omitempty"`

	// WeeklyBatteryPct projects this device's active-cycle load, extrapolated
	// to a week of wear, onto the battery model's weekly energy budget.
	WeeklyBatteryPct float64 `json:"weeklyBatteryPct"`
	// ProjectedLifetimeHours is the battery model's expected lifetime under
	// this device's load: the 14-day baseline minus
	// energy.LifetimeReductionHours of the load extrapolated to a week.
	ProjectedLifetimeHours float64 `json:"projectedLifetimeHours"`

	// Brownouts counts power-loss faults the intermittent-power model dealt
	// this device; FirstBrownoutMS is when the first one hit. Both zero on a
	// stable bench supply.
	Brownouts       int    `json:"brownouts,omitempty"`
	FirstBrownoutMS uint64 `json:"firstBrownoutMS,omitempty"`
}

// Summary holds order statistics over one per-device metric.
type Summary struct {
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// summarize computes nearest-rank percentiles over the values.
func summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		// Nearest-rank wants the ceiling, matching obs.CycleHist.Quantile:
		// p90 over 7 devices is rank ceil(6.3) = 7 → s[6], not the s[5] the
		// old round-half-up conversion produced.
		i := int(math.Ceil(p/100*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		Min:  s[0],
		P50:  rank(50),
		P90:  rank(90),
		P99:  rank(99),
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
	}
}

// Report aggregates a fleet run. Reports are mergeable: shards of the same
// scenario simulated on different machines (or in different calls) combine
// with Merge, and every aggregate is recomputed from the per-device results,
// so a merged report equals the report of the union run.
type Report struct {
	Scenario   string `json:"scenario"`
	Mode       string `json:"mode"`
	Devices    int    `json:"devices"`
	Seed       uint64 `json:"seed"`
	DurationMS uint64 `json:"durationMS"`

	TotalEvents     int    `json:"totalEvents"`
	TotalDispatches uint64 `json:"totalDispatches"`
	TotalSyscalls   uint64 `json:"totalSyscalls"`
	TotalCycles     uint64 `json:"totalCycles"`
	TotalInsns      uint64 `json:"totalInsns"`
	TotalFaults     int    `json:"totalFaults"`
	DevicesFaulted  int    `json:"devicesFaulted"`

	// TotalBrownouts / DevicesBrownedOut aggregate the intermittent-power
	// model's power-loss faults; both stay zero (and omitted) on a stable
	// supply, keeping -nopower reports byte-identical to power-less ones.
	TotalBrownouts    int `json:"totalBrownouts,omitempty"`
	DevicesBrownedOut int `json:"devicesBrownedOut,omitempty"`

	// FaultReasons histograms fault records across the fleet. JSON encoding
	// sorts map keys, keeping serialized reports deterministic.
	FaultReasons map[string]int `json:"faultReasons,omitempty"`
	// FaultClasses histograms the kernel's fault-layer attribution.
	FaultClasses map[string]int `json:"faultClasses,omitempty"`

	CycleSummary   Summary `json:"cycleSummary"`
	BatterySummary Summary `json:"batterySummary"`
	// LifetimeSummary summarizes per-device ProjectedLifetimeHours.
	LifetimeSummary Summary `json:"lifetimeSummary"`

	// Latency is the fleet-wide merge of every device's post→dispatch
	// histogram; LatencySummary gives its cycle-domain percentiles (bucket
	// upper bounds) — the ISC-FLAT interrupt-latency view per isolation mode.
	Latency        obs.CycleHist  `json:"latency"`
	LatencySummary LatencySummary `json:"latencySummary"`

	PerDevice []DeviceResult `json:"perDevice"`
}

// LatencySummary holds cycle-domain order statistics of a merged latency
// histogram. Quantiles are bucket upper bounds (nearest-rank), Max is exact.
type LatencySummary struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	Max   uint64 `json:"max"`
}

// finalize recomputes every aggregate from PerDevice, which it sorts by
// device index so serialized reports are independent of completion order.
func (r *Report) finalize() {
	sort.Slice(r.PerDevice, func(i, j int) bool {
		return r.PerDevice[i].Device < r.PerDevice[j].Device
	})
	r.Devices = len(r.PerDevice)
	r.TotalEvents, r.TotalDispatches, r.TotalSyscalls = 0, 0, 0
	r.TotalCycles, r.TotalInsns, r.TotalFaults, r.DevicesFaulted = 0, 0, 0, 0
	r.TotalBrownouts, r.DevicesBrownedOut = 0, 0
	r.FaultReasons = nil
	r.FaultClasses = nil
	cycles := make([]float64, 0, len(r.PerDevice))
	battery := make([]float64, 0, len(r.PerDevice))
	lifetime := make([]float64, 0, len(r.PerDevice))
	for _, d := range r.PerDevice {
		r.TotalEvents += d.Events
		r.TotalDispatches += d.Dispatches
		r.TotalSyscalls += d.Syscalls
		r.TotalCycles += d.Cycles
		r.TotalInsns += d.Insns
		r.TotalFaults += d.Faults
		if d.Faults > 0 {
			r.DevicesFaulted++
		}
		r.TotalBrownouts += d.Brownouts
		if d.Brownouts > 0 {
			r.DevicesBrownedOut++
		}
		for _, reason := range d.FaultReasons {
			if r.FaultReasons == nil {
				r.FaultReasons = make(map[string]int)
			}
			r.FaultReasons[reason]++
		}
		for _, class := range d.FaultClasses {
			if r.FaultClasses == nil {
				r.FaultClasses = make(map[string]int)
			}
			r.FaultClasses[class]++
		}
		cycles = append(cycles, float64(d.Cycles))
		battery = append(battery, d.WeeklyBatteryPct)
		lifetime = append(lifetime, d.ProjectedLifetimeHours)
	}
	r.CycleSummary = summarize(cycles)
	r.BatterySummary = summarize(battery)
	r.LifetimeSummary = summarize(lifetime)
	r.Latency = obs.CycleHist{}
	for i := range r.PerDevice {
		r.Latency.Merge(&r.PerDevice[i].Latency)
	}
	r.LatencySummary = LatencySummary{
		Count: r.Latency.Count(),
		P50:   r.Latency.Quantile(0.50),
		P90:   r.Latency.Quantile(0.90),
		P99:   r.Latency.Quantile(0.99),
		Max:   r.Latency.Max,
	}
}

// Merge folds another shard of the same scenario into r. The shards must
// agree on scenario identity (name, mode, seed, duration) and must not
// overlap in device indices.
func (r *Report) Merge(other *Report) error {
	if r.Scenario != other.Scenario || r.Mode != other.Mode ||
		r.Seed != other.Seed || r.DurationMS != other.DurationMS {
		return fmt.Errorf("fleet: cannot merge reports of different scenarios (%s/%s/%d vs %s/%s/%d)",
			r.Scenario, r.Mode, r.Seed, other.Scenario, other.Mode, other.Seed)
	}
	seen := make(map[int]bool, len(r.PerDevice))
	for _, d := range r.PerDevice {
		seen[d.Device] = true
	}
	for _, d := range other.PerDevice {
		if seen[d.Device] {
			return fmt.Errorf("fleet: merge overlap at device %d", d.Device)
		}
	}
	r.PerDevice = append(r.PerDevice, other.PerDevice...)
	r.finalize()
	return nil
}

// batteryPct projects a device's cycles over the scenario window to a weekly
// battery-budget percentage (the Figure 2 right-axis units, applied to whole
// workloads rather than isolation overheads).
func batteryPct(cycles uint64, durationMS uint64) float64 {
	return energy.BatteryImpactPercent(arp.ExtrapolateWeekly(float64(cycles), durationMS))
}

// projectedLifetimeHours projects a device's load onto the battery model's
// expected lifetime: the 14-day baseline minus the lifetime reduction of the
// weekly-extrapolated cycle load.
func projectedLifetimeHours(cycles uint64, durationMS uint64) float64 {
	weekly := arp.ExtrapolateWeekly(float64(cycles), durationMS)
	return float64(energy.BaselineLifetimeDays)*24 - energy.LifetimeReductionHours(weekly)
}
