package fleet

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) over a bounded pool of worker
// goroutines — the fan-out primitive behind fleet simulation and the torture
// campaigns in internal/torture. workers <= 0 means GOMAXPROCS.
//
// Feeding stops at the first fn error or context cancellation; in-flight
// calls finish. ForEach returns ctx's error if the context was cancelled,
// otherwise the first error fn returned. Callers that write fn results into
// a pre-sized slice at index i get deterministic output regardless of worker
// count or scheduling — the property both subsystems' reports rely on.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return ctx.Err()
	}

	idx := make(chan int)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	failed := make(chan struct{})
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			close(failed)
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		case <-failed:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
