package fleet

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) over a bounded pool of worker
// goroutines — the fan-out primitive behind fleet simulation and the torture
// campaigns in internal/torture. workers <= 0 means GOMAXPROCS.
//
// Feeding stops at the first fn error or context cancellation; in-flight
// calls finish. ForEach returns ctx's error if the context was cancelled,
// otherwise the first error fn returned. Callers that write fn results into
// a pre-sized slice at index i get deterministic output regardless of worker
// count or scheduling — the property both subsystems' reports rely on.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachBatch(ctx, n, workers, 1, fn)
}

// ForEachBatch is ForEach with batched claims: each worker receives a
// contiguous run of up to batch indices per channel round trip, amortizing
// pool coordination when items are cheap and plentiful (fleet devices). The
// error, cancellation and determinism contracts are exactly ForEach's —
// which indices land in which claim never changes what fn computes, only
// which goroutine runs it. Within a claim, cancellation and first-error
// stops are honored between items.
func ForEachBatch(ctx context.Context, n, workers, batch int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return ctx.Err()
	}
	if batch < 1 {
		batch = 1
	}

	type span struct{ lo, hi int }
	idx := make(chan span)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	failed := make(chan struct{})
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			close(failed)
		}
		errMu.Unlock()
	}
	stopped := func() bool {
		select {
		case <-failed:
			return true
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range idx {
				for i := s.lo; i < s.hi; i++ {
					if i > s.lo && stopped() {
						return
					}
					if err := fn(i); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
feed:
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		select {
		case idx <- span{lo, hi}:
		case <-ctx.Done():
			break feed
		case <-failed:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
