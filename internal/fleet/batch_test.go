package fleet

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/kernel"
)

// runReport simulates sc with the given worker count and batching setting
// and returns the serialized report.
func runReport(t *testing.T, sc Scenario, workers int, batching bool) []byte {
	t.Helper()
	defer SetBatching(true)
	SetBatching(batching)
	r := &Runner{Workers: workers}
	rep, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("workers=%d batching=%v: %v", workers, batching, err)
	}
	return marshal(t, rep)
}

// TestBatchingByteIdentical is the batching determinism lockdown: with
// wear-window batching on, reports must be byte-identical across worker
// counts AND to the unbatched engine — batching may only change scheduling,
// never results.
func TestBatchingByteIdentical(t *testing.T) {
	sc := testScenario(12)
	sc.Events = []ScheduledEvent{{AtMS: 50, App: 0, Code: abi.EvTick, PeriodMS: 130}}
	golden := runReport(t, sc, 1, false)
	for _, workers := range []int{1, 8} {
		for _, batching := range []bool{true, false} {
			got := runReport(t, sc, workers, batching)
			if !bytes.Equal(golden, got) {
				t.Fatalf("workers=%d batching=%v: report differs from unbatched single-worker run",
					workers, batching)
			}
		}
	}
}

// TestWatchdogMidBatch sweeps the per-event watchdog budget so handler kills
// land at arbitrary points of the wear window — including mid-batch — and
// asserts batch boundaries neither starve the watchdog nor the periodic
// schedule: every sweep point stays byte-identical across batching and
// parallelism, watchdog faults do occur, and the periodic schedule keeps
// delivering after the kills.
func TestWatchdogMidBatch(t *testing.T) {
	base := Scenario{
		Name:       "watchdog-sweep",
		Apps:       []apps.App{apps.Synthetic()},
		Mode:       cc.ModeMPU,
		DurationMS: 4_000,
		Devices:    6,
		Seed:       9,
		Events: []ScheduledEvent{
			{AtMS: 100, App: 0, Code: apps.EvMemOps, Arg: 400, PeriodMS: 150},
		},
		Policy: &kernel.RestartPolicy{MaxFaults: 1000, BackoffMS: 50},
	}
	sawWatchdog := false
	for _, budget := range []uint64{6_000, 12_000, 40_000, 5_000_000} {
		sc := base
		sc.WatchdogBudget = budget
		golden := runReport(t, sc, 1, true)
		if !bytes.Equal(golden, runReport(t, sc, 8, true)) {
			t.Fatalf("budget=%d: batched report differs across worker counts", budget)
		}
		if !bytes.Equal(golden, runReport(t, sc, 8, false)) {
			t.Fatalf("budget=%d: batched report differs from unbatched engine", budget)
		}

		SetBatching(true)
		rep, err := (&Runner{Workers: 4}).Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FaultClasses["watchdog"] > 0 {
			sawWatchdog = true
			// The periodic schedule must survive the kills: far more events
			// than the initial EvInit + first period implies.
			wantAtLeast := rep.Devices * 10
			if rep.TotalEvents < wantAtLeast {
				t.Fatalf("budget=%d: only %d events delivered (want >= %d); periodic schedule starved",
					budget, rep.TotalEvents, wantAtLeast)
			}
		}
	}
	if !sawWatchdog {
		t.Fatal("budget sweep never landed a watchdog kill; sweep values need adjusting")
	}
}

// TestForEachBatchCoversAllIndices checks the chunked pool visits every
// index exactly once at every batch size, and stops feeding on first error.
func TestForEachBatchCoversAllIndices(t *testing.T) {
	for _, batch := range []int{1, 3, 16, 100} {
		const n = 53
		var mu sync.Mutex
		seen := make([]int, n)
		err := ForEachBatch(context.Background(), n, 4, batch, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("batch=%d: index %d visited %d times", batch, i, v)
			}
		}
	}
	boom := errors.New("boom")
	calls := 0
	var mu sync.Mutex
	err := ForEachBatch(context.Background(), 10_000, 2, 8, func(i int) error {
		mu.Lock()
		calls++
		mu.Unlock()
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if calls >= 10_000 {
		t.Fatal("feeding did not stop after the first error")
	}
}

// TestChunkFor pins the claim-sizing policy: 1 with batching off or tiny
// fleets, bounded by maxChunk for huge ones.
func TestChunkFor(t *testing.T) {
	defer SetBatching(true)
	SetBatching(false)
	if got := chunkFor(10_000, 8); got != 1 {
		t.Fatalf("batching off: chunk = %d, want 1", got)
	}
	SetBatching(true)
	if got := chunkFor(8, 8); got != 1 {
		t.Fatalf("small fleet: chunk = %d, want 1", got)
	}
	if got := chunkFor(1_000_000, 4); got != maxChunk {
		t.Fatalf("huge fleet: chunk = %d, want %d", got, maxChunk)
	}
	if got := chunkFor(320, 8); got != 10 {
		t.Fatalf("mid fleet: chunk = %d, want 10", got)
	}
}
