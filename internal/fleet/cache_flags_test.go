package fleet

import (
	"testing"

	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/isa"
)

// TestBuildCacheEngineFlagEviction pins the eviction-safety fix: the cache
// key includes the engine configuration, so flipping an escape hatch between
// runs in one process rebuilds instead of silently serving a firmware (and
// boot template) baked under different flags.
func TestBuildCacheEngineFlagEviction(t *testing.T) {
	defer func() {
		isa.SetFusion(true)
		isa.SetThreading(true)
	}()
	cache := NewBuildCache()
	pedometer, _ := apps.ByName("pedometer")
	list := []apps.App{pedometer}

	fwOn, err := cache.Get(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	isa.SetFusion(false)
	fwNoFuse, err := cache.Get(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if fwOn == fwNoFuse {
		t.Fatal("fusion flip served the same firmware instance")
	}
	if fwOn.Text.FusedHeads() == 0 || fwNoFuse.Text.FusedHeads() != 0 {
		t.Fatalf("fusion state wrong: on=%d heads, off=%d heads",
			fwOn.Text.FusedHeads(), fwNoFuse.Text.FusedHeads())
	}
	isa.SetFusion(true)
	isa.SetThreading(false)
	fwNoThread, err := cache.Get(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if fwNoThread == fwOn || fwNoThread == fwNoFuse {
		t.Fatal("threading flip served a stale firmware instance")
	}
	isa.SetThreading(true)
	fwAgain, err := cache.Get(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if fwAgain != fwOn {
		t.Fatal("restoring flags did not hit the original cache entry")
	}
	if builds, _ := cache.Stats(); builds != 3 {
		t.Fatalf("builds = %d, want 3 (one per distinct engine configuration)", builds)
	}
}

// TestTemplateStats checks the boot-template counters Runner surfaces:
// first request builds, repeats hit, and the template tracks its entry's
// engine configuration.
func TestTemplateStats(t *testing.T) {
	cache := NewBuildCache()
	pedometer, _ := apps.ByName("pedometer")
	list := []apps.App{pedometer}

	t1, err := cache.Template(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cache.Template(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("template rebuilt for an unchanged configuration")
	}
	if builds, hits := cache.TemplateStats(); builds != 1 || hits != 1 {
		t.Fatalf("template stats = %d builds, %d hits; want 1, 1", builds, hits)
	}
	fw, err := cache.Get(list, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Firmware() != fw {
		t.Fatal("template firmware differs from the cached build")
	}
}
