package fleet

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"amuletiso/internal/obs"
)

// TestLatencyReportDeterminism is the satellite lock for the latency
// histograms: serialized reports — hist buckets and percentile summary
// included — must be byte-identical across worker counts, across batching
// on/off, and across tracing on/off.
func TestLatencyReportDeterminism(t *testing.T) {
	sc := testScenario(10)
	var golden []byte
	check := func(label string, workers int) {
		rep, err := (&Runner{Workers: workers}).Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if rep.LatencySummary.Count == 0 {
			t.Fatalf("%s: latency summary is empty", label)
		}
		b := marshal(t, rep)
		if golden == nil {
			golden = b
			return
		}
		if !bytes.Equal(golden, b) {
			t.Errorf("%s: report differs from baseline", label)
		}
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		check("workers", workers)
	}
	SetBatching(false)
	check("nobatch", 4)
	SetBatching(true)
	obs.SetTracing(true)
	check("traced", 4)
	obs.SetTracing(false)
	obs.SetMetrics(false)
	check("noobs", 4)
	obs.SetMetrics(true)
}

// TestLatencyMergeEqualsUnion locks shard merging: the merged latency
// histogram of two disjoint shards must equal the union run's.
func TestLatencyMergeEqualsUnion(t *testing.T) {
	whole := testScenario(8)
	repWhole, err := Run(context.Background(), whole)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := whole, whole
	lo.Devices, hi.Devices, hi.FirstDevice = 3, 5, 3
	repLo, err := Run(context.Background(), lo)
	if err != nil {
		t.Fatal(err)
	}
	repHi, err := Run(context.Background(), hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := repLo.Merge(repHi); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, repWhole), marshal(t, repLo)) {
		t.Fatal("merged shard report differs from the union run")
	}
}

// TestFaultTraceDump exercises the explicit dump hatch: faulting devices
// carry a recorder window containing the fault, non-faulting devices carry
// none, and the dump bytes do not depend on whether global tracing is armed.
func TestFaultTraceDump(t *testing.T) {
	sc := testScenario(6)
	sc.FaultTrace = true
	run := func() *Report {
		rep, err := Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	dumped := 0
	for _, d := range rep.PerDevice {
		if d.Faults == 0 {
			if d.FaultTrace != nil {
				t.Fatalf("device %d has no faults but carries a trace dump", d.Device)
			}
			continue
		}
		if len(d.FaultTrace) == 0 {
			t.Fatalf("faulting device %d carries no trace dump", d.Device)
		}
		if len(d.FaultTrace) > faultTraceWindow {
			t.Fatalf("device %d dump has %d events, cap is %d",
				d.Device, len(d.FaultTrace), faultTraceWindow)
		}
		dumped++
	}
	if dumped == 0 {
		t.Fatal("scenario injects faults but no device dumped a trace")
	}

	obs.SetTracing(true)
	traced := run()
	obs.SetTracing(false)
	if !bytes.Equal(marshal(t, rep), marshal(t, traced)) {
		t.Fatal("FaultTrace dump depends on the global tracing switch")
	}
}

// TestNoFaultTraceByDefault guards the determinism contract from the other
// side: without Scenario.FaultTrace, no recorder data reaches the report
// even when tracing is armed process-wide.
func TestNoFaultTraceByDefault(t *testing.T) {
	obs.SetTracing(true)
	defer obs.SetTracing(false)
	rep, err := Run(context.Background(), testScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.PerDevice {
		if d.FaultTrace != nil {
			t.Fatalf("device %d leaked recorder data without FaultTrace", d.Device)
		}
	}
}
