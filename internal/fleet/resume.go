package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"amuletiso/internal/kernel"
	"amuletiso/internal/mem"
)

// This file implements resumable campaigns: a run that can be checkpointed
// while in flight and continued later — by the same process or a restarted
// one — with a final report byte-identical to an uninterrupted run's.
//
// Consistency is trivial because devices are independent: any per-device mix
// of {finished result, mid-window kernel checkpoint, not started} is a valid
// cut, no cross-device barrier needed. Correctness does not depend on the
// snapshots either — a device missing from a checkpoint simply reruns from
// boot, and determinism guarantees the same result — so snapshots are purely
// a work-saving measure, and any snapshot cadence is safe.

// DeviceCheckpoint is one device parked mid-wear-window: the serialized
// kernel plus the segment-loop cursors advance needs to continue it.
type DeviceCheckpoint struct {
	Device     int    `json:"device"`
	Events     int    `json:"events"`
	Now        uint64 `json:"now"`
	NextButton uint64 `json:"nextButton"`
	NextFault  uint64 `json:"nextFault"`
	ButtonRNG  uint64 `json:"buttonRNG"`
	// Kernel is nil exactly when the device is parked dark after a brownout;
	// Power.Cut then carries the FRAM state its reboot will restore.
	Kernel *kernel.Checkpoint `json:"kernel,omitempty"`
	// Power is the supercapacitor state; nil on a stable bench supply.
	Power *PowerCheckpoint `json:"power,omitempty"`
}

// CampaignCheckpoint is a consistent cut of one scenario run: finished
// devices' results plus in-flight devices' checkpoints, with enough identity
// to reject resumption against a different scenario. Devices in neither list
// rerun from boot on resume.
type CampaignCheckpoint struct {
	Scenario    string `json:"scenario"`
	Mode        string `json:"mode"`
	Seed        uint64 `json:"seed"`
	DurationMS  uint64 `json:"durationMS"`
	FirstDevice int    `json:"firstDevice,omitempty"`
	Devices     int    `json:"devices"`

	// Power-model identity: resuming under different power knobs would
	// silently change device behavior, so the cut pins them. All omitempty,
	// keeping pre-power cuts loadable.
	PowerTrace      string `json:"powerTrace,omitempty"`
	BrownoutEveryMS uint64 `json:"brownoutEveryMS,omitempty"`
	BrownoutOffMS   uint64 `json:"brownoutOffMS,omitempty"`

	Done     []DeviceResult     `json:"done,omitempty"`
	InFlight []DeviceCheckpoint `json:"inFlight,omitempty"`
}

// matches rejects cuts taken from a different campaign.
func (ck *CampaignCheckpoint) matches(sc *Scenario) error {
	if ck.Scenario != sc.Name || ck.Mode != sc.Mode.String() ||
		ck.Seed != sc.Seed || ck.DurationMS != sc.DurationMS ||
		ck.FirstDevice != sc.FirstDevice || ck.Devices != sc.Devices ||
		ck.PowerTrace != sc.PowerTrace || ck.BrownoutEveryMS != sc.BrownoutEveryMS ||
		ck.BrownoutOffMS != sc.BrownoutOffMS {
		return fmt.Errorf("fleet: checkpoint is for campaign %q/%s seed=%d dur=%d devices=[%d,%d), not this scenario",
			ck.Scenario, ck.Mode, ck.Seed, ck.DurationMS, ck.FirstDevice, ck.FirstDevice+ck.Devices)
	}
	return nil
}

// checkpoint serializes the device's current state. The device keeps running
// afterwards — checkpointing only reads.
func (d *deviceSim) checkpoint() *DeviceCheckpoint {
	dc := &DeviceCheckpoint{
		Device:     d.device,
		Events:     d.events,
		Now:        d.now,
		NextButton: d.nextButton,
		NextFault:  d.nextFault,
		ButtonRNG:  d.buttonRNG,
	}
	if d.k != nil {
		dc.Kernel = d.tmpl.Checkpoint(d.k)
	}
	if d.power != nil {
		dc.Power = d.power.checkpoint()
	}
	return dc
}

// resumeDeviceSim continues a parked device from its checkpoint.
func resumeDeviceSim(sc *Scenario, tmpl *kernel.BootTemplate, arena *mem.PageArena, dc *DeviceCheckpoint) (*deviceSim, error) {
	seed := DeviceSeed(sc.Seed, dc.Device)
	var k *kernel.Kernel
	if dc.Kernel != nil {
		var err error
		if k, err = tmpl.Resume(dc.Kernel, arena); err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", dc.Device, err)
		}
	} else if dc.Power == nil || !dc.Power.Off || dc.Power.Cut == nil {
		return nil, fmt.Errorf("fleet: device %d checkpoint has no kernel and is not parked dark", dc.Device)
	}
	mDevicesStarted.Inc()
	d := &deviceSim{
		sc: sc, tmpl: tmpl, k: k, arena: arena,
		device:     dc.Device,
		seed:       seed,
		events:     dc.Events,
		now:        dc.Now,
		nextButton: dc.NextButton,
		nextFault:  dc.NextFault,
		buttonRNG:  dc.ButtonRNG,
	}
	if dc.Power != nil && sc.powered() {
		d.power = resumePowerState(sc, seed, dc.Power)
	}
	return d, nil
}

// ResumableOptions tunes RunResumable's snapshot behavior.
type ResumableOptions struct {
	// SegmentMS is the virtual-time interval between per-device snapshot
	// refreshes. 0 snapshots only at cancellation — cheapest, but a killed
	// process reruns interrupted devices from boot.
	SegmentMS uint64
	// Sink, when set, receives periodic consistent cuts every Flush of real
	// time (and does not receive the final cut — RunResumable returns that).
	// Calls are serialized; the cut is the callback's to keep.
	Sink  func(*CampaignCheckpoint)
	Flush time.Duration
}

// campaignState is the shared progress ledger a resumable run's workers and
// flusher coordinate through, keyed by global device index.
type campaignState struct {
	sc *Scenario

	mu       sync.Mutex
	done     map[int]DeviceResult
	inflight map[int]*DeviceCheckpoint
}

// cut assembles a consistent CampaignCheckpoint from the current ledger.
func (st *campaignState) cut() *CampaignCheckpoint {
	st.mu.Lock()
	defer st.mu.Unlock()
	ck := &CampaignCheckpoint{
		Scenario:        st.sc.Name,
		Mode:            st.sc.Mode.String(),
		Seed:            st.sc.Seed,
		DurationMS:      st.sc.DurationMS,
		FirstDevice:     st.sc.FirstDevice,
		Devices:         st.sc.Devices,
		PowerTrace:      st.sc.PowerTrace,
		BrownoutEveryMS: st.sc.BrownoutEveryMS,
		BrownoutOffMS:   st.sc.BrownoutOffMS,
	}
	for _, res := range st.done {
		ck.Done = append(ck.Done, res)
	}
	sort.Slice(ck.Done, func(i, j int) bool { return ck.Done[i].Device < ck.Done[j].Device })
	for _, dc := range st.inflight {
		ck.InFlight = append(ck.InFlight, *dc)
	}
	sort.Slice(ck.InFlight, func(i, j int) bool { return ck.InFlight[i].Device < ck.InFlight[j].Device })
	return ck
}

func (st *campaignState) park(dc *DeviceCheckpoint) {
	st.mu.Lock()
	st.inflight[dc.Device] = dc
	st.mu.Unlock()
}

func (st *campaignState) finish(device int, res DeviceResult) {
	st.mu.Lock()
	st.done[device] = res
	delete(st.inflight, device)
	st.mu.Unlock()
}

// RunResumable runs the scenario like Run, continuing from a prior cut when
// one is supplied. On success it returns the finished report — byte-identical
// to Run's, no matter how many kill/resume cycles the campaign went through.
// On cancellation it returns a final consistent cut alongside ctx's error;
// persist it and pass it back to continue. Snapshots are skipped for
// FaultTrace scenarios (the flight-recorder ring is not serializable, so a
// resumed trace would differ): those devices always rerun from boot.
func (r *Runner) RunResumable(ctx context.Context, sc Scenario, prior *CampaignCheckpoint, opt ResumableOptions) (*Report, *CampaignCheckpoint, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	cache := r.Cache
	if cache == nil {
		cache = NewBuildCache()
	}
	tmpl, err := cache.Template(sc.Apps, sc.Mode)
	if err != nil {
		return nil, nil, err
	}

	st := &campaignState{
		sc:       &sc,
		done:     make(map[int]DeviceResult),
		inflight: make(map[int]*DeviceCheckpoint),
	}
	snapshots := !sc.FaultTrace
	if prior != nil {
		if err := prior.matches(&sc); err != nil {
			return nil, nil, err
		}
		for _, res := range prior.Done {
			st.done[res.Device] = res
		}
		if snapshots {
			for i := range prior.InFlight {
				dc := prior.InFlight[i]
				st.inflight[dc.Device] = &dc
			}
		}
	}

	// The worklist is every device without a finished result, in index order.
	var work []int
	for g := sc.FirstDevice; g < sc.FirstDevice+sc.Devices; g++ {
		if _, ok := st.done[g]; !ok {
			work = append(work, g)
		}
	}

	if opt.Sink != nil && opt.Flush > 0 {
		stop := make(chan struct{})
		flushed := make(chan struct{})
		go func() {
			defer close(flushed)
			tick := time.NewTicker(opt.Flush)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					opt.Sink(st.cut())
				case <-stop:
					return
				}
			}
		}()
		defer func() { close(stop); <-flushed }()
	}

	segment := opt.SegmentMS
	if segment == 0 || !snapshots {
		segment = sc.DurationMS
	}
	workers := r.workerCount()
	arena := r.pageArena()
	err = ForEachBatch(ctx, len(work), workers, chunkFor(len(work), workers), func(i int) error {
		g := work[i]
		var d *deviceSim
		st.mu.Lock()
		dc := st.inflight[g]
		st.mu.Unlock()
		if dc != nil {
			var rerr error
			if d, rerr = resumeDeviceSim(&sc, tmpl, arena, dc); rerr != nil {
				return rerr
			}
		} else {
			d = newDeviceSim(&sc, tmpl, arena, g)
		}
		defer d.close()
		for !d.finished() {
			if err := d.advance(ctx, d.now+segment); err != nil {
				// Park the interrupted device so the final cut saves its
				// progress. advance stops between event deliveries, which is
				// a valid checkpoint boundary even mid-segment.
				if snapshots {
					st.park(d.checkpoint())
				}
				return err
			}
			if snapshots && !d.finished() {
				st.park(d.checkpoint())
			}
		}
		st.finish(g, d.result())
		return nil
	})
	if err != nil {
		return nil, st.cut(), err
	}

	results := make([]DeviceResult, 0, sc.Devices)
	for g := sc.FirstDevice; g < sc.FirstDevice+sc.Devices; g++ {
		res, ok := st.done[g]
		if !ok {
			return nil, st.cut(), fmt.Errorf("fleet: device %d finished without a result", g)
		}
		results = append(results, res)
	}
	rep := &Report{
		Scenario:   sc.Name,
		Mode:       sc.Mode.String(),
		Seed:       sc.Seed,
		DurationMS: sc.DurationMS,
		PerDevice:  results,
	}
	rep.finalize()
	return rep, nil, nil
}
