package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"amuletiso/internal/mem"
)

// cancelAfter is a deterministic cancellation source: its Err starts
// returning context.Canceled after the limit-th poll, wherever in the run
// that poll lands. Unlike a timer-based cancel, the same limit interrupts
// the same scenario at the same place every time.
type cancelAfter struct {
	context.Context
	mu     sync.Mutex
	checks int
	limit  int
}

func newCancelAfter(limit int) *cancelAfter {
	return &cancelAfter{Context: context.Background(), limit: limit}
}

func (c *cancelAfter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks++
	if c.checks > c.limit {
		return context.Canceled
	}
	return nil
}

// TestCancelledSimulateReleasesPages is the leak regression: a device whose
// simulation is cancelled mid-window must still hand its dirty COW pages
// back to the arena. The early returns in the old simulate skipped
// ReleasePages, so every cancelled device leaked its pages permanently.
func TestCancelledSimulateReleasesPages(t *testing.T) {
	mem.SetCOW(true)
	defer mem.SetCOW(true)
	sc := testScenario(1)
	cache := NewBuildCache()
	tmpl, err := cache.Template(sc.Apps, sc.Mode)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 2, 3} {
		arena := mem.NewPageArena()
		ctx := newCancelAfter(limit)
		if _, err := simulate(ctx, &sc, tmpl, arena, 0); err != context.Canceled {
			t.Fatalf("limit=%d: err = %v, want context.Canceled", limit, err)
		}
		// Every page the cancelled device dirtied must be back in the arena:
		// the free list is exactly the pages it released (nothing else ran).
		if free := arena.FreePages(); free == 0 {
			t.Fatalf("limit=%d: cancelled device returned no pages to the arena", limit)
		}
	}
}

// TestCancelledRunReleasesPages checks the same invariant through the public
// Runner path: after a cancelled Run on a warmed arena, every page borrowed
// from the free list came back (free count did not shrink).
func TestCancelledRunReleasesPages(t *testing.T) {
	mem.SetCOW(true)
	defer mem.SetCOW(true)
	sc := testScenario(6)
	r := &Runner{Workers: 2, Cache: NewBuildCache()}
	if _, err := r.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	freeBefore := r.pageArena().FreePages()
	if freeBefore == 0 {
		t.Fatal("warm-up run parked no pages")
	}
	if _, err := r.Run(newCancelAfter(20), sc); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if free := r.pageArena().FreePages(); free < freeBefore {
		t.Fatalf("cancelled run leaked pages: free %d -> %d", freeBefore, free)
	}
	gets, puts := r.ArenaStats()
	if gets == 0 || puts == 0 {
		t.Fatalf("arena did not cycle (gets=%d puts=%d)", gets, puts)
	}
}

// TestRunResumableMatchesRun: with no prior cut and no interruptions, the
// resumable path must be byte-identical to Run at any segment length.
func TestRunResumableMatchesRun(t *testing.T) {
	sc := testScenario(5)
	want, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range []uint64{0, 300, 1250, 10000} {
		r := &Runner{Workers: 2, Cache: NewBuildCache()}
		rep, cut, err := r.RunResumable(context.Background(), sc, nil, ResumableOptions{SegmentMS: seg})
		if err != nil {
			t.Fatalf("seg=%d: %v", seg, err)
		}
		if cut != nil {
			t.Fatalf("seg=%d: successful run returned a cut", seg)
		}
		if !bytes.Equal(marshal(t, rep), marshal(t, want)) {
			t.Fatalf("seg=%d: resumable report differs from Run", seg)
		}
	}
}

// TestKilledAndResumedCampaignByteIdentity is the tentpole acceptance
// property: interrupt a campaign (twice), JSON round-trip the cut each time
// as a daemon restart would, resume, and compare the final report
// byte-for-byte against an uninterrupted run.
func TestKilledAndResumedCampaignByteIdentity(t *testing.T) {
	sc := testScenario(8)
	want, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	opt := ResumableOptions{SegmentMS: 700}
	var cut *CampaignCheckpoint
	for round, limit := range []int{25, 60} {
		r := &Runner{Workers: 2, Cache: NewBuildCache()}
		rep, c, err := r.RunResumable(newCancelAfter(limit), sc, cut, opt)
		if err != context.Canceled {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
		}
		if rep != nil {
			t.Fatalf("round %d: cancelled run returned a report", round)
		}
		if c == nil {
			t.Fatalf("round %d: cancelled run returned no cut", round)
		}
		// Round-trip through JSON — the form a daemon's state file holds.
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("round %d: marshal cut: %v", round, err)
		}
		cut = new(CampaignCheckpoint)
		if err := json.Unmarshal(wire, cut); err != nil {
			t.Fatalf("round %d: unmarshal cut: %v", round, err)
		}
	}
	if len(cut.Done)+len(cut.InFlight) == 0 {
		t.Fatal("two interrupted rounds made no checkpointable progress")
	}

	r := &Runner{Workers: 3, Cache: NewBuildCache()}
	rep, c, err := r.RunResumable(context.Background(), sc, cut, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatal("finished resume returned a cut")
	}
	if !bytes.Equal(marshal(t, rep), marshal(t, want)) {
		t.Fatal("killed+resumed campaign differs from uninterrupted run")
	}
}

// TestResumableFaultTraceRerunsFromBoot: fault-trace scenarios cannot
// snapshot (the recorder ring is not serializable) — a cancelled run's cut
// must carry no in-flight state, and resuming must still converge on the
// uninterrupted bytes by rerunning interrupted devices.
func TestResumableFaultTraceRerunsFromBoot(t *testing.T) {
	sc := testScenario(4)
	sc.FaultTrace = true
	want, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Cache: NewBuildCache()}
	_, cut, err := r.RunResumable(newCancelAfter(15), sc, nil, ResumableOptions{SegmentMS: 500})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(cut.InFlight) != 0 {
		t.Fatalf("fault-trace cut carries %d in-flight snapshots", len(cut.InFlight))
	}
	rep, _, err := r.RunResumable(context.Background(), sc, cut, ResumableOptions{SegmentMS: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, rep), marshal(t, want)) {
		t.Fatal("resumed fault-trace campaign differs from uninterrupted run")
	}
}

// TestRunResumableRejectsForeignCut covers the identity validation.
func TestRunResumableRejectsForeignCut(t *testing.T) {
	sc := testScenario(3)
	r := &Runner{Workers: 2, Cache: NewBuildCache()}
	_, cut, err := r.RunResumable(newCancelAfter(5), sc, nil, ResumableOptions{SegmentMS: 500})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for name, mutate := range map[string]func(*CampaignCheckpoint){
		"scenario": func(c *CampaignCheckpoint) { c.Scenario = "other" },
		"mode":     func(c *CampaignCheckpoint) { c.Mode = "NoIsolation" },
		"seed":     func(c *CampaignCheckpoint) { c.Seed++ },
		"duration": func(c *CampaignCheckpoint) { c.DurationMS++ },
		"shard":    func(c *CampaignCheckpoint) { c.FirstDevice++ },
		"devices":  func(c *CampaignCheckpoint) { c.Devices++ },
	} {
		bad := *cut
		mutate(&bad)
		if _, _, err := r.RunResumable(context.Background(), sc, &bad, ResumableOptions{}); err == nil {
			t.Errorf("%s-mutated cut accepted", name)
		}
	}
}
