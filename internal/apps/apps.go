package apps

import "amuletiso/internal/aft"

// App is a registry entry: an application plus its metadata.
type App struct {
	Name             string
	Title            string // display name used in figures
	Source           string
	RestrictedSource string // Amulet C variant when Source needs full C
	StackBytes       int    // stack override (0 = analyzer estimate)
	Description      string
	Benchmark        bool // Table 1 / Figure 3 app rather than a Figure 2 app
}

// AFT converts the registry entry to a toolchain input.
func (a App) AFT() aft.AppSource {
	return aft.AppSource{
		Name:             a.Name,
		Source:           a.Source,
		RestrictedSource: a.RestrictedSource,
		StackBytes:       a.StackBytes,
	}
}

// Suite returns the nine Amulet platform applications of Figure 2, in the
// paper's display order.
func Suite() []App {
	return []App{
		{Name: "batterymeter", Title: "BatteryMeter", Source: SrcBatteryMeter,
			Description: "battery gauge with rolling average and low warning"},
		{Name: "clock", Title: "Clock", Source: SrcClock,
			Description: "wall clock with per-minute display refresh"},
		{Name: "falldetection", Title: "FallDetection", Source: SrcFallDetection,
			Description: "20 Hz impact-then-stillness fall detector"},
		{Name: "hr", Title: "HR", Source: SrcHR,
			Description: "smoothed heart rate with training zones"},
		{Name: "hrlog", Title: "HR Log", Source: SrcHRLog,
			Description: "heart-rate logger with bulk flushes (OS-intensive)"},
		{Name: "pedometer", Title: "Pedometer", Source: SrcPedometer,
			Description: "20 Hz threshold-crossing step counter"},
		{Name: "rest", Title: "Rest", Source: SrcRest,
			Description: "rest-minute tracker from activity counts"},
		{Name: "sun", Title: "Sun", Source: SrcSun,
			Description: "sun-exposure minutes from light sensor"},
		{Name: "temperature", Title: "Temperature", Source: SrcTemperature,
			Description: "skin temperature min/max/average with alerts"},
	}
}

// Benchmark event codes understood by the benchmark apps' handlers.
const (
	EvMemOps   = 10 // synthetic: arg iterations of the checked memory op
	EvYieldOps = 11 // synthetic: arg bare API round trips
	EvGateOps  = 12 // synthetic: arg pointer-carrying API round trips
	EvCase1    = 10 // activity: case 1 (windowed statistics)
	EvCase2    = 11 // activity: case 2 (peak detection)
	EvSort     = 10 // quicksort: fill and sort
)

// Synthetic returns the Table 1 micro-benchmark app.
func Synthetic() App {
	return App{Name: "synthetic", Title: "Synthetic App", Source: SrcSynthetic,
		Benchmark: true, Description: "isolates memory-access and context-switch costs"}
}

// Activity returns the Figure 3 activity-detection benchmark app.
func Activity() App {
	return App{Name: "activity", Title: "Activity Detection", Source: SrcActivity,
		Benchmark: true, Description: "windowed statistics and peak detection over an accel buffer"}
}

// Quicksort returns the Figure 3 quicksort benchmark app.
func Quicksort() App {
	return App{Name: "quicksort", Title: "Quicksort", Source: SrcQuicksort,
		RestrictedSource: SrcQuicksortRestricted, StackBytes: 768,
		Benchmark: true, Description: "recursive pointer quicksort (iterative under Amulet C)"}
}

// Benchmarks returns the Table 1 / Figure 3 applications.
func Benchmarks() []App {
	return []App{Synthetic(), Activity(), Quicksort()}
}

// ByName finds a registry entry across the suite and benchmarks.
func ByName(name string) (App, bool) {
	for _, a := range Suite() {
		if a.Name == name {
			return a, true
		}
	}
	for _, a := range Benchmarks() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
