// Package apps contains the AmuletC sources of the application suite used
// throughout the evaluation:
//
//   - the nine Amulet platform applications of the paper's Figure 2
//     (BatteryMeter, Clock, FallDetection, HR, HRLog, Pedometer, Rest, Sun,
//     Temperature), re-implemented from their published descriptions in a
//     common subset that compiles under both dialects; and
//   - the three benchmark applications of Table 1 and Figure 3 (Synthetic,
//     ActivityDetection with its two cases, Quicksort), with restricted
//     variants where the full-dialect version needs pointers or recursion.
//
// All workloads are deterministic: sensor inputs come from the kernel's
// seeded signal models, and benchmark fills use fixed linear congruential
// sequences.
package apps

// SrcBatteryMeter samples the battery gauge on a slow timer, keeps a
// 12-sample rolling average and raises a low-battery log entry.
const SrcBatteryMeter = `
int history[12];
int idx = 0;
int primed = 0;
char label[8] = "battery";

void handle_event(int ev, int arg) {
    if (ev == 0) {
        int i;
        for (i = 0; i < 12; i++) { history[i] = 100; }
        amulet_set_timer(30000);
        return;
    }
    if (ev == 1) {
        int pct = amulet_read_battery();
        history[idx] = pct;
        idx = (idx + 1) % 12;
        int i;
        int avg = 0;
        for (i = 0; i < 12; i++) { avg = avg + history[i]; }
        avg = avg / 12;
        if (avg < 20 && primed == 0) {
            amulet_log_value(1, avg);
            primed = 1;
        }
        amulet_display_text(label, 7, 0);
        amulet_display_draw(0, 1, pct);
        amulet_set_timer(30000);
    }
}
`

// SrcClock keeps wall time on a 1 s timer and redraws the face each minute.
const SrcClock = `
int seconds = 0;
int minutes = 0;
int hours = 0;
char face[6];

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_set_timer(1000); return; }
    if (ev == 1) {
        seconds++;
        if (seconds >= 60) {
            seconds = 0;
            minutes++;
            if (minutes >= 60) {
                minutes = 0;
                hours = (hours + 1) % 24;
            }
            face[0] = '0' + hours / 10;
            face[1] = '0' + hours % 10;
            face[2] = ':';
            face[3] = '0' + minutes / 10;
            face[4] = '0' + minutes % 10;
            amulet_display_text(face, 5, 0);
        }
        amulet_set_timer(1000);
    }
}
`

// SrcFallDetection watches 20 Hz accelerometer magnitude for an impact
// spike followed by stillness — the computation-heavy, high-event-rate app.
const SrcFallDetection = `
int window[32];
int widx = 0;
int armed = 0;
int quiet = 0;
int falls = 0;

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(0, 50); return; }
    if (ev == 2) {
        int x = amulet_read_accel(0);
        int y = amulet_read_accel(1);
        int z = amulet_read_accel(2);
        if (x < 0) { x = 0 - x; }
        if (y < 0) { y = 0 - y; }
        if (z < 0) { z = 0 - z; }
        int mag = x + y + z;
        window[widx] = mag;
        widx = (widx + 1) % 32;
        if (mag > 2400) { armed = 1; quiet = 0; }
        if (armed == 1) {
            if (mag < 1100) { quiet++; } else { quiet = 0; }
            if (quiet > 10) {
                falls++;
                amulet_log_value(3, falls);
                armed = 0;
            }
        }
    }
}
`

// SrcHR smooths 1 Hz heart-rate samples and logs training-zone changes.
const SrcHR = `
int smooth = 70;
int zone = 0;

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(1, 1000); return; }
    if (ev == 2 && arg == 1) {
        int hr = amulet_read_hr();
        smooth = (smooth * 7 + hr) / 8;
        int z = 0;
        if (smooth > 100) { z = 1; }
        if (smooth > 140) { z = 2; }
        if (z != zone) {
            zone = z;
            amulet_log_value(4, zone);
        }
        amulet_display_draw(0, 0, smooth);
    }
}
`

// SrcHRLog buffers heart-rate samples and flushes them in bulk — the
// OS-intensive app (many context switches per unit of computation).
const SrcHRLog = `
int buf[16];
int n = 0;

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(1, 1000); return; }
    if (ev == 2 && arg == 1) {
        buf[n] = amulet_read_hr();
        n++;
        amulet_log_value(5, buf[n - 1]);
        if (n >= 16) {
            amulet_log_write(buf, 32);
            n = 0;
        }
    }
}
`

// SrcPedometer counts steps by threshold crossing on the 20 Hz vertical
// accelerometer axis and refreshes the display every five seconds.
const SrcPedometer = `
int steps = 0;
int above = 0;
int cool = 0;
char label[6] = "steps";

void handle_event(int ev, int arg) {
    if (ev == 0) {
        amulet_subscribe(0, 50);
        amulet_set_timer(5000);
        return;
    }
    if (ev == 2 && arg == 0) {
        int z = amulet_read_accel(2);
        if (cool > 0) { cool--; }
        if (z > 1180 && above == 0 && cool == 0) {
            above = 1;
            steps++;
            cool = 4;
        }
        if (z < 1020) { above = 0; }
        return;
    }
    if (ev == 1) {
        amulet_display_text(label, 5, 0);
        amulet_display_draw(0, 1, steps);
        amulet_set_timer(5000);
    }
}
`

// SrcRest tracks minutes of physical rest from 5 Hz activity counts.
const SrcRest = `
int counts = 0;
int samples = 0;
int restMin = 0;
int resting = 0;

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(0, 200); return; }
    if (ev == 2 && arg == 0) {
        int x = amulet_read_accel(0);
        int z = amulet_read_accel(2);
        int dev = z - 1000;
        if (dev < 0) { dev = 0 - dev; }
        if (x < 0) { x = 0 - x; }
        if (x + dev > 220) { counts++; }
        samples++;
        if (samples >= 300) {
            if (counts < 15) {
                restMin++;
                if (resting == 0) { resting = 1; amulet_log_value(6, 1); }
            } else if (resting == 1) {
                resting = 0;
                amulet_log_value(6, 0);
            }
            counts = 0;
            samples = 0;
        }
    }
}
`

// SrcSun accumulates minutes of sun exposure from 5 s light samples.
const SrcSun = `
int sunMin = 0;
int lux = 0;
int samples = 0;

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(3, 5000); return; }
    if (ev == 2 && arg == 3) {
        lux = lux + amulet_read_light();
        samples++;
        if (samples >= 12) {
            if (lux / 12 > 400) {
                sunMin++;
                amulet_log_value(8, sunMin);
            }
            lux = 0;
            samples = 0;
        }
    }
}
`

// SrcTemperature keeps min/max/average skin temperature on 10 s samples
// and alerts when the average leaves a healthy band.
const SrcTemperature = `
int tmin = 9999;
int tmax = -9999;
int acc = 0;
int n = 0;

void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(2, 10000); return; }
    if (ev == 2 && arg == 2) {
        int tc = amulet_read_temp();
        if (tc < tmin) { tmin = tc; }
        if (tc > tmax) { tmax = tc; }
        acc = acc + tc;
        n++;
        if (n >= 6) {
            int avg = acc / n;
            amulet_display_draw(0, 0, avg);
            if (avg > 380 || avg < 300) { amulet_log_value(9, avg); }
            acc = 0;
            n = 0;
        }
    }
}
`

// SrcSynthetic is the Table 1 micro-benchmark: event 10 runs arg iterations
// of the canonical checked memory operation (one read plus one write of an
// indexed array slot); event 11 runs arg bare API round-trips (amulet_yield,
// the cheapest gate); event 12 runs arg pointer-carrying API round-trips
// (amulet_ping, a zero-cost service, so the gate cost dominates).
const SrcSynthetic = `
int buf[64];

void mem_ops(int n) {
    int i;
    int j = 0;
    for (i = 0; i < n; i++) {
        buf[j] = buf[j] + 1;
        j++;
        if (j >= 64) { j = 0; }
    }
}

void yield_ops(int n) {
    int i;
    for (i = 0; i < n; i++) { amulet_yield(); }
}

void gate_ops(int n) {
    int i;
    for (i = 0; i < n; i++) { amulet_ping(buf); }
}

void handle_event(int ev, int arg) {
    if (ev == 10) { mem_ops(arg); return; }
    if (ev == 11) { yield_ops(arg); return; }
    if (ev == 12) { gate_ops(arg); return; }
}
`

// SrcActivity is the Figure 3 activity-detection benchmark. Event 10 runs
// Case 1 (windowed mean/variance); event 11 runs Case 2 (peak detection).
// Both are memory-access heavy with no API calls in the measured section.
const SrcActivity = `
int window[64];
int mean = 0;
int variance = 0;
int peaks = 0;

void fill(int seed) {
    int i;
    int v = seed;
    for (i = 0; i < 64; i++) {
        v = v * 31 + 7;
        int w = v % 997;
        if (w < 0) { w = 0 - w; }
        window[i] = w;
    }
}

void case1(void) {
    int i;
    int s = 0;
    for (i = 0; i < 64; i++) { s = s + window[i]; }
    mean = s >> 6;
    int var = 0;
    for (i = 0; i < 64; i++) {
        int d = window[i] - mean;
        var = var + ((d * d) >> 6);
    }
    variance = var;
}

void case2(void) {
    int i;
    int count = 0;
    for (i = 1; i < 63; i++) {
        if (window[i] > window[i - 1] && window[i] > window[i + 1] && window[i] > mean) {
            count++;
        }
    }
    peaks = count;
}

void handle_event(int ev, int arg) {
    if (ev == 10) { fill(arg); case1(); return; }
    if (ev == 11) { fill(arg); case2(); return; }
}
`

// SrcQuicksort is the Figure 3 quicksort benchmark in customary C:
// recursion and pointers, exactly what the paper's contribution newly
// permits on the platform.
const SrcQuicksort = `
int data[64];

void qsort_range(int *a, int lo, int hi) {
    if (lo >= hi) { return; }
    int p = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < p) { i++; }
        while (a[j] > p) { j--; }
        if (i <= j) {
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
    }
    qsort_range(a, lo, j);
    qsort_range(a, i, hi);
}

void fill(int seed) {
    int i;
    int v = seed;
    for (i = 0; i < 64; i++) {
        v = v * 75 + 74;
        int w = v % 1009;
        if (w < 0) { w = 0 - w; }
        data[i] = w;
    }
}

void handle_event(int ev, int arg) {
    if (ev == 10) {
        fill(arg);
        qsort_range(data, 0, 63);
    }
}
`

// SrcQuicksortRestricted is the Amulet C variant: no pointers, no
// recursion, so the partition stack is an explicit pair of index arrays —
// the porting burden the paper's contribution removes.
const SrcQuicksortRestricted = `
int data[64];
int stkLo[32];
int stkHi[32];

void fill(int seed) {
    int i;
    int v = seed;
    for (i = 0; i < 64; i++) {
        v = v * 75 + 74;
        int w = v % 1009;
        if (w < 0) { w = 0 - w; }
        data[i] = w;
    }
}

void qsort_iter(int lo0, int hi0) {
    int top = 0;
    stkLo[top] = lo0;
    stkHi[top] = hi0;
    top = 1;
    while (top > 0) {
        top--;
        int lo = stkLo[top];
        int hi = stkHi[top];
        if (lo >= hi) { continue; }
        int p = data[(lo + hi) / 2];
        int i = lo;
        int j = hi;
        while (i <= j) {
            while (data[i] < p) { i++; }
            while (data[j] > p) { j--; }
            if (i <= j) {
                int t = data[i];
                data[i] = data[j];
                data[j] = t;
                i++;
                j--;
            }
        }
        if (top < 31) { stkLo[top] = lo; stkHi[top] = j; top++; }
        if (top < 31) { stkLo[top] = i; stkHi[top] = hi; top++; }
    }
}

void handle_event(int ev, int arg) {
    if (ev == 10) {
        fill(arg);
        qsort_iter(0, 63);
    }
}
`
