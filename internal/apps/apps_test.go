package apps

import (
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
	"amuletiso/internal/kernel"
)

// TestAllAppsBuildUnderAllModes is the AFT phase-1 gate for the whole suite:
// every app must compile under every memory model (using its restricted
// variant where provided).
func TestAllAppsBuildUnderAllModes(t *testing.T) {
	all := append(Suite(), Benchmarks()...)
	for _, app := range all {
		for _, mode := range cc.Modes {
			if _, err := aft.Build([]aft.AppSource{app.AFT()}, mode); err != nil {
				t.Errorf("%s under %v: %v", app.Name, mode, err)
			}
		}
	}
}

// runApp boots a single-app kernel and runs it for a window.
func runApp(t *testing.T, app App, mode cc.Mode, ms uint64) *kernel.Kernel {
	t.Helper()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, mode)
	if err != nil {
		t.Fatalf("%s/%v: %v", app.Name, mode, err)
	}
	k := kernel.New(fw)
	k.RunUntil(ms)
	return k
}

func TestSuiteAppsRunCleanly(t *testing.T) {
	for _, app := range Suite() {
		for _, mode := range cc.Modes {
			k := runApp(t, app, mode, 5_000)
			st := k.Apps[0]
			if !st.Alive || st.Faults > 0 {
				t.Errorf("%s/%v: faults=%d records=%v", app.Name, mode, st.Faults, k.Faults)
				continue
			}
			if st.Dispatches == 0 {
				t.Errorf("%s/%v: app never dispatched", app.Name, mode)
			}
		}
	}
}

func TestClockKeepsTime(t *testing.T) {
	k := runApp(t, Suite()[1], cc.ModeMPU, 61_500) // clock
	// After 61 seconds the face must show 00:01.
	face := k.FW.Image.MustSym(abi.SymGlobal("clock", "face"))
	got := string([]byte{
		k.Bus.Peek8(face), k.Bus.Peek8(face + 1), k.Bus.Peek8(face + 2),
		k.Bus.Peek8(face + 3), k.Bus.Peek8(face + 4),
	})
	if got != "00:01" {
		t.Fatalf("clock face = %q, want 00:01", got)
	}
	if k.Display.Texts == 0 {
		t.Fatal("clock never drew")
	}
}

func TestPedometerCountsStepsWhileWalking(t *testing.T) {
	app, _ := ByName("pedometer")
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(fw)
	// Jump the virtual clock into the walking phase (5-10 min) by running
	// the rest phase cheaply first: events still fire, but steps only
	// accumulate once the accelerometer oscillates.
	k.RunUntil(6 * 60 * 1000)
	steps := k.Bus.Peek16(k.FW.Image.MustSym(abi.SymGlobal("pedometer", "steps")))
	if steps == 0 {
		t.Fatal("no steps counted during walking phase")
	}
	if k.Apps[0].Faults != 0 {
		t.Fatalf("pedometer faulted: %v", k.Faults)
	}
}

func TestHRAppTracksHeartRate(t *testing.T) {
	app, _ := ByName("hr")
	k := runApp(t, app, cc.ModeSoftwareOnly, 30_000)
	smooth := k.Bus.Peek16(k.FW.Image.MustSym(abi.SymGlobal("hr", "smooth")))
	if smooth < 40 || smooth > 200 {
		t.Fatalf("implausible smoothed HR %d", smooth)
	}
}

func TestHRLogFlushes(t *testing.T) {
	app, _ := ByName("hrlog")
	k := runApp(t, app, cc.ModeMPU, 17_000) // 16 samples + slack
	if len(k.Apps[0].Log) < 32 {
		t.Fatalf("log has %d bytes, want a 32-byte flush", len(k.Apps[0].Log))
	}
}

// TestQuicksortSortsUnderAllModes is the strongest end-to-end check: the
// full compile/link/kernel/dispatch pipeline must produce a correctly
// sorted array in every mode, including the iterative Amulet C variant.
func TestQuicksortSortsUnderAllModes(t *testing.T) {
	app := Quicksort()
	for _, mode := range cc.Modes {
		fw, err := aft.Build([]aft.AppSource{app.AFT()}, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		k := kernel.New(fw)
		k.RunUntil(1) // consume init
		k.Post(0, EvSort, 12345, 1)
		k.RunUntil(10)
		if k.Apps[0].Faults != 0 {
			t.Fatalf("[%v] quicksort faulted: %v", mode, k.Faults)
		}
		base := k.FW.Image.MustSym(abi.SymGlobal("quicksort", "data"))
		prev := int16(-32768)
		for i := uint16(0); i < 64; i++ {
			v := int16(k.Bus.Peek16(base + 2*i))
			if v < prev {
				t.Fatalf("[%v] data[%d]=%d < data[%d]=%d: not sorted", mode, i, v, i-1, prev)
			}
			prev = v
		}
	}
}

func TestActivityBenchmarkRuns(t *testing.T) {
	app := Activity()
	for _, mode := range cc.Modes {
		fw, err := aft.Build([]aft.AppSource{app.AFT()}, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		k := kernel.New(fw)
		k.RunUntil(1)
		k.Post(0, EvCase1, 7, 1)
		k.Post(0, EvCase2, 7, 2)
		k.RunUntil(10)
		if k.Apps[0].Faults != 0 {
			t.Fatalf("[%v] activity faulted: %v", mode, k.Faults)
		}
		mean := k.Bus.Peek16(k.FW.Image.MustSym(abi.SymGlobal("activity", "mean")))
		peaks := k.Bus.Peek16(k.FW.Image.MustSym(abi.SymGlobal("activity", "peaks")))
		if mean == 0 || peaks == 0 {
			t.Fatalf("[%v] mean=%d peaks=%d", mode, mean, peaks)
		}
	}
}

func TestSyntheticBenchmarkScalesLinearly(t *testing.T) {
	app := Synthetic()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(fw)
	k.RunUntil(1)
	measure := func(ev, n uint16) uint64 {
		k.Post(0, ev, n, 1)
		before := k.CPU.Cycles
		if !k.Step() {
			t.Fatal("no event")
		}
		return k.CPU.Cycles - before
	}
	c100 := measure(EvMemOps, 100)
	c200 := measure(EvMemOps, 200)
	perOp := float64(c200-c100) / 100
	if perOp < 5 || perOp > 200 {
		t.Fatalf("per-op cycles = %.1f, implausible", perOp)
	}
	y100 := measure(EvYieldOps, 100)
	y200 := measure(EvYieldOps, 200)
	perSwitch := float64(y200-y100) / 100
	if perSwitch < 20 || perSwitch > 400 {
		t.Fatalf("per-switch cycles = %.1f, implausible", perSwitch)
	}
}
