package kernel

import (
	"encoding/json"
	"strings"
	"testing"

	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
	"amuletiso/internal/obs"
)

// TestRecorderAttachesUnderTracing verifies the boot-time hatch: kernels
// booted with tracing armed carry a flight recorder, kernels booted without
// do not.
func TestRecorderAttachesUnderTracing(t *testing.T) {
	// AMULET_OBS_TRACE=1 (the CI race leg) arms tracing at init; this test
	// needs both states explicitly, so disarm first and restore after.
	defer obs.SetTracing(obs.TracingEnabled())
	obs.SetTracing(false)
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	if k.Recorder() != nil {
		t.Fatal("recorder attached with tracing off")
	}
	obs.SetTracing(true)
	defer obs.SetTracing(false)
	k = build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	if k.Recorder() == nil {
		t.Fatal("tracing armed but no recorder attached at boot")
	}
}

// TestTracedRunIsCycleIdentical is the zero-perturbation lock: the same
// workload with and without a recorder must retire the same instructions,
// burn the same cycles, and produce the same latency histogram.
func TestTracedRunIsCycleIdentical(t *testing.T) {
	run := func(traced bool) *Kernel {
		obs.SetTracing(traced)
		defer obs.SetTracing(false)
		k := build(t, cc.ModeMPU,
			aft.AppSource{Name: "counter", Source: counterApp},
			aft.AppSource{Name: "hr", Source: hrApp})
		k.RunUntil(3000)
		return k
	}
	plain, traced := run(false), run(true)
	if plain.CPU.Cycles != traced.CPU.Cycles || plain.CPU.Insns != traced.CPU.Insns {
		t.Fatalf("tracing perturbed the machine: cycles %d vs %d, insns %d vs %d",
			plain.CPU.Cycles, traced.CPU.Cycles, plain.CPU.Insns, traced.CPU.Insns)
	}
	if plain.Latency != traced.Latency {
		t.Fatalf("tracing perturbed the latency histogram:\n  plain:  %+v\n  traced: %+v",
			plain.Latency, traced.Latency)
	}
	if traced.Recorder().Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestRecorderCapturesKernelLife asserts the recorder sees every event
// family a normal run produces: posts, dispatch spans, syscall spans, and
// gate crossings.
func TestRecorderCapturesKernelLife(t *testing.T) {
	obs.SetTracing(true)
	defer obs.SetTracing(false)
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	k.RunUntil(500)
	kinds := map[obs.Kind]int{}
	for _, ev := range k.Recorder().Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []obs.Kind{
		obs.KindEventPost, obs.KindDispatch, obs.KindDispatchDone,
		obs.KindSyscall, obs.KindSyscallRet, obs.KindGateCross,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v events recorded (%v)", want, kinds)
		}
	}
	if kinds[obs.KindSyscall] != kinds[obs.KindSyscallRet] {
		t.Errorf("unbalanced syscall spans: %d entries, %d returns",
			kinds[obs.KindSyscall], kinds[obs.KindSyscallRet])
	}
}

// TestRecorderFaultAndRestart drives the restart policy and asserts the
// recorder's fault event carries the fault class and a restart event
// follows.
func TestRecorderFaultAndRestart(t *testing.T) {
	obs.SetTracing(true)
	defer obs.SetTracing(false)
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	k.Policy = RestartPolicy{MaxFaults: 3, BackoffMS: 100}
	k.RunUntil(50)
	k.InjectFault(0, "test fault")
	// Scan shortly after the restart fires: gate crossings are chatty enough
	// that a long tail of dispatches would wrap the fault out of the ring —
	// which is exactly why fleet fault dumps are taken at window end, not
	// replayed later.
	k.RunUntil(200)

	var fault, restart *obs.TraceEvent
	for _, ev := range k.Recorder().Events() {
		ev := ev
		switch ev.Kind {
		case obs.KindFault:
			if fault == nil {
				fault = &ev
			}
		case obs.KindRestart:
			restart = &ev
		}
	}
	if fault == nil {
		t.Fatal("no fault event recorded")
	}
	if FaultClass(fault.A) != FaultInjected {
		t.Fatalf("fault event class = %v, want injected", FaultClass(fault.A))
	}
	if restart == nil {
		t.Fatal("no restart event recorded after backoff")
	}
	k.RunUntil(1000)
	if !k.Apps[0].Alive {
		t.Fatal("app did not restart")
	}
}

// TestLatencyHistogram locks the semantics: every delivered event is one
// sample, prompt deliveries score near zero, and an event queued behind a
// same-millisecond handler scores that handler's backlog.
func TestLatencyHistogram(t *testing.T) {
	k := build(t, cc.ModeMPU,
		aft.AppSource{Name: "a", Source: counterApp},
		aft.AppSource{Name: "b", Source: counterApp})
	delivered := k.RunUntil(1000)
	if got := k.Latency.Count(); got != uint64(delivered) {
		t.Fatalf("latency samples = %d, delivered events = %d", got, delivered)
	}
	// Both apps arm timers at the same milliseconds: whichever event of each
	// due pair runs second waited through the first's whole handler, so the
	// histogram cannot be all-zero.
	if k.Latency.Max == 0 {
		t.Fatal("two same-ms apps produced no queueing latency at all")
	}
	if k.Latency.Sum == 0 {
		t.Fatal("latency sum is zero despite nonzero max")
	}
}

// TestChromeTraceExport runs a real workload under an unbounded recorder and
// checks the export is valid Chrome trace JSON with balanced dispatch spans.
func TestChromeTraceExport(t *testing.T) {
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	k.AttachRecorder(obs.NewRecorder(0))
	k.RunUntil(1000)

	var sb strings.Builder
	if err := obs.WriteChromeTrace(&sb, k.Recorder().Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	begins, ends := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("unbalanced spans: %d B, %d E", begins, ends)
	}
}

// TestLatencyDeterministicAcrossBatching locks the nowCycles bookkeeping: a
// RunBatch loop must produce the same latency histogram as one RunUntil.
func TestLatencyDeterministicAcrossBatching(t *testing.T) {
	mk := func() *Kernel {
		return build(t, cc.ModeMPU,
			aft.AppSource{Name: "a", Source: counterApp},
			aft.AppSource{Name: "hr", Source: hrApp})
	}
	whole := mk()
	whole.RunUntil(3000)

	batched := mk()
	for {
		if _, more := batched.RunBatch(3000, 3); !more {
			break
		}
	}
	if whole.Latency != batched.Latency {
		t.Fatalf("latency differs across delivery APIs:\n  RunUntil: %+v\n  RunBatch: %+v",
			whole.Latency, batched.Latency)
	}
}
