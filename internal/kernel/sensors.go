package kernel

import "math"

// Sensors is the deterministic synthetic sensor suite standing in for the
// Amulet wristband hardware (accelerometer, optical heart-rate sensor,
// thermistor, photodiode, battery gauge, pedometer hardware register).
//
// Signals are functions of virtual time with a seeded noise term, so every
// run of an experiment sees the identical waveform — essential for
// comparing isolation modes on equal workloads.
//
// The wearer model alternates activity phases: rest, walking, and brisk
// activity, on a fixed cadence. Walking drives the accelerometer at ~2 Hz
// steps and advances the step counter; heart rate follows activity with a
// lag.
type Sensors struct {
	seed uint32
}

// NewSensors returns a sensor suite with the given noise seed.
func NewSensors(seed uint32) *Sensors {
	if seed == 0 {
		seed = 1
	}
	return &Sensors{seed: seed}
}

// Seed returns the suite's noise seed — the value a checkpoint must carry so
// a resumed device reproduces the same waveforms. It is the normalized seed
// (NewSensors maps 0 to 1), so re-booting with it is idempotent.
func (s *Sensors) Seed() uint32 { return s.seed }

// noise returns a small deterministic pseudo-random value in [-n, n],
// keyed by time and stream so different sensors decorrelate.
func (s *Sensors) noise(t uint64, stream uint32, n int) int {
	x := uint32(t)*2654435761 + stream*40503 + s.seed
	x ^= x >> 13
	x *= 1103515245
	x ^= x >> 16
	if n == 0 {
		return 0
	}
	return int(x%uint32(2*n+1)) - n
}

// Activity phases.
const (
	PhaseRest = iota
	PhaseWalk
	PhaseBrisk
)

// phaseLen is the length of one activity phase in ms (5 minutes).
const phaseLen = 5 * 60 * 1000

// Phase returns the wearer's activity phase at time t.
func (s *Sensors) Phase(t uint64) int {
	switch (t / phaseLen) % 4 {
	case 0, 2:
		return PhaseRest
	case 1:
		return PhaseWalk
	default:
		return PhaseBrisk
	}
}

// Accel returns a milli-g sample for axis 0..2 (x, y, z).
func (s *Sensors) Accel(axis int, t uint64) int16 {
	// Gravity mostly on z; gait oscillation at ~2 Hz while moving.
	base := 0
	if axis == 2 {
		base = 1000
	}
	amp := 0
	switch s.Phase(t) {
	case PhaseWalk:
		amp = 260
	case PhaseBrisk:
		amp = 520
	}
	osc := 0
	if amp > 0 {
		phase := 2 * math.Pi * 2.0 * float64(t) / 1000.0 // 2 Hz
		osc = int(float64(amp) * math.Sin(phase+float64(axis)))
	}
	return int16(base + osc + s.noise(t, uint32(axis+1), 30))
}

// HR returns heart rate in bpm, following activity with slow drift.
func (s *Sensors) HR(t uint64) int16 {
	base := 62
	switch s.Phase(t) {
	case PhaseWalk:
		base = 88
	case PhaseBrisk:
		base = 118
	}
	drift := int(6 * math.Sin(2*math.Pi*float64(t)/600000.0))
	return int16(base + drift + s.noise(t, 9, 3))
}

// Temp returns skin temperature in deci-celsius.
func (s *Sensors) Temp(t uint64) int16 {
	return int16(331 + int(4*math.Sin(2*math.Pi*float64(t)/3600000.0)) + s.noise(t, 11, 1))
}

// Light returns ambient light in lux (daily cycle, clipped at night).
func (s *Sensors) Light(t uint64) int16 {
	day := math.Sin(2 * math.Pi * float64(t%86400000) / 86400000.0)
	if day < 0 {
		day = 0
	}
	return int16(int(800*day) + s.noise(t, 13, 20))
}

// Battery returns remaining battery percent, draining linearly over two
// weeks of virtual time.
func (s *Sensors) Battery(t uint64) int16 {
	const lifetimeMS = 14 * 24 * 3600 * 1000
	pct := 100 - int(t*100/lifetimeMS)
	if pct < 0 {
		pct = 0
	}
	return int16(pct)
}

// Steps returns the hardware step-counter register: cumulative steps at
// ~2 Hz during walking and ~2.6 Hz during brisk phases.
func (s *Sensors) Steps(t uint64) uint16 {
	const walkRate = 2    // steps per second while walking
	const briskTenth = 26 // steps per 10 seconds while brisk (2.6 Hz)
	perCycle := uint64(phaseLen/1000*walkRate) + uint64(phaseLen)*briskTenth/10000
	steps := t / (4 * phaseLen) * perCycle
	rem := t % (4 * phaseLen)
	if rem > phaseLen { // walking phase is the second in the cycle
		walk := rem - phaseLen
		if walk > phaseLen {
			walk = phaseLen
		}
		steps += walk / 1000 * walkRate
	}
	if rem > 3*phaseLen { // brisk phase is the fourth
		steps += (rem - 3*phaseLen) * briskTenth / 10000
	}
	return uint16(steps)
}

// Display models the wristband's small matrix display: it records the
// current text rows and counts draw operations, enough for applications to
// be observable in tests and examples.
type Display struct {
	Rows   map[int]string
	Clears int
	Draws  int
	Texts  int
}

// NewDisplay returns an empty display model.
func NewDisplay() *Display {
	return &Display{Rows: make(map[int]string)}
}

// Clear blanks the display.
func (d *Display) Clear() {
	d.Rows = make(map[int]string)
	d.Clears++
}

// Text places a string on a row.
func (d *Display) Text(row int, s string) {
	d.Rows[row] = s
	d.Texts++
}

// Draw records a glyph draw.
func (d *Display) Draw(x, y int, glyph uint16) {
	d.Draws++
}
