package kernel

import (
	"fmt"
	"sort"

	"amuletiso/internal/cpu"
	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
	"amuletiso/internal/obs"
)

// This file implements kernel checkpointing: Checkpoint captures everything a
// running device carries that is not reconstructible from its firmware, and
// BootTemplate.Resume boots an observably identical kernel from one. The
// contract is exact resumption — a checkpointed-and-resumed device delivers
// the same events, faults the same way, and reaches the same memory and
// accounting state as one that never stopped, byte for byte.
//
// Memory is stored template-relative: a full mem.SnapshotData image is diffed
// against the boot template page by page and only differing pages are kept.
// An idle device touches a few dozen of the 256 pages, so checkpoints stay
// small and a resumed COW device faults in exactly the pages the original
// had dirtied. Checkpoints must be taken between events (after RunUntil or a
// drained RunBatch window), when the CPU is parked and no delivery is in
// flight — the same boundary fleet workers already use for cancellation.
//
// The flight-recorder ring is deliberately not captured: tracing observes the
// simulation without affecting it, so a resumed device recreates identical
// behavior but not the pre-checkpoint trace. Callers that need complete rings
// (fault-trace hunts) should re-run the device from boot instead.

// EventCheckpoint is one queued Event in serializable form, including the
// scheduling tiebreaker and the latency anchor.
type EventCheckpoint struct {
	Due        uint64 `json:"due"`
	App        int    `json:"app"`
	Code       uint16 `json:"code"`
	Arg        uint16 `json:"arg,omitempty"`
	Period     uint64 `json:"period,omitempty"`
	Seq        uint64 `json:"seq"`
	PostCycles uint64 `json:"postCycles,omitempty"`
}

// AppCheckpoint is the serializable per-app state.
type AppCheckpoint struct {
	Alive      bool              `json:"alive"`
	Faults     int               `json:"faults,omitempty"`
	Dispatches uint64            `json:"dispatches,omitempty"`
	Syscalls   uint64            `json:"syscalls,omitempty"`
	Cycles     uint64            `json:"cycles,omitempty"`
	Subs       map[uint16]uint64 `json:"subs,omitempty"`
	Log        []byte            `json:"log,omitempty"`
	LogValues  []TaggedValue     `json:"logValues,omitempty"`
	RestartAt  uint64            `json:"restartAt,omitempty"`
}

// DisplayState is the serializable display model.
type DisplayState struct {
	Rows   map[int]string `json:"rows,omitempty"`
	Clears int            `json:"clears,omitempty"`
	Draws  int            `json:"draws,omitempty"`
	Texts  int            `json:"texts,omitempty"`
}

// PagePatch is one bus page whose content differs from the boot template.
type PagePatch struct {
	Page int    `json:"page"`
	Data []byte `json:"data"`
}

// Checkpoint is the complete serializable state of a kernel booted from a
// BootTemplate, relative to that template. It is plain data: JSON-encodable,
// with canonical ordering (sorted pages, sorted queue, sorted dirty-code),
// so two checkpoints of identical simulation states encode identically.
type Checkpoint struct {
	// Seed re-boots the device's sensor suite; the mutable RNG below carries
	// the LCG's current position separately.
	Seed           uint32        `json:"seed"`
	NowMS          uint64        `json:"nowMS"`
	Policy         RestartPolicy `json:"policy"`
	WatchdogBudget uint64        `json:"watchdogBudget"`

	Seq        uint64 `json:"seq"`
	TimerSeq   uint16 `json:"timerSeq,omitempty"`
	RNG        uint32 `json:"rng"`
	OSCycles   uint64 `json:"osCycles,omitempty"`
	NowCycles  uint64 `json:"nowCycles,omitempty"`
	DispatchC0 uint64 `json:"dispatchC0,omitempty"`

	Queue   []EventCheckpoint `json:"queue,omitempty"`
	Apps    []AppCheckpoint   `json:"apps"`
	Faults  []FaultRecord     `json:"faultLog,omitempty"`
	Latency obs.CycleHist     `json:"latency"`
	Display DisplayState      `json:"display"`

	CPU cpu.State `json:"cpu"`
	MPU mpu.State `json:"mpu"`

	Pages []PagePatch `json:"pages,omitempty"`
}

// Checkpoint captures k's state relative to this template. k must have been
// booted from t (or an identically built template) and must be between
// events — never call it from inside a service handler.
func (t *BootTemplate) Checkpoint(k *Kernel) *Checkpoint {
	ck := &Checkpoint{
		Seed:           k.Sensors.Seed(),
		NowMS:          k.NowMS,
		Policy:         k.Policy,
		WatchdogBudget: k.WatchdogBudget,
		Seq:            k.seq,
		TimerSeq:       k.timerSeq,
		RNG:            k.rng,
		OSCycles:       k.OSCycles,
		NowCycles:      k.nowCycles,
		DispatchC0:     k.dispatchC0,
		Latency:        k.Latency,
		CPU:            k.CPU.State(),
		MPU:            k.MPU.State(),
	}
	ck.Faults = append(ck.Faults, k.Faults...)

	// Canonical queue order is delivery order (Due, seq) — the heap array's
	// internal layout depends on push/pop history and is not meaningful.
	ck.Queue = make([]EventCheckpoint, 0, len(k.queue))
	for _, e := range k.queue {
		ck.Queue = append(ck.Queue, EventCheckpoint{
			Due: e.Due, App: e.App, Code: e.Code, Arg: e.Arg,
			Period: e.Period, Seq: e.seq, PostCycles: e.postCycles,
		})
	}
	sort.Slice(ck.Queue, func(i, j int) bool {
		if ck.Queue[i].Due != ck.Queue[j].Due {
			return ck.Queue[i].Due < ck.Queue[j].Due
		}
		return ck.Queue[i].Seq < ck.Queue[j].Seq
	})

	ck.Apps = make([]AppCheckpoint, len(k.Apps))
	for i, a := range k.Apps {
		ac := AppCheckpoint{
			Alive: a.Alive, Faults: a.Faults, Dispatches: a.Dispatches,
			Syscalls: a.Syscalls, Cycles: a.Cycles, RestartAt: a.restartAt,
		}
		if len(a.Subs) > 0 {
			ac.Subs = make(map[uint16]uint64, len(a.Subs))
			for s, p := range a.Subs {
				ac.Subs[s] = p
			}
		}
		ac.Log = append(ac.Log, a.Log...)
		ac.LogValues = append(ac.LogValues, a.LogValues...)
		ck.Apps[i] = ac
	}

	if len(k.Display.Rows) > 0 {
		ck.Display.Rows = make(map[int]string, len(k.Display.Rows))
		for r, s := range k.Display.Rows {
			ck.Display.Rows[r] = s
		}
	}
	ck.Display.Clears = k.Display.Clears
	ck.Display.Draws = k.Display.Draws
	ck.Display.Texts = k.Display.Texts

	// Template-relative memory: snapshot the live bus and keep only pages
	// that differ from the boot image. Device registers never back onto bus
	// pages (they are captured in CPU/MPU state above), so device-covered
	// pages always match the template and never produce a patch.
	var img mem.BusImage
	k.Bus.SnapshotData(&img)
	const pages = len(img) / mem.PageSize
	for p := 0; p < pages; p++ {
		lo, hi := p*mem.PageSize, (p+1)*mem.PageSize
		if string(img[lo:hi]) == string(t.img[lo:hi]) {
			continue
		}
		ck.Pages = append(ck.Pages, PagePatch{
			Page: p,
			Data: append([]byte(nil), img[lo:hi]...),
		})
	}
	return ck
}

// Resume boots a kernel from a checkpoint taken against this template,
// recycling COW pages through arena when one is supplied (nil allocates, as
// NewKernelArena). The resumed kernel is observably identical to the one the
// checkpoint was taken from: re-checkpointing it yields byte-identical JSON.
func (t *BootTemplate) Resume(ck *Checkpoint, arena *mem.PageArena) (*Kernel, error) {
	k := t.NewKernelArena(ck.Seed, arena)
	if len(ck.Apps) != len(k.Apps) {
		return nil, fmt.Errorf("kernel: checkpoint has %d apps, firmware has %d", len(ck.Apps), len(k.Apps))
	}

	// Memory first: LoadBytes runs the raw loader path (no device dispatch,
	// no access profiling) and trips the code watch for any patched text, so
	// a self-modified instruction stays routed to the live decoder. The CPU
	// restore below then replaces the accumulated dirty set with the
	// checkpoint's own — the authoritative one.
	for _, p := range ck.Pages {
		const pages = (1 << 16) / mem.PageSize
		if p.Page < 0 || p.Page >= pages || len(p.Data) != mem.PageSize {
			return nil, fmt.Errorf("kernel: malformed page patch (page %d, %d bytes)", p.Page, len(p.Data))
		}
		k.Bus.LoadBytes(uint16(p.Page*mem.PageSize), p.Data)
	}
	k.CPU.SetState(ck.CPU)
	k.MPU.SetState(ck.MPU)

	k.NowMS = ck.NowMS
	k.Policy = ck.Policy
	k.WatchdogBudget = ck.WatchdogBudget
	k.seq = ck.Seq
	k.timerSeq = ck.TimerSeq
	k.rng = ck.RNG
	k.OSCycles = ck.OSCycles
	k.nowCycles = ck.NowCycles
	k.dispatchC0 = ck.DispatchC0
	k.Latency = ck.Latency
	k.Faults = append([]FaultRecord(nil), ck.Faults...)

	// Replace the boot-posted EvInit queue wholesale. The checkpoint's queue
	// is sorted by (Due, Seq), and a (Due, seq)-sorted array already
	// satisfies the min-heap invariant, so it can back the heap directly.
	q := make(eventQueue, 0, len(ck.Queue))
	evs := append([]EventCheckpoint(nil), ck.Queue...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Due != evs[j].Due {
			return evs[i].Due < evs[j].Due
		}
		return evs[i].Seq < evs[j].Seq
	})
	for _, e := range evs {
		q = append(q, Event{
			Due: e.Due, App: e.App, Code: e.Code, Arg: e.Arg,
			Period: e.Period, seq: e.Seq, postCycles: e.PostCycles,
		})
	}
	k.queue = q

	for i, ac := range ck.Apps {
		app := k.Apps[i]
		app.Alive = ac.Alive
		app.Faults = ac.Faults
		app.Dispatches = ac.Dispatches
		app.Syscalls = ac.Syscalls
		app.Cycles = ac.Cycles
		app.restartAt = ac.RestartAt
		app.Subs = make(map[uint16]uint64, len(ac.Subs))
		for s, p := range ac.Subs {
			app.Subs[s] = p
		}
		app.Log = append([]byte(nil), ac.Log...)
		app.LogValues = append([]TaggedValue(nil), ac.LogValues...)
	}

	k.Display.Rows = make(map[int]string, len(ck.Display.Rows))
	for r, s := range ck.Display.Rows {
		k.Display.Rows[r] = s
	}
	k.Display.Clears = ck.Display.Clears
	k.Display.Draws = ck.Display.Draws
	k.Display.Texts = ck.Display.Texts
	return k, nil
}
