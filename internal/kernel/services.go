package kernel

import (
	"amuletiso/internal/abi"
	"amuletiso/internal/isa"
	"amuletiso/internal/obs"
)

// Service cycle costs: the modeled execution cost of each OS service body
// (the code the real AmuletOS would run inside the call). Charged on the
// simulated cycle counter in every mode, so isolation comparisons see the
// same service work and differ only in gate/check cost.
var svcCost = map[uint16]uint64{
	abi.SysGetTime:      30,
	abi.SysReadAccel:    60,
	abi.SysReadHR:       80,
	abi.SysReadTemp:     60,
	abi.SysReadLight:    60,
	abi.SysReadBattery:  40,
	abi.SysDisplayClear: 300,
	abi.SysDisplayText:  200, // + 4 per byte
	abi.SysDisplayDraw:  120,
	abi.SysLogWrite:     100, // + 2 per byte
	abi.SysLogValue:     80,
	abi.SysSetTimer:     50,
	abi.SysRand:         20,
	abi.SysSubscribe:    60,
	abi.SysGetSteps:     40,
	abi.SysYield:        0,
	abi.SysPing:         0,
}

// MaxLogArg caps one amulet_log_write transfer.
const MaxLogArg = 64

// service implements the syscall port: the gate has already switched to the
// OS stack (and, in MPU mode, the OS plan); arguments are still in R12-R15.
func (k *Kernel) service(id uint16) {
	app := k.Apps[k.curApp]
	app.Syscalls++
	mSyscalls.Inc()
	k.CPU.Cycles += svcCost[id]
	k.OSCycles += svcCost[id]
	if k.rec != nil {
		k.rec.Record(k.CPU.Cycles, obs.KindSyscall, int16(k.curApp), id, 0)
		defer func() {
			k.rec.Record(k.CPU.Cycles, obs.KindSyscallRet, int16(k.curApp), id, k.CPU.Regs[isa.R12])
		}()
	}

	arg := func(i int) uint16 { return k.CPU.Regs[isa.R12+isa.Reg(i)] }
	ret := func(v uint16) { k.CPU.Regs[isa.R12] = v }

	switch id {
	case abi.SysGetTime:
		ret(uint16(k.timeMS()))

	case abi.SysReadAccel:
		ret(uint16(k.Sensors.Accel(int(arg(0)), k.timeMS())))

	case abi.SysReadHR:
		ret(uint16(k.Sensors.HR(k.timeMS())))

	case abi.SysReadTemp:
		ret(uint16(k.Sensors.Temp(k.timeMS())))

	case abi.SysReadLight:
		ret(uint16(k.Sensors.Light(k.timeMS())))

	case abi.SysReadBattery:
		ret(uint16(k.Sensors.Battery(k.timeMS())))

	case abi.SysDisplayClear:
		k.Display.Clear()
		ret(0)

	case abi.SysDisplayText:
		ptr, n, row := arg(0), arg(1), arg(2)
		if n > MaxLogArg {
			n = MaxLogArg
		}
		text := make([]byte, n)
		for i := uint16(0); i < n; i++ {
			text[i] = k.Bus.Peek8(ptr + i)
		}
		k.Display.Text(int(row), string(text))
		k.CPU.Cycles += 4 * uint64(n)
		ret(0)

	case abi.SysDisplayDraw:
		k.Display.Draw(int(arg(0)), int(arg(1)), arg(2))
		ret(0)

	case abi.SysLogWrite:
		ptr, n := arg(0), arg(1)
		if n > MaxLogArg {
			n = MaxLogArg
		}
		for i := uint16(0); i < n; i++ {
			app.Log = append(app.Log, k.Bus.Peek8(ptr+i))
		}
		k.CPU.Cycles += 2 * uint64(n)
		ret(n)

	case abi.SysLogValue:
		app.LogValues = append(app.LogValues, TaggedValue{
			Tag: arg(0), Value: arg(1), AtMS: k.timeMS(),
		})
		ret(0)

	case abi.SysSetTimer:
		k.timerSeq++
		k.post(Event{
			Due: k.timeMS() + uint64(arg(0)),
			App: k.curApp, Code: abi.EvTimer, Arg: k.timerSeq,
		})
		ret(k.timerSeq)

	case abi.SysRand:
		ret(k.randWord())

	case abi.SysSubscribe:
		sensor, period := arg(0), uint64(arg(1))
		if period == 0 {
			period = 1000
		}
		if _, dup := app.Subs[sensor]; !dup {
			app.Subs[sensor] = period
			if sensor != abi.SensorButton {
				k.post(Event{
					Due: k.timeMS() + period,
					App: k.curApp, Code: abi.EvSensor, Arg: sensor, Period: period,
				})
			}
		}
		ret(0)

	case abi.SysGetSteps:
		ret(uint16(k.Sensors.Steps(k.timeMS())))

	case abi.SysYield:
		ret(0)

	case abi.SysPing:
		ret(0)

	default:
		k.recordFault(k.curApp, "unknown syscall", FaultOther)
		k.CPU.Halted = true
	}
}
