package kernel

import (
	"testing"

	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
)

// buildOne builds a single-app firmware for fault-classification tests.
func buildOne(t *testing.T, src string, mode cc.Mode) *Kernel {
	t.Helper()
	fw, err := aft.Build([]aft.AppSource{{Name: "victim", Source: src}}, mode)
	if err != nil {
		t.Fatal(err)
	}
	k := New(fw)
	k.Policy = RestartPolicy{} // first fault is final
	return k
}

// TestFaultClassAttribution drives one handler into each fault class and
// checks the kernel attributes it to the right isolation layer — the
// contract internal/torture's hosted campaigns assert at scale.
func TestFaultClassAttribution(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		mode  cc.Mode
		class FaultClass
	}{
		{
			// Store below the app's data segment: the compiler's
			// lower-bound compare jumps to the app fault stub.
			name: "compiler check",
			src: `
void handle_event(int ev, int arg) {
    char *p = 0;
    p = p + 0x1C00;
    *p = 1;
}`,
			mode:  cc.ModeMPU,
			class: FaultCheck,
		},
		{
			// Store above the app's data segment: the lower-bound compare
			// passes and the MPU's segment 3 traps in hardware.
			name: "mpu segment",
			src: `
void handle_event(int ev, int arg) {
    char *p = 0;
    p = p + 0xF000;
    *p = 1;
}`,
			mode:  cc.ModeMPU,
			class: FaultMPU,
		},
		{
			// Forged pointer argument: the gate's validation stub fires.
			name: "gate validation",
			src: `
void handle_event(int ev, int arg) {
    char *p = 0;
    p = p + 0x2000;
    amulet_log_write(p, 2);
}`,
			mode:  cc.ModeMPU,
			class: FaultGate,
		},
		{
			// Handler never yields: the watchdog budget kills it.
			name: "watchdog",
			src: `
int n;
void handle_event(int ev, int arg) {
    while (1) { n++; }
}`,
			mode:  cc.ModeSoftwareOnly,
			class: FaultWatchdog,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := buildOne(t, tc.src, tc.mode)
			k.WatchdogBudget = 500_000
			k.Step() // EvInit
			if len(k.Faults) != 1 {
				t.Fatalf("recorded %d faults, want 1", len(k.Faults))
			}
			if got := k.Faults[0].Class; got != tc.class {
				t.Fatalf("fault class = %v (%s), want %v", got, k.Faults[0].Reason, tc.class)
			}
		})
	}
}

// TestInjectedFaultClass pins the synthetic-fault attribution fleets use.
func TestInjectedFaultClass(t *testing.T) {
	k := buildOne(t, `void handle_event(int ev, int arg) {}`, cc.ModeNoIsolation)
	k.Step()
	k.InjectFault(0, "test: synthetic")
	if len(k.Faults) != 1 || k.Faults[0].Class != FaultInjected {
		t.Fatalf("faults = %+v, want one FaultInjected", k.Faults)
	}
}
