package kernel

import (
	"fmt"
	"testing"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// buildSynthetic compiles the synthetic benchmark app with or without
// fusion (a build-time property of the firmware's predecode cache).
func buildSynthetic(t *testing.T, fused bool) *aft.Firmware {
	t.Helper()
	defer isa.SetFusion(true)
	isa.SetFusion(fused)
	fw, err := aft.Build([]aft.AppSource{apps.Synthetic().AFT()}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// dispatchFingerprint boots a kernel, delivers EvInit plus one memory-ops
// event under the given watchdog budget, and fingerprints everything the
// engines must agree on: fault log, per-app accounting, CPU totals, MPU
// violation count and the gate counter.
func dispatchFingerprint(fw *aft.Firmware, budget uint64) string {
	k := NewSeeded(fw, 7)
	k.WatchdogBudget = budget
	k.Policy = RestartPolicy{} // first fault is final: keep outcomes simple
	k.Step()                   // EvInit
	k.Post(0, apps.EvMemOps, 40, 0)
	k.Step()
	fp := fmt.Sprintf("cycles=%d insns=%d gates=%d viol=%d dispatches=%d appcycles=%d alive=%v",
		k.CPU.Cycles, k.CPU.Insns, k.GateCount(), k.MPU.Violations(),
		k.Apps[0].Dispatches, k.Apps[0].Cycles, k.Apps[0].Alive)
	for _, f := range k.Faults {
		fp += fmt.Sprintf(";fault(%d,%d,%s,%v)", f.App, f.AtMS, f.Reason, f.Class)
	}
	return fp
}

// TestKernelEngineMatrix runs the same kernel workload under the
// {fusion, certificates} matrix and demands identical dispatch results —
// the kernel-level gate-boundary recertification property: the Go-side
// osPlan() Configure and the gates' own MPU register writes both advance the
// certificate generation, so certified execution across gate transitions
// must be invisible.
func TestKernelEngineMatrix(t *testing.T) {
	defer mem.SetExecCerts(true)
	fwFused := buildSynthetic(t, true)
	fwPlain := buildSynthetic(t, false)
	if fwFused.Text.FusedHeads() == 0 {
		t.Fatal("fused firmware has no superinstructions")
	}

	ref := ""
	for _, cfg := range []struct {
		name  string
		fw    *aft.Firmware
		certs bool
	}{
		{"fused+certified", fwFused, true},
		{"fused+perword", fwFused, false},
		{"unfused+certified", fwPlain, true},
		{"unfused+perword", fwPlain, false},
	} {
		mem.SetExecCerts(cfg.certs)
		fp := dispatchFingerprint(cfg.fw, 50_000_000)
		if ref == "" {
			ref = fp
			continue
		}
		if fp != ref {
			t.Errorf("%s diverged:\n  want %s\n  got  %s", cfg.name, ref, fp)
		}
	}
}

// TestKernelWatchdogBudgetSweep lands the watchdog at every point of a
// dispatch — including inside the gates' fused PUSH runs and between the
// halves of fused pairs — and demands the fused engine dies exactly where
// the unfused one does: same fault log, same cycle totals, same MPU state.
func TestKernelWatchdogBudgetSweep(t *testing.T) {
	defer mem.SetExecCerts(true)
	fwFused := buildSynthetic(t, true)
	fwPlain := buildSynthetic(t, false)
	budgets := []uint64{0, 1, 2, 3, 5, 7, 11, 19, 31, 53, 89, 144, 233, 377,
		610, 987, 1597, 2584, 4181, 6765, 10946, 17711, 28657}
	for _, b := range budgets {
		mem.SetExecCerts(true)
		fused := dispatchFingerprint(fwFused, b)
		plain := dispatchFingerprint(fwPlain, b)
		if fused != plain {
			t.Fatalf("budget %d: engines diverged\n  fused: %s\n  plain: %s", b, fused, plain)
		}
		// And the certificate must not change where the watchdog lands.
		mem.SetExecCerts(false)
		if perword := dispatchFingerprint(fwFused, b); perword != fused {
			t.Fatalf("budget %d: certificates changed the watchdog point\n  cert: %s\n  perword: %s",
				b, fused, perword)
		}
	}
}
