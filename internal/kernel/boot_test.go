package kernel

import (
	"testing"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/mem"
)

func buildTestFW(t *testing.T) *aft.Firmware {
	t.Helper()
	app := apps.Synthetic()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestBootTemplateEquivalence is the zero-cost-boot lockdown: a kernel
// cloned from a BootTemplate must be observably identical to one booted by
// NewSeeded — same memory bytes at boot, and the same accounting, bus
// statistics and memory bytes after running a workload.
func TestBootTemplateEquivalence(t *testing.T) {
	fw := buildTestFW(t)
	tmpl := NewBootTemplate(fw)
	if tmpl.Firmware() != fw {
		t.Fatal("template lost its firmware")
	}

	for _, seed := range []uint32{0, 1, 0xDEAD} {
		ka := NewSeeded(fw, seed)
		kb := tmpl.NewKernel(seed)

		memEqual := func(stage string) {
			t.Helper()
			for a := uint32(0); a < 1<<16; a++ {
				if x, y := ka.Bus.Peek8(uint16(a)), kb.Bus.Peek8(uint16(a)); x != y {
					t.Fatalf("seed %d %s: memory differs at 0x%04X: %02X vs %02X",
						seed, stage, a, x, y)
				}
			}
		}
		memEqual("at boot")
		if ka.CPU.Program() != kb.CPU.Program() {
			t.Fatalf("seed %d: kernels do not share the firmware predecode cache", seed)
		}

		na := ka.RunUntil(2_000)
		nb := kb.RunUntil(2_000)
		if na != nb {
			t.Fatalf("seed %d: events delivered %d vs %d", seed, na, nb)
		}
		da, sa, ca := ka.Totals()
		db, sb, cb := kb.Totals()
		if da != db || sa != sb || ca != cb {
			t.Fatalf("seed %d: totals diverged: (%d,%d,%d) vs (%d,%d,%d)",
				seed, da, sa, ca, db, sb, cb)
		}
		if ka.CPU.Cycles != kb.CPU.Cycles || ka.CPU.Insns != kb.CPU.Insns {
			t.Fatalf("seed %d: cpu state diverged", seed)
		}
		ra, wa, fa := ka.Bus.Stats()
		rb, wb, fb := kb.Bus.Stats()
		if ra != rb || wa != wb || fa != fb {
			t.Fatalf("seed %d: bus stats diverged: (%d,%d,%d) vs (%d,%d,%d)",
				seed, ra, wa, fa, rb, wb, fb)
		}
		memEqual("after workload")
	}
}

// TestBootTemplateIsolation checks template clones are independent devices:
// one clone's run must not perturb the template or a sibling clone.
func TestBootTemplateIsolation(t *testing.T) {
	fw := buildTestFW(t)
	tmpl := NewBootTemplate(fw)
	var before mem.BusImage
	before = tmpl.img

	k1 := tmpl.NewKernel(1)
	k1.RunUntil(2_000)
	if tmpl.img != before {
		t.Fatal("running a clone mutated the boot template")
	}
	k2 := tmpl.NewKernel(1)
	ref := NewSeeded(fw, 1)
	n2, nr := k2.RunUntil(1_000), ref.RunUntil(1_000)
	if n2 != nr || k2.CPU.Cycles != ref.CPU.Cycles {
		t.Fatal("a sibling clone after a dirty run diverged from a fresh boot")
	}
}

// TestRunBatchMatchesRunUntil asserts a RunBatch loop is observably
// identical to one RunUntil call at every batch size, including mid-window
// restarts and periodic re-arming (the fleet batching invariant).
func TestRunBatchMatchesRunUntil(t *testing.T) {
	fw := buildTestFW(t)
	const window = 3_000
	run := func(batch int) (int, uint64, uint64, uint64) {
		k := NewSeeded(fw, 7)
		k.PostPeriodic(0, apps.EvMemOps, 8, 50, 100)
		total := 0
		if batch == 0 {
			total = k.RunUntil(window)
		} else {
			for {
				n, more := k.RunBatch(window, batch)
				total += n
				if !more {
					break
				}
			}
		}
		d, s, c := k.Totals()
		if k.NowMS != window {
			t.Fatalf("batch=%d: NowMS=%d, want %d", batch, k.NowMS, window)
		}
		return total, d, s, c
	}
	n0, d0, s0, c0 := run(0)
	if n0 == 0 {
		t.Fatal("reference run delivered no events")
	}
	for _, batch := range []int{1, 2, 7, 1000} {
		n, d, s, c := run(batch)
		if n != n0 || d != d0 || s != s0 || c != c0 {
			t.Fatalf("batch=%d diverged: events %d/%d dispatches %d/%d syscalls %d/%d cycles %d/%d",
				batch, n, n0, d, d0, s, s0, c, c0)
		}
	}
	// max <= 0 means unbounded: one call drains the window (a zero batch
	// must never report more=true without delivering — the livelock trap).
	k := NewSeeded(fw, 7)
	k.PostPeriodic(0, apps.EvMemOps, 8, 50, 100)
	n, more := k.RunBatch(window, 0)
	if n != n0 || more {
		t.Fatalf("RunBatch(max=0) = (%d, %v), want (%d, false)", n, more, n0)
	}
}

// BenchmarkBoot prices the two boot paths side by side: the full NewSeeded
// sequence (erased-FRAM fill + firmware load) against a template clone.
func BenchmarkBoot(b *testing.B) {
	app := apps.Synthetic()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, cc.ModeMPU)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("NewSeeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewSeeded(fw, uint32(i+1))
		}
	})
	tmpl := NewBootTemplate(fw)
	b.Run("Template", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tmpl.NewKernel(uint32(i + 1))
		}
	})
}
