// Package kernel implements the AmuletOS analogue: an event-driven scheduler
// that drives application state machines on the simulated MCU, the OS API
// services behind the AFT-generated gates, deterministic sensor and display
// models, per-app accounting, and fault handling with a restart policy (the
// paper's §5 "more robust error handling" extension).
//
// Control flow: the kernel (Go side) owns the machine between events. To
// deliver an event it loads the current app's MPU plan and stack into the
// os.var.* block, points the CPU at the AFT's dispatch veneer and lets the
// simulated CPU run — the veneer performs the real (cycle-charged) stack and
// MPU switches, calls the app handler, and yields back. API calls made by
// the handler run through the AFT gates, which transfer to Go services via
// the syscall port.
package kernel

import (
	"fmt"

	"amuletiso/internal/abi"
	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
	"amuletiso/internal/obs"
)

// CyclesPerMS converts active CPU cycles to milliseconds (8 MHz MCLK, the
// MSP430FR5969's FRAM-friendly operating point).
const CyclesPerMS = 8000

// DispatchModelCycles is the modeled cost of the Go-side scheduler work
// (event queue pop, state lookup) that the real AmuletOS would execute as
// code. It is charged per dispatched event in every mode, so it cancels out
// of isolation-overhead comparisons.
const DispatchModelCycles = 40

// Event is one queued deliverable.
type Event struct {
	Due    uint64 // ms of virtual time
	App    int    // destination app index
	Code   uint16 // abi.Ev*
	Arg    uint16
	Period uint64 // ms; >0 reschedules after delivery
	seq    uint64
	// postCycles is the CPU cycle count when the event was enqueued — the
	// anchor for the post→dispatch latency histogram.
	postCycles uint64
}

// eventQueue is a typed binary min-heap of events ordered by (Due, seq) —
// the same invariants container/heap maintained, without the boxing.
type eventQueue []Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) less(i, j int) bool {
	if q[i].Due != q[j].Due {
		return q[i].Due < q[j].Due
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e Event) {
	h := append(*q, e)
	*q = h
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() Event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < n && h.less(l, small) {
			small = l
		}
		if r := 2*i + 2; r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// FaultClass attributes a fault to the isolation layer that raised it —
// the attribution adversarial harnesses (internal/torture) assert against.
type FaultClass int

// Fault classes.
const (
	FaultOther    FaultClass = iota // unclassified (unexpected stop reasons)
	FaultCheck                      // compiler-inserted check hit the app's fault stub
	FaultGate                       // OS gate rejected a pointer argument
	FaultMPU                        // hardware MPU segment violation
	FaultCPU                        // decode/execution fault (no protection involved)
	FaultWatchdog                   // event handler exceeded its cycle budget
	FaultInjected                   // synthetic fault from InjectFault
	FaultBrownout                   // power loss: supply fell below the brownout threshold
)

// String names the fault class.
func (c FaultClass) String() string {
	switch c {
	case FaultCheck:
		return "check"
	case FaultGate:
		return "gate"
	case FaultMPU:
		return "mpu"
	case FaultCPU:
		return "cpu"
	case FaultWatchdog:
		return "watchdog"
	case FaultInjected:
		return "injected"
	case FaultBrownout:
		return "brownout"
	}
	return "other"
}

// FaultRecord logs one isolation fault.
type FaultRecord struct {
	App    int
	AtMS   uint64
	Reason string
	Class  FaultClass
}

// RestartPolicy governs what happens to faulting apps.
type RestartPolicy struct {
	// MaxFaults kills the app permanently after this many faults (0 =
	// never restart: first fault kills).
	MaxFaults int
	// BackoffMS delays the restart.
	BackoffMS uint64
}

// TaggedValue is one amulet_log_value record.
type TaggedValue struct {
	Tag, Value uint16
	AtMS       uint64
}

// AppState is the kernel's view of one application.
type AppState struct {
	Info  *aft.AppInfo
	Alive bool

	Faults     int
	Dispatches uint64
	Syscalls   uint64
	Cycles     uint64 // active cycles consumed by this app's dispatches

	Subs map[uint16]uint64 // sensor -> period ms

	Log       []byte
	LogValues []TaggedValue

	restartAt uint64
}

// Kernel is the OS instance.
type Kernel struct {
	FW  *aft.Firmware
	CPU *cpu.CPU
	Bus *mem.Bus
	MPU *mpu.Unit

	Apps   []*AppState
	NowMS  uint64
	Policy RestartPolicy

	Faults  []FaultRecord
	Display *Display
	Sensors *Sensors

	// WatchdogBudget bounds the simulated cycles one event delivery may
	// consume before the kernel kills the handler. NewSeeded sets the
	// default; harnesses that hunt runaway handlers lower it.
	WatchdogBudget uint64

	// Latency is the post→dispatch latency histogram in simulated cycles: for
	// each delivered event, how long it sat deliverable (due and ready) before
	// its handler started. A pure function of the simulation — always on, and
	// safe to merge into deterministic fleet reports.
	Latency obs.CycleHist

	queue      eventQueue
	seq        uint64
	rng        uint32
	curApp     int
	yielded    bool
	faultMsg   string
	faultPort  uint16
	timerSeq   uint16
	OSCycles   uint64 // modeled scheduler cycles
	dispatchC0 uint64 // cycle count at dispatch start (for in-event time)
	nowCycles  uint64 // cycle count when NowMS last advanced
	rec        *obs.Recorder
}

// kernelPorts is the kernel's memory-mapped device (fault/yield ports).
type kernelPorts struct{ k *Kernel }

func (p *kernelPorts) DeviceName() string { return "os-ports" }

func (p *kernelPorts) ReadWord(addr uint16) uint16 { return 0 }

func (p *kernelPorts) WriteWord(addr uint16, v uint16) {
	switch addr {
	case abi.PortFault:
		p.k.faultMsg = fmt.Sprintf("isolation check fault (port value 0x%04X)", v)
		p.k.faultPort = v
		p.k.CPU.Halted = true
	case abi.PortYield:
		p.k.yielded = true
	}
}

// New boots a kernel around the firmware: machine assembly, image load, MPU
// plan, and an EvInit for every app at t=0. It uses the historical default
// noise seeds; fleets of decorrelated devices use NewSeeded.
func New(fw *aft.Firmware) *Kernel { return NewSeeded(fw, 0) }

// NewSeeded boots a kernel whose deterministic noise sources (the amulet_rand
// LCG and the sensor suite) derive from seed, so many simulated devices built
// from the same firmware see distinct but reproducible workloads. Seed 0
// selects the defaults New has always used (LCG 0x1234, sensor stream 1).
//
// The firmware is not mutated: the image bytes are cloned into this kernel's
// private bus, so one built Firmware may back any number of concurrently
// running kernels.
func NewSeeded(fw *aft.Firmware, seed uint32) *Kernel {
	bus := mem.NewBus()
	fw.Image.LoadInto(bus)
	return bootKernel(fw, seed, bus)
}

// BootTemplate captures the post-load memory state of a firmware once, so
// subsequent devices boot by cloning 64 KiB (one memmove) instead of
// re-running the erased-FRAM fill and the per-segment firmware load —
// mem.NewBus showed up at ~10% of fleet time. A template is immutable after
// NewBootTemplate and safe to share across goroutines; every kernel booted
// from it owns a private bus clone, exactly as NewSeeded kernels do.
type BootTemplate struct {
	fw  *aft.Firmware
	img mem.BusImage
	// ct is img prepared for copy-on-write sharing (the canonical page
	// table COW kernels start from); built once alongside the snapshot.
	ct *mem.Template
}

// NewBootTemplate loads the firmware into a scratch bus and snapshots the
// result. The snapshot is a pure function of the firmware image, so one
// template serves every seed.
func NewBootTemplate(fw *aft.Firmware) *BootTemplate {
	bus := mem.NewBus()
	fw.Image.LoadInto(bus)
	t := &BootTemplate{fw: fw}
	bus.SnapshotData(&t.img)
	t.ct = mem.NewTemplate(&t.img)
	return t
}

// Firmware returns the firmware the template was built from.
func (t *BootTemplate) Firmware() *aft.Firmware { return t.fw }

// NewKernel boots a kernel from the template — observably identical to
// NewSeeded(fw, seed). With COW enabled (the default) the device starts as
// a zero-page view over the template and pays one page copy per first write;
// with COW disabled it clones the full 64 KiB, the flat-memory oracle.
func (t *BootTemplate) NewKernel(seed uint32) *Kernel {
	return t.NewKernelArena(seed, nil)
}

// NewKernelArena boots like NewKernel but recycles COW pages through arena
// when one is supplied: write-faults pull retired pages from it before
// touching the allocator. A nil arena just allocates. The arena only matters
// under COW; the flat oracle ignores it.
func (t *BootTemplate) NewKernelArena(seed uint32, arena *mem.PageArena) *Kernel {
	var bus *mem.Bus
	if mem.COWEnabled() {
		bus = mem.NewBusCOW(t.ct, arena)
	} else {
		bus = mem.NewBusFrom(&t.img)
	}
	return bootKernel(t.fw, seed, bus)
}

// bootKernel assembles a kernel around a bus that already holds the loaded
// firmware image: machine devices, MPU, seeded noise sources, the shared
// predecode cache, and an EvInit for every app at t=0.
func bootKernel(fw *aft.Firmware, seed uint32, bus *mem.Bus) *Kernel {
	c := cpu.New(bus)
	u := mpu.New()
	bus.Map(mpu.RegLo, mpu.RegHi, u)
	bus.SetChecker(u)

	rng, stream := uint32(0x1234), uint32(1)
	if seed != 0 {
		rng = seed*2654435761 + 0x9E3779B9
		if rng == 0 {
			rng = 0x1234
		}
		stream = seed
	}
	k := &Kernel{
		FW:             fw,
		CPU:            c,
		Bus:            bus,
		MPU:            u,
		Policy:         RestartPolicy{MaxFaults: 3, BackoffMS: 1000},
		WatchdogBudget: 50_000_000,
		Display:        NewDisplay(),
		Sensors:        NewSensors(stream),
		rng:            rng,
	}
	bus.Map(abi.PortFault, abi.PortSvcExtra+1, &kernelPorts{k})
	// Attach the firmware's shared predecode cache after the image lands on
	// the bus (the load itself must not count as self-modification). The
	// cache survives watchdog kills and app restarts: restarts re-deliver
	// EvInit over the same loaded text, so there is nothing to rebuild, and
	// any code word an app managed to overwrite stays (correctly) routed to
	// the live decoder on this device only.
	c.UseProgram(fw.Text)
	c.OnSyscall = k.service
	if obs.TracingEnabled() {
		k.AttachRecorder(obs.NewRecorder(obs.DefaultRing))
	}

	for i, info := range fw.Apps {
		app := &AppState{Info: info, Alive: true, Subs: map[uint16]uint64{}}
		k.Apps = append(k.Apps, app)
		k.post(Event{Due: 0, App: i, Code: abi.EvInit})
	}
	return k
}

// post enqueues an event.
func (k *Kernel) post(e Event) {
	e.seq = k.seq
	e.postCycles = k.CPU.Cycles
	k.seq++
	k.queue.push(e)
	if k.rec != nil {
		k.rec.Record(k.CPU.Cycles, obs.KindEventPost, int16(e.App), e.Code, e.Arg)
	}
}

// Post schedules an event from the outside (tests, examples).
func (k *Kernel) Post(app int, code, arg uint16, inMS uint64) {
	k.post(Event{Due: k.NowMS + inMS, App: app, Code: code, Arg: arg})
}

// PostPeriodic schedules an event that re-arms every periodMS after its
// first delivery at inMS — the scenario-schedule entry point fleets use.
func (k *Kernel) PostPeriodic(app int, code, arg uint16, inMS, periodMS uint64) {
	k.post(Event{Due: k.NowMS + inMS, App: app, Code: code, Arg: arg, Period: periodMS})
}

// InjectFault records a synthetic fault against an app, running the same
// restart policy as a real isolation fault. Fault-injection harnesses use it
// to exercise recovery paths without crafting a memory-violating workload.
func (k *Kernel) InjectFault(app int, reason string) {
	if app < 0 || app >= len(k.Apps) || !k.Apps[app].Alive {
		return
	}
	k.recordFault(app, reason, FaultInjected)
}

// Totals sums the per-app accounting — the aggregation hook for multi-device
// runners that fold many kernels into one report.
func (k *Kernel) Totals() (dispatches, syscalls, cycles uint64) {
	for _, a := range k.Apps {
		dispatches += a.Dispatches
		syscalls += a.Syscalls
		cycles += a.Cycles
	}
	return dispatches, syscalls, cycles
}

// InjectButton delivers a button event to every app subscribed to buttons.
func (k *Kernel) InjectButton(button uint16) {
	for i, a := range k.Apps {
		if _, ok := a.Subs[abi.SensorButton]; ok {
			k.post(Event{Due: k.NowMS, App: i, Code: abi.EvButton, Arg: button})
		}
	}
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.queue.Len() }

// GateCount reads the context-switch bookkeeping counter maintained by the
// generated gate code.
func (k *Kernel) GateCount() uint16 {
	return k.Bus.Peek16(k.FW.Vars[abi.SymVarGateCount])
}

// timeMS returns virtual time including progress within the current event.
func (k *Kernel) timeMS() uint64 {
	return k.NowMS + (k.CPU.Cycles-k.dispatchC0)/CyclesPerMS
}

// osPlan forces the MPU back to the OS plan (Go-side, models the PUC path).
// Like the gates' own MPU register writes, Configure advances the MPU's
// certificate generation, so the bus's execute certificate is re-validated
// at every gate boundary and event delivery — certified fast-path fetches
// can never outlive the plan that certified them.
func (k *Kernel) osPlan() {
	if k.FW.Mode == cc.ModeMPU {
		k.MPU.Configure(k.FW.OSPlanB1, k.FW.OSPlanB2, k.FW.OSPlanSAM, true)
	} else {
		k.MPU.Configure(0, 0, 0x7777, false)
	}
}

// Step processes the next queued event; it reports false when the queue is
// empty. Event delivery runs real code on the simulated CPU.
func (k *Kernel) Step() bool { return k.stepUntil(^uint64(0)) }

// stepUntil delivers the next event due at or before deadline, skipping
// (and consuming) events addressed to dead apps. It reports false when no
// deliverable event remains within the deadline, leaving later events
// queued — RunUntil must never run the machine past its deadline.
func (k *Kernel) stepUntil(deadline uint64) bool {
	for k.queue.Len() > 0 && k.queue[0].Due <= deadline {
		e := k.queue.pop()
		if e.Due > k.NowMS {
			k.NowMS = e.Due
			k.nowCycles = k.CPU.Cycles
		}
		app := k.Apps[e.App]
		if !app.Alive {
			if app.restartAt != 0 && k.NowMS >= app.restartAt && app.Faults <= k.Policy.MaxFaults {
				app.Alive = true
				app.restartAt = 0
				k.observeLatency(&e)
				if k.rec != nil {
					k.rec.Record(k.CPU.Cycles, obs.KindRestart, int16(e.App), 0, uint16(app.Faults))
				}
				mRestarts.Inc()
				k.deliver(e.App, abi.EvInit, 0)
			}
			// A periodic schedule must survive the backoff window: re-arm
			// unless the app is dead for good (no pending restart), else the
			// schedule silently stops after the app's first fault.
			if e.Period > 0 && (app.Alive || app.restartAt != 0) {
				e.Due = k.NowMS + e.Period
				k.post(e)
			}
			continue
		}
		k.observeLatency(&e)
		k.deliver(e.App, e.Code, e.Arg)
		// Same re-arm rule as the dead-app branch above: a pending restart
		// keeps the schedule, even when this very delivery faulted.
		if e.Period > 0 && (app.Alive || app.restartAt != 0) {
			e.Due = k.NowMS + e.Period
			k.post(e)
		}
		return true
	}
	return false
}

// observeLatency records how long a popped event sat deliverable before its
// handler starts: from the later of its post and the moment virtual time
// reached its due millisecond (an event cannot be "waiting" before it is
// due), to now. Promptly delivered events score 0; events queued behind a
// long handler in the same millisecond score the backlog they sat through —
// the interrupt-latency measure isolation overhead is judged against.
func (k *Kernel) observeLatency(e *Event) {
	ready := e.postCycles
	if k.nowCycles > ready {
		ready = k.nowCycles
	}
	k.Latency.Observe(k.CPU.Cycles - ready)
}

// RunUntil processes queued events until virtual time reaches deadlineMS or
// the queue drains. It returns the number of events delivered.
func (k *Kernel) RunUntil(deadlineMS uint64) int {
	n := 0
	for k.stepUntil(deadlineMS) {
		n++
	}
	if k.NowMS < deadlineMS {
		k.NowMS = deadlineMS
		k.nowCycles = k.CPU.Cycles
	}
	return n
}

// RunBatch delivers at most max due events at or before deadlineMS and
// reports how many were delivered plus whether deliverable work may remain
// before the deadline. Virtual time advances exactly as RunUntil's would:
// only to delivered events' due times while work remains, and to the
// deadline itself once the window is drained (more == false) — so a RunBatch
// loop is observably identical to one RunUntil call, including watchdog and
// periodic-event ordering at batch boundaries. Fleet workers use it to slice
// a device's wear window into bounded batches between cancellation checks.
// max <= 0 means unbounded (one RunUntil-sized batch), so no batch size can
// livelock a drain loop.
func (k *Kernel) RunBatch(deadlineMS uint64, max int) (delivered int, more bool) {
	if max <= 0 {
		max = int(^uint(0) >> 1)
	}
	for delivered < max && k.stepUntil(deadlineMS) {
		delivered++
	}
	if delivered == max && k.queue.Len() > 0 && k.queue[0].Due <= deadlineMS {
		// Events remain in the window. They may all target dead apps (the
		// next batch then delivers nothing and closes the window), but the
		// clock must not jump to the deadline while they are queued.
		return delivered, true
	}
	if k.NowMS < deadlineMS {
		k.NowMS = deadlineMS
		k.nowCycles = k.CPU.Cycles
	}
	return delivered, false
}

// deliver runs one event through the dispatch veneer.
func (k *Kernel) deliver(appIdx int, code, arg uint16) {
	app := k.Apps[appIdx]
	info := app.Info
	k.curApp = appIdx
	k.yielded = false
	k.faultMsg = ""
	k.faultPort = 0

	// Scheduler model cost (same in every mode).
	k.CPU.Cycles += DispatchModelCycles
	k.OSCycles += DispatchModelCycles

	// Prime the os.var.* block for the gates and veneer.
	vars := k.FW.Vars
	k.Bus.Poke16(vars[abi.SymVarCurB1], info.PlanB1)
	k.Bus.Poke16(vars[abi.SymVarCurB2], info.PlanB2)
	k.Bus.Poke16(vars[abi.SymVarCurSAM], info.PlanSAM)
	k.Bus.Poke16(vars[abi.SymVarCurApp], info.ID)
	k.Bus.Poke16(vars[abi.SymVarAppSP], info.StackTop)
	k.Bus.Poke16(vars[abi.SymVarOSStackSP], k.FW.OSStackSP)

	// Machine state: OS stack, OS plan, veneer entry.
	k.osPlan()
	k.CPU.Regs[isa.SR] = 0
	k.CPU.SetSP(k.FW.OSStackSP)
	k.CPU.Regs[isa.R11] = info.Handler
	k.CPU.Regs[isa.R12] = code
	k.CPU.Regs[isa.R13] = arg
	k.CPU.SetPC(k.FW.Dispatch)
	k.CPU.Halted = false

	start := k.CPU.Cycles
	k.dispatchC0 = start
	app.Dispatches++
	mDispatches.Inc()
	if k.rec != nil {
		k.rec.Record(start, obs.KindDispatch, int16(appIdx), code, arg)
	}

	faultsBefore := len(k.Faults)
	reason, fault := k.CPU.Run(k.WatchdogBudget)
	app.Cycles += k.CPU.Cycles - start

	switch {
	case len(k.Faults) > faultsBefore:
		// A Go-side service already recorded this delivery's fault (e.g.
		// an unknown syscall) and halted the CPU; recording the stop again
		// would double-count it against the restart policy.
	case reason == cpu.StopCPUOff && k.yielded:
		// normal completion
	case reason == cpu.StopHalt && k.faultMsg != "":
		// The fault port's value attributes the check: an app's own fault
		// stub writes the app ID (a compiler-inserted check fired); the
		// shared gate-failure stub writes FaultCurrentApp.
		class := FaultCheck
		if k.faultPort == abi.FaultCurrentApp {
			class = FaultGate
		}
		k.recordFault(appIdx, k.faultMsg, class)
	case reason == cpu.StopFault:
		msg, class := "cpu fault", FaultCPU
		if fault != nil {
			msg = fault.Error()
			if fault.Violation != nil {
				class = FaultMPU
			}
		}
		k.recordFault(appIdx, msg, class)
	case reason == cpu.StopBudget:
		k.recordFault(appIdx, "watchdog: event handler exceeded cycle budget", FaultWatchdog)
	default:
		k.recordFault(appIdx, fmt.Sprintf("unexpected stop (%v)", reason), FaultOther)
	}
	// Clear latched MPU flags and restore the OS plan for the next event.
	k.MPU.WriteWord(mpu.RegCTL1, 0)
	k.osPlan()
	if k.rec != nil {
		k.rec.Record(k.CPU.Cycles, obs.KindDispatchDone, int16(appIdx), code, 0)
	}
}

// recordFault applies the restart policy to a faulting app.
func (k *Kernel) recordFault(appIdx int, reason string, class FaultClass) {
	app := k.Apps[appIdx]
	app.Faults++
	app.Alive = false
	k.Faults = append(k.Faults, FaultRecord{App: appIdx, AtMS: k.NowMS, Reason: reason, Class: class})
	mFaults.With(class.String()).Inc()
	if class == FaultWatchdog {
		mWatchdog.Inc()
	}
	if k.rec != nil {
		k.rec.Record(k.CPU.Cycles, obs.KindFault, int16(appIdx), uint16(class), 0)
	}
	if k.Policy.MaxFaults > 0 && app.Faults <= k.Policy.MaxFaults {
		app.restartAt = k.NowMS + k.Policy.BackoffMS
		// A queued wake-up guarantees the restart triggers even if no other
		// event targets this app.
		k.post(Event{Due: app.restartAt, App: appIdx, Code: abi.EvTick})
	}
}

// randWord steps the kernel's deterministic LCG.
func (k *Kernel) randWord() uint16 {
	k.rng = k.rng*1103515245 + 12345
	return uint16(k.rng >> 16)
}
