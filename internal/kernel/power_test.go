package kernel

import (
	"bytes"
	"testing"

	"amuletiso/internal/cc"
	"amuletiso/internal/mem"
)

// TestRebootImageFixedPoint is the crash-consistency core: booting a live
// kernel from a persistent cut and re-checkpointing it must reproduce the
// RebootImage bytes exactly — the pure state machine and the effectful
// reboot path may never disagree. Checked under COW and the flat oracle.
func TestRebootImageFixedPoint(t *testing.T) {
	for _, cow := range []bool{true, false} {
		mem.SetCOW(cow)
		t.Cleanup(func() { mem.SetCOW(true) })
		for _, mode := range []cc.Mode{cc.ModeMPU, cc.ModeNoIsolation} {
			fw, tmpl := checkpointFirmware(t, mode)
			for _, cutMS := range []uint64{500, 2500, 4400} {
				k := driveTo(tmpl, fw, nil, cutMS)
				cut := tmpl.PersistentCut(tmpl.Checkpoint(k), cutMS)
				restart := cutMS + 700

				img := tmpl.RebootImage(cut, restart)
				k2, err := tmpl.RebootFromCut(cut, restart, nil)
				if err != nil {
					t.Fatalf("[%v cow=%v cut=%d] reboot: %v", mode, cow, cutMS, err)
				}
				got := ckJSON(t, tmpl.Checkpoint(k2))
				want := ckJSON(t, img)
				if !bytes.Equal(got, want) {
					t.Fatalf("[%v cow=%v cut=%d] rebooted checkpoint diverges from RebootImage:\nwant %s\ngot  %s",
						mode, cow, cutMS, want, got)
				}

				// The rebooted device must actually run: re-queued EvInit
				// events deliver to every policy-alive app.
				alive := 0
				for _, a := range img.Apps {
					if a.Alive {
						alive++
					}
				}
				if n := k2.RunUntil(restart); alive > 0 && n == 0 {
					t.Fatalf("[%v cow=%v cut=%d] rebooted kernel delivered no events to %d alive apps",
						mode, cow, cutMS, alive)
				}
			}
		}
	}
}

// TestPersistentCutKeepsOnlyFRAM: every page in a cut must classify as
// persistent, volatile machine state must be gone, and the brownout fault
// must be attributed to the power layer.
func TestPersistentCutKeepsOnlyFRAM(t *testing.T) {
	fw, tmpl := checkpointFirmware(t, cc.ModeMPU)
	k := driveTo(tmpl, fw, nil, 3000)
	ck := tmpl.Checkpoint(k)
	cut := tmpl.PersistentCut(ck, 3000)

	for _, p := range cut.Pages {
		if !mem.PagePersistent(p.Page) {
			t.Errorf("cut carries volatile page %d (0x%04X)", p.Page, p.Page*mem.PageSize)
		}
	}
	if len(cut.Queue) != 0 {
		t.Errorf("cut carries %d queued events; the queue is SRAM-resident", len(cut.Queue))
	}
	if cut.RNG != 0 {
		t.Errorf("cut carries a live RNG state %#x; the LCG lives in SRAM", cut.RNG)
	}
	for i, a := range cut.Apps {
		if len(a.Subs) != 0 {
			t.Errorf("app %d keeps %d sensor subscriptions across power loss", i, len(a.Subs))
		}
	}
	if cut.MPU.SAM != 0x7777 || cut.MPU.CTL0 != 0 {
		t.Errorf("MPU did not come back in reset state: %+v", cut.MPU)
	}
	if cut.MPU.Cap != ck.MPU.Cap {
		t.Errorf("MPU capability (a hardware trait) changed across power loss")
	}
	// OS accounting survives in FRAM.
	if cut.CPU.Cycles != ck.CPU.Cycles || cut.CPU.Insns != ck.CPU.Insns {
		t.Error("cycle odometers did not survive")
	}
	last := cut.Faults[len(cut.Faults)-1]
	if last.Class != FaultBrownout || last.App != -1 || last.AtMS != 3000 {
		t.Errorf("brownout fault record = %+v", last)
	}
	if FaultBrownout.String() != "brownout" {
		t.Errorf("FaultBrownout renders as %q", FaultBrownout)
	}
}

// TestPersistentCutIdempotent: projecting an already-projected cut must
// change nothing but append another brownout record — the property
// RebootImage relies on.
func TestPersistentCutIdempotent(t *testing.T) {
	fw, tmpl := checkpointFirmware(t, cc.ModeMPU)
	k := driveTo(tmpl, fw, nil, 2500)
	cut := tmpl.PersistentCut(tmpl.Checkpoint(k), 2500)
	again := tmpl.PersistentCut(cut, 2500)
	again.Faults = again.Faults[:len(again.Faults)-1]
	if !bytes.Equal(ckJSON(t, cut), ckJSON(t, again)) {
		t.Fatal("PersistentCut is not idempotent on its own output")
	}
}
