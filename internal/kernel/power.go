package kernel

import (
	"amuletiso/internal/abi"
	"amuletiso/internal/cpu"
	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
)

// This file models what power loss does to a checkpointed device. On the
// MSP430FR5969 the register file, SRAM, peripheral registers (MPU plan,
// timers, the MPY32 unit), and anything in flight are gone the instant the
// supply dips below the brownout threshold; information FRAM, main FRAM, and
// the vector table are ferroelectric and retain their last committed write.
// PersistentCut projects a Checkpoint onto exactly that surviving surface,
// and RebootImage extends a cut into the checkpoint of the device as it looks
// the moment the OS boot path finishes re-initializing volatile state — so a
// brownout/reboot is two pure, inspectable transforms on plain data, and the
// crash-consistency oracle can byte-compare either stage against a live
// rebooted kernel.
//
// Both transforms are pure functions: they never touch metrics or the live
// simulation. RebootFromCut is the effectful composition fleets use.

// brownoutReason is the fault-log entry text for a power-loss fault.
const brownoutReason = "brownout: supply fell below threshold"

// bootRNG derives the amulet_rand LCG's boot position from the device seed,
// exactly as bootKernel does — the LCG state lives in SRAM and is re-seeded
// by the OS on every boot.
func bootRNG(seed uint32) uint32 {
	if seed == 0 {
		return 0x1234
	}
	rng := seed*2654435761 + 0x9E3779B9
	if rng == 0 {
		rng = 0x1234
	}
	return rng
}

// PersistentCut returns the FRAM-resident remainder of a checkpoint after
// power is lost at brownoutMS: volatile state (CPU registers, pending IRQs,
// SRAM pages, peripheral/MPU registers, the event queue, sensor
// subscriptions, the display) is dropped, while FRAM state (persistent
// memory pages, per-app accounting and logs, the fault log, the latency
// histogram, the OS cycle counters) survives. A brownout FaultRecord with
// App -1 is appended to the fault log. The input is not mutated.
//
// Apps that had exhausted the restart policy stay dead across the reboot;
// everything else comes back — the OS re-inits any app whose fault count is
// still within policy.
func (t *BootTemplate) PersistentCut(ck *Checkpoint, brownoutMS uint64) *Checkpoint {
	cut := &Checkpoint{
		Seed:           ck.Seed,
		NowMS:          brownoutMS,
		Policy:         ck.Policy,
		WatchdogBudget: ck.WatchdogBudget,
		Seq:            ck.Seq,
		OSCycles:       ck.OSCycles,
		Latency:        ck.Latency,
		CPU: cpu.State{
			// Cycle and instruction odometers are OS-maintained FRAM
			// counters; everything else in the CPU is volatile.
			Cycles: ck.CPU.Cycles,
			Insns:  ck.CPU.Insns,
		},
		// The MPU comes back in reset state: the capability is a hardware
		// trait and survives, the plan registers and latched flags do not.
		MPU: mpu.State{Cap: ck.MPU.Cap, SAM: 0x7777},
	}
	// Self-modified text survives only where the write landed in FRAM.
	for _, a := range ck.CPU.DirtyCode {
		if mem.PagePersistent(int(a) / mem.PageSize) {
			cut.CPU.DirtyCode = append(cut.CPU.DirtyCode, a)
		}
	}
	for _, p := range ck.Pages {
		if !mem.PagePersistent(p.Page) {
			continue
		}
		cut.Pages = append(cut.Pages, PagePatch{
			Page: p.Page,
			Data: append([]byte(nil), p.Data...),
		})
	}
	cut.Apps = make([]AppCheckpoint, len(ck.Apps))
	for i, ac := range ck.Apps {
		na := AppCheckpoint{
			Alive:      ac.Faults <= ck.Policy.MaxFaults,
			Faults:     ac.Faults,
			Dispatches: ac.Dispatches,
			Syscalls:   ac.Syscalls,
			Cycles:     ac.Cycles,
		}
		na.Log = append(na.Log, ac.Log...)
		na.LogValues = append(na.LogValues, ac.LogValues...)
		cut.Apps[i] = na
	}
	cut.Faults = append(cut.Faults, ck.Faults...)
	cut.Faults = append(cut.Faults, FaultRecord{
		App: -1, AtMS: brownoutMS, Reason: brownoutReason, Class: FaultBrownout,
	})
	return cut
}

// RebootImage extends a persistent cut into the checkpoint of the device as
// the OS boot path leaves it at restartMS: the boot RNG is re-seeded, the
// time base is re-anchored at the surviving cycle odometer, and an EvInit is
// queued for every app the restart policy still allows — dead apps stay
// dead. The result is directly Resumable, and re-checkpointing the resumed
// kernel yields these bytes back. The input is not mutated.
func (t *BootTemplate) RebootImage(cut *Checkpoint, restartMS uint64) *Checkpoint {
	img := t.PersistentCut(cut, cut.NowMS) // idempotent projection: deep-copies, keeps the fault log as-is
	// PersistentCut appended a second brownout record to its copy; drop it —
	// cut already carries the brownout fault.
	img.Faults = img.Faults[:len(img.Faults)-1]

	img.NowMS = restartMS
	img.RNG = bootRNG(cut.Seed)
	img.NowCycles = cut.CPU.Cycles
	img.DispatchC0 = cut.CPU.Cycles
	// Allocated even when every app is dead, matching Checkpoint's
	// always-non-nil queue representation so the two stay byte-comparable.
	img.Queue = make([]EventCheckpoint, 0, len(img.Apps))
	for i := range img.Apps {
		if !img.Apps[i].Alive {
			continue
		}
		img.Queue = append(img.Queue, EventCheckpoint{
			Due: restartMS, App: i, Code: abi.EvInit,
			Seq: img.Seq, PostCycles: cut.CPU.Cycles,
		})
		img.Seq++
	}
	return img
}

// RebootFromCut boots a live kernel from a persistent cut at restartMS — the
// effectful composition Resume(RebootImage(cut, restartMS)). COW pages
// recycle through arena when one is supplied, as in NewKernelArena.
func (t *BootTemplate) RebootFromCut(cut *Checkpoint, restartMS uint64, arena *mem.PageArena) (*Kernel, error) {
	return t.Resume(t.RebootImage(cut, restartMS), arena)
}
