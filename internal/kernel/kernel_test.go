package kernel

import (
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
)

const counterApp = `
int count = 0;
void handle_event(int ev, int arg) {
    if (ev == 0) {                 // init
        amulet_set_timer(100);
        return;
    }
    if (ev == 1) {                 // timer
        count++;
        amulet_log_value(7, count);
        amulet_set_timer(100);
    }
}
`

const hrApp = `
int last = 0;
void handle_event(int ev, int arg) {
    if (ev == 0) {
        amulet_subscribe(1, 250);  // HR sensor every 250 ms
        return;
    }
    if (ev == 2 && arg == 1) {
        last = amulet_read_hr();
        amulet_log_value(2, last);
    }
}
`

// victimApp holds a canary that attack tests try to smash.
const victimApp = `
int canary = 0x600D;
void handle_event(int ev, int arg) {
    if (canary != 0x600D) { amulet_log_value(9, 1); }
}
`

// evilApp (full dialect): on event 3, writes 0x0BAD through a forged
// pointer; arg carries the target address.
const evilApp = `
void handle_event(int ev, int arg) {
    if (ev == 3) {
        int *p = 0;
        uint a = arg;
        p = p + (a >> 1);
        *p = 0x0BAD;
    }
}
`

// evilRestricted: the Amulet C variant forges an out-of-bounds array index
// instead (arg = element index relative to buf).
const evilRestricted = `
int buf[2];
void handle_event(int ev, int arg) {
    if (ev == 3) {
        int i = arg;
        buf[i] = 0x0BAD;
    }
}
`

func build(t *testing.T, mode cc.Mode, apps ...aft.AppSource) *Kernel {
	t.Helper()
	fw, err := aft.Build(apps, mode)
	if err != nil {
		t.Fatalf("[%v] build: %v", mode, err)
	}
	return New(fw)
}

func TestTimerDrivenApp(t *testing.T) {
	for _, mode := range cc.Modes {
		k := build(t, mode, aft.AppSource{Name: "counter", Source: counterApp})
		k.RunUntil(1050)
		app := k.Apps[0]
		if !app.Alive {
			t.Fatalf("[%v] app died: %+v", mode, k.Faults)
		}
		// init + 10 timer events by t=1050 (timers at 100,200,...,1000).
		if len(app.LogValues) != 10 {
			t.Fatalf("[%v] %d log values, want 10", mode, len(app.LogValues))
		}
		last := app.LogValues[len(app.LogValues)-1]
		if last.Tag != 7 || last.Value != 10 {
			t.Fatalf("[%v] last log = %+v", mode, last)
		}
		if app.Dispatches != 11 {
			t.Errorf("[%v] dispatches = %d, want 11", mode, app.Dispatches)
		}
		if k.GateCount() == 0 {
			t.Errorf("[%v] gate counter did not move", mode)
		}
	}
}

func TestSensorSubscription(t *testing.T) {
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "hr", Source: hrApp})
	k.RunUntil(2000)
	app := k.Apps[0]
	if !app.Alive {
		t.Fatalf("app died: %+v", k.Faults)
	}
	if len(app.LogValues) < 7 {
		t.Fatalf("only %d HR samples", len(app.LogValues))
	}
	for _, v := range app.LogValues {
		if v.Value < 40 || v.Value > 200 {
			t.Fatalf("implausible HR %d", v.Value)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		k := build(t, cc.ModeMPU,
			aft.AppSource{Name: "counter", Source: counterApp},
			aft.AppSource{Name: "hr", Source: hrApp})
		k.RunUntil(3000)
		return k.CPU.Cycles, k.Apps[0].Cycles + k.Apps[1].Cycles
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 || a1 != a2 {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", c1, a1, c2, a2)
	}
}

// attack launches the forged-write scenario under one mode and reports
// whether the canary survived and whether the evil app faulted.
func attack(t *testing.T, mode cc.Mode) (canaryIntact, evilFaulted bool) {
	t.Helper()
	evil := aft.AppSource{Name: "evil", Source: evilApp, RestrictedSource: evilRestricted}
	victim := aft.AppSource{Name: "victim", Source: victimApp}
	k := build(t, mode, evil, victim) // victim above evil in memory
	canaryAddr := k.FW.Image.MustSym(abi.SymGlobal("victim", "canary"))

	arg := canaryAddr
	if mode == cc.ModeFeatureLimited {
		bufAddr := k.FW.Image.MustSym(abi.SymGlobal("evil", "buf"))
		arg = (canaryAddr - bufAddr) / 2
	}
	k.Post(0, 3, arg, 10)
	k.RunUntil(100)
	return k.Bus.Peek16(canaryAddr) == 0x600D, k.Apps[0].Faults > 0
}

func TestCrossAppWriteBlocked(t *testing.T) {
	for _, mode := range []cc.Mode{cc.ModeMPU, cc.ModeSoftwareOnly, cc.ModeFeatureLimited} {
		intact, faulted := attack(t, mode)
		if !intact {
			t.Errorf("[%v] canary smashed", mode)
		}
		if !faulted {
			t.Errorf("[%v] evil app not faulted", mode)
		}
	}
}

func TestNoIsolationAllowsCorruption(t *testing.T) {
	// The baseline's whole point: without isolation the write lands.
	intact, faulted := attack(t, cc.ModeNoIsolation)
	if intact {
		t.Error("canary unexpectedly survived under NoIsolation")
	}
	if faulted {
		t.Error("NoIsolation faulted the app")
	}
}

func TestOSDataProtectedFromApps(t *testing.T) {
	// Writing an OS variable (below the app) must be blocked by the
	// compiler's lower-bound check in MPU mode.
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "evil", Source: evilApp})
	target := k.FW.Vars[abi.SymVarGateCount]
	before := k.Bus.Peek16(target)
	k.Post(0, 3, target, 10)
	k.RunUntil(100)
	if k.Bus.Peek16(target) == 0x0BAD {
		t.Fatal("OS data overwritten")
	}
	if k.Apps[0].Faults == 0 {
		t.Fatal("no fault recorded")
	}
	_ = before
}

func TestStackOverflowCaughtByMPU(t *testing.T) {
	overflow := `
int deep(int n) {
    int pad[16];
    pad[0] = n;
    return deep(n + 1) + pad[0];
}
void handle_event(int ev, int arg) {
    if (ev == 3) { deep(0); }
}
`
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "boom", Source: overflow})
	k.Post(0, 3, 0, 10)
	k.RunUntil(100)
	if k.Apps[0].Faults == 0 {
		t.Fatal("stack overflow not caught")
	}
	// The app code segment (execute-only) must be unharmed: the MPU blocks
	// before the write lands.
	if len(k.Faults) == 0 {
		t.Fatal("no fault record")
	}
}

func TestRestartPolicy(t *testing.T) {
	k := build(t, cc.ModeMPU,
		aft.AppSource{Name: "evil", Source: evilApp},
		aft.AppSource{Name: "victim", Source: victimApp})
	k.Policy = RestartPolicy{MaxFaults: 2, BackoffMS: 500}
	canary := k.FW.Image.MustSym(abi.SymGlobal("victim", "canary"))

	k.Post(0, 3, canary, 10) // fault #1
	k.RunUntil(100)
	if k.Apps[0].Alive {
		t.Fatal("app alive right after fault")
	}
	k.RunUntil(700) // past backoff: restart wake-up delivers EvInit
	if !k.Apps[0].Alive {
		t.Fatal("app not restarted after backoff")
	}
	k.Post(0, 3, canary, 10) // fault #2 (at limit)
	k.RunUntil(800)
	k.RunUntil(2000)
	k.Post(0, 3, canary, 10) // would be fault #3 — app must stay dead
	k.RunUntil(3000)
	if k.Apps[0].Faults > k.Policy.MaxFaults+1 {
		t.Fatalf("app kept faulting: %d", k.Apps[0].Faults)
	}
}

// buildSeeded mirrors build with an explicit noise seed.
func buildSeeded(t *testing.T, mode cc.Mode, seed uint32, apps ...aft.AppSource) *Kernel {
	t.Helper()
	fw, err := aft.Build(apps, mode)
	if err != nil {
		t.Fatalf("[%v] build: %v", mode, err)
	}
	return NewSeeded(fw, seed)
}

func TestSeededKernelsDeterministicAndDecorrelated(t *testing.T) {
	hr := aft.AppSource{Name: "hr", Source: hrApp}
	run := func(seed uint32) []TaggedValue {
		k := buildSeeded(t, cc.ModeMPU, seed, hr)
		k.RunUntil(2000)
		if !k.Apps[0].Alive {
			t.Fatalf("seed %d: app died: %+v", seed, k.Faults)
		}
		return k.Apps[0].LogValues
	}
	a1, a2, b := run(7), run(7), run(8)
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different sample counts: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at sample %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	differs := false
	for i := range a1 {
		if i < len(b) && a1[i].Value != b[i].Value {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("different seeds produced identical HR streams")
	}
	// Seed 0 must preserve New's historical defaults.
	k0 := buildSeeded(t, cc.ModeMPU, 0, hr)
	kd := build(t, cc.ModeMPU, hr)
	k0.RunUntil(2000)
	kd.RunUntil(2000)
	if k0.CPU.Cycles != kd.CPU.Cycles {
		t.Error("NewSeeded(fw, 0) differs from New(fw)")
	}
}

func TestInjectFaultRunsRestartPolicy(t *testing.T) {
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	k.Policy = RestartPolicy{MaxFaults: 1, BackoffMS: 300}
	k.RunUntil(50)
	k.InjectFault(0, "test: synthetic")
	if k.Apps[0].Alive {
		t.Fatal("app alive right after injected fault")
	}
	if len(k.Faults) != 1 || k.Faults[0].Reason != "test: synthetic" {
		t.Fatalf("fault records = %+v", k.Faults)
	}
	// Dead until the backoff elapses, restarted after.
	k.RunUntil(340)
	if k.Apps[0].Alive {
		t.Fatal("app restarted before backoff elapsed")
	}
	k.RunUntil(400)
	if !k.Apps[0].Alive {
		t.Fatal("app not restarted after backoff")
	}
	// Second fault exceeds MaxFaults: dead for good, and further injections
	// are no-ops.
	k.InjectFault(0, "test: synthetic")
	k.RunUntil(2000)
	if k.Apps[0].Alive {
		t.Fatal("app restarted past MaxFaults")
	}
	k.InjectFault(0, "test: on a dead app")
	if len(k.Faults) != 2 {
		t.Fatalf("dead app collected a fault: %+v", k.Faults)
	}
	// Out-of-range targets are ignored.
	k.InjectFault(-1, "bogus")
	k.InjectFault(9, "bogus")
	if len(k.Faults) != 2 {
		t.Fatalf("out-of-range injection recorded: %+v", k.Faults)
	}
}

func TestRestartBackoffKillsOnZeroMaxFaults(t *testing.T) {
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "counter", Source: counterApp})
	k.Policy = RestartPolicy{MaxFaults: 0, BackoffMS: 100}
	k.RunUntil(50)
	k.InjectFault(0, "test: first and fatal")
	k.RunUntil(5000)
	if k.Apps[0].Alive {
		t.Fatal("MaxFaults=0 must mean first fault kills")
	}
	if k.Apps[0].Faults != 1 {
		t.Fatalf("faults = %d, want 1", k.Apps[0].Faults)
	}
}

func TestPostPeriodic(t *testing.T) {
	// The counter app logs on event 1; drive it via a periodic external
	// timer instead of its own amulet_set_timer chain.
	silent := `
int count = 0;
void handle_event(int ev, int arg) {
    if (ev == 1) { count++; amulet_log_value(7, count); }
}
`
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "tick", Source: silent})
	k.PostPeriodic(0, 1, 0, 200, 200)
	k.RunUntil(1100)
	if got := len(k.Apps[0].LogValues); got != 5 {
		t.Fatalf("periodic event delivered %d times, want 5", got)
	}
}

func TestPeriodicScheduleSurvivesRestartBackoff(t *testing.T) {
	silent := `
int count = 0;
void handle_event(int ev, int arg) {
    if (ev == 1) { count++; amulet_log_value(7, count); }
}
`
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "tick", Source: silent})
	k.Policy = RestartPolicy{MaxFaults: 3, BackoffMS: 1000}
	k.PostPeriodic(0, 1, 0, 200, 200)
	k.RunUntil(250)
	k.InjectFault(0, "test: synthetic")
	k.RunUntil(5000)
	if !k.Apps[0].Alive {
		t.Fatal("app not restarted")
	}
	// Deliveries at 200, then none during backoff (250..1250), then the
	// schedule resumes: roughly (5000-1250)/200 more. The bug this guards
	// against delivered exactly once and never again.
	if got := len(k.Apps[0].LogValues); got < 15 {
		t.Fatalf("periodic schedule died across restart: %d deliveries", got)
	}
	// A permanently dead app's schedule must drain, not re-arm forever.
	k2 := build(t, cc.ModeMPU, aft.AppSource{Name: "tick", Source: silent})
	k2.Policy = RestartPolicy{MaxFaults: 0}
	k2.PostPeriodic(0, 1, 0, 200, 200)
	k2.RunUntil(250)
	k2.InjectFault(0, "test: fatal")
	k2.RunUntil(2000)
	if k2.Pending() != 0 {
		t.Fatalf("dead app still has %d queued events", k2.Pending())
	}
}

func TestPeriodicScheduleSurvivesFaultingDelivery(t *testing.T) {
	// The periodic delivery itself faults (once): the schedule must re-arm
	// through the restart, not die with the event that crashed.
	trap := `
int inits = 0;
int count = 0;
void handle_event(int ev, int arg) {
    if (ev == 1) {
        if (inits < 2) {
            int *p = 0;
            uint a = 0x1C00;
            p = p + (a >> 1);
            *p = 0x0BAD;       // first delivery: isolation fault
        }
        count++;
        amulet_log_value(7, count);
    }
    if (ev == 0) { inits++; }  // the restart's EvInit disarms the trap
}
`
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "trap", Source: trap})
	k.Policy = RestartPolicy{MaxFaults: 3, BackoffMS: 300}
	k.PostPeriodic(0, 1, 0, 200, 200)
	k.RunUntil(3000)
	if !k.Apps[0].Alive {
		t.Fatalf("app not restarted: %+v", k.Faults)
	}
	if k.Apps[0].Faults != 1 {
		t.Fatalf("faults = %d, want 1", k.Apps[0].Faults)
	}
	// Delivery at 200 faults; restart at 500; schedule resumes and delivers
	// roughly (3000-500)/200 times after the trap disarms.
	if got := len(k.Apps[0].LogValues); got < 10 {
		t.Fatalf("schedule died with its faulting delivery: %d logs", got)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	// Events posted out of order must pop in (Due, seq) order.
	var q eventQueue
	push := func(due uint64) { q.push(Event{Due: due, seq: uint64(q.Len())}) }
	for _, due := range []uint64{50, 10, 40, 10, 30, 0, 20} {
		push(due)
	}
	var last Event
	for i := 0; q.Len() > 0; i++ {
		e := q.pop()
		if i > 0 && (e.Due < last.Due || (e.Due == last.Due && e.seq < last.seq)) {
			t.Fatalf("heap order violated: %+v after %+v", e, last)
		}
		last = e
	}
}

func TestWatchdogCatchesRunaway(t *testing.T) {
	runaway := `
void handle_event(int ev, int arg) {
    if (ev == 3) { while (1) { arg++; } }
}
`
	k := build(t, cc.ModeNoIsolation, aft.AppSource{Name: "spin", Source: runaway})
	k.Post(0, 3, 0, 10)
	k.RunUntil(100)
	if k.Apps[0].Faults == 0 {
		t.Fatal("watchdog did not fire")
	}
	if k.Faults[0].Reason == "" {
		t.Fatal("empty fault reason")
	}
}

func TestDisplayAndLogServices(t *testing.T) {
	app := `
char msg[6] = "hello";
void handle_event(int ev, int arg) {
    if (ev == 0) {
        amulet_display_clear();
        amulet_display_text(msg, 5, 1);
        amulet_log_write(msg, 5);
    }
}
`
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "ui", Source: app})
	k.RunUntil(10)
	if k.Display.Rows[1] != "hello" {
		t.Fatalf("display row = %q", k.Display.Rows[1])
	}
	if string(k.Apps[0].Log) != "hello" {
		t.Fatalf("log = %q", k.Apps[0].Log)
	}
}

func TestGatePointerValidationBlocksForgedAPIPointer(t *testing.T) {
	// Passing an out-of-segment pointer to a pointer-taking API must be
	// caught by the gate's validation under SoftwareOnly.
	forged := `
void handle_event(int ev, int arg) {
    if (ev == 3) {
        char *p = 0;
        uint a = arg;
        p = p + a;
        amulet_log_write(p, 4);     // leak another app's memory
    }
}
`
	for _, mode := range []cc.Mode{cc.ModeSoftwareOnly, cc.ModeMPU} {
		k := build(t, mode,
			aft.AppSource{Name: "spy", Source: forged},
			aft.AppSource{Name: "victim", Source: victimApp})
		secret := k.FW.Image.MustSym(abi.SymGlobal("victim", "canary"))
		target := secret
		if mode == cc.ModeMPU {
			// MPU gates check only the lower bound; aim below the app.
			target = 0x1C00
		}
		k.Post(0, 3, target, 10)
		k.RunUntil(100)
		if k.Apps[0].Faults == 0 {
			t.Errorf("[%v] forged API pointer not caught", mode)
		}
		if len(k.Apps[0].Log) != 0 {
			t.Errorf("[%v] log captured %d bytes", mode, len(k.Apps[0].Log))
		}
	}
}

func TestButtonEvents(t *testing.T) {
	buttonApp := `
int presses = 0;
void handle_event(int ev, int arg) {
    if (ev == 0) { amulet_subscribe(4, 0); return; }   // button sensor
    if (ev == 3) { presses++; amulet_log_value(1, presses); }
}
`
	k := build(t, cc.ModeMPU, aft.AppSource{Name: "btn", Source: buttonApp})
	k.RunUntil(10) // init: subscribe
	k.InjectButton(1)
	k.InjectButton(2)
	k.RunUntil(100)
	if got := len(k.Apps[0].LogValues); got != 2 {
		t.Fatalf("logged %d presses, want 2", got)
	}
	if k.Apps[0].LogValues[1].Value != 2 {
		t.Fatalf("press counter = %d", k.Apps[0].LogValues[1].Value)
	}
}

func TestSensorsDeterministicAndPlausible(t *testing.T) {
	s1 := NewSensors(42)
	s2 := NewSensors(42)
	for _, tms := range []uint64{0, 1000, 60_000, 3_600_000} {
		for axis := 0; axis < 3; axis++ {
			if s1.Accel(axis, tms) != s2.Accel(axis, tms) {
				t.Fatal("accel not deterministic")
			}
		}
		if s1.HR(tms) != s2.HR(tms) || s1.Temp(tms) != s2.Temp(tms) {
			t.Fatal("sensors not deterministic")
		}
	}
	if s1.Battery(0) != 100 {
		t.Fatal("battery should start full")
	}
	if s1.Battery(14*24*3600*1000) > 1 {
		t.Fatal("battery should drain over two weeks")
	}
	if s1.Steps(0) != 0 {
		t.Fatal("steps should start at zero")
	}
	if s1.Steps(20*60*1000) == 0 {
		t.Fatal("no steps after a walk phase")
	}
}
