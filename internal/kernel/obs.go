package kernel

import (
	"amuletiso/internal/obs"
)

// Process-wide kernel metrics. These aggregate across every kernel in the
// process (a fleet run hosts thousands); per-device numbers stay in AppState
// and DeviceResult, which remain the deterministic source of truth.
var (
	mDispatches = obs.Default.Counter(obs.MetricDispatches,
		"Events delivered through the dispatch veneer, all devices.")
	mSyscalls = obs.Default.Counter(obs.MetricSyscalls,
		"OS service calls through the syscall port, all devices.")
	mFaults = obs.Default.CounterVec(obs.MetricFaults,
		"Isolation faults by attributed layer, all devices.", "class")
	mWatchdog = obs.Default.Counter(obs.MetricWatchdogTrips,
		"Event handlers killed for exceeding the watchdog cycle budget.")
	mRestarts = obs.Default.Counter(obs.MetricRestarts,
		"App restarts performed by the restart policy.")
)

// AttachRecorder installs (or, with nil, removes) a flight recorder on this
// kernel. The recorder observes the kernel from outside the simulation:
// recording an event never touches CPU, bus, or MPU state, so a traced run is
// cycle-for-cycle identical to an untraced one. Gate crossings are captured
// by hooking the MPU's configuration callback.
func (k *Kernel) AttachRecorder(r *obs.Recorder) {
	k.rec = r
	if r == nil {
		k.MPU.OnConfig = nil
		return
	}
	k.MPU.OnConfig = func() {
		r.Record(k.CPU.Cycles, obs.KindGateCross, int16(k.curApp), 0, 0)
	}
}

// Recorder returns the attached flight recorder, or nil.
func (k *Kernel) Recorder() *obs.Recorder { return k.rec }
