package kernel

import (
	"testing"

	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
)

// TestUnknownSyscallRecordsOneFault pins the seam between Go-side service
// faults and the dispatch loop: an unrecognized syscall id must cost the
// app exactly one fault, not two.
func TestUnknownSyscallRecordsOneFault(t *testing.T) {
	k := buildOne(t, `void handle_event(int ev, int arg) {}`, 0)
	// Deliver the init event normally first.
	k.Step()
	if len(k.Faults) != 0 {
		t.Fatalf("benign handler faulted: %+v", k.Faults)
	}
	// Re-enter the dispatch path with a handler image patched to write a
	// bogus syscall id straight to the syscall port.
	k.Apps[0].Alive = true
	k.post(Event{Due: k.NowMS, App: 0, Code: 0})
	pc := k.Apps[0].Info.Handler
	// MOV #0x7FFF, &PortSyscall ; JMP $ (the halt from the service ends it)
	img := []isa.Instr{
		{Op: isa.MOV, Src: isa.Imm(0x7FFF), Dst: isa.Abs(cpu.PortSyscall)},
	}
	addr := pc
	for _, in := range img {
		words, _ := isa.Encode(in)
		for _, w := range words {
			k.Bus.Poke16(addr, w)
			addr += 2
		}
	}
	k.Step()
	if len(k.Faults) != 1 {
		t.Fatalf("unknown syscall recorded %d faults, want exactly 1: %+v", len(k.Faults), k.Faults)
	}
	if k.Faults[0].Reason != "unknown syscall" {
		t.Fatalf("reason = %q", k.Faults[0].Reason)
	}
	if k.Apps[0].Faults != 1 {
		t.Fatalf("app fault count = %d, want 1", k.Apps[0].Faults)
	}
}
