package kernel

import (
	"bytes"
	"encoding/json"
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
	"amuletiso/internal/mem"
)

// checkpointFirmware builds a workload that exercises every piece of state a
// checkpoint must carry: timers and logs (counter), sensor subscriptions and
// reads (hr), and — via posted attack events — faults, the restart policy,
// and MPU violation latches (evil).
func checkpointFirmware(t *testing.T, mode cc.Mode) (*aft.Firmware, *BootTemplate) {
	t.Helper()
	fw, err := aft.Build([]aft.AppSource{
		{Name: "counter", Source: counterApp},
		{Name: "hr", Source: hrApp},
		{Name: "evil", Source: evilApp},
	}, mode)
	if err != nil {
		t.Fatalf("[%v] build: %v", mode, err)
	}
	return fw, NewBootTemplate(fw)
}

// driveTo boots a seeded kernel from the template, arms the workload, and
// runs it to deadlineMS. The evil app attacks the counter app's data mid-run,
// so by any deadline past 2300 the kernel has fault records, a dead-or-
// restarting app, and latched MPU state in flight.
func driveTo(t *BootTemplate, fw *aft.Firmware, arena *mem.PageArena, deadlineMS uint64) *Kernel {
	k := t.NewKernelArena(7, arena)
	k.Policy = RestartPolicy{MaxFaults: 3, BackoffMS: 400}
	// Periodic attacks on the counter app's `count` global: under isolation
	// each delivery faults, driving the restart policy through backoff
	// windows that may straddle a checkpoint; under NoIsolation the writes
	// land, corrupting the counter deterministically.
	target := fw.Image.MustSym(abi.SymGlobal("counter", "count"))
	k.PostPeriodic(2, 3, target, 2300, 1700)
	k.RunUntil(deadlineMS)
	return k
}

// ckJSON renders a checkpoint to canonical JSON — the byte-level state digest
// the equivalence assertions compare.
func ckJSON(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	b, err := json.Marshal(ck)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	return b
}

// TestCheckpointResumeEquivalence is the core contract: run to T, checkpoint,
// JSON round-trip, resume on a fresh kernel, run both to the end — the
// resumed device's final checkpoint must be byte-identical to the
// uninterrupted run's, under COW and under the flat oracle.
func TestCheckpointResumeEquivalence(t *testing.T) {
	const midMS, endMS = 2500, 6000
	for _, cow := range []bool{true, false} {
		mem.SetCOW(cow)
		t.Cleanup(func() { mem.SetCOW(true) })
		for _, mode := range []cc.Mode{cc.ModeMPU, cc.ModeNoIsolation} {
			fw, tmpl := checkpointFirmware(t, mode)

			golden := driveTo(tmpl, fw, nil, endMS)
			want := ckJSON(t, tmpl.Checkpoint(golden))

			half := driveTo(tmpl, fw, nil, midMS)
			ck := tmpl.Checkpoint(half)

			// The checkpoint must survive serialization: everything below
			// works on a decoded copy, never the in-memory original.
			wire := ckJSON(t, ck)
			var decoded Checkpoint
			if err := json.Unmarshal(wire, &decoded); err != nil {
				t.Fatalf("[cow=%v %v] unmarshal: %v", cow, mode, err)
			}

			resumed, err := tmpl.Resume(&decoded, nil)
			if err != nil {
				t.Fatalf("[cow=%v %v] resume: %v", cow, mode, err)
			}
			// Checkpointing the freshly resumed kernel must reproduce the
			// original checkpoint exactly (restore is lossless)...
			if got := ckJSON(t, tmpl.Checkpoint(resumed)); !bytes.Equal(got, wire) {
				t.Fatalf("[cow=%v %v] resume is not lossless:\n got %s\nwant %s", cow, mode, got, wire)
			}
			// ...and running it out must match the uninterrupted run.
			resumed.RunUntil(endMS)
			if got := ckJSON(t, tmpl.Checkpoint(resumed)); !bytes.Equal(got, want) {
				t.Fatalf("[cow=%v %v] resumed run diverged from uninterrupted run", cow, mode)
			}
		}
	}
}

// TestCheckpointResumeAcrossArenas asserts resumption is independent of page
// recycling: a checkpoint taken from an arena-backed device resumes onto a
// different (dirty) arena and still matches, and the resumed device's pages
// flow back to its arena on release.
func TestCheckpointResumeAcrossArenas(t *testing.T) {
	mem.SetCOW(true)
	fw, tmpl := checkpointFirmware(t, cc.ModeMPU)

	golden := driveTo(tmpl, fw, nil, 5000)
	want := ckJSON(t, tmpl.Checkpoint(golden))

	arenaA := mem.NewPageArena()
	half := driveTo(tmpl, fw, arenaA, 2500)
	ck := tmpl.Checkpoint(half)
	// Retire the source device: its pages go back to arenaA poisoned, so a
	// resume that wrongly aliased them would be visibly corrupted.
	half.Bus.ReleasePages()

	// Pre-dirty arenaB with an unrelated device's recycled pages.
	arenaB := mem.NewPageArena()
	other := driveTo(tmpl, fw, arenaB, 1000)
	other.Bus.ReleasePages()

	resumed, err := tmpl.Resume(ck, arenaB)
	if err != nil {
		t.Fatal(err)
	}
	resumed.RunUntil(5000)
	if got := ckJSON(t, tmpl.Checkpoint(resumed)); !bytes.Equal(got, want) {
		t.Fatal("resume onto a recycled arena diverged from uninterrupted run")
	}
	// Releasing the resumed device must return every page it dirtied —
	// whether recycled from arenaB or freshly allocated.
	freeBefore, dirty := arenaB.FreePages(), resumed.Bus.DirtyPages()
	if dirty == 0 {
		t.Fatal("resumed device dirtied no pages")
	}
	resumed.Bus.ReleasePages()
	if got := arenaB.FreePages(); got != freeBefore+dirty {
		t.Fatalf("arenaB free pages = %d after release, want %d+%d", got, freeBefore, dirty)
	}
}

// TestCheckpointEveryBoundary checkpoints at every 500 ms boundary of the run
// and verifies each resumption independently — checkpoints mid-backoff,
// mid-attack-cadence, and with events due exactly at the boundary all work.
func TestCheckpointEveryBoundary(t *testing.T) {
	const endMS = 5000
	fw, tmpl := checkpointFirmware(t, cc.ModeMPU)
	want := ckJSON(t, tmpl.Checkpoint(driveTo(tmpl, fw, nil, endMS)))

	for mid := uint64(500); mid < endMS; mid += 500 {
		ck := tmpl.Checkpoint(driveTo(tmpl, fw, nil, mid))
		resumed, err := tmpl.Resume(ck, nil)
		if err != nil {
			t.Fatalf("mid=%d: %v", mid, err)
		}
		resumed.RunUntil(endMS)
		if got := ckJSON(t, tmpl.Checkpoint(resumed)); !bytes.Equal(got, want) {
			t.Fatalf("mid=%d: resumed run diverged", mid)
		}
	}
}

// TestResumeRejectsMalformedCheckpoints covers the validation paths.
func TestResumeRejectsMalformedCheckpoints(t *testing.T) {
	fw, tmpl := checkpointFirmware(t, cc.ModeMPU)
	ck := tmpl.Checkpoint(driveTo(tmpl, fw, nil, 1000))

	appless := *ck
	appless.Apps = ck.Apps[:1]
	if _, err := tmpl.Resume(&appless, nil); err == nil {
		t.Error("resume accepted a checkpoint with the wrong app count")
	}

	badPage := *ck
	badPage.Pages = append([]PagePatch(nil), ck.Pages...)
	badPage.Pages[0].Data = badPage.Pages[0].Data[:10]
	if _, err := tmpl.Resume(&badPage, nil); err == nil {
		t.Error("resume accepted a truncated page patch")
	}

	outOfRange := *ck
	outOfRange.Pages = append([]PagePatch(nil), ck.Pages...)
	outOfRange.Pages[0].Page = 1 << 16
	if _, err := tmpl.Resume(&outOfRange, nil); err == nil {
		t.Error("resume accepted an out-of-range page index")
	}
}
