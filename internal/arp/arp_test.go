package arp

import (
	"testing"

	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
)

func TestProfileDeterministic(t *testing.T) {
	app, _ := apps.ByName("clock")
	a, err := Profile(app, cc.ModeMPU, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(app, cc.ModeMPU, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Dispatches != b.Dispatches {
		t.Fatalf("profiles differ: %+v vs %+v", a, b)
	}
	if a.Dispatches == 0 || a.Cycles == 0 {
		t.Fatal("empty profile")
	}
}

// TestExtrapolateWeeklyEdges pins the boundary behaviour the fleet's battery
// projection relies on: an empty window projects to zero (never a division
// by zero), and a week-long window is the identity.
func TestExtrapolateWeeklyEdges(t *testing.T) {
	if got := ExtrapolateWeekly(1e9, 0); got != 0 {
		t.Fatalf("ExtrapolateWeekly(_, 0) = %g, want 0", got)
	}
	if got := ExtrapolateWeekly(0, 10_000); got != 0 {
		t.Fatalf("ExtrapolateWeekly(0, _) = %g, want 0", got)
	}
	if got := ExtrapolateWeekly(12345.5, MSPerWeek); got != 12345.5 {
		t.Fatalf("week-long window: ExtrapolateWeekly = %g, want identity", got)
	}
	// Half-week window doubles; the scale is linear in 1/sampleMS.
	if got := ExtrapolateWeekly(100, MSPerWeek/2); got != 200 {
		t.Fatalf("half-week window: ExtrapolateWeekly = %g, want 200", got)
	}
}

func TestMeasureOverheadShape(t *testing.T) {
	app, _ := apps.ByName("falldetection") // array-heavy, high event rate
	window := uint64(30_000)
	get := func(m cc.Mode) *Overhead {
		o, err := Measure(app, m, window)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	mpu := get(cc.ModeMPU)
	sw := get(cc.ModeSoftwareOnly)
	fl := get(cc.ModeFeatureLimited)

	for _, o := range []*Overhead{mpu, sw, fl} {
		if o.CyclesPerWeek < 0 {
			t.Fatalf("negative overhead: %+v", o)
		}
		if o.BatteryImpactPct >= 0.5 {
			t.Fatalf("%v battery impact %.3f%% violates the paper's claim", o.Mode, o.BatteryImpactPct)
		}
	}
	// MPU pays for API-heavy events (three accel reads per sample): its
	// weekly cost must exceed SoftwareOnly's for this app — the paper's
	// "not effective for apps that make frequent API calls".
	if mpu.CyclesPerWeek <= sw.CyclesPerWeek {
		t.Errorf("MPU (%.0f) should exceed SoftwareOnly (%.0f) for API-heavy apps",
			mpu.CyclesPerWeek, sw.CyclesPerWeek)
	}
	// Extrapolation scale: weekly = window overhead x (week/window).
	wantScale := float64(MSPerWeek) / float64(window)
	gotScale := mpu.CyclesPerWeek / (float64(mpu.SampleCycles) - float64(mpu.BaselineCycles))
	if gotScale < wantScale*0.999 || gotScale > wantScale*1.001 {
		t.Errorf("extrapolation factor %.1f, want %.1f", gotScale, wantScale)
	}
}

func TestMeasureRejectsWorkloadMismatch(t *testing.T) {
	// A faulting app cannot be profiled.
	bad := apps.App{Name: "bad", Source: `
void handle_event(int ev, int arg) {
    if (ev == 0) {
        int *p = 0;
        uint a = 0x1C00;
        p = p + (a >> 1);
        *p = 1;
    }
}
`}
	if _, err := Profile(bad, cc.ModeMPU, 1000); err == nil {
		t.Fatal("faulting app profiled without error")
	}
}
