// Package arp reimplements the Amulet Resource Profiler pipeline behind the
// paper's Figure 2: run each application's real event workload under each
// memory model, measure the active cycles it consumes, subtract the
// NoIsolation baseline to get the isolation overhead, and extrapolate the
// sampled window to a week of wear, converting to battery-lifetime impact
// with the energy model.
//
// The original ARP combined static per-state access counts with
// developer-declared event rates; our applications declare their own rates
// by subscribing to sensors and timers, so the profiler simply replays the
// same deterministic workload under every mode — a measured rather than
// estimated version of the same extrapolation.
package arp

import (
	"fmt"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/energy"
	"amuletiso/internal/kernel"
)

// DefaultSampleMS is the profiling window: 20 minutes of virtual wear —
// one full activity cycle of the wearer model (rest/walk/rest/brisk), so
// rate-varying apps are sampled fairly.
const DefaultSampleMS = 20 * 60 * 1000

// MSPerWeek is the extrapolation target.
const MSPerWeek = 7 * 24 * 3600 * 1000

// ExtrapolateWeekly scales active cycles observed during a sampled window of
// virtual wear to a full week — the extrapolation step shared by Figure 2
// and the fleet report's battery projections.
func ExtrapolateWeekly(cycles float64, sampleMS uint64) float64 {
	if sampleMS == 0 {
		return 0
	}
	return cycles * float64(MSPerWeek) / float64(sampleMS)
}

// Sample is one app × mode profiling run.
type Sample struct {
	App        string
	Mode       cc.Mode
	SampleMS   uint64
	Cycles     uint64 // active cycles during the window
	Dispatches uint64
	Syscalls   uint64
	Faults     int
}

// Profile runs one application alone under the given mode for the window.
func Profile(app apps.App, mode cc.Mode, sampleMS uint64) (*Sample, error) {
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, mode)
	if err != nil {
		return nil, fmt.Errorf("arp: %s/%v: %w", app.Name, mode, err)
	}
	k := kernel.New(fw)
	k.RunUntil(sampleMS)
	st := k.Apps[0]
	if st.Faults > 0 {
		return nil, fmt.Errorf("arp: %s/%v faulted during profiling: %v", app.Name, mode, k.Faults)
	}
	return &Sample{
		App:        app.Name,
		Mode:       mode,
		SampleMS:   sampleMS,
		Cycles:     k.CPU.Cycles,
		Dispatches: st.Dispatches,
		Syscalls:   st.Syscalls,
		Faults:     st.Faults,
	}, nil
}

// Overhead is one Figure 2 bar: an app's weekly isolation cost under a mode.
type Overhead struct {
	App   string
	Title string
	Mode  cc.Mode

	SampleCycles   uint64 // cycles in the window under Mode
	BaselineCycles uint64 // cycles in the window under NoIsolation

	CyclesPerWeek     float64 // extrapolated overhead (mode - baseline)
	BillionsPerWeek   float64 // same, in 1e9 units (Figure 2 left axis)
	BatteryImpactPct  float64 // Figure 2 right axis
	LifetimeLossHours float64
}

// Measure profiles one app under a mode and NoIsolation and returns the
// extrapolated weekly overhead.
func Measure(app apps.App, mode cc.Mode, sampleMS uint64) (*Overhead, error) {
	if sampleMS == 0 {
		sampleMS = DefaultSampleMS
	}
	base, err := Profile(app, cc.ModeNoIsolation, sampleMS)
	if err != nil {
		return nil, err
	}
	s, err := Profile(app, mode, sampleMS)
	if err != nil {
		return nil, err
	}
	if s.Dispatches != base.Dispatches {
		return nil, fmt.Errorf("arp: %s/%v: workload mismatch (%d vs %d dispatches)",
			app.Name, mode, s.Dispatches, base.Dispatches)
	}
	over := float64(s.Cycles) - float64(base.Cycles)
	if over < 0 {
		over = 0
	}
	weekly := ExtrapolateWeekly(over, sampleMS)
	return &Overhead{
		App:               app.Name,
		Title:             app.Title,
		Mode:              mode,
		SampleCycles:      s.Cycles,
		BaselineCycles:    base.Cycles,
		CyclesPerWeek:     weekly,
		BillionsPerWeek:   weekly / 1e9,
		BatteryImpactPct:  energy.BatteryImpactPercent(weekly),
		LifetimeLossHours: energy.LifetimeReductionHours(weekly),
	}, nil
}

// Figure2Modes are the three isolation methods plotted in Figure 2.
var Figure2Modes = []cc.Mode{cc.ModeFeatureLimited, cc.ModeMPU, cc.ModeSoftwareOnly}

// MeasureSuite produces the full Figure 2 data set: every suite app under
// every isolation method.
func MeasureSuite(sampleMS uint64) ([]*Overhead, error) {
	var out []*Overhead
	for _, app := range apps.Suite() {
		for _, mode := range Figure2Modes {
			o, err := Measure(app, mode, sampleMS)
			if err != nil {
				return nil, err
			}
			out = append(out, o)
		}
	}
	return out, nil
}
