package fleetd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"amuletiso/internal/fleet"
	"amuletiso/internal/torture"
)

// Persistence: one JSON file per job under the state directory, rewritten
// atomically (tmp + rename) on every progress step, so a SIGKILL at any
// moment leaves either the previous or the next consistent state on disk —
// never a torn file. A restarted daemon re-registers every job it finds:
// terminal jobs keep serving their reports, interrupted jobs re-queue and
// continue from their last persisted cut.

// jobProgress is the resumable position inside a running fleet or torture
// job.
type jobProgress struct {
	// ShardsDone counts fully merged shards; Merged is their merge (nil
	// until the first completes).
	ShardsDone int           `json:"shardsDone"`
	Merged     *fleet.Report `json:"merged,omitempty"`
	// Current is the interrupted shard's consistent cut, when one was taken.
	Current *fleet.CampaignCheckpoint `json:"current,omitempty"`
	// TortureMerged is the torture analogue of Merged: the union of every
	// completed program-range shard. Torture cases have no mid-case cut, so
	// an interrupted shard reruns from its First index on resume.
	TortureMerged *torture.Report `json:"tortureMerged,omitempty"`
}

// jobFile is the on-disk form of one job.
type jobFile struct {
	ID       string          `json:"id"`
	Spec     JobSpec         `json:"spec"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Progress *jobProgress    `json:"progress,omitempty"`
	Report   *fleet.Report   `json:"report,omitempty"`
	Torture  *torture.Report `json:"torture,omitempty"`
}

// jobPath places job files in the state dir; IDs are "job-<n>" so the path
// is filesystem-safe by construction.
func (s *Server) jobPath(id string) string {
	return filepath.Join(s.StateDir, id+".json")
}

// persist writes the job's current state atomically. A nil StateDir disables
// persistence (in-memory daemon, used by tests that don't exercise resume).
func (s *Server) persist(j *Job, progress *jobProgress) {
	if s.StateDir == "" {
		return
	}
	j.mu.Lock()
	f := jobFile{
		ID:       j.ID,
		Spec:     j.Spec,
		State:    j.state,
		Error:    j.errMsg,
		Progress: progress,
		Report:   j.report,
		Torture:  j.torture,
	}
	// A running job persists as queued: that is exactly what it must become
	// if this file is the one a restarted daemon reads back.
	if f.State == StateRunning {
		f.State = StateQueued
	}
	j.mu.Unlock()

	data, err := json.Marshal(&f)
	if err != nil {
		return
	}
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	path := s.jobPath(j.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// LoadState re-registers every job found in the state directory. Terminal
// jobs come back served-only; queued/interrupted jobs re-enter the queue
// with their persisted progress. Call before Start.
func (s *Server) LoadState() error {
	if s.StateDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.StateDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var files []jobFile
	maxID := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.StateDir, name))
		if err != nil {
			return err
		}
		var f jobFile
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("fleetd: corrupt state file %s: %w", name, err)
		}
		if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(f.ID, "job-"), "")); err == nil && n > maxID {
			maxID = n
		}
		files = append(files, f)
	}
	// Submission order is the ID order; re-queue in the same order.
	sort.Slice(files, func(i, j int) bool { return jobNum(files[i].ID) < jobNum(files[j].ID) })

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range files {
		j := newJob(f.ID, f.Spec)
		j.state = f.State
		j.errMsg = f.Error
		j.report = f.Report
		j.torture = f.Torture
		j.resume = f.Progress
		switch f.State {
		case StateDone:
			if j.report != nil {
				j.done, j.total = j.report.Devices, j.report.Devices
			}
			if j.torture != nil {
				j.done, j.total = j.torture.Programs, j.torture.Programs
			}
		case StateQueued, StateRunning:
			j.state = StateQueued
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	if maxID >= s.nextID {
		s.nextID = maxID + 1
	}
	return nil
}

// jobNum extracts the numeric part of a "job-<n>" ID (0 if malformed).
func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}
