package fleetd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"amuletiso/internal/fleet"
	"amuletiso/internal/obs"
	"amuletiso/internal/torture"
)

// Daemon-level metrics, exposed on the same mux as the job API.
var (
	mJobsSubmitted = obs.Default.Counter("amulet_fleetd_jobs_submitted_total",
		"Jobs accepted by the fleetd scheduler.")
	mJobsFinished = obs.Default.CounterVec("amulet_fleetd_jobs_finished_total",
		"Jobs that reached a terminal state, by state.", "state")
	mShardsMerged = obs.Default.Counter("amulet_fleetd_shards_merged_total",
		"Fleet shards completed and merged into job reports.")
	mResumes = obs.Default.Counter("amulet_fleetd_jobs_resumed_total",
		"Jobs continued from persisted checkpoint state.")
)

// Server is the fleetd scheduler plus its HTTP surface. Configure the
// exported fields, then LoadState (optional) and Start; Handler serves the
// API, obs metrics and pprof on one mux.
//
// Jobs run one at a time in submission order — each job's shards already
// saturate the runner's worker pool, so job-level parallelism would only
// interleave checkpoint state.
type Server struct {
	// Runner executes fleet shards; nil gets a private runner. Share one
	// across the daemon's lifetime so the build cache and page arena persist
	// between jobs.
	Runner *fleet.Runner
	// StateDir persists job state for crash recovery ("" = memory only).
	StateDir string
	// ShardDevices is the default scheduling shard size: each job's fleet is
	// cut into shards of this many devices, run sequentially, merged and
	// persisted as each completes. <= 0 runs each fleet as a single shard.
	ShardDevices int
	// ShardPrograms is the torture analogue of ShardDevices: programs per
	// sequentially-scheduled, mergeable campaign shard. <= 0 runs each
	// campaign as a single shard.
	ShardPrograms int
	// SegmentMS is the virtual-time interval between in-shard device
	// snapshot refreshes (0 = 1000).
	SegmentMS uint64
	// FlushEvery is the real-time cadence of mid-shard checkpoint writes
	// (0 = 500ms).
	FlushEvery time.Duration

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextID  int
	wake    chan struct{}
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// NewServer returns an idle server with the given state dir ("" = memory
// only).
func NewServer(stateDir string) *Server {
	return &Server{
		Runner:   &fleet.Runner{Cache: fleet.NewBuildCache()},
		StateDir: stateDir,
		jobs:     make(map[string]*Job),
		nextID:   1,
		wake:     make(chan struct{}, 1),
	}
}

func (s *Server) segmentMS() uint64 {
	if s.SegmentMS > 0 {
		return s.SegmentMS
	}
	return 1000
}

func (s *Server) flushEvery() time.Duration {
	if s.FlushEvery > 0 {
		return s.FlushEvery
	}
	return 500 * time.Millisecond
}

// Start launches the scheduler. Call after LoadState.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.ctx, s.stop = context.WithCancel(context.Background())
	s.mu.Unlock()
	s.wg.Add(1)
	go s.schedule()
}

// Stop halts the scheduler: the running job (if any) is interrupted, its
// consistent cut persisted, and the job re-queued on disk so the next
// LoadState continues it. Blocks until the scheduler goroutine exits.
func (s *Server) Stop() {
	s.mu.Lock()
	stop := s.stop
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	s.wg.Wait()
}

// Submit validates and enqueues a job, returning its ID.
func (s *Server) Submit(spec JobSpec) (string, error) {
	if err := spec.validate(); err != nil {
		return "", err
	}
	s.mu.Lock()
	id := fmt.Sprintf("job-%d", s.nextID)
	s.nextID++
	j := newJob(id, spec)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	mJobsSubmitted.Inc()
	s.persist(j, nil)
	s.kick()
	return id, nil
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := s.jobs
	s.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		views = append(views, jobs[id].view())
	}
	return views
}

// Cancel requests cancellation of a queued or running job.
func (s *Server) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("fleetd: no job %s", id)
	}
	j.mu.Lock()
	switch {
	case j.terminalLocked():
		j.mu.Unlock()
		return fmt.Errorf("fleetd: job %s already %s", id, j.view().State)
	case j.state == StateQueued:
		j.cancelled = true
		j.state = StateCancelled
		close(j.changed)
		j.changed = make(chan struct{})
		j.mu.Unlock()
		mJobsFinished.With(StateCancelled).Inc()
		s.persist(j, nil)
		return nil
	default: // running
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	}
}

// kick nudges the scheduler without blocking.
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// nextQueued pops the first queued job in submission order.
func (s *Server) nextQueued() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		queued := j.state == StateQueued
		j.mu.Unlock()
		if queued {
			return j
		}
	}
	return nil
}

// schedule is the scheduler loop: FIFO over queued jobs, one at a time.
func (s *Server) schedule() {
	defer s.wg.Done()
	for {
		j := s.nextQueued()
		if j == nil {
			select {
			case <-s.wake:
				continue
			case <-s.ctx.Done():
				return
			}
		}
		s.runJob(j)
		select {
		case <-s.ctx.Done():
			return
		default:
		}
	}
}

// streamEvent is one NDJSON line of a job's progress stream: the job's state
// plus, for fleet jobs, the merge of every completed shard so far.
type streamEvent struct {
	Job     string          `json:"job"`
	State   string          `json:"state"`
	Done    int             `json:"done"`
	Total   int             `json:"total"`
	Report  *fleet.Report   `json:"report,omitempty"`
	Torture *torture.Report `json:"torture,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// emit appends one stream line reflecting the job's current state.
func (s *Server) emit(j *Job) {
	j.mu.Lock()
	ev := streamEvent{Job: j.ID, State: j.state, Done: j.done, Total: j.total,
		Report: j.report, Torture: j.torture, Error: j.errMsg}
	j.mu.Unlock()
	line, err := json.Marshal(&ev)
	if err != nil {
		return
	}
	j.appendLine(line)
}

// runJob executes one job to a terminal state — or back to queued when the
// daemon itself is shutting down mid-run.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	resumed := j.resume != nil
	j.mu.Unlock()
	defer cancel()
	if resumed {
		mResumes.Inc()
	}

	var err error
	if j.Spec.kind() == TypeTorture {
		err = s.runTortureJob(ctx, j)
	} else {
		err = s.runFleetJob(ctx, j)
	}

	j.mu.Lock()
	cancelled := j.cancelled
	j.mu.Unlock()
	switch {
	case err == nil:
		j.setState(StateDone, "")
		mJobsFinished.With(StateDone).Inc()
	case cancelled:
		j.setState(StateCancelled, err.Error())
		mJobsFinished.With(StateCancelled).Inc()
	case s.ctx.Err() != nil:
		// Daemon shutdown: the job goes back to the queue; its progress was
		// already persisted by the run loop below.
		j.setState(StateQueued, "")
	default:
		j.setState(StateFailed, err.Error())
		mJobsFinished.With(StateFailed).Inc()
	}
	s.persist(j, s.progressOf(j))
	s.emit(j)
}

// progressOf snapshots a job's resumable position for persistence.
func (s *Server) progressOf(j *Job) *jobProgress {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resume
}

// runFleetJob walks the job's fleet shard by shard, merging and persisting
// after each. Shards are contiguous FirstDevice ranges, so the running merge
// is always a valid partial campaign and the final merge is byte-identical
// to a one-shot run of the whole scenario.
func (s *Server) runFleetJob(ctx context.Context, j *Job) error {
	sc, err := j.Spec.scenario()
	if err != nil {
		return err
	}
	shard := j.Spec.ShardDevices
	if shard <= 0 {
		shard = s.ShardDevices
	}
	if shard <= 0 || shard > sc.Devices {
		shard = sc.Devices
	}

	var merged *fleet.Report
	var cut *fleet.CampaignCheckpoint
	start := 0
	j.mu.Lock()
	if j.resume != nil {
		merged, cut, start = j.resume.Merged, j.resume.Current, j.resume.ShardsDone
	}
	j.total = sc.Devices
	if merged != nil {
		j.report = merged
		j.done = merged.Devices
	}
	j.mu.Unlock()

	runner := s.Runner
	if runner == nil {
		runner = &fleet.Runner{Cache: fleet.NewBuildCache()}
		s.Runner = runner
	}

	nshards := (sc.Devices + shard - 1) / shard
	for k := start; k < nshards; k++ {
		sub := sc
		sub.FirstDevice = sc.FirstDevice + k*shard
		sub.Devices = shard
		if rest := sc.FirstDevice + sc.Devices - sub.FirstDevice; rest < shard {
			sub.Devices = rest
		}
		var prior *fleet.CampaignCheckpoint
		if k == start {
			prior = cut // nil unless resuming mid-shard
		}
		opt := fleet.ResumableOptions{
			SegmentMS: s.segmentMS(),
			Flush:     s.flushEvery(),
			Sink: func(c *fleet.CampaignCheckpoint) {
				s.setProgress(j, &jobProgress{ShardsDone: k, Merged: merged, Current: c})
				s.persist(j, s.progressOf(j))
			},
		}
		rep, c, err := runner.RunResumable(ctx, sub, prior, opt)
		if err != nil {
			// Interrupted (cancel or shutdown): persist the final cut so a
			// resume continues this shard instead of rerunning it.
			s.setProgress(j, &jobProgress{ShardsDone: k, Merged: merged, Current: c})
			s.persist(j, s.progressOf(j))
			return err
		}
		if merged == nil {
			merged = rep
		} else if err := merged.Merge(rep); err != nil {
			return err
		}
		mShardsMerged.Inc()
		j.mu.Lock()
		j.report = merged
		j.done = merged.Devices
		j.mu.Unlock()
		s.setProgress(j, &jobProgress{ShardsDone: k + 1, Merged: merged})
		s.persist(j, s.progressOf(j))
		s.emit(j)
	}
	return nil
}

// setProgress replaces the job's resumable position.
func (s *Server) setProgress(j *Job, p *jobProgress) {
	j.mu.Lock()
	j.resume = p
	j.mu.Unlock()
}

// runTortureJob walks the job's campaign shard by shard — contiguous program
// ranges, exactly as runFleetJob walks device ranges — merging and persisting
// after each, so a killed daemon resumes at the first incomplete shard and
// the final merge is byte-identical to a one-shot run of the whole campaign.
// Torture cases have no mid-case cut, so an interrupted shard reruns whole.
func (s *Server) runTortureJob(ctx context.Context, j *Job) error {
	workers := 0
	if s.Runner != nil {
		workers = s.Runner.Workers
	}
	cfg, err := j.Spec.tortureConfig(workers)
	if err != nil {
		return err
	}
	shard := j.Spec.ShardPrograms
	if shard <= 0 {
		shard = s.ShardPrograms
	}
	if shard <= 0 || shard > cfg.Programs {
		shard = cfg.Programs
	}

	var merged *torture.Report
	start := 0
	j.mu.Lock()
	if j.resume != nil {
		merged, start = j.resume.TortureMerged, j.resume.ShardsDone
	}
	j.total = cfg.Programs
	if merged != nil {
		j.torture = merged
		j.done = merged.Programs
	}
	j.mu.Unlock()

	nshards := (cfg.Programs + shard - 1) / shard
	for k := start; k < nshards; k++ {
		sub := cfg
		sub.First = cfg.First + k*shard
		sub.Programs = shard
		if rest := cfg.First + cfg.Programs - sub.First; rest < shard {
			sub.Programs = rest
		}
		rep, err := torture.Run(ctx, sub)
		if err != nil {
			return err
		}
		if merged == nil {
			merged = rep
		} else if err := merged.Merge(rep); err != nil {
			return err
		}
		mShardsMerged.Inc()
		j.mu.Lock()
		j.torture = merged
		j.done = merged.Programs
		j.mu.Unlock()
		s.setProgress(j, &jobProgress{ShardsDone: k + 1, TortureMerged: merged})
		s.persist(j, s.progressOf(j))
		s.emit(j)
	}
	return nil
}

// Handler returns the daemon's HTTP surface: the job API plus the obs
// observability unit (/metrics, /debug/pprof/) on one mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.Handle("/metrics", obs.Handler(obs.Default))
	mux.Handle("/debug/pprof/", obs.Handler(obs.Default))
	return mux
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad job spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("fleetd: no job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// handleReport serves a finished fleet job's report with exactly the
// encoding `amuletfleet -json` uses, so the two outputs byte-compare equal.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("fleetd: no job %s", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state, rep, tort := j.state, j.report, j.torture
	j.mu.Unlock()
	if state != StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("fleetd: job %s is %s, not done", j.ID, state))
		return
	}
	if tort != nil {
		writeJSON(w, tort)
		return
	}
	writeJSON(w, rep)
}

// handleStream serves the job's NDJSON progress stream: all history so far,
// then live lines until the job reaches a terminal state. One JSON object
// per line; the last line carries the terminal state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("fleetd: no job %s", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		j.mu.Lock()
		lines := j.lines[sent:]
		sent = len(j.lines)
		terminal := j.terminalLocked()
		changed := j.changed
		j.mu.Unlock()
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
