package fleetd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"amuletiso/internal/fleet"
	"amuletiso/internal/torture"
)

func newTestServer(t *testing.T, stateDir string) *Server {
	t.Helper()
	s := NewServer(stateDir)
	s.Runner = &fleet.Runner{Workers: 2, Cache: fleet.NewBuildCache()}
	s.SegmentMS = 500
	s.FlushEvery = 2 * time.Millisecond
	return s
}

// testSpec is a small sharded fleet job built from bundled apps.
func testSpec() JobSpec {
	maxFaults := 3
	backoff := uint64(400)
	return JobSpec{
		Name:          "test",
		Apps:          []string{"pedometer", "hr"},
		Mode:          "mpu",
		DurationMS:    4000,
		Devices:       6,
		Seed:          42,
		ButtonEveryMS: 1700,
		FaultEveryMS:  2300,
		FaultApp:      1,
		MaxFaults:     &maxFaults,
		BackoffMS:     &backoff,
		ShardDevices:  2,
	}
}

// cliBytes renders a report exactly the way `amuletfleet -json` (and the
// daemon's report endpoint) does.
func cliBytes(t *testing.T, rep *fleet.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// oneShot runs the spec's scenario through the plain CLI path.
func oneShot(t *testing.T, spec JobSpec) *fleet.Report {
	t.Helper()
	sc, err := spec.scenario()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// TestDaemonJobMatchesCLIBytes submits a job over HTTP, follows its NDJSON
// stream to completion, and byte-compares the daemon's report against the
// amuletfleet encoding of a one-shot run — the core serving contract.
func TestDaemonJobMatchesCLIBytes(t *testing.T) {
	s := newTestServer(t, "")
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec()
	id := postJob(t, ts, spec)
	if id != "job-1" {
		t.Fatalf("first job id = %q", id)
	}

	// The stream must replay history, emit one merged snapshot per shard,
	// and terminate with the done state.
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", got)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("stream carried %d events, want at least one per shard", len(events))
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Done != spec.Devices {
		t.Fatalf("final stream event: state=%s done=%d", last.State, last.Done)
	}
	prev := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Report != nil && ev.Report.Devices < prev {
			t.Fatalf("merged device count went backwards: %d -> %d", prev, ev.Report.Devices)
		}
		if ev.Report != nil {
			prev = ev.Report.Devices
		}
	}

	rep, err := http.Get(ts.URL + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(rep.Body); err != nil {
		t.Fatal(err)
	}
	want := cliBytes(t, oneShot(t, spec))
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("daemon report bytes differ from amuletfleet -json output")
	}

	list, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var views []JobView
	if err := json.NewDecoder(list.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].State != StateDone {
		t.Fatalf("job list = %+v", views)
	}
	if r404, _ := http.Get(ts.URL + "/jobs/nope"); r404.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status = %d", r404.StatusCode)
	}
}

// TestKilledDaemonResumesByteIdentity is the tentpole acceptance check at the
// daemon layer: stop the daemon mid-campaign (the graceful twin of SIGKILL —
// the CI smoke test covers the literal kill -9), restart over the same state
// dir, and require the finished report to byte-match an uninterrupted run.
func TestKilledDaemonResumesByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three multi-minute virtual campaigns; fleet-level byte identity is covered by TestKilledAndResumedCampaignByteIdentity")
	}
	dir := t.TempDir()
	spec := testSpec()
	// Big enough that the daemon is reliably mid-campaign when stopped: the
	// simulator clears tens of device-seconds per wall millisecond.
	spec.Devices = 20
	spec.DurationMS = 600_000
	want := cliBytes(t, oneShot(t, spec))

	s1 := newTestServer(t, dir)
	s1.Start()
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one shard merge, then pull the plug mid-job.
	waitFor(t, "first shard merge", func() bool {
		j, _ := s1.Job(id)
		return j.view().Done >= 2
	})
	s1.Stop()

	data, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var f jobFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.State != StateQueued {
		t.Fatalf("interrupted job persisted as %q, want queued", f.State)
	}
	if f.Progress == nil || f.Progress.Merged == nil {
		t.Fatal("interrupted job persisted no resumable progress")
	}
	if f.Progress.Merged.Devices >= spec.Devices {
		t.Fatal("job finished before the daemon stopped; interruption not exercised")
	}

	s2 := newTestServer(t, dir)
	if err := s2.LoadState(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Stop()
	waitFor(t, "resumed job completion", func() bool {
		j, ok := s2.Job(id)
		return ok && j.view().State == StateDone
	})

	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("killed+resumed daemon report differs from uninterrupted run")
	}

	// IDs continue past everything on disk.
	id2, err := s2.Submit(JobSpec{Type: TypeTorture, Programs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "job-2" {
		t.Fatalf("post-resume job id = %q, want job-2", id2)
	}
}

// TestCancelJobs covers both cancellation paths: a queued job dies
// immediately; a running job is interrupted and lands in cancelled.
func TestCancelJobs(t *testing.T) {
	s := newTestServer(t, "")
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	long := testSpec()
	long.Devices = 20
	long.DurationMS = 600_000
	running, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to start", func() bool {
		j, _ := s.Job(running)
		return j.view().State == StateRunning
	})
	queued, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/jobs/"+queued+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued job: status %d", resp.StatusCode)
	}
	if j, _ := s.Job(queued); j.view().State != StateCancelled {
		t.Fatalf("queued job state = %s after cancel", j.view().State)
	}

	if err := s.Cancel(running); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "running job to cancel", func() bool {
		j, _ := s.Job(running)
		return j.view().State == StateCancelled
	})
	if err := s.Cancel(running); err == nil {
		t.Fatal("cancelling a terminal job succeeded")
	}
}

// TestTortureJob runs the second job family end to end.
func TestTortureJob(t *testing.T) {
	s := newTestServer(t, "")
	s.Start()
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := postJob(t, ts, JobSpec{Type: TypeTorture, Kind: torture.KindDifferential, Programs: 5, Seed: 3})
	waitFor(t, "torture job completion", func() bool {
		j, _ := s.Job(id)
		return j.view().State == StateDone
	})
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep torture.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Programs != 5 {
		t.Fatalf("torture report programs = %d", rep.Programs)
	}
}

// TestShardedTortureResumesByteIdentity extends the kill/resume contract to
// the torture job family: a crash-consistency campaign cut into program
// shards, interrupted mid-job and finished by a fresh daemon, must serve
// exactly the bytes of a one-shot torture.Run of the whole campaign.
func TestShardedTortureResumesByteIdentity(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Type: TypeTorture, Kind: torture.KindBrownout, Programs: 16, Seed: 9, ShardPrograms: 2}

	cfg, err := spec.tortureConfig(2) // newTestServer runners use 2 workers
	if err != nil {
		t.Fatal(err)
	}
	whole, err := torture.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(whole); err != nil {
		t.Fatal(err)
	}

	s1 := newTestServer(t, dir)
	s1.Start()
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one shard merge, then pull the plug mid-campaign.
	waitFor(t, "first torture shard merge", func() bool {
		j, _ := s1.Job(id)
		return j.view().Done >= 2
	})
	s1.Stop()

	data, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var f jobFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.State != StateQueued {
		t.Fatalf("interrupted torture job persisted as %q, want queued", f.State)
	}
	if f.Progress == nil || f.Progress.TortureMerged == nil {
		t.Fatal("interrupted torture job persisted no resumable shard union")
	}
	if f.Progress.TortureMerged.Programs >= spec.Programs {
		t.Fatal("job finished before the daemon stopped; interruption not exercised")
	}

	s2 := newTestServer(t, dir)
	if err := s2.LoadState(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Stop()
	waitFor(t, "resumed torture job completion", func() bool {
		j, ok := s2.Job(id)
		return ok && j.view().State == StateDone
	})

	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("killed+resumed torture campaign differs from one-shot run")
	}
}

// TestSubmitValidation rejects malformed specs at the door, and the report
// endpoint refuses jobs that are not done.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, spec := range map[string]JobSpec{
		"unknown app":  {Apps: []string{"no-such-app"}},
		"unknown mode": {Mode: "ring0"},
		"unknown type": {Type: "cron"},
		"unknown kind": {Type: TypeTorture, Kind: "gentle"},
	} {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Queued (scheduler never started) job has no report yet.
	id, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report of queued job: status %d, want 409", resp.StatusCode)
	}
}

// TestMetricsOnSameMux: the obs registry rides the job mux, so one port
// serves both the API and scrapes.
func TestMetricsOnSameMux(t *testing.T) {
	s := newTestServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"amulet_fleetd_jobs_submitted_total",
		"amulet_fleetd_shards_merged_total",
	} {
		if !strings.Contains(buf.String(), metric) {
			t.Errorf("metrics page missing %s", metric)
		}
	}
}

// TestPersistedFilesAreAtomic: no .tmp residue survives a persist, and the
// state file decodes cleanly at every observation point during a run.
func TestPersistedFilesAreAtomic(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir)
	s.Start()
	defer s.Stop()
	id, err := s.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job completion", func() bool {
		j, _ := s.Job(id)
		if data, err := os.ReadFile(filepath.Join(dir, id+".json")); err == nil {
			var f jobFile
			if jsonErr := json.Unmarshal(data, &f); jsonErr != nil {
				t.Fatalf("torn state file mid-run: %v", jsonErr)
			}
		}
		return j.view().State == StateDone
	})
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if fmt.Sprintf("%s.json", id) != entries[0].Name() {
		t.Fatalf("unexpected state file %s", entries[0].Name())
	}
}
