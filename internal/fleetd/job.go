// Package fleetd implements fleet-as-a-service: a long-running daemon that
// accepts fleet and torture campaigns as JSON jobs over HTTP, schedules them
// across a shared worker pool with a persistent build cache, streams progress
// as NDJSON, and checkpoints campaign state so a killed daemon resumes where
// it left off — with final reports byte-identical to one-shot CLI runs.
package fleetd

import (
	"fmt"
	"strings"
	"sync"

	"amuletiso"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/fleet"
	"amuletiso/internal/kernel"
	"amuletiso/internal/torture"
)

// Job types.
const (
	TypeFleet   = "fleet"
	TypeTorture = "torture"
)

// Job states. queued → running → one of the three terminal states; a killed
// daemon re-queues running jobs on resume.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobSpec is the wire form of a submitted campaign. Zero values take the
// same defaults as the amuletfleet CLI flags, so a spec of {} runs the
// canonical 100-device MPU minute and GET /jobs/{id}/report byte-matches
// `amuletfleet -json`.
type JobSpec struct {
	Name string `json:"name,omitempty"`
	// Type selects the campaign family: "fleet" (default) or "torture".
	Type string `json:"type,omitempty"`

	// Fleet campaigns (defaults in parentheses mirror amuletfleet flags).
	Apps           []string `json:"apps,omitempty"`       // (full nine-app suite)
	Mode           string   `json:"mode,omitempty"`       // ("mpu")
	DurationMS     uint64   `json:"durationMS,omitempty"` // (60000)
	Devices        int      `json:"devices,omitempty"`    // (100)
	FirstDevice    int      `json:"firstDevice,omitempty"`
	Seed           uint64   `json:"seed,omitempty"` // (1)
	ButtonEveryMS  uint64   `json:"buttonEveryMS,omitempty"`
	FaultEveryMS   uint64   `json:"faultEveryMS,omitempty"`
	FaultApp       int      `json:"faultApp,omitempty"`
	MaxFaults      *int     `json:"maxFaults,omitempty"` // (3)
	BackoffMS      *uint64  `json:"backoffMS,omitempty"` // (1000)
	WatchdogBudget uint64   `json:"watchdogBudget,omitempty"`
	FaultTrace     bool     `json:"faultTrace,omitempty"`
	// Intermittent power: a harvest trace spec ("solar", "kinetic:2.5", ...)
	// or a forced brownout period, exactly as the amuletfleet flags.
	PowerTrace      string `json:"powerTrace,omitempty"`
	BrownoutEveryMS uint64 `json:"brownoutEveryMS,omitempty"`
	BrownoutOffMS   uint64 `json:"brownoutOffMS,omitempty"`
	// ShardDevices overrides the server's scheduling shard size for this job
	// (devices per sequentially-scheduled, checkpointable shard).
	ShardDevices int `json:"shardDevices,omitempty"`

	// Torture campaigns.
	Kind            string `json:"kind,omitempty"`     // ("differential")
	Programs        int    `json:"programs,omitempty"` // (1000)
	First           int    `json:"first,omitempty"`
	RestrictedEvery *int   `json:"restrictedEvery,omitempty"` // (kind default)
	Shrink          *bool  `json:"shrink,omitempty"`          // (true)
	// ShardPrograms overrides the server's torture shard size for this job
	// (programs per sequentially-scheduled, mergeable shard).
	ShardPrograms int `json:"shardPrograms,omitempty"`
}

// kind normalizes the job type.
func (s *JobSpec) kind() string {
	if s.Type == "" {
		return TypeFleet
	}
	return s.Type
}

// scenario resolves a fleet spec against the bundled app registry, applying
// the amuletfleet flag defaults so daemon-run reports byte-match CLI runs.
func (s *JobSpec) scenario() (fleet.Scenario, error) {
	var list []apps.App
	if len(s.Apps) == 0 {
		list = amuletiso.Suite()
	} else {
		for _, name := range s.Apps {
			app, ok := amuletiso.AppByName(strings.TrimSpace(name))
			if !ok {
				return fleet.Scenario{}, fmt.Errorf("fleetd: no bundled app %q", name)
			}
			list = append(list, app)
		}
	}
	modeName := s.Mode
	if modeName == "" {
		modeName = "mpu"
	}
	var mode cc.Mode
	found := false
	for _, m := range cc.Modes {
		if strings.EqualFold(m.String(), modeName) {
			mode, found = m, true
			break
		}
	}
	if !found {
		return fleet.Scenario{}, fmt.Errorf("fleetd: unknown mode %q", s.Mode)
	}
	name := s.Name
	if name == "" {
		name = "fleet"
	}
	devices := s.Devices
	if devices == 0 {
		devices = 100
	}
	duration := s.DurationMS
	if duration == 0 {
		duration = 60_000
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	maxFaults := 3
	if s.MaxFaults != nil {
		maxFaults = *s.MaxFaults
	}
	backoff := uint64(1000)
	if s.BackoffMS != nil {
		backoff = *s.BackoffMS
	}
	return fleet.Scenario{
		Name:            name,
		Apps:            list,
		Mode:            mode,
		DurationMS:      duration,
		Devices:         devices,
		FirstDevice:     s.FirstDevice,
		Seed:            seed,
		ButtonEveryMS:   s.ButtonEveryMS,
		FaultEveryMS:    s.FaultEveryMS,
		FaultApp:        s.FaultApp,
		WatchdogBudget:  s.WatchdogBudget,
		FaultTrace:      s.FaultTrace,
		PowerTrace:      s.PowerTrace,
		BrownoutEveryMS: s.BrownoutEveryMS,
		BrownoutOffMS:   s.BrownoutOffMS,
		Policy:          &kernel.RestartPolicy{MaxFaults: maxFaults, BackoffMS: backoff},
	}, nil
}

// tortureConfig resolves a torture spec onto the campaign defaults.
func (s *JobSpec) tortureConfig(workers int) (torture.Config, error) {
	kind := s.Kind
	if kind == "" {
		kind = torture.KindDifferential
	}
	cfg := torture.DefaultConfig(kind)
	cfg.Workers = workers
	if s.Programs > 0 {
		cfg.Programs = s.Programs
	}
	cfg.First = s.First
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.RestrictedEvery != nil {
		cfg.RestrictedEvery = *s.RestrictedEvery
	}
	if s.Shrink != nil {
		cfg.Shrink = *s.Shrink
	}
	return cfg, nil
}

// validate rejects specs the scheduler could not run, without building.
func (s *JobSpec) validate() error {
	switch s.kind() {
	case TypeFleet:
		_, err := s.scenario()
		return err
	case TypeTorture:
		cfg, err := s.tortureConfig(0)
		if err != nil {
			return err
		}
		switch cfg.Kind {
		case torture.KindDifferential, torture.KindAdversarial, torture.KindHosted, torture.KindBrownout:
			return nil
		default:
			return fmt.Errorf("fleetd: unknown torture kind %q", cfg.Kind)
		}
	default:
		return fmt.Errorf("fleetd: unknown job type %q", s.Type)
	}
}

// Job is one scheduled campaign and its live progress.
type Job struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`

	mu      sync.Mutex
	state   string
	errMsg  string
	done    int // devices (fleet) or programs (torture) finished
	total   int
	report  *fleet.Report
	torture *torture.Report
	// resume is the persisted progress a restarted daemon loaded for this
	// job: completed-shard merge plus the interrupted shard's cut.
	resume *jobProgress
	// cancelled marks a user cancel (vs. a daemon shutdown, which re-queues).
	cancelled bool
	cancel    func()

	// lines is the job's NDJSON stream history; changed is closed and
	// replaced on every append, waking blocked stream readers.
	lines   [][]byte
	changed chan struct{}

	// persistMu serializes state-file writes for this job: the flusher
	// goroutine and the scheduler both persist, and they must not share the
	// temp file mid-write.
	persistMu sync.Mutex
}

// JobView is the JSON shape of list/get responses.
type JobView struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State string  `json:"state"`
	Error string  `json:"error,omitempty"`
	Done  int     `json:"done"`
	Total int     `json:"total"`
}

func newJob(id string, spec JobSpec) *Job {
	return &Job{ID: id, Spec: spec, state: StateQueued, changed: make(chan struct{})}
}

func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{ID: j.ID, Spec: j.Spec, State: j.state, Error: j.errMsg,
		Done: j.done, Total: j.total}
}

// terminal reports whether the job reached a final state. Callers hold j.mu.
func (j *Job) terminalLocked() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
}

// appendLine records one NDJSON stream line (without trailing newline) and
// wakes readers.
func (j *Job) appendLine(line []byte) {
	j.mu.Lock()
	j.lines = append(j.lines, line)
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// setState transitions the job and wakes stream readers (terminal states end
// streams).
func (j *Job) setState(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}
