package torture

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
)

// TestDifferentialCampaign is the harness's core claim, in miniature: a
// campaign of generated programs must behave identically under every
// isolation model, with the unprotected baseline never slower than an
// instrumented build.
func TestDifferentialCampaign(t *testing.T) {
	cfg := DefaultConfig(KindDifferential)
	cfg.Programs = 150
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("differential failures:\n%s", rep.Summary())
	}
	if rep.Passed != cfg.Programs {
		t.Fatalf("passed %d of %d", rep.Passed, cfg.Programs)
	}
	// The paper's Figure 3 ordering must reproduce over generated programs:
	// the hybrid's single lower-bound compare costs less than SoftwareOnly's
	// two compares per access.
	if rep.OverheadPct["MPU"] >= rep.OverheadPct["SoftwareOnly"] {
		t.Errorf("overhead ordering violated: MPU %.2f%% >= SoftwareOnly %.2f%%",
			rep.OverheadPct["MPU"], rep.OverheadPct["SoftwareOnly"])
	}
	if rep.OverheadPct["MPU"] <= 0 {
		t.Errorf("MPU overhead %.2f%% should be positive", rep.OverheadPct["MPU"])
	}
}

// TestAdversarialCampaign asserts 100% of injected violations are trapped,
// each by the layer the oracle attributes.
func TestAdversarialCampaign(t *testing.T) {
	cfg := DefaultConfig(KindAdversarial)
	cfg.Programs = 150
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("adversarial failures:\n%s", rep.Summary())
	}
	if rep.Injected == 0 || rep.Trapped != rep.Injected {
		t.Fatalf("trapped %d of %d injected violations", rep.Trapped, rep.Injected)
	}
	// Both trap layers of the hybrid design must show up: the compiler's
	// lower-bound compare and the MPU's segment hardware.
	if rep.TrappedByLayer["MPU/"+string(LayerCompiler)] == 0 ||
		rep.TrappedByLayer["MPU/"+string(LayerMPU)] == 0 {
		t.Errorf("expected both MPU-mode layers to trap something: %v", rep.TrappedByLayer)
	}
	// SoftwareOnly must trap everything in software.
	for layer, n := range rep.TrappedByLayer {
		if strings.HasPrefix(layer, "SoftwareOnly/") && layer != "SoftwareOnly/"+string(LayerCompiler) {
			t.Errorf("SoftwareOnly trapped via unexpected layer %s (%d×)", layer, n)
		}
	}
}

// TestHostedCampaign runs adversarial handlers under the full AFT+kernel
// stack, reaching the layers standalone programs cannot: gate
// pointer-argument validation and the watchdog.
func TestHostedCampaign(t *testing.T) {
	cfg := DefaultConfig(KindHosted)
	cfg.Programs = 40
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("hosted failures:\n%s", rep.Summary())
	}
	if rep.Trapped != rep.Injected || rep.Injected == 0 {
		t.Fatalf("trapped %d of %d", rep.Trapped, rep.Injected)
	}
	for _, want := range []string{
		"MPU/" + string(LayerGate),
		"MPU/" + string(LayerWatchdog),
		"SoftwareOnly/" + string(LayerGate),
	} {
		if rep.TrappedByLayer[want] == 0 {
			t.Errorf("layer %s trapped nothing: %v", want, rep.TrappedByLayer)
		}
	}
}

// TestCampaignByteIdenticalAcrossWorkers asserts the report is a pure
// function of the config: same seed, any parallelism, same bytes.
func TestCampaignByteIdenticalAcrossWorkers(t *testing.T) {
	for _, kind := range []string{KindDifferential, KindAdversarial} {
		var blobs []string
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig(kind)
			cfg.Programs = 40
			cfg.Workers = workers
			rep, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, string(b))
		}
		if blobs[0] != blobs[1] {
			t.Errorf("%s: reports differ between 1 and 4 workers", kind)
		}
	}
}

// TestCampaignByteIdenticalWithDecodeCacheToggle is the predecode engine's
// differential guardrail: the same campaign run with the decode cache
// attached and with it disabled (-nodecodecache) must serialize to the same
// bytes — every generated program's exit state, cycle counts and layer
// attribution is independent of the execution engine.
func TestCampaignByteIdenticalWithDecodeCacheToggle(t *testing.T) {
	defer cpu.SetDecodeCache(true)
	for _, kind := range []string{KindDifferential, KindAdversarial, KindHosted} {
		n := 40
		if kind == KindHosted {
			n = 15 // kernel-hosted cases are an order of magnitude slower
		}
		if testing.Short() {
			n = n/4 + 1 // keep the -race -short CI job cheap
		}
		var blobs []string
		for _, cache := range []bool{true, false} {
			cpu.SetDecodeCache(cache)
			cfg := DefaultConfig(kind)
			cfg.Programs = n
			rep, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, string(b))
		}
		if blobs[0] != blobs[1] {
			t.Errorf("%s: reports differ between decode cache on and off", kind)
		}
	}
}

// TestCampaignSharding asserts disjoint shards reproduce the union run's
// per-case outcomes, like fleet device sharding.
func TestCampaignSharding(t *testing.T) {
	cfg := DefaultConfig(KindAdversarial)
	cfg.Programs = 30
	whole, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg
	half.First, half.Programs = 15, 15
	shard, err := Run(context.Background(), half)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Failed != 0 || whole.Failed != 0 {
		t.Fatal("unexpected failures")
	}
	if whole.Trapped != whole.Injected || shard.Trapped != shard.Injected {
		t.Fatal("shard trap accounting broken")
	}
}

// TestShrinkerPreservesFailureCategory plants a deliberate failure (an
// adversarial program executed under differential rules faults at runtime)
// and checks the shrinker finds a smaller program failing the same way.
func TestShrinkerPreservesFailureCategory(t *testing.T) {
	seed := caseSeed(0xBAD, 3)
	c, p := buildCaseProg(KindAdversarial, seed, false)
	c.Kind = KindDifferential // reinterpreting the attack as a benign program
	out := Execute(c)
	if out.Pass {
		t.Skip("attack escaped under differential modes; pick another seed")
	}
	shrunk := shrinkFailure(p, c, out.Category)
	if len(shrunk) >= len(c.Source) {
		t.Errorf("shrinker did not reduce: %d -> %d bytes", len(c.Source), len(shrunk))
	}
	again := Execute(&Case{Kind: KindDifferential, Seed: seed, Source: shrunk, Restricted: c.Restricted})
	if again.Pass || again.Category != out.Category {
		t.Errorf("shrunk case category %q, want %q (pass=%v)", again.Category, out.Category, again.Pass)
	}
}

// TestCaseSeedStability pins the seed derivation: corpus files and recorded
// campaign reports depend on it never changing.
func TestCaseSeedStability(t *testing.T) {
	if got := caseSeed(1, 0); got != 10905525725756348110 {
		t.Fatalf("caseSeed(1, 0) = %d; the derivation must stay fixed", got)
	}
	a := BuildCase(KindDifferential, caseSeed(1, 0), false)
	b := BuildCase(KindDifferential, caseSeed(1, 0), false)
	if a.Source != b.Source {
		t.Fatal("BuildCase is not deterministic")
	}
}

// TestRestrictedCasesCompileRestricted asserts restricted-dialect cases
// really stay inside original Amulet C.
func TestRestrictedCasesCompileRestricted(t *testing.T) {
	for i := 0; i < 8; i++ {
		c := BuildCase(KindDifferential, caseSeed(5, i), true)
		if _, err := cc.CompileProgram(unitName, c.Source, cc.ProgramOptions{Mode: cc.ModeFeatureLimited}); err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, c.Source)
		}
	}
}

// TestVectorHoleProbe pins the modeled hardware hole end to end: a store
// above main FRAM escapes the MPU hybrid (lower-bound check passes, segment
// hardware cannot see it) but SoftwareOnly's upper-bound compare traps it —
// exactly the asymmetry §2 of the paper builds its design on.
func TestVectorHoleProbe(t *testing.T) {
	src := `
int g0;
int main() {
    char *atkp = 0;
    atkp = atkp + 65416;
    *atkp = 1;
    return 7;
}
`
	res, err := runStandalone(src, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if res.stop != cpu.StopHalt || res.exit != 7 {
		t.Fatalf("MPU mode: expected the vector-table store to escape, got stop=%v exit=0x%04X fault=%v",
			res.stop, res.exit, res.fault)
	}
	res, err = runStandalone(src, cc.ModeSoftwareOnly)
	if err != nil {
		t.Fatal(err)
	}
	if classifyStandalone(res) != LayerCompiler {
		t.Fatalf("SoftwareOnly: expected the upper-bound compare to trap, got stop=%v exit=0x%04X",
			res.stop, res.exit)
	}
}
