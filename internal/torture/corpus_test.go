package torture

import "testing"

// TestCorpusReplay replays every committed case under testdata/ — shrunk
// generator outputs covering differential equivalence and each adversarial
// trap layer — so CI exercises the whole harness without a long campaign.
func TestCorpusReplay(t *testing.T) {
	cases, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 15 {
		t.Fatalf("corpus has %d cases; expected the committed set (~20)", len(cases))
	}
	kinds := map[string]int{}
	attacks := map[attackKind]int{}
	for _, c := range cases {
		out := Execute(c)
		if !out.Pass {
			t.Errorf("corpus case %s [%s]: %s\nexpected=%v observed=%v",
				c.Name, out.Category, out.Reason, out.Expected, out.Observed)
		}
		kinds[c.Kind]++
		if c.Attack != nil {
			attacks[c.Attack.Kind]++
			if len(out.Observed) == 0 {
				t.Errorf("corpus case %s produced no layer attribution", c.Name)
			}
		}
	}
	for _, kind := range []string{KindDifferential, KindAdversarial, KindHosted} {
		if kinds[kind] == 0 {
			t.Errorf("corpus has no %s cases", kind)
		}
	}
	for _, atk := range []attackKind{atkStore, atkLoad, atkOOBIndex, atkNullCall, atkGatePtr, atkSpin} {
		if attacks[atk] == 0 {
			t.Errorf("corpus has no %s reproducer", atk)
		}
	}
}

// TestCorpusMatchesCommitted regenerates the corpus from its seed and
// compares it against the committed testdata/ files: BuildCorpus must be a
// pure function of the seed, and the committed set must be its output (run
// `amulettorture -write-corpus internal/torture/testdata` after intentional
// generator changes).
func TestCorpusMatchesCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus regeneration shrinks ~16 reproducers; skipped in -short")
	}
	dir := t.TempDir()
	names, err := BuildCorpus(dir, CorpusSeed)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(names) || len(fresh) != len(committed) {
		t.Fatalf("regenerated %d cases, committed %d", len(fresh), len(committed))
	}
	for i := range fresh {
		if fresh[i].Name != committed[i].Name || fresh[i].Source != committed[i].Source {
			t.Errorf("case %s drifted from the committed corpus", fresh[i].Name)
		}
	}
}
