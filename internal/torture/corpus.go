package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The regression corpus: shrunk generator outputs committed under
// testdata/, replayed by a plain `go test` so CI exercises the whole
// pipeline — generation shapes, differential equivalence and adversarial
// layer attribution — without running a long campaign.

// CorpusSeed is the seed the committed corpus under testdata/ was built
// with; `amulettorture -write-corpus` regenerates the same files.
const CorpusSeed = 7

// WriteCase serializes a case to dir/<name>.json.
func WriteCase(dir string, c *Case) error {
	if c.Name == "" {
		return fmt.Errorf("torture: corpus case needs a name")
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, c.Name+".json"), append(data, '\n'), 0o644)
}

// LoadCorpus reads every case file under dir, sorted by file name.
func LoadCorpus(dir string) ([]*Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var cases []*Case
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		c := &Case{}
		if err := json.Unmarshal(data, c); err != nil {
			return nil, fmt.Errorf("torture: %s: %w", path, err)
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// BuildCorpus deterministically regenerates the committed corpus into dir:
// a slice of differential programs straight from the generator, plus
// adversarial and hosted reproducers shrunk to their minimal trapping form
// (the predicate preserves the full per-mode layer attribution). Returns
// the written case names.
func BuildCorpus(dir string, seed uint64) ([]string, error) {
	var names []string
	write := func(c *Case) error {
		names = append(names, c.Name)
		return WriteCase(dir, c)
	}

	// Differential: generator-shape regression cases, one per seed index,
	// every fourth in the restricted dialect.
	for i := 0; i < 8; i++ {
		c := BuildCase(KindDifferential, caseSeed(seed, i), i%4 == 0)
		c.Name = fmt.Sprintf("diff-%02d", i)
		c.Note = "generator output; replay asserts mode equivalence"
		if out := Execute(c); !out.Pass {
			return nil, fmt.Errorf("torture: corpus case %s fails: %s", c.Name, out.Reason)
		}
		if err := write(c); err != nil {
			return nil, err
		}
	}

	// Adversarial and hosted: walk the seed stream until every attack kind
	// has one reproducer, then shrink each to its minimal trapping form.
	wantAdv := []attackKind{atkStore, atkLoad, atkOOBIndex, atkNullCall}
	wantHosted := []attackKind{atkStore, atkOOBIndex, atkGatePtr, atkSpin}
	for _, family := range []struct {
		kind       string
		prefix     string
		wanted     []attackKind
		restricted func(i int) bool
	}{
		{KindAdversarial, "adv", wantAdv, func(i int) bool { return i%5 == 0 }},
		{KindHosted, "hosted", wantHosted, func(i int) bool { return false }},
	} {
		seen := map[attackKind]int{}
		for i, n := 0, 0; n < len(family.wanted)*2 && i < 400; i++ {
			c, p := buildCaseProg(family.kind, caseSeed(seed+0xAD, i), family.restricted(i))
			if c.Attack == nil || seen[c.Attack.Kind] >= 2 {
				continue
			}
			found := false
			for _, w := range family.wanted {
				if c.Attack.Kind == w {
					found = true
				}
			}
			if !found {
				continue
			}
			orig := Execute(c)
			if !orig.Pass {
				return nil, fmt.Errorf("torture: corpus seed %d (%s) fails: %s", c.Seed, c.Attack, orig.Reason)
			}
			min := shrinkProgram(p, func(cand *program) bool {
				o := Execute(programCase(cand, c))
				return o.Pass && layersEqual(o, orig)
			})
			mc := programCase(min, c)
			mc.Name = fmt.Sprintf("%s-%02d-%s", family.prefix, seen[c.Attack.Kind], c.Attack.Kind)
			mc.Note = fmt.Sprintf("shrunk reproducer: %s; replay asserts layer attribution", c.Attack)
			if err := write(mc); err != nil {
				return nil, err
			}
			seen[c.Attack.Kind]++
			n++
		}
	}
	return names, nil
}

// layersEqual reports whether two outcomes attribute every mode to the same
// layers.
func layersEqual(a, b *Outcome) bool {
	if len(a.Expected) != len(b.Expected) || len(a.Observed) != len(b.Observed) {
		return false
	}
	for m, l := range b.Expected {
		if a.Expected[m] != l {
			return false
		}
	}
	for m, l := range b.Observed {
		if a.Observed[m] != l {
			return false
		}
	}
	return true
}
