package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The regression corpus: shrunk generator outputs committed under
// testdata/, replayed by a plain `go test` so CI exercises the whole
// pipeline — generation shapes, differential equivalence and adversarial
// layer attribution — without running a long campaign.

// CorpusSeed is the seed the committed corpus under testdata/ was built
// with; `amulettorture -write-corpus` regenerates the same files.
const CorpusSeed = 7

// WriteCase serializes a case to dir/<name>.json.
func WriteCase(dir string, c *Case) error {
	if c.Name == "" {
		return fmt.Errorf("torture: corpus case needs a name")
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, c.Name+".json"), append(data, '\n'), 0o644)
}

// LoadCorpus reads every case file under dir, sorted by file name.
func LoadCorpus(dir string) ([]*Case, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var cases []*Case
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		c := &Case{}
		if err := json.Unmarshal(data, c); err != nil {
			return nil, fmt.Errorf("torture: %s: %w", path, err)
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// fusionCorpusCases are hand-written fusion-boundary regressions: programs
// whose compiled form is dense in fusion candidates (CMP+Jcc condition
// ladders, MOV#imm+ALU constant arithmetic, call-heavy PUSH traffic) with
// branch and call-return targets landing throughout the fused regions —
// including on the second halves of fused pairs. They replay as ordinary
// differential cases, and TestCorpusReplayAcrossEngines additionally replays
// every corpus case under the full {fused, unfused} × {certified, per-word}
// matrix, which is what locks these shapes down. (The deterministic
// jump-to-the-exact-second-half and gate/watchdog-mid-group cases live in
// internal/cpu and internal/kernel, where instruction layout is controlled
// by hand.)
var fusionCorpusCases = []struct {
	name, note, source string
	restricted         bool
}{
	{
		name: "fuse-00-branch-ladder",
		note: "fusion boundary: if/else ladders compile to CMP+Jcc chains whose taken branches land between fusion candidates",
		source: `int g0;
int g1;
int main() {
    int i; int acc; int j;
    acc = 0;
    for (i = 0; i < 29; i++) {
        if (i % 3 == 1) { acc = acc + i; } else {
            if (i % 5 == 0) { acc = acc + 2; } else { acc = acc - 1; }
        }
        j = 0;
        while (j < (i % 4)) { acc = acc + j; j = j + 1; }
    }
    g0 = acc;
    g1 = i * 3;
    return acc + g1;
}
`,
	},
	{
		name: "fuse-01-compare-dense",
		note: "fusion boundary: back-to-back comparisons against constants, re-entered from call returns",
		source: `int g0;
int cmp3(int a, int b) {
    if (a < b) { return 0 - 1; }
    if (a > b) { return 1; }
    return 0;
}
int main() {
    int i; int s;
    s = 0;
    for (i = 0 - 6; i < 7; i++) {
        s = s + cmp3(i, 0) * 4 + cmp3(i, 3);
        if (s == 2) { s = s + 9; }
        if (s != 2) { s = s - 1; }
    }
    g0 = s;
    return s;
}
`,
	},
	{
		name: "fuse-02-push-recursion",
		note: "fusion boundary: recursive calls exercise PUSH runs and returns landing after fused prologues",
		source: `int g0;
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    g0 = fib(9);
    return g0 + fib(5);
}
`,
	},
	{
		name:       "fuse-03-restricted-array-loop",
		note:       "fusion boundary: restricted-dialect array loop, MOV#imm+ALU bounds arithmetic under all four modes",
		restricted: true,
		source: `int g0;
int a[8];
int main() {
    int i; int t;
    t = 1;
    for (i = 0; i < 8; i++) {
        a[i] = t;
        t = t + a[i % 4];
        while (t > 19) { t = t - 13; }
    }
    g0 = t;
    return a[7] + t;
}
`,
	},
}

// jitCorpusCases are hand-written superblock-JIT regressions: programs whose
// compiled form is dense in the shapes the block lifter optimizes and in the
// boundaries that force deoptimization back to the interpreter. They replay
// as ordinary differential cases, and TestCorpusReplayAcrossEngines replays
// every corpus case across the {jit, nojit} axis of the engine matrix, which
// is what locks these shapes down. (The deterministic IRQ-mid-block,
// self-modifying-store and jump-into-interior reproducers live in
// internal/cpu, where instruction layout is controlled by hand; the
// gate-crossing and watchdog deopts ride the committed hosted-* cases.)
var jitCorpusCases = []struct {
	name, note, source string
	restricted         bool
}{
	{
		name: "jit-00-interior-entry",
		note: "jit boundary: loop back-edges land inside long straight-line runs, entering overlapping blocks at interior heads",
		source: `int g0;
int g1;
int main() {
    int i; int a; int b;
    a = 1; b = 2;
    for (i = 0; i < 23; i++) {
        a = a + b * 3 + 7;
        b = b + a / 5 + 1;
        a = a - b / 3;
        b = b + 11;
        a = a + b - 4;
        if (a > 900) { a = a - 811; }
    }
    g0 = a;
    g1 = b;
    return a + b;
}
`,
	},
	{
		name: "jit-01-store-dense",
		note: "jit boundary: a global store every few instructions splits every block into short atomic segments with folded absolute addresses",
		source: `int g0;
int g1;
int g2;
int g3;
int main() {
    int i;
    g0 = 0; g1 = 0; g2 = 0; g3 = 0;
    for (i = 0; i < 17; i++) {
        g0 = g0 + i;
        g1 = g0 * 2 + g1;
        g2 = g1 - g0 + 3;
        g3 = g3 + g2 % 7;
    }
    return g0 + g1 + g2 + g3;
}
`,
	},
	{
		name: "jit-02-flag-ladder",
		note: "jit boundary: chained comparisons and pure arithmetic runs exercise dead-flag elision against live CMP+Jcc consumers",
		source: `int g0;
int main() {
    int i; int s; int t;
    s = 0; t = 5;
    for (i = 0 - 8; i < 9; i++) {
        t = t + i * 2;
        s = s + t;
        if (t < 0) { s = s + 1; }
        if (t == 5) { s = s + 2; }
        if (t > 40) { s = s - 3; }
        if (s != 0) { t = t + 1; }
    }
    g0 = s;
    return s + t;
}
`,
	},
	{
		name:       "jit-03-call-dense",
		note:       "jit boundary: calls terminate blocks and return addresses head new ones; restricted dialect under all four modes",
		restricted: true,
		source: `int g0;
int a[6];
int addup(int n) {
    int j; int s;
    s = 0;
    for (j = 0; j < n; j++) { s = s + a[j]; }
    return s;
}
int main() {
    int i;
    for (i = 0; i < 6; i++) { a[i] = i * 3 + 1; }
    g0 = addup(6) + addup(3) + addup(1);
    return g0;
}
`,
	},
}

// BuildCorpus deterministically regenerates the committed corpus into dir:
// a slice of differential programs straight from the generator, plus
// adversarial and hosted reproducers shrunk to their minimal trapping form
// (the predicate preserves the full per-mode layer attribution), plus the
// hand-written fusion-boundary and superblock-JIT regressions above. Returns
// the written case names.
func BuildCorpus(dir string, seed uint64) ([]string, error) {
	var names []string
	write := func(c *Case) error {
		names = append(names, c.Name)
		return WriteCase(dir, c)
	}

	// Differential: generator-shape regression cases, one per seed index,
	// every fourth in the restricted dialect.
	for i := 0; i < 8; i++ {
		c := BuildCase(KindDifferential, caseSeed(seed, i), i%4 == 0)
		c.Name = fmt.Sprintf("diff-%02d", i)
		c.Note = "generator output; replay asserts mode equivalence"
		if out := Execute(c); !out.Pass {
			return nil, fmt.Errorf("torture: corpus case %s fails: %s", c.Name, out.Reason)
		}
		if err := write(c); err != nil {
			return nil, err
		}
	}

	// Adversarial and hosted: walk the seed stream until every attack kind
	// has one reproducer, then shrink each to its minimal trapping form.
	wantAdv := []attackKind{atkStore, atkLoad, atkOOBIndex, atkNullCall}
	wantHosted := []attackKind{atkStore, atkOOBIndex, atkGatePtr, atkSpin}
	for _, family := range []struct {
		kind       string
		prefix     string
		wanted     []attackKind
		restricted func(i int) bool
	}{
		{KindAdversarial, "adv", wantAdv, func(i int) bool { return i%5 == 0 }},
		{KindHosted, "hosted", wantHosted, func(i int) bool { return false }},
	} {
		seen := map[attackKind]int{}
		for i, n := 0, 0; n < len(family.wanted)*2 && i < 400; i++ {
			c, p := buildCaseProg(family.kind, caseSeed(seed+0xAD, i), family.restricted(i))
			if c.Attack == nil || seen[c.Attack.Kind] >= 2 {
				continue
			}
			found := false
			for _, w := range family.wanted {
				if c.Attack.Kind == w {
					found = true
				}
			}
			if !found {
				continue
			}
			orig := Execute(c)
			if !orig.Pass {
				return nil, fmt.Errorf("torture: corpus seed %d (%s) fails: %s", c.Seed, c.Attack, orig.Reason)
			}
			min := shrinkProgram(p, func(cand *program) bool {
				o := Execute(programCase(cand, c))
				return o.Pass && layersEqual(o, orig)
			})
			mc := programCase(min, c)
			mc.Name = fmt.Sprintf("%s-%02d-%s", family.prefix, seen[c.Attack.Kind], c.Attack.Kind)
			mc.Note = fmt.Sprintf("shrunk reproducer: %s; replay asserts layer attribution", c.Attack)
			if err := write(mc); err != nil {
				return nil, err
			}
			seen[c.Attack.Kind]++
			n++
		}
	}

	// Fusion-boundary and superblock-JIT regressions: hand-written, validated
	// before writing so a dialect or generator change cannot silently commit
	// a failing case.
	for _, fc := range append(append([]struct {
		name, note, source string
		restricted         bool
	}{}, fusionCorpusCases...), jitCorpusCases...) {
		c := &Case{
			Name:       fc.name,
			Kind:       KindDifferential,
			Seed:       seed,
			Restricted: fc.restricted,
			Source:     fc.source,
			Note:       fc.note,
		}
		if out := Execute(c); !out.Pass {
			return nil, fmt.Errorf("torture: corpus case %s fails: %s", c.Name, out.Reason)
		}
		if err := write(c); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// layersEqual reports whether two outcomes attribute every mode to the same
// layers.
func layersEqual(a, b *Outcome) bool {
	if len(a.Expected) != len(b.Expected) || len(a.Observed) != len(b.Observed) {
		return false
	}
	for m, l := range b.Expected {
		if a.Expected[m] != l {
			return false
		}
	}
	for m, l := range b.Observed {
		if a.Observed[m] != l {
			return false
		}
	}
	return true
}
