package torture

import (
	"fmt"

	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
)

// Layer names which part of the isolation machinery caught (or failed to
// catch) an adversarial access — the attribution the paper's design implies:
// compiler-inserted checks police everything below the app, the MPU polices
// everything above it, gates police pointers crossing the OS boundary, and
// the kernel watchdog polices runaway handlers.
type Layer string

// Layers, in the order the machinery gets a chance at an access.
const (
	LayerCompiler Layer = "compiler-check" // injected bound compare / bounds helper
	LayerMPU      Layer = "mpu-segment"    // hardware segment violation
	LayerGate     Layer = "kernel-gate"    // gate pointer-argument validation
	LayerWatchdog Layer = "watchdog"       // kernel cycle-budget kill
	LayerCPU      Layer = "cpu"            // decode/execute fault (no protection credit)
	LayerPower    Layer = "power-brownout" // power loss: supply fell below the brownout threshold
	LayerNone     Layer = "none"           // access went through unchecked
	// LayerVacuous marks a mode where the attack's effective address landed
	// inside the app's own region — not a violation, so nothing to assert.
	LayerVacuous Layer = "vacuous"
)

// attackKind enumerates the adversarial access shapes.
type attackKind string

// Attack kinds.
const (
	atkStore    attackKind = "store"     // forged char* store to an absolute address
	atkLoad     attackKind = "load"      // forged char* load from an absolute address
	atkOOBIndex attackKind = "oob-index" // unmasked array index far out of range
	atkNullCall attackKind = "null-call" // indirect call through a zeroed function pointer
	atkGatePtr  attackKind = "gate-ptr"  // hosted: forged pointer passed to an OS API gate
	atkSpin     attackKind = "spin"      // hosted: handler never yields
)

// attack describes one injected violation.
type attack struct {
	Kind   attackKind `json:"kind"`
	Addr   uint16     `json:"addr,omitempty"`   // store/load/gate-ptr target
	Index  int32      `json:"index,omitempty"`  // oob-index value
	Array  string     `json:"array,omitempty"`  // oob-index attacked array
	ArrLen int        `json:"arrLen,omitempty"` // oob-index attacked array length
	Write  bool       `json:"write,omitempty"`  // oob-index: store (vs load)
	Region string     `json:"region,omitempty"` // human label of the target region
	Probe  bool       `json:"probe,omitempty"`  // expected to ESCAPE (models a hardware hole)
}

// region is an address range adversarial targets are drawn from.
type region struct {
	lo, hi uint16
	name   string
}

// Target regions. Every one lies outside any generated program's data
// segment in every mode, so a hit is a genuine isolation violation. The
// CPU debug-port window (mem.DebugLo..DebugHi) is deliberately excluded:
// an escaped store there would halt the simulation rather than corrupt it.
var targetRegions = []region{
	{0x0200, 0x0FFE, "peripheral"},
	{mpu.RegCTL0, mpu.RegSAM, "mpu-regs"},
	{mem.InfoLo, mem.InfoHi, "infomem"},
	{mem.SRAMLo, mem.SRAMHi, "sram"},
	{mem.FRAMLo, mem.FRAMLo + 0x03FE, "os-code"},
	{0xF000, mem.FRAMHi - 1, "high-fram"},
}

// vectorRegion is the interrupt vector table: above main FRAM, so outside
// MPU coverage — the paper's complaint made concrete. Stores there escape
// the hybrid model (lower-bound check passes, MPU cannot see it) and are
// generated only as explicit "probe" cases that assert the documented hole.
var vectorRegion = region{mem.VectLo, 0xFFFE, "vectors"}

// generateAdversarial builds a program with one injected violation. A
// restricted-dialect program can only express the out-of-bounds array index
// (the attack original Amulet C's helper checks were built for); the full
// dialect adds forged pointers and indirect calls.
func generateAdversarial(seed uint64, restricted, hosted bool) *program {
	g := &caseGen{
		r:          newRNG(seed),
		restricted: restricted,
		hosted:     hosted,
		prog:       &program{seed: seed, restricted: restricted, hosted: hosted},
	}
	g.genGlobals()
	g.genHelpers()

	atk := &attack{}
	switch {
	case restricted:
		atk.Kind = atkOOBIndex
	case hosted:
		atk.Kind = pick(g.r, []attackKind{atkStore, atkStore, atkLoad, atkOOBIndex, atkGatePtr, atkGatePtr, atkSpin})
	default:
		atk.Kind = pick(g.r, []attackKind{atkStore, atkStore, atkStore, atkLoad, atkLoad, atkOOBIndex, atkOOBIndex, atkNullCall})
	}

	switch atk.Kind {
	case atkStore, atkLoad:
		reg := pick(g.r, targetRegions)
		if atk.Kind == atkStore && !hosted && g.r.chance(1, 8) {
			reg = vectorRegion
			atk.Probe = true // SoftwareOnly traps it; the MPU hybrid cannot
		}
		atk.Region = reg.name
		atk.Addr = reg.lo + uint16(g.r.intn(int(reg.hi-reg.lo)+1))
	case atkOOBIndex:
		// Pick a wild 16-bit index; the oracle classifies the effective
		// address per mode once the layout is known.
		atk.Index = int32(g.r.rangeInt(2048, 30000))
		if g.r.chance(1, 2) {
			atk.Index = -atk.Index
		}
		atk.Write = g.r.chance(2, 3)
		atk.Region = "computed"
	case atkGatePtr:
		// Below the app: OS data or SRAM — the lower-bound check every
		// validated gate performs catches both.
		reg := pick(g.r, []region{{mem.SRAMLo, mem.SRAMHi, "sram"},
			{mem.FRAMLo, mem.FRAMLo + 0x07FE, "os"}})
		atk.Region = reg.name
		atk.Addr = reg.lo + uint16(g.r.intn(int(reg.hi-reg.lo)+1))
	}

	atk.prepare(g)
	g.genEntry(atk)
	g.prog.attack = atk
	return g.prog
}

// prepare registers the globals an attack needs before the entry point is
// generated.
func (a *attack) prepare(g *caseGen) {
	switch a.Kind {
	case atkOOBIndex:
		length := pick(g.r, []int{4, 8})
		gv := &globalVar{name: "atkarr", typ: "int", arr: length}
		g.prog.globals = append(g.prog.globals, gv)
		a.Array = gv.name
		a.ArrLen = length
	case atkNullCall:
		// Never assigned: a zero word in the data segment.
		g.prog.rawGlobals = append(g.prog.rawGlobals, "int (*atkf)(int);")
	}
}

// emit renders the attack as trailing statements of the entry function.
func (a *attack) emit(g *caseGen, fn *function, s *genScope) []stmt {
	sink := varRef(g.prog.globals[0].name) // g0, always an int scalar
	switch a.Kind {
	case atkStore:
		fn.locals = append(fn.locals, localVar{name: "atkp", typ: "char *", init: lit(0)})
		return []stmt{
			&assign{varRef("atkp"), "=", &binary{"+", varRef("atkp"), lit(int32(a.Addr))}},
			&assign{&deref{"atkp"}, "=", lit(int32(g.r.rangeInt(1, 127)))},
		}
	case atkLoad:
		fn.locals = append(fn.locals, localVar{name: "atkp", typ: "char *", init: lit(0)})
		return []stmt{
			&assign{varRef("atkp"), "=", &binary{"+", varRef("atkp"), lit(int32(a.Addr))}},
			&assign{sink, "+=", &deref{"atkp"}},
		}
	case atkOOBIndex:
		fn.locals = append(fn.locals, localVar{name: "atki", typ: "int", init: lit(a.Index)})
		if a.Write {
			return []stmt{&assign{&rawIndex{a.Array, varRef("atki")}, "=", lit(7)}}
		}
		return []stmt{&assign{sink, "+=", &rawIndex{a.Array, varRef("atki")}}}
	case atkNullCall:
		return []stmt{&exprStmt{&call{"atkf", []expr{lit(1)}}}}
	case atkGatePtr:
		fn.locals = append(fn.locals, localVar{name: "atkp", typ: "char *", init: lit(0)})
		return []stmt{
			&assign{varRef("atkp"), "=", &binary{"+", varRef("atkp"), lit(int32(a.Addr))}},
			&exprStmt{&call{"amulet_log_write", []expr{varRef("atkp"), lit(2)}}},
		}
	case atkSpin:
		return []stmt{&rawStmt{"while (1) {\n    " + string(sink) + "++;\n}"}}
	}
	return nil
}

// appLayout is the per-mode compiled geometry the oracle classifies against.
type appLayout struct {
	dataLo, dataHi uint16 // [dataLo, dataHi): the app's data/stack segment
	osCodeLo       uint16 // lower bound legal for executable targets
}

// effectiveAddr computes the 16-bit address an attack actually touches under
// a given layout, replicating the CPU's wrapping address arithmetic.
func (a *attack) effectiveAddr(lay appLayout, arrAddr uint16) uint16 {
	switch a.Kind {
	case atkStore, atkLoad, atkGatePtr:
		return a.Addr
	case atkOOBIndex:
		return arrAddr + 2*uint16(a.Index) // int arrays scale by 2, mod 2^16
	}
	return 0
}

// predict is the oracle: which layer must catch this attack under the given
// isolation mode and layout? It mirrors the instrumentation rules exactly —
// SoftwareOnly compares both bounds in software; the MPU hybrid compares the
// lower bound in software and relies on segment hardware above the app
// (which covers main FRAM only); Feature-Limited routes array indices
// through the runtime helper.
func (a *attack) predict(mode string, lay appLayout, arrAddr uint16) Layer {
	switch a.Kind {
	case atkNullCall:
		// Target 0 is below every code bound; both checked modes compare.
		return LayerCompiler
	case atkSpin:
		return LayerWatchdog
	case atkGatePtr:
		// Generated gate targets are always below the app; every validated
		// gate's lower-bound compare traps them in both modes.
		return LayerGate
	case atkOOBIndex:
		if mode == "FeatureLimited" {
			return LayerCompiler // rt.bounds checks the index itself
		}
	}
	eff := a.effectiveAddr(lay, arrAddr)
	switch {
	case eff >= lay.dataLo && eff < lay.dataHi:
		return LayerVacuous // landed inside the app's own segment
	case eff < lay.dataLo:
		return LayerCompiler // the lower-bound compare both modes emit
	case mode == "SoftwareOnly":
		return LayerCompiler // upper-bound compare
	case eff <= mem.FRAMHi:
		return LayerMPU // segment 3 (or 1) forbids the access
	default:
		return LayerNone // above main FRAM: the documented MPU hole
	}
}

func (a *attack) String() string {
	switch a.Kind {
	case atkOOBIndex:
		return fmt.Sprintf("%s %s[%d] (%s)", a.Kind, a.Array, a.Index, a.Region)
	case atkNullCall, atkSpin:
		return string(a.Kind)
	default:
		return fmt.Sprintf("%s 0x%04X (%s)", a.Kind, a.Addr, a.Region)
	}
}
