package torture

import (
	"fmt"
	"strings"
)

// The generator works on a small AST of its own rather than raw source text:
// the shrinker needs to delete statements, simplify expressions and reduce
// loop bounds structurally, then re-render and re-test. The AST is far
// smaller than internal/cc's — it only spans the shapes the generator emits.

// expr is a generated expression.
type expr interface {
	render(sb *strings.Builder)
	clone() expr
}

// lit is an integer literal. Negative values render as (0 - n), matching the
// language's lack of negative literals.
type lit int32

func (l lit) render(sb *strings.Builder) {
	if l < 0 {
		fmt.Fprintf(sb, "(0 - %d)", -int64(l))
	} else {
		fmt.Fprintf(sb, "%d", int64(l))
	}
}
func (l lit) clone() expr { return l }

// varRef names a scalar variable (global, local or parameter).
type varRef string

func (v varRef) render(sb *strings.Builder) { sb.WriteString(string(v)) }
func (v varRef) clone() expr                { return v }

// index is arr[(idx) & mask] — the mask keeps every generated access in
// bounds, so well-formed programs never trip an isolation check. mask must be
// a power of two minus one and smaller than the array length.
type index struct {
	arr  string
	mask int
	idx  expr
}

func (x *index) render(sb *strings.Builder) {
	sb.WriteString(x.arr)
	sb.WriteString("[(")
	x.idx.render(sb)
	fmt.Fprintf(sb, ") & %d]", x.mask)
}
func (x *index) clone() expr { return &index{x.arr, x.mask, x.idx.clone()} }

// rawIndex is arr[idx] with no masking — only the adversarial generator
// emits it, to drive an access out of the app's memory region.
type rawIndex struct {
	arr string
	idx expr
}

func (x *rawIndex) render(sb *strings.Builder) {
	sb.WriteString(x.arr)
	sb.WriteString("[")
	x.idx.render(sb)
	sb.WriteString("]")
}
func (x *rawIndex) clone() expr { return &rawIndex{x.arr, x.idx.clone()} }

// deref is *ptr.
type deref struct{ ptr string }

func (d *deref) render(sb *strings.Builder) { sb.WriteString("*"); sb.WriteString(d.ptr) }
func (d *deref) clone() expr                { return &deref{d.ptr} }

// binary is (l op r). Division and modulo render the divisor as ((r) | 1),
// which can never be zero; shift counts are literal and small by
// construction. Everything is fully parenthesized so rendering never depends
// on precedence.
type binary struct {
	op   string
	l, r expr
}

func (b *binary) render(sb *strings.Builder) {
	sb.WriteString("(")
	b.l.render(sb)
	sb.WriteString(" ")
	sb.WriteString(b.op)
	sb.WriteString(" ")
	if b.op == "/" || b.op == "%" {
		sb.WriteString("((")
		b.r.render(sb)
		sb.WriteString(") | 1)")
	} else {
		b.r.render(sb)
	}
	sb.WriteString(")")
}
func (b *binary) clone() expr { return &binary{b.op, b.l.clone(), b.r.clone()} }

// unary is op x for - ! ~.
type unary struct {
	op string
	x  expr
}

func (u *unary) render(sb *strings.Builder) {
	sb.WriteString("(")
	sb.WriteString(u.op)
	u.x.render(sb)
	sb.WriteString(")")
}
func (u *unary) clone() expr { return &unary{u.op, u.x.clone()} }

// call invokes a generated helper function (or an OS API, hosted programs).
type call struct {
	fn   string
	args []expr
}

func (c *call) render(sb *strings.Builder) {
	sb.WriteString(c.fn)
	sb.WriteString("(")
	for i, a := range c.args {
		if i > 0 {
			sb.WriteString(", ")
		}
		a.render(sb)
	}
	sb.WriteString(")")
}
func (c *call) clone() expr {
	args := make([]expr, len(c.args))
	for i, a := range c.args {
		args[i] = a.clone()
	}
	return &call{c.fn, args}
}

// stmt is a generated statement.
type stmt interface {
	render(sb *strings.Builder, indent int)
	cloneStmt() stmt
}

func pad(sb *strings.Builder, indent int) { sb.WriteString(strings.Repeat("    ", indent)) }

// assign is lhs op rhs; — lhs is a scalar name, masked index or deref, op is
// "=" or a compound form.
type assign struct {
	lhs expr // varRef, *index, *rawIndex or *deref
	op  string
	rhs expr
}

func (a *assign) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	a.lhs.render(sb)
	sb.WriteString(" ")
	sb.WriteString(a.op)
	sb.WriteString(" ")
	a.rhs.render(sb)
	sb.WriteString(";\n")
}
func (a *assign) cloneStmt() stmt { return &assign{a.lhs.clone(), a.op, a.rhs.clone()} }

// incDec is x++; or x--;.
type incDec struct {
	name string
	op   string
}

func (s *incDec) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString(s.name)
	sb.WriteString(s.op)
	sb.WriteString(";\n")
}
func (s *incDec) cloneStmt() stmt { return &incDec{s.name, s.op} }

// exprStmt evaluates an expression for effect (calls, mostly).
type exprStmt struct{ x expr }

func (s *exprStmt) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	s.x.render(sb)
	sb.WriteString(";\n")
}
func (s *exprStmt) cloneStmt() stmt { return &exprStmt{s.x.clone()} }

// ifStmt is if (cond) { then } [else { else }].
type ifStmt struct {
	cond      expr
	then, alt []stmt
}

func (s *ifStmt) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString("if (")
	s.cond.render(sb)
	sb.WriteString(") {\n")
	for _, t := range s.then {
		t.render(sb, indent+1)
	}
	pad(sb, indent)
	if len(s.alt) > 0 {
		sb.WriteString("} else {\n")
		for _, t := range s.alt {
			t.render(sb, indent+1)
		}
		pad(sb, indent)
	}
	sb.WriteString("}\n")
}
func (s *ifStmt) cloneStmt() stmt {
	return &ifStmt{s.cond.clone(), cloneStmts(s.then), cloneStmts(s.alt)}
}

// forLoop is for (v = 0; v < n; v++) { body } — always terminating by
// construction, as long as body never writes v (the generator guarantees
// loop variables are reserved).
type forLoop struct {
	v    string
	n    int
	body []stmt
}

func (s *forLoop) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "for (%s = 0; %s < %d; %s++) {\n", s.v, s.v, s.n, s.v)
	for _, t := range s.body {
		t.render(sb, indent+1)
	}
	pad(sb, indent)
	sb.WriteString("}\n")
}
func (s *forLoop) cloneStmt() stmt { return &forLoop{s.v, s.n, cloneStmts(s.body)} }

// whileLoop is v = 0; while (v < n) { body; v++; } rendered as one unit.
type whileLoop struct {
	v    string
	n    int
	body []stmt
}

func (s *whileLoop) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	fmt.Fprintf(sb, "%s = 0;\n", s.v)
	pad(sb, indent)
	fmt.Fprintf(sb, "while (%s < %d) {\n", s.v, s.n)
	for _, t := range s.body {
		t.render(sb, indent+1)
	}
	pad(sb, indent+1)
	fmt.Fprintf(sb, "%s++;\n", s.v)
	pad(sb, indent)
	sb.WriteString("}\n")
}
func (s *whileLoop) cloneStmt() stmt { return &whileLoop{s.v, s.n, cloneStmts(s.body)} }

// retStmt is return x;.
type retStmt struct{ x expr }

func (s *retStmt) render(sb *strings.Builder, indent int) {
	pad(sb, indent)
	sb.WriteString("return ")
	s.x.render(sb)
	sb.WriteString(";\n")
}
func (s *retStmt) cloneStmt() stmt { return &retStmt{s.x.clone()} }

// rawStmt is literal source — the adversarial generator uses it for the
// attack preambles (pointer forging) that the benign grammar cannot express.
type rawStmt struct{ text string }

func (s *rawStmt) render(sb *strings.Builder, indent int) {
	for _, line := range strings.Split(strings.TrimRight(s.text, "\n"), "\n") {
		pad(sb, indent)
		sb.WriteString(line)
		sb.WriteString("\n")
	}
}
func (s *rawStmt) cloneStmt() stmt { return &rawStmt{s.text} }

func cloneStmts(ss []stmt) []stmt {
	out := make([]stmt, len(ss))
	for i, s := range ss {
		out[i] = s.cloneStmt()
	}
	return out
}

// globalVar is one file-scope variable of the generated program.
type globalVar struct {
	name string
	typ  string // "int", "uint", "char"
	arr  int    // 0 = scalar, else array length (a power of two)
	init []int32
}

func (g *globalVar) renderDecl(sb *strings.Builder) {
	sb.WriteString(g.typ)
	sb.WriteString(" ")
	sb.WriteString(g.name)
	if g.arr > 0 {
		fmt.Fprintf(sb, "[%d]", g.arr)
	}
	if len(g.init) > 0 {
		sb.WriteString(" = ")
		if g.arr > 0 {
			sb.WriteString("{ ")
			for i, v := range g.init {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(sb, "%d", v)
			}
			sb.WriteString(" }")
		} else {
			// Global initializers are constant expressions: the parser
			// accepts -N but not the (0 - N) form expressions use.
			fmt.Fprintf(sb, "%d", g.init[0])
		}
	}
	sb.WriteString(";\n")
}

// localVar is a declared local of a function body.
type localVar struct {
	name string
	typ  string
	init expr // nil = none
}

// function is one generated helper (or the entry point).
type function struct {
	name   string
	params []string // all int
	ret    string   // "int" or "void"
	locals []localVar
	body   []stmt
}

func (f *function) render(sb *strings.Builder) {
	sb.WriteString(f.ret)
	sb.WriteString(" ")
	sb.WriteString(f.name)
	sb.WriteString("(")
	for i, p := range f.params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("int ")
		sb.WriteString(p)
	}
	sb.WriteString(") {\n")
	for _, l := range f.locals {
		pad(sb, 1)
		sb.WriteString(l.typ)
		sb.WriteString(" ")
		sb.WriteString(l.name)
		if l.init != nil {
			sb.WriteString(" = ")
			l.init.render(sb)
		}
		sb.WriteString(";\n")
	}
	for _, s := range f.body {
		s.render(sb, 1)
	}
	sb.WriteString("}\n")
}

func (f *function) clone() *function {
	cp := &function{name: f.name, ret: f.ret}
	cp.params = append([]string(nil), f.params...)
	for _, l := range f.locals {
		lc := localVar{name: l.name, typ: l.typ}
		if l.init != nil {
			lc.init = l.init.clone()
		}
		cp.locals = append(cp.locals, lc)
	}
	cp.body = cloneStmts(f.body)
	return cp
}

// program is a complete generated unit, renderable to AmuletC source.
type program struct {
	seed       uint64
	restricted bool // uses only the restricted (Feature-Limited) dialect
	hosted     bool // entry point is handle_event, not main
	globals    []*globalVar
	rawGlobals []string // declarations the globalVar shape cannot express
	funcs      []*function
	entry      *function
	attack     *attack // non-nil for adversarial programs
}

// render produces the compilable source text.
func (p *program) render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// torture seed %d\n", p.seed)
	for _, g := range p.globals {
		g.renderDecl(&sb)
	}
	for _, raw := range p.rawGlobals {
		sb.WriteString(raw)
		sb.WriteString("\n")
	}
	for _, f := range p.funcs {
		sb.WriteString("\n")
		f.render(&sb)
	}
	sb.WriteString("\n")
	p.entry.render(&sb)
	return sb.String()
}

func (p *program) clone() *program {
	cp := &program{seed: p.seed, restricted: p.restricted, hosted: p.hosted, attack: p.attack}
	cp.rawGlobals = append([]string(nil), p.rawGlobals...)
	for _, g := range p.globals {
		gc := *g
		gc.init = append([]int32(nil), g.init...)
		cp.globals = append(cp.globals, &gc)
	}
	for _, f := range p.funcs {
		cp.funcs = append(cp.funcs, f.clone())
	}
	cp.entry = p.entry.clone()
	return cp
}
