package torture

// The shrinker reduces a program while preserving a predicate — "still fails
// with the same category" for campaign failures, "still traps with the same
// layer attribution" when minimizing corpus reproducers. It is greedy and
// deterministic: candidates are enumerated in a fixed order, the first
// accepted one restarts the scan, and the total number of evaluations is
// bounded, so a given (program, predicate) always shrinks to the same
// minimum.

// maxShrinkEvals bounds predicate evaluations per shrink (each evaluation
// compiles and runs the candidate under every relevant mode).
const maxShrinkEvals = 1500

// shrinkProgram reduces p while keep(candidate) holds.
func shrinkProgram(p *program, keep func(*program) bool) *program {
	cur := p
	evals := 0
	for {
		improved := false
		for _, cand := range programCandidates(cur) {
			evals++
			if evals > maxShrinkEvals {
				return cur
			}
			if keep(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// programCandidates enumerates one-step reductions of p, most aggressive
// first. Every candidate is an independent clone.
func programCandidates(p *program) []*program {
	var out []*program

	// Drop a helper function entirely.
	for i := range p.funcs {
		c := p.clone()
		c.funcs = append(c.funcs[:i], c.funcs[i+1:]...)
		out = append(out, c)
	}
	// Drop a global (callers referencing it fail to compile and are
	// rejected by the predicate).
	for i := range p.globals {
		c := p.clone()
		c.globals = append(c.globals[:i], c.globals[i+1:]...)
		out = append(out, c)
	}
	for i := range p.rawGlobals {
		c := p.clone()
		c.rawGlobals = append(c.rawGlobals[:i], c.rawGlobals[i+1:]...)
		out = append(out, c)
	}

	// Reduce statements of the entry and of each helper.
	funcAt := func(c *program, fi int) *function {
		if fi < 0 {
			return c.entry
		}
		return c.funcs[fi]
	}
	for fi := -1; fi < len(p.funcs); fi++ {
		src := funcAt(p, fi)
		for _, body := range reduceList(src.body) {
			c := p.clone()
			funcAt(c, fi).body = body
			out = append(out, c)
		}
		// Drop a local declaration.
		for li := range src.locals {
			c := p.clone()
			f := funcAt(c, fi)
			f.locals = append(f.locals[:li], f.locals[li+1:]...)
			out = append(out, c)
		}
		// Simplify a local initializer to zero.
		for li, l := range src.locals {
			if l.init == nil {
				continue
			}
			if _, isLit := l.init.(lit); isLit {
				continue
			}
			c := p.clone()
			funcAt(c, fi).locals[li].init = lit(0)
			out = append(out, c)
		}
	}
	return out
}

// reduceList enumerates one-step reductions of a statement list: deleting a
// statement, splicing a control statement's body into its place, or
// simplifying a statement (recursively).
func reduceList(ss []stmt) [][]stmt {
	var out [][]stmt
	replace := func(i int, with ...stmt) []stmt {
		v := make([]stmt, 0, len(ss)-1+len(with))
		v = append(v, cloneStmts(ss[:i])...)
		v = append(v, with...)
		v = append(v, cloneStmts(ss[i+1:])...)
		return v
	}
	for i, s := range ss {
		out = append(out, replace(i)) // delete
		switch st := s.(type) {
		case *ifStmt:
			out = append(out, replace(i, cloneStmts(st.then)...)) // unwrap then
			if len(st.alt) > 0 {
				c := st.cloneStmt().(*ifStmt)
				c.alt = nil
				out = append(out, replace(i, c)) // drop else
			}
		case *forLoop:
			out = append(out, replace(i, cloneStmts(st.body)...))
			if st.n > 1 {
				c := st.cloneStmt().(*forLoop)
				c.n = 1
				out = append(out, replace(i, c))
			}
			for _, body := range reduceList(st.body) {
				c := st.cloneStmt().(*forLoop)
				c.body = body
				out = append(out, replace(i, c))
			}
		case *whileLoop:
			out = append(out, replace(i, cloneStmts(st.body)...))
			if st.n > 1 {
				c := st.cloneStmt().(*whileLoop)
				c.n = 1
				out = append(out, replace(i, c))
			}
			for _, body := range reduceList(st.body) {
				c := st.cloneStmt().(*whileLoop)
				c.body = body
				out = append(out, replace(i, c))
			}
		case *assign:
			if _, isLit := st.rhs.(lit); !isLit {
				c := st.cloneStmt().(*assign)
				c.rhs = lit(1)
				out = append(out, replace(i, c))
			}
		}
	}
	// Recurse into if-branches last (cheaper reductions first).
	for i, s := range ss {
		if st, ok := s.(*ifStmt); ok {
			for _, then := range reduceList(st.then) {
				c := st.cloneStmt().(*ifStmt)
				c.then = then
				out = append(out, replace(i, c))
			}
			for _, alt := range reduceList(st.alt) {
				c := st.cloneStmt().(*ifStmt)
				c.alt = alt
				out = append(out, replace(i, c))
			}
		}
	}
	return out
}

// programCase wraps a (possibly shrunk) program back into an executable
// case with tmpl's identity.
func programCase(p *program, tmpl *Case) *Case {
	return &Case{
		Name:       tmpl.Name,
		Kind:       tmpl.Kind,
		Seed:       tmpl.Seed,
		Restricted: p.restricted,
		Source:     p.render(),
		Attack:     p.attack,
		Note:       tmpl.Note,
	}
}

// shrinkFailure minimizes a failing case's program, preserving the failure
// category, and returns the minimal reproducer source.
func shrinkFailure(p *program, tmpl *Case, category string) string {
	min := shrinkProgram(p, func(cand *program) bool {
		o := Execute(programCase(cand, tmpl))
		return !o.Pass && o.Category == category
	})
	return min.render()
}
