package torture

import (
	"encoding/json"
	"fmt"

	"amuletiso/internal/aft"
	"amuletiso/internal/kernel"
)

// Brownout cases are differential crash-consistency campaigns: a hosted
// adversarial app runs under the full kernel, power is cut at a
// seed-determined virtual time, and the persistent state machine is asserted
// two ways. First, the pure pipeline — Checkpoint → PersistentCut →
// RebootImage — must be byte-identical (as canonical JSON) to a checkpoint
// of the live kernel actually rebooted through Resume; any divergence is
// attributed to the state section that leaked (pages, cpu, queue, ...).
// Second, the kernel's own fault log must attribute the power loss to the
// brownout class, feeding the same Expected/Observed layer oracle the
// adversarial campaigns use. Two rounds run per mode, so the second brownout
// hits a device that already rebooted once.

// brownoutRounds is how many consecutive power-loss cycles each mode takes.
const brownoutRounds = 2

// brownoutOffMS is how long each brownout keeps the case's device dark.
const brownoutOffMS = 500

// executeBrownout runs one crash-consistency case across the hosted mode
// matrix.
func executeBrownout(c *Case, out *Outcome) {
	out.Expected = map[string]Layer{}
	out.Observed = map[string]Layer{}
	// Seed-determined first cut point, at a coarse boundary so some EvInit
	// work has happened but the queue is usually non-trivial.
	cutMS := 500 * (1 + c.Seed%8) // 500..4000 ms
	for _, mode := range hostedModes {
		fw, err := aft.Build([]aft.AppSource{{Name: hostedAppName, Source: c.Source}}, mode)
		if err != nil {
			out.fail("compile-error", fmt.Sprintf("%v: %v", mode, err))
			return
		}
		tmpl := kernel.NewBootTemplate(fw)
		k := tmpl.NewKernel(uint32(c.Seed) | 1)
		k.WatchdogBudget = hostedWatchdog
		// Restart-friendly policy: the attack's fault must not permanently
		// kill the app, or the post-reboot kernel has nothing left to run.
		k.Policy = kernel.RestartPolicy{MaxFaults: 3, BackoffMS: 250}

		at := cutMS
		for round := 0; round < brownoutRounds; round++ {
			k.RunUntil(at)
			cut := tmpl.PersistentCut(tmpl.Checkpoint(k), at)
			restart := at + brownoutOffMS
			img := tmpl.RebootImage(cut, restart)
			k, err = tmpl.RebootFromCut(cut, restart, nil)
			if err != nil {
				out.fail("reboot-error", fmt.Sprintf("%v round %d: %v", mode, round, err))
				return
			}
			got := tmpl.Checkpoint(k)
			if section, diff := diverges(img, got); section != "" {
				out.fail("crash-divergence/"+section,
					fmt.Sprintf("%v round %d: rebooted kernel diverges from the persistent state machine in %s: %s",
						mode, round, section, diff))
				return
			}
			// The rebooted device must make progress: its EvInit queue (one
			// event per surviving app) has to deliver.
			alive := 0
			for _, a := range img.Apps {
				if a.Alive {
					alive++
				}
			}
			if n := k.RunUntil(restart); alive > 0 && n == 0 {
				out.fail("reboot-dead",
					fmt.Sprintf("%v round %d: %d apps survived the brownout but none re-initialized", mode, round, alive))
				return
			}
			at = restart + cutMS
		}

		// Attribution oracle: every fault the power model dealt must carry
		// the brownout class, and the newest one attributes to LayerPower.
		out.Expected[mode.String()] = LayerPower
		observed := LayerNone
		for _, f := range k.Faults {
			if f.App == -1 {
				observed = layerOfFaultClass(f.Class)
			}
		}
		out.Observed[mode.String()] = observed
		if observed != LayerPower {
			out.fail("brownout-attribution",
				fmt.Sprintf("%v: power-loss faults attribute to %s, want %s", mode, observed, LayerPower))
			return
		}
	}
}

// diverges compares two checkpoints section by section (as canonical JSON)
// and names the first state section that differs, or "" when identical.
func diverges(want, got *kernel.Checkpoint) (section, diff string) {
	check := func(name string, a, b any) bool {
		if section != "" {
			return false
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			section = name
			diff = fmt.Sprintf("want %s, got %s", clip(string(aj)), clip(string(bj)))
			return true
		}
		return false
	}
	check("pages", want.Pages, got.Pages)
	check("cpu", want.CPU, got.CPU)
	check("mpu", want.MPU, got.MPU)
	check("queue", want.Queue, got.Queue)
	check("apps", want.Apps, got.Apps)
	check("fault-log", want.Faults, got.Faults)
	check("display", want.Display, got.Display)
	if section == "" {
		// Catch-all over the scalar accounting (seq, rng, odometers, ...).
		check("accounting", want, got)
	}
	return section, diff
}

// clip bounds divergence diagnostics to something readable.
func clip(s string) string {
	const max = 200
	if len(s) > max {
		return s[:max] + "..."
	}
	return s
}
