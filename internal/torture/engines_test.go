package torture

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
	"amuletiso/internal/obs"
)

// engineCfg is one cell of the {threading, fusion, certificates, jit} matrix
// the battery sweeps. Threading, fusion and the superblock JIT are build-time
// properties (they shape the predecode cache and the compiled block plan),
// certificates a run-time one (they shape the fetch path).
type engineCfg struct {
	name                     string
	thread, fuse, certs, jit bool
}

// engineMatrix is all 16 cells, jit innermost so adjacent indices differ only
// on the JIT axis and the certified cells stay easy to enumerate.
var engineMatrix = buildEngineMatrix()

func buildEngineMatrix() []engineCfg {
	var m []engineCfg
	for _, thread := range []bool{true, false} {
		for _, fuse := range []bool{true, false} {
			for _, certs := range []bool{true, false} {
				for _, jit := range []bool{true, false} {
					name := map[bool]string{true: "threaded", false: "switch"}[thread] +
						map[bool]string{true: "+fused", false: "+unfused"}[fuse] +
						map[bool]string{true: "+certified", false: "+perword"}[certs] +
						map[bool]string{true: "+jit", false: "+nojit"}[jit]
					m = append(m, engineCfg{name, thread, fuse, certs, jit})
				}
			}
		}
	}
	return m
}

// resetEngines restores the production configuration.
func resetEngines() {
	isa.SetThreading(true)
	isa.SetFusion(true)
	mem.SetExecCerts(true)
	isa.SetJIT(true)
	mem.SetCOW(true)
}

// engineFP is everything one standalone run exposes: exit state, cycle and
// instruction counts, bus statistics, MPU violation state, final global
// bytes, and (when collected) a hash of the complete access trace.
type engineFP struct {
	stop    cpu.StopReason
	fault   string
	exit    uint16
	cycles  uint64
	insns   uint64
	r, w, f uint64
	viol    uint64
	flags   uint16
	globals string
	trace   uint64
}

// fingerprintStandalone compiles src under one engine configuration and runs
// it to completion. withTrace attaches a bus profiling hook hashing every
// access in order (which lawfully bypasses the certificate fast path, so
// trace comparisons exercise fusion while stats comparisons exercise both).
func fingerprintStandalone(t *testing.T, src string, mode cc.Mode, cfg engineCfg, withTrace bool) engineFP {
	t.Helper()
	defer resetEngines()
	isa.SetThreading(cfg.thread)
	isa.SetFusion(cfg.fuse)
	mem.SetExecCerts(cfg.certs)
	isa.SetJIT(cfg.jit)

	p, err := cc.CompileProgram(unitName, src, cc.ProgramOptions{
		Mode: mode, EnableMPU: mode == cc.ModeMPU,
	})
	if err != nil {
		t.Fatalf("%v/%s: %v\n%s", mode, cfg.name, err, src)
	}
	m := p.Load()
	h := fnv.New64a()
	if withTrace {
		m.Bus.OnAccess = func(a mem.Access) {
			fmt.Fprintf(h, "%d:%d:%d:%t;", a.Kind, a.Addr, a.Value, a.Byte)
		}
	}
	stop, fault := m.Run(defaultBudget)

	fp := engineFP{
		stop: stop, exit: m.CPU.ExitCode, cycles: m.CPU.Cycles, insns: m.CPU.Insns,
		viol: m.MPU.Violations(), flags: m.MPU.Flags(),
	}
	fp.r, fp.w, fp.f = m.Bus.Stats()
	if fault != nil {
		fp.fault = fault.Error()
	}
	if withTrace {
		fp.trace = h.Sum64()
	}
	var names []string
	for name := range p.Checked.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		g := p.Checked.Globals[name]
		addr := p.Image.MustSym(abi.SymGlobal(unitName, name))
		fmt.Fprintf(&sb, "%s=", name)
		for i := 0; i < g.Type.Size(); i++ {
			fmt.Fprintf(&sb, "%02x", m.Bus.Peek8(addr+uint16(i)))
		}
		sb.WriteString(";")
	}
	fp.globals = sb.String()
	return fp
}

// TestEngineEquivalenceBattery is the engine lockdown: generated torture
// programs — benign differential ones and fault-injecting adversarial ones —
// must be byte-identical across {threaded, switch} × {fused, unfused} ×
// {certified, per-word} × {jit, nojit} under every isolation mode: exit state, cycle
// counts, instruction counts, bus statistics, MPU violation state, final
// global bytes, and the complete access trace (compared across the threading
// and fusion axes; the certificate fast path is only taken when no profiler
// observes accesses, so traces cannot compare the certificate axis).
func TestEngineEquivalenceBattery(t *testing.T) {
	defer resetEngines()
	nDiff, nAdv := 20, 12
	if testing.Short() {
		nDiff, nAdv = 6, 4
	}
	run := func(kind string, n int, seedBase uint64) {
		for i := 0; i < n; i++ {
			restricted := i%4 == 1
			c := BuildCase(kind, caseSeed(seedBase, i), restricted)
			modes := diffModes(restricted)
			if kind == KindAdversarial {
				modes = advModes(restricted)
			}
			for _, mode := range modes {
				var ref engineFP
				for j, cfg := range engineMatrix {
					fp := fingerprintStandalone(t, c.Source, mode, cfg, false)
					if j == 0 {
						ref = fp
						continue
					}
					if fp != ref {
						t.Fatalf("%s case %d %v: %s diverged from %s\n  ref: %+v\n  got: %+v\n%s",
							kind, i, mode, cfg.name, engineMatrix[0].name, ref, fp, c.Source)
					}
				}
				// Trace pass under the profiling hook: the certified cells
				// of every {threading, fusion, jit} combination must produce
				// the identical access stream. (A profiler lawfully disables
				// both the certificate fast path and block execution, so this
				// also proves the jit entry check defers to the profiler.)
				ref = fingerprintStandalone(t, c.Source, mode, engineMatrix[0], true)
				for j, cfg := range engineMatrix {
					if j == 0 || !cfg.certs {
						continue
					}
					b := fingerprintStandalone(t, c.Source, mode, cfg, true)
					if ref != b {
						t.Fatalf("%s case %d %v: access traces diverged\n  %s: %+v\n  %s: %+v\n%s",
							kind, i, mode, engineMatrix[0].name, ref, cfg.name, b, c.Source)
					}
				}
			}
		}
	}
	run(KindDifferential, nDiff, 0x5EED)
	run(KindAdversarial, nAdv, 0xA77C)
}

// TestCampaignByteIdenticalAcrossEngines is the campaign-level guardrail
// behind the CI matrix legs: whole differential, adversarial and hosted
// campaigns serialize to the same bytes in every cell of the engine matrix
// (and with the decode cache off entirely), so `-nofuse` and
// `-nodecodecache` stay byte-identical forever.
func TestCampaignByteIdenticalAcrossEngines(t *testing.T) {
	defer func() {
		resetEngines()
		cpu.SetDecodeCache(true)
	}()
	for _, kind := range []string{KindDifferential, KindAdversarial, KindHosted} {
		n := 30
		if kind == KindHosted {
			n = 10
		}
		if testing.Short() {
			n = n/4 + 1
		}
		var ref string
		check := func(name string) {
			cfg := DefaultConfig(kind)
			cfg.Programs = n
			rep, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if ref == "" {
				ref = string(b)
				return
			}
			if string(b) != ref {
				t.Errorf("%s: %s report differs from %s", kind, name, engineMatrix[0].name)
			}
		}
		// Every engine cell runs twice — COW device memory and the flat-clone
		// oracle — so the -nocow hatch stays byte-identical across the whole
		// matrix, not just in the production cell.
		for _, cfg := range engineMatrix {
			isa.SetThreading(cfg.thread)
			isa.SetFusion(cfg.fuse)
			mem.SetExecCerts(cfg.certs)
			isa.SetJIT(cfg.jit)
			check(cfg.name)
			mem.SetCOW(false)
			check(cfg.name + "+nocow")
			mem.SetCOW(true)
		}
		resetEngines()
		cpu.SetDecodeCache(false)
		check("nodecodecache")
		cpu.SetDecodeCache(true)
		// The {obs, noobs} axis: campaign bytes must not depend on whether
		// flight recorders are armed or metrics enabled. Tracing only touches
		// kernel-hosted paths, so the production engine cell suffices.
		obs.SetTracing(true)
		check("obs")
		obs.SetTracing(false)
		obs.SetMetrics(false)
		check("noobs")
		obs.SetMetrics(true)
	}
}

// TestCorpusReplayAcrossEngines replays every committed corpus case —
// including the fusion-boundary reproducers — under the full engine matrix
// and the live-decode engine, asserting identical serialized outcomes.
func TestCorpusReplayAcrossEngines(t *testing.T) {
	defer func() {
		resetEngines()
		cpu.SetDecodeCache(true)
	}()
	cases, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		var ref string
		replay := func(name string) {
			out := Execute(c)
			b, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			if ref == "" {
				ref = string(b)
				return
			}
			if string(b) != ref {
				t.Errorf("corpus %s: outcome under %s differs:\n  ref: %s\n  got: %s",
					c.Name, name, ref, b)
			}
		}
		for _, cfg := range engineMatrix {
			isa.SetThreading(cfg.thread)
			isa.SetFusion(cfg.fuse)
			mem.SetExecCerts(cfg.certs)
			isa.SetJIT(cfg.jit)
			replay(cfg.name)
		}
		resetEngines()
		cpu.SetDecodeCache(false)
		replay("nodecodecache")
		cpu.SetDecodeCache(true)
		// Tracing-armed replay: identical outcomes, and hosted cases
		// additionally run the flight-recorder second-witness check inside
		// executeHosted (a recorder/oracle disagreement fails the case).
		obs.SetTracing(true)
		replay("obs")
		obs.SetTracing(false)
	}
}
