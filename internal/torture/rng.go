// Package torture is the whole-program fuzzing and differential-execution
// harness for the reproduction: a seeded generator emits random but
// well-formed AmuletC programs (statements, loops, branches, function calls,
// arrays, pointers, global state), compiles each through the real pipeline
// (cc → asm → image), runs it on the simulated CPU under several isolation
// modes and asserts mode equivalence — the paper's core claim that hybrid
// MPU+compiler isolation preserves application semantics.
//
// A second, adversarial generator deliberately emits out-of-region loads,
// stores and jumps and asserts that the isolation machinery traps every one,
// attributing the catch to the layer responsible (compiler-inserted check,
// MPU segment, kernel gate, or watchdog). Failing cases shrink to a minimal
// reproducer and serialize to testdata/ for replay.
//
// Campaigns fan out over the internal/fleet worker pool; a campaign report
// is a pure function of (seed, config) — byte-identical across runs and
// worker counts.
package torture

// rng is a deterministic SplitMix64 pseudo-random source. The harness owns
// its generator (rather than using math/rand) so that a seed reproduces the
// exact same program stream on every Go release, forever — corpus files and
// campaign reports depend on it.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64-bit word of the stream.
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	x := r.state
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// intn returns a uniform int in [0, n). n must be positive.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a uniform int in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }

// pick returns a random element of choices.
func pick[T any](r *rng, choices []T) T { return choices[r.intn(len(choices))] }

// caseSeed derives the seed of case i of a campaign from the campaign seed.
// Like fleet.DeviceSeed, the derivation is position-based, so a case's
// program does not depend on which worker generates it or in what order.
func caseSeed(campaignSeed uint64, index int) uint64 {
	r := rng{state: campaignSeed + uint64(index) + 1}
	s := r.next()
	if s == 0 {
		s = 0xA5A5A5A5A5A5A5A5
	}
	return s
}
