package torture

import (
	"testing"

	"amuletiso/internal/kernel"
	"amuletiso/internal/obs"
)

// TestRecorderSecondWitness replays the committed corpus with tracing armed:
// every hosted case then runs executeHosted's flight-recorder cross-check —
// the recorder's fault event must attribute the same FaultClass as the
// kernel's fault record, or the case fails as recorder-mismatch. A green
// replay is the corpus-level assertion that the recorder is a faithful
// second witness to the attribution oracle.
func TestRecorderSecondWitness(t *testing.T) {
	obs.SetTracing(true)
	defer obs.SetTracing(false)
	cases, err := LoadCorpus("testdata")
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	for _, c := range cases {
		if c.Kind != KindHosted {
			continue
		}
		hosted++
		out := Execute(c)
		if !out.Pass {
			t.Errorf("hosted corpus case %s under tracing: [%s] %s",
				c.Name, out.Category, out.Reason)
		}
	}
	if hosted == 0 {
		t.Fatal("corpus has no hosted cases; the second-witness check never ran")
	}
}

// TestLastFaultClass covers the dump-scanning helper the witness check uses.
func TestLastFaultClass(t *testing.T) {
	if _, ok := lastFaultClass(nil); ok {
		t.Fatal("empty dump should have no fault class")
	}
	evs := []obs.DumpEvent{
		{Kind: obs.KindDispatch.String()},
		{Kind: obs.KindFault.String(), A: uint16(kernel.FaultMPU)},
		{Kind: obs.KindGateCross.String()},
	}
	cls, ok := lastFaultClass(evs)
	if !ok || cls != kernel.FaultMPU {
		t.Fatalf("lastFaultClass = %v, %t; want mpu, true", cls, ok)
	}
}
