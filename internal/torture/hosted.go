package torture

import (
	"fmt"

	"amuletiso/internal/abi"
	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
	"amuletiso/internal/kernel"
	"amuletiso/internal/obs"
)

// hostedAppName is the application name hosted cases are built under.
const hostedAppName = "chaos"

// hostedWatchdog is the per-event cycle budget hosted cases run with — far
// above any benign handler, far below the kernel's production default, so
// spin attacks resolve quickly.
const hostedWatchdog = 2_000_000

// hostedModes are the isolation models hosted adversarial cases run under.
var hostedModes = []cc.Mode{cc.ModeMPU, cc.ModeSoftwareOnly}

// layerOfFaultClass maps the kernel's fault attribution onto harness layers.
func layerOfFaultClass(c kernel.FaultClass) Layer {
	switch c {
	case kernel.FaultCheck:
		return LayerCompiler
	case kernel.FaultGate:
		return LayerGate
	case kernel.FaultMPU:
		return LayerMPU
	case kernel.FaultWatchdog:
		return LayerWatchdog
	case kernel.FaultCPU:
		return LayerCPU
	case kernel.FaultBrownout:
		return LayerPower
	}
	return LayerNone
}

// lastFaultClass scans a recorder dump (oldest first) for the most recent
// fault event and decodes its class.
func lastFaultClass(evs []obs.DumpEvent) (kernel.FaultClass, bool) {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == obs.KindFault.String() {
			return kernel.FaultClass(evs[i].A), true
		}
	}
	return 0, false
}

// executeHosted runs an adversarial handle_event app under the full
// firmware toolchain and kernel, asserting the kernel's own fault
// attribution matches the oracle. This is the path that exercises the layer
// standalone programs cannot reach: the OS gates' pointer-argument
// validation, and the watchdog.
func executeHosted(c *Case, out *Outcome) {
	if c.Attack == nil {
		out.fail("bad-case", "hosted case without attack metadata")
		return
	}
	out.Expected = map[string]Layer{}
	out.Observed = map[string]Layer{}
	for _, mode := range hostedModes {
		fw, err := aft.Build([]aft.AppSource{{Name: hostedAppName, Source: c.Source}}, mode)
		if err != nil {
			out.fail("compile-error", fmt.Sprintf("%v: %v", mode, err))
			return
		}
		info := fw.Apps[0]
		lay := appLayout{dataLo: info.DataLo, dataHi: info.DataHi, osCodeLo: fw.Image.MustSym(abi.SymOSCodeLo)}
		// Sym, not MustSym: the shrinker may legitimately produce candidates
		// whose attacked array is gone, and the predicate must see a normal
		// outcome rather than a panic.
		var arrAddr uint16
		if c.Attack.Array != "" {
			if addr, ok := fw.Image.Sym(abi.SymGlobal(hostedAppName, c.Attack.Array)); ok {
				arrAddr = addr
			}
		}
		expected := c.Attack.predict(mode.String(), lay, arrAddr)

		// Template boot (not NewSeeded) so adversarial campaigns run on the
		// COW bus by default and the -nocow hatch leg exercises a real diff.
		k := kernel.NewBootTemplate(fw).NewKernel(uint32(c.Seed) | 1)
		k.WatchdogBudget = hostedWatchdog
		k.Policy = kernel.RestartPolicy{} // first fault is final
		k.Step()                          // deliver EvInit — the attack runs here

		observed := LayerNone
		if len(k.Faults) > 0 {
			observed = layerOfFaultClass(k.Faults[0].Class)
		}
		// Second witness: when a flight recorder is attached (tracing armed),
		// its fault event must attribute the same class the kernel's fault
		// record does — the recorder may never tell a different story than
		// the attribution oracle.
		if rec := k.Recorder(); rec != nil && len(k.Faults) > 0 {
			if cls, ok := lastFaultClass(rec.Dump(0)); !ok {
				out.fail("recorder-mismatch",
					fmt.Sprintf("%v: kernel recorded a fault but the flight recorder holds no fault event", mode))
				return
			} else if cls != k.Faults[0].Class {
				out.fail("recorder-mismatch",
					fmt.Sprintf("%v: flight recorder attributes %v, fault record %v",
						mode, cls, k.Faults[0].Class))
				return
			}
		}
		out.Expected[mode.String()] = expected
		out.Observed[mode.String()] = observed
		if expected == LayerVacuous {
			continue
		}
		if observed != expected {
			reason := "no fault recorded"
			if len(k.Faults) > 0 {
				reason = k.Faults[0].Reason
			}
			out.fail("adversarial-mismatch",
				fmt.Sprintf("%v: %s expected %s, observed %s (%s)",
					mode, c.Attack, expected, observed, reason))
			return
		}
	}
}
