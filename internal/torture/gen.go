package torture

import (
	"fmt"

	"amuletiso/internal/aft"
	"amuletiso/internal/cc"
)

// Generation limits. They are tuned to the compiler's own limits: the code
// generator evaluates expressions into eight callee-saved registers and
// rejects deeper trees, so expressions stay shallow and left-leaning, and
// every loop has a literal bound so generated programs always terminate.
const (
	maxExprDepth   = 2
	maxCtrlDepth   = 2
	maxLoopBound   = 6
	maxRecurseArg  = 4
	entryStmtsMin  = 4
	entryStmtsMax  = 10
	helperStmtsMax = 4
)

// arrRef is an in-scope array usable for masked (in-bounds) accesses.
type arrRef struct {
	name string
	mask int // power-of-two-minus-one, < array length
}

// ptrRef is an in-scope pointer into the middle of an array.
type ptrRef struct {
	name string
	mask int
}

// callRef is an in-scope callable.
type callRef struct {
	name      string
	nargs     int
	recursive bool // first argument is a literal depth budget
}

// genScope is what an expression may reference at a given point.
type genScope struct {
	ints   []string
	arrays []arrRef
	ptrs   []ptrRef
	calls  []callRef
}

// caseGen builds one random program.
type caseGen struct {
	r          *rng
	restricted bool
	hosted     bool
	prog       *program

	globalScope genScope // globals + helpers, visible everywhere
	labelN      int
}

func (g *caseGen) fresh(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

// generate builds a complete well-formed program for the seed.
func generate(seed uint64, restricted, hosted bool) *program {
	g := &caseGen{
		r:          newRNG(seed),
		restricted: restricted,
		hosted:     hosted,
		prog:       &program{seed: seed, restricted: restricted, hosted: hosted},
	}
	g.genGlobals()
	g.genHelpers()
	g.genEntry(nil)
	return g.prog
}

// BuildCase deterministically derives the case of (kind, seed, restricted).
// Generation is grammar-bounded but the compiler enforces limits the grammar
// cannot see exactly (the eight-register expression budget), so the builder
// probe-compiles each candidate and walks to the next derived seed on
// rejection — a pure function of its arguments, like everything else here.
func BuildCase(kind string, seed uint64, restricted bool) *Case {
	c, _ := buildCaseProg(kind, seed, restricted)
	return c
}

// buildCaseProg is BuildCase plus the underlying AST (the shrinker's input).
func buildCaseProg(kind string, seed uint64, restricted bool) (*Case, *program) {
	s := seed
	for attempt := 0; ; attempt++ {
		var p *program
		switch kind {
		case KindDifferential:
			p = generate(s, restricted, false)
		case KindAdversarial:
			p = generateAdversarial(s, restricted, false)
		case KindHosted, KindBrownout:
			p = generateAdversarial(s, false, true)
		default:
			return &Case{Kind: kind, Seed: seed}, nil
		}
		c := &Case{
			Kind:       kind,
			Seed:       seed,
			Restricted: p.restricted,
			Source:     p.render(),
			Attack:     p.attack,
		}
		if attempt >= 9 || probeCompile(c) == nil {
			return c, p
		}
		s = newRNG(s).next() // deterministic walk to the next candidate
	}
}

// probeCompile type-checks and code-generates a candidate in its cheapest
// applicable mode.
func probeCompile(c *Case) error {
	if c.Kind == KindHosted || c.Kind == KindBrownout {
		_, err := aft.Build([]aft.AppSource{{Name: hostedAppName, Source: c.Source}}, cc.ModeNoIsolation)
		return err
	}
	mode := cc.ModeNoIsolation
	if c.Restricted {
		mode = cc.ModeFeatureLimited
	}
	_, err := cc.CompileProgram(unitName, c.Source, cc.ProgramOptions{Mode: mode})
	return err
}

// genGlobals emits 2-4 scalars (mixed int/uint/char) and 1-2 int arrays.
// Global g0 always exists as an int accumulator ("sink") so loads always
// have somewhere observable to land.
func (g *caseGen) genGlobals() {
	n := g.r.rangeInt(2, 4)
	for i := 0; i < n; i++ {
		gv := &globalVar{name: fmt.Sprintf("g%d", i), typ: "int"}
		if i > 0 {
			switch {
			case g.r.chance(1, 4):
				gv.typ = "uint"
			case g.r.chance(1, 5):
				gv.typ = "char"
			}
		}
		if g.r.chance(7, 10) {
			gv.init = []int32{int32(g.r.rangeInt(-100, 100))}
			if gv.typ != "int" && gv.init[0] < 0 {
				gv.init[0] = -gv.init[0]
			}
		}
		g.prog.globals = append(g.prog.globals, gv)
		g.globalScope.ints = append(g.globalScope.ints, gv.name)
	}
	na := g.r.rangeInt(1, 2)
	for i := 0; i < na; i++ {
		length := pick(g.r, []int{4, 8, 16})
		gv := &globalVar{name: fmt.Sprintf("arr%d", i), typ: "int", arr: length}
		ninit := g.r.intn(length + 1)
		for j := 0; j < ninit; j++ {
			gv.init = append(gv.init, int32(g.r.rangeInt(-50, 50)))
		}
		g.prog.globals = append(g.prog.globals, gv)
		g.globalScope.arrays = append(g.globalScope.arrays, arrRef{gv.name, length - 1})
	}
}

// genHelpers emits 0-3 straight-line helper functions (each may call the
// previously defined ones), and, in the full dialect, sometimes a bounded
// recursive function and a global function pointer.
func (g *caseGen) genHelpers() {
	n := g.r.intn(4)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h%d", i)
		nargs := g.r.rangeInt(1, 2)
		fn := &function{name: name, ret: "int"}
		params := []string{"pa", "pb"}[:nargs]
		fn.params = params

		scope := genScope{
			ints:   append(append([]string{}, g.globalScope.ints...), params...),
			arrays: g.globalScope.arrays,
			calls:  g.globalScope.calls,
		}
		for j := 0; j < g.r.intn(3); j++ {
			lv := localVar{name: fmt.Sprintf("l%d", j), typ: "int", init: g.expr(1, &scope)}
			fn.locals = append(fn.locals, lv)
			scope.ints = append(scope.ints, lv.name)
		}
		fn.body = g.stmts(g.r.rangeInt(1, helperStmtsMax), 1, &scope, fn)
		fn.body = append(fn.body, &retStmt{g.expr(2, &scope)})

		g.prog.funcs = append(g.prog.funcs, fn)
		g.globalScope.calls = append(g.globalScope.calls, callRef{name, nargs, false})
	}

	if !g.restricted && g.r.chance(1, 4) {
		g.genRecursive()
	}
}

// genRecursive emits the bounded-recursion template: the depth argument is a
// literal at every outside call site and strictly decreases, so the stack
// stays within the AFT's 256-byte recursion default.
func (g *caseGen) genRecursive() {
	fn := &function{name: "rec0", ret: "int", params: []string{"d", "x"}}
	fn.body = []stmt{
		&ifStmt{
			cond: &binary{"<=", varRef("d"), lit(0)},
			then: []stmt{&retStmt{varRef("x")}},
		},
		&retStmt{&binary{"^",
			&call{"rec0", []expr{
				&binary{"-", varRef("d"), lit(1)},
				&binary{"+", varRef("x"), varRef("d")},
			}},
			lit(int32(g.r.rangeInt(1, 7)))}},
	}
	g.prog.funcs = append(g.prog.funcs, fn)
	g.globalScope.calls = append(g.globalScope.calls, callRef{"rec0", 2, true})
}

// genEntry emits the program's entry point: main() for standalone programs,
// handle_event(int, int) for kernel-hosted ones. extra, when non-nil, is
// appended after the benign body (the adversarial attack sequence).
func (g *caseGen) genEntry(extra *attack) {
	fn := &function{name: "main", ret: "int"}
	scope := genScope{
		ints:   append([]string{}, g.globalScope.ints...),
		arrays: g.globalScope.arrays,
		calls:  g.globalScope.calls,
	}
	if g.hosted {
		fn.name = "handle_event"
		fn.ret = "void"
		fn.params = []string{"ev", "arg"}
		scope.ints = append(scope.ints, "ev", "arg")
	}

	// A global function pointer, installed before any use. It enters the
	// callable scope only after the locals are generated: local initializers
	// run before the body's install statement, when fp0 is still zero.
	var fpInstall stmt
	if !g.restricted {
		if target, ok := g.pickFuncptrTarget(); ok && g.r.chance(1, 4) {
			g.prog.rawGlobals = append(g.prog.rawGlobals, "int (*fp0)(int);")
			fpInstall = &assign{varRef("fp0"), "=", varRef(target)}
		}
	}

	// Locals.
	nloc := g.r.rangeInt(2, 4)
	for j := 0; j < nloc; j++ {
		lv := localVar{name: fmt.Sprintf("v%d", j), typ: "int", init: g.expr(1, &scope)}
		fn.locals = append(fn.locals, lv)
		scope.ints = append(scope.ints, lv.name)
	}
	// A pointer into the middle of a global array (full dialect).
	if !g.restricted && len(scope.arrays) > 0 && g.r.chance(3, 10) {
		a := pick(g.r, scope.arrays)
		half := (a.mask + 1) / 2
		if half >= 2 {
			lv := localVar{name: "pt0", typ: "int *",
				init: &binary{"+", varRef(a.name), lit(int32(half))}}
			fn.locals = append(fn.locals, lv)
			scope.ptrs = append(scope.ptrs, ptrRef{"pt0", half - 1})
		}
	}

	var body []stmt
	if fpInstall != nil {
		body = append(body, fpInstall)
		scope.calls = append(scope.calls, callRef{"fp0", 1, false})
	}
	nst := g.r.rangeInt(entryStmtsMin, entryStmtsMax)
	if g.hosted {
		nst = g.r.rangeInt(2, 5)
	}
	body = append(body, g.stmts(nst, maxCtrlDepth, &scope, fn)...)
	if extra != nil {
		body = append(body, extra.emit(g, fn, &scope)...)
	}
	if !g.hosted {
		body = append(body, &retStmt{g.mixExpr(&scope)})
	}
	fn.body = body
	g.prog.entry = fn
}

// pickFuncptrTarget finds a one-argument helper for a function pointer.
func (g *caseGen) pickFuncptrTarget() (string, bool) {
	for _, c := range g.globalScope.calls {
		if c.nargs == 1 && !c.recursive {
			return c.name, true
		}
	}
	return "", false
}

// mixExpr folds every scalar in scope into one left-leaning checksum
// expression — left-leaning chains cost O(1) expression registers.
func (g *caseGen) mixExpr(s *genScope) expr {
	var e expr = lit(int32(g.r.rangeInt(0, 9)))
	for _, v := range s.ints {
		op := pick(g.r, []string{"+", "^", "-"})
		e = &binary{op, e, varRef(v)}
	}
	return e
}

// stmts emits n random statements at control-nesting depth d.
func (g *caseGen) stmts(n, d int, s *genScope, fn *function) []stmt {
	out := make([]stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(d, s, fn))
	}
	return out
}

// stmt emits one random statement.
func (g *caseGen) stmt(d int, s *genScope, fn *function) stmt {
	for {
		switch g.r.intn(16) {
		case 0, 1, 2, 3, 4: // scalar assignment
			op := pick(g.r, []string{"=", "=", "+=", "-=", "^=", "&=", "|="})
			return &assign{varRef(pick(g.r, s.ints)), op, g.expr(maxExprDepth, s)}
		case 5, 6: // array store (masked, always in bounds)
			if len(s.arrays) == 0 {
				continue
			}
			a := pick(g.r, s.arrays)
			lhs := &index{a.name, a.mask, g.expr(1, s)}
			return &assign{lhs, pick(g.r, []string{"=", "+=", "^="}), g.expr(2, s)}
		case 7: // pointer store
			if len(s.ptrs) == 0 {
				continue
			}
			p := pick(g.r, s.ptrs)
			if g.r.chance(1, 3) {
				return &assign{&deref{p.name}, "=", g.expr(2, s)}
			}
			return &assign{&index{p.name, p.mask, g.expr(1, s)}, "=", g.expr(2, s)}
		case 8, 9: // increment / decrement
			return &incDec{pick(g.r, s.ints), pick(g.r, []string{"++", "--"})}
		case 10, 11: // if / if-else
			if d <= 0 {
				continue
			}
			st := &ifStmt{
				cond: g.condExpr(s),
				then: g.stmts(g.r.rangeInt(1, 3), d-1, s, fn),
			}
			if g.r.chance(2, 5) {
				st.alt = g.stmts(g.r.rangeInt(1, 2), d-1, s, fn)
			}
			return st
		case 12, 13: // for loop
			if d <= 0 {
				continue
			}
			v := g.loopVar(fn)
			return &forLoop{v, g.r.rangeInt(1, maxLoopBound),
				g.stmts(g.r.rangeInt(1, 3), d-1, s, fn)}
		case 14: // while loop
			if d <= 0 {
				continue
			}
			v := g.loopVar(fn)
			return &whileLoop{v, g.r.rangeInt(1, maxLoopBound),
				g.stmts(g.r.rangeInt(1, 2), d-1, s, fn)}
		case 15: // call for effect
			if len(s.calls) == 0 {
				continue
			}
			return &exprStmt{g.callExpr(s)}
		}
	}
}

// loopVar reserves a loop counter local for fn. Loop counters are never
// assigned by generated statements (they are not added to scope.ints), so
// loops always terminate.
func (g *caseGen) loopVar(fn *function) string {
	name := fmt.Sprintf("i%d", len(fn.locals))
	fn.locals = append(fn.locals, localVar{name: name, typ: "int"})
	return name
}

// condExpr emits a branch condition: usually a comparison, sometimes a
// logical combination of two.
func (g *caseGen) condExpr(s *genScope) expr {
	c := g.cmpExpr(s)
	if g.r.chance(1, 4) {
		return &binary{pick(g.r, []string{"&&", "||"}), c, g.cmpExpr(s)}
	}
	return c
}

func (g *caseGen) cmpExpr(s *genScope) expr {
	op := pick(g.r, []string{"==", "!=", "<", "<=", ">", ">="})
	return &binary{op, g.expr(1, s), g.expr(1, s)}
}

// expr emits a random expression with at most depth nested binaries. Trees
// lean left (the right operand is at most one level deep), which keeps the
// compiler's register usage constant.
func (g *caseGen) expr(depth int, s *genScope) expr {
	if depth <= 0 || g.r.chance(3, 10) {
		return g.leaf(s)
	}
	switch g.r.intn(10) {
	case 0: // call
		if len(s.calls) > 0 {
			return g.callExpr(s)
		}
	case 1: // unary
		return &unary{pick(g.r, []string{"-", "~", "!"}), g.expr(depth-1, s)}
	case 2: // masked array read
		if len(s.arrays) > 0 {
			a := pick(g.r, s.arrays)
			return &index{a.name, a.mask, g.expr(1, s)}
		}
	case 3: // pointer read
		if len(s.ptrs) > 0 {
			p := pick(g.r, s.ptrs)
			if g.r.chance(1, 2) {
				return &deref{p.name}
			}
			return &index{p.name, p.mask, g.expr(1, s)}
		}
	}
	// Trees lean left: the right operand stays shallow, keeping the
	// compiler's expression-register usage bounded regardless of length.
	op := g.binOp()
	l := g.expr(depth-1, s)
	var r expr
	switch op {
	case "<<", ">>":
		r = lit(int32(g.r.intn(8))) // shift counts stay literal and small
	case "/", "%":
		r = g.leaf(s) // the rendered (r | 1) guard adds a level of its own
	default:
		r = g.expr(1, s)
	}
	return &binary{op, l, r}
}

func (g *caseGen) binOp() string {
	switch g.r.intn(10) {
	case 0, 1, 2:
		return pick(g.r, []string{"+", "-"})
	case 3:
		return "*"
	case 4:
		return pick(g.r, []string{"/", "%"})
	case 5, 6:
		return pick(g.r, []string{"&", "|", "^"})
	case 7:
		return pick(g.r, []string{"<<", ">>"})
	default:
		return pick(g.r, []string{"==", "!=", "<", "<=", ">", ">="})
	}
}

// leaf emits a literal, variable or masked array read.
func (g *caseGen) leaf(s *genScope) expr {
	switch g.r.intn(10) {
	case 0, 1, 2, 3:
		if g.r.chance(1, 8) {
			return lit(int32(g.r.rangeInt(-30000, 30000)))
		}
		return lit(int32(g.r.rangeInt(-100, 100)))
	case 4: // array read with trivial index
		if len(s.arrays) > 0 {
			a := pick(g.r, s.arrays)
			return &index{a.name, a.mask, lit(int32(g.r.intn(a.mask + 1)))}
		}
	}
	return varRef(pick(g.r, s.ints))
}

// callExpr emits a call to a random in-scope callable. Recursive callees get
// a literal depth budget as their first argument.
func (g *caseGen) callExpr(s *genScope) expr {
	c := pick(g.r, s.calls)
	args := make([]expr, c.nargs)
	for i := range args {
		args[i] = g.expr(1, s)
	}
	if c.recursive {
		args[0] = lit(int32(g.r.rangeInt(1, maxRecurseArg)))
	}
	return &call{c.name, args}
}
