package torture

import (
	"fmt"
	"sort"
	"strings"

	"amuletiso/internal/abi"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
)

// unitName is the compilation-unit name every standalone torture program
// gets; boundary and global symbols derive from it.
const unitName = "t"

// defaultBudget is the per-run cycle budget for standalone executions.
// Generated programs are loop-bounded and finish orders of magnitude below
// it; hitting it is a failure (a termination bug in the generator).
const defaultBudget = 20_000_000

// Case is one serializable torture case: the generated source plus what a
// replay needs. Cases are self-contained — corpus files under testdata/ are
// exactly this struct in JSON.
type Case struct {
	Name       string  `json:"name,omitempty"`
	Kind       string  `json:"kind"` // differential | adversarial | hosted
	Seed       uint64  `json:"seed"`
	Restricted bool    `json:"restricted,omitempty"`
	Source     string  `json:"source"`
	Attack     *attack `json:"attack,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// Case kinds.
const (
	KindDifferential = "differential"
	KindAdversarial  = "adversarial"
	KindHosted       = "hosted"
	KindBrownout     = "brownout"
)

// Outcome is the result of executing one case.
type Outcome struct {
	Index int    `json:"index"`
	Seed  uint64 `json:"seed"`
	Kind  string `json:"kind"`
	Pass  bool   `json:"pass"`
	// Category is a stable failure class ("exit-mismatch", "compile-error",
	// ...); the shrinker only accepts reductions that preserve it.
	Category string `json:"category,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Expected and Observed attribute the catching layer per mode
	// (adversarial and hosted cases).
	Expected map[string]Layer `json:"expected,omitempty"`
	Observed map[string]Layer `json:"observed,omitempty"`
	// ModeCycles records per-mode execution cost (differential cases), the
	// raw material for overhead accounting.
	ModeCycles map[string]uint64 `json:"modeCycles,omitempty"`
	// Source carries the (shrunk) reproducer for failing cases, with the
	// attack metadata and dialect needed to replay it.
	Source     string  `json:"source,omitempty"`
	Attack     *attack `json:"attack,omitempty"`
	Restricted bool    `json:"restricted,omitempty"`
}

func (o *Outcome) fail(category, reason string) {
	o.Pass = false
	if o.Category == "" {
		o.Category = category
		o.Reason = reason
	}
}

// Execute runs a case under its kind's rules.
func Execute(c *Case) *Outcome {
	out := &Outcome{Seed: c.Seed, Kind: c.Kind, Pass: true}
	switch c.Kind {
	case KindDifferential:
		executeDifferential(c, out)
	case KindAdversarial:
		executeAdversarial(c, out)
	case KindHosted:
		executeHosted(c, out)
	case KindBrownout:
		executeBrownout(c, out)
	default:
		out.fail("bad-kind", fmt.Sprintf("unknown case kind %q", c.Kind))
	}
	return out
}

// runResult is one standalone execution.
type runResult struct {
	stop    cpu.StopReason
	fault   *cpu.Fault
	exit    uint16
	cycles  uint64
	mpuViol uint64
	globals map[string]string // name -> hex bytes of final value
	layout  appLayout
	symbols map[string]uint16
}

// diffModes returns the isolation models a differential case compares:
// the unprotected baseline against every isolated model the dialect admits.
func diffModes(restricted bool) []cc.Mode {
	if restricted {
		return []cc.Mode{cc.ModeNoIsolation, cc.ModeFeatureLimited, cc.ModeMPU, cc.ModeSoftwareOnly}
	}
	return []cc.Mode{cc.ModeNoIsolation, cc.ModeMPU, cc.ModeSoftwareOnly}
}

// advModes returns the isolated models an adversarial case must be trapped
// under.
func advModes(restricted bool) []cc.Mode {
	if restricted {
		return []cc.Mode{cc.ModeFeatureLimited, cc.ModeMPU, cc.ModeSoftwareOnly}
	}
	return []cc.Mode{cc.ModeMPU, cc.ModeSoftwareOnly}
}

// runStandalone compiles the source as a standalone program under one mode
// and runs it to completion.
func runStandalone(src string, mode cc.Mode) (*runResult, error) {
	p, err := cc.CompileProgram(unitName, src, cc.ProgramOptions{
		Mode:      mode,
		EnableMPU: mode == cc.ModeMPU,
	})
	if err != nil {
		return nil, err
	}
	m := p.Load()
	stop, fault := m.Run(defaultBudget)

	res := &runResult{
		stop:    stop,
		fault:   fault,
		exit:    m.CPU.ExitCode,
		cycles:  m.CPU.Cycles,
		mpuViol: m.MPU.Violations(),
		globals: map[string]string{},
		symbols: map[string]uint16{},
		layout: appLayout{
			dataLo:   p.Image.MustSym(abi.SymDataLo(unitName)),
			dataHi:   p.Image.MustSym(abi.SymDataHi(unitName)),
			osCodeLo: p.Image.MustSym(abi.SymOSCodeLo),
		},
	}
	// Snapshot every global's final bytes for cross-mode state comparison.
	// Pointer-typed globals are excluded: they hold addresses, and the
	// memory layout legitimately shifts between modes.
	for name, g := range p.Checked.Globals {
		addr := p.Image.MustSym(abi.SymGlobal(unitName, name))
		res.symbols[name] = addr
		if g.Type.Kind == cc.TPtr || g.Type.Kind == cc.TFuncPtr {
			continue
		}
		size := g.Type.Size()
		var sb strings.Builder
		for i := 0; i < size; i++ {
			fmt.Fprintf(&sb, "%02x", m.Bus.Peek8(addr+uint16(i)))
		}
		res.globals[name] = sb.String()
	}
	return res, nil
}

// executeDifferential asserts mode equivalence: the same program, compiled
// under the unprotected baseline and under every isolated model, must halt
// with the same exit code and identical global state, with the baseline
// never costing more cycles than an instrumented build — the paper's
// "isolation preserves semantics, costs only overhead" claim.
func executeDifferential(c *Case, out *Outcome) {
	out.ModeCycles = map[string]uint64{}
	var base *runResult
	for _, mode := range diffModes(c.Restricted) {
		res, err := runStandalone(c.Source, mode)
		if err != nil {
			out.fail("compile-error", fmt.Sprintf("%v: %v", mode, err))
			return
		}
		out.ModeCycles[mode.String()] = res.cycles
		if res.stop != cpu.StopHalt || res.fault != nil {
			out.fail("runtime-fault", fmt.Sprintf("%v: stop=%v fault=%v", mode, res.stop, res.fault))
			return
		}
		if mode == cc.ModeMPU && res.mpuViol != 0 {
			out.fail("mpu-violation",
				fmt.Sprintf("well-formed program latched %d MPU violations", res.mpuViol))
			return
		}
		if base == nil {
			base = res // NoIsolation runs first
			continue
		}
		if res.exit != base.exit {
			out.fail("exit-mismatch",
				fmt.Sprintf("%v: exit 0x%04X, baseline 0x%04X", mode, res.exit, base.exit))
			return
		}
		if diff := diffGlobals(base.globals, res.globals); diff != "" {
			out.fail("state-mismatch", fmt.Sprintf("%v: %s", mode, diff))
			return
		}
		if res.cycles < base.cycles {
			out.fail("overhead-inversion",
				fmt.Sprintf("%v ran in %d cycles, baseline %d", mode, res.cycles, base.cycles))
			return
		}
	}
}

// diffGlobals reports the first global whose final bytes differ.
func diffGlobals(want, got map[string]string) string {
	names := make([]string, 0, len(want))
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if want[n] != got[n] {
			return fmt.Sprintf("global %s = %s, baseline %s", n, got[n], want[n])
		}
	}
	return ""
}

// classifyStandalone attributes a standalone run's ending to a layer.
func classifyStandalone(res *runResult) Layer {
	switch {
	case res.stop == cpu.StopHalt && res.exit == cc.FaultExitCode:
		return LayerCompiler
	case res.stop == cpu.StopFault && res.fault != nil && res.fault.Violation != nil &&
		strings.HasPrefix(res.fault.Violation.Rule, "MPU"):
		return LayerMPU
	case res.stop == cpu.StopFault:
		return LayerCPU
	case res.stop == cpu.StopHalt:
		return LayerNone
	case res.stop == cpu.StopBudget:
		return LayerWatchdog
	}
	return LayerNone
}

// executeAdversarial asserts that each isolated mode disposes of the
// injected violation exactly as the oracle predicts — trapped by the
// attributed layer, or (for explicit probes of the modeled hardware holes)
// demonstrably escaping.
func executeAdversarial(c *Case, out *Outcome) {
	if c.Attack == nil {
		out.fail("bad-case", "adversarial case without attack metadata")
		return
	}
	out.Expected = map[string]Layer{}
	out.Observed = map[string]Layer{}
	for _, mode := range advModes(c.Restricted) {
		res, err := runStandalone(c.Source, mode)
		if err != nil {
			out.fail("compile-error", fmt.Sprintf("%v: %v", mode, err))
			return
		}
		arrAddr := res.symbols[c.Attack.Array]
		expected := c.Attack.predict(mode.String(), res.layout, arrAddr)
		observed := classifyStandalone(res)
		out.Expected[mode.String()] = expected
		out.Observed[mode.String()] = observed
		if expected == LayerVacuous {
			continue // effective address landed inside the app's own region
		}
		if observed != expected {
			out.fail("adversarial-mismatch",
				fmt.Sprintf("%v: %s expected %s, observed %s (stop=%v fault=%v)",
					mode, c.Attack, expected, observed, res.stop, res.fault))
			return
		}
	}
}
