package torture

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"amuletiso/internal/fleet"
	"amuletiso/internal/obs"
)

// mCases counts torture cases executed across all campaigns in the process —
// the series amulettorture's progress line and /metrics endpoint report.
var mCases = obs.Default.Counter(obs.MetricTortureCase,
	"Torture cases executed across all campaigns.")

// Config shapes one torture campaign.
type Config struct {
	// Kind selects the case family: differential, adversarial or hosted.
	Kind string
	// Programs is how many cases to run.
	Programs int
	// First offsets the case indices, sharding one campaign across machines
	// exactly like fleet.Scenario.FirstDevice: per-case seeds depend only on
	// the global index, so disjoint shards reproduce the union run.
	First int
	// Seed is the campaign seed; per-case seeds derive from it.
	Seed uint64
	// Workers bounds the fan-out pool (0 = GOMAXPROCS). The report is
	// byte-identical at any setting.
	Workers int
	// RestrictedEvery marks every Nth case restricted-dialect (0 = never).
	// Hosted campaigns ignore it.
	RestrictedEvery int
	// Shrink minimizes failing cases to their smallest reproducer before
	// reporting them.
	Shrink bool
}

// DefaultConfig returns the canonical campaign configuration for a kind.
func DefaultConfig(kind string) Config {
	cfg := Config{Kind: kind, Programs: 1000, Seed: 1, Shrink: true}
	switch kind {
	case KindDifferential:
		cfg.RestrictedEvery = 4
	case KindAdversarial:
		cfg.RestrictedEvery = 5
	}
	return cfg
}

// Report aggregates a campaign. Every field is a pure function of the
// Config, so serialized reports are byte-identical across runs, machines
// and worker counts — campaigns double as regression oracles.
type Report struct {
	Kind     string `json:"kind"`
	Seed     uint64 `json:"seed"`
	Programs int    `json:"programs"`
	First    int    `json:"first,omitempty"`

	Passed int `json:"passed"`
	Failed int `json:"failed"`

	// Differential aggregates: total simulated cycles per mode and the
	// relative overhead each isolated model paid over the unprotected
	// baseline — the same quantity as the paper's Figure 3, measured over
	// generated programs instead of hand-picked benchmarks. BaselineCycles
	// pairs each isolated mode with the NoIsolation cycles of exactly the
	// cases that ran it (restricted-dialect cases run more modes than full
	// ones, so the subsets differ).
	ModeCycles     map[string]uint64  `json:"modeCycles,omitempty"`
	BaselineCycles map[string]uint64  `json:"baselineCycles,omitempty"`
	OverheadPct    map[string]float64 `json:"overheadPct,omitempty"`

	// Adversarial aggregates, over (case, mode) pairs.
	Injected        int            `json:"injected,omitempty"` // violations expected to trap
	Trapped         int            `json:"trapped,omitempty"`  // violations actually trapped
	TrappedByLayer  map[string]int `json:"trappedByLayer,omitempty"`
	ExpectedEscapes int            `json:"expectedEscapes,omitempty"` // probe cases showing the modeled MPU holes
	Vacuous         int            `json:"vacuous,omitempty"`         // effective address landed in-region

	Failures []*Outcome `json:"failures,omitempty"`
}

// Run executes a campaign, fanning the cases out over the fleet worker
// pool. Each case is generated, executed and (on failure, with Shrink set)
// minimized independently; results land in per-index slots, so aggregation
// is order-independent.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Programs <= 0 {
		return nil, fmt.Errorf("torture: campaign needs a positive program count (got %d)", cfg.Programs)
	}
	if cfg.First < 0 {
		return nil, fmt.Errorf("torture: negative first index %d", cfg.First)
	}
	switch cfg.Kind {
	case KindDifferential, KindAdversarial, KindHosted, KindBrownout:
	default:
		return nil, fmt.Errorf("torture: unknown campaign kind %q", cfg.Kind)
	}

	results := make([]*Outcome, cfg.Programs)
	err := fleet.ForEach(ctx, cfg.Programs, cfg.Workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		gi := cfg.First + i
		restricted := cfg.Kind != KindHosted && cfg.Kind != KindBrownout &&
			cfg.RestrictedEvery > 0 && gi%cfg.RestrictedEvery == 0
		c, p := buildCaseProg(cfg.Kind, caseSeed(cfg.Seed, gi), restricted)
		out := Execute(c)
		mCases.Inc()
		out.Index = gi
		if !out.Pass {
			out.Source = c.Source
			out.Attack = c.Attack
			out.Restricted = c.Restricted
			if cfg.Shrink && p != nil {
				out.Source = shrinkFailure(p, c, out.Category)
			}
		}
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{Kind: cfg.Kind, Seed: cfg.Seed, Programs: cfg.Programs, First: cfg.First}
	for _, out := range results {
		rep.fold(out)
	}
	for mode, baseTotal := range rep.BaselineCycles {
		if baseTotal > 0 {
			rep.OverheadPct[mode] = 100 *
				(float64(rep.ModeCycles[mode]) - float64(baseTotal)) / float64(baseTotal)
		}
	}
	return rep, nil
}

// fold accumulates one case outcome.
func (r *Report) fold(out *Outcome) {
	if out.Pass {
		r.Passed++
	} else {
		r.Failed++
		r.Failures = append(r.Failures, out)
	}
	// Cycle aggregates only fold in passing cases: a failing case stops at
	// its first bad mode, and its truncated cycles would skew the overhead
	// figures exactly when someone is reading them to diagnose the failure.
	if out.Pass && len(out.ModeCycles) > 0 {
		if r.ModeCycles == nil {
			r.ModeCycles = make(map[string]uint64)
			r.BaselineCycles = make(map[string]uint64)
			r.OverheadPct = make(map[string]float64)
		}
		base := out.ModeCycles["NoIsolation"]
		for mode, cycles := range out.ModeCycles {
			r.ModeCycles[mode] += cycles
			if mode != "NoIsolation" {
				r.BaselineCycles[mode] += base
			}
		}
	}
	modes := make([]string, 0, len(out.Expected))
	for m := range out.Expected {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		expected, observed := out.Expected[m], out.Observed[m]
		switch expected {
		case LayerVacuous:
			r.Vacuous++
		case LayerNone:
			if observed == LayerNone {
				r.ExpectedEscapes++
			}
		default:
			r.Injected++
			if observed == expected {
				r.Trapped++
				if r.TrappedByLayer == nil {
					r.TrappedByLayer = make(map[string]int)
				}
				r.TrappedByLayer[m+"/"+string(observed)]++
			}
		}
	}
}

// Merge folds an adjacent shard of the same campaign into r, giving torture
// reports the same shard-union treatment fleet reports have: a campaign
// split into program ranges — run anywhere, in any order, interrupted and
// resumed — merges into exactly the union run's report, byte for byte. The
// shards must agree on campaign identity (kind, seed) and their program
// ranges must tile one contiguous range.
func (r *Report) Merge(other *Report) error {
	if r.Kind != other.Kind || r.Seed != other.Seed {
		return fmt.Errorf("torture: cannot merge reports of different campaigns (%s/%d vs %s/%d)",
			r.Kind, r.Seed, other.Kind, other.Seed)
	}
	switch {
	case r.First+r.Programs == other.First:
	case other.First+other.Programs == r.First:
		r.First = other.First
	default:
		return fmt.Errorf("torture: cannot merge non-adjacent shards [%d,%d) and [%d,%d)",
			r.First, r.First+r.Programs, other.First, other.First+other.Programs)
	}
	r.Programs += other.Programs
	r.Passed += other.Passed
	r.Failed += other.Failed
	addCounts(&r.ModeCycles, other.ModeCycles)
	addCounts(&r.BaselineCycles, other.BaselineCycles)
	r.Injected += other.Injected
	r.Trapped += other.Trapped
	addCounts(&r.TrappedByLayer, other.TrappedByLayer)
	r.ExpectedEscapes += other.ExpectedEscapes
	r.Vacuous += other.Vacuous
	r.Failures = append(r.Failures, other.Failures...)
	sort.Slice(r.Failures, func(i, j int) bool { return r.Failures[i].Index < r.Failures[j].Index })
	// Overheads are ratios of the merged totals, recomputed exactly as Run
	// computes them for a one-shot campaign.
	r.OverheadPct = nil
	if r.ModeCycles != nil {
		r.OverheadPct = make(map[string]float64)
		for mode, baseTotal := range r.BaselineCycles {
			if baseTotal > 0 {
				r.OverheadPct[mode] = 100 *
					(float64(r.ModeCycles[mode]) - float64(baseTotal)) / float64(baseTotal)
			}
		}
	}
	return nil
}

// addCounts folds src's counters into *dst, allocating it on first use so a
// merge of two count-free shards stays count-free.
func addCounts[V int | uint64](dst *map[string]V, src map[string]V) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(map[string]V, len(src))
	}
	for k, v := range src {
		(*dst)[k] += v
	}
}

// Summary renders the report for humans.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s campaign: %d programs (seed %d): %d passed, %d failed\n",
		r.Kind, r.Programs, r.Seed, r.Passed, r.Failed)
	if len(r.ModeCycles) > 0 {
		modes := sortedKeys(r.ModeCycles)
		for _, m := range modes {
			fmt.Fprintf(&sb, "  %-15s %12d cycles", m, r.ModeCycles[m])
			if pct, ok := r.OverheadPct[m]; ok {
				fmt.Fprintf(&sb, "  (+%.2f%%)", pct)
			}
			sb.WriteString("\n")
		}
	}
	if r.Injected > 0 {
		fmt.Fprintf(&sb, "  injected violations trapped: %d/%d (%.1f%%)\n",
			r.Trapped, r.Injected, 100*float64(r.Trapped)/float64(r.Injected))
		for _, k := range sortedKeys(r.TrappedByLayer) {
			fmt.Fprintf(&sb, "    %6d× %s\n", r.TrappedByLayer[k], k)
		}
		if r.ExpectedEscapes > 0 {
			fmt.Fprintf(&sb, "  documented-hole probes escaping as modeled: %d\n", r.ExpectedEscapes)
		}
		if r.Vacuous > 0 {
			fmt.Fprintf(&sb, "  vacuous (effective address stayed in-region): %d\n", r.Vacuous)
		}
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "  FAIL case %d seed %d [%s]: %s\n", f.Index, f.Seed, f.Category, f.Reason)
	}
	return sb.String()
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
