package torture

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func repJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runShard(t *testing.T, kind string, first, programs, workers int) *Report {
	t.Helper()
	cfg := DefaultConfig(kind)
	cfg.Programs = programs
	cfg.First = first
	cfg.Workers = workers
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s [%d,%d): %v", kind, first, first+programs, err)
	}
	return rep
}

// TestMergeShardUnionByteIdentity is the satellite contract: a campaign cut
// into adjacent program-range shards — run at different worker counts,
// merged in either order — must serialize byte-identically to the one-shot
// run. Checked for each campaign family, since they populate disjoint
// aggregate fields.
func TestMergeShardUnionByteIdentity(t *testing.T) {
	for _, kind := range []string{KindDifferential, KindAdversarial, KindHosted, KindBrownout} {
		n := 24
		if kind == KindHosted || kind == KindBrownout {
			n = 8 // kernel-hosted cases cost more per program
		}
		whole := runShard(t, kind, 0, n, 2)
		want := repJSON(t, whole)

		cutAt := n / 3
		lo := runShard(t, kind, 0, cutAt, 1)
		hi := runShard(t, kind, cutAt, n-cutAt, 4)

		if err := lo.Merge(hi); err != nil {
			t.Fatalf("%s: forward merge: %v", kind, err)
		}
		if got := repJSON(t, lo); !bytes.Equal(got, want) {
			t.Fatalf("%s: forward merge differs from one-shot run:\nwant %s\ngot  %s", kind, want, got)
		}

		lo2 := runShard(t, kind, 0, cutAt, 3)
		hi2 := runShard(t, kind, cutAt, n-cutAt, 2)
		if err := hi2.Merge(lo2); err != nil {
			t.Fatalf("%s: reverse merge: %v", kind, err)
		}
		if got := repJSON(t, hi2); !bytes.Equal(got, want) {
			t.Fatalf("%s: reverse merge differs from one-shot run", kind)
		}
	}
}

// TestMergeRejectsForeignShards covers the identity and adjacency
// validation.
func TestMergeRejectsForeignShards(t *testing.T) {
	a := runShard(t, KindDifferential, 0, 4, 1)
	for name, other := range map[string]*Report{
		"kind":     {Kind: KindAdversarial, Seed: a.Seed, First: 4, Programs: 4},
		"seed":     {Kind: a.Kind, Seed: a.Seed + 1, First: 4, Programs: 4},
		"gap":      {Kind: a.Kind, Seed: a.Seed, First: 5, Programs: 4},
		"overlap":  {Kind: a.Kind, Seed: a.Seed, First: 3, Programs: 4},
		"enclosed": {Kind: a.Kind, Seed: a.Seed, First: 1, Programs: 2},
	} {
		cp := *a
		if err := cp.Merge(other); err == nil {
			t.Errorf("%s-mismatched shard merged", name)
		}
	}
}

// TestBrownoutCampaignGreen: the crash-consistency battery must pass clean —
// every brownout trapped, attributed to the power layer, and the rebooted
// kernel byte-identical to the persistent state machine's prediction.
func TestBrownoutCampaignGreen(t *testing.T) {
	cfg := DefaultConfig(KindBrownout)
	cfg.Programs = 10
	cfg.Workers = 4
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("crash-consistency battery failed:\n%s", rep.Summary())
	}
	if rep.Injected == 0 || rep.Trapped != rep.Injected {
		t.Fatalf("brownouts injected=%d trapped=%d, want all trapped", rep.Injected, rep.Trapped)
	}
	for layer := range rep.TrappedByLayer {
		if layer != "MPU/"+string(LayerPower) && layer != "SoftwareOnly/"+string(LayerPower) {
			t.Fatalf("brownout attributed to %s, want %s", layer, LayerPower)
		}
	}
}
