package cc

import (
	"strings"
	"testing"

	"amuletiso/internal/cpu"
)

// compileRun builds a standalone program and runs it to halt, returning the
// exit code (main's return value).
func compileRun(t *testing.T, src string, mode Mode) uint16 {
	t.Helper()
	m := compileLoad(t, src, mode)
	reason, f := m.Run(2_000_000)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if reason != cpu.StopHalt {
		t.Fatalf("stop = %v, want halt", reason)
	}
	return m.CPU.ExitCode
}

func compileLoad(t *testing.T, src string, mode Mode) *Machine {
	t.Helper()
	p, err := CompileProgram("test", src, ProgramOptions{Mode: mode, EnableMPU: mode == ModeMPU})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p.Load()
}

// expectError asserts compilation fails with a message containing want.
func expectError(t *testing.T, src string, mode Mode, want string) {
	t.Helper()
	_, err := CompileProgram("test", src, ProgramOptions{Mode: mode})
	if err == nil {
		t.Fatalf("compile unexpectedly succeeded (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

// ---- lexer ----

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F + 'a'; // comment
/* block
comment */ "str\n"`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokKeyword, TokIdent, TokPunct, TokNumber, TokPunct, TokChar, TokPunct, TokString, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
	if toks[3].Num != 0x1F || toks[5].Num != 'a' {
		t.Error("literal values wrong")
	}
	if toks[7].Str != "str\n" {
		t.Errorf("string = %q", toks[7].Str)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "\"unterminated", "'x", "0xZZ", "/* no end"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) unexpectedly succeeded", src)
		}
	}
}

// ---- parser / sema diagnostics ----

func TestUnsupportedFeatures(t *testing.T) {
	cases := map[string]string{
		"int main() { goto x; }":             "goto",
		"int main() { asm; }":                "assembly",
		"struct s { int x; };":               "struct",
		"int main() { float f; }":            "floating point",
		"int main() { switch (1) {} }":       "switch",
		"typedef int foo;":                   "typedef",
		"int main() { int x; x = sizeof x;}": "sizeof",
	}
	for src, want := range cases {
		expectError(t, src, ModeNoIsolation, want)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"int main() { return y; }":                 "undefined identifier",
		"int main() { foo(); }":                    "undefined function",
		"int main() { int x; int x; return 0; }":   "redefinition",
		"int x; int x;":                            "redefinition",
		"void f() {} void f() {}":                  "redefinition",
		"int main() { break; }":                    "break outside loop",
		"int main() { 3 = 4; }":                    "not assignable",
		"int main() { return amulet_read_hr(1); }": "argument",
		"int amulet_read_hr() { return 0; }":       "API name",
		"void f(int a) {} int main() { f(); }":     "argument",
		"void f() {} int main() { return f(); }":   "cannot assign void",
		"int main() { int a[4]; return a; }":       "cannot assign",
		"int main() { while (1) { continue; } }":   "", // valid: no error
	}
	for src, want := range cases {
		if want == "" {
			if _, err := CompileProgram("test", src, ProgramOptions{}); err != nil {
				t.Errorf("valid program rejected: %v\n%s", err, src)
			}
			continue
		}
		expectError(t, src, ModeNoIsolation, want)
	}
}

func TestRestrictedDialectRules(t *testing.T) {
	cases := map[string]string{
		"int main() { int *p; return 0; }":                    "pointers are not allowed",
		"int g; int main() { return *(&g); }":                 "dereference is not allowed",
		"int f(int n) { return f(n); } int main(){return 0;}": "", // recursion flagged, not an error
	}
	for src, want := range cases {
		_, err := CompileProgram("test", src, ProgramOptions{Mode: ModeFeatureLimited})
		if want == "" {
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("error %v does not contain %q", err, want)
		}
	}
}

func TestRecursionDetection(t *testing.T) {
	src := `
int f(int n) { if (n < 1) { return 0; } return g(n - 1); }
int g(int n) { return f(n); }
int main() { return f(3); }
`
	unit, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := Analyze(unit, DialectFull, false)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Recursive {
		t.Fatal("mutual recursion not detected")
	}
	if chk.MaxStack != -1 {
		t.Fatalf("MaxStack = %d, want -1 (unbounded)", chk.MaxStack)
	}
}

func TestStackEstimate(t *testing.T) {
	src := `
int leaf(int a) { int x; int y; return a; }
int mid(int a) { return leaf(a) + 1; }
int main() { return mid(2); }
`
	unit, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := Analyze(unit, DialectFull, false)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Recursive {
		t.Fatal("false recursion")
	}
	leaf := chk.Funcs["leaf"].MaxStack
	mid := chk.Funcs["mid"].MaxStack
	if leaf <= 0 || mid <= leaf {
		t.Fatalf("stack estimates not monotone: leaf=%d mid=%d", leaf, mid)
	}
}

// ---- end-to-end codegen, all modes ----

// runAllModes checks that a program produces the same result under every
// memory model that supports its dialect needs.
func runAllModes(t *testing.T, src string, want uint16, restrictedOK bool) {
	t.Helper()
	modes := []Mode{ModeNoIsolation, ModeMPU, ModeSoftwareOnly}
	if restrictedOK {
		modes = append(modes, ModeFeatureLimited)
	}
	for _, m := range modes {
		if got := compileRun(t, src, m); got != want {
			t.Errorf("[%v] got %d, want %d", m, got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	runAllModes(t, `
int main() {
    int a = 7;
    int b = 3;
    return a + b * 10 - 6 / 2;   // 7 + 30 - 3 = 34
}
`, 34, true)
}

func TestDivisionAndModulo(t *testing.T) {
	runAllModes(t, `
int main() {
    int a = 100;
    uint u = 50000;
    int r = 0;
    r = r + a / 7;        // 14
    r = r + a % 7;        // +2 = 16
    r = r + (0 - a) / 7;  // -14 -> 2
    r = r + (0 - a) % 7;  // -2 -> 0
    if (u / 7 == 7142) { r = r + 100; }   // unsigned division
    if (u % 7 == 6) { r = r + 1000; }
    return r;             // 1100
}
`, 1100, true)
}

func TestShifts(t *testing.T) {
	runAllModes(t, `
int main() {
    uint x = 0x8000;
    int s = -16;
    int r = 0;
    if (x >> 15 == 1) { r = r + 1; }       // logical shr
    if (s >> 2 == -4) { r = r + 10; }      // arithmetic shr
    if ((1 << 10) == 1024) { r = r + 100; }
    return r;
}
`, 111, true)
}

func TestBitwiseAndLogical(t *testing.T) {
	runAllModes(t, `
int main() {
    int a = 0xF0;
    int b = 0x0F;
    int r = 0;
    if ((a & b) == 0) { r = r + 1; }
    if ((a | b) == 0xFF) { r = r + 2; }
    if ((a ^ 0xFF) == b) { r = r + 4; }
    if (~0 == -1) { r = r + 8; }
    if (!0 == 1 && !5 == 0) { r = r + 16; }
    if (a > b || 0) { r = r + 32; }
    return r;
}
`, 63, true)
}

func TestSignedUnsignedComparisons(t *testing.T) {
	runAllModes(t, `
int main() {
    int s = -1;
    uint u = 0xFFFF;
    int r = 0;
    if (s < 1) { r = r + 1; }       // signed
    if (u > 1) { r = r + 10; }      // unsigned: 65535 > 1
    if (s <= -1) { r = r + 100; }
    if (u >= 0xFFFF) { r = r + 1000; }
    return r;
}
`, 1111, true)
}

func TestControlFlow(t *testing.T) {
	runAllModes(t, `
int main() {
    int i;
    int sum = 0;
    for (i = 1; i <= 10; i++) {
        if (i == 5) { continue; }
        if (i == 9) { break; }
        sum = sum + i;
    }
    while (sum < 100) { sum = sum + sum; }
    return sum;   // 1+2+3+4+6+7+8 = 31 -> 62 -> 124
}
`, 124, true)
}

func TestGlobalsAndInitializers(t *testing.T) {
	runAllModes(t, `
int counter = 5;
uint mask = 0xFF00;
const int table[4] = { 10, 20, 30, 40 };
char tag = 'x';
int main() {
    counter++;
    counter += 4;
    if (tag != 'x') { return 0; }
    return counter + table[2];    // 10 + 30
}
`, 40, true)
}

func TestArrays(t *testing.T) {
	runAllModes(t, `
int buf[8];
int main() {
    int i;
    for (i = 0; i < 8; i++) { buf[i] = i * i; }
    int local[4];
    for (i = 0; i < 4; i++) { local[i] = buf[i + 2]; }
    return local[0] + local[1] + local[2] + local[3];  // 4+9+16+25
}
`, 54, true)
}

func TestCharArraysAndBytes(t *testing.T) {
	runAllModes(t, `
char text[6] = "hello";
int main() {
    int i;
    int sum = 0;
    for (i = 0; i < 5; i++) { sum = sum + text[i]; }
    text[0] = 'H';
    if (text[0] != 72) { return 0; }
    return sum;   // 104+101+108+108+111 = 532
}
`, 532, true)
}

func TestFunctionsAndCalls(t *testing.T) {
	runAllModes(t, `
int add3(int a, int b, int c) { return a + b + c; }
int twice(int x) { return add3(x, x, 0); }
int main() { return twice(add3(1, 2, 3)) + twice(4); }   // 12 + 8
`, 20, true)
}

func TestFourArgCall(t *testing.T) {
	runAllModes(t, `
int mix(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
int main() { return mix(1, 2, 3, 4); }
`, 1234, true)
}

func TestRecursionFib(t *testing.T) {
	// Full dialect only: restricted rejects... no — recursion is allowed to
	// parse but makes stack unbounded; the restricted dialect does not
	// forbid recursion syntactically in our AFT, it just can't bound the
	// stack. The paper's Amulet C disallows it; we enforce that only for
	// apps built by the AFT, not bare programs.
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
`
	runAllModes(t, src, 55, false)
}

func TestPointers(t *testing.T) {
	src := `
int a = 3;
int b = 4;
void swap(int *x, int *y) {
    int t = *x;
    *x = *y;
    *y = t;
}
int main() {
    swap(&a, &b);
    int local = 7;
    int *p = &local;
    *p = *p + 1;
    return a * 100 + b * 10 + local;   // 4,3,8
}
`
	runAllModes(t, src, 438, false)
}

func TestPointerArithmetic(t *testing.T) {
	src := `
int buf[5] = { 1, 2, 3, 4, 5 };
int main() {
    int *p = buf;
    int sum = 0;
    int i;
    for (i = 0; i < 5; i++) {
        sum = sum + *(p + i);
    }
    p = p + 2;
    sum = sum + p[1];      // buf[3] = 4
    char cbuf[4];
    char *c = cbuf;
    c[0] = 1;
    c = c + 1;
    *c = 2;
    sum = sum + cbuf[0] + cbuf[1];
    return sum;            // 15 + 4 + 3 = 22
}
`
	runAllModes(t, src, 22, false)
}

func TestFunctionPointers(t *testing.T) {
	src := `
int double_it(int x) { return x + x; }
int triple_it(int x) { return x * 3; }
int (*op)(int);
int apply(int (*f)(int), int v) { return f(v); }
int main() {
    op = double_it;
    int r = op(10);              // 20
    op = &triple_it;
    r = r + op(10);              // +30
    r = r + apply(double_it, 3); // +6
    return r;
}
`
	runAllModes(t, src, 56, false)
}

func TestStringLiterals(t *testing.T) {
	src := `
int main() {
    char *s = "AB";
    return (*s) * 1000 + s[1];   // 65*1000 + 66
}
`
	runAllModes(t, src, 65066, false)
}

func TestCompoundAssignInDepth(t *testing.T) {
	runAllModes(t, `
int g = 2;
int main() {
    int x = 10;
    x += 5;       // 15
    x -= 3;       // 12
    x *= 4;       // 48
    x /= 6;       // 8
    x %= 5;       // 3
    g *= x;       // 6
    g &= 0xFF;
    g |= 0x10;    // 0x16 = 22
    g ^= 0x02;    // 0x14 = 20
    return g * 10 + x;   // 203
}
`, 203, true)
}

func TestIncDecOnArrayElem(t *testing.T) {
	runAllModes(t, `
int a[3];
int main() {
    a[1] = 5;
    a[1]++;
    a[1]++;
    a[1]--;
    int i = 0;
    i++;
    return a[1] * 10 + i;   // 61
}
`, 61, true)
}

// ---- isolation check behaviour ----

func TestMPUCheckCatchesLowPointer(t *testing.T) {
	// Writing through a pointer below the app's data segment must hit the
	// compiler's lower-bound check under both MPU and SoftwareOnly.
	src := `
int main() {
    int *p = 0;
    uint addr = 0x1C00;          // SRAM: OS territory
    p = p + (addr >> 1);         // p = 0x1C00 as int*
    *p = 0x1234;
    return 1;
}
`
	for _, m := range []Mode{ModeMPU, ModeSoftwareOnly} {
		mach := compileLoad(t, src, m)
		reason, f := mach.Run(1_000_000)
		if f != nil {
			t.Fatalf("[%v] hardware fault, want check-stub halt: %v", m, f)
		}
		if reason != cpu.StopHalt || mach.CPU.ExitCode != FaultExitCode {
			t.Errorf("[%v] reason=%v exit=%04X, want fault exit", m, reason, mach.CPU.ExitCode)
		}
	}
	// NoIsolation lets it through.
	if got := compileRun(t, src, ModeNoIsolation); got != 1 {
		t.Errorf("NoIsolation blocked the write: %d", got)
	}
}

func TestSoftwareOnlyCatchesHighPointer(t *testing.T) {
	src := `
int x;
int main() {
    int *p = &x;
    p = p + 0x2000;          // way past the data segment
    *p = 1;
    return 1;
}
`
	mach := compileLoad(t, src, ModeSoftwareOnly)
	reason, _ := mach.Run(1_000_000)
	if reason != cpu.StopHalt || mach.CPU.ExitCode != FaultExitCode {
		t.Fatalf("upper bound not caught: reason=%v exit=%04X", reason, mach.CPU.ExitCode)
	}
}

func TestMPUHardwareCatchesHighPointer(t *testing.T) {
	// MPU mode has no software upper check; the hardware MPU (seg3 no
	// access) must fault instead.
	src := `
int x;
int main() {
    int *p = &x;
    p = p + 0x2000;
    *p = 1;
    return 1;
}
`
	mach := compileLoad(t, src, ModeMPU)
	reason, f := mach.Run(1_000_000)
	if reason != cpu.StopFault || f == nil || f.Violation == nil {
		t.Fatalf("MPU did not fault: reason=%v f=%v", reason, f)
	}
	if mach.MPU.Violations() == 0 {
		t.Fatal("violation not latched in MPU")
	}
}

func TestFeatureLimitedBoundsHelper(t *testing.T) {
	src := `
int buf[4];
int main() {
    int i = 2;
    buf[i] = 7;       // fine
    i = 6;
    buf[i] = 9;       // out of bounds -> helper faults
    return 1;
}
`
	mach := compileLoad(t, src, ModeFeatureLimited)
	reason, _ := mach.Run(1_000_000)
	if reason != cpu.StopHalt || mach.CPU.ExitCode != FaultExitCode {
		t.Fatalf("bounds helper missed: reason=%v exit=%04X", reason, mach.CPU.ExitCode)
	}
	// Negative index too.
	src2 := `
int buf[4];
int main() {
    int i = -1;
    buf[i] = 9;
    return 1;
}
`
	mach = compileLoad(t, src2, ModeFeatureLimited)
	reason, _ = mach.Run(1_000_000)
	if reason != cpu.StopHalt || mach.CPU.ExitCode != FaultExitCode {
		t.Fatalf("negative index missed: reason=%v exit=%04X", reason, mach.CPU.ExitCode)
	}
}

func TestConstantIndexCheckedAtCompileTime(t *testing.T) {
	expectError(t, `
int buf[4];
int main() { buf[4] = 1; return 0; }
`, ModeNoIsolation, "out of range")
}

func TestCheckOverheadOrdering(t *testing.T) {
	// The same pointer-walking workload must cost
	// NoIsolation < MPU < SoftwareOnly cycles (Table 1's ordering).
	src := `
int buf[32];
int main() {
    int i;
    int j;
    int s = 0;
    for (j = 0; j < 10; j++) {
        for (i = 0; i < 32; i++) { buf[i] = i; }
        for (i = 0; i < 32; i++) { s = s + buf[i]; }
    }
    return s & 0x7FFF;
}
`
	cycles := map[Mode]uint64{}
	for _, m := range []Mode{ModeNoIsolation, ModeMPU, ModeSoftwareOnly, ModeFeatureLimited} {
		mach := compileLoad(t, src, m)
		if reason, f := mach.Run(10_000_000); reason != cpu.StopHalt || f != nil {
			t.Fatalf("[%v] reason=%v f=%v", m, reason, f)
		}
		cycles[m] = mach.CPU.Cycles
	}
	if !(cycles[ModeNoIsolation] < cycles[ModeMPU] &&
		cycles[ModeMPU] < cycles[ModeSoftwareOnly] &&
		cycles[ModeSoftwareOnly] < cycles[ModeFeatureLimited]) {
		t.Errorf("cycle ordering wrong: %v", cycles)
	}
}
