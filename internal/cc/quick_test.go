package cc

import (
	"fmt"
	"math/rand"
	"testing"

	"amuletiso/internal/cpu"
)

// Differential property test: generate random int16 expression trees,
// compile them with the full pipeline, execute on the simulated MCU, and
// compare against a Go reference evaluator with C semantics (wrapping
// 16-bit arithmetic, truncating division, arithmetic right shift).

type qexpr interface {
	src() string
	eval(a, b int16) int16
}

type qlit int16

func (l qlit) src() string {
	if l < 0 {
		return fmt.Sprintf("(0 - %d)", -int32(l))
	}
	return fmt.Sprintf("%d", int16(l))
}
func (l qlit) eval(a, b int16) int16 { return int16(l) }

type qvar byte

func (v qvar) src() string { return string(v) }
func (v qvar) eval(a, b int16) int16 {
	if v == 'a' {
		return a
	}
	return b
}

type qbin struct {
	op   string
	l, r qexpr
}

func (x qbin) src() string { return "(" + x.l.src() + " " + x.op + " " + x.r.src() + ")" }

func (x qbin) eval(a, b int16) int16 {
	l, r := x.l.eval(a, b), x.r.eval(a, b)
	switch x.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return int16(int32(l) * int32(r)) // low 16 bits
	case "/":
		if r == 0 {
			return 0
		}
		return l / r
	case "%":
		if r == 0 {
			return l
		}
		return l % r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << uint(r&7)
	case ">>":
		return l >> uint(r&7)
	}
	panic("op")
}

// randQExpr builds a random expression. Divisions get non-zero literal
// divisors; shifts get small literal counts (mirroring the dialect's
// defined behavior).
func randQExpr(r *rand.Rand, depth int) qexpr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return qlit(int16(r.Intn(2001) - 1000))
		}
		return qvar([]byte{'a', 'b'}[r.Intn(2)])
	}
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
	op := ops[r.Intn(len(ops))]
	l := randQExpr(r, depth-1)
	var rhs qexpr
	switch op {
	case "/", "%":
		v := int16(r.Intn(200) + 1)
		if r.Intn(2) == 0 {
			v = -v
		}
		rhs = qlit(v)
	case "<<", ">>":
		rhs = qlit(int16(r.Intn(8)))
	default:
		rhs = randQExpr(r, depth-1)
	}
	return qbin{op, l, rhs}
}

func TestQuickDifferentialExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const trials = 60
	for i := 0; i < trials; i++ {
		e := randQExpr(r, 3)
		a := int16(r.Intn(4001) - 2000)
		b := int16(r.Intn(4001) - 2000)
		want := uint16(e.eval(a, b))

		src := fmt.Sprintf(`
int main() {
    int a = %s;
    int b = %s;
    return %s;
}
`, qlit(a).src(), qlit(b).src(), e.src())

		// NoIsolation checks pure codegen; MPU checks that instrumentation
		// does not perturb results.
		for _, mode := range []Mode{ModeNoIsolation, ModeMPU} {
			p, err := CompileProgram("q", src, ProgramOptions{Mode: mode, EnableMPU: mode == ModeMPU})
			if err != nil {
				t.Fatalf("trial %d compile (%v):\n%s\n%v", i, mode, src, err)
			}
			m := p.Load()
			reason, f := m.Run(5_000_000)
			if f != nil || reason != cpu.StopHalt {
				t.Fatalf("trial %d run (%v): reason=%v fault=%v\n%s", i, mode, reason, f, src)
			}
			if m.CPU.ExitCode != want {
				t.Fatalf("trial %d (%v): a=%d b=%d\n%s\ngot %d (0x%04X), want %d (0x%04X)",
					i, mode, a, b, src, int16(m.CPU.ExitCode), m.CPU.ExitCode, int16(want), want)
			}
		}
	}
}

// TestQuickDifferentialComparisons does the same for comparison chains and
// logical operators, which exercise the condition-code paths.
func TestQuickDifferentialComparisons(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cmps := []string{"==", "!=", "<", "<=", ">", ">="}
	for i := 0; i < 40; i++ {
		a := int16(r.Intn(201) - 100)
		b := int16(r.Intn(201) - 100)
		op1 := cmps[r.Intn(len(cmps))]
		op2 := cmps[r.Intn(len(cmps))]
		logic := []string{"&&", "||"}[r.Intn(2)]

		evalCmp := func(op string, l, rv int16) int {
			var v bool
			switch op {
			case "==":
				v = l == rv
			case "!=":
				v = l != rv
			case "<":
				v = l < rv
			case "<=":
				v = l <= rv
			case ">":
				v = l > rv
			case ">=":
				v = l >= rv
			}
			if v {
				return 1
			}
			return 0
		}
		c1 := evalCmp(op1, a, b)
		c2 := evalCmp(op2, b, a)
		want := uint16(0)
		if (logic == "&&" && c1 == 1 && c2 == 1) || (logic == "||" && (c1 == 1 || c2 == 1)) {
			want = 1
		}

		src := fmt.Sprintf(`
int main() {
    int a = %s;
    int b = %s;
    return (a %s b) %s (b %s a);
}
`, qlit(a).src(), qlit(b).src(), op1, logic, op2)
		p, err := CompileProgram("q", src, ProgramOptions{Mode: ModeSoftwareOnly})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, src)
		}
		m := p.Load()
		if reason, f := m.Run(1_000_000); f != nil || reason != cpu.StopHalt {
			t.Fatalf("trial %d: %v %v", i, reason, f)
		}
		if m.CPU.ExitCode != want {
			t.Fatalf("trial %d: a=%d b=%d op1=%s %s op2=%s: got %d want %d\n%s",
				i, a, b, op1, logic, op2, m.CPU.ExitCode, want, src)
		}
	}
}
