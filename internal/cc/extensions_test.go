package cc

import (
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/cpu"
	"amuletiso/internal/mpu"
)

// smashSource overwrites the words above its locals — including the saved
// registers and the return address — through a forged pointer. Without a
// defense, the function "returns" into garbage.
const smashSource = `
int f(int x) {
    int local = 0;
    int *p = &local;
    int *q = p + 4;    // first word past this frame's locals
    int i;
    for (i = 0; i < 6; i++) {
        *(q + i) = 0x4444;
    }
    return x + local;
}
int main() { return f(5); }
`

func TestShadowReturnStackCatchesSmash(t *testing.T) {
	// Under NoIsolation with the shadow stack on, the epilogue mismatch
	// must fault deterministically instead of jumping into garbage.
	p, err := CompileProgram("test", smashSource, ProgramOptions{
		Mode: ModeNoIsolation, ShadowReturnStack: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := p.Load()
	reason, _ := m.Run(1_000_000)
	if reason != cpu.StopHalt || m.CPU.ExitCode != FaultExitCode {
		t.Fatalf("smash not caught: reason=%v exit=%04X", reason, m.CPU.ExitCode)
	}
}

func TestShadowReturnStackTransparentForHonestCode(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
`
	for _, shadow := range []bool{false, true} {
		p, err := CompileProgram("test", src, ProgramOptions{
			Mode: ModeMPU, EnableMPU: true, ShadowReturnStack: shadow,
			StackBytes: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := p.Load()
		reason, f := m.Run(10_000_000)
		if f != nil || reason != cpu.StopHalt {
			t.Fatalf("shadow=%v: reason=%v f=%v", shadow, reason, f)
		}
		if m.CPU.ExitCode != 144 {
			t.Fatalf("shadow=%v: fib(12) = %d, want 144", shadow, m.CPU.ExitCode)
		}
	}
}

// memOpProgram is the canonical checked-access loop as a standalone main.
const memOpProgram = `
int buf[64];
int main() {
    int i;
    int j = 0;
    int n = 2000;
    for (i = 0; i < n; i++) {
        buf[j] = buf[j] + 1;
        j++;
        if (j >= 64) { j = 0; }
    }
    return buf[0];
}
`

// TestAdvancedMPUAblation quantifies the paper's §5 claim: an MPU able to
// protect all of memory (4+ regions) would make the compiler's lower-bound
// checks unnecessary. With CapabilityAdvanced, an *uninstrumented* binary
// pays zero per-access overhead yet low-memory writes still fault.
func TestAdvancedMPUAblation(t *testing.T) {
	// Baseline: NoIsolation binary on the real (weak) MPU, disabled.
	base, err := CompileProgram("test", memOpProgram, ProgramOptions{Mode: ModeNoIsolation})
	if err != nil {
		t.Fatal(err)
	}
	mBase := base.Load()
	if reason, f := mBase.Run(10_000_000); reason != cpu.StopHalt || f != nil {
		t.Fatalf("baseline: %v %v", reason, f)
	}

	// Same (unchecked!) binary under the hypothetical advanced MPU with the
	// app plan enforced: identical cycle count, hardware protection active.
	mAdv := base.Load()
	mAdv.MPU.Cap = mpu.CapabilityAdvanced
	mAdv.MPU.Configure(
		mAdv.Sym(abi.SymDataLo("test")), mAdv.Sym(abi.SymDataHi("test")),
		mpu.RWX(1, false, false, true)|mpu.RWX(2, true, true, false), true)
	if reason, f := mAdv.Run(10_000_000); reason != cpu.StopHalt || f != nil {
		t.Fatalf("advanced: %v %v", reason, f)
	}
	if mAdv.CPU.Cycles != mBase.CPU.Cycles {
		t.Fatalf("advanced MPU charged cycles: %d vs %d", mAdv.CPU.Cycles, mBase.CPU.Cycles)
	}

	// The MPU-mode (checked) binary costs strictly more.
	checked, err := CompileProgram("test", memOpProgram, ProgramOptions{Mode: ModeMPU, EnableMPU: true})
	if err != nil {
		t.Fatal(err)
	}
	mChk := checked.Load()
	if reason, f := mChk.Run(10_000_000); reason != cpu.StopHalt || f != nil {
		t.Fatalf("checked: %v %v", reason, f)
	}
	if mChk.CPU.Cycles <= mAdv.CPU.Cycles {
		t.Fatalf("lower-bound checks cost nothing? checked=%d advanced=%d",
			mChk.CPU.Cycles, mAdv.CPU.Cycles)
	}

	// And the advanced MPU still protects low memory with no checks at all.
	evil := `
int main() {
    int *p = 0;
    uint a = 0x1C00;
    p = p + (a >> 1);
    *p = 1;
    return 1;
}
`
	pe, err := CompileProgram("test", evil, ProgramOptions{Mode: ModeNoIsolation})
	if err != nil {
		t.Fatal(err)
	}
	mEvil := pe.Load()
	mEvil.MPU.Cap = mpu.CapabilityAdvanced
	mEvil.MPU.Configure(
		mEvil.Sym(abi.SymDataLo("test")), mEvil.Sym(abi.SymDataHi("test")),
		mpu.RWX(1, false, false, true)|mpu.RWX(2, true, true, false), true)
	reason, f := mEvil.Run(1_000_000)
	if reason != cpu.StopFault || f == nil || f.Violation == nil {
		t.Fatalf("advanced MPU missed the low write: %v %v", reason, f)
	}
}
