package cc

import (
	"fmt"
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/cpu"
)

// decodeCacheSentinel is an immediate chosen to appear exactly once in the
// compiled text (as the extension word of the MOV that materializes it), so
// tests can locate and overwrite the cached code word that carries it.
const decodeCacheSentinel = 24301

// findSentinelWord scans the app's code segment for the sentinel extension
// word and fails unless it occurs exactly once.
func findSentinelWord(t *testing.T, m *Machine, unit string) uint16 {
	t.Helper()
	codeLo := m.Sym(abi.SymCodeLo(unit))
	codeHi := m.Sym(abi.SymCodeHi(unit))
	var found []uint16
	for a := codeLo; a < codeHi; a += 2 {
		if m.Bus.Peek16(a) == decodeCacheSentinel {
			found = append(found, a)
		}
	}
	if len(found) != 1 {
		t.Fatalf("sentinel %d found at %d code addresses (%#v), need exactly 1",
			decodeCacheSentinel, len(found), found)
	}
	return found[0]
}

// runToExit resets the machine to the entry point and runs it to halt.
func runToExit(t *testing.T, m *Machine) uint16 {
	t.Helper()
	m.CPU.Halted = false
	m.CPU.SetPC(m.Img.Entry)
	reason, fault := m.Run(10_000_000)
	if fault != nil || reason != cpu.StopHalt {
		t.Fatalf("run: stop=%v fault=%v", reason, fault)
	}
	return m.CPU.ExitCode
}

// TestDecodeCacheInvalidation is the torture-style regression test for the
// predecode cache: under every isolation mode, poking a cached code word
// (word poke, byte poke, and a bulk LoadBytes over the code range) must make
// the next execution of that PC use the new bytes.
func TestDecodeCacheInvalidation(t *testing.T) {
	src := fmt.Sprintf("int main() { return %d; }", decodeCacheSentinel)
	for _, mode := range Modes {
		for _, poke := range []string{"poke16", "poke8", "loadbytes"} {
			t.Run(fmt.Sprintf("%v/%s", mode, poke), func(t *testing.T) {
				p, err := CompileProgram("t", src, ProgramOptions{
					Mode: mode, EnableMPU: mode == ModeMPU,
				})
				if err != nil {
					t.Fatal(err)
				}
				if p.Text == nil {
					t.Fatal("program has no predecode cache")
				}
				m := p.Load()
				if m.CPU.Program() == nil {
					t.Fatal("machine did not attach the predecode cache")
				}
				addr := findSentinelWord(t, m, "t")
				if m.CPU.Program().At(addr) == nil && m.CPU.Program().At(addr-2) == nil {
					t.Fatalf("sentinel word at 0x%04X is not inside cached text", addr)
				}

				// First run populates nothing lazily — the cache is ahead of
				// time — but proves the cached path yields the right exit.
				if got := runToExit(t, m); got != decodeCacheSentinel {
					t.Fatalf("pre-poke exit = %d, want %d", got, decodeCacheSentinel)
				}

				const want = 11111
				switch poke {
				case "poke16":
					m.Bus.Poke16(addr, want)
				case "poke8":
					m.Bus.Poke8(addr, byte(want&0xFF))
					m.Bus.Poke8(addr+1, byte(want>>8))
				case "loadbytes":
					// Rewrite the whole code segment image with the word
					// changed, as a firmware update would.
					lo, hi := m.Sym(abi.SymCodeLo("t")), m.Sym(abi.SymCodeHi("t"))
					blob := make([]byte, hi-lo)
					for i := range blob {
						blob[i] = m.Bus.Peek8(lo + uint16(i))
					}
					blob[addr-lo] = byte(want & 0xFF)
					blob[addr-lo+1] = byte(want >> 8)
					m.Bus.LoadBytes(lo, blob)
				}

				if got := runToExit(t, m); got != want {
					t.Fatalf("post-poke exit = %d, want %d (stale decode cache?)", got, want)
				}
			})
		}
	}
}

// TestDecodeCacheEquivalence runs the same program with the cache attached
// and with it globally disabled and checks exit code, cycles, instruction
// count and bus statistics are identical — the per-machine differential
// version of the torture campaign guardrail.
func TestDecodeCacheEquivalence(t *testing.T) {
	src := `
int acc;
int step(int x) { return x * 3 + 1; }
int main() {
    int i;
    for (i = 0; i < 500; i++) {
        acc = step(acc) % 9973;
    }
    return acc;
}
`
	type snapshot struct {
		exit          uint16
		cycles, insns uint64
		reads, writes uint64
		fetches       uint64
	}
	run := func(t *testing.T, mode Mode, cache bool) snapshot {
		t.Helper()
		cpu.SetDecodeCache(cache)
		defer cpu.SetDecodeCache(true)
		p, err := CompileProgram("t", src, ProgramOptions{Mode: mode, EnableMPU: mode == ModeMPU})
		if err != nil {
			t.Fatal(err)
		}
		m := p.Load()
		if cache && m.CPU.Program() == nil {
			t.Fatal("cache requested but not attached")
		}
		if !cache && m.CPU.Program() != nil {
			t.Fatal("cache attached despite SetDecodeCache(false)")
		}
		exit := runToExit(t, m)
		r, w, f := m.Bus.Stats()
		return snapshot{exit, m.CPU.Cycles, m.CPU.Insns, r, w, f}
	}
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			with := run(t, mode, true)
			without := run(t, mode, false)
			if with != without {
				t.Errorf("cached run %+v != uncached run %+v", with, without)
			}
		})
	}
}
