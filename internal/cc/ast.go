package cc

// Type kinds for the AmuletC type system. All scalars are 16-bit words
// except char (8-bit); pointers are 16-bit addresses.
type TypeKind uint8

// Type kinds.
const (
	TVoid    TypeKind = iota
	TInt              // 16-bit signed
	TUint             // 16-bit unsigned
	TChar             // 8-bit unsigned
	TPtr              // pointer to Elem
	TArray            // array of Elem, length Len
	TFuncPtr          // pointer to function with Sig
)

// Type describes an AmuletC type.
type Type struct {
	Kind TypeKind
	Elem *Type    // TPtr, TArray element
	Len  int      // TArray length
	Sig  *FuncSig // TFuncPtr signature
}

// FuncSig is a function signature.
type FuncSig struct {
	Ret    *Type
	Params []*Type
}

// Pre-built scalar types.
var (
	TypeVoid = &Type{Kind: TVoid}
	TypeInt  = &Type{Kind: TInt}
	TypeUint = &Type{Kind: TUint}
	TypeChar = &Type{Kind: TChar}
)

// PtrTo returns the pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TPtr, Elem: elem} }

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TChar:
		return 1
	case TArray:
		return t.Len * t.Elem.Size()
	case TVoid:
		return 0
	default:
		return 2
	}
}

// IsScalar reports whether t fits a register.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TInt, TUint, TChar, TPtr, TFuncPtr:
		return true
	}
	return false
}

// IsInteger reports whether t is an arithmetic integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case TInt, TUint, TChar:
		return true
	}
	return false
}

// Signed reports whether comparisons on t use signed condition codes.
func (t *Type) Signed() bool { return t.Kind == TInt }

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TUint:
		return "uint"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return t.Elem.String() + "[]"
	case TFuncPtr:
		return "funcptr"
	}
	return "?"
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr, TArray:
		return t.Elem.Equal(o.Elem)
	case TFuncPtr:
		if (t.Sig == nil) != (o.Sig == nil) {
			return true // untyped funcptr matches any
		}
	}
	return true
}

// ---- Expressions ----

// Expr is the interface of all expression nodes.
type Expr interface {
	exprNode()
	Pos() (line, col int)
}

type exprBase struct{ Line, Col int }

func (e exprBase) exprNode()       {}
func (e exprBase) Pos() (int, int) { return e.Line, e.Col }

// NumLit is an integer literal.
type NumLit struct {
	exprBase
	Val int32
}

// StrLit is a string literal (materialized in the app's data section).
type StrLit struct {
	exprBase
	Val string
}

// Ident is a variable or function reference.
type Ident struct {
	exprBase
	Name string
	// Sym is filled during analysis.
	Sym *Symbol
}

// Unary is -x, !x, ~x, *p, &lv.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y for arithmetic, comparison, logical and shift operators.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is lv = rhs (also compound forms like +=).
type Assign struct {
	exprBase
	Op  string // "=", "+=", ...
	LHS Expr
	RHS Expr
}

// IncDec is lv++ / lv-- (statement position only).
type IncDec struct {
	exprBase
	Op string // "++" or "--"
	X  Expr
}

// Index is a[i].
type Index struct {
	exprBase
	Arr Expr
	Idx Expr
}

// Call is f(args) or (*fp)(args) / fp(args).
type Call struct {
	exprBase
	Fun  Expr // Ident (direct / API) or arbitrary funcptr expression
	Args []Expr
}

// ---- Statements ----

// Stmt is the interface of statement nodes.
type Stmt interface {
	stmtNode()
	Pos() (line, col int)
}

type stmtBase struct{ Line, Col int }

func (s stmtBase) stmtNode()       {}
func (s stmtBase) Pos() (int, int) { return s.Line, s.Col }

// DeclStmt declares a local variable with optional initializer.
type DeclStmt struct {
	stmtBase
	Name string
	Type *Type
	Init Expr // nil if none
	Sym  *Symbol
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

// ForStmt is a for loop (any clause may be nil).
type ForStmt struct {
	stmtBase
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr // expression or IncDec/Assign wrapped as Expr
	Body *Block
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// Block is { stmts }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ---- Declarations ----

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name  string
	Type  *Type
	Init  []int32 // constant initializer words/bytes (flattened); nil = zero
	Const bool
	Line  int
	Sym   *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Sig    *FuncSig
	Params []string
	Body   *Block
	Line   int
	Sym    *Symbol
}

// Unit is a parsed compilation unit.
type Unit struct {
	Name    string // unit (app) name, used as symbol prefix
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// ---- Symbols ----

// SymKind classifies symbols.
type SymKind uint8

// Symbol kinds.
const (
	SymGlobalVar SymKind = iota
	SymLocalVar
	SymParam
	SymFuncName
	SymAPIName
)

// Symbol is a named entity resolved during analysis.
type Symbol struct {
	Kind   SymKind
	Name   string
	Type   *Type
	Sig    *FuncSig // functions
	Offset int      // locals/params: frame offset (filled by codegen)
	Unit   string   // owning unit
}
