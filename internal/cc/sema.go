package cc

import (
	"fmt"

	"amuletiso/internal/abi"
)

// Dialect selects the language rules, mirroring the paper's comparison.
type Dialect int

// Dialects.
const (
	// DialectFull allows pointers, function pointers and recursion — the
	// paper's contribution makes this safe via MPU + compiler checks.
	DialectFull Dialect = iota
	// DialectRestricted is original Amulet C: no pointers of any kind and
	// no recursion; array accesses are bounds-checked via a helper call.
	DialectRestricted
)

func (d Dialect) String() string {
	if d == DialectRestricted {
		return "restricted"
	}
	return "full"
}

// GateAppStackBytes is the app-stack cost of one OS API call (gate register
// saves plus the return address), used by the stack estimator.
const GateAppStackBytes = 24

// callOverheadBytes is the app-stack cost of one internal call: the return
// address plus worst-case callee-saved register spills.
const callOverheadBytes = 2 + 16

// FuncInfo is the analyzer's per-function summary — the data the AFT's
// phase-1 "enumerate memory accesses and OS API calls, examine the call
// graph and stack frames" step produces.
type FuncInfo struct {
	Name        string
	Decl        *FuncDecl
	Locals      []*Symbol // flattened declaration order (incl. params)
	NParamWords int
	Callees     []string // direct intra-app calls
	APICalls    []string // OS API calls
	CheckSites  int      // static count of instrumentable memory accesses
	FuncPtrCall bool     // performs indirect calls
	Recursive   bool     // on a call-graph cycle
	FrameBytes  int      // estimated locals frame
	MaxStack    int      // estimated deepest stack use in bytes; -1 unbounded
}

// Checked is the analyzed form of a unit, ready for code generation.
type Checked struct {
	Unit    *Unit
	Dialect Dialect

	Types   map[Expr]*Type
	Funcs   map[string]*FuncInfo
	Globals map[string]*GlobalDecl
	Strings []string // interned string literals in first-use order

	// Recursive is set when any function participates in recursion; the
	// AFT then cannot bound the stack (paper §3, AFT phase 1).
	Recursive bool
	// MaxStack is the estimated per-activation stack bound in bytes over
	// all handlers, or -1 when recursion makes it unbounded.
	MaxStack int
}

// HandlerName is the entry point every application must export.
const HandlerName = "handle_event"

type analyzer struct {
	unit    *Unit
	dialect Dialect
	out     *Checked

	scopes  []map[string]*Symbol
	curFn   *FuncDecl
	curInfo *FuncInfo
	loop    int
	strIdx  map[string]int
}

// Analyze type-checks the unit under the dialect rules and produces the
// phase-1 summary. requireHandler additionally demands the standard
// handle_event(int, int) entry point (set for application units, clear for
// bare test programs).
func Analyze(u *Unit, d Dialect, requireHandler bool) (*Checked, error) {
	a := &analyzer{
		unit:    u,
		dialect: d,
		out: &Checked{
			Unit:    u,
			Dialect: d,
			Types:   make(map[Expr]*Type),
			Funcs:   make(map[string]*FuncInfo),
			Globals: make(map[string]*GlobalDecl),
		},
		strIdx: make(map[string]int),
	}
	if err := a.collectGlobals(); err != nil {
		return nil, err
	}
	for _, fn := range u.Funcs {
		if err := a.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	if requireHandler {
		fi, ok := a.out.Funcs[HandlerName]
		if !ok {
			return nil, errf(1, 1, "app %q must define void %s(int ev, int arg)", u.Name, HandlerName)
		}
		sig := fi.Decl.Sig
		if sig.Ret.Kind != TVoid || len(sig.Params) != 2 ||
			!sig.Params[0].IsInteger() || !sig.Params[1].IsInteger() {
			return nil, errf(fi.Decl.Line, 1, "%s must have signature void %s(int, int)", HandlerName, HandlerName)
		}
	}
	a.buildCallGraph()
	return a.out, nil
}

func (a *analyzer) collectGlobals() error {
	a.scopes = []map[string]*Symbol{make(map[string]*Symbol)}
	top := a.scopes[0]
	for _, g := range a.unit.Globals {
		if err := a.checkTypeAllowed(g.Type, g.Line); err != nil {
			return err
		}
		if _, dup := top[g.Name]; dup {
			return errf(g.Line, 1, "redefinition of %q", g.Name)
		}
		if _, isAPI := abi.APIByName(g.Name); isAPI {
			return errf(g.Line, 1, "%q collides with an OS API name", g.Name)
		}
		g.Sym = &Symbol{Kind: SymGlobalVar, Name: g.Name, Type: g.Type, Unit: a.unit.Name}
		top[g.Name] = g.Sym
		a.out.Globals[g.Name] = g
	}
	for _, fn := range a.unit.Funcs {
		if _, dup := top[fn.Name]; dup {
			return errf(fn.Line, 1, "redefinition of %q", fn.Name)
		}
		if _, isAPI := abi.APIByName(fn.Name); isAPI {
			return errf(fn.Line, 1, "function %q collides with an OS API name", fn.Name)
		}
		if err := a.checkTypeAllowed(fn.Sig.Ret, fn.Line); err != nil {
			return err
		}
		for _, pt := range fn.Sig.Params {
			if err := a.checkTypeAllowed(pt, fn.Line); err != nil {
				return err
			}
		}
		fn.Sym = &Symbol{Kind: SymFuncName, Name: fn.Name, Sig: fn.Sig, Unit: a.unit.Name}
		top[fn.Name] = fn.Sym
	}
	return nil
}

// checkTypeAllowed enforces the dialect's type restrictions.
func (a *analyzer) checkTypeAllowed(t *Type, line int) error {
	if a.dialect == DialectRestricted {
		switch t.Kind {
		case TPtr:
			return errf(line, 1, "pointers are not allowed in Amulet C (restricted dialect)")
		case TFuncPtr:
			return errf(line, 1, "function pointers are not allowed in Amulet C (restricted dialect)")
		}
	}
	if t.Kind == TPtr || t.Kind == TArray {
		if t.Elem.Kind == TVoid {
			return errf(line, 1, "void element type is not allowed")
		}
		return a.checkTypeAllowed(t.Elem, line)
	}
	return nil
}

func (a *analyzer) push() { a.scopes = append(a.scopes, make(map[string]*Symbol)) }
func (a *analyzer) pop()  { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *analyzer) define(name string, s *Symbol, line, col int) error {
	sc := a.scopes[len(a.scopes)-1]
	if _, dup := sc[name]; dup {
		return errf(line, col, "redefinition of %q in this scope", name)
	}
	sc[name] = s
	return nil
}

func (a *analyzer) lookup(name string) *Symbol {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if s, ok := a.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (a *analyzer) checkFunc(fn *FuncDecl) error {
	info := &FuncInfo{Name: fn.Name, Decl: fn, NParamWords: len(fn.Sig.Params)}
	a.curFn = fn
	a.curInfo = info
	a.out.Funcs[fn.Name] = info

	a.push()
	defer a.pop()
	for i, pname := range fn.Params {
		sym := &Symbol{Kind: SymParam, Name: pname, Type: fn.Sig.Params[i], Unit: a.unit.Name}
		if err := a.define(pname, sym, fn.Line, 1); err != nil {
			return err
		}
		info.Locals = append(info.Locals, sym)
	}
	if err := a.checkBlock(fn.Body); err != nil {
		return err
	}
	// Frame estimate: every local and param gets a word-aligned slot.
	frame := 0
	for _, l := range info.Locals {
		frame += (l.Type.Size() + 1) &^ 1
	}
	info.FrameBytes = frame
	return nil
}

func (a *analyzer) checkBlock(b *Block) error {
	a.push()
	defer a.pop()
	for _, s := range b.Stmts {
		if err := a.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (a *analyzer) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return a.checkBlock(st)
	case *DeclStmt:
		line, col := st.Pos()
		if err := a.checkTypeAllowed(st.Type, line); err != nil {
			return err
		}
		sym := &Symbol{Kind: SymLocalVar, Name: st.Name, Type: st.Type, Unit: a.unit.Name}
		st.Sym = sym
		if st.Init != nil {
			ty, err := a.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if err := a.assignable(st.Type, ty, st.Init); err != nil {
				return err
			}
		}
		if err := a.define(st.Name, sym, line, col); err != nil {
			return err
		}
		a.curInfo.Locals = append(a.curInfo.Locals, sym)
		return nil
	case *ExprStmt:
		_, err := a.checkExpr(st.X)
		return err
	case *IfStmt:
		if err := a.checkCond(st.Cond); err != nil {
			return err
		}
		if err := a.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := a.checkCond(st.Cond); err != nil {
			return err
		}
		a.loop++
		defer func() { a.loop-- }()
		return a.checkBlock(st.Body)
	case *ForStmt:
		a.push()
		defer a.pop()
		if st.Init != nil {
			if err := a.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := a.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := a.checkExpr(st.Post); err != nil {
				return err
			}
		}
		a.loop++
		defer func() { a.loop-- }()
		return a.checkBlock(st.Body)
	case *ReturnStmt:
		line, col := st.Pos()
		ret := a.curFn.Sig.Ret
		if st.X == nil {
			if ret.Kind != TVoid {
				return errf(line, col, "%s must return a value", a.curFn.Name)
			}
			return nil
		}
		if ret.Kind == TVoid {
			return errf(line, col, "void function %s cannot return a value", a.curFn.Name)
		}
		ty, err := a.checkExpr(st.X)
		if err != nil {
			return err
		}
		return a.assignable(ret, ty, st.X)
	case *BreakStmt:
		if a.loop == 0 {
			line, col := st.Pos()
			return errf(line, col, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if a.loop == 0 {
			line, col := st.Pos()
			return errf(line, col, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("cc: internal: unknown statement %T", s)
}

func (a *analyzer) checkCond(e Expr) error {
	ty, err := a.checkExpr(e)
	if err != nil {
		return err
	}
	line, col := e.Pos()
	if !ty.IsScalar() {
		return errf(line, col, "condition must be scalar, got %s", ty)
	}
	return nil
}

// assignable checks whether a value of type src may be stored into dst.
func (a *analyzer) assignable(dst, src *Type, at Expr) error {
	line, col := at.Pos()
	switch {
	case dst.IsInteger() && src.IsInteger():
		return nil
	case dst.Kind == TPtr && src.Kind == TPtr:
		return nil // lax pointer compatibility, as in pre-ANSI C
	case dst.Kind == TPtr && src.Kind == TArray:
		return nil // array decay
	case dst.Kind == TFuncPtr && src.Kind == TFuncPtr:
		return nil
	case dst.Kind == TPtr && src.IsInteger():
		if lit, ok := at.(*NumLit); ok && lit.Val == 0 {
			return nil // null pointer constant
		}
	}
	return errf(line, col, "cannot assign %s to %s", src, dst)
}

func (a *analyzer) setType(e Expr, t *Type) *Type {
	a.out.Types[e] = t
	return t
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Sym != nil && (x.Sym.Kind == SymGlobalVar || x.Sym.Kind == SymLocalVar || x.Sym.Kind == SymParam)
	case *Index:
		return true
	case *Unary:
		return x.Op == "*"
	}
	return false
}

func (a *analyzer) checkExpr(e Expr) (*Type, error) {
	line, col := e.Pos()
	switch x := e.(type) {
	case *NumLit:
		return a.setType(e, TypeInt), nil

	case *StrLit:
		if a.dialect == DialectRestricted {
			return nil, errf(line, col, "string literals need pointers and are not allowed in Amulet C; use char arrays")
		}
		if _, seen := a.strIdx[x.Val]; !seen {
			a.strIdx[x.Val] = len(a.out.Strings)
			a.out.Strings = append(a.out.Strings, x.Val)
		}
		return a.setType(e, PtrTo(TypeChar)), nil

	case *Ident:
		sym := a.lookup(x.Name)
		if sym == nil {
			if api, ok := abi.APIByName(x.Name); ok {
				x.Sym = &Symbol{Kind: SymAPIName, Name: api.Name, Unit: "os"}
				return a.setType(e, TypeVoid), nil // callable only
			}
			return nil, errf(line, col, "undefined identifier %q", x.Name)
		}
		x.Sym = sym
		if sym.Kind == SymFuncName {
			return a.setType(e, &Type{Kind: TFuncPtr, Sig: sym.Sig}), nil
		}
		return a.setType(e, sym.Type), nil

	case *Unary:
		return a.checkUnary(x)

	case *Binary:
		return a.checkBinary(x)

	case *Assign:
		lt, err := a.checkExpr(x.LHS)
		if err != nil {
			return nil, err
		}
		if !isLvalue(x.LHS) {
			return nil, errf(line, col, "left side of %s is not assignable", x.Op)
		}
		if lt.Kind == TArray {
			return nil, errf(line, col, "arrays are not assignable")
		}
		rt, err := a.checkExpr(x.RHS)
		if err != nil {
			return nil, err
		}
		if x.Op == "=" {
			if err := a.assignable(lt, rt, x.RHS); err != nil {
				return nil, err
			}
		} else {
			// Compound ops require integer operands (or ptr += int).
			if lt.Kind == TPtr && (x.Op == "+=" || x.Op == "-=") && rt.IsInteger() {
				// ok: pointer stepping
			} else if !lt.IsInteger() || !rt.IsInteger() {
				return nil, errf(line, col, "operator %s needs integer operands", x.Op)
			}
		}
		return a.setType(e, lt), nil

	case *IncDec:
		t, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !isLvalue(x.X) {
			return nil, errf(line, col, "%s needs an assignable operand", x.Op)
		}
		if !t.IsInteger() && t.Kind != TPtr {
			return nil, errf(line, col, "%s needs an integer or pointer operand", x.Op)
		}
		return a.setType(e, t), nil

	case *Index:
		at, err := a.checkExpr(x.Arr)
		if err != nil {
			return nil, err
		}
		it, err := a.checkExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		if !it.IsInteger() {
			return nil, errf(line, col, "array index must be an integer, got %s", it)
		}
		switch at.Kind {
		case TArray:
			a.noteCheckSite(x.Idx)
			return a.setType(e, at.Elem), nil
		case TPtr:
			if a.dialect == DialectRestricted {
				return nil, errf(line, col, "pointer indexing is not allowed in Amulet C")
			}
			a.curInfo.CheckSites++
			return a.setType(e, at.Elem), nil
		}
		return nil, errf(line, col, "cannot index %s", at)

	case *Call:
		return a.checkCall(x)
	}
	return nil, fmt.Errorf("cc: internal: unknown expression %T", e)
}

// noteCheckSite counts a direct array access as instrumentable unless the
// index is a literal (provably in range, checked at compile time instead).
func (a *analyzer) noteCheckSite(idx Expr) {
	if _, lit := idx.(*NumLit); !lit {
		a.curInfo.CheckSites++
	}
}

func (a *analyzer) checkUnary(x *Unary) (*Type, error) {
	line, col := x.Pos()
	switch x.Op {
	case "-", "~":
		t, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsInteger() {
			return nil, errf(line, col, "unary %s needs an integer operand", x.Op)
		}
		return a.setType(x, TypeInt), nil
	case "!":
		t, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() {
			return nil, errf(line, col, "unary ! needs a scalar operand")
		}
		return a.setType(x, TypeInt), nil
	case "*":
		if a.dialect == DialectRestricted {
			return nil, errf(line, col, "pointer dereference is not allowed in Amulet C")
		}
		t, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if t.Kind != TPtr {
			return nil, errf(line, col, "cannot dereference %s", t)
		}
		a.curInfo.CheckSites++
		return a.setType(x, t.Elem), nil
	case "&":
		if a.dialect == DialectRestricted {
			return nil, errf(line, col, "address-of is not allowed in Amulet C")
		}
		// &func yields a function pointer.
		if id, ok := x.X.(*Ident); ok {
			if sym := a.lookup(id.Name); sym != nil && sym.Kind == SymFuncName {
				id.Sym = sym
				a.setType(id, &Type{Kind: TFuncPtr, Sig: sym.Sig})
				return a.setType(x, &Type{Kind: TFuncPtr, Sig: sym.Sig}), nil
			}
		}
		t, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !isLvalue(x.X) {
			return nil, errf(line, col, "cannot take the address of this expression")
		}
		if t.Kind == TArray {
			return a.setType(x, PtrTo(t.Elem)), nil
		}
		return a.setType(x, PtrTo(t)), nil
	}
	return nil, errf(line, col, "unknown unary operator %s", x.Op)
}

func (a *analyzer) checkBinary(x *Binary) (*Type, error) {
	line, col := x.Pos()
	lt, err := a.checkExpr(x.L)
	if err != nil {
		return nil, err
	}
	rt, err := a.checkExpr(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "&&", "||":
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, errf(line, col, "%s needs scalar operands", x.Op)
		}
		return a.setType(x, TypeInt), nil
	case "==", "!=", "<", "<=", ">", ">=":
		okInt := lt.IsInteger() && rt.IsInteger()
		okPtr := (lt.Kind == TPtr || lt.Kind == TArray) && (rt.Kind == TPtr || rt.Kind == TArray)
		if !okInt && !okPtr {
			return nil, errf(line, col, "cannot compare %s with %s", lt, rt)
		}
		return a.setType(x, TypeInt), nil
	case "+", "-":
		// Pointer arithmetic (full dialect only; restricted has no pointers).
		if lt.Kind == TPtr && rt.IsInteger() {
			return a.setType(x, lt), nil
		}
		if lt.Kind == TArray && rt.IsInteger() {
			return a.setType(x, PtrTo(lt.Elem)), nil
		}
		if x.Op == "+" && lt.IsInteger() && rt.Kind == TPtr {
			return a.setType(x, rt), nil
		}
		fallthrough
	case "*", "/", "%", "&", "|", "^", "<<", ">>":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, errf(line, col, "operator %s needs integer operands, got %s and %s", x.Op, lt, rt)
		}
		// Unsigned if either side is unsigned (C-ish promotion).
		if lt.Kind == TUint || rt.Kind == TUint {
			return a.setType(x, TypeUint), nil
		}
		return a.setType(x, TypeInt), nil
	}
	return nil, errf(line, col, "unknown operator %s", x.Op)
}

func (a *analyzer) checkCall(x *Call) (*Type, error) {
	line, col := x.Pos()
	// Direct call through an identifier?
	if id, ok := x.Fun.(*Ident); ok {
		// OS API?
		if a.lookup(id.Name) == nil {
			if api, isAPI := abi.APIByName(id.Name); isAPI {
				id.Sym = &Symbol{Kind: SymAPIName, Name: api.Name, Unit: "os"}
				a.setType(id, TypeVoid)
				if len(x.Args) != api.NArgs {
					return nil, errf(line, col, "%s takes %d argument(s), got %d", api.Name, api.NArgs, len(x.Args))
				}
				for _, arg := range x.Args {
					t, err := a.checkExpr(arg)
					if err != nil {
						return nil, err
					}
					if !t.IsScalar() && t.Kind != TArray {
						return nil, errf(line, col, "API argument must be scalar or array, got %s", t)
					}
				}
				a.curInfo.APICalls = append(a.curInfo.APICalls, api.Name)
				if api.HasRet {
					return a.setType(x, TypeInt), nil
				}
				return a.setType(x, TypeVoid), nil
			}
			return nil, errf(line, col, "undefined function %q", id.Name)
		}
		sym := a.lookup(id.Name)
		if sym.Kind == SymFuncName {
			id.Sym = sym
			a.setType(id, &Type{Kind: TFuncPtr, Sig: sym.Sig})
			if err := a.checkArgs(sym.Sig, x.Args, line, col, id.Name); err != nil {
				return nil, err
			}
			a.curInfo.Callees = append(a.curInfo.Callees, id.Name)
			return a.setType(x, sym.Sig.Ret), nil
		}
		// fall through: calling a variable (function pointer)
	}
	// Indirect call through a function-pointer expression.
	if a.dialect == DialectRestricted {
		return nil, errf(line, col, "indirect calls are not allowed in Amulet C")
	}
	ft, err := a.checkExpr(x.Fun)
	if err != nil {
		return nil, err
	}
	if ft.Kind != TFuncPtr {
		return nil, errf(line, col, "cannot call value of type %s", ft)
	}
	a.curInfo.FuncPtrCall = true
	a.curInfo.CheckSites++ // the call target itself is checked
	if ft.Sig != nil {
		if err := a.checkArgs(ft.Sig, x.Args, line, col, "function pointer"); err != nil {
			return nil, err
		}
		return a.setType(x, ft.Sig.Ret), nil
	}
	return a.setType(x, TypeInt), nil
}

func (a *analyzer) checkArgs(sig *FuncSig, args []Expr, line, col int, what string) error {
	if len(args) != len(sig.Params) {
		return errf(line, col, "%s takes %d argument(s), got %d", what, len(sig.Params), len(args))
	}
	for i, arg := range args {
		t, err := a.checkExpr(arg)
		if err != nil {
			return err
		}
		if err := a.assignable(sig.Params[i], t, arg); err != nil {
			return err
		}
	}
	return nil
}

// buildCallGraph estimates per-function stack bounds by depth-first walk of
// the call graph — the AFT phase-1 stack analysis. Recursion makes a bound
// impossible (-1), exactly the condition the paper notes forces the AFT to
// fall back to a default stack and rely on the MPU to catch overflow.
func (a *analyzer) buildCallGraph() {
	memo := make(map[string]int)
	onPath := make(map[string]bool)
	var depth func(name string) int
	depth = func(name string) int {
		fi, ok := a.out.Funcs[name]
		if !ok {
			return 0
		}
		if v, done := memo[name]; done {
			return v
		}
		if onPath[name] {
			fi.Recursive = true
			fi.MaxStack = -1
			a.out.Recursive = true
			return -1
		}
		onPath[name] = true
		defer delete(onPath, name)
		worst := 0
		for _, callee := range fi.Callees {
			d := depth(callee)
			if d < 0 {
				memo[name] = -1
				fi.Recursive = true
				fi.MaxStack = -1
				return -1
			}
			if d+callOverheadBytes > worst {
				worst = d + callOverheadBytes
			}
		}
		if fi.FuncPtrCall {
			// Indirect targets are unknowable statically; assume one more
			// frame of gate-sized depth (documented approximation).
			if GateAppStackBytes+callOverheadBytes > worst {
				worst = GateAppStackBytes + callOverheadBytes
			}
		}
		if len(fi.APICalls) > 0 && GateAppStackBytes > worst {
			worst = GateAppStackBytes
		}
		v := fi.FrameBytes + worst
		memo[name] = v
		fi.MaxStack = v
		return v
	}
	max := 0
	for name := range a.out.Funcs {
		d := depth(name)
		if d < 0 {
			max = -1
			break
		}
		// Entered via the dispatch veneer: add the call overhead once.
		if d+callOverheadBytes > max {
			max = d + callOverheadBytes
		}
	}
	a.out.MaxStack = max
}
