package cc

// Parse parses a compilation unit. name becomes the unit's symbol prefix.
func Parse(name, src string) (*Unit, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, unit: &Unit{Name: name}}
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	return p.unit, nil
}

type parser struct {
	toks []Token
	pos  int
	unit *Unit
}

func (p *parser) tok() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(text string) bool {
	t := p.tok()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	t := p.tok()
	if !p.at(text) {
		return t, errf(t.Line, t.Col, "expected %q, found %s", text, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.tok()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

// unsupported keywords that produce targeted diagnostics, mirroring the
// AFT's phase-one language checks.
var unsupportedKw = map[string]string{
	"goto":    "goto is not allowed in AmuletC (AFT phase-1 language check)",
	"asm":     "inline assembly is not allowed in AmuletC (AFT phase-1 language check)",
	"struct":  "structs are not supported by this AmuletC dialect",
	"union":   "unions are not supported by this AmuletC dialect",
	"switch":  "switch is not supported; use if/else chains",
	"do":      "do/while is not supported; use while",
	"sizeof":  "sizeof is not supported; sizes are fixed (int/uint=2, char=1)",
	"typedef": "typedef is not supported",
	"enum":    "enums are not supported; use const int globals",
	"float":   "floating point is not supported on this MCU",
	"double":  "floating point is not supported on this MCU",
	"static":  "static is not supported; file scope is already private to the app",
	"long":    "only 16-bit int/uint/char exist in AmuletC",
	"short":   "only 16-bit int/uint/char exist in AmuletC",
}

func (p *parser) checkUnsupported() error {
	t := p.tok()
	if t.Kind == TokKeyword {
		if msg, bad := unsupportedKw[t.Text]; bad {
			return errf(t.Line, t.Col, "%s", msg)
		}
		if t.Text == "signed" || t.Text == "unsigned" {
			return errf(t.Line, t.Col, "use int/uint instead of signed/unsigned")
		}
	}
	return nil
}

func (p *parser) parseUnit() error {
	for p.tok().Kind != TokEOF {
		if err := p.checkUnsupported(); err != nil {
			return err
		}
		isConst := p.accept("const")
		base, err := p.parseBaseType()
		if err != nil {
			return err
		}
		// Function pointer declarator at file scope: T (*name)(params)
		if p.at("(") {
			g, err := p.parseFuncPtrGlobal(base, isConst)
			if err != nil {
				return err
			}
			p.unit.Globals = append(p.unit.Globals, g)
			continue
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		if p.at("(") { // function definition
			if isConst {
				return errf(nameTok.Line, nameTok.Col, "functions cannot be const")
			}
			fn, err := p.parseFunc(base, nameTok)
			if err != nil {
				return err
			}
			p.unit.Funcs = append(p.unit.Funcs, fn)
			continue
		}
		g, err := p.parseGlobalRest(base, nameTok, isConst)
		if err != nil {
			return err
		}
		p.unit.Globals = append(p.unit.Globals, g)
	}
	return nil
}

// parseBaseType parses a scalar type with optional '*' suffixes.
func (p *parser) parseBaseType() (*Type, error) {
	if err := p.checkUnsupported(); err != nil {
		return nil, err
	}
	t := p.tok()
	if t.Kind != TokKeyword {
		return nil, errf(t.Line, t.Col, "expected type, found %s", t)
	}
	var base *Type
	switch t.Text {
	case "int":
		base = TypeInt
	case "uint":
		base = TypeUint
	case "char":
		base = TypeChar
	case "void":
		base = TypeVoid
	default:
		return nil, errf(t.Line, t.Col, "expected type, found %s", t)
	}
	p.pos++
	for p.accept("*") {
		base = PtrTo(base)
	}
	return base, nil
}

// parseFuncPtrType parses "(*name)(params)" after the base type; returns the
// variable name and the funcptr type.
func (p *parser) parseFuncPtrType(ret *Type) (string, *Type, error) {
	if _, err := p.expect("("); err != nil {
		return "", nil, err
	}
	if _, err := p.expect("*"); err != nil {
		return "", nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return "", nil, err
	}
	params, _, err := p.parseParamTypes()
	if err != nil {
		return "", nil, err
	}
	return nameTok.Text, &Type{Kind: TFuncPtr, Sig: &FuncSig{Ret: ret, Params: params}}, nil
}

func (p *parser) parseFuncPtrGlobal(ret *Type, isConst bool) (*GlobalDecl, error) {
	line := p.tok().Line
	name, ty, err := p.parseFuncPtrType(ret)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name, Type: ty, Const: isConst, Line: line}
	if p.accept("=") {
		t := p.tok()
		return nil, errf(t.Line, t.Col, "function-pointer globals cannot have static initializers; assign in a handler")
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

// parseParamTypes parses "(params)" returning types and names.
func (p *parser) parseParamTypes() ([]*Type, []string, error) {
	if _, err := p.expect("("); err != nil {
		return nil, nil, err
	}
	var types []*Type
	var names []string
	if p.accept(")") {
		return types, names, nil
	}
	if p.at("void") && p.toks[p.pos+1].Text == ")" {
		p.pos += 2
		return types, names, nil
	}
	for {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, nil, err
		}
		if p.at("(") {
			name, ty, err := p.parseFuncPtrType(base)
			if err != nil {
				return nil, nil, err
			}
			types = append(types, ty)
			names = append(names, name)
		} else {
			name := ""
			if p.tok().Kind == TokIdent {
				name = p.next().Text
			}
			if base.Kind == TVoid {
				t := p.tok()
				return nil, nil, errf(t.Line, t.Col, "parameter cannot have void type")
			}
			types = append(types, base)
			names = append(names, name)
		}
		if p.accept(")") {
			return types, names, nil
		}
		if _, err := p.expect(","); err != nil {
			return nil, nil, err
		}
	}
}

func (p *parser) parseFunc(ret *Type, nameTok Token) (*FuncDecl, error) {
	types, names, err := p.parseParamTypes()
	if err != nil {
		return nil, err
	}
	for i, n := range names {
		if n == "" {
			t := p.tok()
			return nil, errf(t.Line, t.Col, "parameter %d of %s needs a name", i+1, nameTok.Text)
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{
		Name:   nameTok.Text,
		Sig:    &FuncSig{Ret: ret, Params: types},
		Params: names,
		Body:   body,
		Line:   nameTok.Line,
	}, nil
}

func (p *parser) parseGlobalRest(base *Type, nameTok Token, isConst bool) (*GlobalDecl, error) {
	ty := base
	if p.accept("[") {
		szTok := p.tok()
		sz, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		if sz <= 0 || sz > 16384 {
			return nil, errf(szTok.Line, szTok.Col, "array length %d out of range", sz)
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		ty = &Type{Kind: TArray, Elem: base, Len: int(sz)}
	}
	if ty.Kind == TVoid {
		return nil, errf(nameTok.Line, nameTok.Col, "variable %s cannot have void type", nameTok.Text)
	}
	g := &GlobalDecl{Name: nameTok.Text, Type: ty, Const: isConst, Line: nameTok.Line}
	if p.accept("=") {
		init, err := p.parseGlobalInit(ty)
		if err != nil {
			return nil, err
		}
		g.Init = init
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) parseGlobalInit(ty *Type) ([]int32, error) {
	t := p.tok()
	switch {
	case ty.Kind == TArray && p.accept("{"):
		var vals []int32
		for {
			v, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.accept("}") {
				break
			}
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
			if p.accept("}") { // trailing comma
				break
			}
		}
		if len(vals) > ty.Len {
			return nil, errf(t.Line, t.Col, "too many initializers (%d) for array of %d", len(vals), ty.Len)
		}
		return vals, nil
	case ty.Kind == TArray && ty.Elem.Kind == TChar && p.tok().Kind == TokString:
		s := p.next()
		if len(s.Str) > ty.Len {
			return nil, errf(s.Line, s.Col, "string initializer longer than array")
		}
		vals := make([]int32, len(s.Str))
		for i := range s.Str {
			vals[i] = int32(s.Str[i])
		}
		return vals, nil
	default:
		v, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		return []int32{v}, nil
	}
}

// parseConstExpr evaluates a constant expression (literals, unary minus,
// and | for flag composition).
func (p *parser) parseConstExpr() (int32, error) {
	v, err := p.parseConstAtom()
	if err != nil {
		return 0, err
	}
	for p.accept("|") {
		r, err := p.parseConstAtom()
		if err != nil {
			return 0, err
		}
		v |= r
	}
	return v, nil
}

func (p *parser) parseConstAtom() (int32, error) {
	neg := false
	for p.accept("-") {
		neg = !neg
	}
	t := p.next()
	if t.Kind != TokNumber && t.Kind != TokChar {
		return 0, errf(t.Line, t.Col, "expected constant, found %s", t)
	}
	v := t.Num
	if neg {
		v = -v
	}
	return v, nil
}

// ---- Statements ----

func (p *parser) parseBlock() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{open.Line, open.Col}}
	for !p.accept("}") {
		if p.tok().Kind == TokEOF {
			return nil, errf(open.Line, open.Col, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) isTypeStart() bool {
	t := p.tok()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "int", "uint", "char", "void", "const":
		return true
	}
	return false
}

func (p *parser) parseStmt() (Stmt, error) {
	if err := p.checkUnsupported(); err != nil {
		return nil, err
	}
	t := p.tok()
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at("if"):
		return p.parseIf()
	case p.at("while"):
		return p.parseWhile()
	case p.at("for"):
		return p.parseFor()
	case p.at("return"):
		p.pos++
		rs := &ReturnStmt{stmtBase: stmtBase{t.Line, t.Col}}
		if !p.at(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return rs, nil
	case p.at("break"):
		p.pos++
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{t.Line, t.Col}}, nil
	case p.at("continue"):
		p.pos++
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{t.Line, t.Col}}, nil
	case p.isTypeStart():
		return p.parseDeclStmt()
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase{t.Line, t.Col}, x}, nil
	}
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	t := p.tok()
	p.accept("const") // const locals allowed, treated as plain locals
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	var name string
	ty := base
	if p.at("(") {
		name, ty, err = p.parseFuncPtrType(base)
		if err != nil {
			return nil, err
		}
	} else {
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		name = nameTok.Text
		if p.accept("[") {
			sz, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			if sz <= 0 || sz > 4096 {
				return nil, errf(t.Line, t.Col, "array length %d out of range", sz)
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			ty = &Type{Kind: TArray, Elem: base, Len: int(sz)}
		}
	}
	if ty.Kind == TVoid {
		return nil, errf(t.Line, t.Col, "variable %s cannot have void type", name)
	}
	ds := &DeclStmt{stmtBase: stmtBase{t.Line, t.Col}, Name: name, Type: ty}
	if p.accept("=") {
		if ty.Kind == TArray {
			return nil, errf(t.Line, t.Col, "local arrays cannot have initializers")
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ds.Init = x
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{stmtBase: stmtBase{t.Line, t.Col}, Cond: cond, Then: then}
	if p.accept("else") {
		if p.at("if") {
			el, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = el
		} else {
			el, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			is.Else = el
		}
	}
	return is, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase: stmtBase{t.Line, t.Col}, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{stmtBase: stmtBase{t.Line, t.Col}}
	if !p.at(";") {
		if p.isTypeStart() {
			init, err := p.parseDeclStmt() // consumes ';'
			if err != nil {
				return nil, err
			}
			fs.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{stmtBase{t.Line, t.Col}, x}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.pos++
	}
	if !p.at(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// ---- Expressions (precedence climbing) ----

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true,
	"%=": true, "&=": true, "|=": true, "^=": true,
}

func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.pos++
		rhs, err := p.parseExpr() // right associative
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase{t.Line, t.Col}, t.Text, lhs, rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase{t.Line, t.Col}, t.Text, lhs, rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.tok()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase{t.Line, t.Col}, t.Text, x}, nil
		case "++", "--":
			return nil, errf(t.Line, t.Col, "prefix %s is not supported; use postfix", t.Text)
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		switch {
		case p.at("("):
			p.pos++
			call := &Call{exprBase: exprBase{t.Line, t.Col}, Fun: x}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(")") {
						break
					}
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			x = call
		case p.at("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase{t.Line, t.Col}, x, idx}
		case p.at("++") || p.at("--"):
			p.pos++
			x = &IncDec{exprBase{t.Line, t.Col}, t.Text, x}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.tok()
	switch t.Kind {
	case TokNumber:
		p.pos++
		return &NumLit{exprBase{t.Line, t.Col}, t.Num}, nil
	case TokChar:
		p.pos++
		return &NumLit{exprBase{t.Line, t.Col}, t.Num}, nil
	case TokString:
		p.pos++
		return &StrLit{exprBase{t.Line, t.Col}, t.Str}, nil
	case TokIdent:
		p.pos++
		return &Ident{exprBase: exprBase{t.Line, t.Col}, Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	case TokKeyword:
		if err := p.checkUnsupported(); err != nil {
			return nil, err
		}
	}
	return nil, errf(t.Line, t.Col, "unexpected %s in expression", t)
}
