// Package cc implements the AmuletC compiler: a small C dialect for
// event-driven Amulet applications, compiled to the simulated MSP430-class
// ISA. The compiler is the vehicle for the paper's contribution — it is
// where isolation checks are inserted:
//
//   - DialectRestricted reproduces the original Amulet C: no pointers, no
//     recursion, no function pointers; every dynamically-indexed array
//     access is routed through a bounds-checking runtime helper call
//     (the "Feature Limited" memory model).
//   - DialectFull allows pointers (including function pointers) and
//     recursion; the isolation mode decides what is emitted around each
//     computed memory access: nothing (NoIsolation), a lower-bound compare
//     (MPU), or lower+upper compares (SoftwareOnly).
//
// The pipeline is Lex -> Parse -> Analyze -> Generate; Compile runs it all.
package cc

import "fmt"

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier, keyword, punct text
	Num  int32  // value for TokNumber and TokChar
	Str  string // decoded value for TokString
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokNumber:
		return fmt.Sprintf("number %d", t.Num)
	case TokString:
		return fmt.Sprintf("string %q", t.Str)
	case TokChar:
		return fmt.Sprintf("char %q", rune(t.Num))
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "uint": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"const": true, "goto": true, "asm": true,
	// Reserved to give good errors on unsupported C:
	"struct": true, "union": true, "switch": true, "case": true,
	"default": true, "do": true, "sizeof": true, "static": true,
	"typedef": true, "enum": true, "float": true, "double": true,
	"long": true, "short": true, "signed": true, "unsigned": true,
}

// Error is a compile-time diagnostic.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("cc: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{line, col, fmt.Sprintf(format, args...)}
}
