package cc

import (
	"testing"

	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

const fusionProbeSrc = `
int g;
int main() {
    int i; int s;
    s = 0;
    for (i = 0; i < 25; i++) {
        if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
    }
    g = s;
    return s;
}
`

// TestCompiledProgramsFuse checks CompileProgram's predecode cache carries
// fused superinstructions for real compiled code (the loop conditions above
// compile to CMP+Jcc pairs), and that isa.SetFusion(false) at build time
// yields the same cache without any (the -nofuse escape hatch).
func TestCompiledProgramsFuse(t *testing.T) {
	defer isa.SetFusion(true)
	build := func() *Program {
		p, err := CompileProgram("fuseprobe", fusionProbeSrc, ProgramOptions{Mode: ModeMPU, EnableMPU: true})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	fused := build()
	if fused.Text == nil || fused.Text.FusedHeads() == 0 {
		t.Fatal("compiled program has no fused superinstructions")
	}
	isa.SetFusion(false)
	plain := build()
	if plain.Text == nil || plain.Text.FusedHeads() != 0 {
		t.Fatalf("fusion disabled at build time, got %d fused heads", plain.Text.FusedHeads())
	}
	if fused.Text.Cached() != plain.Text.Cached() {
		t.Fatalf("fusion changed the slot population: %d vs %d", fused.Text.Cached(), plain.Text.Cached())
	}
}

// TestProgramEngineMatrixEquivalence runs one compiled program under the
// full {fusion, certificates} matrix and asserts identical observable
// results — the cc-level slice of the torture battery.
func TestProgramEngineMatrixEquivalence(t *testing.T) {
	defer func() {
		isa.SetFusion(true)
		mem.SetExecCerts(true)
	}()
	type outcome struct {
		stop          cpu.StopReason
		exit          uint16
		cycles, insns uint64
		r, w, f       uint64
		viol          uint64
	}
	var results []outcome
	for _, cfg := range []struct {
		name        string
		fuse, certs bool
	}{
		{"fused+certified", true, true},
		{"fused+perword", true, false},
		{"unfused+certified", false, true},
		{"unfused+perword", false, false},
	} {
		isa.SetFusion(cfg.fuse)
		mem.SetExecCerts(cfg.certs)
		p, err := CompileProgram("fuseprobe", fusionProbeSrc, ProgramOptions{Mode: ModeMPU, EnableMPU: true})
		if err != nil {
			t.Fatal(err)
		}
		m := p.Load()
		stop, fault := m.Run(10_000_000)
		if fault != nil {
			t.Fatalf("%s: %v", cfg.name, fault)
		}
		r, w, f := m.Bus.Stats()
		results = append(results, outcome{stop, m.CPU.ExitCode, m.CPU.Cycles, m.CPU.Insns, r, w, f, m.MPU.Violations()})
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("engine matrix diverged:\n  base: %+v\n  cfg %d: %+v", results[0], i, results[i])
		}
	}
}
