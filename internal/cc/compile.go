package cc

import (
	"fmt"
	"sync"

	"amuletiso/internal/abi"
	"amuletiso/internal/asm"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
)

// FaultExitCode is the halt-port value a standalone program's fault stub
// writes, distinguishing isolation faults from normal exits.
const FaultExitCode uint16 = 0xFA17

// ProgramOptions configures CompileProgram.
type ProgramOptions struct {
	Mode Mode
	// StackBytes sizes the program stack; 0 derives it from the analyzer's
	// estimate (with a safety margin) or a 256-byte default when recursion
	// makes the estimate impossible — the same fallback the paper's AFT
	// takes.
	StackBytes int
	// EnableMPU makes the startup code program the MPU with the app plan
	// (seg1 execute-only up to the data segment, seg2 read-write, seg3 no
	// access) before calling main, so upper-bound violations fault in
	// "hardware" even without the kernel.
	EnableMPU bool
	// ShadowReturnStack enables the InfoMem shadow return-address stack
	// (the paper's §5 extension); see cc.GenOptions.
	ShadowReturnStack bool
}

// Program is a linked standalone AmuletC program: the unit's code plus the
// runtime library and a tiny startup, ready to run on a bare machine. The
// kernel-hosted path goes through internal/aft instead; this form exists for
// compiler tests and for the paper's single-app benchmarks (Figure 3).
type Program struct {
	Name    string
	Mode    Mode
	Image   *asm.Image
	Checked *Checked
	Options ProgramOptions

	// Text is the decode-once instruction cache over the program's
	// executable text (OS/runtime code through the end of the app's code
	// segment), built at compile time and shared by every machine Load
	// returns. Load attaches it unless cpu.SetDecodeCache(false) is active.
	// Predecode includes the superinstruction fusion pass (CMP+Jcc,
	// MOV#imm+ALU, PUSH runs) unless isa.SetFusion disabled it at compile
	// time — the -nofuse escape hatch.
	Text *isa.Program

	// bootTmpl is the post-load memory snapshot prepared for COW sharing,
	// built lazily on the first Load. Subsequent machines boot as COW views
	// over it (or full clones with -nocow), so torture campaigns that load
	// thousands of machines from a shrunk corpus pay the erased-FRAM fill
	// and segment copy once.
	bootOnce sync.Once
	bootTmpl *mem.Template
}

// stackSize derives the stack reservation.
func stackSize(chk *Checked, opt ProgramOptions) int {
	if opt.StackBytes > 0 {
		return (opt.StackBytes + 1) &^ 1
	}
	if chk.MaxStack < 0 {
		return 256 // recursion: unbounded, take the default and let checks catch overflow
	}
	s := chk.MaxStack + 64
	if s < 128 {
		s = 128
	}
	return (s + 1) &^ 1
}

// CompileProgram compiles a single AmuletC unit with a main() entry into a
// runnable firmware image.
func CompileProgram(name, src string, opt ProgramOptions) (*Program, error) {
	unit, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	chk, err := Analyze(unit, opt.Mode.Dialect(), false)
	if err != nil {
		return nil, err
	}
	if _, ok := chk.Funcs["main"]; !ok {
		return nil, fmt.Errorf("cc: program %q has no main()", name)
	}

	b := asm.NewBuilder()
	if opt.ShadowReturnStack {
		// Shadow stack pointer + region live in InfoMem; the pointer
		// starts just past itself and the stack grows upward.
		b.Org(mem.InfoLo)
		b.Label(ShadowSPSym)
		b.Word(mem.InfoLo + 2)
	}
	b.Org(mem.FRAMLo)
	b.Label(abi.SymOSCodeLo)
	b.Label("__start")
	if opt.EnableMPU {
		emitMPUSetup(b, name, opt.ShadowReturnStack)
	}
	// SP <- app stack top; call main; halt with R12.
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.SP)},
		asm.Ref{Sym: abi.SymStackTop(name)}, asm.NoRef)
	b.EmitRef(isa.Instr{Op: isa.CALL, Src: isa.Imm(0)},
		asm.Ref{Sym: abi.SymFunc(name, "main")}, asm.NoRef)
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R12), Dst: isa.Abs(cpu.PortHalt)})
	b.Label("__spin")
	b.Branch(isa.JMP, "__spin")

	// Shared fault sink for the runtime library; halts with the fault code.
	b.Label("os.fault")
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(FaultExitCode), Dst: isa.Abs(cpu.PortHalt)})
	b.Branch(isa.JMP, "os.fault")

	if err := asm.Parse(RuntimeAsm, b); err != nil {
		return nil, fmt.Errorf("cc: runtime library: %w", err)
	}

	// App code region.
	b.Align(2)
	b.Label(abi.SymCodeLo(name))
	b.Label(abi.SymFault(name))
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(FaultExitCode), Dst: isa.Abs(cpu.PortHalt)})
	b.Branch(isa.JMP, abi.SymFault(name))
	if err := GenerateWithOptions(chk, opt.Mode,
		GenOptions{ShadowReturnStack: opt.ShadowReturnStack}, b); err != nil {
		return nil, err
	}
	b.Label(abi.SymCodeHi(name))

	// Data/stack segment, MPU-aligned: stack at the bottom (growing down
	// toward the execute-only code segment), then globals and strings.
	b.Align(mpu.Granularity)
	b.Label(abi.SymDataLo(name))
	b.Space(uint16(stackSize(chk, opt)))
	b.Label(abi.SymStackTop(name))
	if err := GenerateData(chk, b); err != nil {
		return nil, err
	}
	b.Align(mpu.Granularity)
	b.Label(abi.SymDataHi(name))

	img, err := b.Link()
	if err != nil {
		return nil, err
	}
	if ov := img.Overlaps(); ov != "" {
		return nil, fmt.Errorf("cc: layout: %s", ov)
	}
	img.Entry = img.MustSym("__start")
	// Text stops at the app's data segment: everything below it (startup,
	// runtime library, app code) is immutable at run time, everything above
	// (stack, globals) is not and must go through the live decoder. With the
	// cache globally disabled the decode would be thrown away at Load, so
	// skip it (torture's -nodecodecache campaigns compile thousands of
	// programs).
	var text *isa.Program
	if cpu.DecodeCacheEnabled() {
		text = isa.Predecode(img, []isa.TextRange{
			{Lo: mem.FRAMLo, Hi: img.MustSym(abi.SymDataLo(name))},
		})
	}
	return &Program{Name: name, Mode: opt.Mode, Image: img, Checked: chk, Options: opt, Text: text}, nil
}

// emitMPUSetup emits startup code that programs the MPU registers with the
// app plan using link-time boundary symbols. With the shadow stack enabled
// the InfoMem segment gets read-write rights: compiled app stores are all
// bound-checked against the data segment, so apps cannot reach it anyway.
func emitMPUSetup(b *asm.Builder, unit string, shadow bool) {
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(mpu.RegSEGB1)},
		asm.Ref{Sym: abi.SymDataLo(unit)}, asm.NoRef)
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(mpu.RegSEGB2)},
		asm.Ref{Sym: abi.SymDataHi(unit)}, asm.NoRef)
	sam := mpu.RWX(1, false, false, true) | mpu.RWX(2, true, true, false)
	if shadow {
		sam |= mpu.RWX(0, true, true, false)
	}
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(sam), Dst: isa.Abs(mpu.RegSAM)})
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(mpu.Password | mpu.CtlEnable), Dst: isa.Abs(mpu.RegCTL0)})
}

// Machine is a loaded standalone program ready to execute.
type Machine struct {
	CPU *cpu.CPU
	Bus *mem.Bus
	MPU *mpu.Unit
	Img *asm.Image
}

// Load instantiates a machine for the program. When the program was built
// with EnableMPU, a real MPU model is attached to the bus. The first Load
// snapshots the post-load memory image; later machines boot from it as COW
// views (full clones under the -nocow oracle) instead of replaying the load.
func (p *Program) Load() *Machine {
	p.bootOnce.Do(func() {
		scratch := mem.NewBus()
		p.Image.LoadInto(scratch)
		img := new(mem.BusImage)
		scratch.SnapshotData(img)
		p.bootTmpl = mem.NewTemplate(img)
	})
	var bus *mem.Bus
	if mem.COWEnabled() {
		bus = mem.NewBusCOW(p.bootTmpl, nil)
	} else {
		bus = mem.NewBusFrom(p.bootTmpl.Image())
	}
	c := cpu.New(bus)
	m := &Machine{CPU: c, Bus: bus, Img: p.Image}
	u := mpu.New()
	bus.Map(mpu.RegLo, mpu.RegHi, u)
	bus.SetChecker(u)
	m.MPU = u
	c.SetPC(p.Image.Entry)
	c.UseProgram(p.Text)
	return m
}

// Run executes the program to completion (halt) within the cycle budget.
func (m *Machine) Run(budget uint64) (cpu.StopReason, *cpu.Fault) {
	return m.CPU.Run(budget)
}

// Sym resolves a symbol address from the program image.
func (m *Machine) Sym(name string) uint16 { return m.Img.MustSym(name) }
