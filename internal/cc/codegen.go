package cc

import (
	"fmt"

	"amuletiso/internal/abi"
	"amuletiso/internal/asm"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
)

// Mode selects the isolation instrumentation the code generator emits around
// computed memory accesses — the four memory models of the paper's Table 1.
type Mode int

// Isolation modes.
const (
	// ModeNoIsolation emits no checks (the baseline).
	ModeNoIsolation Mode = iota
	// ModeFeatureLimited is original Amulet C: the restricted dialect plus
	// a bounds-check helper call on each dynamically-indexed array access.
	ModeFeatureLimited
	// ModeSoftwareOnly emits lower AND upper bound compares on every
	// computed data access, and both code-bound compares on indirect calls
	// and returns.
	ModeSoftwareOnly
	// ModeMPU emits only the lower-bound compare (the MPU enforces the
	// upper bounds in hardware) — the paper's contribution.
	ModeMPU
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeNoIsolation:
		return "NoIsolation"
	case ModeFeatureLimited:
		return "FeatureLimited"
	case ModeSoftwareOnly:
		return "SoftwareOnly"
	case ModeMPU:
		return "MPU"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Dialect returns the language dialect implied by the mode.
func (m Mode) Dialect() Dialect {
	if m == ModeFeatureLimited {
		return DialectRestricted
	}
	return DialectFull
}

// Modes lists all four memory models in the paper's column order.
var Modes = []Mode{ModeNoIsolation, ModeFeatureLimited, ModeMPU, ModeSoftwareOnly}

// expression evaluation registers (callee-saved, so values survive calls)
const (
	firstEvalReg = isa.R4
	numEvalRegs  = 8
)

// GenOptions selects optional hardening features beyond the paper's
// prototype (its §5 future-work list).
type GenOptions struct {
	// ShadowReturnStack maintains a shadow copy of every return address in
	// the InfoMem segment (the paper's footnote 3): prologues push the
	// return address to the shadow stack, epilogues compare it against the
	// on-stack value and fault on mismatch. The harness must define the
	// ShadowSPSym word (initialized to ShadowSPSym+2) in InfoMem.
	ShadowReturnStack bool
}

// ShadowSPSym names the shadow-stack pointer word, the first word of the
// shadow region in InfoMem.
const ShadowSPSym = "os.shadow_sp"

// Generate emits the code for all functions of a checked unit into b. The
// caller (the AFT, or CompileProgram for standalone builds) is responsible
// for Org/labels around the emitted code and for emitting data afterwards
// with GenerateData. The unit's boundary symbols (abi.SymDataLo etc.) and
// fault stub (abi.SymFault) must exist in the final link.
func Generate(chk *Checked, mode Mode, b *asm.Builder) error {
	return GenerateWithOptions(chk, mode, GenOptions{}, b)
}

// GenerateWithOptions is Generate with hardening extensions enabled.
func GenerateWithOptions(chk *Checked, mode Mode, opts GenOptions, b *asm.Builder) error {
	if mode.Dialect() != chk.Dialect {
		return fmt.Errorf("cc: mode %v needs dialect %v, unit %q was analyzed as %v",
			mode, mode.Dialect(), chk.Unit.Name, chk.Dialect)
	}
	for _, fn := range chk.Unit.Funcs {
		g := &generator{chk: chk, mode: mode, unit: chk.Unit.Name, opts: opts}
		if err := g.genFunc(fn, b); err != nil {
			return err
		}
	}
	return nil
}

// GenerateData emits the unit's globals, string literals and constant
// initializers. Call with the builder positioned in the unit's data section.
func GenerateData(chk *Checked, b *asm.Builder) error {
	unit := chk.Unit.Name
	for _, g := range chk.Unit.Globals {
		b.Align(2)
		b.Label(abi.SymGlobal(unit, g.Name))
		switch {
		case g.Type.Kind == TArray && g.Type.Elem.Kind == TChar:
			data := make([]byte, g.Type.Len)
			for i, v := range g.Init {
				data[i] = byte(v)
			}
			b.Bytes(data)
		case g.Type.Kind == TArray:
			for i := 0; i < g.Type.Len; i++ {
				var v int32
				if i < len(g.Init) {
					v = g.Init[i]
				}
				b.Word(uint16(v))
			}
		case g.Type.Kind == TChar:
			v := byte(0)
			if len(g.Init) > 0 {
				v = byte(g.Init[0])
			}
			b.Bytes([]byte{v})
		default:
			var v int32
			if len(g.Init) > 0 {
				v = g.Init[0]
			}
			b.Word(uint16(v))
		}
	}
	for i, s := range chk.Strings {
		b.Align(2)
		b.Label(strLabel(unit, i))
		b.Bytes(append([]byte(s), 0))
	}
	return nil
}

func strLabel(unit string, i int) string {
	return abi.SymGlobal(unit, fmt.Sprintf("__str%d", i))
}

type generator struct {
	chk  *Checked
	mode Mode
	unit string
	opts GenOptions
	b    *asm.Builder

	fn      *FuncDecl
	info    *FuncInfo
	offsets map[*Symbol]int
	frame   int

	depth    int // current expression-register stack depth
	maxDepth int // high-water mark
	saved    int // registers saved by the prologue (pass 2)
	pushAdj  int // words currently pushed for argument staging

	labelN    int
	retLabel  string
	loopCont  []string
	loopBreak []string
}

// reg returns the i-th expression register.
func reg(i int) isa.Reg { return firstEvalReg + isa.Reg(i) }

func (g *generator) alloc() (isa.Reg, error) {
	if g.depth >= numEvalRegs {
		return 0, errf(g.fn.Line, 1, "expression too complex in %s (needs more than %d registers)",
			g.fn.Name, numEvalRegs)
	}
	r := reg(g.depth)
	g.depth++
	if g.depth > g.maxDepth {
		g.maxDepth = g.depth
	}
	return r, nil
}

func (g *generator) freeTo(d int) { g.depth = d }

func (g *generator) newLabel(tag string) string {
	g.labelN++
	return fmt.Sprintf("%s.%s.L%d_%s", g.unit, g.fn.Name, g.labelN, tag)
}

// emit helpers

func (g *generator) emit(in isa.Instr) { g.b.Emit(in) }

func (g *generator) emitRef(in isa.Instr, src, dst asm.Ref) { g.b.EmitRef(in, src, dst) }

// movImm loads a constant into a register.
func (g *generator) movImm(v uint16, r isa.Reg) {
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(v), Dst: isa.RegOp(r)})
}

// movSym loads a symbol's address into a register.
func (g *generator) movSym(sym string, r isa.Reg) {
	g.emitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(r)},
		asm.Ref{Sym: sym}, asm.NoRef)
}

// localOff returns the current SP-relative offset of a local, accounting for
// words pushed during argument staging.
func (g *generator) localOff(sym *Symbol) uint16 {
	return uint16(g.offsets[sym] + 2*g.pushAdj)
}

// genFunc compiles one function. Generation runs twice: a dry pass to learn
// how many expression registers the body needs (so the prologue saves
// exactly those), then the real pass.
func (g *generator) genFunc(fn *FuncDecl, real *asm.Builder) error {
	dry := *g // shallow copy shares chk/mode/unit
	dry.b = asm.NewBuilder()
	if err := dry.genFuncPass(fn); err != nil {
		return err
	}
	g.b = real
	g.saved = dry.maxDepth
	g.labelN = 0
	return g.genFuncPass(fn)
}

func (g *generator) genFuncPass(fn *FuncDecl) error {
	g.fn = fn
	g.info = g.chk.Funcs[fn.Name]
	g.depth = 0
	g.pushAdj = 0
	g.retLabel = ""
	g.loopBreak = nil
	g.loopCont = nil

	// Frame layout: every local/param gets a word-aligned slot, in
	// declaration order, at increasing offsets from SP.
	g.offsets = make(map[*Symbol]int)
	off := 0
	for _, l := range g.info.Locals {
		g.offsets[l] = off
		off += (l.Type.Size() + 1) &^ 1
	}
	g.frame = off

	g.b.Label(abi.SymFunc(g.unit, fn.Name))
	// Prologue: save the expression registers this body uses.
	for i := 0; i < g.saved; i++ {
		g.emit(isa.Instr{Op: isa.PUSH, Src: isa.RegOp(reg(i))})
	}
	if g.frame > 0 {
		g.emit(isa.Instr{Op: isa.SUB, Src: isa.Imm(uint16(g.frame)), Dst: isa.RegOp(isa.SP)})
	}
	// Spill register parameters into their slots.
	for i := range fn.Sig.Params {
		if i >= abi.MaxRegArgs {
			return errf(fn.Line, 1, "%s: more than %d parameters are not supported", fn.Name, abi.MaxRegArgs)
		}
		sym := g.info.Locals[i]
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R12 + isa.Reg(i)),
			Dst: isa.Idx(uint16(g.offsets[sym]), isa.SP)})
	}
	if g.opts.ShadowReturnStack {
		g.emitShadowPush()
	}

	g.retLabel = g.newLabel("ret")
	if err := g.genBlock(fn.Body); err != nil {
		return err
	}
	// Fall off the end: void functions return; value functions return 0.
	if fn.Sig.Ret.Kind != TVoid {
		g.movImm(0, isa.R12)
	}

	g.b.Label(g.retLabel)
	if g.frame > 0 {
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.Imm(uint16(g.frame)), Dst: isa.RegOp(isa.SP)})
	}
	for i := g.saved - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(reg(i))}) // POP
	}
	if g.opts.ShadowReturnStack {
		g.emitShadowCheck()
	}
	g.emitReturnCheck()
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)}) // RET
	return nil
}

// emitShadowPush copies the caller's return address onto the InfoMem shadow
// stack. It runs after parameter spill, so R13/R14 are free scratch. The
// return address sits above the frame and the saved registers.
func (g *generator) emitShadowPush() {
	retOff := uint16(g.frame + 2*g.saved)
	g.emitRef(isa.Instr{Op: isa.MOV, Src: isa.Abs(0), Dst: isa.RegOp(isa.R13)},
		asm.Ref{Sym: ShadowSPSym}, asm.NoRef)
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.Idx(retOff, isa.SP), Dst: isa.RegOp(isa.R14)})
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R14), Dst: isa.Idx(0, isa.R13)})
	g.emitRef(isa.Instr{Op: isa.ADD, Src: isa.Imm(2), Dst: isa.Abs(0)},
		asm.NoRef, asm.Ref{Sym: ShadowSPSym})
}

// emitShadowCheck pops the shadow stack and faults if the on-stack return
// address no longer matches — detecting stack smashing even when bound
// checks are disabled (the defense the paper's §5 anticipates).
func (g *generator) emitShadowCheck() {
	g.emitRef(isa.Instr{Op: isa.SUB, Src: isa.Imm(2), Dst: isa.Abs(0)},
		asm.NoRef, asm.Ref{Sym: ShadowSPSym})
	g.emitRef(isa.Instr{Op: isa.MOV, Src: isa.Abs(0), Dst: isa.RegOp(isa.R13)},
		asm.Ref{Sym: ShadowSPSym}, asm.NoRef)
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.Ind(isa.R13), Dst: isa.RegOp(isa.R13)})
	g.emit(isa.Instr{Op: isa.CMP, Src: isa.Ind(isa.SP), Dst: isa.RegOp(isa.R13)})
	ok := g.newLabel("shok")
	g.b.Branch(isa.JEQ, ok)
	g.emitFaultJump()
	g.b.Label(ok)
}

// emitReturnCheck bounds-checks the return address sitting at @SP — the
// paper's defense against stack-smashed returns. MPU mode needs only the
// lower bound (jumping above the app's code hits a non-executable MPU
// segment); SoftwareOnly checks both; the other modes emit nothing.
func (g *generator) emitReturnCheck() {
	if g.mode != ModeMPU && g.mode != ModeSoftwareOnly {
		return
	}
	// R13 is caller-saved scratch (R12 may hold the return value). The
	// lower bound is the OS code base: the outermost frame of a handler
	// legitimately returns into the OS dispatch veneer below the app.
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.Ind(isa.SP), Dst: isa.RegOp(isa.R13)})
	g.emitBoundCheckLow(isa.R13, abi.SymOSCodeLo)
	if g.mode == ModeSoftwareOnly {
		g.emitBoundCheckHigh(isa.R13, abi.SymCodeHi(g.unit))
	}
}

// emitBoundCheckLow faults when r < bound (the lower-bound compare that both
// the MPU and SoftwareOnly models need, Figure 1's "if (address < Di) FAULT").
func (g *generator) emitBoundCheckLow(r isa.Reg, boundSym string) {
	ok := g.newLabel("cklo")
	g.emitRef(isa.Instr{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(r)},
		asm.Ref{Sym: boundSym}, asm.NoRef)
	g.b.Branch(isa.JC, ok) // r >= bound
	g.emitFaultJump()
	g.b.Label(ok)
}

// emitBoundCheckHigh faults when r >= bound (SoftwareOnly's upper compare).
func (g *generator) emitBoundCheckHigh(r isa.Reg, boundSym string) {
	ok := g.newLabel("ckhi")
	g.emitRef(isa.Instr{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(r)},
		asm.Ref{Sym: boundSym}, asm.NoRef)
	g.b.Branch(isa.JNC, ok) // r < bound
	g.emitFaultJump()
	g.b.Label(ok)
}

// emitFaultJump branches to the unit's fault stub.
func (g *generator) emitFaultJump() {
	g.emitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.PC)},
		asm.Ref{Sym: abi.SymFault(g.unit)}, asm.NoRef)
}

// emitDataCheck instruments a computed data address in r according to the
// isolation mode. This is the paper's central code-insertion point.
func (g *generator) emitDataCheck(r isa.Reg) {
	switch g.mode {
	case ModeMPU:
		g.emitBoundCheckLow(r, abi.SymDataLo(g.unit))
	case ModeSoftwareOnly:
		g.emitBoundCheckLow(r, abi.SymDataLo(g.unit))
		g.emitBoundCheckHigh(r, abi.SymDataHi(g.unit))
	}
}

// emitExecCheck instruments an indirect call target in r.
func (g *generator) emitExecCheck(r isa.Reg) {
	switch g.mode {
	case ModeMPU:
		g.emitBoundCheckLow(r, abi.SymCodeLo(g.unit))
	case ModeSoftwareOnly:
		g.emitBoundCheckLow(r, abi.SymCodeLo(g.unit))
		g.emitBoundCheckHigh(r, abi.SymCodeHi(g.unit))
	}
}

// emitIndexBoundsHelper emits the Feature-Limited helper call: index in r,
// array length as an immediate. Clobbers R13/R14 (caller-saved).
func (g *generator) emitIndexBoundsHelper(r isa.Reg, length int) {
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(r), Dst: isa.RegOp(isa.R13)})
	g.movImm(uint16(length), isa.R14)
	g.emitRef(isa.Instr{Op: isa.CALL, Src: isa.Imm(0)},
		asm.Ref{Sym: abi.SymRT("bounds")}, asm.NoRef)
}

// ---- statements ----

func (g *generator) genBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genStmt(s Stmt) error {
	base := g.depth
	defer g.freeTo(base)
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)

	case *DeclStmt:
		if st.Init == nil {
			return nil
		}
		r, err := g.genExpr(st.Init)
		if err != nil {
			return err
		}
		g.storeScalar(r, st.Sym, st.Type)
		return nil

	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err

	case *ReturnStmt:
		if st.X != nil {
			r, err := g.genExpr(st.X)
			if err != nil {
				return err
			}
			g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(r), Dst: isa.RegOp(isa.R12)})
		}
		g.b.Branch(isa.JMP, g.retLabel)
		return nil

	case *IfStmt:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		target := endL
		if st.Else != nil {
			target = elseL
		}
		if err := g.genCondJump(st.Cond, "", target); err != nil {
			return err
		}
		if err := g.genBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			g.b.Branch(isa.JMP, endL)
			g.b.Label(elseL)
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
		}
		g.b.Label(endL)
		return nil

	case *WhileStmt:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.b.Label(top)
		if err := g.genCondJump(st.Cond, "", end); err != nil {
			return err
		}
		g.loopCont = append(g.loopCont, top)
		g.loopBreak = append(g.loopBreak, end)
		err := g.genBlock(st.Body)
		g.loopCont = g.loopCont[:len(g.loopCont)-1]
		g.loopBreak = g.loopBreak[:len(g.loopBreak)-1]
		if err != nil {
			return err
		}
		g.b.Branch(isa.JMP, top)
		g.b.Label(end)
		return nil

	case *ForStmt:
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		cont := g.newLabel("forpost")
		end := g.newLabel("endfor")
		g.b.Label(top)
		if st.Cond != nil {
			if err := g.genCondJump(st.Cond, "", end); err != nil {
				return err
			}
		}
		g.loopCont = append(g.loopCont, cont)
		g.loopBreak = append(g.loopBreak, end)
		err := g.genBlock(st.Body)
		g.loopCont = g.loopCont[:len(g.loopCont)-1]
		g.loopBreak = g.loopBreak[:len(g.loopBreak)-1]
		if err != nil {
			return err
		}
		g.b.Label(cont)
		if st.Post != nil {
			d := g.depth
			if _, err := g.genExpr(st.Post); err != nil {
				return err
			}
			g.freeTo(d)
		}
		g.b.Branch(isa.JMP, top)
		g.b.Label(end)
		return nil

	case *BreakStmt:
		g.b.Branch(isa.JMP, g.loopBreak[len(g.loopBreak)-1])
		return nil

	case *ContinueStmt:
		g.b.Branch(isa.JMP, g.loopCont[len(g.loopCont)-1])
		return nil
	}
	return fmt.Errorf("cc: internal: unhandled statement %T", s)
}

// storeScalar stores register r into a named local/param/global of type t.
func (g *generator) storeScalar(r isa.Reg, sym *Symbol, t *Type) {
	byteOp := t.Kind == TChar
	if sym.Kind == SymGlobalVar {
		g.emitRef(isa.Instr{Op: isa.MOV, Byte: byteOp, Src: isa.RegOp(r), Dst: isa.Abs(0)},
			asm.NoRef, asm.Ref{Sym: abi.SymGlobal(g.unit, sym.Name)})
		return
	}
	g.emit(isa.Instr{Op: isa.MOV, Byte: byteOp, Src: isa.RegOp(r),
		Dst: isa.Idx(g.localOff(sym), isa.SP)})
}

// ---- conditions ----

// genCondJump evaluates cond and jumps to trueL when it holds (if trueL is
// non-empty) or to falseL when it does not. Exactly one label is taken as a
// jump target; fallthrough handles the other.
func (g *generator) genCondJump(cond Expr, trueL, falseL string) error {
	base := g.depth
	defer g.freeTo(base)
	switch x := cond.(type) {
	case *Unary:
		if x.Op == "!" {
			return g.genCondJump(x.X, falseL, trueL)
		}
	case *Binary:
		switch x.Op {
		case "&&":
			if trueL == "" {
				// false -> falseL
				if err := g.genCondJump(x.L, "", falseL); err != nil {
					return err
				}
				return g.genCondJump(x.R, "", falseL)
			}
			stay := g.newLabel("and")
			if err := g.genCondJump(x.L, "", stay); err != nil {
				return err
			}
			if err := g.genCondJump(x.R, trueL, ""); err != nil {
				return err
			}
			g.b.Label(stay)
			return nil
		case "||":
			if trueL != "" {
				if err := g.genCondJump(x.L, trueL, ""); err != nil {
					return err
				}
				return g.genCondJump(x.R, trueL, "")
			}
			stay := g.newLabel("or")
			if err := g.genCondJump(x.L, stay, ""); err != nil {
				return err
			}
			if err := g.genCondJump(x.R, "", falseL); err != nil {
				return err
			}
			g.b.Label(stay)
			return nil
		case "==", "!=", "<", "<=", ">", ">=":
			return g.genCompare(x, trueL, falseL)
		}
	}
	// Generic: evaluate and test against zero.
	r, err := g.genExpr(cond)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(r)})
	if trueL != "" {
		g.b.Branch(isa.JNE, trueL)
	} else {
		g.b.Branch(isa.JEQ, falseL)
	}
	return nil
}

// genCompare emits CMP and the right conditional jump for a comparison,
// honoring signedness.
func (g *generator) genCompare(x *Binary, trueL, falseL string) error {
	base := g.depth
	defer g.freeTo(base)
	lr, err := g.genExpr(x.L)
	if err != nil {
		return err
	}
	rr, err := g.genExpr(x.R)
	if err != nil {
		return err
	}
	// CMP src, dst computes dst - src; we want L - R.
	g.emit(isa.Instr{Op: isa.CMP, Src: isa.RegOp(rr), Dst: isa.RegOp(lr)})

	lt := g.chk.Types[x.L]
	rt := g.chk.Types[x.R]
	signed := lt.Signed() && rt.Signed()

	op := x.Op
	target := trueL
	if trueL == "" {
		op = negateCmp(op)
		target = falseL
	}
	var jop isa.Op
	switch op {
	case "==":
		jop = isa.JEQ
	case "!=":
		jop = isa.JNE
	case "<":
		if signed {
			jop = isa.JL
		} else {
			jop = isa.JNC
		}
	case ">=":
		if signed {
			jop = isa.JGE
		} else {
			jop = isa.JC
		}
	case ">", "<=":
		// Re-compare with swapped operands: L > R == R < L.
		g.emit(isa.Instr{Op: isa.CMP, Src: isa.RegOp(lr), Dst: isa.RegOp(rr)})
		if op == ">" {
			if signed {
				jop = isa.JL
			} else {
				jop = isa.JNC
			}
		} else {
			if signed {
				jop = isa.JGE
			} else {
				jop = isa.JC
			}
		}
	}
	g.b.Branch(jop, target)
	return nil
}

func negateCmp(op string) string {
	switch op {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case ">=":
		return "<"
	case ">":
		return "<="
	case "<=":
		return ">"
	}
	return op
}

// ---- expressions ----

// genExpr evaluates e into a freshly allocated expression register.
func (g *generator) genExpr(e Expr) (isa.Reg, error) {
	switch x := e.(type) {
	case *NumLit:
		r, err := g.alloc()
		if err != nil {
			return 0, err
		}
		g.movImm(uint16(x.Val), r)
		return r, nil

	case *StrLit:
		r, err := g.alloc()
		if err != nil {
			return 0, err
		}
		g.movSym(strLabel(g.unit, g.strIndex(x.Val)), r)
		return r, nil

	case *Ident:
		return g.genIdent(x)

	case *Unary:
		return g.genUnary(x)

	case *Binary:
		return g.genBinary(x)

	case *Assign:
		return g.genAssign(x)

	case *IncDec:
		return g.genIncDec(x)

	case *Index:
		t := g.chk.Types[x]
		addr, err := g.genAddr(x)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.MOV, Byte: t.Kind == TChar,
			Src: isa.Ind(addr), Dst: isa.RegOp(addr)})
		return addr, nil

	case *Call:
		return g.genCall(x)
	}
	return 0, fmt.Errorf("cc: internal: unhandled expression %T", e)
}

func (g *generator) strIndex(s string) int {
	for i, v := range g.chk.Strings {
		if v == s {
			return i
		}
	}
	return 0
}

func (g *generator) genIdent(x *Ident) (isa.Reg, error) {
	r, err := g.alloc()
	if err != nil {
		return 0, err
	}
	sym := x.Sym
	switch sym.Kind {
	case SymFuncName:
		g.movSym(abi.SymFunc(g.unit, sym.Name), r)
		return r, nil
	case SymGlobalVar:
		if sym.Type.Kind == TArray {
			g.movSym(abi.SymGlobal(g.unit, sym.Name), r) // array decays to address
			return r, nil
		}
		g.emitRef(isa.Instr{Op: isa.MOV, Byte: sym.Type.Kind == TChar,
			Src: isa.Abs(0), Dst: isa.RegOp(r)},
			asm.Ref{Sym: abi.SymGlobal(g.unit, sym.Name)}, asm.NoRef)
		return r, nil
	default: // local or param
		if sym.Type.Kind == TArray {
			g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.SP), Dst: isa.RegOp(r)})
			if off := g.localOff(sym); off != 0 {
				g.emit(isa.Instr{Op: isa.ADD, Src: isa.Imm(off), Dst: isa.RegOp(r)})
			}
			return r, nil
		}
		g.emit(isa.Instr{Op: isa.MOV, Byte: sym.Type.Kind == TChar,
			Src: isa.Idx(g.localOff(sym), isa.SP), Dst: isa.RegOp(r)})
		return r, nil
	}
}

func (g *generator) genUnary(x *Unary) (isa.Reg, error) {
	switch x.Op {
	case "-":
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.XOR, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(r)})
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(r)})
		return r, nil
	case "~":
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.XOR, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(r)})
		return r, nil
	case "!":
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		one := g.newLabel("not1")
		end := g.newLabel("notend")
		g.emit(isa.Instr{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(r)})
		g.b.Branch(isa.JEQ, one)
		g.movImm(0, r)
		g.b.Branch(isa.JMP, end)
		g.b.Label(one)
		g.movImm(1, r)
		g.b.Label(end)
		return r, nil
	case "*":
		t := g.chk.Types[x]
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		g.emitDataCheck(r)
		g.emit(isa.Instr{Op: isa.MOV, Byte: t.Kind == TChar,
			Src: isa.Ind(r), Dst: isa.RegOp(r)})
		return r, nil
	case "&":
		if id, ok := x.X.(*Ident); ok && id.Sym != nil && id.Sym.Kind == SymFuncName {
			r, err := g.alloc()
			if err != nil {
				return 0, err
			}
			g.movSym(abi.SymFunc(g.unit, id.Sym.Name), r)
			return r, nil
		}
		return g.genAddr(x.X)
	}
	line, col := x.Pos()
	return 0, errf(line, col, "internal: unary %s", x.Op)
}

// genAddr evaluates the address of an lvalue into a register, emitting the
// isolation checks appropriate to the access.
func (g *generator) genAddr(e Expr) (isa.Reg, error) {
	switch x := e.(type) {
	case *Ident:
		r, err := g.alloc()
		if err != nil {
			return 0, err
		}
		sym := x.Sym
		if sym.Kind == SymGlobalVar {
			g.movSym(abi.SymGlobal(g.unit, sym.Name), r)
			return r, nil
		}
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.SP), Dst: isa.RegOp(r)})
		if off := g.localOff(sym); off != 0 {
			g.emit(isa.Instr{Op: isa.ADD, Src: isa.Imm(off), Dst: isa.RegOp(r)})
		}
		return r, nil

	case *Unary:
		if x.Op != "*" {
			break
		}
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		g.emitDataCheck(r)
		return r, nil

	case *Index:
		return g.genIndexAddr(x)
	}
	line, col := e.Pos()
	return 0, errf(line, col, "expression is not addressable")
}

// genIndexAddr computes &arr[idx] with mode-appropriate checking:
//   - constant index into a true array: verified at compile time, no code;
//   - FeatureLimited: bounds-helper call on the index;
//   - MPU / SoftwareOnly: bound compare(s) on the final address.
func (g *generator) genIndexAddr(x *Index) (isa.Reg, error) {
	arrT := g.chk.Types[x.Arr]
	elem := arrT.Elem
	line, col := x.Pos()

	// Fast path: constant index into a known-length array.
	if lit, isLit := x.Idx.(*NumLit); isLit && arrT.Kind == TArray {
		if lit.Val < 0 || int(lit.Val) >= arrT.Len {
			return 0, errf(line, col, "index %d out of range for array of %d", lit.Val, arrT.Len)
		}
		base, err := g.genArrayBase(x.Arr)
		if err != nil {
			return 0, err
		}
		off := uint16(int(lit.Val) * elem.Size())
		if off != 0 {
			g.emit(isa.Instr{Op: isa.ADD, Src: isa.Imm(off), Dst: isa.RegOp(base)})
		}
		return base, nil
	}

	// Evaluate index.
	idx, err := g.genExpr(x.Idx)
	if err != nil {
		return 0, err
	}
	if g.mode == ModeFeatureLimited {
		if arrT.Kind != TArray {
			return 0, errf(line, col, "internal: pointer index in restricted dialect")
		}
		g.emitIndexBoundsHelper(idx, arrT.Len)
	}
	if elem.Size() == 2 {
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(idx), Dst: isa.RegOp(idx)}) // idx *= 2
	}
	base, err := g.genArrayBase(x.Arr)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(idx), Dst: isa.RegOp(base)})
	// base now holds the final address; release idx (it is below base).
	g.freeTo(g.depth - 1)
	// Move result down into idx's slot to keep the stack discipline.
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(base), Dst: isa.RegOp(idx)})
	if g.mode == ModeMPU || g.mode == ModeSoftwareOnly {
		g.emitDataCheck(idx)
	}
	return idx, nil
}

// genArrayBase loads the base address of the indexed object (array decay or
// pointer value).
func (g *generator) genArrayBase(arr Expr) (isa.Reg, error) {
	t := g.chk.Types[arr]
	if t.Kind == TArray {
		return g.genAddr(arr)
	}
	return g.genExpr(arr) // pointer value
}

func (g *generator) genAssign(x *Assign) (isa.Reg, error) {
	t := g.chk.Types[x.LHS]
	byteOp := t.Kind == TChar

	switch x.Op {
	case "*=", "/=", "%=":
		return g.genMulAssign(x)
	}

	rhs, err := g.genExpr(x.RHS)
	if err != nil {
		return 0, err
	}
	// Pointer compound stepping scales the integer side.
	if t.Kind == TPtr && (x.Op == "+=" || x.Op == "-=") && t.Elem.Size() == 2 {
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(rhs), Dst: isa.RegOp(rhs)})
	}

	var op isa.Op
	switch x.Op {
	case "=":
		op = isa.MOV
	case "+=":
		op = isa.ADD
	case "-=":
		op = isa.SUB
	case "&=":
		op = isa.AND
	case "|=":
		op = isa.BIS
	case "^=":
		op = isa.XOR
	}

	// Direct forms for plain variables.
	if id, ok := x.LHS.(*Ident); ok {
		sym := id.Sym
		if sym.Kind == SymGlobalVar {
			g.emitRef(isa.Instr{Op: op, Byte: byteOp, Src: isa.RegOp(rhs), Dst: isa.Abs(0)},
				asm.NoRef, asm.Ref{Sym: abi.SymGlobal(g.unit, sym.Name)})
			return rhs, nil
		}
		g.emit(isa.Instr{Op: op, Byte: byteOp, Src: isa.RegOp(rhs),
			Dst: isa.Idx(g.localOff(sym), isa.SP)})
		return rhs, nil
	}
	addr, err := g.genAddr(x.LHS)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: op, Byte: byteOp, Src: isa.RegOp(rhs), Dst: isa.Idx(0, addr)})
	g.freeTo(g.depth - 1) // release addr; result stays in rhs
	return rhs, nil
}

// genMulAssign lowers x *= y (and /=, %=) through the helper calls.
// The left-hand side is evaluated twice (value, then address); index
// expressions with side effects are therefore evaluated twice — a documented
// dialect caveat shared with the original Amulet toolchain.
func (g *generator) genMulAssign(x *Assign) (isa.Reg, error) {
	t := g.chk.Types[x.LHS]
	cur, err := g.genExpr(x.LHS) // current value, slot a
	if err != nil {
		return 0, err
	}
	rhs, err := g.genExpr(x.RHS) // slot a+1
	if err != nil {
		return 0, err
	}
	op := map[string]string{"*=": "*", "/=": "/", "%=": "%"}[x.Op]
	res, err := g.genArith2(op, cur, rhs, t) // result in cur; rhs freed
	if err != nil {
		return 0, err
	}
	if id, ok := x.LHS.(*Ident); ok {
		g.storeScalar(res, id.Sym, t)
		return res, nil
	}
	addr, err := g.genAddr(x.LHS)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.MOV, Byte: t.Kind == TChar, Src: isa.RegOp(res), Dst: isa.Idx(0, addr)})
	g.freeTo(g.depth - 1) // release addr; result stays in res
	return res, nil
}

func (g *generator) genIncDec(x *IncDec) (isa.Reg, error) {
	t := g.chk.Types[x]
	step := uint16(1)
	if t.Kind == TPtr && t.Elem.Size() == 2 {
		step = 2
	}
	op := isa.ADD
	if x.Op == "--" {
		op = isa.SUB
	}
	byteOp := t.Kind == TChar
	// Result value (old value) into a register.
	r, err := g.genExpr(x.X)
	if err != nil {
		return 0, err
	}
	if id, ok := x.X.(*Ident); ok {
		sym := id.Sym
		if sym.Kind == SymGlobalVar {
			g.emitRef(isa.Instr{Op: op, Byte: byteOp, Src: isa.Imm(step), Dst: isa.Abs(0)},
				asm.NoRef, asm.Ref{Sym: abi.SymGlobal(g.unit, sym.Name)})
		} else {
			g.emit(isa.Instr{Op: op, Byte: byteOp, Src: isa.Imm(step),
				Dst: isa.Idx(g.localOff(sym), isa.SP)})
		}
		return r, nil
	}
	addr, err := g.genAddr(x.X)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: op, Byte: byteOp, Src: isa.Imm(step), Dst: isa.Idx(0, addr)})
	g.freeTo(g.depth - 1)
	return r, nil
}

func (g *generator) genBinary(x *Binary) (isa.Reg, error) {
	switch x.Op {
	case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
		// Value context: materialize 0/1 via the condition generator.
		r, err := g.alloc()
		if err != nil {
			return 0, err
		}
		trueL := g.newLabel("b1")
		endL := g.newLabel("bend")
		if err := g.genCondJump(x, trueL, ""); err != nil {
			return 0, err
		}
		g.movImm(0, r)
		g.b.Branch(isa.JMP, endL)
		g.b.Label(trueL)
		g.movImm(1, r)
		g.b.Label(endL)
		return r, nil
	}

	lt := g.chk.Types[x.L]
	rt := g.chk.Types[x.R]
	resT := g.chk.Types[x]

	// Shifts by a constant inline as shift instruction sequences (as TI's
	// compilers do); only variable shift counts go through the helpers.
	if x.Op == "<<" || x.Op == ">>" {
		if lit, ok := x.R.(*NumLit); ok && lit.Val >= 0 && lit.Val <= 15 {
			lr, err := g.genExpr(x.L)
			if err != nil {
				return 0, err
			}
			g.emitConstShift(x.Op, lr, int(lit.Val), resT)
			return lr, nil
		}
	}

	// Pointer arithmetic scaling.
	scaleR := x.Op == "+" || x.Op == "-"
	ptrLeft := (lt.Kind == TPtr || lt.Kind == TArray) && rt.IsInteger()
	ptrRight := x.Op == "+" && lt.IsInteger() && rt.Kind == TPtr

	lr, err := g.genExpr(x.L)
	if err != nil {
		return 0, err
	}
	rr, err := g.genExpr(x.R)
	if err != nil {
		return 0, err
	}
	if scaleR && ptrLeft && lt.ElemSizeFor() == 2 {
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(rr), Dst: isa.RegOp(rr)})
	}
	if ptrRight && rt.Elem.Size() == 2 {
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(lr), Dst: isa.RegOp(lr)})
	}

	res, err := g.genArith2(x.Op, lr, rr, resT)
	if err != nil {
		return 0, err
	}
	return res, nil
}

// ElemSizeFor returns the pointee size for pointer/array types (used for
// pointer arithmetic scaling), defaulting to 1.
func (t *Type) ElemSizeFor() int {
	if t.Elem != nil {
		return t.Elem.Size()
	}
	return 1
}

// genArith2 applies a binary arithmetic operator to lr (dst) and rr (src),
// leaving the result in lr and freeing rr.
func (g *generator) genArith2(op string, lr, rr isa.Reg, resT *Type) (isa.Reg, error) {
	defer g.freeTo(g.depth - 1) // release rr
	switch op {
	case "+":
		g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(rr), Dst: isa.RegOp(lr)})
	case "-":
		g.emit(isa.Instr{Op: isa.SUB, Src: isa.RegOp(rr), Dst: isa.RegOp(lr)})
	case "&":
		g.emit(isa.Instr{Op: isa.AND, Src: isa.RegOp(rr), Dst: isa.RegOp(lr)})
	case "|":
		g.emit(isa.Instr{Op: isa.BIS, Src: isa.RegOp(rr), Dst: isa.RegOp(lr)})
	case "^":
		g.emit(isa.Instr{Op: isa.XOR, Src: isa.RegOp(rr), Dst: isa.RegOp(lr)})
	case "*":
		// 16x16 multiply through the MPY32 hardware multiplier (the
		// signed/unsigned low words are identical).
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(lr), Dst: isa.Abs(cpu.MPYOp1)})
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(rr), Dst: isa.Abs(cpu.MPYOp2)})
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.Abs(cpu.MPYResLo), Dst: isa.RegOp(lr)})
	case "/":
		if resT.Kind == TUint {
			g.emitHelperDiv("divmodu", lr, rr, false)
		} else {
			g.emitHelperDiv("divs", lr, rr, false)
		}
	case "%":
		if resT.Kind == TUint {
			g.emitHelperDiv("divmodu", lr, rr, true)
		} else {
			g.emitHelperDiv("divs", lr, rr, true)
		}
	case "<<":
		g.emitHelper2("shl", lr, rr)
	case ">>":
		if resT.Kind == TUint {
			g.emitHelper2("shru", lr, rr)
		} else {
			g.emitHelper2("sar", lr, rr)
		}
	default:
		return 0, fmt.Errorf("cc: internal: operator %q", op)
	}
	return lr, nil
}

// emitConstShift emits an inline shift-by-constant sequence.
func (g *generator) emitConstShift(op string, r isa.Reg, k int, resT *Type) {
	for i := 0; i < k; i++ {
		if op == "<<" {
			g.emit(isa.Instr{Op: isa.ADD, Src: isa.RegOp(r), Dst: isa.RegOp(r)}) // RLA
		} else if resT.Kind == TUint {
			g.emit(isa.Instr{Op: isa.BIC, Src: isa.Imm(1), Dst: isa.RegOp(isa.SR)}) // CLRC
			g.emit(isa.Instr{Op: isa.RRC, Src: isa.RegOp(r)})
		} else {
			g.emit(isa.Instr{Op: isa.RRA, Src: isa.RegOp(r)})
		}
	}
}

// emitHelper2 calls a two-operand runtime helper: R12 = op(R12=lr, R13=rr).
func (g *generator) emitHelper2(name string, lr, rr isa.Reg) {
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(lr), Dst: isa.RegOp(isa.R12)})
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(rr), Dst: isa.RegOp(isa.R13)})
	g.emitRef(isa.Instr{Op: isa.CALL, Src: isa.Imm(0)}, asm.Ref{Sym: abi.SymRT(name)}, asm.NoRef)
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R12), Dst: isa.RegOp(lr)})
}

// emitHelperDiv calls a divide helper; quotient in R12, remainder in R13.
func (g *generator) emitHelperDiv(name string, lr, rr isa.Reg, wantRem bool) {
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(lr), Dst: isa.RegOp(isa.R12)})
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(rr), Dst: isa.RegOp(isa.R13)})
	g.emitRef(isa.Instr{Op: isa.CALL, Src: isa.Imm(0)}, asm.Ref{Sym: abi.SymRT(name)}, asm.NoRef)
	src := isa.R12
	if wantRem {
		src = isa.R13
	}
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(src), Dst: isa.RegOp(lr)})
}

// genCall compiles direct, API and function-pointer calls.
func (g *generator) genCall(x *Call) (isa.Reg, error) {
	line, col := x.Pos()
	if len(x.Args) > abi.MaxRegArgs {
		return 0, errf(line, col, "calls with more than %d arguments are not supported", abi.MaxRegArgs)
	}

	// Classify the callee.
	var directSym string
	var indirect Expr
	if id, ok := x.Fun.(*Ident); ok && id.Sym != nil {
		switch id.Sym.Kind {
		case SymAPIName:
			directSym = abi.SymGate(id.Sym.Name)
		case SymFuncName:
			directSym = abi.SymFunc(g.unit, id.Sym.Name)
		default:
			indirect = x.Fun // variable holding a function pointer
		}
	} else {
		indirect = x.Fun
	}

	// Evaluate arguments left to right, parking each on the CPU stack.
	for _, a := range x.Args {
		r, err := g.genExpr(a)
		if err != nil {
			return 0, err
		}
		// Arrays decay: genExpr already yields the address for arrays.
		g.emit(isa.Instr{Op: isa.PUSH, Src: isa.RegOp(r)})
		g.pushAdj++
		g.freeTo(g.depth - 1)
	}

	var fnReg isa.Reg
	if indirect != nil {
		r, err := g.genExpr(indirect)
		if err != nil {
			return 0, err
		}
		fnReg = r
		g.emitExecCheck(fnReg)
	}

	// Pop arguments into R12..R15 (reverse order).
	for i := len(x.Args) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP),
			Dst: isa.RegOp(isa.R12 + isa.Reg(i))})
		g.pushAdj--
	}

	if indirect != nil {
		g.emit(isa.Instr{Op: isa.CALL, Src: isa.RegOp(fnReg)})
		g.freeTo(g.depth - 1)
	} else {
		g.emitRef(isa.Instr{Op: isa.CALL, Src: isa.Imm(0)}, asm.Ref{Sym: directSym}, asm.NoRef)
	}

	r, err := g.alloc()
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R12), Dst: isa.RegOp(r)})
	return r, nil
}
