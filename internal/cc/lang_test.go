package cc

import "testing"

// Additional language-level coverage: scoping, nesting, dialect corners.

func TestVariableShadowing(t *testing.T) {
	runAllModes(t, `
int x = 1;
int main() {
    int r = 0;
    int i;
    for (i = 0; i < 2; i++) {
        int x = 10;          // shadows the global
        r = r + x;
    }
    {
        int x = 100;         // block scope... braces as block statement
        r = r + x;
    }
    return r + x;            // 10+10+100+1
}
`, 121, true)
}

func TestNestedLoopsWithBreakContinue(t *testing.T) {
	runAllModes(t, `
int main() {
    int total = 0;
    int i;
    int j;
    for (i = 0; i < 5; i++) {
        if (i == 3) { continue; }
        j = 0;
        while (1) {
            j++;
            if (j > i) { break; }
            total = total + 10;
        }
        total = total + 1;
    }
    return total;   // i=0:+1, i=1:+11, i=2:+21, i=4:+41 => 74
}
`, 74, true)
}

func TestDeepExpressionWithinRegisterBudget(t *testing.T) {
	runAllModes(t, `
int main() {
    int a = 1;
    int b = 2;
    int c = 3;
    int d = 4;
    return ((a + b) * (c + d)) + ((a - b) * (c - d)) + (a + (b + (c + (d + a))));
    // 3*7 + (-1*-1) + 11 = 33
}
`, 33, true)
}

func TestExpressionTooComplexRejected(t *testing.T) {
	// Right-leaning chains force one register per level; past eight the
	// compiler must fail cleanly, not miscompile.
	expectError(t, `
int main() {
    int a = 1;
    return (a + (a + (a + (a + (a + (a + (a + (a + (a + (a + a))))))))));
}
`, ModeNoIsolation, "too complex")
}

func TestCharGlobalAndComparisons(t *testing.T) {
	runAllModes(t, `
char state = 'i';
int main() {
    int r = 0;
    if (state == 'i') { r = r + 1; }
    state = 'r';
    if (state != 'i') { r = r + 2; }
    if (state > 'a') { r = r + 4; }     // chars are unsigned bytes
    char big = 0xF0;
    if (big > 0x80) { r = r + 8; }      // no sign surprise
    return r;
}
`, 15, true)
}

func TestFunctionPointerAsParameterAndGlobal(t *testing.T) {
	src := `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int (*table_op)(int);

int fold(int (*f)(int), int n, int v) {
    int i;
    for (i = 0; i < n; i++) { v = f(v); }
    return v;
}

int main() {
    table_op = inc;
    int r = fold(table_op, 5, 0);    // 5
    table_op = dec;
    r = fold(table_op, 2, r);        // 3
    return r * 10 + fold(inc, 1, 0); // 31
}
`
	runAllModes(t, src, 31, false)
}

func TestPointerIntoLocalArray(t *testing.T) {
	src := `
int sum(int *p, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) { s = s + p[i]; }
    return s;
}
int main() {
    int local[6];
    int i;
    for (i = 0; i < 6; i++) { local[i] = i * i; }
    return sum(local, 6) + sum(local + 2, 2);   // 55 + 4+9
}
`
	runAllModes(t, src, 68, false)
}

func TestGlobalInitializerForms(t *testing.T) {
	runAllModes(t, `
int a = -5;
uint b = 0xFFFF;
const int flags = 1 | 4 | 8;
int arr[5] = { 1, 2, 3 };     // partial init, rest zero
char s[4] = "ab";             // partial string init
int main() {
    int r = 0;
    if (a == -5) { r = r + 1; }
    if (b == 65535) { r = r + 2; }
    if (flags == 13) { r = r + 4; }
    if (arr[2] == 3 && arr[4] == 0) { r = r + 8; }
    if (s[1] == 'b' && s[2] == 0) { r = r + 16; }
    return r;
}
`, 31, true)
}

func TestEmptyFunctionAndVoidCalls(t *testing.T) {
	runAllModes(t, `
int n = 0;
void bump() { n++; }
void nothing(void) {}
int main() {
    bump();
    nothing();
    bump();
    return n;
}
`, 2, true)
}

func TestModesProduceDifferentCodeSizes(t *testing.T) {
	src := `
int buf[16];
int main() {
    int i;
    for (i = 0; i < 16; i++) { buf[i] = i; }
    return buf[5];
}
`
	sizes := map[Mode]int{}
	for _, m := range []Mode{ModeNoIsolation, ModeMPU, ModeSoftwareOnly, ModeFeatureLimited} {
		p, err := CompileProgram("t", src, ProgramOptions{Mode: m})
		if err != nil {
			t.Fatal(err)
		}
		lo := p.Image.MustSym("t.__code_lo")
		hi := p.Image.MustSym("t.__code_hi")
		sizes[m] = int(hi - lo)
	}
	// More checking = more code.
	if !(sizes[ModeNoIsolation] < sizes[ModeMPU] && sizes[ModeMPU] < sizes[ModeSoftwareOnly]) {
		t.Errorf("code size ordering wrong: %v", sizes)
	}
}
