package cc

import (
	"strings"
)

// Lex tokenizes AmuletC source.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)

	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)

		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				adv(1)
			}

		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			adv(2)
			for {
				if i+1 >= n {
					return nil, errf(startLine, startCol, "unterminated block comment")
				}
				if src[i] == '*' && src[i+1] == '/' {
					adv(2)
					break
				}
				adv(1)
			}

		case isIdentStart(c):
			startLine, startCol := line, col
			j := i
			for j < n && isIdentCont(src[j]) {
				j++
			}
			text := src[i:j]
			adv(j - i)
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})

		case c >= '0' && c <= '9':
			startLine, startCol := line, col
			j := i
			base := int32(10)
			if c == '0' && j+1 < n && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			} else if c == '0' && j+1 < n && src[j+1] == 'b' {
				base = 2
				j += 2
			}
			var v int32
			digits := 0
			for j < n {
				d := digitVal(src[j])
				if d < 0 || d >= base {
					break
				}
				v = v*base + d
				digits++
				j++
			}
			if base != 10 && digits == 0 {
				return nil, errf(startLine, startCol, "malformed numeric literal")
			}
			if j < n && isIdentCont(src[j]) {
				return nil, errf(startLine, startCol, "malformed numeric literal")
			}
			adv(j - i)
			toks = append(toks, Token{Kind: TokNumber, Num: v, Line: startLine, Col: startCol})

		case c == '"':
			startLine, startCol := line, col
			var sb strings.Builder
			adv(1)
			for {
				if i >= n {
					return nil, errf(startLine, startCol, "unterminated string literal")
				}
				if src[i] == '"' {
					adv(1)
					break
				}
				ch, k, err := decodeEscape(src, i, startLine, startCol)
				if err != nil {
					return nil, err
				}
				adv(k)
				sb.WriteByte(ch)
			}
			toks = append(toks, Token{Kind: TokString, Str: sb.String(), Line: startLine, Col: startCol})

		case c == '\'':
			startLine, startCol := line, col
			adv(1)
			if i >= n {
				return nil, errf(startLine, startCol, "unterminated char literal")
			}
			ch, k, err := decodeEscape(src, i, startLine, startCol)
			if err != nil {
				return nil, err
			}
			adv(k)
			if i >= n || src[i] != '\'' {
				return nil, errf(startLine, startCol, "unterminated char literal")
			}
			adv(1)
			toks = append(toks, Token{Kind: TokChar, Num: int32(ch), Line: startLine, Col: startCol})

		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
				"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--":
				adv(2)
				toks = append(toks, Token{Kind: TokPunct, Text: two, Line: startLine, Col: startCol})
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
				'=', '(', ')', '{', '}', '[', ']', ';', ',':
				adv(1)
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Line: startLine, Col: startCol})
			default:
				return nil, errf(startLine, startCol, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

// decodeEscape decodes one (possibly escaped) character at src[i], returning
// the byte value and the number of source bytes consumed.
func decodeEscape(src string, i, line, col int) (byte, int, error) {
	c := src[i]
	if c != '\\' {
		return c, 1, nil
	}
	if i+1 >= len(src) {
		return 0, 0, errf(line, col, "unterminated escape")
	}
	switch e := src[i+1]; e {
	case 'n':
		return '\n', 2, nil
	case 't':
		return '\t', 2, nil
	case 'r':
		return '\r', 2, nil
	case '0':
		return 0, 2, nil
	case '\\', '\'', '"':
		return e, 2, nil
	default:
		return 0, 0, errf(line, col, "unknown escape \\%c", e)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func digitVal(c byte) int32 {
	switch {
	case c >= '0' && c <= '9':
		return int32(c - '0')
	case c >= 'a' && c <= 'f':
		return int32(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int32(c-'A') + 10
	}
	return -1
}
