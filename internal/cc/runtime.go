package cc

// RuntimeAsm is the shared runtime library, hand-written in MSP430 assembly
// and assembled into the OS code region (execute-only under every MPU plan,
// so apps may call it). It provides the software multiply/divide/shift the
// MCU lacks, and the Feature-Limited bounds-check helper that original
// Amulet C routed every dynamically-indexed array access through.
//
// All helpers use only caller-saved registers (R12-R15) externally and
// preserve anything else they touch, so compiled code can keep values in
// R4-R11 across helper calls.
//
// The label "os.fault" must be defined by the embedding harness: the AFT
// points it at the kernel fault port; standalone programs point it at a
// halting stub.
const RuntimeAsm = `
; ---------------- AmuletC shared runtime library ----------------

rt.mul:                 ; R12 = R12 * R13 (low 16 bits), shift-and-add
        PUSH R14
        MOV  R12, R14
        CLR  R12
rt.mul.loop:
        TST  R13
        JZ   rt.mul.done
        BIT  #1, R13
        JZ   rt.mul.skip
        ADD  R14, R12
rt.mul.skip:
        RLA  R14
        CLRC
        RRC  R13
        JMP  rt.mul.loop
rt.mul.done:
        POP  R14
        RET

rt.divmodu:             ; unsigned R12 / R13 -> quotient R12, remainder R13
        PUSH R14
        PUSH R15
        CLR  R14        ; quotient accumulator
        MOV  #1, R15    ; current quotient bit
        TST  R13
        JZ   rt.divmodu.done    ; divide by zero: q=0, r=dividend
rt.divmodu.align:
        BIT  #0x8000, R13
        JNZ  rt.divmodu.loop
        CMP  R12, R13           ; divisor - dividend
        JHS  rt.divmodu.loop    ; divisor >= dividend: aligned
        RLA  R13
        RLA  R15
        JMP  rt.divmodu.align
rt.divmodu.loop:
        CMP  R13, R12           ; dividend - divisor
        JLO  rt.divmodu.skip
        SUB  R13, R12
        BIS  R15, R14
rt.divmodu.skip:
        CLRC
        RRC  R13
        CLRC
        RRC  R15
        JNZ  rt.divmodu.loop
rt.divmodu.done:
        MOV  R12, R13           ; remainder out
        MOV  R14, R12           ; quotient out
        POP  R15
        POP  R14
        RET

rt.divs:                ; signed R12 / R13 -> quotient R12, remainder R13
        PUSH R14        ; (remainder carries the dividend's sign; C semantics)
        CLR  R14
        TST  R12
        JGE  rt.divs.p1
        INV  R12
        INC  R12
        XOR  #3, R14    ; negative dividend flips quotient and remainder sign
rt.divs.p1:
        TST  R13
        JGE  rt.divs.p2
        INV  R13
        INC  R13
        XOR  #1, R14    ; negative divisor flips quotient sign only
rt.divs.p2:
        CALL #rt.divmodu
        BIT  #1, R14
        JZ   rt.divs.fixr
        INV  R12
        INC  R12
rt.divs.fixr:
        BIT  #2, R14
        JZ   rt.divs.out
        INV  R13
        INC  R13
rt.divs.out:
        POP  R14
        RET

rt.shl:                 ; R12 <<= (R13 & 15)
        AND  #15, R13
        JZ   rt.shl.done
rt.shl.loop:
        RLA  R12
        DEC  R13
        JNZ  rt.shl.loop
rt.shl.done:
        RET

rt.shru:                ; logical R12 >>= (R13 & 15)
        AND  #15, R13
        JZ   rt.shru.done
rt.shru.loop:
        CLRC
        RRC  R12
        DEC  R13
        JNZ  rt.shru.loop
rt.shru.done:
        RET

rt.sar:                 ; arithmetic R12 >>= (R13 & 15)
        AND  #15, R13
        JZ   rt.sar.done
rt.sar.loop:
        RRA  R12
        DEC  R13
        JNZ  rt.sar.loop
rt.sar.done:
        RET

rt.bounds:              ; Feature-Limited array check: fault unless 0 <= R13 < R14
        TST  R13
        JN   rt.bounds.fail
        CMP  R14, R13           ; index - length
        JHS  rt.bounds.fail
        RET
rt.bounds.fail:
        BR   #os.fault
`
