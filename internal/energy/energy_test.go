package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantsPhysicallyPlausible(t *testing.T) {
	// 0.8 mA at 3 V over 8 MHz is 0.3 nJ per cycle.
	if math.Abs(EnergyPerCycleJ-0.3e-9) > 1e-12 {
		t.Fatalf("energy/cycle = %g J, want 0.3 nJ", EnergyPerCycleJ)
	}
	// 110 mAh at 3.7 V is about 1465 J.
	if BatteryCapacityJ < 1400 || BatteryCapacityJ > 1500 {
		t.Fatalf("battery capacity = %g J", BatteryCapacityJ)
	}
}

func TestBatteryImpactMatchesPaperScale(t *testing.T) {
	// The paper's Figure 2 peaks around 3 billion cycles/week with battery
	// impact below 0.5%. Our model must put 3 Gcyc/week in that regime.
	got := BatteryImpactPercent(3e9)
	if got <= 0 || got >= 0.5 {
		t.Fatalf("3 Gcyc/week -> %.4f%%, want within (0, 0.5)", got)
	}
	if BatteryImpactPercent(0) != 0 {
		t.Fatal("zero overhead must cost nothing")
	}
}

func TestLifetimeReductionMonotone(t *testing.T) {
	if LifetimeReductionHours(0) != 0 {
		t.Fatal("zero overhead must cost zero lifetime")
	}
	prev := 0.0
	for _, c := range []float64{0, 1e8, 1e9, 5e9, 2e10} {
		h := LifetimeReductionHours(c)
		if h < prev {
			t.Fatalf("lifetime reduction not monotone at %g cycles", c)
		}
		prev = h
	}
	// Two weeks is 336 hours; even silly overheads cannot exceed it.
	if LifetimeReductionHours(1e15) > BaselineLifetimeDays*24 {
		t.Fatal("lifetime reduction exceeds total lifetime")
	}
}

func TestQuickImpactLinear(t *testing.T) {
	f := func(k uint32) bool {
		c := float64(k % 1_000_000)
		a := BatteryImpactPercent(c)
		b := BatteryImpactPercent(2 * c)
		return math.Abs(b-2*a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
