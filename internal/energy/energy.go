// Package energy converts cycle counts into energy and battery-lifetime
// terms for the Figure 2 battery-impact axis. Constants follow the
// MSP430FR5969 datasheet's active-mode figures and an Amulet-class wearable
// battery.
package energy

// Electrical model.
const (
	// ClockHz is the modeled MCLK (8 MHz: the FR5969's zero-wait-state
	// FRAM operating point).
	ClockHz = 8_000_000
	// ActiveAmps is the active-mode supply current (~100 uA/MHz).
	ActiveAmps = 0.0008
	// SupplyVolts is the nominal supply.
	SupplyVolts = 3.0
	// EnergyPerCycleJ is the energy of one active CPU cycle.
	EnergyPerCycleJ = ActiveAmps * SupplyVolts / ClockHz // 0.3 nJ
)

// Battery model: the Amulet-class 110 mAh lithium-polymer cell, with the
// multi-week baseline lifetime the paper's platform targets.
const (
	BatteryCapacityJ     = 0.110 * 3.7 * 3600 // ~1465 J
	BaselineLifetimeDays = 14.0
)

// SecondsPerWeek is one week of wall time.
const SecondsPerWeek = 7 * 24 * 3600

// CyclesToJoules converts active cycles to energy.
func CyclesToJoules(cycles float64) float64 {
	return cycles * EnergyPerCycleJ
}

// BaselineJoulesPerWeek is the energy the platform consumes in one week at
// its baseline lifetime (battery drained linearly over the lifetime).
func BaselineJoulesPerWeek() float64 {
	return BatteryCapacityJ / (BaselineLifetimeDays / 7)
}

// BatteryImpactPercent converts an isolation overhead, in extra active
// cycles per week, to the percentage of the weekly energy budget it
// consumes — the right-hand axis of Figure 2.
func BatteryImpactPercent(overheadCyclesPerWeek float64) float64 {
	return CyclesToJoules(overheadCyclesPerWeek) / BaselineJoulesPerWeek() * 100
}

// LifetimeReductionHours estimates how much sooner the battery dies given
// the overhead, against the baseline lifetime.
func LifetimeReductionHours(overheadCyclesPerWeek float64) float64 {
	baseP := BaselineJoulesPerWeek() / SecondsPerWeek
	extraP := CyclesToJoules(overheadCyclesPerWeek) / SecondsPerWeek
	baseLifeS := BatteryCapacityJ / baseP
	newLifeS := BatteryCapacityJ / (baseP + extraP)
	return (baseLifeS - newLifeS) / 3600
}
