package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	b := NewBus()
	if v := b.Write16(0x1C00, 0xBEEF); v != nil {
		t.Fatalf("Write16: %v", v)
	}
	got, v := b.Read16(0x1C00)
	if v != nil || got != 0xBEEF {
		t.Fatalf("Read16 = %04X, %v; want BEEF", got, v)
	}
	lo, _ := b.Read8(0x1C00)
	hi, _ := b.Read8(0x1C01)
	if lo != 0xEF || hi != 0xBE {
		t.Fatalf("bytes = %02X %02X, want EF BE (little endian)", lo, hi)
	}
}

func TestByteWrite(t *testing.T) {
	b := NewBus()
	b.Poke16(0x2000, 0x1122)
	if v := b.Write8(0x2000, 0xAA); v != nil {
		t.Fatal(v)
	}
	if v := b.Write8(0x2001, 0xBB); v != nil {
		t.Fatal(v)
	}
	if got := b.Peek16(0x2000); got != 0xBBAA {
		t.Fatalf("Peek16 = %04X, want BBAA", got)
	}
}

func TestWordAlignment(t *testing.T) {
	b := NewBus()
	b.Write16(0x2001, 0xCAFE) // odd address silently aligns down
	if got := b.Peek16(0x2000); got != 0xCAFE {
		t.Fatalf("aligned write: got %04X", got)
	}
	got, _ := b.Read16(0x2001)
	if got != 0xCAFE {
		t.Fatalf("aligned read: got %04X", got)
	}
}

func TestUnwrittenFRAMReadsErased(t *testing.T) {
	b := NewBus()
	got, _ := b.Read16(0x5000)
	if got != 0xFFFF {
		t.Fatalf("erased FRAM = %04X, want FFFF", got)
	}
}

func TestBSLIsReadOnly(t *testing.T) {
	b := NewBus()
	if v := b.Write16(0x1000, 1); v == nil {
		t.Fatal("write to BSL ROM succeeded")
	}
	if v := b.Write8(0x17FF, 1); v == nil {
		t.Fatal("byte write to BSL ROM succeeded")
	}
}

// fakeDev is a single-register device recording accesses.
type fakeDev struct {
	val    uint16
	reads  int
	writes int
}

func (d *fakeDev) DeviceName() string { return "fake" }
func (d *fakeDev) ReadWord(addr uint16) uint16 {
	d.reads++
	return d.val
}
func (d *fakeDev) WriteWord(addr uint16, v uint16) {
	d.writes++
	d.val = v
}

func TestDeviceMapping(t *testing.T) {
	b := NewBus()
	d := &fakeDev{val: 0x1234}
	b.Map(0x0100, 0x0103, d)

	got, _ := b.Read16(0x0100)
	if got != 0x1234 {
		t.Fatalf("device read = %04X", got)
	}
	b.Write16(0x0102, 0x5678)
	if d.val != 0x5678 {
		t.Fatalf("device write: val = %04X", d.val)
	}
	// Byte access composes with device words.
	b.Write8(0x0101, 0xAB)
	if d.val != 0xAB78 {
		t.Fatalf("device byte write: val = %04X", d.val)
	}
	hi, _ := b.Read8(0x0101)
	if hi != 0xAB {
		t.Fatalf("device byte read = %02X", hi)
	}
	// Outside the mapping, plain memory: device write count must not move.
	b.Write16(0x0104, 0x9999)
	if d.writes != 2 {
		t.Fatalf("device saw %d writes, want 2", d.writes)
	}
}

func TestLaterMappingWins(t *testing.T) {
	b := NewBus()
	d1 := &fakeDev{val: 1}
	d2 := &fakeDev{val: 2}
	b.Map(0x0200, 0x020F, d1)
	b.Map(0x0200, 0x0203, d2)
	got, _ := b.Read16(0x0200)
	if got != 2 {
		t.Fatalf("overlapping map: read %d, want 2 (later mapping)", got)
	}
	got, _ = b.Read16(0x0204)
	if got != 1 {
		t.Fatalf("read outside overlay: %d, want 1", got)
	}
}

// denyWrites blocks all writes above a threshold address.
type denyWrites struct{ above uint16 }

func (c denyWrites) CheckAccess(a Access) *Violation {
	if a.Kind == Write && a.Addr >= c.above {
		return &Violation{Access: a, Rule: "denied by test checker"}
	}
	return nil
}

func TestCheckerBlocksAndPreservesMemory(t *testing.T) {
	b := NewBus()
	b.Poke16(0x9000, 0x0BAD)
	b.SetChecker(denyWrites{0x8000})
	if v := b.Write16(0x9000, 0xFFFF); v == nil {
		t.Fatal("checker did not block write")
	}
	if got := b.Peek16(0x9000); got != 0x0BAD {
		t.Fatalf("blocked write mutated memory: %04X", got)
	}
	if v := b.Write16(0x7000, 0x1111); v != nil {
		t.Fatalf("allowed write blocked: %v", v)
	}
}

func TestOnAccessHookAndStats(t *testing.T) {
	b := NewBus()
	var seen []Access
	b.OnAccess = func(a Access) { seen = append(seen, a) }
	b.Write16(0x2000, 7)
	b.Read16(0x2000)
	b.Fetch16(0x4400)
	if len(seen) != 3 {
		t.Fatalf("hook saw %d accesses, want 3", len(seen))
	}
	if seen[0].Kind != Write || seen[1].Kind != Read || seen[2].Kind != Execute {
		t.Fatalf("kinds = %v %v %v", seen[0].Kind, seen[1].Kind, seen[2].Kind)
	}
	r, w, f := b.Stats()
	if r != 1 || w != 1 || f != 1 {
		t.Fatalf("stats = %d %d %d", r, w, f)
	}
}

func TestRegionName(t *testing.T) {
	cases := map[uint16]string{
		0x0000: "peripheral",
		0x1000: "bsl",
		0x1800: "infomem",
		0x1C00: "sram",
		0x4400: "fram",
		0xFF7F: "fram",
		0xFF80: "vectors",
		0xFFFF: "vectors",
		0x3000: "reserved",
	}
	for addr, want := range cases {
		if got := RegionName(addr); got != want {
			t.Errorf("RegionName(%04X) = %q, want %q", addr, got, want)
		}
	}
}

func TestQuickByteWordConsistency(t *testing.T) {
	b := NewBus()
	f := func(addr, val uint16) bool {
		addr |= 0x2000
		addr &= 0x23FE // keep in SRAM, even
		if v := b.Write16(addr, val); v != nil {
			return false
		}
		lo, _ := b.Read8(addr)
		hi, _ := b.Read8(addr + 1)
		return uint16(lo)|uint16(hi)<<8 == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
