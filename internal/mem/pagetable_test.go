package mem

import (
	"fmt"
	"testing"
)

// namedDev is a trivially distinguishable device for dispatch tests.
type namedDev struct{ name string }

func (d *namedDev) DeviceName() string              { return d.name }
func (d *namedDev) ReadWord(addr uint16) uint16     { return 0 }
func (d *namedDev) WriteWord(addr uint16, v uint16) {}

// TestPageTableMatchesLinearScan maps a realistic (and adversarial) device
// set and checks, for every boundary address of every mapped region — lo,
// hi, lo-1, hi+1 — that the page-table dispatch returns exactly the device
// the reference linear scan does. Overlapping registrations exercise the
// later-registration-wins contract.
func TestPageTableMatchesLinearScan(t *testing.T) {
	type mapping struct {
		lo, hi uint16
		name   string
	}
	// The real buses' shapes: sub-page windows, page-straddling spans,
	// multi-page spans, an interposing overlap, and the address-space edges.
	mappings := []mapping{
		{0x01E0, 0x01FF, "ports"},      // sub-page window (cpu debug ports)
		{0x0340, 0x035E, "timer"},      // Timer_A-style block
		{0x04C0, 0x04CB, "mpy"},        // MPY32 block
		{0x05A0, 0x05AA, "mpu-regs"},   // MPU register file
		{0x01F0, 0x01F7, "interposer"}, // overlaps "ports": later wins
		{0x00F0, 0x0210, "straddler"},  // crosses two page boundaries
		{0x1000, 0x2FFF, "wide"},       // many whole pages
		{0x0000, 0x0001, "bottom"},     // address-space low edge
		{0xFFFE, 0xFFFF, "top"},        // address-space high edge
	}
	b := NewBus()
	for _, m := range mappings {
		b.Map(m.lo, m.hi, &namedDev{m.name})
	}

	seen := map[uint16]bool{}
	for _, m := range mappings {
		for _, addr := range []uint16{m.lo, m.hi, m.lo - 1, m.hi + 1} {
			if seen[addr] {
				continue
			}
			seen[addr] = true
			t.Run(fmt.Sprintf("%s/0x%04X", m.name, addr), func(t *testing.T) {
				want := b.deviceAtLinear(addr)
				got := b.deviceAt(addr)
				if got != want {
					t.Errorf("deviceAt(0x%04X) = %v, linear scan = %v",
						addr, devName(got), devName(want))
				}
			})
		}
	}
}

// TestPageTableEveryAddress sweeps the full 64 KiB space once as a
// belt-and-braces equivalence check (fast: one comparison per address).
func TestPageTableEveryAddress(t *testing.T) {
	b := NewBus()
	b.Map(0x01E0, 0x01FF, &namedDev{"ports"})
	b.Map(0x01F0, 0x01F3, &namedDev{"interposer"})
	b.Map(0x7FF0, 0x800F, &namedDev{"straddler"})
	b.Map(0xFFF0, 0xFFFF, &namedDev{"top"})
	for a := 0; a <= 0xFFFF; a++ {
		addr := uint16(a)
		if got, want := b.deviceAt(addr), b.deviceAtLinear(addr); got != want {
			t.Fatalf("deviceAt(0x%04X) = %v, linear scan = %v", addr, devName(got), devName(want))
		}
	}
}

func devName(d Device) string {
	if d == nil {
		return "<none>"
	}
	return d.DeviceName()
}
