package mem

import "testing"

// TestWatchCode checks every write path — checked word/byte writes, loader
// pokes and bulk loads — reports exactly the bytes that landed inside a
// watched text range, clamped to it, and that data traffic stays silent.
func TestWatchCode(t *testing.T) {
	b := NewBus()
	var hits [][2]uint16
	b.WatchCode([]CodeRange{{Lo: 0x4400, Hi: 0x4800}, {Lo: 0x5000, Hi: 0x5400}},
		func(lo, hi uint16) { hits = append(hits, [2]uint16{lo, hi}) })

	take := func() [][2]uint16 {
		h := hits
		hits = nil
		return h
	}
	expect := func(step string, want ...[2]uint16) {
		t.Helper()
		got := take()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d notifications (%v), want %d (%v)", step, len(got), got, len(want), want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: notification %d = %v, want %v", step, i, got[i], want[i])
			}
		}
	}

	b.Poke16(0x4400, 0x1234)
	expect("Poke16 in range", [2]uint16{0x4400, 0x4401})
	b.Poke8(0x47FF, 0xAA)
	expect("Poke8 at range end", [2]uint16{0x47FF, 0x47FF})
	b.Poke16(0x4800, 0x1234)
	expect("Poke16 just past range")
	b.Poke16(0x4C00, 0x1234)
	expect("Poke16 between ranges")
	if v := b.Write16(0x5002, 7); v != nil {
		t.Fatalf("Write16: %v", v)
	}
	expect("checked Write16 in range", [2]uint16{0x5002, 0x5003})
	if v := b.Write8(0x5001, 7); v != nil {
		t.Fatalf("Write8: %v", v)
	}
	expect("checked Write8 in range", [2]uint16{0x5001, 0x5001})
	if v := b.Write16(0x2000, 7); v != nil {
		t.Fatalf("Write16: %v", v)
	}
	expect("checked Write16 outside")

	// A bulk load straddling the gap clamps to each range separately.
	b.LoadBytes(0x47F0, make([]byte, 0x5010-0x47F0))
	expect("LoadBytes across both ranges",
		[2]uint16{0x47F0, 0x47FF}, [2]uint16{0x5000, 0x500F})

	// A load whose endpoints both land on unwatched pages must still report
	// the watched pages in the middle (regression: the page-bitmap fast path
	// once tested only the two endpoint pages).
	b.LoadBytes(0x43F0, make([]byte, 0x4A10-0x43F0))
	expect("LoadBytes surrounding a range", [2]uint16{0x4400, 0x47FF})

	// Clearing the watch silences everything.
	b.WatchCode(nil, nil)
	b.Poke16(0x4400, 0xBEEF)
	expect("after clear")
}
