package mem

import (
	"testing"
)

// cowFixture builds an immutable template with a recognizable byte pattern
// and returns it alongside its image.
func cowFixture() *Template {
	img := new(BusImage)
	for i := range img {
		img[i] = byte(i>>8) ^ byte(i)
	}
	return NewTemplate(img)
}

// TestCOWBootAllocatesNoPages is the headline property: a fresh COW bus has
// zero private pages and reads exactly the template's bytes.
func TestCOWBootAllocatesNoPages(t *testing.T) {
	tmpl := cowFixture()
	b := NewBusCOW(tmpl, nil)
	if got := b.DirtyPages(); got != 0 {
		t.Fatalf("fresh COW bus has %d dirty pages, want 0", got)
	}
	for _, addr := range []uint16{0, 1, 0x00FF, 0x0100, 0x7FFF, 0xFFFE, 0xFFFF} {
		if got, want := b.Peek8(addr), tmpl.Image()[addr]; got != want {
			t.Fatalf("Peek8(%#04x) = %#02x, want template byte %#02x", addr, got, want)
		}
	}
	if got := b.DirtyPages(); got != 0 {
		t.Fatalf("reads faulted %d pages in, want 0", got)
	}
}

// TestCOWWriteFaultPerPath drives each write path through a fresh COW bus and
// asserts it (a) takes effect on the bus, (b) dirties exactly the touched
// pages, and (c) never reaches the shared template.
func TestCOWWriteFaultPerPath(t *testing.T) {
	paths := []struct {
		name  string
		write func(b *Bus) (addrs []uint16) // returns addresses to re-read
		pages int
	}{
		{"Write16", func(b *Bus) []uint16 {
			if v := b.Write16(0x4000, 0xBEEF); v != nil {
				t.Fatalf("Write16 violation: %v", v)
			}
			return []uint16{0x4000, 0x4001}
		}, 1},
		{"Write8", func(b *Bus) []uint16 {
			if v := b.Write8(0x4100, 0x5A); v != nil {
				t.Fatalf("Write8 violation: %v", v)
			}
			return []uint16{0x4100}
		}, 1},
		{"Poke16", func(b *Bus) []uint16 {
			b.Poke16(0x4200, 0xCAFE)
			return []uint16{0x4200, 0x4201}
		}, 1},
		{"Poke8", func(b *Bus) []uint16 {
			b.Poke8(0x4300, 0xA7)
			return []uint16{0x4300}
		}, 1},
		{"LoadBytes", func(b *Bus) []uint16 {
			// Spans a page boundary: both pages must fault.
			b.LoadBytes(0x44F0, make([]byte, 0x20))
			addrs := make([]uint16, 0x20)
			for i := range addrs {
				addrs[i] = 0x44F0 + uint16(i)
			}
			return addrs
		}, 2},
	}
	for _, tc := range paths {
		t.Run(tc.name, func(t *testing.T) {
			tmpl := cowFixture()
			before := *tmpl.Image()
			b := NewBusCOW(tmpl, nil)
			addrs := tc.write(b)
			if got := b.DirtyPages(); got != tc.pages {
				t.Fatalf("%s dirtied %d pages, want %d", tc.name, got, tc.pages)
			}
			if *tmpl.Image() != before {
				t.Fatalf("%s leaked through to the shared template", tc.name)
			}
			// The write took effect on the bus.
			for _, a := range addrs {
				if b.Peek8(a) == before[a] && tc.name != "LoadBytes" {
					t.Fatalf("%s: byte at %#04x unchanged (%#02x)", tc.name, a, b.Peek8(a))
				}
			}
			// Untouched bytes of the faulted page still match the template.
			page := addrs[0] &^ uint16(pageMask)
			for off := uint16(0); off < PageSize; off++ {
				a := page + off
				touched := false
				for _, w := range addrs {
					if a == w {
						touched = true
					}
				}
				if !touched && b.Peek8(a) != before[a] {
					t.Fatalf("%s: untouched byte %#04x corrupted by fault-in", tc.name, a)
				}
			}
		})
	}
}

// TestCOWMatchesFlatOracle runs an identical write/read workload over a COW
// bus and a flat clone of the same image; the full final memory must match
// byte for byte.
func TestCOWMatchesFlatOracle(t *testing.T) {
	tmpl := cowFixture()
	cow := NewBusCOW(tmpl, nil)
	flat := NewBusFrom(tmpl.Image())

	workload := func(b *Bus) {
		rng := uint32(0x1234)
		for i := 0; i < 4096; i++ {
			rng = rng*1664525 + 1013904223
			// Keep the workload in the lower half of the space so some pages
			// provably stay shared (the final assertion below).
			addr := uint16(rng>>16) & 0x7FFF
			switch i % 5 {
			case 0:
				b.Poke16(addr, uint16(rng))
			case 1:
				b.Poke8(addr, uint8(rng))
			case 2:
				b.Write16(align(addr), uint16(rng))
			case 3:
				b.Write8(addr, uint8(rng))
			case 4:
				b.LoadBytes(addr, []byte{byte(rng), byte(rng >> 8), byte(rng >> 16)})
			}
		}
	}
	workload(cow)
	workload(flat)

	var a, b BusImage
	cow.SnapshotData(&a)
	flat.SnapshotData(&b)
	if a != b {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("COW and flat memory diverge first at %#04x: cow=%#02x flat=%#02x", i, a[i], b[i])
			}
		}
	}
	if cow.DirtyPages() >= numPages {
		t.Fatalf("workload dirtied all %d pages; test lost its COW coverage", numPages)
	}
}

// TestCOWArenaRecycling checks the page lifecycle: released pages return to
// the arena poisoned, the next device reuses them, and a recycled page never
// shows the prior device's bytes — the fault-in copy fully overwrites it.
func TestCOWArenaRecycling(t *testing.T) {
	tmpl := cowFixture()
	arena := NewPageArena()

	// Device 1 dirties two pages with a recognizable value and retires.
	d1 := NewBusCOW(tmpl, arena)
	for off := uint16(0); off < PageSize; off++ {
		d1.Poke8(0x5000+off, 0xDE)
		d1.Poke8(0x6000+off, 0xAD)
	}
	if got := d1.DirtyPages(); got != 2 {
		t.Fatalf("device 1 dirtied %d pages, want 2", got)
	}
	d1.ReleasePages()
	if got := d1.DirtyPages(); got != 0 {
		t.Fatalf("after ReleasePages: %d dirty pages, want 0", got)
	}
	// The released bus reverted to a clean template view.
	if got, want := d1.Peek8(0x5000), tmpl.Image()[0x5000]; got != want {
		t.Fatalf("released bus reads %#02x at 0x5000, want template byte %#02x", got, want)
	}
	if got := arena.FreePages(); got != 2 {
		t.Fatalf("arena holds %d free pages, want 2", got)
	}

	// Device 2 faults a different page through the arena: it must see the
	// template's bytes, not device 1's 0xDE/0xAD or the 0xA5 poison.
	d2 := NewBusCOW(tmpl, arena)
	d2.Poke8(0x7000, 0x11) // faults page 0x70 using a recycled page
	gets, puts := arena.Stats()
	if gets != 1 || puts != 2 {
		t.Fatalf("arena stats gets=%d puts=%d, want 1 and 2", gets, puts)
	}
	for off := uint16(1); off < PageSize; off++ {
		a := 0x7000 + off
		if got, want := d2.Peek8(a), tmpl.Image()[a]; got != want {
			t.Fatalf("recycled page leaked byte %#02x at %#04x (template has %#02x)", got, a, want)
		}
	}

	// Direct poison check: pages parked in the arena are wholly 0xA5.
	pg := arena.get()
	if pg == nil {
		t.Fatal("arena unexpectedly empty")
	}
	for i, v := range pg {
		if v != poisonByte {
			t.Fatalf("parked arena page byte %d is %#02x, want poison %#02x", i, v, poisonByte)
		}
	}
}

// TestCOWTableSharing pins the boot-footprint mechanism: a fresh COW bus
// aliases the template's page-pointer table and only clones it on the first
// fault, so boot-only devices never allocate the 2 KiB table either.
func TestCOWTableSharing(t *testing.T) {
	tmpl := cowFixture()
	b := NewBusCOW(tmpl, nil)
	if b.ownTable {
		t.Fatal("fresh COW bus owns its page table; want shared with template")
	}
	if b.mem != &tmpl.table {
		t.Fatal("fresh COW bus does not alias the template's table")
	}
	b.Poke8(0x1234, 0x42)
	if !b.ownTable {
		t.Fatal("write-fault did not privatize the page table")
	}
	if tmpl.table[0x12] != (*dataPage)(tmpl.Image()[0x1200:0x1300]) {
		t.Fatal("fault mutated the template's canonical table")
	}
}

// TestFlatBusReleaseIsNoop locks the fleet runner's unconditional
// ReleasePages call: on a flat (oracle) bus it must change nothing.
func TestFlatBusReleaseIsNoop(t *testing.T) {
	b := NewBus()
	b.Poke16(0x8000, 0x1337)
	b.ReleasePages()
	if got := b.Peek16(0x8000); got != 0x1337 {
		t.Fatalf("ReleasePages on a flat bus clobbered memory: %#04x", got)
	}
	if got := b.DirtyPages(); got != numPages {
		t.Fatalf("flat bus DirtyPages() = %d, want %d", got, numPages)
	}
}
