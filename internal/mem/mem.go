// Package mem implements the 16-bit memory system of the simulated MCU: the
// flat 64 KiB address space, the MSP430FR5969-style region map (peripheral
// registers, InfoMem, SRAM, main FRAM, interrupt vectors), memory-mapped
// peripheral devices, and the access-check and profiling hooks that the MPU
// model and the resource profiler attach to.
//
// The region map matters to the reproduction: the paper's central complaint
// is that the FRAM MPU covers only main FRAM, leaving peripheral registers,
// SRAM and the interrupt vectors unprotected, which forces the hybrid
// MPU+compiler design. Those coverage holes are architectural constants here.
package mem

import "fmt"

// MSP430FR5969-style memory map. All bounds are inclusive.
const (
	PeriphLo uint16 = 0x0000 // peripheral / special-function registers
	PeriphHi uint16 = 0x0FFF
	BSLLo    uint16 = 0x1000 // bootstrap-loader ROM (read-only, unused)
	BSLHi    uint16 = 0x17FF
	InfoLo   uint16 = 0x1800 // information FRAM (512 B, MPU segment 0)
	InfoHi   uint16 = 0x19FF
	SRAMLo   uint16 = 0x1C00 // 2 KiB SRAM (OS stack; MPU cannot cover it)
	SRAMHi   uint16 = 0x23FF
	FRAMLo   uint16 = 0x4400 // main FRAM: OS + application code and data
	FRAMHi   uint16 = 0xFF7F
	VectLo   uint16 = 0xFF80 // interrupt vector table (in FRAM, MPU-exempt)
	VectHi   uint16 = 0xFFFF

	// DebugLo..DebugHi is the simulator's debug/OS port window (halt,
	// console, syscall, fault, yield). It is harness infrastructure, not
	// modeled hardware, so even the hypothetical "advanced" MPU leaves it
	// reachable.
	DebugLo uint16 = 0x01E0
	DebugHi uint16 = 0x01FF
)

// Kind is the type of a memory access.
type Kind uint8

// Access kinds.
const (
	Read    Kind = iota // data read
	Write               // data write
	Execute             // instruction fetch
)

// String returns "read", "write" or "execute".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Access describes one memory access for check and profiling hooks.
type Access struct {
	Addr  uint16
	Kind  Kind
	Byte  bool   // byte-wide access (word otherwise)
	Value uint16 // value written (Write) or read (Read/Execute)
}

// Violation reports an access denied by a checker (normally the MPU model).
type Violation struct {
	Access Access
	Rule   string // human-readable description of the violated rule
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mem: %s of 0x%04X denied: %s", v.Access.Kind, v.Access.Addr, v.Rule)
}

// Device is a memory-mapped peripheral. Devices are word-oriented; the bus
// synthesizes byte accesses from word operations. Addr is the absolute
// address of the accessed (word-aligned) register.
type Device interface {
	// DeviceName identifies the device in diagnostics.
	DeviceName() string
	// ReadWord returns the register value at the word-aligned address.
	ReadWord(addr uint16) uint16
	// WriteWord stores v to the register at the word-aligned address.
	WriteWord(addr uint16, v uint16)
}

type devEntry struct {
	lo, hi uint16
	dev    Device
}

// Checker vets an access before it is performed. A nil return allows the
// access. The canonical Checker is the MPU model.
type Checker interface {
	CheckAccess(a Access) *Violation
}

// Bus is the CPU-visible memory system.
//
// The zero value is not usable; call NewBus.
type Bus struct {
	data [1 << 16]byte
	devs []devEntry

	// Checker, if non-nil, vets every data access and instruction fetch.
	Checker Checker
	// OnAccess, if non-nil, observes every successful access (profiling).
	OnAccess func(a Access)

	// WaitStates is charged by the CPU per FRAM access when the clock
	// outruns the FRAM controller; kept on the bus because it is a
	// property of the memory technology, not of the CPU core.
	WaitStates int

	// stats
	reads, writes, fetches uint64
}

// NewBus returns a bus with the FR5969 region map and no devices.
func NewBus() *Bus {
	b := &Bus{}
	// Unmapped memory reads as 0xFF (erased FRAM convention).
	for i := range b.data {
		b.data[i] = 0xFF
	}
	return b
}

// Map registers a peripheral device over [lo, hi]. Later registrations take
// priority over earlier ones, allowing tests to interpose.
func (b *Bus) Map(lo, hi uint16, d Device) {
	b.devs = append(b.devs, devEntry{lo, hi, d})
}

// deviceAt returns the device mapped at addr, or nil.
func (b *Bus) deviceAt(addr uint16) Device {
	for i := len(b.devs) - 1; i >= 0; i-- {
		if addr >= b.devs[i].lo && addr <= b.devs[i].hi {
			return b.devs[i].dev
		}
	}
	return nil
}

// InRegion reports whether addr lies in [lo, hi].
func InRegion(addr, lo, hi uint16) bool { return addr >= lo && addr <= hi }

// align drops bit 0, mirroring the MSP430's silent word alignment.
func align(addr uint16) uint16 { return addr &^ 1 }

// rawRead16 reads a word without checks or hooks.
func (b *Bus) rawRead16(addr uint16) uint16 {
	addr = align(addr)
	if d := b.deviceAt(addr); d != nil {
		return d.ReadWord(addr)
	}
	return uint16(b.data[addr]) | uint16(b.data[addr+1])<<8
}

// rawWrite16 writes a word without checks or hooks.
func (b *Bus) rawWrite16(addr, v uint16) {
	addr = align(addr)
	if d := b.deviceAt(addr); d != nil {
		d.WriteWord(addr, v)
		return
	}
	b.data[addr] = byte(v)
	b.data[addr+1] = byte(v >> 8)
}

// check runs the configured checker.
func (b *Bus) check(a Access) *Violation {
	if b.Checker == nil {
		return nil
	}
	return b.Checker.CheckAccess(a)
}

// observe runs the profiling hook and updates counters.
func (b *Bus) observe(a Access) {
	switch a.Kind {
	case Read:
		b.reads++
	case Write:
		b.writes++
	case Execute:
		b.fetches++
	}
	if b.OnAccess != nil {
		b.OnAccess(a)
	}
}

// Read16 performs a checked word read.
func (b *Bus) Read16(addr uint16) (uint16, *Violation) {
	a := Access{Addr: align(addr), Kind: Read}
	if v := b.check(a); v != nil {
		return 0, v
	}
	a.Value = b.rawRead16(addr)
	b.observe(a)
	return a.Value, nil
}

// Read8 performs a checked byte read.
func (b *Bus) Read8(addr uint16) (uint8, *Violation) {
	a := Access{Addr: addr, Kind: Read, Byte: true}
	if v := b.check(a); v != nil {
		return 0, v
	}
	var v uint8
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			v = uint8(w >> 8)
		} else {
			v = uint8(w)
		}
	} else {
		v = b.data[addr]
	}
	a.Value = uint16(v)
	b.observe(a)
	return v, nil
}

// Write16 performs a checked word write.
func (b *Bus) Write16(addr, val uint16) *Violation {
	a := Access{Addr: align(addr), Kind: Write, Value: val}
	if v := b.check(a); v != nil {
		return v
	}
	if iv := b.immutable(align(addr)); iv != nil {
		return iv
	}
	b.rawWrite16(addr, val)
	b.observe(a)
	return nil
}

// Write8 performs a checked byte write.
func (b *Bus) Write8(addr uint16, val uint8) *Violation {
	a := Access{Addr: addr, Kind: Write, Byte: true, Value: uint16(val)}
	if v := b.check(a); v != nil {
		return v
	}
	if iv := b.immutable(addr); iv != nil {
		return iv
	}
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			w = w&0x00FF | uint16(val)<<8
		} else {
			w = w&0xFF00 | uint16(val)
		}
		d.WriteWord(align(addr), w)
	} else {
		b.data[addr] = val
	}
	b.observe(a)
	return nil
}

// immutable rejects writes to the bootstrap-loader ROM.
func (b *Bus) immutable(addr uint16) *Violation {
	if InRegion(addr, BSLLo, BSLHi) {
		return &Violation{
			Access: Access{Addr: addr, Kind: Write},
			Rule:   "bootstrap loader ROM is read-only",
		}
	}
	return nil
}

// Fetch16 performs a checked instruction-word fetch.
func (b *Bus) Fetch16(addr uint16) (uint16, *Violation) {
	a := Access{Addr: align(addr), Kind: Execute}
	if v := b.check(a); v != nil {
		return 0, v
	}
	a.Value = b.rawRead16(addr)
	b.observe(a)
	return a.Value, nil
}

// ReadCodeWord implements isa.WordReader for side-effect-free decoding.
func (b *Bus) ReadCodeWord(addr uint16) uint16 { return b.rawRead16(addr) }

// Peek16 reads a word without checks or profiling (debugger/loader use).
func (b *Bus) Peek16(addr uint16) uint16 { return b.rawRead16(addr) }

// Peek8 reads a byte without checks or profiling.
func (b *Bus) Peek8(addr uint16) uint8 {
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			return uint8(w >> 8)
		}
		return uint8(w)
	}
	return b.data[addr]
}

// Poke16 writes a word without checks or profiling (loader use).
func (b *Bus) Poke16(addr, v uint16) { b.rawWrite16(addr, v) }

// Poke8 writes a byte without checks or profiling (loader use).
func (b *Bus) Poke8(addr uint16, v uint8) {
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			w = w&0x00FF | uint16(v)<<8
		} else {
			w = w&0xFF00 | uint16(v)
		}
		d.WriteWord(align(addr), w)
		return
	}
	b.data[addr] = v
}

// LoadBytes copies raw bytes into memory at addr without checks (loader use).
func (b *Bus) LoadBytes(addr uint16, p []byte) {
	for i, v := range p {
		b.data[addr+uint16(i)] = v
	}
}

// Stats returns the cumulative numbers of data reads, data writes and
// instruction fetches since creation.
func (b *Bus) Stats() (reads, writes, fetches uint64) {
	return b.reads, b.writes, b.fetches
}

// RegionName names the architectural region containing addr.
func RegionName(addr uint16) string {
	switch {
	case InRegion(addr, PeriphLo, PeriphHi):
		return "peripheral"
	case InRegion(addr, BSLLo, BSLHi):
		return "bsl"
	case InRegion(addr, InfoLo, InfoHi):
		return "infomem"
	case InRegion(addr, SRAMLo, SRAMHi):
		return "sram"
	case InRegion(addr, FRAMLo, FRAMHi):
		return "fram"
	case addr >= VectLo:
		return "vectors"
	}
	return "reserved"
}
