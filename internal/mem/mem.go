// Package mem implements the 16-bit memory system of the simulated MCU: the
// flat 64 KiB address space, the MSP430FR5969-style region map (peripheral
// registers, InfoMem, SRAM, main FRAM, interrupt vectors), memory-mapped
// peripheral devices, and the access-check and profiling hooks that the MPU
// model and the resource profiler attach to.
//
// The region map matters to the reproduction: the paper's central complaint
// is that the FRAM MPU covers only main FRAM, leaving peripheral registers,
// SRAM and the interrupt vectors unprotected, which forces the hybrid
// MPU+compiler design. Those coverage holes are architectural constants here.
package mem

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// execCertsOff globally disables the execute-certificate fast path when set:
// every FetchWords takes the per-word oracle. The equivalence test battery
// toggles it to assert the certified and per-word engines are observably
// identical.
var execCertsOff atomic.Bool

// SetExecCerts enables or disables the execute-certificate fast path
// process-wide. Unlike the fusion and decode-cache switches it is consulted
// on every fetch, so it may be toggled between runs without rebuilding.
func SetExecCerts(on bool) { execCertsOff.Store(!on) }

// ExecCertsEnabled reports whether FetchWords may use execute certificates.
func ExecCertsEnabled() bool { return !execCertsOff.Load() }

// cowOff globally disables copy-on-write device memory when set: template
// boots (kernel.BootTemplate, cc.Program.Load) fall back to flat 64 KiB
// clones — the memory-oracle path behind the `-nocow` escape hatch. Like the
// other hatches it is a boot-time property: buses already constructed keep
// their backing.
var cowOff atomic.Bool

// SetCOW enables or disables copy-on-write template boots process-wide.
func SetCOW(on bool) { cowOff.Store(!on) }

// COWEnabled reports whether template boots use copy-on-write views.
func COWEnabled() bool { return !cowOff.Load() }

// MSP430FR5969-style memory map. All bounds are inclusive.
const (
	PeriphLo uint16 = 0x0000 // peripheral / special-function registers
	PeriphHi uint16 = 0x0FFF
	BSLLo    uint16 = 0x1000 // bootstrap-loader ROM (read-only, unused)
	BSLHi    uint16 = 0x17FF
	InfoLo   uint16 = 0x1800 // information FRAM (512 B, MPU segment 0)
	InfoHi   uint16 = 0x19FF
	SRAMLo   uint16 = 0x1C00 // 2 KiB SRAM (OS stack; MPU cannot cover it)
	SRAMHi   uint16 = 0x23FF
	FRAMLo   uint16 = 0x4400 // main FRAM: OS + application code and data
	FRAMHi   uint16 = 0xFF7F
	VectLo   uint16 = 0xFF80 // interrupt vector table (in FRAM, MPU-exempt)
	VectHi   uint16 = 0xFFFF

	// DebugLo..DebugHi is the simulator's debug/OS port window (halt,
	// console, syscall, fault, yield). It is harness infrastructure, not
	// modeled hardware, so even the hypothetical "advanced" MPU leaves it
	// reachable.
	DebugLo uint16 = 0x01E0
	DebugHi uint16 = 0x01FF
)

// Kind is the type of a memory access.
type Kind uint8

// Access kinds.
const (
	Read    Kind = iota // data read
	Write               // data write
	Execute             // instruction fetch
)

// String returns "read", "write" or "execute".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Access describes one memory access for check and profiling hooks.
type Access struct {
	Addr  uint16
	Kind  Kind
	Byte  bool   // byte-wide access (word otherwise)
	Value uint16 // value written (Write) or read (Read/Execute)
}

// Violation reports an access denied by a checker (normally the MPU model).
type Violation struct {
	Access Access
	Rule   string // human-readable description of the violated rule
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mem: %s of 0x%04X denied: %s", v.Access.Kind, v.Access.Addr, v.Rule)
}

// Device is a memory-mapped peripheral. Devices are word-oriented; the bus
// synthesizes byte accesses from word operations. Addr is the absolute
// address of the accessed (word-aligned) register.
type Device interface {
	// DeviceName identifies the device in diagnostics.
	DeviceName() string
	// ReadWord returns the register value at the word-aligned address.
	ReadWord(addr uint16) uint16
	// WriteWord stores v to the register at the word-aligned address.
	WriteWord(addr uint16, v uint16)
}

type devEntry struct {
	lo, hi uint16
	dev    Device
}

// pageShift/PageSize/numPages size both the device dispatch table and the
// data backing: 256 pages of 256 bytes each cover the 64 KiB space. The page
// is also the copy-on-write unit — the first write to a template-shared page
// faults in a private 256-byte copy.
const (
	pageShift = 8
	// PageSize is the byte granularity of the bus's page table and therefore
	// of copy-on-write sharing: a device's idle data footprint is
	// DirtyPages() * PageSize bytes.
	PageSize = 1 << pageShift
	numPages = 1 << (16 - pageShift)
	pageMask = PageSize - 1
)

// dataPage is one 256-byte unit of bus memory. Aligned word accesses never
// cross a page (an even address' low byte is at offset <= 0xFE), so the word
// paths touch exactly one page.
type dataPage [PageSize]byte

// CodeRange is one executable text span [Lo, Hi) backing a predecode cache;
// writes landing inside it must invalidate the cached instructions (see
// WatchCode).
type CodeRange struct {
	Lo, Hi uint16
}

// Checker vets an access before it is performed. A nil return allows the
// access. The canonical Checker is the MPU model.
type Checker interface {
	CheckAccess(a Access) *Violation
}

// ExecCertifier is a Checker that can prove execute permission over whole
// spans, letting FetchWords hoist the per-word execute check out of the
// fetch path (the "fast execute-only memory" trick: enforcement moves to
// plan-change time without weakening the guarantee). Implementations must
// keep both methods pure — in particular, CertifyExecute-style queries must
// not latch violation state the way CheckAccess does.
type ExecCertifier interface {
	Checker
	// ExecSpan returns the maximal span [lo, hi) containing addr for which
	// every instruction fetch is allowed under the current configuration
	// (empty when addr itself is not executable). hi is a uint32 so a span
	// may run through the top of the address space (hi = 0x10000).
	ExecSpan(addr uint16) (lo uint16, hi uint32)
	// ExecGen is a generation counter that advances on every configuration
	// change that could alter ExecSpan's answer. A certificate is valid
	// only while the generation it was issued at is current.
	ExecGen() uint64
}

// execGenRef is an optional ExecCertifier extension: a certifier that can
// expose its generation counter's address lets the bus turn the per-fetch
// validity probe (an interface call on every certified instruction) into a
// single memory load. The pointee must be exactly the value ExecGen returns.
type execGenRef interface {
	ExecGenRef() *uint64
}

// Bus is the CPU-visible memory system.
//
// Bus memory is page-granular: mem[addr>>8] points at the 256-byte page
// backing addr. A flat bus (NewBus, NewBusFrom) owns a private 64 KiB slab
// and points every page into it; a copy-on-write bus (NewBusCOW) starts with
// every page aliasing a shared immutable template and allocates nothing —
// the first write to a shared page faults in a private copy (see faultIn),
// so an idle device costs O(dirty pages) instead of 64 KiB. Reads never
// fault; writes through every path (checked, poke, loader) do.
//
// The zero value is not usable; call NewBus, NewBusFrom or NewBusCOW.
type Bus struct {
	// mem is the page-granular data view. Entries with a clear priv bit
	// alias the shared template (COW buses) and must never be written
	// through; entries with a set bit are private to this bus. A COW bus
	// starts by aliasing the template's canonical table wholesale (ownTable
	// false) and clones it on the first fault, so a boot-only device shares
	// even the 2 KiB of page pointers.
	mem *[numPages]*dataPage
	// ownTable records whether mem is private to this bus and mutable.
	ownTable bool
	// priv is the private-page bitmap: bit p set means mem[p] is owned by
	// this bus and writable in place. Flat buses have every bit set.
	priv [numPages / 64]uint64
	// tmpl is the template a COW bus was created over (nil for flat buses);
	// ReleasePages points recycled pages back at it.
	tmpl *Template
	// arena, when non-nil, supplies and recycles the private pages a COW
	// bus faults in (fleet runners share one across their devices).
	arena *PageArena
	// dirtied counts the private pages faulted in since creation (or the
	// last ReleasePages) — the COW bus's data footprint in pages.
	dirtied int

	devs []devEntry
	// devPages/devLists form the precomputed device dispatch table:
	// devPages[addr>>8] is 1+index into devLists for pages overlapped by
	// any device (0 otherwise), so the common case (plain memory, no
	// device) is one table load. Per-page lists preserve registration
	// order. The indirection keeps the in-struct cost at two bytes per
	// page: the Bus struct itself is part of the per-device footprint.
	devPages [numPages]uint16
	devLists [][]devEntry

	// Code-write watch: the predecode cache's invalidation hook. codePages
	// is a bitmap marking pages overlapping any watched text range so the
	// per-write cost off the watched ranges is a couple of bit tests.
	codeRanges  []CodeRange
	codePages   [numPages / 64]uint64
	onCodeWrite func(lo, hi uint16)

	// Execute-certificate state (see FetchWords). certLo/certHi is the span
	// the checker last certified execute-allowed end to end, certGen the
	// checker generation it was issued at. certEC is the checker's
	// ExecCertifier view, derived once in SetChecker so the fetch path never
	// re-examines the checker's identity. A write into watched code empties
	// the span (content invalidation); the next plan change (generation
	// bump) re-certifies.
	certLo, certHi uint32
	certGen        uint64
	certEC         ExecCertifier
	// certGenRef, when the certifier exposes it, is the address of the
	// certifier's generation counter: the steady-state validity probe reads
	// it directly instead of calling ExecGen through the interface.
	certGenRef *uint64

	// checker, if non-nil, vets every data access and instruction fetch.
	// It is set through SetChecker, which derives the certificate view.
	checker Checker
	// OnAccess, if non-nil, observes every successful access (profiling).
	OnAccess func(a Access)

	// WaitStates is charged by the CPU per FRAM access when the clock
	// outruns the FRAM controller; kept on the bus because it is a
	// property of the memory technology, not of the CPU core.
	WaitStates int

	// stats
	reads, writes, fetches uint64
}

// initFlat points every page of the bus into the private slab and marks them
// owned: the flat backing NewBus and NewBusFrom produce, and the oracle the
// COW backing is tested against.
func (b *Bus) initFlat(slab *BusImage) {
	b.mem = new([numPages]*dataPage)
	b.ownTable = true
	for p := 0; p < numPages; p++ {
		b.mem[p] = (*dataPage)(slab[p<<pageShift : (p+1)<<pageShift])
	}
	for i := range b.priv {
		b.priv[i] = ^uint64(0)
	}
}

// initDispatch presizes the device-registration slices: every kernel maps a
// handful of peripherals at boot, and boot-path allocations are multiplied by
// fleet size.
func (b *Bus) initDispatch() {
	b.devs = make([]devEntry, 0, 8)
	b.devLists = make([][]devEntry, 0, 8)
}

// NewBus returns a bus with the FR5969 region map and no devices.
func NewBus() *Bus {
	b := &Bus{}
	// Unmapped memory reads as 0xFF (erased FRAM convention). Doubling
	// copies fill the 64 KiB in 16 memmoves instead of 64 Ki byte stores —
	// bus construction is on the per-device boot path at fleet scale.
	slab := new(BusImage)
	slab[0] = 0xFF
	for i := 1; i < len(slab); i *= 2 {
		copy(slab[i:], slab[:i])
	}
	b.initFlat(slab)
	b.initDispatch()
	return b
}

// BusImage is a full snapshot of a bus's 64 KiB memory: the boot-template
// payload. A template holder captures a freshly loaded bus once with
// SnapshotData and clones any number of independent buses from it with
// NewBusFrom — one memmove per device instead of an erase pass plus a
// per-segment firmware load.
type BusImage [1 << 16]byte

// SnapshotData copies the bus's memory into dst. Device registers are not
// captured (devices never back their state with bus memory), so a snapshot
// taken after a loader pass is exactly the byte state a fresh NewBus +
// LoadInto sequence produces.
func (b *Bus) SnapshotData(dst *BusImage) {
	for p := 0; p < numPages; p++ {
		copy(dst[p<<pageShift:(p+1)<<pageShift], b.mem[p][:])
	}
}

// NewBusFrom returns a bus whose memory is a private copy of img, with no
// devices, checker or watches — byte-for-byte the machine NewBus plus the
// template's loader history would have produced, at memmove cost. It is the
// flat-memory oracle the `-nocow` escape hatch falls back to.
func NewBusFrom(img *BusImage) *Bus {
	b := &Bus{}
	slab := new(BusImage)
	*slab = *img
	b.initFlat(slab)
	b.initDispatch()
	return b
}

// Template is an immutable 64 KiB memory image prepared for copy-on-write
// sharing: the snapshot bytes plus the canonical page-pointer table every COW
// bus starts from. Build one with NewTemplate and keep it for as long as any
// bus boots from it; it is safe to share across goroutines.
type Template struct {
	img   *BusImage
	table [numPages]*dataPage
}

// NewTemplate prepares img for COW sharing. img must stay immutable while
// any bus created over the template is alive.
func NewTemplate(img *BusImage) *Template {
	t := &Template{img: img}
	for p := 0; p < numPages; p++ {
		t.table[p] = (*dataPage)(img[p<<pageShift : (p+1)<<pageShift])
	}
	return t
}

// Image returns the template's underlying snapshot (for flat-oracle boots).
func (t *Template) Image() *BusImage { return t.img }

// NewBusCOW returns a bus whose memory is a page-granular copy-on-write view
// over the template: it allocates no data pages at all — it even shares the
// template's page-pointer table until the first fault — every read is served
// from the shared bytes, and the first write to a page faults in a private
// 256-byte copy (drawn from arena when non-nil, else freshly allocated).
// Observably identical to NewBusFrom(t.Image()) — same bytes, same checks,
// same stats — at O(dirty pages) memory cost instead of 64 KiB.
func NewBusCOW(t *Template, arena *PageArena) *Bus {
	b := &Bus{tmpl: t, arena: arena, mem: &t.table}
	b.initDispatch()
	return b
}

// writablePage returns a page the bus may write in place, faulting in a
// private copy on the first write to a template-shared page. Every write
// path — checked, poke, loader — funnels through here.
func (b *Bus) writablePage(addr uint16) *dataPage {
	p := addr >> pageShift
	if b.priv[p>>6]&(1<<(p&63)) == 0 {
		return b.faultIn(p)
	}
	return b.mem[p]
}

// faultIn replaces shared page p with a private copy of its current (template)
// contents. The copy fully overwrites the incoming page, so arena-recycled
// pages can never leak a prior device's bytes. The very first fault also
// privatizes the page-pointer table the bus was sharing with its template.
func (b *Bus) faultIn(p uint16) *dataPage {
	if !b.ownTable {
		nt := new([numPages]*dataPage)
		*nt = *b.mem
		b.mem = nt
		b.ownTable = true
	}
	var pg *dataPage
	if b.arena != nil {
		pg = b.arena.get()
	}
	if pg == nil {
		pg = new(dataPage)
	}
	*pg = *b.mem[p]
	b.mem[p] = pg
	b.priv[p>>6] |= 1 << (p & 63)
	b.dirtied++
	mPagesDirtied.Inc()
	return pg
}

// DirtyPages returns how many private data pages back this bus: the pages a
// COW bus has faulted in, or all of them for a flat bus. A device's idle
// data footprint is DirtyPages() * PageSize bytes.
func (b *Bus) DirtyPages() int {
	if b.tmpl == nil {
		return numPages
	}
	return b.dirtied
}

// ReleasePages detaches a COW bus from its private pages, handing them to
// the arena (when one is attached) for later devices to reuse, and reverts
// the bus to a clean view of its template. Finished fleet devices call it so
// a million-device run cycles a bounded page working set. The caller must
// treat the bus as retired afterwards. Flat buses ignore the call.
func (b *Bus) ReleasePages() {
	if b.tmpl == nil {
		return
	}
	for w, bw := range b.priv {
		for bw != 0 {
			p := uint16(w*64 + bits.TrailingZeros64(bw))
			bw &= bw - 1
			pg := b.mem[p]
			b.mem[p] = b.tmpl.table[p]
			if b.arena != nil {
				b.arena.put(pg)
			}
		}
		b.priv[w] = 0
	}
	b.dirtied = 0
}

// Map registers a peripheral device over [lo, hi]. Later registrations take
// priority over earlier ones, allowing tests to interpose. The page table is
// maintained incrementally, so Map stays cheap enough for per-test buses.
func (b *Bus) Map(lo, hi uint16, d Device) {
	e := devEntry{lo, hi, d}
	b.devs = append(b.devs, e)
	for p := int(lo >> pageShift); p <= int(hi>>pageShift); p++ {
		idx := b.devPages[p]
		if idx == 0 {
			b.devLists = append(b.devLists, nil)
			idx = uint16(len(b.devLists))
			b.devPages[p] = idx
		}
		b.devLists[idx-1] = append(b.devLists[idx-1], e)
	}
}

// deviceAt returns the device mapped at addr, or nil. Dispatch goes through
// the page table; per-page lists preserve global registration order, so the
// reverse scan keeps the later-registration-wins contract of deviceAtLinear.
func (b *Bus) deviceAt(addr uint16) Device {
	idx := b.devPages[addr>>pageShift]
	if idx == 0 {
		return nil
	}
	entries := b.devLists[idx-1]
	for i := len(entries) - 1; i >= 0; i-- {
		if addr >= entries[i].lo && addr <= entries[i].hi {
			return entries[i].dev
		}
	}
	return nil
}

// deviceAtLinear is the pre-page-table reference implementation, kept as the
// oracle the page table is tested against.
func (b *Bus) deviceAtLinear(addr uint16) Device {
	for i := len(b.devs) - 1; i >= 0; i-- {
		if addr >= b.devs[i].lo && addr <= b.devs[i].hi {
			return b.devs[i].dev
		}
	}
	return nil
}

// WatchCode registers the executable text ranges backing a predecode cache
// and the callback notified when any write — checked, poke or loader — lands
// inside one of them. The callback receives the overlapping byte span
// [lo, hi] (inclusive), clamped per range. Passing a nil fn clears the watch.
// At most one watch is active; the CPU owns it (see cpu.UseProgram).
func (b *Bus) WatchCode(ranges []CodeRange, fn func(lo, hi uint16)) {
	b.codePages = [numPages / 64]uint64{}
	// A new watch means a new (or detached) predecode cache: restart
	// certification from scratch so the next certified fetch re-validates.
	b.DropExecCert()
	b.certGen = ^uint64(0)
	if fn == nil {
		b.codeRanges, b.onCodeWrite = nil, nil
		return
	}
	b.codeRanges = append([]CodeRange(nil), ranges...)
	b.onCodeWrite = fn
	for _, r := range ranges {
		if r.Hi <= r.Lo {
			continue
		}
		for p := int(r.Lo >> pageShift); p <= int((r.Hi-1)>>pageShift); p++ {
			b.codePages[p>>6] |= 1 << (p & 63)
		}
	}
}

// touchCode reports a write of the byte span [lo, hi] to the code watch.
// The page bitmap makes the miss path (all data traffic, spanning one or
// two pages) a couple of loads; hits clamp the span to each watched range
// before invoking the callback. Multi-page spans (LoadBytes) must test
// every covered page — the endpoints alone can both miss while the middle
// overwrites watched text.
func (b *Bus) touchCode(lo, hi uint16) {
	if b.onCodeWrite == nil {
		return
	}
	watched := false
	for p := int(lo >> pageShift); p <= int(hi>>pageShift); p++ {
		if b.codePages[p>>6]&(1<<(p&63)) != 0 {
			watched = true
			break
		}
	}
	if !watched {
		return
	}
	for _, r := range b.codeRanges {
		if r.Hi <= r.Lo || hi < r.Lo || lo >= r.Hi {
			continue
		}
		// Content invalidation: a write into watched text also voids the
		// execute certificate until the next plan change re-validates, so
		// self-modifying and adversarial pokes always fall back to the
		// per-word oracle alongside the live decoder.
		b.DropExecCert()
		mWatchInval.Inc()
		clo, chi := lo, hi
		if clo < r.Lo {
			clo = r.Lo
		}
		if chi > r.Hi-1 {
			chi = r.Hi - 1
		}
		b.onCodeWrite(clo, chi)
	}
}

// InRegion reports whether addr lies in [lo, hi].
func InRegion(addr, lo, hi uint16) bool { return addr >= lo && addr <= hi }

// align drops bit 0, mirroring the MSP430's silent word alignment.
func align(addr uint16) uint16 { return addr &^ 1 }

// rawRead16 reads a word without checks or hooks. Reads never fault a COW
// page in — shared template pages serve them directly.
func (b *Bus) rawRead16(addr uint16) uint16 {
	addr = align(addr)
	if d := b.deviceAt(addr); d != nil {
		return d.ReadWord(addr)
	}
	pg := b.mem[addr>>pageShift]
	off := addr & pageMask
	return uint16(pg[off]) | uint16(pg[off+1])<<8
}

// rawWrite16 writes a word without checks or hooks (but it does feed the
// code watch: predecoded text must never go stale, whoever writes it).
func (b *Bus) rawWrite16(addr, v uint16) {
	addr = align(addr)
	b.touchCode(addr, addr+1)
	if d := b.deviceAt(addr); d != nil {
		d.WriteWord(addr, v)
		return
	}
	pg := b.writablePage(addr)
	off := addr & pageMask
	pg[off] = byte(v)
	pg[off+1] = byte(v >> 8)
}

// SetChecker installs (or clears, with nil) the access checker. The
// certifier view — ExecCertifier interface, generation-counter address — is
// derived here, once per install, so the fetch fast path never pays an
// interface identity probe. Any previously certified span is dropped.
func (b *Bus) SetChecker(c Checker) {
	b.checker = c
	b.certEC, _ = c.(ExecCertifier)
	b.certGenRef = nil
	if gr, ok := c.(execGenRef); ok {
		b.certGenRef = gr.ExecGenRef()
	}
	b.certGen = ^uint64(0)
	b.DropExecCert()
}

// Checker returns the installed access checker, if any.
func (b *Bus) Checker() Checker { return b.checker }

// check runs the configured checker.
func (b *Bus) check(a Access) *Violation {
	if b.checker == nil {
		return nil
	}
	return b.checker.CheckAccess(a)
}

// observe runs the profiling hook and updates counters.
func (b *Bus) observe(a Access) {
	switch a.Kind {
	case Read:
		b.reads++
	case Write:
		b.writes++
	case Execute:
		b.fetches++
	}
	if b.OnAccess != nil {
		b.OnAccess(a)
	}
}

// Read16 performs a checked word read.
func (b *Bus) Read16(addr uint16) (uint16, *Violation) {
	a := Access{Addr: align(addr), Kind: Read}
	if v := b.check(a); v != nil {
		return 0, v
	}
	a.Value = b.rawRead16(addr)
	b.observe(a)
	return a.Value, nil
}

// Read8 performs a checked byte read.
func (b *Bus) Read8(addr uint16) (uint8, *Violation) {
	a := Access{Addr: addr, Kind: Read, Byte: true}
	if v := b.check(a); v != nil {
		return 0, v
	}
	var v uint8
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			v = uint8(w >> 8)
		} else {
			v = uint8(w)
		}
	} else {
		v = b.mem[addr>>pageShift][addr&pageMask]
	}
	a.Value = uint16(v)
	b.observe(a)
	return v, nil
}

// Write16 performs a checked word write.
func (b *Bus) Write16(addr, val uint16) *Violation {
	a := Access{Addr: align(addr), Kind: Write, Value: val}
	if v := b.check(a); v != nil {
		return v
	}
	if iv := b.immutable(align(addr)); iv != nil {
		return iv
	}
	b.rawWrite16(addr, val)
	b.observe(a)
	return nil
}

// Write8 performs a checked byte write.
func (b *Bus) Write8(addr uint16, val uint8) *Violation {
	a := Access{Addr: addr, Kind: Write, Byte: true, Value: uint16(val)}
	if v := b.check(a); v != nil {
		return v
	}
	if iv := b.immutable(addr); iv != nil {
		return iv
	}
	b.touchCode(addr, addr)
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			w = w&0x00FF | uint16(val)<<8
		} else {
			w = w&0xFF00 | uint16(val)
		}
		d.WriteWord(align(addr), w)
	} else {
		b.writablePage(addr)[addr&pageMask] = val
	}
	b.observe(a)
	return nil
}

// immutable rejects writes to the bootstrap-loader ROM.
func (b *Bus) immutable(addr uint16) *Violation {
	if InRegion(addr, BSLLo, BSLHi) {
		return &Violation{
			Access: Access{Addr: addr, Kind: Write},
			Rule:   "bootstrap loader ROM is read-only",
		}
	}
	return nil
}

// execCertified reports whether the instruction fetch [addr, addr+size) is
// covered by a valid execute certificate, re-validating lazily: on a
// generation change (an MPU plan change — gate code rewriting the registers,
// or the kernel's Go-side Configure) the certifier is asked once for the
// maximal allowed span around addr. Between plan changes the per-fetch cost
// is two compares and a generation load (SetChecker pre-derived the
// certifier view, so no identity probe or interface call remains here).
func (b *Bus) execCertified(addr, size uint16) bool {
	ec := b.certEC
	if ec == nil {
		// With no checker at all every fetch is allowed; any other checker
		// kind cannot certify and always takes the per-word oracle.
		return b.checker == nil
	}
	var g uint64
	if r := b.certGenRef; r != nil {
		g = *r
	} else {
		g = ec.ExecGen()
	}
	if g != b.certGen {
		b.certGen = g
		lo, hi := ec.ExecSpan(addr)
		b.certLo, b.certHi = uint32(lo), hi
	}
	a := uint32(addr)
	return a >= b.certLo && a+uint32(size) <= b.certHi
}

// ExecCertifiedSpan reports whether a compiled block's whole fetch span
// [addr, addr+size) is covered by a valid execute certificate AND the
// certificate fast path is actually in force — no profiling hook observing
// accesses and certificates not disabled. It is the entry (and post-write
// re-probe) gate for the block JIT: when it returns true, every
// per-instruction FetchWords inside the span would take the counter-only
// fast path, so a block executor may batch that accounting; when false the
// block deopts and the interpreter's per-word oracle does whatever it would
// have done anyway.
func (b *Bus) ExecCertifiedSpan(addr, size uint16) bool {
	if b.OnAccess != nil || execCertsOff.Load() {
		return false
	}
	return b.execCertified(addr, size)
}

// AddFetchWords advances the fetch counter by n words without checks or
// profiling — the block JIT's accounting primitive, valid only under a span
// certificate (see ExecCertifiedSpan), where it is observably identical to
// the per-instruction FetchWords fast path.
func (b *Bus) AddFetchWords(n uint64) { b.fetches += n }

// DropExecCert empties the certified execute span without touching the
// generation, forcing per-word checks until the next plan change
// re-certifies. The code watch calls it on any write into watched text;
// exported for tests and tooling.
func (b *Bus) DropExecCert() {
	if b.certHi > b.certLo {
		mCertDrops.Inc()
	}
	b.certLo, b.certHi = 1, 0
}

// ExecCert returns the current certified execute span and whether it is
// non-empty — introspection for the certificate-invalidation tests.
func (b *Bus) ExecCert() (lo, hi uint32, ok bool) {
	return b.certLo, b.certHi, b.certHi > b.certLo
}

// Fetch16 performs a checked instruction-word fetch.
func (b *Bus) Fetch16(addr uint16) (uint16, *Violation) {
	a := Access{Addr: align(addr), Kind: Execute}
	if v := b.check(a); v != nil {
		return 0, v
	}
	a.Value = b.rawRead16(addr)
	b.observe(a)
	return a.Value, nil
}

// FetchWords performs the checked instruction fetch for one predecoded
// instruction of `size` bytes starting at addr: each word is execute-checked
// and counted exactly as a Fetch16 would, stopping at the first violation,
// but the memory re-read (the bits are already decoded) is skipped unless a
// profiling hook needs the fetched value.
//
// Inside a valid execute certificate (a span the Checker has proven
// execute-allowed end to end, see ExecCertifier) the per-word checks are
// skipped entirely: no access in the span can be denied, so only the fetch
// counter advances — observably identical to the per-word path, which is
// kept below as the enforcement oracle and still serves profiled runs
// (OnAccess needs per-word values), uncertifiable checkers, dropped
// certificates and spans the certifier refuses.
func (b *Bus) FetchWords(addr, size uint16) *Violation {
	if b.OnAccess == nil && !execCertsOff.Load() && b.execCertified(addr, size) {
		b.fetches += uint64(size >> 1)
		return nil
	}
	return b.fetchWordsOracle(addr, size)
}

// fetchWordsOracle is the always-correct per-word fetch path the
// certificate fast path is tested against.
func (b *Bus) fetchWordsOracle(addr, size uint16) *Violation {
	for off := uint16(0); off < size; off += 2 {
		a := Access{Addr: addr + off, Kind: Execute}
		if v := b.check(a); v != nil {
			return v
		}
		if b.OnAccess != nil {
			a.Value = b.rawRead16(a.Addr)
		}
		b.observe(a)
	}
	return nil
}

// ReadCodeWord implements isa.WordReader for side-effect-free decoding.
func (b *Bus) ReadCodeWord(addr uint16) uint16 { return b.rawRead16(addr) }

// Peek16 reads a word without checks or profiling (debugger/loader use).
func (b *Bus) Peek16(addr uint16) uint16 { return b.rawRead16(addr) }

// Peek8 reads a byte without checks or profiling.
func (b *Bus) Peek8(addr uint16) uint8 {
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			return uint8(w >> 8)
		}
		return uint8(w)
	}
	return b.mem[addr>>pageShift][addr&pageMask]
}

// Poke16 writes a word without checks or profiling (loader use).
func (b *Bus) Poke16(addr, v uint16) { b.rawWrite16(addr, v) }

// Poke8 writes a byte without checks or profiling (loader use).
func (b *Bus) Poke8(addr uint16, v uint8) {
	b.touchCode(addr, addr)
	if d := b.deviceAt(align(addr)); d != nil {
		w := d.ReadWord(align(addr))
		if addr&1 == 1 {
			w = w&0x00FF | uint16(v)<<8
		} else {
			w = w&0xFF00 | uint16(v)
		}
		d.WriteWord(align(addr), w)
		return
	}
	b.writablePage(addr)[addr&pageMask] = v
}

// LoadBytes copies raw bytes into memory at addr without checks (loader use).
// A load overlapping a watched code range invalidates the covered cache
// entries, so image reloads over a live predecode cache stay correct.
func (b *Bus) LoadBytes(addr uint16, p []byte) {
	if len(p) == 0 {
		return
	}
	last := addr + uint16(len(p)-1)
	if last < addr { // wrapped past 0xFFFF
		b.touchCode(addr, 0xFFFF)
		b.touchCode(0, last)
	} else {
		b.touchCode(addr, last)
	}
	a := addr
	remaining := p
	for len(remaining) > 0 {
		pg := b.writablePage(a)
		n := copy(pg[a&pageMask:], remaining)
		remaining = remaining[n:]
		a += uint16(n) // wraps past 0xFFFF like the old byte loop did
	}
}

// Stats returns the cumulative numbers of data reads, data writes and
// instruction fetches since creation.
func (b *Bus) Stats() (reads, writes, fetches uint64) {
	return b.reads, b.writes, b.fetches
}

// PagePersistent reports whether a bus page holds state that survives power
// loss on the modeled MSP430FR5969: information FRAM, main FRAM, and the
// vector table are ferroelectric and retain their contents through a
// brownout; SRAM, peripheral registers, and the BSL/reserved windows do not.
// A page is persistent only if every address in it is FRAM-backed — pages
// straddling a volatile region are conservatively treated as volatile.
func PagePersistent(page int) bool {
	if page < 0 || page >= (1<<16)/PageSize {
		return false
	}
	lo := uint16(page * PageSize)
	hi := lo + PageSize - 1
	if InRegion(lo, InfoLo, InfoHi) && InRegion(hi, InfoLo, InfoHi) {
		return true
	}
	return lo >= FRAMLo // main FRAM runs from FRAMLo through the vectors at 0xFFFF
}

// RegionName names the architectural region containing addr.
func RegionName(addr uint16) string {
	switch {
	case InRegion(addr, PeriphLo, PeriphHi):
		return "peripheral"
	case InRegion(addr, BSLLo, BSLHi):
		return "bsl"
	case InRegion(addr, InfoLo, InfoHi):
		return "infomem"
	case InRegion(addr, SRAMLo, SRAMHi):
		return "sram"
	case InRegion(addr, FRAMLo, FRAMHi):
		return "fram"
	case addr >= VectLo:
		return "vectors"
	}
	return "reserved"
}
