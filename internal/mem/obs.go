package mem

import "amuletiso/internal/obs"

// Process-wide memory-system metrics: how often adversarial or
// self-modifying writes force the execute-certificate and predecode-cache
// machinery to give up its fast paths. Both sit on rare invalidation paths,
// never on the per-access path.
var (
	mCertDrops = obs.Default.Counter(obs.MetricCertDrops,
		"Non-empty execute certificates voided by writes into watched code.")
	mWatchInval = obs.Default.Counter(obs.MetricWatchInval,
		"Code-watch invalidations delivered to predecode caches.")
	mPagesDirtied = obs.Default.Counter(obs.MetricPagesDirtied,
		"COW pages faulted private by a first write to a shared template page.")
	mPagesRecycled = obs.Default.Counter(obs.MetricPagesRecycled,
		"Dirty COW pages returned to a recycling arena by finished devices.")
)
