package mem

import "testing"

// TestNewBusErasedFRAM pins the erased-FRAM convention the doubling-copy
// fill must preserve: every byte of a fresh bus reads 0xFF.
func TestNewBusErasedFRAM(t *testing.T) {
	b := NewBus()
	for a := uint32(0); a < 1<<16; a++ {
		if got := b.Peek8(uint16(a)); got != 0xFF {
			t.Fatalf("fresh bus byte at 0x%04X = 0x%02X, want 0xFF", a, got)
		}
	}
}

// TestSnapshotClone asserts the boot-template contract: a bus cloned from a
// snapshot is byte-identical to the bus the snapshot was taken from, and the
// clone is fully independent (writes on either side do not leak).
func TestSnapshotClone(t *testing.T) {
	src := NewBus()
	src.LoadBytes(0x4400, []byte{0x10, 0x20, 0x30, 0x40})
	src.Poke16(0xFFFE, 0x4400)
	src.Poke8(0x1C01, 0xAB)

	var img BusImage
	src.SnapshotData(&img)
	clone := NewBusFrom(&img)
	for a := uint32(0); a < 1<<16; a++ {
		if s, c := src.Peek8(uint16(a)), clone.Peek8(uint16(a)); s != c {
			t.Fatalf("clone differs at 0x%04X: src 0x%02X, clone 0x%02X", a, s, c)
		}
	}

	clone.Poke16(0x4400, 0xBEEF)
	if src.Peek16(0x4400) == 0xBEEF {
		t.Fatal("write to clone leaked into source bus")
	}
	src.Poke16(0x5000, 0x1234)
	if clone.Peek16(0x5000) == 0x1234 {
		t.Fatal("write to source leaked into clone")
	}

	// The clone starts with no checker, watch or certificate state.
	if clone.Checker() != nil {
		t.Fatal("clone inherited a checker")
	}
	if _, _, ok := clone.ExecCert(); ok {
		t.Fatal("clone inherited a certified span")
	}
	r, w, f := clone.Stats()
	if r != 0 || w != 0 || f != 0 {
		t.Fatalf("clone inherited bus stats: %d/%d/%d", r, w, f)
	}
}
