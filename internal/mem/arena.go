package mem

import "sync"

// poisonByte fills recycled pages before they re-enter circulation. Fault-in
// copies the template page over the whole buffer, so a poisoned byte leaking
// through to a fresh device means the sanitization contract broke — the
// recycling tests assert no device ever observes 0xA5 it didn't write.
const poisonByte = 0xA5

// PageArena recycles private COW pages between devices. A fleet runner owns
// one arena shared by all its workers: finished devices push their dirty
// pages back, and the next boot's write-faults pull from the free list
// instead of the Go allocator. Steady-state page traffic then costs zero
// allocations regardless of fleet size.
type PageArena struct {
	mu   sync.Mutex
	free []*dataPage
	gets uint64
	puts uint64
}

// NewPageArena returns an empty arena.
func NewPageArena() *PageArena { return &PageArena{} }

// get pops a recycled page, or returns nil when the free list is empty (the
// caller falls back to the allocator).
func (a *PageArena) get() *dataPage {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.free)
	if n == 0 {
		return nil
	}
	pg := a.free[n-1]
	a.free[n-1] = nil
	a.free = a.free[:n-1]
	a.gets++
	return pg
}

// put poisons a retired page and returns it to the free list.
func (a *PageArena) put(pg *dataPage) {
	for i := range pg {
		pg[i] = poisonByte
	}
	a.mu.Lock()
	a.free = append(a.free, pg)
	a.puts++
	a.mu.Unlock()
	mPagesRecycled.Inc()
}

// FreePages reports how many recycled pages are currently parked in the
// arena.
func (a *PageArena) FreePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}

// Stats returns the cumulative numbers of pages handed out and pages
// returned since creation.
func (a *PageArena) Stats() (gets, puts uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.puts
}
