package mem

import "testing"

// certChecker is a minimal ExecCertifier over one configurable denied
// window, with a generation the tests bump explicitly.
type certChecker struct {
	denyLo, denyHi uint16 // inclusive denied window (execute only)
	gen            uint64
	checks         int // CheckAccess invocations (oracle activity probe)
}

func (c *certChecker) CheckAccess(a Access) *Violation {
	c.checks++
	if a.Kind == Execute && a.Addr >= c.denyLo && a.Addr <= c.denyHi {
		return &Violation{Access: a, Rule: "test: execute denied"}
	}
	return nil
}

func (c *certChecker) ExecGen() uint64 { return c.gen }

func (c *certChecker) ExecSpan(addr uint16) (uint16, uint32) {
	switch {
	case addr < c.denyLo:
		return 0, uint32(c.denyLo)
	case addr > c.denyHi:
		return c.denyHi + 1, 0x10000
	default:
		return addr, uint32(addr)
	}
}

// TestFetchWordsCertified checks the fast path: fetches inside the certified
// span count identically to the oracle but never consult CheckAccess, and
// fetches outside it (or crossing the span edge) take the oracle per word.
func TestFetchWordsCertified(t *testing.T) {
	b := NewBus()
	ck := &certChecker{denyLo: 0x8000, denyHi: 0x8FFF}
	b.SetChecker(ck)

	if v := b.FetchWords(0x4400, 6); v != nil {
		t.Fatalf("allowed fetch denied: %v", v)
	}
	if _, _, f := b.Stats(); f != 3 {
		t.Fatalf("fetches = %d, want 3", f)
	}
	if lo, hi, ok := b.ExecCert(); !ok || lo != 0 || hi != 0x8000 {
		t.Fatalf("cert = [%#x, %#x) ok=%v, want [0, 0x8000)", lo, hi, ok)
	}
	checksAfterCert := ck.checks
	if v := b.FetchWords(0x5000, 4); v != nil {
		t.Fatal(v)
	}
	if ck.checks != checksAfterCert {
		t.Fatalf("certified fetch consulted CheckAccess %d times", ck.checks-checksAfterCert)
	}

	// A fetch crossing the span edge falls to the oracle and is denied at
	// the exact word the per-word path would deny.
	v := b.FetchWords(0x7FFE, 4)
	if v == nil || v.Access.Addr != 0x8000 {
		t.Fatalf("edge fetch: got %v, want denial at 0x8000", v)
	}
	// A fetch in the denied window is denied on its first word.
	if v := b.FetchWords(0x8100, 2); v == nil {
		t.Fatal("denied fetch allowed")
	}

	// After a generation bump the span re-validates around the new address.
	ck.gen++
	if v := b.FetchWords(0x9000, 2); v != nil {
		t.Fatal(v)
	}
	if lo, hi, ok := b.ExecCert(); !ok || lo != 0x9000 || hi != 0x10000 {
		t.Fatalf("cert after re-span = [%#x, %#x) ok=%v, want [0x9000, 0x10000)", lo, hi, ok)
	}
}

// TestFetchWordsMatchesOracle fuzzes the certified path against the per-word
// oracle over every alignment of the denied window: identical violations
// (address and word), identical fetch counts.
func TestFetchWordsMatchesOracle(t *testing.T) {
	for _, start := range []uint16{0x7FF8, 0x7FFA, 0x7FFC, 0x7FFE, 0x8000, 0x8FF8, 0x8FFE, 0x9000, 0x4400} {
		for _, size := range []uint16{2, 4, 6, 8} {
			fast := NewBus()
			fast.SetChecker(&certChecker{denyLo: 0x8000, denyHi: 0x8FFF})
			slow := NewBus()
			slow.SetChecker(&certChecker{denyLo: 0x8000, denyHi: 0x8FFF})

			vf := fast.FetchWords(start, size)
			vs := slow.fetchWordsOracle(start, size)
			if (vf == nil) != (vs == nil) {
				t.Fatalf("[%#x,+%d): fast %v, oracle %v", start, size, vf, vs)
			}
			if vf != nil && vf.Access != vs.Access {
				t.Fatalf("[%#x,+%d): fast denies %+v, oracle %+v", start, size, vf.Access, vs.Access)
			}
			_, _, ff := fast.Stats()
			_, _, fs := slow.Stats()
			if ff != fs {
				t.Fatalf("[%#x,+%d): fast counted %d fetches, oracle %d", start, size, ff, fs)
			}
		}
	}
}

// TestCertDroppedByWritesIntoWatchedCode checks every write path that can
// alter text — checked word/byte writes, loader pokes, bulk loads — drops
// the certificate, and that a later plan change (generation bump) re-arms
// it. Writes outside watched code must leave the certificate alone.
func TestCertDroppedByWritesIntoWatchedCode(t *testing.T) {
	paths := []struct {
		name  string
		write func(b *Bus, addr uint16)
	}{
		{"Write16", func(b *Bus, a uint16) {
			if v := b.Write16(a, 0xBEEF); v != nil {
				t.Fatal(v)
			}
		}},
		{"Write8", func(b *Bus, a uint16) {
			if v := b.Write8(a, 0xEF); v != nil {
				t.Fatal(v)
			}
		}},
		{"Poke16", func(b *Bus, a uint16) { b.Poke16(a, 0xBEEF) }},
		{"Poke8", func(b *Bus, a uint16) { b.Poke8(a, 0xEF) }},
		{"LoadBytes", func(b *Bus, a uint16) { b.LoadBytes(a, []byte{1, 2, 3, 4}) }},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			b := NewBus()
			ck := &certChecker{denyLo: 0xF000, denyHi: 0xFFFF}
			b.SetChecker(ck)
			b.WatchCode([]CodeRange{{Lo: 0x4400, Hi: 0x4800}}, func(lo, hi uint16) {})

			if v := b.FetchWords(0x4400, 4); v != nil {
				t.Fatal(v)
			}
			if _, _, ok := b.ExecCert(); !ok {
				t.Fatal("certificate not established")
			}

			// Outside watched code: certificate survives.
			p.write(b, 0x5000)
			if _, _, ok := b.ExecCert(); !ok {
				t.Fatal("write outside watched code dropped the certificate")
			}

			// Into watched code: dropped, and fetches take the oracle again.
			p.write(b, 0x4500)
			if _, _, ok := b.ExecCert(); ok {
				t.Fatal("write into watched code kept the certificate")
			}
			before := ck.checks
			if v := b.FetchWords(0x4400, 4); v != nil {
				t.Fatal(v)
			}
			if ck.checks == before {
				t.Fatal("dropped certificate did not fall back to per-word checks")
			}

			// The next plan change re-certifies.
			ck.gen++
			if v := b.FetchWords(0x4400, 4); v != nil {
				t.Fatal(v)
			}
			if _, _, ok := b.ExecCert(); !ok {
				t.Fatal("generation bump did not re-arm the certificate")
			}
		})
	}
}

// TestSetExecCerts checks the global escape hatch: with certificates off,
// every fetch consults the checker per word, with identical observables.
func TestSetExecCerts(t *testing.T) {
	defer SetExecCerts(true)
	SetExecCerts(false)
	if ExecCertsEnabled() {
		t.Fatal("ExecCertsEnabled after SetExecCerts(false)")
	}
	b := NewBus()
	ck := &certChecker{denyLo: 0xF000, denyHi: 0xFFFF}
	b.SetChecker(ck)
	if v := b.FetchWords(0x4400, 6); v != nil {
		t.Fatal(v)
	}
	if ck.checks != 3 {
		t.Fatalf("with certs off, CheckAccess ran %d times, want 3", ck.checks)
	}
	if _, _, ok := b.ExecCert(); ok {
		t.Fatal("certificate established while disabled")
	}
}

// TestCertCheckerSwap checks a Checker replacement invalidates the cached
// certificate identity immediately.
func TestCertCheckerSwap(t *testing.T) {
	b := NewBus()
	open := &certChecker{denyLo: 1, denyHi: 0} // denies nothing
	b.SetChecker(open)
	if v := b.FetchWords(0x4400, 2); v != nil {
		t.Fatal(v)
	}
	if _, hi, ok := b.ExecCert(); !ok || hi != 0x10000 {
		t.Fatalf("open checker should certify everything, got hi=%#x ok=%v", hi, ok)
	}
	closed := &certChecker{denyLo: 0x4000, denyHi: 0x4FFF}
	b.SetChecker(closed)
	if v := b.FetchWords(0x4400, 2); v == nil {
		t.Fatal("stale certificate honored after checker swap")
	}
}
