package mem

import "testing"

// TestPagePersistent pins the volatile-vs-persistent page classification to
// the MSP430FR5969 memory map: information FRAM and main FRAM (through the
// vector table) survive power loss; peripherals, BSL and SRAM do not.
func TestPagePersistent(t *testing.T) {
	cases := []struct {
		addr uint16
		want bool
		name string
	}{
		{0x0000, false, "peripherals"},
		{0x0F00, false, "peripherals-high"},
		{0x1000, false, "BSL"},
		{InfoLo, true, "info-FRAM-lo"},
		{InfoHi, true, "info-FRAM-hi"},
		{SRAMLo, false, "SRAM-lo"},
		{SRAMHi, false, "SRAM-hi"},
		{FRAMLo, true, "main-FRAM-lo"},
		{0x8000, true, "main-FRAM-mid"},
		{FRAMHi, true, "main-FRAM-hi"},
		{VectLo, true, "vectors"},
		{0xFFFF, true, "vectors-top"},
	}
	for _, c := range cases {
		if got := PagePersistent(int(c.addr) / PageSize); got != c.want {
			t.Errorf("%s: PagePersistent(page of 0x%04X) = %v, want %v", c.name, c.addr, got, c.want)
		}
	}
	// The boundary page straddling SRAM's end must not claim persistence.
	if PagePersistent(-1) || PagePersistent(1<<16/PageSize) {
		t.Error("out-of-range pages classified persistent")
	}
}
