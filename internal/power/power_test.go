package power

import (
	"math"
	"testing"

	"amuletiso/internal/energy"
)

// TestEnergyPerCycleMatchesFloatModel pins the integer picojoule constant to
// the float model in internal/energy: the fleet's charge arithmetic and the
// ARP battery math must describe the same device.
func TestEnergyPerCycleMatchesFloatModel(t *testing.T) {
	want := energy.EnergyPerCycleJ * 1e12
	if math.Abs(float64(EnergyPerCyclePJ)-want) > 1e-6 {
		t.Fatalf("EnergyPerCyclePJ = %d, want %g (energy.EnergyPerCycleJ in pJ)", EnergyPerCyclePJ, want)
	}
}

// TestIdleDrainMatchesBaselineLifetime pins the idle drain to the paper's
// baseline: a full battery at idle drain must last the 14-day baseline
// lifetime, to within a part in a thousand of the float model.
func TestIdleDrainMatchesBaselineLifetime(t *testing.T) {
	baselineMS := energy.BaselineLifetimeDays * 24 * 3600 * 1000
	want := energy.BatteryCapacityJ * 1e12 / baselineMS
	got := float64(IdleDrainPJPerMS)
	if math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("IdleDrainPJPerMS = %d, want about %.0f (capacity over %g days)",
			IdleDrainPJPerMS, want, energy.BaselineLifetimeDays)
	}
}

// TestHarvestRangeSegmentationInvariant is the property the fleet's
// determinism rests on: integrating a harvest trace over [a, c) must equal
// the sum over [a, b) and [b, c) for every split — the trace is a pure
// function of time, never of how a run was segmented.
func TestHarvestRangeSegmentationInvariant(t *testing.T) {
	for _, spec := range []string{"solar", "kinetic", "recorded", "solar:2.5", "kinetic:0.9"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for _, seed := range []uint32{0, 1, 99} {
			tr := p.Trace(seed)
			const a, c = 19_950, 21_300
			whole := tr.HarvestRangePJ(a, c)
			for _, b := range []uint64{a, a + 1, a + 50, a + 777, c - 1, c} {
				if got := tr.HarvestRangePJ(a, b) + tr.HarvestRangePJ(b, c); got != whole {
					t.Fatalf("%s seed=%d split at %d: %d + split != %d", spec, seed, b, got, whole)
				}
			}
		}
	}
}

// TestHarvestDeterministicPerSeed: same (profile, seed, window) always
// integrates to the same charge; different seeds decorrelate.
func TestHarvestDeterministicPerSeed(t *testing.T) {
	p, err := Parse("kinetic")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Trace(7).HarvestRangePJ(0, 30_000)
	if b := p.Trace(7).HarvestRangePJ(0, 30_000); b != a {
		t.Fatalf("same seed harvested %d then %d", a, b)
	}
	if b := p.Trace(8).HarvestRangePJ(0, 30_000); b == a {
		t.Fatal("different seeds harvested identically (no decorrelation)")
	}
}

// TestSolarNightIsDark: the solar profile's night half must harvest nothing —
// the window that guarantees a brownout for any realistic load.
func TestSolarNightIsDark(t *testing.T) {
	p, err := Parse("solar")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Trace(3)
	if got := tr.HarvestRangePJ(20_000, 40_000); got != 0 {
		t.Fatalf("solar night harvested %d pJ, want 0", got)
	}
	if got := tr.HarvestRangePJ(0, 20_000); got == 0 {
		t.Fatal("solar day harvested nothing")
	}
}

// TestParseRejectsBadSpecs covers the validation surface the Scenario and
// CLI flags rely on.
func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"", "wind", "solar:", "solar:0", "solar:-1", "solar:1001", "solar:xyz"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	p, err := Parse("recorded:5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "recorded" || p.PeakPJPerMS != 5_000_000 {
		t.Fatalf("recorded:5 parsed to %+v", p)
	}
}

// TestDefaultSupercapHysteresis: the thresholds must order brownout <
// restart < capacity, or a device could oscillate or never reboot.
func TestDefaultSupercapHysteresis(t *testing.T) {
	c := DefaultSupercap()
	if !(c.BrownoutPJ < c.RestartPJ && c.RestartPJ < c.CapacityPJ) {
		t.Fatalf("supercap thresholds out of order: %+v", c)
	}
}
