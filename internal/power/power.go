// Package power models intermittent energy harvesting for simulated
// devices: deterministic, seeded harvest traces (solar and kinetic profiles
// plus a recorded trace) feeding a supercapacitor whose charge is drained by
// executed cycles and platform idle draw. Fleet scenarios integrate a trace
// against a device's cycle counter; when the charge crosses the brownout
// threshold the device takes a power-loss fault and reboots from its
// FRAM-persistent state once the capacitor recovers.
//
// Everything here is integer picojoules. Floating-point summation order
// would make charge state depend on how a run is segmented (resume points,
// worker counts); integer arithmetic keeps the trace → charge → brownout
// pipeline byte-identical across any segmentation. Harvest is a pure
// function of (profile, seed, millisecond) — no stream state — so a device
// that fast-forwards through an off interval integrates exactly the same
// energy as one stepping through it.
package power

import (
	"fmt"
	"strconv"
	"strings"
)

// Integer-picojoule forms of the internal/energy platform constants
// (energy_test.go cross-checks them against the float originals).
const (
	// EnergyPerCyclePJ is energy.EnergyPerCycleJ in picojoules: 0.8 mA at
	// 3.0 V across 8 MHz is exactly 300 pJ per executed cycle.
	EnergyPerCyclePJ = 300
	// IdleDrainPJPerMS is the platform's baseline draw — the 110 mAh / 3.7 V
	// battery over the 14-day baseline lifetime — in picojoules per
	// millisecond (≈1.21 mW).
	IdleDrainPJPerMS = 1_211_310
)

// Default profile peaks, in picojoules per millisecond (1 mW = 1e6 pJ/ms).
const (
	solarPeakPJPerMS    = 4_000_000 // 4 mW at solar noon
	kineticPeakPJPerMS  = 2_000_000 // 2 mW at full swing
	recordedPeakPJPerMS = 2_000_000 // 2 mW at the recorded trace's maximum
)

// Solar day/night cycle: 20 s of triangular-ramp daylight, 20 s of darkness.
// Short enough that a canonical 60 s fleet scenario crosses night at least
// once and browns out.
const (
	solarCycleMS = 40_000
	solarDayMS   = 20_000
)

// recordedTable is a canned 64-sample harvest trace (500 ms per sample,
// looping) in permille of the profile peak — a wearable moving between
// bright light, shade, and a pocket. The zero stretch forces recovery
// machinery to engage.
var recordedTable = [64]uint64{
	120, 250, 420, 610, 780, 900, 980, 1000,
	970, 890, 760, 600, 430, 280, 150, 60,
	0, 0, 0, 0, 0, 0, 0, 0,
	40, 110, 230, 390, 560, 700, 820, 900,
	950, 1000, 990, 930, 830, 690, 530, 370,
	220, 100, 30, 0, 0, 0, 60, 180,
	340, 520, 680, 810, 910, 970, 1000, 980,
	920, 820, 680, 520, 350, 200, 90, 20,
}

const recordedSampleMS = 500

// Profile selects a harvest model and its peak output.
type Profile struct {
	// Kind is "solar", "kinetic", or "recorded".
	Kind string
	// PeakPJPerMS is the profile's maximum harvest rate.
	PeakPJPerMS uint64
}

// Parse resolves a trace spec of the form "name" or "name:peakMilliwatts"
// (e.g. "solar", "kinetic:3", "recorded:0.5"). An empty spec is an error —
// callers gate the power model on a non-empty spec.
func Parse(spec string) (Profile, error) {
	name, peakStr, hasPeak := strings.Cut(spec, ":")
	var p Profile
	switch name {
	case "solar":
		p = Profile{Kind: "solar", PeakPJPerMS: solarPeakPJPerMS}
	case "kinetic":
		p = Profile{Kind: "kinetic", PeakPJPerMS: kineticPeakPJPerMS}
	case "recorded":
		p = Profile{Kind: "recorded", PeakPJPerMS: recordedPeakPJPerMS}
	default:
		return Profile{}, fmt.Errorf("power: unknown trace %q (want solar, kinetic, or recorded)", name)
	}
	if hasPeak {
		mw, err := strconv.ParseFloat(peakStr, 64)
		if err != nil || mw <= 0 || mw > 1000 {
			return Profile{}, fmt.Errorf("power: bad peak %q in trace %q (want milliwatts in (0, 1000])", peakStr, spec)
		}
		p.PeakPJPerMS = uint64(mw * 1e6)
	}
	return p, nil
}

// Trace is a profile bound to a device seed: a pure function from
// milliseconds to harvested picojoules.
type Trace struct {
	p    Profile
	seed uint32
}

// Trace binds the profile to a device seed.
func (p Profile) Trace(seed uint32) Trace { return Trace{p: p, seed: seed} }

// hash is a splitmix64 step over (seed, slot) — the per-slot noise source.
func (t Trace) hash(slot uint64) uint64 {
	x := (uint64(t.seed)+1)<<32 ^ slot
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HarvestPJ returns the energy harvested during millisecond [ms, ms+1).
func (t Trace) HarvestPJ(ms uint64) uint64 {
	switch t.p.Kind {
	case "solar":
		pos := ms % solarCycleMS
		if pos >= solarDayMS {
			return 0 // night
		}
		// Triangular ramp peaking mid-day, with ±20% cloud noise held for
		// 250 ms slots.
		half := uint64(solarDayMS / 2)
		dist := pos
		if dist > half {
			dist = solarDayMS - pos
		}
		base := t.p.PeakPJPerMS * dist / half
		noise := 80 + t.hash(ms/250)%41 // 80..120 percent
		return base * noise / 100
	case "kinetic":
		// Motion bursts: each second is either still or a swing at 50..100%
		// of peak, 40% duty, decided per-second from the seed.
		sec := ms / 1000
		h := t.hash(sec)
		if h%100 >= 40 {
			return 0
		}
		amp := 50 + (h>>32)%51 // 50..100 percent
		return t.p.PeakPJPerMS * amp / 100
	case "recorded":
		// The canned table, phase-shifted per device so a fleet's recorded
		// devices don't brown out in lockstep.
		idx := (ms/recordedSampleMS + uint64(t.seed)) % uint64(len(recordedTable))
		return t.p.PeakPJPerMS * recordedTable[idx] / 1000
	}
	return 0
}

// HarvestRangePJ integrates the trace over [from, to) milliseconds.
func (t Trace) HarvestRangePJ(from, to uint64) uint64 {
	var sum uint64
	for ms := from; ms < to; ms++ {
		sum += t.HarvestPJ(ms)
	}
	return sum
}

// Supercap sizes the storage element and its thresholds. The device browns
// out when charge falls to BrownoutPJ or below, stays dark while the trace
// recharges the capacitor (an off device draws nothing), and reboots once
// charge reaches RestartPJ — the hysteresis gap prevents boot-loop thrash.
type Supercap struct {
	CapacityPJ uint64 `json:"capacityPJ"`
	BrownoutPJ uint64 `json:"brownoutPJ"`
	RestartPJ  uint64 `json:"restartPJ"`
}

// DefaultSupercap is a 20 µJ-scale wearable buffer (0.02 J): small enough
// that a solar night or a still stretch browns a busy device out within the
// canonical 60-second scenario, with brownout at 20% and restart at 50%.
func DefaultSupercap() Supercap {
	return Supercap{CapacityPJ: 20_000_000_000, BrownoutPJ: 4_000_000_000, RestartPJ: 10_000_000_000}
}
