package jit

import (
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// build assembles instrs at 0x4400 and predecodes them with superblock
// discovery on, returning the program and its discovered spans.
func build(t *testing.T, instrs ...isa.Instr) (*isa.Program, []isa.Block) {
	t.Helper()
	defer isa.SetJIT(true)
	isa.SetJIT(true)
	bus := mem.NewBus()
	addr := uint16(0x4400)
	for _, in := range instrs {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	p := isa.Predecode(bus, []isa.TextRange{{Lo: 0x4400, Hi: addr}})
	return p, p.BlockSpans()
}

// liftAt lifts the discovered block headed at addr, failing if none is.
func liftAt(t *testing.T, p *isa.Program, spans []isa.Block, addr uint16) *Block {
	t.Helper()
	for _, s := range spans {
		if s.Addr == addr {
			b := Lift(p, s)
			if b == nil {
				t.Fatalf("block at %04X did not lift", addr)
			}
			return b
		}
	}
	t.Fatalf("no discovered block headed at %04X (have %+v)", addr, spans)
	return nil
}

// TestDiscoverBlocks pins the superblock entry-point rule: range start,
// static jump target and post-terminator fall-through each head a block,
// blocks overlap rather than stop at interior joins, and the result is
// sorted by address.
func TestDiscoverBlocks(t *testing.T) {
	_, spans := build(t,
		// 0x4400, 4B
		isa.Instr{Op: isa.MOV, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)},
		// 0x4404, 2B (constant generator)
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		// 0x4406, 2B: terminator; taken 0x440A, fall 0x4408
		isa.Instr{Op: isa.JMP, Dst: isa.Operand{X: 1}},
		// 0x4408, 2B: fall-through head; its run extends THROUGH 0x440A
		isa.Instr{Op: isa.ADD, Src: isa.Imm(2), Dst: isa.RegOp(isa.R4)},
		// 0x440A, 2B: jump-target head
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R5)},
		// 0x440C, 2B
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R4)},
		// 0x440E, 4B
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(0x2000)},
	)
	want := []isa.Block{
		{Addr: 0x4400, Size: 8, N: 3},  // up to and including the JMP
		{Addr: 0x4408, Size: 10, N: 4}, // through the join, to range end
		{Addr: 0x440A, Size: 8, N: 3},
	}
	if len(spans) != len(want) {
		t.Fatalf("discovered %d blocks, want %d: %+v", len(spans), len(want), spans)
	}
	for i, w := range want {
		if spans[i] != w {
			t.Errorf("block %d = %+v, want %+v", i, spans[i], w)
		}
	}
}

// TestBlockTerminator pins which instructions end a straight-line run.
func TestBlockTerminator(t *testing.T) {
	cases := []struct {
		in   isa.Instr
		want bool
	}{
		{isa.Instr{Op: isa.JMP, Dst: isa.Operand{X: 1}}, true},
		{isa.Instr{Op: isa.JEQ, Dst: isa.Operand{X: 1}}, true},
		{isa.Instr{Op: isa.CALL, Src: isa.Imm(0x4400)}, true},
		{isa.Instr{Op: isa.RETI}, true},
		// BR #addr and RET are MOVs into PC.
		{isa.Instr{Op: isa.MOV, Src: isa.Imm(0x4400), Dst: isa.RegOp(isa.PC)}, true},
		{isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)}, true},
		{isa.Instr{Op: isa.ADD, Src: isa.Imm(2), Dst: isa.RegOp(isa.PC)}, true},
		// PUSH only reads its operand, even PC.
		{isa.Instr{Op: isa.PUSH, Src: isa.RegOp(isa.PC)}, false},
		{isa.Instr{Op: isa.PUSH, Src: isa.RegOp(isa.R4)}, false},
		{isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R5)}, false},
		{isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(0x2000)}, false},
	}
	for _, c := range cases {
		if got := isa.BlockTerminator(c.in); got != c.want {
			t.Errorf("BlockTerminator(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestLiftDeadFlags pins the dead-flag pass on a pure register run: a flag
// store is dead exactly when a later step in the segment rewrites it before
// anything reads it or could observe it, and a dead CMP is skipped entirely.
func TestLiftDeadFlags(t *testing.T) {
	p, spans := build(t,
		isa.Instr{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)}, // flags die at the ADD: Dead
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)}, // flags die at the CMP: Elide
		isa.Instr{Op: isa.CMP, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)}, // JEQ reads them: live
		isa.Instr{Op: isa.JEQ, Dst: isa.Operand{X: 1}},
	)
	b := liftAt(t, p, spans, 0x4400)
	steps := b.Steps
	if !steps[0].Elide || !steps[0].Dead {
		t.Errorf("dead CMP not skipped: %+v", steps[0])
	}
	if !steps[1].Elide || steps[1].Dead {
		t.Errorf("dead-flag ADD should elide (and only elide): %+v", steps[1])
	}
	if steps[2].Elide || steps[2].Live == 0 {
		t.Errorf("live CMP must materialize its flags: %+v", steps[2])
	}
	if !b.LastIsTerm {
		t.Error("block ending in a jump must set LastIsTerm")
	}
	if b.Stats.Elided != 2 || b.Stats.Dead != 1 {
		t.Errorf("stats = %+v, want Elided 2 Dead 1", b.Stats)
	}
}

// TestLiftMayFaultKeepsFlagsLive pins the observation-point rule: a step that
// may fault exposes SR, so flag stores before it are never elided even if a
// later step would rewrite them.
func TestLiftMayFaultKeepsFlagsLive(t *testing.T) {
	p, spans := build(t,
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)}, // live: the load may fault
		isa.Instr{Op: isa.XOR, Src: isa.Abs(0x2000), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.ADD, Src: isa.Imm(2), Dst: isa.RegOp(isa.R5)},
	)
	b := liftAt(t, p, spans, 0x4400)
	if b.Steps[0].Elide {
		t.Errorf("flags before a faultable load must stay live: %+v", b.Steps[0])
	}
	if !b.Steps[1].MayFault || b.Steps[1].MayWrite {
		t.Errorf("memory load misclassified: %+v", b.Steps[1])
	}
}

// TestLiftSegmentation pins the atomic-run structure: memory-writing and
// SR-rewriting steps end their segments, Seg.MayWrite marks re-probe points,
// and PreCost is the segment cost minus its last step (the budget-atomicity
// pre-check value).
func TestLiftSegmentation(t *testing.T) {
	p, spans := build(t,
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(0x2000)}, // store: ends seg 0
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.SR)}, // barrier: ends seg 1
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R6)},
		isa.Instr{Op: isa.ADD, Src: isa.Imm(2), Dst: isa.RegOp(isa.R6)},
	)
	b := liftAt(t, p, spans, 0x4400)
	if len(b.Segs) != 3 {
		t.Fatalf("got %d segments, want 3: %+v", len(b.Segs), b.Segs)
	}
	if !b.Segs[0].MayWrite || b.Segs[1].MayWrite || b.Segs[2].MayWrite {
		t.Errorf("MayWrite marks = %+v, want store-segment only", b.Segs)
	}
	for i, sg := range b.Segs {
		var cost uint32
		for j := sg.Lo; j < sg.Hi; j++ {
			cost += uint32(b.Steps[j].Cost)
		}
		if sg.Cost != cost || sg.PreCost != cost-uint32(b.Steps[sg.Hi-1].Cost) {
			t.Errorf("seg %d cost/precost = %d/%d, want %d/%d",
				i, sg.Cost, sg.PreCost, cost, cost-uint32(b.Steps[sg.Hi-1].Cost))
		}
		if sg.Addr != b.Steps[sg.Lo].Addr {
			t.Errorf("seg %d deopt PC = %04X, want %04X", i, sg.Addr, b.Steps[sg.Lo].Addr)
		}
	}
	if b.LastIsTerm {
		t.Error("straight-line block must not set LastIsTerm")
	}
	if barrier := &b.Steps[3]; !barrier.Barrier || barrier.WFlags != FlagsAll {
		t.Errorf("MOV #imm, SR misclassified: %+v", barrier)
	}
}

// TestLiftFolding pins constant-address folding and extension-word
// elimination: absolute and symbolic operands resolve at lift time, and the
// MOV shapes whose executors consult only baked constants count their
// extension words as eliminated.
func TestLiftFolding(t *testing.T) {
	p, spans := build(t,
		// 0x4400: immediate MOV: executor is a precomputed store, ext baked.
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(isa.R4)},
		// 0x4404: absolute destination folds.
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(0x2000)},
		// 0x4408: absolute source folds.
		isa.Instr{Op: isa.XOR, Src: isa.Abs(0x2002), Dst: isa.RegOp(isa.R5)},
		// 0x440C: symbolic x(PC) source folds against its extension-word
		// address (0x440E), not the live PC.
		isa.Instr{Op: isa.MOV, Src: isa.Operand{Mode: isa.ModeIndexed, Reg: isa.PC, X: 0x10}, Dst: isa.RegOp(isa.R6)},
	)
	b := liftAt(t, p, spans, 0x4400)
	if st := b.Steps[0]; st.ExtBaked != 1 {
		t.Errorf("immediate MOV should bake its extension word: %+v", st)
	}
	if st := b.Steps[1]; !st.DstFold || st.DstAddr != 0x2000 {
		t.Errorf("absolute destination not folded: %+v", st)
	}
	if st := b.Steps[2]; !st.SrcFold || st.SrcAddr != 0x2002 {
		t.Errorf("absolute source not folded: %+v", st)
	}
	if st := b.Steps[3]; !st.SrcFold || st.SrcAddr != 0x440E+0x10 {
		t.Errorf("symbolic source not folded to ext+X: %+v", st)
	}
	if b.Stats.Folded != 3 {
		t.Errorf("stats = %+v, want Folded 3", b.Stats)
	}
}
