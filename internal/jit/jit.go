// Package jit lifts the superblocks discovered at predecode (isa.Block) into
// a small straight-line IR and runs three peephole passes over it:
//
//   - dead-flag elimination: only materialize the SR flags a later
//     instruction in the block actually reads, generalizing the threaded
//     engine's single-store SR composition from one instruction to a run;
//   - constant-address folding: absolute and symbolic (x(PC)) operands have
//     compile-time-constant effective addresses, as do branch targets — fold
//     them so executors touch neither the extension words nor the PC;
//   - redundant-extension-word elimination: operands already latched in the
//     decode cache are baked directly into executor closures, so compiled
//     steps never re-read the extension words (or the cached Instr) at run
//     time.
//
// The package is pure analysis: it knows the ISA but owns no CPU or bus
// state. internal/cpu consumes the IR and binds one Go closure per step,
// with deoptimization back to the interpreter at every stop point the fused
// engine enumerates (pending IRQ, cycle budget, halt/CPUOFF, dirtied text,
// certificate drop). Everything here is therefore advisory EXCEPT the
// segment structure, which carries the correctness argument:
//
// A segment is a run of steps the executor may retire without re-checking
// interpreter stop conditions. That is sound only if no condition can change
// inside it, so segmentation ends a segment after every step that may write
// memory (a store can post an interrupt through the syscall port, halt the
// machine, dirty cached text, or move an MPU plan and drop the execute
// certificate) and after every step that rewrites SR wholesale (it can set
// CPUOFF or GIE). Faults need no boundary: a faulting step aborts the run
// with the same architectural state the interpreter would leave. The cycle
// budget is handled by the per-segment atomicity pre-check (Seg.PreCost):
// the executor enters a segment only if even the last step would still start
// under budget, exactly reproducing the interpreter's check-before-every-
// instruction schedule.
//
// Flag liveness obeys the same boundaries: all SR bits are live at every
// segment end (a deopt or interrupt there exposes SR) and before every step
// that may fault (an abort there exposes SR too), so elision windows are
// exactly the spans where skipping a flag store is provably unobservable.
package jit

import "amuletiso/internal/isa"

// FlagSet is a set of SR bits (isa.FlagC/Z/N/V/GIE/CPUOFF...).
type FlagSet uint16

// FlagsAll marks "every SR bit" — used for instructions that read or rewrite
// SR wholesale and for liveness at observation points.
const FlagsAll FlagSet = 0xFFFF

// aluFlags is the SR mask a format-I arithmetic/logic flag update rewrites.
const aluFlags = FlagSet(isa.FlagC | isa.FlagZ | isa.FlagN | isa.FlagV)

// StepKind selects the executor family internal/cpu binds for a step.
type StepKind uint8

// Step kinds.
const (
	// KindGeneric runs through the full dispatcher (PC advanced first), so
	// any cacheable instruction — memory operands, PUSH/CALL/RETI, computed
	// branches — executes exactly as a lone interpreter step would.
	KindGeneric StepKind = iota
	// KindPure is the register/immediate-only format-I and format-II shape:
	// no bus traffic, cannot fault, eligible for flag elision.
	KindPure
	// KindJump is a format-III branch with both targets folded to constants.
	KindJump
)

// Step is one lifted instruction.
type Step struct {
	Addr uint16 // instruction address
	Size uint16 // encoded size in bytes
	Cost uint16 // cycle cost (from the decode cache)
	H    isa.HandlerID
	In   isa.Instr
	Kind StepKind

	// Flag dataflow: bits read, bits written, and — after liveness — the
	// written bits some later step may observe (Live ⊆ WFlags). Live == 0
	// on a flag-writing step means every flag it produces is dead.
	RFlags, WFlags, Live FlagSet

	// Elide: all flag writes dead and the op has a flagless executor
	// variant. Dead additionally means the step has no architectural effect
	// at all (CMP/BIT with dead flags) and is skipped entirely — only its
	// fetch, cycle and instruction accounting remain.
	Elide bool
	Dead  bool

	MayFault bool // touches memory, so it can abort mid-segment
	MayWrite bool // may write memory: ends its segment (see package doc)
	Barrier  bool // rewrites SR wholesale (dst SR): ends its segment
	NeedPC   bool // executor must materialize PC before running the step

	// Constant-address folding: effective addresses of absolute and
	// symbolic operands, resolved at lift time.
	SrcFold, DstFold bool
	SrcAddr, DstAddr uint16

	// Jump targets, folded (KindJump only). Cost is identical either way
	// on this ISA (format-III is a constant 2 cycles).
	Taken, Fall uint16

	// ExtBaked counts this step's extension words that the bound executor
	// no longer consults at run time (stats for the elimination pass).
	ExtBaked uint8
}

// Seg is one atomically-retired run of steps: boundary conditions are
// checked before it and cannot change inside it.
type Seg struct {
	Addr     uint16 // first instruction address — the deopt PC for its boundary
	Lo, Hi   int    // step index range [Lo, Hi)
	Cost     uint32 // total cycles of the segment
	PreCost  uint32 // Cost minus the last step's cost (budget atomicity check)
	MayWrite bool   // a step in it may write memory: re-probe text after it
}

// Block is one lifted, optimized superblock ready for closure binding.
type Block struct {
	Addr, End uint16 // [Addr, End) span of the block's encodings
	Size      uint16 // End - Addr
	N         uint16 // instruction count
	Steps     []Step
	Segs      []Seg
	// LastIsTerm: the final step writes PC itself (branch/terminator); when
	// false the executor must set PC = End after the final segment.
	LastIsTerm bool
	Stats      Stats
}

// Stats aggregates what the passes achieved, for the obs counters.
type Stats struct {
	Steps    int // lifted instructions
	Elided   int // steps executing with all flag writes eliminated
	Dead     int // of those, steps skipped entirely (CMP/BIT)
	Folded   int // constant effective addresses folded
	ExtBaked int // extension words baked into closures
}

// Lift lifts one discovered superblock into the IR and runs the passes.
// It returns nil if the cache contents no longer describe a well-formed
// block (they always do for blocks produced by the same Program, so this is
// belt-and-braces, not a planned path).
func Lift(p *isa.Program, b isa.Block) *Block {
	blk := &Block{Addr: b.Addr, End: b.Addr + b.Size, Size: b.Size, N: b.N}
	blk.Steps = make([]Step, 0, b.N)
	addr := b.Addr
	for i := uint16(0); i < b.N; i++ {
		e := p.At(addr)
		if e == nil {
			return nil
		}
		st := Step{Addr: addr, Size: e.Size, Cost: e.Cost, H: e.H, In: e.In}
		classify(&st)
		fold(&st)
		blk.Steps = append(blk.Steps, st)
		addr += e.Size
	}
	if addr != blk.End {
		return nil
	}
	last := &blk.Steps[len(blk.Steps)-1]
	blk.LastIsTerm = isa.BlockTerminator(last.In)
	segmentize(blk)
	for i := range blk.Segs {
		liveness(blk.Steps[blk.Segs[i].Lo:blk.Segs[i].Hi])
	}
	tally(blk)
	return blk
}

// classify fills a step's kind, flag dataflow and boundary properties from
// its decoded instruction.
func classify(st *Step) {
	in := &st.In
	switch {
	case in.Op.IsJump():
		st.Kind = KindJump
		st.RFlags = jumpReads(in.Op)
		st.Taken = st.Addr + 2 + 2*uint16(int16(in.Dst.X))
		st.Fall = st.Addr + 2
		return

	case in.Op == isa.RETI:
		// Pops SR wholesale and reads the stack.
		st.Kind = KindGeneric
		st.WFlags = FlagsAll
		st.MayFault = true
		st.Barrier = true
		st.NeedPC = true
		return

	case in.Op == isa.CALL:
		st.Kind = KindGeneric
		st.MayFault, st.MayWrite = true, true
		st.NeedPC = true
		if in.Src.Mode == isa.ModeRegister && in.Src.Reg == isa.SR {
			st.RFlags = FlagsAll
		}
		return

	case in.Op == isa.PUSH:
		st.Kind = KindGeneric
		st.MayFault, st.MayWrite = true, true
		st.NeedPC = true
		if in.Src.Mode == isa.ModeRegister && in.Src.Reg == isa.SR {
			st.RFlags = FlagsAll
		}
		return

	case in.Op.IsOneOperand():
		// RRC/RRA/SWPB/SXT operate in place on their operand.
		switch in.Op {
		case isa.RRC:
			st.RFlags, st.WFlags = FlagSet(isa.FlagC), aluFlags
		case isa.RRA, isa.SXT:
			st.WFlags = aluFlags
		case isa.SWPB:
			// no flags
		}
		if in.Src.Mode == isa.ModeRegister {
			st.Kind = KindPure
			if in.Src.Reg == isa.SR {
				st.RFlags, st.WFlags, st.Barrier = FlagsAll, FlagsAll, true
			}
			if in.Src.Reg == isa.PC {
				st.NeedPC = true
			}
		} else {
			st.Kind = KindGeneric
			st.MayFault = true
			st.MayWrite = true // read-modify-write to memory
			st.NeedPC = true
		}
		return
	}

	// Format I.
	st.RFlags, st.WFlags = fmtIReads(in), fmtIWrites(in.Op)
	if in.Src.Mode == isa.ModeRegister {
		if in.Src.Reg == isa.SR {
			st.RFlags = FlagsAll
		}
		if in.Src.Reg == isa.PC {
			st.NeedPC = true
		}
	}
	if in.Dst.Mode == isa.ModeRegister {
		if in.Dst.Reg == isa.SR {
			// The destination write lands on SR after any flag update
			// (writeLoc runs last), replacing it wholesale — and possibly
			// setting GIE or CPUOFF, hence the barrier.
			st.WFlags, st.Barrier = FlagsAll, true
			if in.Op != isa.MOV {
				st.RFlags = FlagsAll
			}
		}
		if in.Dst.Reg == isa.PC {
			st.NeedPC = true // reads PC for non-MOV; harmless for MOV
		}
		if in.Src.Mode == isa.ModeRegister || in.Src.Mode == isa.ModeImmediate {
			st.Kind = KindPure
			return
		}
		// Memory source, register destination: can fault, never writes.
		st.Kind = KindGeneric
		st.MayFault = true
		st.NeedPC = true
		return
	}
	// Memory destination (CMP/BIT only read it, everything else writes).
	st.Kind = KindGeneric
	st.MayFault = true
	st.MayWrite = in.Op != isa.CMP && in.Op != isa.BIT
	st.NeedPC = true
}

// jumpReads maps a format-III condition to the SR bits it tests.
func jumpReads(op isa.Op) FlagSet {
	switch op {
	case isa.JNE, isa.JEQ:
		return FlagSet(isa.FlagZ)
	case isa.JNC, isa.JC:
		return FlagSet(isa.FlagC)
	case isa.JN:
		return FlagSet(isa.FlagN)
	case isa.JGE, isa.JL:
		return FlagSet(isa.FlagN | isa.FlagV)
	}
	return 0 // JMP
}

// fmtIReads returns the SR bits a format-I op consumes beyond its operands.
func fmtIReads(in *isa.Instr) FlagSet {
	switch in.Op {
	case isa.ADDC, isa.SUBC, isa.DADD:
		return FlagSet(isa.FlagC)
	}
	return 0
}

// fmtIWrites returns the SR bits a format-I op produces.
func fmtIWrites(op isa.Op) FlagSet {
	switch op {
	case isa.MOV, isa.BIC, isa.BIS:
		return 0
	case isa.DADD:
		return FlagSet(isa.FlagC | isa.FlagZ | isa.FlagN)
	}
	return aluFlags
}

// segmentize splits the step list into atomic runs: a step that may write
// memory or rewrite SR wholesale ends its segment (see the package comment
// for why those are the only interior boundaries).
func segmentize(b *Block) {
	lo := 0
	for i := range b.Steps {
		if b.Steps[i].MayWrite || b.Steps[i].Barrier || i == len(b.Steps)-1 {
			seg := Seg{Addr: b.Steps[lo].Addr, Lo: lo, Hi: i + 1}
			for j := lo; j <= i; j++ {
				seg.Cost += uint32(b.Steps[j].Cost)
				seg.MayWrite = seg.MayWrite || b.Steps[j].MayWrite
			}
			seg.PreCost = seg.Cost - uint32(b.Steps[i].Cost)
			b.Segs = append(b.Segs, seg)
			lo = i + 1
		}
	}
}

// liveness runs the dead-flag pass backward over one segment: all SR bits
// are live at the segment end (a deopt there exposes SR) and before any step
// that may fault (an abort exposes SR too); in between, a step's flag writes
// are dead exactly when no later step reads them before they are rewritten.
func liveness(steps []Step) {
	live := FlagsAll
	for i := len(steps) - 1; i >= 0; i-- {
		st := &steps[i]
		st.Live = st.WFlags & live
		if st.Live == 0 && st.WFlags != 0 && elidable(st) {
			st.Elide = true
			st.Dead = st.In.Op == isa.CMP || st.In.Op == isa.BIT
		}
		if st.MayFault {
			live = FlagsAll
		} else {
			live = (live &^ st.WFlags) | st.RFlags
		}
	}
}

// elidable reports whether internal/cpu has a flagless executor variant for
// the step. Only the pure register/immediate shape qualifies (memory-operand
// steps can fault and always materialize), and only ops whose sole extra
// effect is the ALU flag store — DADD/RRC/RRA/SXT keep their composed flag
// writes.
func elidable(st *Step) bool {
	if st.Kind != KindPure || st.Barrier {
		return false
	}
	switch st.In.Op {
	case isa.ADD, isa.ADDC, isa.SUB, isa.SUBC, isa.XOR, isa.AND, isa.CMP, isa.BIT:
		return true
	}
	return false
}

// fold resolves compile-time-constant effective addresses: absolute
// operands, and symbolic x(PC) operands whose base is the extension-word
// address (a property of the encoding, not of the live PC).
func fold(st *Step) {
	in := &st.In
	if in.Op.IsJump() {
		return
	}
	srcExt := st.Addr + 2           // source extension word follows the opcode
	dstExt := st.Addr + st.Size - 2 // destination extension word is last
	switch in.Src.Mode {
	case isa.ModeAbsolute:
		st.SrcFold, st.SrcAddr = true, in.Src.X
	case isa.ModeIndexed:
		if in.Src.Reg == isa.PC {
			st.SrcFold, st.SrcAddr = true, srcExt+in.Src.X
		}
	}
	if in.Op.IsTwoOperand() {
		switch in.Dst.Mode {
		case isa.ModeAbsolute:
			st.DstFold, st.DstAddr = true, in.Dst.X
		case isa.ModeIndexed:
			if in.Dst.Reg == isa.PC {
				st.DstFold, st.DstAddr = true, dstExt+in.Dst.X
			}
		}
	}
}

// bakesExt reports whether the executor internal/cpu binds for the step
// consults only baked constants at run time (never the cached Instr), which
// is what makes the step's extension words redundant.
func bakesExt(st *Step) bool {
	if st.Dead || st.Kind == KindJump {
		return true
	}
	if st.In.Op != isa.MOV {
		return false
	}
	in := &st.In
	switch {
	case in.Src.Mode == isa.ModeImmediate && in.Dst.Mode == isa.ModeRegister &&
		in.Dst.Reg != isa.PC:
		return true
	case st.SrcFold && in.Dst.Mode == isa.ModeRegister && in.Dst.Reg != isa.PC &&
		in.Dst.Reg != isa.SR:
		return true
	case st.DstFold && (in.Src.Mode == isa.ModeRegister || in.Src.Mode == isa.ModeImmediate) &&
		!(in.Src.Mode == isa.ModeRegister && (in.Src.Reg == isa.SR || in.Src.Reg == isa.PC)):
		return true
	}
	return false
}

// tally fills Block.Stats (and per-step ExtBaked) after the passes ran.
func tally(b *Block) {
	b.Stats.Steps = len(b.Steps)
	for i := range b.Steps {
		st := &b.Steps[i]
		if st.Elide {
			b.Stats.Elided++
		}
		if st.Dead {
			b.Stats.Dead++
		}
		if st.SrcFold {
			b.Stats.Folded++
		}
		if st.DstFold {
			b.Stats.Folded++
		}
		if bakesExt(st) {
			st.ExtBaked = uint8((st.Size - 2) / 2)
			b.Stats.ExtBaked += int(st.ExtBaked)
		}
	}
}
