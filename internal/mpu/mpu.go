// Package mpu models the memory protection unit of the MSP430FR59xx FRAM
// family — deliberately including every shortcoming the paper's Section 2
// enumerates, because those shortcomings are what force the paper's hybrid
// MPU+compiler isolation design:
//
//  1. only three configurable segments over main FRAM (plus a fixed InfoMem
//     segment), so four desired regions per app cannot be expressed;
//  2. no coverage of peripheral registers, SRAM, the bootstrap loader or the
//     interrupt vector table — a stray pointer below the app escapes the MPU;
//  3. coarse ("arcane") boundary rules: segment borders snap down to 1 KiB
//     blocks, and only the two inner boundaries are adjustable.
//
// The unit is a memory-mapped peripheral: gate code reconfigures it on
// context switches with ordinary MOV instructions, so reconfiguration cost is
// measured in simulated cycles rather than asserted.
package mpu

import (
	"fmt"

	"amuletiso/internal/mem"
)

// Register addresses (word-aligned, inside the peripheral region).
// Deviation from the TI part: the real MPUSEGBx registers hold addr>>4;
// ours hold the byte address directly (still masked down to the 1 KiB
// boundary grain). This keeps gate code able to load boundaries from
// link-time symbols without shift helpers, and changes nothing about the
// protection semantics the paper depends on.
const (
	RegCTL0  uint16 = 0x05A0 // password + enable/lock control
	RegCTL1  uint16 = 0x05A2 // violation flags (write 0 bits to clear)
	RegSEGB2 uint16 = 0x05A4 // boundary between segments 2 and 3
	RegSEGB1 uint16 = 0x05A6 // boundary between segments 1 and 2
	RegSAM   uint16 = 0x05A8 // per-segment access rights

	RegLo = RegCTL0
	RegHi = RegSAM + 1
)

// MPUCTL0 bits. Writes must carry the password in the high byte or they are
// ignored and latch a password violation (a PUC on real silicon).
const (
	CtlEnable uint16 = 1 << 0 // MPUENA
	CtlLock   uint16 = 1 << 1 // MPULOCK: boundaries frozen until reset
	Password  uint16 = 0xA500
	pwMask    uint16 = 0xFF00
)

// MPUCTL1 violation flag bits.
const (
	FlagSeg1 uint16 = 1 << 0 // violation in main segment 1
	FlagSeg2 uint16 = 1 << 1 // violation in main segment 2
	FlagSeg3 uint16 = 1 << 2 // violation in main segment 3
	FlagSegI uint16 = 1 << 3 // violation in InfoMem segment
	FlagPW   uint16 = 1 << 4 // password violation on register write
)

// MPUSAM access-right bits: {R,W,X} per segment, 4 bits apart, matching the
// real register layout closely enough for gate code to be written naturally.
const (
	Seg1R uint16 = 1 << 0
	Seg1W uint16 = 1 << 1
	Seg1X uint16 = 1 << 2
	Seg2R uint16 = 1 << 4
	Seg2W uint16 = 1 << 5
	Seg2X uint16 = 1 << 6
	Seg3R uint16 = 1 << 8
	Seg3W uint16 = 1 << 9
	Seg3X uint16 = 1 << 10
	SegIR uint16 = 1 << 12
	SegIW uint16 = 1 << 13
	SegIX uint16 = 1 << 14
)

// RWX constructs MPUSAM bits for one segment given its index (1,2,3) from
// read/write/execute permissions.
func RWX(seg int, r, w, x bool) uint16 {
	var v uint16
	if r {
		v |= 1
	}
	if w {
		v |= 2
	}
	if x {
		v |= 4
	}
	switch seg {
	case 1:
		return v
	case 2:
		return v << 4
	case 3:
		return v << 8
	case 0:
		return v << 12
	}
	panic(fmt.Sprintf("mpu: bad segment %d", seg))
}

// Granularity is the boundary alignment the hardware supports. Boundary
// writes snap down to this grain — one of the paper's "arcane protection
// boundary rules".
const Granularity uint16 = 0x0400 // 1 KiB

// Capability selects how able the modeled hardware is. The paper's §5
// envisions "more advanced MPUs" with four or more regions that can protect
// all of memory; CapabilityAdvanced models that hypothetical part for the
// ablation study in EXPERIMENTS.md.
type Capability int

const (
	// CapabilityFR5969 is the real part: 3 movable segments over main FRAM
	// only, 1 KiB granularity.
	CapabilityFR5969 Capability = iota
	// CapabilityAdvanced is the paper's wished-for part: the three segments
	// also cover SRAM and peripherals below FRAM (a fourth implicit region
	// "everything below segment 1" with no access), making compiler
	// lower-bound checks redundant.
	CapabilityAdvanced
)

// Unit is the MPU. It implements mem.Device (register file) and mem.Checker
// (access filter).
type Unit struct {
	Cap Capability

	ctl0  uint16
	ctl1  uint16
	segB1 uint16 // boundary address, masked to Granularity
	segB2 uint16
	sam   uint16

	// gen counts configuration changes (boundaries, rights, enable state) —
	// the generation the bus's execute certificate is pinned to. Violation
	// latching does not bump it: latched flags never change what an access
	// is allowed to do.
	gen uint64

	// spanCache memoizes the execute-allowed run list per configuration.
	// Gate-heavy workloads alternate between two plans (the OS plan and the
	// running app's plan), and every register write of a plan switch
	// triggers a certificate re-span — including the intermediate
	// configurations mid-switch (boundary 1 written, boundary 2 still old),
	// which recur on every switch. Recomputing runs each time showed up at
	// ~16% of fleet wall time; eight memo slots hold both stable plans plus
	// every recurring intermediate, making the steady state pure compares.
	// spanLast remembers the last slot served so the common repeat probe is
	// one compare instead of a table scan.
	spanCache [8]execRuns
	spanNext  int
	spanLast  int

	// OnViolation, if set, is invoked after a violation flag latches.
	OnViolation func(v *mem.Violation)

	// OnConfig, if set, is invoked after every configuration-generation bump
	// (register-protocol writes and Go-side Configure calls alike) — the
	// flight recorder's gate-crossing hook. Observers must not touch the unit.
	OnConfig func()

	violations uint64
}

// New returns a disabled MPU with open access rights.
func New() *Unit {
	return &Unit{sam: 0x7777}
}

// DeviceName implements mem.Device.
func (u *Unit) DeviceName() string { return "mpu" }

// bump advances the configuration generation and notifies any observer.
func (u *Unit) bump() {
	u.gen++
	if u.OnConfig != nil {
		u.OnConfig()
	}
}

// ReadWord implements mem.Device.
func (u *Unit) ReadWord(addr uint16) uint16 {
	switch addr {
	case RegCTL0:
		return u.ctl0 &^ pwMask // password reads back as zero
	case RegCTL1:
		return u.ctl1
	case RegSEGB2:
		return u.segB2
	case RegSEGB1:
		return u.segB1
	case RegSAM:
		return u.sam
	}
	return 0
}

// WriteWord implements mem.Device. MPUCTL0 demands the password; the other
// registers demand the unit be unlocked.
func (u *Unit) WriteWord(addr uint16, v uint16) {
	if addr == RegCTL0 {
		if v&pwMask != Password {
			u.ctl1 |= FlagPW
			u.violations++
			return
		}
		u.ctl0 = v & (CtlEnable | CtlLock)
		u.bump()
		return
	}
	if u.ctl0&CtlLock != 0 {
		u.ctl1 |= FlagPW
		u.violations++
		return
	}
	switch addr {
	case RegCTL1:
		u.ctl1 &= v // write-0-to-clear: flags only, no permission change
	case RegSEGB2:
		u.segB2 = v &^ (Granularity - 1)
		u.bump()
	case RegSEGB1:
		u.segB1 = v &^ (Granularity - 1)
		u.bump()
	case RegSAM:
		u.sam = v
		u.bump()
	}
}

// Enabled reports whether protection is active.
func (u *Unit) Enabled() bool { return u.ctl0&CtlEnable != 0 }

// Boundaries returns the two segment boundaries as absolute addresses.
func (u *Unit) Boundaries() (b1, b2 uint16) { return u.segB1, u.segB2 }

// Flags returns the latched violation flags.
func (u *Unit) Flags() uint16 { return u.ctl1 }

// Violations returns the cumulative violation count.
func (u *Unit) Violations() uint64 { return u.violations }

// Configure is a loader/test convenience that programs the unit directly
// (bypassing the register protocol): boundaries are absolute addresses.
func (u *Unit) Configure(b1, b2, sam uint16, enable bool) {
	u.segB1 = b1 &^ (Granularity - 1)
	u.segB2 = b2 &^ (Granularity - 1)
	u.sam = sam
	if enable {
		u.ctl0 |= CtlEnable
	} else {
		u.ctl0 &^= CtlEnable
	}
	u.bump()
}

// State is a serializable snapshot of the unit's architectural state: the
// register file (including the password-protected control bits an app may
// have latched, like CtlLock), capability, and the cumulative violation
// count. The configuration generation and span memos are deliberately
// excluded — they are caches, rebuilt on demand, and restoring them would
// couple checkpoints to an implementation detail.
type State struct {
	Cap        Capability `json:"cap,omitempty"`
	CTL0       uint16     `json:"ctl0"`
	CTL1       uint16     `json:"ctl1,omitempty"`
	SegB1      uint16     `json:"segB1"`
	SegB2      uint16     `json:"segB2"`
	SAM        uint16     `json:"sam"`
	Violations uint64     `json:"violations,omitempty"`
}

// State captures the unit's architectural state for checkpointing.
func (u *Unit) State() State {
	return State{
		Cap:        u.Cap,
		CTL0:       u.ctl0,
		CTL1:       u.ctl1,
		SegB1:      u.segB1,
		SegB2:      u.segB2,
		SAM:        u.sam,
		Violations: u.violations,
	}
}

// SetState restores a snapshot taken with State. It counts as a
// configuration change (the generation advances), so any execute
// certificate issued before the restore is re-validated against the
// restored plan.
func (u *Unit) SetState(s State) {
	u.Cap = s.Cap
	u.ctl0 = s.CTL0
	u.ctl1 = s.CTL1
	u.segB1 = s.SegB1 &^ (Granularity - 1)
	u.segB2 = s.SegB2 &^ (Granularity - 1)
	u.sam = s.SAM
	u.violations = s.Violations
	u.bump()
}

// segmentOf classifies an address: 0 = InfoMem, 1..3 = main segments,
// -1 = outside MPU coverage.
func (u *Unit) segmentOf(addr uint16) int {
	if mem.InRegion(addr, mem.InfoLo, mem.InfoHi) {
		return 0
	}
	b1, b2 := u.Boundaries()
	switch u.Cap {
	case CapabilityAdvanced:
		// The hypothetical part covers everything below the vector table,
		// except the simulator's own debug port window.
		if addr >= mem.VectLo || mem.InRegion(addr, mem.DebugLo, mem.DebugHi) {
			return -1
		}
		if addr < b1 {
			return 1
		}
		if addr < b2 {
			return 2
		}
		return 3
	default:
		if !mem.InRegion(addr, mem.FRAMLo, mem.FRAMHi) {
			return -1 // SRAM, peripherals, vectors: unprotected (the flaw)
		}
		if addr < b1 {
			return 1
		}
		if addr < b2 {
			return 2
		}
		return 3
	}
}

// segBits extracts the {R,W,X} rights of a segment from MPUSAM.
func (u *Unit) segBits(seg int) uint16 {
	switch seg {
	case 0:
		return u.sam >> 12 & 7
	case 1:
		return u.sam & 7
	case 2:
		return u.sam >> 4 & 7
	case 3:
		return u.sam >> 8 & 7
	}
	return 7
}

var segFlag = [4]uint16{FlagSegI, FlagSeg1, FlagSeg2, FlagSeg3}

// CheckAccess implements mem.Checker. MPU register accesses themselves are
// always allowed (the compiler check, not the MPU, is what protects them —
// exactly the paper's point about unprotected peripheral registers).
func (u *Unit) CheckAccess(a mem.Access) *mem.Violation {
	if !u.Enabled() {
		return nil
	}
	seg := u.segmentOf(a.Addr)
	if seg < 0 {
		return nil
	}
	bits := u.segBits(seg)
	var need uint16
	var what string
	switch a.Kind {
	case mem.Read:
		need, what = 1, "read"
	case mem.Write:
		need, what = 2, "write"
	case mem.Execute:
		need, what = 4, "execute"
	}
	if bits&need != 0 {
		return nil
	}
	u.ctl1 |= segFlag[seg]
	u.violations++
	v := &mem.Violation{
		Access: a,
		Rule: fmt.Sprintf("MPU segment %d (%s) forbids %s (rights=%03b)",
			seg, u.segmentName(seg), what, bits),
	}
	if u.OnViolation != nil {
		u.OnViolation(v)
	}
	return v
}

// execAllowed reports whether an instruction fetch from addr would be
// permitted under the current configuration, WITHOUT latching violation
// flags — the pure query behind execute certification. It must agree with
// CheckAccess on every address (mpu tests assert this); CheckAccess stays
// the enforcement oracle.
func (u *Unit) execAllowed(addr uint16) bool {
	if !u.Enabled() {
		return true
	}
	seg := u.segmentOf(addr)
	if seg < 0 {
		return true // outside coverage: the modeled hardware hole
	}
	return u.segBits(seg)&4 != 0
}

// ExecGen implements mem.ExecCertifier: the configuration generation an
// execute certificate is valid for. Every boundary, rights or enable change
// — register-protocol writes from gate code and Go-side Configure calls
// alike — advances it, which is what forces the bus to re-validate its
// certified span at plan changes.
func (u *Unit) ExecGen() uint64 { return u.gen }

// ExecGenRef exposes the generation counter's address, letting the bus read
// certificate validity with a load instead of an interface call on every
// certified fetch (the probe was ~5% of interpreter time). The pointee is
// exactly the ExecGen value; only the bus (single-threaded with the unit)
// reads it.
func (u *Unit) ExecGenRef() *uint64 { return &u.gen }

// execRuns is one memoized span computation: the configuration it was built
// under and the maximal execute-allowed runs it yields (at most 5 denied
// regions exist, so at most 6 runs).
type execRuns struct {
	b1, b2, sam uint16
	ctl0        uint16
	cap         Capability
	valid       bool
	n           int
	lo, hi      [8]uint32 // runs [lo, hi), ascending
}

// ExecSpan implements mem.ExecCertifier: the maximal span [lo, hi)
// containing addr for which every instruction fetch is allowed under the
// current configuration, or the empty span when addr itself is not
// executable. hi is a uint32 so the span may extend through 0xFFFF
// (hi = 0x10000). Run lists are memoized per configuration (see spanCache).
func (u *Unit) ExecSpan(addr uint16) (uint16, uint32) {
	if !u.Enabled() {
		return 0, 0x10000
	}
	runs := u.runsForConfig()
	a := uint32(addr)
	for i := 0; i < runs.n; i++ {
		if a >= runs.lo[i] && a < runs.hi[i] {
			return uint16(runs.lo[i]), runs.hi[i]
		}
	}
	return addr, uint32(addr)
}

// matches reports whether the memo slot was built under the current
// configuration.
func (r *execRuns) matches(u *Unit) bool {
	return r.valid && r.b1 == u.segB1 && r.b2 == u.segB2 && r.sam == u.sam &&
		r.ctl0 == u.ctl0 && r.cap == u.Cap
}

// runsForConfig returns the memoized run list for the current
// configuration, computing and caching it on miss. The last-served slot is
// probed first: repeated queries under one configuration dominate.
func (u *Unit) runsForConfig() *execRuns {
	if r := &u.spanCache[u.spanLast]; r.matches(u) {
		return r
	}
	for i := range u.spanCache {
		r := &u.spanCache[i]
		if r.matches(u) {
			u.spanLast = i
			return r
		}
	}
	r := &u.spanCache[u.spanNext]
	u.spanLast = u.spanNext
	u.spanNext = (u.spanNext + 1) % len(u.spanCache)
	*r = execRuns{b1: u.segB1, b2: u.segB2, sam: u.sam, ctl0: u.ctl0, cap: u.Cap, valid: true}

	// Permission is piecewise-constant between these cut points: the fixed
	// region map plus the two configurable boundaries. Extra cut points
	// inside a uniform region are harmless (both halves evaluate the same),
	// so the boundaries need no clamping.
	cuts := [16]uint32{
		0,
		uint32(mem.InfoLo), uint32(mem.InfoHi) + 1,
		uint32(mem.FRAMLo), uint32(mem.FRAMHi) + 1,
		uint32(mem.VectLo),
		uint32(mem.DebugLo), uint32(mem.DebugHi) + 1,
		uint32(u.segB1), uint32(u.segB2),
		0x10000,
	}
	n := 11
	for i := 1; i < n; i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	// Merge consecutive allowed intervals into maximal runs.
	for i := 0; i+1 < n; i++ {
		ilo, ihi := cuts[i], cuts[i+1]
		if ihi <= ilo || ilo >= 0x10000 {
			continue
		}
		if !u.execAllowed(uint16(ilo)) {
			continue
		}
		if r.n > 0 && r.hi[r.n-1] == ilo {
			r.hi[r.n-1] = ihi // extends the previous run
			continue
		}
		r.lo[r.n], r.hi[r.n] = ilo, ihi
		r.n++
	}
	return r
}

func (u *Unit) segmentName(seg int) string {
	b1, b2 := u.Boundaries()
	switch seg {
	case 0:
		return fmt.Sprintf("0x%04X-0x%04X infomem", mem.InfoLo, mem.InfoHi)
	case 1:
		return fmt.Sprintf("0x%04X-0x%04X", mem.FRAMLo, b1-1)
	case 2:
		return fmt.Sprintf("0x%04X-0x%04X", b1, b2-1)
	case 3:
		return fmt.Sprintf("0x%04X-0x%04X", b2, mem.FRAMHi)
	}
	return "?"
}
