package mpu

import (
	"testing"

	"amuletiso/internal/mem"
)

// Table-driven edge cases for the "arcane protection boundary rules" the
// paper's §2 complains about: 1 KiB boundary snapping at the extremes,
// password-violation latching, and register writes under MPULOCK.

func TestBoundarySnappingTable(t *testing.T) {
	cases := []struct {
		name  string
		write uint16
		want  uint16
	}{
		{"zero", 0x0000, 0x0000},
		{"one-under-grain", 1023, 0x0000},
		{"exactly-one-grain", 1024, 0x0400},
		{"one-over-grain", 1025, 0x0400},
		{"fram-base", mem.FRAMLo, mem.FRAMLo}, // 0x4400 is grain-aligned
		{"fram-base-plus-one", mem.FRAMLo + 1, mem.FRAMLo},
		{"mid-fram-unaligned", 0x8123, 0x8000},
		{"last-grain-below-top", 0xFC00, 0xFC00},
		{"top-of-fram", mem.FRAMHi, 0xFC00}, // 0xFF7F snaps down a full grain
		{"address-max", 0xFFFF, 0xFC00},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := New()
			u.WriteWord(RegSEGB1, tc.write)
			u.WriteWord(RegSEGB2, tc.write)
			b1, b2 := u.Boundaries()
			if b1 != tc.want || b2 != tc.want {
				t.Fatalf("write 0x%04X: boundaries = 0x%04X/0x%04X, want 0x%04X",
					tc.write, b1, b2, tc.want)
			}
		})
	}
}

func TestPasswordViolationLatchingTable(t *testing.T) {
	cases := []struct {
		name  string
		write uint16
	}{
		{"no-password", CtlEnable},
		{"wrong-password", 0x5A00 | CtlEnable},
		{"inverted-password", ^Password | CtlEnable},
		{"password-in-low-byte", Password>>8 | CtlEnable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := New()
			u.WriteWord(RegCTL0, tc.write)
			if u.Enabled() {
				t.Fatal("control write without the password took effect")
			}
			if u.Flags()&FlagPW == 0 {
				t.Fatal("password violation flag did not latch")
			}
			if u.Violations() != 1 {
				t.Fatalf("violations = %d, want 1", u.Violations())
			}
			// The latch survives further traffic and clears only via the
			// write-0-to-clear protocol.
			u.WriteWord(RegCTL0, Password|CtlEnable)
			if u.Flags()&FlagPW == 0 {
				t.Fatal("flag cleared by an unrelated valid write")
			}
			u.WriteWord(RegCTL1, ^FlagPW)
			if u.Flags()&FlagPW != 0 {
				t.Fatal("write-0-to-clear did not clear the flag")
			}
		})
	}
}

func TestWritesWhileLockedTable(t *testing.T) {
	setup := func() *Unit {
		u := New()
		u.WriteWord(RegSEGB1, 0x8000)
		u.WriteWord(RegSEGB2, 0xA000)
		u.WriteWord(RegSAM, 0x0123)
		u.WriteWord(RegCTL0, Password|CtlEnable|CtlLock)
		return u
	}
	cases := []struct {
		name string
		reg  uint16
		val  uint16
		read func(u *Unit) uint16
		want uint16
	}{
		{"segb1-frozen", RegSEGB1, 0x4400, func(u *Unit) uint16 { b1, _ := u.Boundaries(); return b1 }, 0x8000},
		{"segb2-frozen", RegSEGB2, 0xFC00, func(u *Unit) uint16 { _, b2 := u.Boundaries(); return b2 }, 0xA000},
		{"sam-frozen", RegSAM, 0x0777, func(u *Unit) uint16 { return u.ReadWord(RegSAM) }, 0x0123},
		{"ctl1-frozen", RegCTL1, 0x0000, func(u *Unit) uint16 { return u.ReadWord(RegCTL1) &^ FlagPW }, 0x0000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := setup()
			before := u.Violations()
			u.WriteWord(tc.reg, tc.val)
			if got := tc.read(u); got != tc.want {
				t.Fatalf("locked register 0x%04X changed to 0x%04X (want 0x%04X)", tc.reg, got, tc.want)
			}
			if u.Flags()&FlagPW == 0 || u.Violations() != before+1 {
				t.Fatalf("locked write did not latch a violation (flags=0x%04X)", u.Flags())
			}
			// Protection keeps enforcing with the pre-lock configuration.
			if v := u.CheckAccess(mem.Access{Addr: 0xB000, Kind: mem.Write}); v == nil {
				t.Fatal("seg3 write allowed after locked reconfiguration attempt")
			}
		})
	}
}

// TestTopOfFRAMCoverageEdge pins the coverage seam at the top of main FRAM:
// the last FRAM byte is policed, the vector table one byte higher is not —
// the hole internal/torture's probe cases demonstrate end to end.
func TestTopOfFRAMCoverageEdge(t *testing.T) {
	u := New()
	u.Configure(0x8000, 0xA000,
		RWX(1, false, false, true)|RWX(2, true, true, false), true)
	if v := u.CheckAccess(mem.Access{Addr: mem.FRAMHi, Kind: mem.Write}); v == nil {
		t.Fatal("write to the last FRAM byte (seg3) passed")
	}
	if v := u.CheckAccess(mem.Access{Addr: mem.VectLo, Kind: mem.Write}); v != nil {
		t.Fatalf("vector-table write blocked: %v — the modeled part cannot cover it", v)
	}
}
