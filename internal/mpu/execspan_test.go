package mpu

import (
	"testing"

	"amuletiso/internal/mem"
)

// TestExecSpanAgreesWithCheckAccess sweeps the entire address space under a
// grid of configurations — both capabilities, plans with execute-only,
// no-execute and open segments, degenerate boundaries — and asserts, for
// every word, that ExecSpan's answer agrees with the CheckAccess enforcement
// oracle and that the returned span is maximal.
func TestExecSpanAgreesWithCheckAccess(t *testing.T) {
	type config struct {
		name    string
		cap     Capability
		b1, b2  uint16
		sam     uint16
		enabled bool
	}
	configs := []config{
		{"disabled", CapabilityFR5969, 0x5000, 0x6000, 0, false},
		{"app-plan", CapabilityFR5969, 0x5000, 0x5400,
			RWX(1, false, false, true) | RWX(2, true, true, false), true},
		{"os-plan", CapabilityFR5969, 0x4800, 0x6000,
			RWX(1, false, false, true) | RWX(2, true, true, false) | RWX(3, true, true, false), true},
		{"all-exec", CapabilityFR5969, 0x5000, 0x6000, 0x7777, true},
		{"none-exec", CapabilityFR5969, 0x5000, 0x6000, 0x3333, true},
		{"infomem-exec-only", CapabilityFR5969, 0x8000, 0xC000, RWX(0, false, false, true), true},
		{"degenerate-b1-above-b2", CapabilityFR5969, 0xC000, 0x4800,
			RWX(1, false, false, true) | RWX(3, false, false, true), true},
		{"boundaries-below-fram", CapabilityFR5969, 0x0000, 0x0400,
			RWX(3, false, false, true), true},
		{"advanced-app-plan", CapabilityAdvanced, 0x5000, 0x5400,
			RWX(1, false, false, true) | RWX(2, true, true, false), true},
		{"advanced-none", CapabilityAdvanced, 0x5000, 0x6000, 0, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			u := New()
			u.Cap = cfg.cap
			u.Configure(cfg.b1, cfg.b2, cfg.sam, cfg.enabled)

			// Enforcement oracle: per-word CheckAccess (latching is fine on a
			// dedicated unit; it never changes permissions).
			allowed := make([]bool, 1<<15)
			for i := range allowed {
				addr := uint16(i) << 1
				allowed[i] = u.CheckAccess(mem.Access{Addr: addr, Kind: mem.Execute}) == nil
			}

			for i := range allowed {
				addr := uint16(i) << 1
				lo, hi := u.ExecSpan(addr)
				inSpan := uint32(addr) >= uint32(lo) && uint32(addr) < hi
				if inSpan != allowed[i] {
					t.Fatalf("addr %#x: ExecSpan [%#x,%#x) says %v, CheckAccess says %v",
						addr, lo, hi, inSpan, allowed[i])
				}
				if !allowed[i] {
					continue
				}
				// Every word of the span must be allowed (soundness) — walked
				// once per span, from its left edge.
				if addr == lo {
					for a := uint32(lo); a < hi; a += 2 {
						if !allowed[a>>1] {
							t.Fatalf("addr %#x: span [%#x,%#x) contains denied word %#x", addr, lo, hi, a)
						}
					}
				}
				// …and the span must be maximal (completeness), or gates
				// would pay oracle fetches inside provably-safe text.
				if lo >= 2 && allowed[(uint32(lo)-2)>>1] {
					t.Fatalf("addr %#x: span [%#x,%#x) not maximal on the left", addr, lo, hi)
				}
				if hi < 0x10000 && allowed[hi>>1] {
					t.Fatalf("addr %#x: span [%#x,%#x) not maximal on the right", addr, lo, hi)
				}
			}
		})
	}
}

// TestExecGen pins which operations advance the certificate generation:
// configuration changes do, violation latching and rejected writes do not.
func TestExecGen(t *testing.T) {
	u := New()
	g := u.ExecGen()

	// Rejected register writes (bad password, locked unit) leave it alone.
	u.WriteWord(RegCTL0, CtlEnable) // missing password
	if u.ExecGen() != g {
		t.Fatal("rejected CTL0 write bumped the generation")
	}
	u.WriteWord(RegCTL0, Password|CtlEnable)
	if u.ExecGen() == g {
		t.Fatal("enable did not bump the generation")
	}
	g = u.ExecGen()

	u.WriteWord(RegSEGB1, 0x5000)
	u.WriteWord(RegSEGB2, 0x6000)
	u.WriteWord(RegSAM, 0x0777)
	if u.ExecGen() != g+3 {
		t.Fatalf("three boundary/rights writes bumped gen by %d, want 3", u.ExecGen()-g)
	}
	g = u.ExecGen()

	// Violation latching is not a configuration change (InfoMem has no
	// execute right under SAM 0x0777).
	if v := u.CheckAccess(mem.Access{Addr: 0x1800, Kind: mem.Execute}); v == nil {
		t.Fatal("expected a violation to latch")
	}
	u.WriteWord(RegCTL1, 0) // clear flags
	if u.ExecGen() != g {
		t.Fatal("violation latch or flag clear bumped the generation")
	}

	// Go-side Configure is a plan change like any other.
	u.Configure(0x4800, 0x9000, 0x7777, true)
	if u.ExecGen() == g {
		t.Fatal("Configure did not bump the generation")
	}
	g = u.ExecGen()

	// A locked unit rejects (and must not bump).
	u.WriteWord(RegCTL0, Password|CtlEnable|CtlLock)
	g = u.ExecGen()
	u.WriteWord(RegSEGB1, 0x4400)
	if u.ExecGen() != g {
		t.Fatal("locked boundary write bumped the generation")
	}
}
