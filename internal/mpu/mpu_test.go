package mpu

import (
	"testing"
	"testing/quick"

	"amuletiso/internal/mem"
)

// appPlan programs the unit the way the AFT does for a running app:
// seg1 [FRAMLo, b1) execute-only, seg2 [b1, b2) read-write, seg3 no access.
func appPlan(u *Unit, b1, b2 uint16) {
	u.Configure(b1, b2,
		RWX(1, false, false, true)|RWX(2, true, true, false)|RWX(0, false, false, false),
		true)
}

func TestDisabledAllowsEverything(t *testing.T) {
	u := New()
	for _, a := range []mem.Access{
		{Addr: 0x4400, Kind: mem.Execute},
		{Addr: 0xFF00, Kind: mem.Write},
		{Addr: 0x1800, Kind: mem.Read},
	} {
		if v := u.CheckAccess(a); v != nil {
			t.Errorf("disabled MPU blocked %v: %v", a, v)
		}
	}
}

func TestAppPlanEnforcement(t *testing.T) {
	u := New()
	appPlan(u, 0x8000, 0xA000)

	cases := []struct {
		a  mem.Access
		ok bool
	}{
		// seg1: execute-only (OS code, lower apps, own code)
		{mem.Access{Addr: 0x4400, Kind: mem.Execute}, true},
		{mem.Access{Addr: 0x4400, Kind: mem.Read}, false},
		{mem.Access{Addr: 0x7FFE, Kind: mem.Write}, false},
		// seg2: data/stack, read-write, never execute
		{mem.Access{Addr: 0x8000, Kind: mem.Read}, true},
		{mem.Access{Addr: 0x9FFE, Kind: mem.Write}, true},
		{mem.Access{Addr: 0x9000, Kind: mem.Execute}, false},
		// seg3: higher apps, no access at all
		{mem.Access{Addr: 0xA000, Kind: mem.Read}, false},
		{mem.Access{Addr: 0xF000, Kind: mem.Write}, false},
		{mem.Access{Addr: 0xA000, Kind: mem.Execute}, false},
		// InfoMem segment: configured no-access
		{mem.Access{Addr: 0x1900, Kind: mem.Read}, false},
		// Outside MPU coverage: SRAM, peripherals, vectors all pass (the flaw)
		{mem.Access{Addr: 0x1C00, Kind: mem.Write}, true},
		{mem.Access{Addr: 0x0200, Kind: mem.Write}, true},
		{mem.Access{Addr: 0xFF80, Kind: mem.Write}, true},
	}
	for _, c := range cases {
		v := u.CheckAccess(c.a)
		if (v == nil) != c.ok {
			t.Errorf("%s 0x%04X: got %v, want ok=%v", c.a.Kind, c.a.Addr, v, c.ok)
		}
	}
}

func TestViolationFlagsLatch(t *testing.T) {
	u := New()
	appPlan(u, 0x8000, 0xA000)
	u.CheckAccess(mem.Access{Addr: 0x5000, Kind: mem.Write}) // seg1
	u.CheckAccess(mem.Access{Addr: 0xB000, Kind: mem.Read})  // seg3
	if u.Flags()&FlagSeg1 == 0 || u.Flags()&FlagSeg3 == 0 {
		t.Fatalf("flags = %04X, want seg1|seg3", u.Flags())
	}
	if u.Violations() != 2 {
		t.Fatalf("violations = %d", u.Violations())
	}
	// Write-0-to-clear via the register interface (unit must be unlocked).
	u.WriteWord(RegCTL1, ^(FlagSeg1))
	if u.Flags()&FlagSeg1 != 0 {
		t.Fatal("seg1 flag did not clear")
	}
	if u.Flags()&FlagSeg3 == 0 {
		t.Fatal("seg3 flag cleared unexpectedly")
	}
}

func TestPasswordProtocol(t *testing.T) {
	u := New()
	u.WriteWord(RegCTL0, CtlEnable) // missing password
	if u.Enabled() {
		t.Fatal("enable without password took effect")
	}
	if u.Flags()&FlagPW == 0 {
		t.Fatal("password violation flag not set")
	}
	u.WriteWord(RegCTL0, Password|CtlEnable)
	if !u.Enabled() {
		t.Fatal("enable with password ignored")
	}
	if got := u.ReadWord(RegCTL0) & pwMask; got != 0 {
		t.Fatalf("password reads back: %04X", got)
	}
}

func TestLockFreezesBoundaries(t *testing.T) {
	u := New()
	u.WriteWord(RegSEGB1, 0x8000)
	u.WriteWord(RegCTL0, Password|CtlEnable|CtlLock)
	u.WriteWord(RegSEGB1, 0x4400)
	b1, _ := u.Boundaries()
	if b1 != 0x8000 {
		t.Fatalf("locked boundary moved to %04X", b1)
	}
	if u.Flags()&FlagPW == 0 {
		t.Fatal("locked write did not flag")
	}
}

func TestBoundaryGranularity(t *testing.T) {
	u := New()
	u.WriteWord(RegSEGB1, 0x8123) // not 1 KiB aligned
	b1, _ := u.Boundaries()
	if b1 != 0x8000 {
		t.Fatalf("boundary = %04X, want snap down to 8000", b1)
	}
	// Configure() snaps too.
	u.Configure(0x87FF, 0x8BFF, 0x7777, false)
	b1, b2 := u.Boundaries()
	if b1 != 0x8400 || b2 != 0x8800 {
		t.Fatalf("configure boundaries = %04X %04X", b1, b2)
	}
}

func TestRegisterRoundTrip(t *testing.T) {
	u := New()
	u.WriteWord(RegSAM, 0x0123)
	if got := u.ReadWord(RegSAM); got != 0x0123 {
		t.Fatalf("SAM = %04X", got)
	}
	u.WriteWord(RegSEGB2, 0xA000)
	if got := u.ReadWord(RegSEGB2); got != 0xA000 {
		t.Fatalf("SEGB2 = %04X", got)
	}
}

func TestAdvancedCapabilityCoversLowMemory(t *testing.T) {
	u := New()
	u.Cap = CapabilityAdvanced
	appPlan(u, 0x8000, 0xA000)
	// With the hypothetical part, SRAM and peripherals fall into segment 1
	// (execute-only), so a stray data write below the app now faults without
	// any compiler check.
	if v := u.CheckAccess(mem.Access{Addr: 0x1C00, Kind: mem.Write}); v == nil {
		t.Fatal("advanced MPU did not protect SRAM")
	}
	if v := u.CheckAccess(mem.Access{Addr: 0x0200, Kind: mem.Write}); v == nil {
		t.Fatal("advanced MPU did not protect peripherals")
	}
	// Vectors remain reachable only via OS plans (outside segment coverage).
	if v := u.CheckAccess(mem.Access{Addr: 0xFF80, Kind: mem.Read}); v != nil {
		t.Fatalf("vector read blocked: %v", v)
	}
}

func TestOnViolationCallback(t *testing.T) {
	u := New()
	appPlan(u, 0x8000, 0xA000)
	var got *mem.Violation
	u.OnViolation = func(v *mem.Violation) { got = v }
	u.CheckAccess(mem.Access{Addr: 0xB000, Kind: mem.Write})
	if got == nil || got.Access.Addr != 0xB000 {
		t.Fatalf("callback saw %v", got)
	}
}

func TestQuickSegmentPartition(t *testing.T) {
	// Property: with any (aligned) boundaries, every FRAM address belongs to
	// exactly one segment, and segments are ordered seg1 < seg2 < seg3.
	u := New()
	f := func(rb1, rb2, addr uint16) bool {
		b1 := mem.FRAMLo + rb1%0x4000
		b2 := b1 + rb2%0x4000
		u.Configure(b1, b2, 0, true)
		a := mem.FRAMLo + addr%(mem.FRAMHi-mem.FRAMLo)
		seg := u.segmentOf(a)
		cb1, cb2 := u.Boundaries()
		switch seg {
		case 1:
			return a < cb1
		case 2:
			return a >= cb1 && a < cb2
		case 3:
			return a >= cb2
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
