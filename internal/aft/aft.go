// Package aft implements the Amulet Firmware Toolchain: it merges a set of
// application sources with the OS support code into one firmware image,
// following the paper's four-phase pipeline (§3):
//
//  1. language/feature checks, per-app enumeration of memory accesses and
//     API calls, call-graph and stack analysis (internal/cc's Analyze);
//  2. injection of MPU-configuration code and memory-access checks
//     (internal/cc's Generate, plus the gates emitted here);
//  3. memory-section marking and stack-switching assembly (the per-app
//     sections and OS gates/veneer emitted here);
//  4. final placement: apps in high FRAM per Figure 1, boundary symbols
//     bound to 1 KiB MPU-aligned addresses, checks patched by the linker.
//
// The resulting memory map is exactly Figure 1: OS code in low FRAM
// (execute-only under every plan), OS data above it, then each app's code
// followed by its data/stack segment, stacks at the bottom of each data
// segment growing down toward execute-only code.
package aft

import (
	"fmt"

	"amuletiso/internal/abi"
	"amuletiso/internal/asm"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
	"amuletiso/internal/obs"
)

// AppSource is one application given to the toolchain.
type AppSource struct {
	Name string
	// Source is the AmuletC source. When building ModeFeatureLimited and
	// RestrictedSource is non-empty, that variant is used instead (for
	// apps whose full-dialect version uses pointers).
	Source           string
	RestrictedSource string
	// StackBytes overrides the analyzer's stack estimate (0 = automatic).
	StackBytes int
}

// src returns the dialect-appropriate source text.
func (a AppSource) src(mode cc.Mode) string {
	if mode == cc.ModeFeatureLimited && a.RestrictedSource != "" {
		return a.RestrictedSource
	}
	return a.Source
}

// AppInfo describes one application in a linked firmware image.
type AppInfo struct {
	Name string
	ID   uint16

	CodeLo, CodeHi uint16 // [CodeLo, CodeHi): code segment (the paper's Ci)
	DataLo, DataHi uint16 // [DataLo, DataHi): data/stack segment (Di, Ei)
	StackTop       uint16 // initial SP (bottom of data segment + stack size)
	Handler        uint16 // address of handle_event

	// MPU plan while this app runs: seg1 [FRAM, B1) X-only,
	// seg2 [B1, B2) RW, seg3 [B2, top] no access.
	PlanB1, PlanB2, PlanSAM uint16

	Checked *cc.Checked // analyzer output (ARP consumes this)
}

// Firmware is a linked multi-app image plus everything the kernel needs.
//
// A Firmware is immutable after Build: the kernel clones the image bytes
// into its own bus at boot and only reads the app descriptors, so a single
// built Firmware may back any number of concurrently running kernels — the
// property fleet simulation's build cache relies on.
type Firmware struct {
	Mode  cc.Mode
	Image *asm.Image
	Apps  []*AppInfo

	// OS-plan MPU configuration (while the kernel runs).
	OSPlanB1, OSPlanB2, OSPlanSAM uint16

	// Key OS addresses.
	Dispatch  uint16 // event dispatch veneer
	OSStackSP uint16 // initial OS stack pointer (top of SRAM)

	// Vars maps OS variable symbols to their data addresses.
	Vars map[string]uint16

	// Text is the decode-once instruction cache over the firmware's
	// executable text (OS code plus every app's code segment). Like the
	// image it is immutable after Build and shared by every kernel booted
	// from this firmware, so a fleet of devices pays the decode cost once
	// per (app set, mode) build rather than once per executed instruction.
	// Predecode also runs the superinstruction fusion pass (unless
	// isa.SetFusion disabled it at build time): in particular every gate
	// prologue's PUSH R4..R11 run becomes one 8-part superinstruction.
	Text *isa.Program
}

// AppSAM is the MPUSAM app plan: seg1 execute-only, seg2 read/write,
// seg3 and InfoMem no access.
var AppSAM = mpu.RWX(1, false, false, true) | mpu.RWX(2, true, true, false)

// OSSAM is the MPUSAM OS plan: OS code execute-only, OS data and all apps
// read/write (the OS may touch app memory on their behalf).
var OSSAM = mpu.RWX(1, false, false, true) | mpu.RWX(2, true, true, false) |
	mpu.RWX(3, true, true, false)

// osVarSyms lists the OS variables materialized in OS data, in layout order.
var osVarSyms = []string{
	abi.SymVarSavedSP, abi.SymVarOSStackSP, abi.SymVarAppSP,
	abi.SymVarCurB1, abi.SymVarCurB2, abi.SymVarCurSAM,
	abi.SymVarGateCount, abi.SymVarCurApp,
}

// OSStackTop is the initial OS stack pointer (grows down through SRAM).
const OSStackTop = mem.SRAMHi + 1

// BuildError wraps a per-app failure with the app's name.
type BuildError struct {
	App string
	Err error
}

func (e *BuildError) Error() string { return fmt.Sprintf("aft: app %q: %v", e.App, e.Err) }

// mBuilds counts every full pipeline run in the process — cached fleet
// builds and one-shot CLI builds alike (BuildCache hit counters tell the two
// apart).
var mBuilds = obs.Default.Counter(obs.MetricFirmwareBuilds,
	"Full firmware build pipeline runs (compile, link, predecode).")

// Build runs the full pipeline for the given isolation mode.
func Build(apps []AppSource, mode cc.Mode) (*Firmware, error) {
	mBuilds.Inc()
	if len(apps) == 0 {
		return nil, fmt.Errorf("aft: no applications given")
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			return nil, fmt.Errorf("aft: duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
	}

	// Phase 1: parse and analyze every app.
	checked := make([]*cc.Checked, len(apps))
	for i, a := range apps {
		unit, err := cc.Parse(a.Name, a.src(mode))
		if err != nil {
			return nil, &BuildError{a.Name, err}
		}
		chk, err := cc.Analyze(unit, mode.Dialect(), true)
		if err != nil {
			return nil, &BuildError{a.Name, err}
		}
		if mode == cc.ModeFeatureLimited && chk.Recursive {
			return nil, &BuildError{a.Name,
				fmt.Errorf("recursion is not allowed in Amulet C (stack cannot be bounded)")}
		}
		checked[i] = chk
	}

	// Phases 2-4: emit OS support, then each app's sections; the linker
	// binds the boundary symbols the injected checks compare against.
	b := asm.NewBuilder()
	b.Org(mem.FRAMLo)
	b.Label(abi.SymOSCodeLo)
	emitDispatch(b, mode)
	for _, api := range abi.API {
		emitGate(b, mode, api)
	}
	b.Label(abi.SymGateFail)
	b.Label(abi.SymOSFault)
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(abi.FaultCurrentApp), Dst: isa.Abs(abi.PortFault)})
	b.Branch(isa.JMP, abi.SymOSFault)
	if err := asm.Parse(cc.RuntimeAsm, b); err != nil {
		return nil, fmt.Errorf("aft: runtime library: %w", err)
	}

	// OS data block (MPU boundary 1 of the OS plan).
	b.Align(mpu.Granularity)
	b.Label(abi.SymOSDataLo)
	for _, sym := range osVarSyms {
		b.Label(sym)
		if sym == abi.SymVarOSStackSP {
			b.Word(OSStackTop)
		} else {
			b.Word(0)
		}
	}

	// Apps, packed per Figure 1.
	b.Align(mpu.Granularity)
	b.Label(abi.SymAppsBase)
	for i, a := range apps {
		chk := checked[i]
		b.Label(abi.SymCodeLo(a.Name))
		b.Label(abi.SymFault(a.Name))
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(uint16(i)), Dst: isa.Abs(abi.PortFault)})
		b.Branch(isa.JMP, abi.SymFault(a.Name))
		if err := cc.Generate(chk, mode, b); err != nil {
			return nil, &BuildError{a.Name, err}
		}
		b.Label(abi.SymCodeHi(a.Name))
		b.Align(mpu.Granularity)
		b.Label(abi.SymDataLo(a.Name))
		b.Space(uint16(appStack(chk, apps[i].StackBytes)))
		b.Label(abi.SymStackTop(a.Name))
		if err := cc.GenerateData(chk, b); err != nil {
			return nil, &BuildError{a.Name, err}
		}
		b.Align(mpu.Granularity)
		b.Label(abi.SymDataHi(a.Name))
	}

	img, err := b.Link()
	if err != nil {
		return nil, err
	}
	if ov := img.Overlaps(); ov != "" {
		return nil, fmt.Errorf("aft: layout: %s", ov)
	}

	fw := &Firmware{
		Mode:      mode,
		Image:     img,
		OSPlanB1:  img.MustSym(abi.SymOSDataLo),
		OSPlanB2:  img.MustSym(abi.SymAppsBase),
		OSPlanSAM: OSSAM,
		Dispatch:  img.MustSym(abi.SymDispatch),
		OSStackSP: OSStackTop,
		Vars:      make(map[string]uint16, len(osVarSyms)),
	}
	for _, sym := range osVarSyms {
		fw.Vars[sym] = img.MustSym(sym)
	}
	for i, a := range apps {
		info := &AppInfo{
			Name:     a.Name,
			ID:       uint16(i),
			CodeLo:   img.MustSym(abi.SymCodeLo(a.Name)),
			CodeHi:   img.MustSym(abi.SymCodeHi(a.Name)),
			DataLo:   img.MustSym(abi.SymDataLo(a.Name)),
			DataHi:   img.MustSym(abi.SymDataHi(a.Name)),
			StackTop: img.MustSym(abi.SymStackTop(a.Name)),
			Handler:  img.MustSym(abi.SymFunc(a.Name, cc.HandlerName)),
			Checked:  checked[i],
		}
		info.PlanB1 = info.DataLo
		info.PlanB2 = info.DataHi
		info.PlanSAM = AppSAM
		fw.Apps = append(fw.Apps, info)
		if info.DataHi < info.DataLo || (i == len(apps)-1 && info.DataHi > mem.VectLo) {
			return nil, fmt.Errorf("aft: app %q does not fit in FRAM (data ends at 0x%04X)",
				a.Name, info.DataHi)
		}
	}
	// Predecode the executable text once per build. Data/stack segments are
	// deliberately excluded: they are mutable, so caching them would force
	// the bus watch onto every stack push and global store. With the cache
	// globally disabled the kernel would discard the decode at boot, so
	// skip the work entirely.
	if cpu.DecodeCacheEnabled() {
		ranges := []isa.TextRange{{Lo: mem.FRAMLo, Hi: img.MustSym(abi.SymOSDataLo)}}
		for _, info := range fw.Apps {
			ranges = append(ranges, isa.TextRange{Lo: info.CodeLo, Hi: info.CodeHi})
		}
		fw.Text = isa.Predecode(img, ranges)
	}
	return fw, nil
}

// appStack sizes an app's stack reservation, mirroring the paper: use the
// phase-1 estimate when the call graph is bounded, otherwise a default that
// the MPU (or checks) will police.
func appStack(chk *cc.Checked, override int) int {
	if override > 0 {
		return (override + 1) &^ 1
	}
	if chk.MaxStack < 0 {
		return 256
	}
	s := chk.MaxStack + 64
	if s < 128 {
		s = 128
	}
	return (s + 1) &^ 1
}

// emitDispatch emits the OS->app event dispatch veneer. The kernel preloads
// R11 = handler address, R12 = event, R13 = argument, the os.var.* block,
// and points PC here with SP on the OS stack.
func emitDispatch(b *asm.Builder, mode cc.Mode) {
	abs := func(sym string) (isa.Operand, asm.Ref) {
		return isa.Abs(0), asm.Ref{Sym: sym}
	}
	b.Label(abi.SymDispatch)
	// Install the app's stack.
	o, r := abs(abi.SymVarAppSP)
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: o, Dst: isa.RegOp(isa.SP)}, r, asm.NoRef)
	if mode == cc.ModeMPU {
		// Enter the app's MPU plan. The cur_* variables live in OS data,
		// which becomes execute-only the moment the app boundaries land in
		// the registers — so stage all three values in scratch registers
		// while the OS plan is still fully active, then write the MPU.
		// R8-R10 are dead here (the handler has not started yet).
		emitLoadPlanToRegs(b, isa.R8, isa.R9, isa.R10)
		emitWritePlanFromRegs(b, isa.R8, isa.R9, isa.R10)
	}
	b.Emit(isa.Instr{Op: isa.CALL, Src: isa.RegOp(isa.R11)})
	if mode == cc.ModeMPU {
		// Back to the OS plan.
		b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(mpu.RegSEGB1)},
			asm.Ref{Sym: abi.SymOSDataLo}, asm.NoRef)
		b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(mpu.RegSEGB2)},
			asm.Ref{Sym: abi.SymAppsBase}, asm.NoRef)
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(OSSAM), Dst: isa.Abs(mpu.RegSAM)})
	}
	// Back to the OS stack; tell the kernel the event completed; idle.
	o, r = abs(abi.SymVarOSStackSP)
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: o, Dst: isa.RegOp(isa.SP)}, r, asm.NoRef)
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.Abs(abi.PortYield)})
	b.Label("os.dispatch.idle")
	b.Emit(isa.Instr{Op: isa.BIS, Src: isa.Imm(uint16(isa.FlagCPUOFF)), Dst: isa.RegOp(isa.SR)})
	b.Branch(isa.JMP, "os.dispatch.idle")
}

// emitLoadPlanToRegs stages the current app's MPU plan (cur_b1/b2/sam) into
// three registers while OS data is still readable.
func emitLoadPlanToRegs(b *asm.Builder, r1, r2, r3 isa.Reg) {
	for _, p := range []struct {
		sym string
		r   isa.Reg
	}{
		{abi.SymVarCurB1, r1}, {abi.SymVarCurB2, r2}, {abi.SymVarCurSAM, r3},
	} {
		b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Abs(0), Dst: isa.RegOp(p.r)},
			asm.Ref{Sym: p.sym}, asm.NoRef)
	}
}

// emitWritePlanFromRegs programs the MPU from staged registers.
func emitWritePlanFromRegs(b *asm.Builder, r1, r2, r3 isa.Reg) {
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(r1), Dst: isa.Abs(mpu.RegSEGB1)})
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(r2), Dst: isa.Abs(mpu.RegSEGB2)})
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.RegOp(r3), Dst: isa.Abs(mpu.RegSAM)})
}

// emitGate emits the shared OS gate for one API function: the paper's
// context switch. Every gate saves the app's register context, switches to
// the OS stack, transfers to the kernel service via the syscall port, and
// unwinds. The MPU variant additionally rewrites the MPU configuration in
// both directions — the cost visible in Table 1's context-switch row — and
// validated modes bound-check application-provided pointer arguments.
func emitGate(b *asm.Builder, mode cc.Mode, api abi.APIFunc) {
	gate := abi.SymGate(api.Name)
	b.Label(gate)

	// Save the app's callee-saved context on the app stack.
	for r := isa.R4; r <= isa.R11; r++ {
		b.Emit(isa.Instr{Op: isa.PUSH, Src: isa.RegOp(r)})
	}
	if mode == cc.ModeMPU {
		// Switch to the OS plan before touching OS data, closing with the
		// password-protected MPUCTL0 confirmation write the FR5969's
		// register protocol demands.
		b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(mpu.RegSEGB1)},
			asm.Ref{Sym: abi.SymOSDataLo}, asm.NoRef)
		b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(mpu.RegSEGB2)},
			asm.Ref{Sym: abi.SymAppsBase}, asm.NoRef)
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(OSSAM), Dst: isa.Abs(mpu.RegSAM)})
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(mpu.Password | mpu.CtlEnable), Dst: isa.Abs(mpu.RegCTL0)})
	}
	// Stack switch + bookkeeping.
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.SP), Dst: isa.Abs(0)},
		asm.NoRef, asm.Ref{Sym: abi.SymVarSavedSP})
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Abs(0), Dst: isa.RegOp(isa.SP)},
		asm.Ref{Sym: abi.SymVarOSStackSP}, asm.NoRef)
	b.EmitRef(isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.Abs(0)},
		asm.NoRef, asm.Ref{Sym: abi.SymVarGateCount})

	// Pointer-argument validation ("carefully handle application-provided
	// pointers passed through API calls", §3). SoftwareOnly checks both
	// bounds; MPU checks the lower bound, mirroring its check philosophy.
	if api.PtrArg >= 0 && (mode == cc.ModeSoftwareOnly || mode == cc.ModeMPU) {
		ptr := isa.R12 + isa.Reg(api.PtrArg)
		ok1 := gate + ".ok1"
		b.EmitRef(isa.Instr{Op: isa.CMP, Src: isa.Abs(0), Dst: isa.RegOp(ptr)},
			asm.Ref{Sym: abi.SymVarCurB1}, asm.NoRef)
		b.Branch(isa.JC, ok1) // ptr >= app data lo
		b.Branch(isa.JMP, abi.SymGateFail)
		b.Label(ok1)
		if mode == cc.ModeSoftwareOnly {
			ok2 := gate + ".ok2"
			b.EmitRef(isa.Instr{Op: isa.CMP, Src: isa.Abs(0), Dst: isa.RegOp(ptr)},
				asm.Ref{Sym: abi.SymVarCurB2}, asm.NoRef)
			b.Branch(isa.JNC, ok2) // ptr < app data hi
			b.Branch(isa.JMP, abi.SymGateFail)
			b.Label(ok2)
		}
	}

	// Transfer to the kernel service (args still in R12..R15).
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(api.Sys), Dst: isa.Abs(cpu.PortSyscall)})

	// Unwind: back to the app stack and (MPU) the app's plan. All OS-data
	// reads happen before the plan switch (see emitDispatch's comment);
	// R13-R15 are caller-saved scratch, R12 carries the return value.
	if mode == cc.ModeMPU {
		emitLoadPlanToRegs(b, isa.R13, isa.R14, isa.R15)
	}
	b.EmitRef(isa.Instr{Op: isa.MOV, Src: isa.Abs(0), Dst: isa.RegOp(isa.SP)},
		asm.Ref{Sym: abi.SymVarSavedSP}, asm.NoRef)
	if mode == cc.ModeMPU {
		emitWritePlanFromRegs(b, isa.R13, isa.R14, isa.R15)
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.Imm(mpu.Password | mpu.CtlEnable), Dst: isa.Abs(mpu.RegCTL0)})
	}
	for r := isa.R11; r >= isa.R4; r-- {
		b.Emit(isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(r)}) // POP
	}
	b.Emit(isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)}) // RET
}
