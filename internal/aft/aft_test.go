package aft

import (
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/cc"
	"amuletiso/internal/mem"
	"amuletiso/internal/mpu"
)

const tinyApp = `
int count = 0;
void handle_event(int ev, int arg) {
    count++;
    amulet_log_value(1, count);
}
`

const tinyApp2 = `
int total = 0;
void handle_event(int ev, int arg) {
    total = total + arg;
}
`

func buildAll(t *testing.T, apps []AppSource) map[cc.Mode]*Firmware {
	t.Helper()
	out := map[cc.Mode]*Firmware{}
	for _, m := range cc.Modes {
		fw, err := Build(apps, m)
		if err != nil {
			t.Fatalf("[%v] build: %v", m, err)
		}
		out[m] = fw
	}
	return out
}

func TestBuildLayoutInvariants(t *testing.T) {
	apps := []AppSource{
		{Name: "alpha", Source: tinyApp},
		{Name: "beta", Source: tinyApp2},
	}
	for mode, fw := range buildAll(t, apps) {
		if len(fw.Apps) != 2 {
			t.Fatalf("[%v] %d apps", mode, len(fw.Apps))
		}
		prevEnd := fw.OSPlanB2
		if fw.OSPlanB1%uint16(mpu.Granularity) != 0 || fw.OSPlanB2%uint16(mpu.Granularity) != 0 {
			t.Errorf("[%v] OS plan boundaries not MPU-aligned: %04X %04X", mode, fw.OSPlanB1, fw.OSPlanB2)
		}
		for _, a := range fw.Apps {
			// Figure 1 ordering: code below data, apps packed upward.
			if !(a.CodeLo < a.CodeHi && a.CodeHi <= a.DataLo && a.DataLo < a.DataHi) {
				t.Errorf("[%v] %s: bad segment order %04X %04X %04X %04X",
					mode, a.Name, a.CodeLo, a.CodeHi, a.DataLo, a.DataHi)
			}
			if a.CodeLo != prevEnd {
				t.Errorf("[%v] %s: code starts at %04X, want packed at %04X", mode, a.Name, a.CodeLo, prevEnd)
			}
			if a.DataLo%uint16(mpu.Granularity) != 0 || a.DataHi%uint16(mpu.Granularity) != 0 {
				t.Errorf("[%v] %s: data bounds not MPU-aligned", mode, a.Name)
			}
			if !(a.DataLo < a.StackTop && a.StackTop <= a.DataHi) {
				t.Errorf("[%v] %s: stack top %04X outside data segment", mode, a.Name, a.StackTop)
			}
			if a.Handler < a.CodeLo || a.Handler >= a.CodeHi {
				t.Errorf("[%v] %s: handler outside code segment", mode, a.Name)
			}
			prevEnd = a.DataHi
		}
		if fw.Image.Overlaps() != "" {
			t.Errorf("[%v] overlap: %s", mode, fw.Image.Overlaps())
		}
		if _, ok := fw.Image.Sym(abi.SymGate("amulet_yield")); !ok {
			t.Errorf("[%v] missing yield gate", mode)
		}
		if fw.OSPlanB1 <= mem.FRAMLo {
			t.Errorf("[%v] OS data at %04X", mode, fw.OSPlanB1)
		}
	}
}

func TestBuildRejectsBadApps(t *testing.T) {
	// No handler.
	_, err := Build([]AppSource{{Name: "x", Source: "int main() { return 0; }"}}, cc.ModeMPU)
	if err == nil {
		t.Fatal("missing handle_event accepted")
	}
	// Recursion under the restricted dialect.
	rec := `
int f(int n) { if (n < 1) { return 0; } return f(n - 1); }
void handle_event(int ev, int arg) { f(3); }
`
	_, err = Build([]AppSource{{Name: "x", Source: rec}}, cc.ModeFeatureLimited)
	if err == nil {
		t.Fatal("recursion accepted in Amulet C")
	}
	// Same app builds fine in full dialect.
	if _, err = Build([]AppSource{{Name: "x", Source: rec}}, cc.ModeMPU); err != nil {
		t.Fatalf("recursion rejected in full dialect: %v", err)
	}
	// Duplicate names.
	_, err = Build([]AppSource{
		{Name: "x", Source: tinyApp}, {Name: "x", Source: tinyApp},
	}, cc.ModeMPU)
	if err == nil {
		t.Fatal("duplicate app names accepted")
	}
	// Pointers under restricted dialect without a restricted variant.
	ptr := `
int g;
void handle_event(int ev, int arg) { int *p = &g; *p = 1; }
`
	_, err = Build([]AppSource{{Name: "x", Source: ptr}}, cc.ModeFeatureLimited)
	if err == nil {
		t.Fatal("pointers accepted in Amulet C")
	}
	// ... but a RestrictedSource variant fixes it.
	_, err = Build([]AppSource{{Name: "x", Source: ptr, RestrictedSource: tinyApp}}, cc.ModeFeatureLimited)
	if err != nil {
		t.Fatalf("restricted variant rejected: %v", err)
	}
}

func TestGateSizesDifferByMode(t *testing.T) {
	// The MPU gate must be strictly longer than the base gate (it rewrites
	// the MPU twice); the SoftwareOnly gate sits between for pointer APIs.
	apps := []AppSource{{Name: "a", Source: tinyApp}}
	sizes := map[cc.Mode]int{}
	for _, m := range cc.Modes {
		fw, err := Build(apps, m)
		if err != nil {
			t.Fatal(err)
		}
		lo := fw.Image.MustSym(abi.SymGate("amulet_log_write"))
		hi := fw.Image.MustSym(abi.SymGate("amulet_log_value"))
		if hi < lo {
			lo, hi = hi, lo
		}
		sizes[m] = int(hi - lo)
	}
	if !(sizes[cc.ModeNoIsolation] == sizes[cc.ModeFeatureLimited] &&
		sizes[cc.ModeNoIsolation] < sizes[cc.ModeSoftwareOnly] &&
		sizes[cc.ModeSoftwareOnly] < sizes[cc.ModeMPU]) {
		t.Errorf("gate size ordering wrong: %v", sizes)
	}
}

func TestAppStackSizing(t *testing.T) {
	shallow := `
void handle_event(int ev, int arg) { amulet_yield(); }
`
	deepSrc := `
int a(int x) { int buf[40]; buf[0] = x; return b(buf[0]); }
int b(int x) { int buf[40]; buf[0] = x; return buf[0] + 1; }
void handle_event(int ev, int arg) { a(arg); }
`
	fwS, err := Build([]AppSource{{Name: "s", Source: shallow}}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	fwD, err := Build([]AppSource{{Name: "d", Source: deepSrc}}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	sS := fwS.Apps[0].StackTop - fwS.Apps[0].DataLo
	sD := fwD.Apps[0].StackTop - fwD.Apps[0].DataLo
	if sD <= sS {
		t.Errorf("deep app stack (%d) not larger than shallow (%d)", sD, sS)
	}
	// Override wins.
	fwO, err := Build([]AppSource{{Name: "s", Source: shallow, StackBytes: 900}}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if got := fwO.Apps[0].StackTop - fwO.Apps[0].DataLo; got != 900 {
		t.Errorf("stack override = %d, want 900", got)
	}
}

func TestManyAppsFitAndOverflowDetected(t *testing.T) {
	var apps []AppSource
	for _, n := range []string{"a1", "a2", "a3", "a4", "a5", "a6"} {
		apps = append(apps, AppSource{Name: n, Source: tinyApp})
	}
	fw, err := Build(apps, cc.ModeMPU)
	if err != nil {
		t.Fatalf("6 small apps should fit: %v", err)
	}
	if len(fw.Apps) != 6 {
		t.Fatal("app count")
	}
	// A huge data segment must be rejected (FRAM exhausted: two 24 KB
	// arrays exceed the ~46 KB app area and wrap the address space).
	big := AppSource{Name: "big", Source: `
int huge1[12000];
int huge2[12000];
void handle_event(int ev, int arg) { huge1[0] = 1; huge2[0] = 1; }
`}
	if _, err := Build([]AppSource{big, {Name: "x", Source: tinyApp}}, cc.ModeMPU); err == nil {
		t.Fatal("oversized firmware accepted")
	}
}
