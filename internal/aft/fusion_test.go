package aft

import (
	"testing"

	"amuletiso/internal/abi"
	"amuletiso/internal/cc"
	"amuletiso/internal/isa"
)

// TestGatePrologueFuses checks the firmware-level fusion target: every OS
// gate's prologue (PUSH R4..R11) predecodes into a single 8-part push-run
// superinstruction at the gate's entry, so every API call pays one dispatch
// for its eight register saves.
func TestGatePrologueFuses(t *testing.T) {
	fw, err := Build([]AppSource{{Name: "a", Source: `
void handle_event(int ev, int arg) { amulet_log_value(1, arg); }
`}}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Text == nil || fw.Text.FusedHeads() == 0 {
		t.Fatal("firmware text carries no fused superinstructions")
	}
	gates := 0
	for _, api := range abi.API {
		addr, ok := fw.Image.Sym(abi.SymGate(api.Name))
		if !ok {
			continue
		}
		gates++
		e := fw.Text.At(addr)
		if e == nil {
			t.Fatalf("gate %s at 0x%04X has no cache slot", api.Name, addr)
		}
		if e.Fused == nil || e.Fused.Kind != isa.FusePushRun || len(e.Fused.Parts) != 8 {
			t.Errorf("gate %s prologue not fused as an 8-part push run: %+v", api.Name, e.Fused)
		}
	}
	if gates == 0 {
		t.Fatal("no gate symbols found")
	}
}

// TestBuildHonorsFusionSwitch mirrors the decode-cache build-time contract
// for fusion: a firmware built under SetFusion(false) carries an unfused
// cache even if the switch is re-enabled afterwards.
func TestBuildHonorsFusionSwitch(t *testing.T) {
	defer isa.SetFusion(true)
	isa.SetFusion(false)
	fw, err := Build([]AppSource{{Name: "a", Source: `
void handle_event(int ev, int arg) { amulet_log_value(ev, arg); }
`}}, cc.ModeMPU)
	if err != nil {
		t.Fatal(err)
	}
	isa.SetFusion(true)
	if fw.Text == nil {
		t.Fatal("no predecode cache")
	}
	if n := fw.Text.FusedHeads(); n != 0 {
		t.Fatalf("firmware built with fusion off has %d fused heads", n)
	}
}
