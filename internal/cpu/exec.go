package cpu

import (
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// operand location: either a register or a memory address.
type location struct {
	isReg bool
	reg   isa.Reg
	addr  uint16
}

// resolveSrc computes the source operand's value and location. extBase is the
// address of this operand's extension word (if any). Autoincrement side
// effects happen here, as on hardware.
func (c *CPU) resolveSrc(in isa.Instr, extBase uint16) (val uint16, loc location, viol *mem.Violation) {
	o := in.Src
	switch o.Mode {
	case isa.ModeRegister:
		return c.readReg(o.Reg, in.Byte), location{isReg: true, reg: o.Reg}, nil
	case isa.ModeImmediate:
		v := o.X
		if in.Byte {
			v &= 0xFF
		}
		return v, location{}, nil
	case isa.ModeIndexed:
		base := c.Regs[o.Reg]
		if o.Reg == isa.PC {
			base = extBase // symbolic: PC-relative to the extension word
		}
		addr := base + o.X
		v, viol := c.readMem(addr, in.Byte)
		return v, location{addr: addr}, viol
	case isa.ModeAbsolute:
		v, viol := c.readMem(o.X, in.Byte)
		return v, location{addr: o.X}, viol
	case isa.ModeIndirect:
		addr := c.Regs[o.Reg]
		v, viol := c.readMem(addr, in.Byte)
		return v, location{addr: addr}, viol
	case isa.ModeIndirectInc:
		addr := c.Regs[o.Reg]
		v, viol := c.readMem(addr, in.Byte)
		if viol == nil {
			inc := uint16(2)
			if in.Byte && o.Reg != isa.SP {
				inc = 1 // SP always stays word-aligned
			}
			c.Regs[o.Reg] += inc
		}
		return v, location{addr: addr}, viol
	}
	return 0, location{}, nil
}

// resolveDst computes the destination location and, when needed, its current
// value. extAddr is the address of the destination extension word.
func (c *CPU) resolveDst(in isa.Instr, extAddr uint16, needRead bool) (val uint16, loc location, viol *mem.Violation) {
	o := in.Dst
	switch o.Mode {
	case isa.ModeRegister:
		loc = location{isReg: true, reg: o.Reg}
		if needRead {
			val = c.readReg(o.Reg, in.Byte)
		}
		return val, loc, nil
	case isa.ModeIndexed:
		base := c.Regs[o.Reg]
		if o.Reg == isa.PC {
			base = extAddr
		}
		loc = location{addr: base + o.X}
	case isa.ModeAbsolute:
		loc = location{addr: o.X}
	default:
		return 0, location{}, nil
	}
	if needRead {
		val, viol = c.readMem(loc.addr, in.Byte)
	}
	return val, loc, viol
}

func (c *CPU) readReg(r isa.Reg, byteOp bool) uint16 {
	v := c.Regs[r]
	if byteOp {
		v &= 0xFF
	}
	return v
}

func (c *CPU) readMem(addr uint16, byteOp bool) (uint16, *mem.Violation) {
	if byteOp {
		v, viol := c.Bus.Read8(addr)
		return uint16(v), viol
	}
	return c.Bus.Read16(addr)
}

// writeLoc stores a result to a register or memory, honoring byte semantics
// (byte writes to registers clear the high byte, as on MSP430).
func (c *CPU) writeLoc(loc location, v uint16, byteOp bool) *mem.Violation {
	if loc.isReg {
		if byteOp {
			v &= 0xFF
		}
		c.Regs[loc.reg] = v
		if loc.reg == isa.PC || loc.reg == isa.SP {
			c.Regs[loc.reg] &^= 1
		}
		return nil
	}
	if byteOp {
		return c.Bus.Write8(loc.addr, uint8(v))
	}
	return c.Bus.Write16(loc.addr, v)
}

// setNZ sets N and Z for a result of the given width.
func (c *CPU) setNZ(res uint16, byteOp bool) {
	if byteOp {
		c.setFlag(isa.FlagN, res&0x80 != 0)
		c.setFlag(isa.FlagZ, res&0xFF == 0)
	} else {
		c.setFlag(isa.FlagN, res&0x8000 != 0)
		c.setFlag(isa.FlagZ, res == 0)
	}
}

// aluFlags is the SR mask every arithmetic/logic flag update rewrites.
const aluFlags = isa.FlagC | isa.FlagZ | isa.FlagN | isa.FlagV

// addCore performs dst + src + carryIn with full flag computation. All four
// flags are composed into one SR store — the per-instruction cost of four
// separate read-modify-write setFlag calls was visible in the interpreter
// profile.
func (c *CPU) addCore(dst, src, carryIn uint16, byteOp bool) uint16 {
	var mask, sign uint32 = 0xFFFF, 0x8000
	if byteOp {
		mask, sign = 0xFF, 0x80
	}
	d, s := uint32(dst)&mask, uint32(src)&mask
	sum := d + s + uint32(carryIn)
	res := sum & mask
	sr := c.Regs[isa.SR] &^ aluFlags
	if sum > mask {
		sr |= isa.FlagC
	}
	if (^(d^s)&(d^res))&sign != 0 {
		sr |= isa.FlagV
	}
	if res&sign != 0 {
		sr |= isa.FlagN
	}
	if res == 0 {
		sr |= isa.FlagZ
	}
	c.Regs[isa.SR] = sr
	return uint16(res)
}

// logicFlags applies the BIT/AND/XOR flag rule — N/Z from the result,
// C = !Z, V as given — in one SR store.
func (c *CPU) logicFlags(res uint16, byteOp, v bool) {
	sr := c.Regs[isa.SR] &^ aluFlags
	sign, m := uint16(0x8000), res
	if byteOp {
		sign, m = 0x80, res&0xFF
	}
	if m&sign != 0 {
		sr |= isa.FlagN
	}
	if m == 0 {
		sr |= isa.FlagZ
	} else {
		sr |= isa.FlagC
	}
	if v {
		sr |= isa.FlagV
	}
	c.Regs[isa.SR] = sr
}

// exec executes a decoded instruction. pc is the instruction address, size
// its encoded size in bytes. The PC register has already been advanced.
func (c *CPU) exec(pc, size uint16, in isa.Instr) *Fault {
	mkFault := func(v *mem.Violation) *Fault { return &Fault{PC: pc, Violation: v} }

	switch {
	case in.Op.IsJump():
		taken := false
		switch in.Op {
		case isa.JNE:
			taken = !c.flag(isa.FlagZ)
		case isa.JEQ:
			taken = c.flag(isa.FlagZ)
		case isa.JNC:
			taken = !c.flag(isa.FlagC)
		case isa.JC:
			taken = c.flag(isa.FlagC)
		case isa.JN:
			taken = c.flag(isa.FlagN)
		case isa.JGE:
			taken = c.flag(isa.FlagN) == c.flag(isa.FlagV)
		case isa.JL:
			taken = c.flag(isa.FlagN) != c.flag(isa.FlagV)
		case isa.JMP:
			taken = true
		}
		if taken {
			c.SetPC(c.PC() + 2*uint16(in.JmpOffsetWords()))
		}
		return nil

	case in.Op == isa.RETI:
		sr, viol := c.pop()
		if viol != nil {
			return mkFault(viol)
		}
		c.Regs[isa.SR] = sr
		ret, viol := c.pop()
		if viol != nil {
			return mkFault(viol)
		}
		c.SetPC(ret)
		return nil

	case in.Op.IsOneOperand():
		return c.execOneOperand(pc, size, in)
	}
	return c.execTwoOperand(pc, size, in)
}

func (c *CPU) execOneOperand(pc, size uint16, in isa.Instr) *Fault {
	mkFault := func(v *mem.Violation) *Fault { return &Fault{PC: pc, Violation: v} }
	extBase := pc + 2 // single operand's extension word follows the opcode

	val, loc, viol := c.resolveSrc(in, extBase)
	if viol != nil {
		return mkFault(viol)
	}

	switch in.Op {
	case isa.RRC:
		carryIn := uint16(0)
		if c.flag(isa.FlagC) {
			carryIn = 1
		}
		var res uint16
		if in.Byte {
			res = (val&0xFF)>>1 | carryIn<<7
		} else {
			res = val>>1 | carryIn<<15
		}
		c.setFlag(isa.FlagC, val&1 != 0)
		c.setFlag(isa.FlagV, false)
		c.setNZ(res, in.Byte)
		if v := c.writeLoc(loc, res, in.Byte); v != nil {
			return mkFault(v)
		}
	case isa.RRA:
		var res uint16
		if in.Byte {
			res = (val&0xFF)>>1 | val&0x80
		} else {
			res = val>>1 | val&0x8000
		}
		c.setFlag(isa.FlagC, val&1 != 0)
		c.setFlag(isa.FlagV, false)
		c.setNZ(res, in.Byte)
		if v := c.writeLoc(loc, res, in.Byte); v != nil {
			return mkFault(v)
		}
	case isa.SWPB:
		res := val<<8 | val>>8
		if v := c.writeLoc(loc, res, false); v != nil {
			return mkFault(v)
		}
	case isa.SXT:
		res := uint16(int16(int8(val)))
		c.setNZ(res, false)
		c.setFlag(isa.FlagC, res != 0)
		c.setFlag(isa.FlagV, false)
		if v := c.writeLoc(loc, res, false); v != nil {
			return mkFault(v)
		}
	case isa.PUSH:
		c.Regs[isa.SP] -= 2
		var v *mem.Violation
		if in.Byte {
			v = c.Bus.Write8(c.Regs[isa.SP], uint8(val))
		} else {
			v = c.Bus.Write16(c.Regs[isa.SP], val)
		}
		if v != nil {
			return mkFault(v)
		}
	case isa.CALL:
		if v := c.push(c.PC()); v != nil {
			return mkFault(v)
		}
		c.SetPC(val)
	}
	return nil
}

func (c *CPU) execTwoOperand(pc, size uint16, in isa.Instr) *Fault {
	mkFault := func(v *mem.Violation) *Fault { return &Fault{PC: pc, Violation: v} }

	// The source extension word (if any) always follows the opcode word, and
	// the destination extension word (if any) is always the LAST word of the
	// encoding — so both addresses fall out of pc and size, with no
	// NeedsExtWord probing. When an operand has no extension word its
	// address is simply never read.
	srcExt := pc + 2
	dstExt := pc + size - 2

	src, _, viol := c.resolveSrc(in, srcExt)
	if viol != nil {
		return mkFault(viol)
	}

	needRead := in.Op != isa.MOV
	dst, loc, viol := c.resolveDst(in, dstExt, needRead)
	if viol != nil {
		return mkFault(viol)
	}

	write := true
	var res uint16
	switch in.Op {
	case isa.MOV:
		res = src
	case isa.ADD:
		res = c.addCore(dst, src, 0, in.Byte)
	case isa.ADDC:
		ci := uint16(0)
		if c.flag(isa.FlagC) {
			ci = 1
		}
		res = c.addCore(dst, src, ci, in.Byte)
	case isa.SUB, isa.CMP:
		res = c.addCore(dst, ^src, 1, in.Byte)
		write = in.Op == isa.SUB
	case isa.SUBC:
		ci := uint16(0)
		if c.flag(isa.FlagC) {
			ci = 1
		}
		res = c.addCore(dst, ^src, ci, in.Byte)
	case isa.DADD:
		res = c.dadd(dst, src, in.Byte)
	case isa.BIT, isa.AND:
		res = dst & src
		c.logicFlags(res, in.Byte, false)
		write = in.Op == isa.AND
	case isa.BIC:
		res = dst &^ src
	case isa.BIS:
		res = dst | src
	case isa.XOR:
		res = dst ^ src
		sign := uint16(0x8000)
		if in.Byte {
			sign = 0x80
		}
		c.logicFlags(res, in.Byte, dst&src&sign != 0)
	}
	if write {
		if v := c.writeLoc(loc, res, in.Byte); v != nil {
			return mkFault(v)
		}
	}
	return nil
}

// dadd performs the BCD addition of DADD.
func (c *CPU) dadd(dst, src uint16, byteOp bool) uint16 {
	digits := 4
	if byteOp {
		digits = 2
	}
	carry := uint16(0)
	if c.flag(isa.FlagC) {
		carry = 1
	}
	var res uint16
	for i := 0; i < digits; i++ {
		d := dst>>(4*i)&0xF + src>>(4*i)&0xF + carry
		if d > 9 {
			d -= 10
			carry = 1
		} else {
			carry = 0
		}
		res |= d << (4 * i)
	}
	// DADD leaves V untouched; compose C/N/Z into one SR store.
	sr := c.Regs[isa.SR] &^ (isa.FlagC | isa.FlagZ | isa.FlagN)
	if carry != 0 {
		sr |= isa.FlagC
	}
	sign := uint16(0x8000)
	if byteOp {
		sign = 0x80
	}
	if res&sign != 0 {
		sr |= isa.FlagN
	}
	if res == 0 {
		sr |= isa.FlagZ
	}
	c.Regs[isa.SR] = sr
	return res
}
