package cpu

// MPY32 models the MSP430FR5969's memory-mapped hardware multiplier: write
// the operands, read the 32-bit product. The compiler lowers 16x16 multiply
// through it (three MOV instructions, ~11 cycles) exactly as TI's compilers
// do, which keeps compute-heavy benchmarks realistically fast relative to
// the isolation checks around them.
//
// Register map (the FR5969 subset we use):
//
//	0x04C0 MPY    unsigned operand 1
//	0x04C2 MPYS   signed operand 1 (same low-word product)
//	0x04C8 OP2    operand 2; writing it triggers the multiply
//	0x04CA RESLO  product bits 15..0
//	0x04CC RESHI  product bits 31..16
const (
	MPYBase  uint16 = 0x04C0
	MPYOp1   uint16 = 0x04C0
	MPYOp1S  uint16 = 0x04C2
	MPYOp2   uint16 = 0x04C8
	MPYResLo uint16 = 0x04CA
	MPYResHi uint16 = 0x04CC
)

// MPY32 implements mem.Device.
type MPY32 struct {
	op1    uint16
	signed bool
	res    uint32
}

// DeviceName implements mem.Device.
func (m *MPY32) DeviceName() string { return "mpy32" }

// ReadWord implements mem.Device.
func (m *MPY32) ReadWord(addr uint16) uint16 {
	switch addr {
	case MPYOp1, MPYOp1S:
		return m.op1
	case MPYResLo:
		return uint16(m.res)
	case MPYResHi:
		return uint16(m.res >> 16)
	}
	return 0
}

// WriteWord implements mem.Device.
func (m *MPY32) WriteWord(addr uint16, v uint16) {
	switch addr {
	case MPYOp1:
		m.op1 = v
		m.signed = false
	case MPYOp1S:
		m.op1 = v
		m.signed = true
	case MPYOp2:
		if m.signed {
			m.res = uint32(int32(int16(m.op1)) * int32(int16(v)))
		} else {
			m.res = uint32(m.op1) * uint32(v)
		}
	}
}
