package cpu

// TimerA models the hardware timer the paper used to measure benchmark
// iterations: a free-running counter driven by the CPU clock through a
// divide-by-16 prescaler, giving the 16-cycle measurement precision quoted
// in the paper's Section 4.2.
//
// Register map (word registers, offsets from TimerBase):
//
//	+0x00 TACTL  control (prescaler select; only /16 and /1 are modeled)
//	+0x10 TAR    current count
const (
	// TimerBase is the base address of the timer register block.
	TimerBase uint16 = 0x0340
	// TimerTACTL is the control register address.
	TimerTACTL = TimerBase
	// TimerTAR is the counter register address.
	TimerTAR = TimerBase + 0x10

	// TimerPrescale is the default clock divider.
	TimerPrescale = 16
)

// TACTL bits.
const (
	TimerCtlDiv1 uint16 = 1 << 0 // run at CPU clock (no prescale)
)

// TimerA implements mem.Device.
type TimerA struct {
	c    *CPU
	ctl  uint16
	bias uint64 // cycle count at last reset, so TAR can be zeroed
}

// DeviceName implements mem.Device.
func (t *TimerA) DeviceName() string { return "timer_a" }

// ReadWord implements mem.Device.
func (t *TimerA) ReadWord(addr uint16) uint16 {
	switch addr {
	case TimerTACTL:
		return t.ctl
	case TimerTAR:
		div := uint64(TimerPrescale)
		if t.ctl&TimerCtlDiv1 != 0 {
			div = 1
		}
		return uint16((t.c.Cycles - t.bias) / div)
	}
	return 0
}

// WriteWord implements mem.Device. Writing TAR resets the count (any value).
func (t *TimerA) WriteWord(addr uint16, v uint16) {
	switch addr {
	case TimerTACTL:
		t.ctl = v
	case TimerTAR:
		t.bias = t.c.Cycles
	}
}
