package cpu

import (
	"fmt"
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// runJIT assembles instrs at 0x4400 and runs them under Run(budget) with the
// superblock JIT on or off. Unlike runEngine it attaches NO access profiler by
// default: a profiler lawfully disables block execution (the certificate fast
// path carries it), so profiled runs never exercise compiled code. withTrace
// turns the profiler on for the runs that pin exactly that deferral.
func runJIT(t *testing.T, jit bool, budget uint64, withTrace bool, prep func(*CPU), instrs ...isa.Instr) engineResult {
	t.Helper()
	defer isa.SetJIT(true)
	isa.SetJIT(jit)
	bus := mem.NewBus()
	c := New(bus)
	addr := uint16(0x4400)
	for _, in := range instrs {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	c.UseProgram(isa.Predecode(bus, []isa.TextRange{{Lo: 0x4400, Hi: addr}}))
	if jit && c.jit == nil {
		t.Fatal("JIT enabled but no block plan attached to the probe program")
	}
	trace := ""
	if withTrace {
		bus.OnAccess = func(a mem.Access) {
			trace += fmt.Sprintf("%v:%04X:%04X;", a.Kind, a.Addr, a.Value)
		}
	}
	if prep != nil {
		prep(c)
	}
	stop, fault := c.Run(budget)
	r, w, f := bus.Stats()
	res := engineResult{
		stop: stop, regs: c.Regs, cycles: c.Cycles, insns: c.Insns,
		reads: r, writes: w, fetches: f, halted: c.Halted, exit: c.ExitCode,
		trace: trace,
	}
	if fault != nil {
		res.fault = fault.Error()
	}
	return res
}

// compareJIT runs the program compiled and interpreted and fails on any
// observable difference: stop reason, fault, all sixteen registers, cycle and
// instruction counts, and the read/write/fetch bus statistics.
func compareJIT(t *testing.T, budget uint64, prep func(*CPU), instrs ...isa.Instr) {
	t.Helper()
	interp := runJIT(t, false, budget, false, prep, instrs...)
	jit := runJIT(t, true, budget, false, prep, instrs...)
	if interp != jit {
		t.Errorf("budget %d: state diverged\n  interp: %+v\n  jit:    %+v", budget, interp, jit)
	}
}

// jitProgram is dense in everything the lifter optimizes: constant MOVs
// (immediate folding), ALU chains whose flags die before use (dead-flag
// elimination), absolute-address stores and loads (address folding, segment
// splits after every store), and a CMP+Jcc loop condition terminating each
// block. Exit code in R4 via the debug port.
var jitProgram = []isa.Instr{
	{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)},
	{Op: isa.MOV, Src: isa.Imm(7), Dst: isa.RegOp(isa.R6)},
	// loop:
	{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(0x2000)}, // folded store, splits the segment
	{Op: isa.XOR, Src: isa.Abs(0x2000), Dst: isa.RegOp(isa.R7)}, // folded load
	// Pure register chain with no memory access until the CMP: the first
	// three flag stores are provably dead (each overwritten before any
	// fault could observe them) and get elided.
	{Op: isa.ADD, Src: isa.Imm(3), Dst: isa.RegOp(isa.R4)},
	{Op: isa.XOR, Src: isa.RegOp(isa.R6), Dst: isa.RegOp(isa.R5)},
	{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R6)},
	{Op: isa.CMP, Src: isa.Imm(60), Dst: isa.RegOp(isa.R4)}, // live: JL reads the flags
	{Op: isa.JL, Dst: isa.Operand{X: 0xFFF5}},               // -11 words, back to loop
	{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(PortHalt)},
}

// TestJITBudgetSweep runs the block-dense loop under every cycle budget from
// 0 to past completion: each budget lands the stop at a different instruction
// — most of them inside a compiled segment — and the compiled engine must
// stop in exactly the same state the interpreter does (the budget-deopt
// atomicity property: a segment only runs when the interpreter would have
// retired every step of it too).
func TestJITBudgetSweep(t *testing.T) {
	for budget := uint64(0); budget <= 900; budget++ {
		compareJIT(t, budget, nil, jitProgram...)
		if t.Failed() {
			t.Fatalf("first divergence at budget %d", budget)
		}
	}
	res := runJIT(t, true, 1_000_000, false, nil, jitProgram...)
	if !res.halted || res.exit != 60 {
		t.Fatalf("loop did not complete: %+v", res)
	}
}

// TestJITJumpIntoBlockInterior pins the overlapping-block rule: a branch
// target inside a longer straight-line run starts a block of its own, so
// entering mid-run executes compiled code from that address — identically to
// interpreting from it.
func TestJITJumpIntoBlockInterior(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.MOV, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)},
		{Op: isa.JMP, Dst: isa.Operand{X: 4}}, // into the interior of the run below
		// A straight-line run; the jump lands on its third instruction.
		{Op: isa.ADD, Src: isa.Imm(0x100), Dst: isa.RegOp(isa.R4)}, // skipped
		{Op: isa.ADD, Src: isa.Imm(0x200), Dst: isa.RegOp(isa.R4)}, // skipped
		{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R5)},     // jump target
		{Op: isa.ADD, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R4)},
		{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(PortHalt)},
	}
	res := runJIT(t, true, 1_000_000, false, nil, prog...)
	if !res.halted || res.exit != 6 {
		t.Fatalf("interior entry executed wrong path: %+v", res)
	}
	for budget := uint64(0); budget <= 40; budget++ {
		compareJIT(t, budget, nil, prog...)
	}
}

// TestJITInterruptMidBlock enables GIE partway through a block while an
// interrupt is pending: writing SR is a barrier that ends its segment, and
// the pending-IRQ check at the next segment boundary must deopt so the
// interpreter services the interrupt exactly where it would have unjitted.
func TestJITInterruptMidBlock(t *testing.T) {
	const vec = 0xFFF2
	prog := []isa.Instr{
		{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R6)},
		{Op: isa.MOV, Src: isa.Imm(uint16(isa.FlagGIE)), Dst: isa.RegOp(isa.SR)}, // barrier mid-block
		{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R6)},                   // IRQ services before this
		{Op: isa.MOV, Src: isa.RegOp(isa.R6), Dst: isa.Abs(PortHalt)},
	}
	isr := []isa.Instr{
		{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R7)},
		{Op: isa.RETI},
	}
	all := append(append([]isa.Instr{}, prog...), isr...)
	isrAddr := uint16(0x4400)
	for _, in := range prog {
		isrAddr += in.Size()
	}
	prep := func(c *CPU) {
		c.Bus.Poke16(vec, isrAddr)
		c.RequestInterrupt(vec)
	}
	for budget := uint64(0); budget <= 60; budget++ {
		compareJIT(t, budget, prep, all...)
	}
	res := runJIT(t, true, 1_000_000, false, prep, all...)
	if res.regs[isa.R7] != 1 {
		t.Fatalf("ISR did not run exactly once: R7 = %d", res.regs[isa.R7])
	}
	if !res.halted || res.exit != 2 {
		t.Fatalf("main line did not complete after the ISR: %+v", res)
	}
}

// TestJITSelfModifyMidBlock makes an early store in a block overwrite a later
// instruction of the same block (SP aimed into the code): the store ends its
// segment, and the dirty-span re-probe before the next segment must deopt to
// the interpreter, which live-decodes the NEW instruction.
func TestJITSelfModifyMidBlock(t *testing.T) {
	patch := isa.MustEncode(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R7)})
	if len(patch) != 1 {
		t.Fatalf("patch instruction must be one word, got %d", len(patch))
	}
	prog := []isa.Instr{
		{Op: isa.ADD, Src: isa.Imm(0), Dst: isa.RegOp(isa.R6)},
		{Op: isa.PUSH, Src: isa.RegOp(isa.R4)}, // writes 0x4404: replaces PUSH R5
		{Op: isa.PUSH, Src: isa.RegOp(isa.R5)}, // becomes MOV R4, R7
		{Op: isa.MOV, Src: isa.RegOp(isa.R7), Dst: isa.Abs(PortHalt)},
	}
	prep := func(c *CPU) {
		c.SetSP(0x4406)
		c.Regs[isa.R4] = patch[0]
	}
	for budget := uint64(0); budget <= 30; budget++ {
		compareJIT(t, budget, prep, prog...)
	}
	res := runJIT(t, true, 1_000_000, false, prep, prog...)
	if !res.halted || res.exit != patch[0] {
		t.Fatalf("overwritten instruction did not execute: %+v", res)
	}
}

// TestJITDefersToProfiler pins the entry rule: with a bus access profiler
// attached, compiled blocks never run (the whole-span certificate check
// carries the profiler gate), so the access trace is identical to the
// interpreter's by construction.
func TestJITDefersToProfiler(t *testing.T) {
	interp := runJIT(t, false, 1_000_000, true, nil, jitProgram...)
	jit := runJIT(t, true, 1_000_000, true, nil, jitProgram...)
	if interp != jit {
		t.Fatalf("profiled runs diverged\n  interp: %+v\n  jit:    %+v", interp, jit)
	}
	if interp.trace == "" {
		t.Fatal("profiler captured no accesses")
	}
}

// TestJITBareStepSingleInstruction pins the Step contract: outside Run the
// fuse limit is zero, which gates block execution exactly like fusion, so a
// bare Step retires exactly one instruction even on a block head.
func TestJITBareStepSingleInstruction(t *testing.T) {
	defer isa.SetJIT(true)
	isa.SetJIT(true)
	c, _ := loadProgram(t, true, fetchProgram...)
	if c.jit == nil {
		t.Fatal("no block plan attached to the probe program")
	}
	for i := range fetchProgram {
		if f := c.Step(); f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
		if c.Insns != uint64(i+1) {
			t.Fatalf("after %d bare Steps: %d instructions retired", i+1, c.Insns)
		}
	}
}
