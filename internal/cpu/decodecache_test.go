package cpu

import (
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// loadProgram assembles instrs at 0x4400, attaches a predecode cache over
// them when cached is true, and returns the CPU plus the end of text.
func loadProgram(t *testing.T, cached bool, instrs ...isa.Instr) (*CPU, uint16) {
	t.Helper()
	bus := mem.NewBus()
	c := New(bus)
	addr := uint16(0x4400)
	for _, in := range instrs {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	if cached {
		c.UseProgram(isa.Predecode(bus, []isa.TextRange{{Lo: 0x4400, Hi: addr}}))
		if DecodeCacheEnabled() && c.Program() == nil {
			t.Fatal("UseProgram did not attach")
		}
	}
	return c, addr
}

// fetchProgram is a small mixed-size instruction sequence: 1-, 2- and 3-word
// encodings, so the per-word accounting is exercised on every shape.
var fetchProgram = []isa.Instr{
	{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(isa.R4)},    // 2 words
	{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R5)},  // 1 word
	{Op: isa.MOV, Src: isa.Imm(0x2222), Dst: isa.Abs(0x2000)},      // 3 words
	{Op: isa.XOR, Src: isa.Abs(0x2000), Dst: isa.RegOp(isa.R5)},    // 2 words
	{Op: isa.PUSH, Src: isa.RegOp(isa.R5)},                         // 1 word
	{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.R6)}, // 1 word
}

// TestFetchAccounting asserts the satellite fix: on both the cached and the
// live-decode path, Bus.Stats() counts each instruction word exactly once —
// the total equals the sum of the executed encodings' word counts.
func TestFetchAccounting(t *testing.T) {
	wantWords := uint64(0)
	for _, in := range fetchProgram {
		wantWords += uint64(in.Words())
	}
	for _, cached := range []bool{false, true} {
		name := "slow"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			c, _ := loadProgram(t, cached, fetchProgram...)
			for i := range fetchProgram {
				if f := c.Step(); f != nil {
					t.Fatalf("step %d: %v", i, f)
				}
			}
			_, _, fetches := c.Bus.Stats()
			if fetches != wantWords {
				t.Errorf("fetches = %d, want %d (one per instruction word)", fetches, wantWords)
			}
			if c.Insns != uint64(len(fetchProgram)) {
				t.Errorf("insns = %d, want %d", c.Insns, len(fetchProgram))
			}
		})
	}
}

// TestCachedPathMatchesSlowPath runs the same program on both paths and
// compares the complete observable machine state: registers, cycles,
// instruction count, bus statistics, and the per-access profile.
func TestCachedPathMatchesSlowPath(t *testing.T) {
	type result struct {
		regs          [isa.NumRegs]uint16
		cycles, insns uint64
		reads, writes uint64
		fetches       uint64
		accesses      []mem.Access
	}
	exec := func(cached bool) result {
		c, _ := loadProgram(t, cached, fetchProgram...)
		var accesses []mem.Access
		c.Bus.OnAccess = func(a mem.Access) { accesses = append(accesses, a) }
		for i := 0; i < len(fetchProgram); i++ {
			if f := c.Step(); f != nil {
				t.Fatalf("cached=%v step %d: %v", cached, i, f)
			}
		}
		r, w, f := c.Bus.Stats()
		return result{c.Regs, c.Cycles, c.Insns, r, w, f, accesses}
	}
	slow, fast := exec(false), exec(true)
	if slow.regs != fast.regs || slow.cycles != fast.cycles || slow.insns != fast.insns ||
		slow.reads != fast.reads || slow.writes != fast.writes || slow.fetches != fast.fetches {
		t.Errorf("state diverged:\n  slow: %+v\n  fast: %+v", slow, fast)
	}
	if len(slow.accesses) != len(fast.accesses) {
		t.Fatalf("access trace length: slow %d, fast %d", len(slow.accesses), len(fast.accesses))
	}
	for i := range slow.accesses {
		if slow.accesses[i] != fast.accesses[i] {
			t.Errorf("access %d: slow %+v, fast %+v", i, slow.accesses[i], fast.accesses[i])
		}
	}
}

// TestCachedSelfModify pokes a cached instruction's extension word through
// the CHECKED write path (a store the program itself could execute) and
// checks the re-executed instruction uses the new bytes.
func TestCachedSelfModify(t *testing.T) {
	c, _ := loadProgram(t, true,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1111), Dst: isa.RegOp(isa.R4)},
	)
	if f := c.Step(); f != nil {
		t.Fatal(f)
	}
	if c.Regs[isa.R4] != 0x1111 {
		t.Fatalf("R4 = %04X, want 1111", c.Regs[isa.R4])
	}
	// Overwrite the immediate's extension word (0x4402) via a checked write,
	// as self-modifying code would, then re-execute from 0x4400.
	if v := c.Bus.Write16(0x4402, 0x2222); v != nil {
		t.Fatal(v)
	}
	c.SetPC(0x4400)
	if f := c.Step(); f != nil {
		t.Fatal(f)
	}
	if c.Regs[isa.R4] != 0x2222 {
		t.Fatalf("after self-modify: R4 = %04X, want 2222 (stale cache)", c.Regs[isa.R4])
	}
}

// TestUseProgramDisabled checks the global escape hatch: with the decode
// cache disabled, UseProgram is a no-op and execution still works.
func TestUseProgramDisabled(t *testing.T) {
	SetDecodeCache(false)
	defer SetDecodeCache(true)
	c, _ := loadProgram(t, true, fetchProgram...)
	if c.Program() != nil {
		t.Fatal("cache attached despite SetDecodeCache(false)")
	}
	for i := range fetchProgram {
		if f := c.Step(); f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
	}
}
