package cpu

import (
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// Deeper semantic coverage: byte-mode behaviour of every ALU operation,
// multi-word carry chains, BCD counters, and the MPY32 multiplier.

func TestByteModeMemoryRMW(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x7FFF), Dst: isa.Abs(0x1C00)},
		isa.Instr{Op: isa.ADD, Byte: true, Src: isa.Imm(1), Dst: isa.Abs(0x1C00)},
	)
	run(t, c, 2)
	// Byte RMW touches only the low byte: 0xFF+1 wraps to 0x00, high byte
	// untouched.
	if got := c.Bus.Peek16(0x1C00); got != 0x7F00 {
		t.Fatalf("byte RMW = %04X, want 7F00", got)
	}
	if !c.flag(isa.FlagC) || !c.flag(isa.FlagZ) {
		t.Fatal("byte wrap should set C and Z")
	}
}

func TestMultiWordAddWithCarry(t *testing.T) {
	// 32-bit add: 0x0001FFFF + 0x00000001 = 0x00020000 via ADD/ADDC.
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(isa.R4)}, // low
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0001), Dst: isa.RegOp(isa.R5)}, // high
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.ADDC, Src: isa.Imm(0), Dst: isa.RegOp(isa.R5)},
	)
	run(t, c, 4)
	if c.Regs[isa.R4] != 0 || c.Regs[isa.R5] != 2 {
		t.Fatalf("32-bit add = %04X:%04X, want 0002:0000", c.Regs[isa.R5], c.Regs[isa.R4])
	}
}

func TestMultiWordSubWithBorrow(t *testing.T) {
	// 0x00020000 - 1 = 0x0001FFFF via SUB/SUBC.
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0000), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0002), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.SUB, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.SUBC, Src: isa.Imm(0), Dst: isa.RegOp(isa.R5)},
	)
	run(t, c, 4)
	if c.Regs[isa.R4] != 0xFFFF || c.Regs[isa.R5] != 1 {
		t.Fatalf("32-bit sub = %04X:%04X, want 0001:FFFF", c.Regs[isa.R5], c.Regs[isa.R4])
	}
}

func TestDADDAsDecimalCounter(t *testing.T) {
	// Increment 0x0099 (BCD 99) by 1 -> 0x0100 (BCD 100).
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0099), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.BIC, Src: isa.Imm(isa.FlagC), Dst: isa.RegOp(isa.SR)},
		isa.Instr{Op: isa.DADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		// Chain a second word: carry-out of 0x9999 + 1.
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x9999), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.BIC, Src: isa.Imm(isa.FlagC), Dst: isa.RegOp(isa.SR)},
		isa.Instr{Op: isa.DADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.R6)},
		isa.Instr{Op: isa.DADD, Src: isa.Imm(0), Dst: isa.RegOp(isa.R6)}, // DADC
	)
	run(t, c, 8)
	if c.Regs[isa.R4] != 0x0100 {
		t.Fatalf("BCD 99+1 = %04X", c.Regs[isa.R4])
	}
	if c.Regs[isa.R5] != 0x0000 || c.Regs[isa.R6] != 1 {
		t.Fatalf("BCD 9999+1 = %04X carry %04X", c.Regs[isa.R5], c.Regs[isa.R6])
	}
}

func TestBITSetsFlagsWithoutWriting(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x00F0), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.BIT, Src: isa.Imm(0x0010), Dst: isa.RegOp(isa.R4)},
	)
	run(t, c, 2)
	if c.Regs[isa.R4] != 0x00F0 {
		t.Fatal("BIT wrote its destination")
	}
	if c.flag(isa.FlagZ) || !c.flag(isa.FlagC) {
		t.Fatal("BIT nonzero: want Z=0 C=1")
	}
}

func TestRRCByteMode(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0001), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.BIS, Src: isa.Imm(isa.FlagC), Dst: isa.RegOp(isa.SR)},
		isa.Instr{Op: isa.RRC, Byte: true, Src: isa.RegOp(isa.R4)},
	)
	run(t, c, 3)
	// Carry rotates into bit 7 of the byte, bit 0 out to carry.
	if c.Regs[isa.R4] != 0x0080 {
		t.Fatalf("RRC.B = %04X, want 0080", c.Regs[isa.R4])
	}
	if !c.flag(isa.FlagC) {
		t.Fatal("carry out lost")
	}
}

func TestSXTByteInMemory(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0080), Dst: isa.Abs(0x1C10)},
		isa.Instr{Op: isa.SXT, Src: isa.Abs(0x1C10)},
	)
	run(t, c, 2)
	if got := c.Bus.Peek16(0x1C10); got != 0xFF80 {
		t.Fatalf("SXT &mem = %04X, want FF80", got)
	}
}

func TestMPY32Device(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(1234), Dst: isa.Abs(MPYOp1)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(567), Dst: isa.Abs(MPYOp2)},
		isa.Instr{Op: isa.MOV, Src: isa.Abs(MPYResLo), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Abs(MPYResHi), Dst: isa.RegOp(isa.R5)},
	)
	run(t, c, 4)
	want := uint32(1234) * 567
	got := uint32(c.Regs[isa.R4]) | uint32(c.Regs[isa.R5])<<16
	if got != want {
		t.Fatalf("MPY32 = %d, want %d", got, want)
	}
	// Signed path: -3 * 5 = -15 across the full 32 bits.
	c2 := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xFFFD), Dst: isa.Abs(MPYOp1S)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(5), Dst: isa.Abs(MPYOp2)},
		isa.Instr{Op: isa.MOV, Src: isa.Abs(MPYResLo), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Abs(MPYResHi), Dst: isa.RegOp(isa.R5)},
	)
	run(t, c2, 4)
	if c2.Regs[isa.R4] != 0xFFF1 || c2.Regs[isa.R5] != 0xFFFF {
		t.Fatalf("signed MPY = %04X:%04X, want FFFF:FFF1", c2.Regs[isa.R5], c2.Regs[isa.R4])
	}
}

func TestJNJumpOnNegative(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)}, // N=1
		isa.Instr{Op: isa.JN, Dst: isa.Operand{Mode: isa.ModeNone, X: 2}},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0BAD), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(isa.R6)},
	)
	run(t, c, 4)
	if c.Regs[isa.R5] == 0x0BAD || c.Regs[isa.R6] != 1 {
		t.Fatal("JN did not jump on negative")
	}
}

func TestStackedInterrupts(t *testing.T) {
	bus := mem.NewBus()
	c := New(bus)
	place := func(addr uint16, ins ...isa.Instr) {
		for _, in := range ins {
			for _, w := range isa.MustEncode(in) {
				bus.Poke16(addr, w)
				addr += 2
			}
		}
	}
	place(0x4400,
		isa.Instr{Op: isa.BIS, Src: isa.Imm(8), Dst: isa.RegOp(isa.SR)},
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(PortHalt)},
	)
	place(0x5000,
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R15)},
		isa.Instr{Op: isa.BIS, Src: isa.Imm(8), Dst: isa.RegOp(isa.SR)}, // re-enable in handler
		isa.Instr{Op: isa.RETI},
	)
	bus.Poke16(0xFFF2, 0x5000)
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	if f := c.Step(); f != nil { // EINT
		t.Fatal(f)
	}
	c.RequestInterrupt(0xFFF2)
	c.RequestInterrupt(0xFFF2)
	reason, f := c.Run(10_000)
	if f != nil || reason != StopHalt {
		t.Fatalf("%v %v", reason, f)
	}
	if c.Regs[isa.R15] != 2 {
		t.Fatalf("handler ran %d times, want 2", c.Regs[isa.R15])
	}
	if c.SP() != 0x2400 {
		t.Fatalf("SP unbalanced: %04X", c.SP())
	}
}

func TestRunBudgetStopsMidLoop(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.JMP, Dst: isa.Operand{Mode: isa.ModeNone, X: 0xFFFF}}, // self-loop
	)
	reason, f := c.Run(100)
	if f != nil || reason != StopBudget {
		t.Fatalf("%v %v", reason, f)
	}
	if c.Cycles < 100 {
		t.Fatalf("stopped early at %d cycles", c.Cycles)
	}
}

func TestResetClearsState(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm('x'), Dst: isa.Abs(PortConsole)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(3), Dst: isa.Abs(PortHalt)},
	)
	c.Run(100)
	c.Reset()
	if c.Cycles != 0 || c.Insns != 0 || c.Halted || len(c.Console) != 0 || c.ExitCode != 0 {
		t.Fatal("reset incomplete")
	}
}
