package cpu

import (
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// load assembles instrs to addr and points PC at them, SP at top of SRAM.
func load(t *testing.T, instrs ...isa.Instr) *CPU {
	t.Helper()
	bus := mem.NewBus()
	c := New(bus)
	addr := uint16(0x4400)
	for _, in := range instrs {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	c.SetPC(0x4400)
	c.SetSP(0x2400) // top of SRAM
	return c
}

// run steps n instructions, failing the test on any fault.
func run(t *testing.T, c *CPU, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if f := c.Step(); f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
	}
}

func TestMovAddImmediate(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.ADD, Src: isa.Imm(0x0101), Dst: isa.RegOp(isa.R4)},
	)
	run(t, c, 2)
	if got := c.Regs[isa.R4]; got != 0x1335 {
		t.Fatalf("R4 = %04X, want 1335", got)
	}
}

func TestAddFlags(t *testing.T) {
	cases := []struct {
		a, b       uint16
		c, z, n, v bool
	}{
		{0x0001, 0x0001, false, false, false, false},
		{0xFFFF, 0x0001, true, true, false, false},  // carry + zero
		{0x7FFF, 0x0001, false, false, true, true},  // signed overflow
		{0x8000, 0x8000, true, true, false, true},   // neg+neg overflow to 0
		{0x8000, 0x0001, false, false, true, false}, // negative result
	}
	for _, cse := range cases {
		c := load(t,
			isa.Instr{Op: isa.MOV, Src: isa.Imm(cse.a), Dst: isa.RegOp(isa.R4)},
			isa.Instr{Op: isa.ADD, Src: isa.Imm(cse.b), Dst: isa.RegOp(isa.R4)},
		)
		run(t, c, 2)
		if c.flag(isa.FlagC) != cse.c || c.flag(isa.FlagZ) != cse.z ||
			c.flag(isa.FlagN) != cse.n || c.flag(isa.FlagV) != cse.v {
			t.Errorf("ADD %04X+%04X: flags C=%v Z=%v N=%v V=%v, want C=%v Z=%v N=%v V=%v",
				cse.a, cse.b, c.flag(isa.FlagC), c.flag(isa.FlagZ), c.flag(isa.FlagN), c.flag(isa.FlagV),
				cse.c, cse.z, cse.n, cse.v)
		}
	}
}

func TestSubAndCmpFlags(t *testing.T) {
	// CMP sets flags like SUB but leaves dst alone. C means "no borrow".
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.CMP, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)},
	)
	run(t, c, 2)
	if !c.flag(isa.FlagZ) || !c.flag(isa.FlagC) {
		t.Fatal("CMP equal: want Z=1 C=1")
	}
	if c.Regs[isa.R4] != 5 {
		t.Fatal("CMP modified destination")
	}

	c = load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.SUB, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)},
	)
	run(t, c, 2)
	if c.Regs[isa.R4] != 0xFFFF {
		t.Fatalf("4-5 = %04X", c.Regs[isa.R4])
	}
	if c.flag(isa.FlagC) {
		t.Fatal("borrow should clear C")
	}
	if !c.flag(isa.FlagN) {
		t.Fatal("negative result should set N")
	}
}

func TestByteOpsClearHighByte(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xABCD), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x00FF), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.ADD, Byte: true, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R4)},
	)
	run(t, c, 3)
	if got := c.Regs[isa.R4]; got != 0x00CC {
		t.Fatalf("ADD.B result = %04X, want 00CC (high byte cleared)", got)
	}
	if !c.flag(isa.FlagC) {
		t.Fatal("byte carry not set")
	}
}

func TestLogicalOps(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xF0F0), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.AND, Src: isa.Imm(0x0FF0), Dst: isa.RegOp(isa.R4)}, // 00F0
		isa.Instr{Op: isa.BIS, Src: isa.Imm(0x000F), Dst: isa.RegOp(isa.R4)}, // 00FF
		isa.Instr{Op: isa.BIC, Src: isa.Imm(0x00F0), Dst: isa.RegOp(isa.R4)}, // 000F
		isa.Instr{Op: isa.XOR, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(isa.R4)}, // FFF0
	)
	run(t, c, 5)
	if got := c.Regs[isa.R4]; got != 0xFFF0 {
		t.Fatalf("logical chain = %04X, want FFF0", got)
	}
	if !c.flag(isa.FlagN) || c.flag(isa.FlagZ) {
		t.Fatal("XOR flags wrong")
	}
}

func TestShiftsAndRotates(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x8003), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.RRA, Src: isa.RegOp(isa.R4)}, // C001, C=1
		isa.Instr{Op: isa.RRC, Src: isa.RegOp(isa.R4)}, // E000, C=1
	)
	run(t, c, 3)
	if got := c.Regs[isa.R4]; got != 0xE000 {
		t.Fatalf("RRA/RRC chain = %04X, want E000", got)
	}
	if !c.flag(isa.FlagC) {
		t.Fatal("carry lost")
	}
}

func TestSwpbSxt(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1280), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.SWPB, Src: isa.RegOp(isa.R4)}, // 8012
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0080), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.SXT, Src: isa.RegOp(isa.R5)}, // FF80
	)
	run(t, c, 4)
	if c.Regs[isa.R4] != 0x8012 {
		t.Fatalf("SWPB = %04X", c.Regs[isa.R4])
	}
	if c.Regs[isa.R5] != 0xFF80 {
		t.Fatalf("SXT = %04X", c.Regs[isa.R5])
	}
}

func TestDADD(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0199), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.BIC, Src: isa.Imm(isa.FlagC), Dst: isa.RegOp(isa.SR)},
		isa.Instr{Op: isa.DADD, Src: isa.Imm(0x0001), Dst: isa.RegOp(isa.R4)},
	)
	run(t, c, 3)
	if got := c.Regs[isa.R4]; got != 0x0200 {
		t.Fatalf("DADD 0199+1 = %04X, want 0200 (BCD)", got)
	}
}

func TestMemoryOperands(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xBEEF), Dst: isa.Abs(0x1C00)},
		isa.Instr{Op: isa.MOV, Src: isa.Abs(0x1C00), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1C00), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.Ind(isa.R5), Dst: isa.RegOp(isa.R6)},
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.Idx(0, isa.R5)},
	)
	run(t, c, 5)
	if c.Regs[isa.R4] != 0xBEEF || c.Regs[isa.R6] != 0xBEEF {
		t.Fatalf("loads = %04X %04X", c.Regs[isa.R4], c.Regs[isa.R6])
	}
	if got := c.Bus.Peek16(0x1C00); got != 0xBEF0 {
		t.Fatalf("indexed RMW = %04X, want BEF0", got)
	}
}

func TestAutoincrement(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1C00), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.R5), Dst: isa.RegOp(isa.R6)},
		isa.Instr{Op: isa.MOV, Byte: true, Src: isa.IndInc(isa.R5), Dst: isa.RegOp(isa.R7)},
	)
	c.Bus.Poke16(0x1C00, 0x2211)
	c.Bus.Poke16(0x1C02, 0x4433)
	run(t, c, 3)
	if c.Regs[isa.R5] != 0x1C03 {
		t.Fatalf("R5 after word+byte autoinc = %04X, want 1C03", c.Regs[isa.R5])
	}
	if c.Regs[isa.R6] != 0x2211 || c.Regs[isa.R7] != 0x0033 {
		t.Fatalf("loads = %04X %04X", c.Regs[isa.R6], c.Regs[isa.R7])
	}
}

func TestPushPopCallRet(t *testing.T) {
	// CALL a subroutine that increments R4 and returns (RET = MOV @SP+, PC).
	// Layout: 0x4400 CALL #0x4410; 0x4404 MOV #halt; ... sub at 0x4410.
	bus := mem.NewBus()
	c := New(bus)
	place := func(addr uint16, ins ...isa.Instr) uint16 {
		for _, in := range ins {
			for _, w := range isa.MustEncode(in) {
				bus.Poke16(addr, w)
				addr += 2
			}
		}
		return addr
	}
	place(0x4400,
		isa.Instr{Op: isa.CALL, Src: isa.Imm(0x4410)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.Abs(PortHalt)},
	)
	place(0x4410,
		isa.Instr{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)}, // RET
	)
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	reason, f := c.Run(1000)
	if f != nil {
		t.Fatal(f)
	}
	if reason != StopHalt {
		t.Fatalf("stop = %v", reason)
	}
	if c.Regs[isa.R4] != 1 {
		t.Fatalf("R4 = %d", c.Regs[isa.R4])
	}
	if c.SP() != 0x2400 {
		t.Fatalf("SP unbalanced: %04X", c.SP())
	}
}

func TestConditionalJumps(t *testing.T) {
	// Signed comparison: -1 < 1 via JL.
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.CMP, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.JL, Dst: isa.Operand{Mode: isa.ModeNone, X: 2}}, // skip next (2-word MOV)
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0BAD), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x600D), Dst: isa.RegOp(isa.R6)},
	)
	run(t, c, 4) // the 4th executed instruction is the final MOV
	if c.Regs[isa.R5] == 0x0BAD {
		t.Fatal("JL not taken for -1 < 1")
	}
	if c.Regs[isa.R6] != 0x600D {
		t.Fatalf("fallthrough wrong: R6=%04X", c.Regs[isa.R6])
	}
	// Unsigned: 0xFFFF >= 1 via JC (JHS).
	c = load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.CMP, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.JC, Dst: isa.Operand{Mode: isa.ModeNone, X: 2}},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x0BAD), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x600D), Dst: isa.RegOp(isa.R6)},
	)
	run(t, c, 4)
	if c.Regs[isa.R5] == 0x0BAD {
		t.Fatal("JC not taken for unsigned 0xFFFF >= 1")
	}
}

func TestLoopSum(t *testing.T) {
	// R4 = sum(1..10) using a countdown loop.
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(10), Dst: isa.RegOp(isa.R5)},
		// loop: ADD R5, R4 ; SUB #1, R5 ; JNE loop
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.SUB, Src: isa.Imm(1), Dst: isa.RegOp(isa.R5)},
		isa.Instr{Op: isa.JNE, Dst: isa.Operand{Mode: isa.ModeNone, X: 0xFFFD}}, // -3 words
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(PortHalt)},
	)
	reason, f := c.Run(10000)
	if f != nil {
		t.Fatal(f)
	}
	if reason != StopHalt {
		t.Fatalf("stop = %v", reason)
	}
	if c.Regs[isa.R4] != 55 {
		t.Fatalf("sum = %d, want 55", c.Regs[isa.R4])
	}
}

func TestCycleCountsExact(t *testing.T) {
	// MOV #imm, Rn (2) + ADD Rn, Rn (1) + MOV Rn, &abs (4) = 7 cycles.
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(0x1C00)},
	)
	run(t, c, 3)
	if c.Cycles != 7 {
		t.Fatalf("cycles = %d, want 7", c.Cycles)
	}
	if c.Insns != 3 {
		t.Fatalf("insns = %d", c.Insns)
	}
}

func TestHaltAndConsolePorts(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm('H'), Dst: isa.Abs(PortConsole)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm('i'), Dst: isa.Abs(PortConsole)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(42), Dst: isa.Abs(PortHalt)},
	)
	reason, f := c.Run(100)
	if f != nil {
		t.Fatal(f)
	}
	if reason != StopHalt || c.ExitCode != 42 {
		t.Fatalf("reason=%v exit=%d", reason, c.ExitCode)
	}
	if string(c.Console) != "Hi" {
		t.Fatalf("console = %q", c.Console)
	}
}

func TestSyscallHook(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(7), Dst: isa.Abs(PortSyscall)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(PortHalt)},
	)
	var gotID uint16
	c.OnSyscall = func(id uint16) {
		gotID = id
		c.Regs[isa.R12] = 0x1234 // service return value
		c.Cycles += 100          // modeled service cost
	}
	reason, f := c.Run(1000)
	if f != nil || reason != StopHalt {
		t.Fatalf("reason=%v f=%v", reason, f)
	}
	if gotID != 7 || c.Regs[isa.R12] != 0x1234 {
		t.Fatalf("syscall id=%d R12=%04X", gotID, c.Regs[isa.R12])
	}
	if c.Cycles < 100 {
		t.Fatal("service cycles not charged")
	}
}

func TestTimerPrescale(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(TimerTAR)}, // reset timer
		// Burn some cycles: 8 x ADD Rn,Rn (1 cycle each).
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		isa.Instr{Op: isa.MOV, Src: isa.Abs(TimerTAR), Dst: isa.RegOp(isa.R5)},
	)
	run(t, c, 6)
	// 4 cycles of ADDs + 3 of the loading MOV, prescaled by 16 -> TAR reads 0.
	if c.Regs[isa.R5] != 0 {
		t.Fatalf("TAR = %d, want 0 (16-cycle precision)", c.Regs[isa.R5])
	}
	// Cross the 16-cycle boundary.
	c2 := load(t, isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(TimerTAR)})
	run(t, c2, 1)
	for i := 0; i < 20; i++ {
		c2.Bus.Poke16(c2.PC(), isa.MustEncode(isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)})[0])
		run(t, c2, 1)
	}
	if got := c2.Bus.Peek16(TimerTAR); got != 1 {
		t.Fatalf("TAR after 20 cycles = %d, want 1", got)
	}
}

func TestInterruptEntryAndRETI(t *testing.T) {
	bus := mem.NewBus()
	c := New(bus)
	// Main: EINT (BIS #GIE, SR); NOP-ish loop. Handler at 0x5000: set R15, RETI.
	addr := uint16(0x4400)
	for _, in := range []isa.Instr{
		{Op: isa.BIS, Src: isa.Imm(8), Dst: isa.RegOp(isa.SR)}, // GIE (CG: #8)
		{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R4)},
		{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(PortHalt)},
	} {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	addr = 0x5000
	for _, in := range []isa.Instr{
		{Op: isa.MOV, Src: isa.Imm(0x77), Dst: isa.RegOp(isa.R15)},
		{Op: isa.RETI},
	} {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	bus.Poke16(0xFFF2, 0x5000) // vector
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	if f := c.Step(); f != nil { // EINT
		t.Fatal(f)
	}
	c.RequestInterrupt(0xFFF2)
	reason, f := c.Run(1000)
	if f != nil || reason != StopHalt {
		t.Fatalf("reason=%v f=%v", reason, f)
	}
	if c.Regs[isa.R15] != 0x77 {
		t.Fatal("handler did not run")
	}
	if c.SP() != 0x2400 {
		t.Fatalf("SP unbalanced after RETI: %04X", c.SP())
	}
	if c.SRBits()&8 == 0 {
		t.Fatal("GIE not restored by RETI")
	}
}

// blockHigh denies writes above 0x8000 to exercise fault reporting.
type blockHigh struct{}

func (blockHigh) CheckAccess(a mem.Access) *mem.Violation {
	if a.Kind == mem.Write && a.Addr >= 0x8000 {
		return &mem.Violation{Access: a, Rule: "test"}
	}
	return nil
}

func TestFaultAbortsInstruction(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.Abs(0x9000)},
	)
	c.Bus.SetChecker(blockHigh{})
	f := c.Step()
	if f == nil {
		t.Fatal("no fault")
	}
	if f.PC != 0x4400 {
		t.Fatalf("fault PC = %04X", f.PC)
	}
	if f.Violation == nil || f.Violation.Access.Addr != 0x9000 {
		t.Fatalf("violation = %v", f.Violation)
	}
	if c.Bus.Peek16(0x9000) == 1 {
		t.Fatal("blocked write landed")
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	bus := mem.NewBus()
	c := New(bus)
	bus.Poke16(0x4400, 0x0000)
	c.SetPC(0x4400)
	if f := c.Step(); f == nil {
		t.Fatal("illegal instruction did not fault")
	}
}

func TestCPUOffStopsRun(t *testing.T) {
	c := load(t,
		isa.Instr{Op: isa.BIS, Src: isa.Imm(isa.FlagCPUOFF), Dst: isa.RegOp(isa.SR)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(isa.R4)},
	)
	reason, f := c.Run(100)
	if f != nil {
		t.Fatal(f)
	}
	if reason != StopCPUOff {
		t.Fatalf("reason = %v", reason)
	}
	if c.Regs[isa.R4] == 1 {
		t.Fatal("executed past CPUOFF")
	}
}

func TestRecursiveFactorial(t *testing.T) {
	// fact(n): R12 arg/result, recursion depth n. Classic CALL/RET shape:
	//   fact: CMP #1, R12 ; JL base? (n<=1 -> return 1)
	// Simpler: R13 accumulator iterative is boring; do real recursion:
	//   fact: CMP #2, R12 ; JC rec ; MOV #1, R12 ; RET
	//   rec:  PUSH R12 ; SUB #1, R12 ; CALL #fact ; POP R13 ;
	//         ... multiply R12 * R13 via repeated add -> R12 ; RET
	bus := mem.NewBus()
	c := New(bus)
	place := func(addr uint16, ins ...isa.Instr) uint16 {
		for _, in := range ins {
			for _, w := range isa.MustEncode(in) {
				bus.Poke16(addr, w)
				addr += 2
			}
		}
		return addr
	}
	const fact = 0x4500
	place(0x4400,
		isa.Instr{Op: isa.MOV, Src: isa.Imm(5), Dst: isa.RegOp(isa.R12)},
		isa.Instr{Op: isa.CALL, Src: isa.Imm(fact)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.Abs(PortHalt)},
	)
	place(fact,
		isa.Instr{Op: isa.CMP, Src: isa.Imm(2), Dst: isa.RegOp(isa.R12)}, // n >= 2?
		isa.Instr{Op: isa.JC, Dst: isa.Operand{Mode: isa.ModeNone, X: 2}},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(isa.R12)},
		isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)},
		// rec:
		isa.Instr{Op: isa.PUSH, Src: isa.RegOp(isa.R12)},
		isa.Instr{Op: isa.SUB, Src: isa.Imm(1), Dst: isa.RegOp(isa.R12)},
		isa.Instr{Op: isa.CALL, Src: isa.Imm(fact)},
		isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.R13)}, // POP R13 = n
		// multiply: R14 = R12 (fact(n-1)); R12 = 0; loop: ADD R14,R12 ; SUB #1,R13 ; JNE
		isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R12), Dst: isa.RegOp(isa.R14)},
		isa.Instr{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.R12)},
		isa.Instr{Op: isa.ADD, Src: isa.RegOp(isa.R14), Dst: isa.RegOp(isa.R12)},
		isa.Instr{Op: isa.SUB, Src: isa.Imm(1), Dst: isa.RegOp(isa.R13)},
		isa.Instr{Op: isa.JNE, Dst: isa.Operand{Mode: isa.ModeNone, X: 0xFFFD}},
		isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: isa.RegOp(isa.PC)},
	)
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	reason, f := c.Run(100000)
	if f != nil || reason != StopHalt {
		t.Fatalf("reason=%v f=%v", reason, f)
	}
	if c.Regs[isa.R12] != 120 {
		t.Fatalf("5! = %d, want 120", c.Regs[isa.R12])
	}
}
