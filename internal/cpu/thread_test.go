package cpu

import (
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// TestHandlerTableComplete asserts every HandlerID Predecode can bind has an
// executor: an unbound ID would make dispatch call a nil func at run time.
func TestHandlerTableComplete(t *testing.T) {
	for id := isa.HNone + 1; id < isa.NumHandlers; id++ {
		if handlers[id] == nil {
			t.Errorf("handler %d is unbound", id)
		}
	}
	if handlers[isa.HNone] != nil {
		t.Error("HNone must stay unbound (it marks switch dispatch)")
	}
}

// threadProgram exercises every handler class: all eight jump conditions
// (taken and not taken), RETI, PUSH-reg and CALL-imm specializations, the
// generic one-operand shapes, every fast format-I opcode (word and byte,
// register and immediate sources), and format I with memory operands on both
// sides. It ends by running off the end of text into erased FRAM, so both
// engines stop on the identical decode fault.
func threadProgram() []isa.Instr {
	ri, rr := isa.Imm, isa.RegOp
	prog := []isa.Instr{
		// Fast format I, word.
		{Op: isa.MOV, Src: ri(0x1234), Dst: rr(isa.R4)},
		{Op: isa.MOV, Src: rr(isa.R4), Dst: rr(isa.R5)},
		{Op: isa.ADD, Src: ri(0x0101), Dst: rr(isa.R5)},
		{Op: isa.ADDC, Src: rr(isa.R4), Dst: rr(isa.R5)},
		{Op: isa.SUB, Src: ri(7), Dst: rr(isa.R5)},
		{Op: isa.SUBC, Src: rr(isa.R4), Dst: rr(isa.R5)},
		{Op: isa.CMP, Src: rr(isa.R4), Dst: rr(isa.R5)},
		{Op: isa.DADD, Src: ri(0x0199), Dst: rr(isa.R4)},
		{Op: isa.BIT, Src: ri(8), Dst: rr(isa.R4)},
		{Op: isa.BIC, Src: ri(0x00F0), Dst: rr(isa.R4)},
		{Op: isa.BIS, Src: ri(0x0A0A), Dst: rr(isa.R4)},
		{Op: isa.XOR, Src: rr(isa.R5), Dst: rr(isa.R4)},
		{Op: isa.AND, Src: ri(0x7FFF), Dst: rr(isa.R4)},
		// Fast format I, byte.
		{Op: isa.MOV, Byte: true, Src: rr(isa.R4), Dst: rr(isa.R6)},
		{Op: isa.ADD, Byte: true, Src: ri(0x7F), Dst: rr(isa.R6)},
		{Op: isa.SUB, Byte: true, Src: rr(isa.R5), Dst: rr(isa.R6)},
		{Op: isa.CMP, Byte: true, Src: ri(1), Dst: rr(isa.R6)},
		{Op: isa.XOR, Byte: true, Src: ri(0xFF), Dst: rr(isa.R6)},
		{Op: isa.AND, Byte: true, Src: rr(isa.R4), Dst: rr(isa.R6)},
		{Op: isa.DADD, Byte: true, Src: ri(0x09), Dst: rr(isa.R6)},
		{Op: isa.BIS, Byte: true, Src: ri(2), Dst: rr(isa.R6)},
		{Op: isa.BIC, Byte: true, Src: ri(1), Dst: rr(isa.R6)},
		{Op: isa.ADDC, Byte: true, Src: rr(isa.R4), Dst: rr(isa.R6)},
		{Op: isa.SUBC, Byte: true, Src: rr(isa.R4), Dst: rr(isa.R6)},
		{Op: isa.BIT, Byte: true, Src: ri(4), Dst: rr(isa.R6)},
		// Generic format I: memory operands on either side.
		{Op: isa.MOV, Src: ri(0x2222), Dst: isa.Abs(0x2000)},
		{Op: isa.ADD, Src: isa.Abs(0x2000), Dst: rr(isa.R7)},
		{Op: isa.MOV, Src: ri(0x2000), Dst: rr(isa.R8)},
		{Op: isa.XOR, Src: isa.Ind(isa.R8), Dst: isa.Idx(4, isa.R8)},
		{Op: isa.MOV, Src: isa.IndInc(isa.R8), Dst: rr(isa.R9)},
		{Op: isa.SUB, Byte: true, Src: ri(3), Dst: isa.Abs(0x2001)},
		// Generic one-operand shapes.
		{Op: isa.RRC, Src: rr(isa.R4)},
		{Op: isa.RRA, Src: rr(isa.R5)},
		{Op: isa.RRC, Byte: true, Src: rr(isa.R6)},
		{Op: isa.RRA, Byte: true, Src: rr(isa.R6)},
		{Op: isa.SWPB, Src: rr(isa.R4)},
		{Op: isa.SXT, Src: rr(isa.R6)},
		{Op: isa.PUSH, Byte: true, Src: rr(isa.R4)},
		{Op: isa.PUSH, Src: isa.Abs(0x2000)},
		{Op: isa.RRA, Src: isa.Abs(0x2000)},
		// Specialized one-operand shapes.
		{Op: isa.PUSH, Src: rr(isa.R4)},
		{Op: isa.PUSH, Src: rr(isa.SP)}, // PUSH SP stores the pre-decrement value
		{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: rr(isa.R10)},
		{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: rr(isa.R10)},
		{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: rr(isa.R10)},
		// All eight jump conditions; offset 0 lands on the next instruction
		// whether taken or not, so both outcomes are exercised safely.
		{Op: isa.CMP, Src: ri(0), Dst: rr(isa.R10)},
		{Op: isa.JNE, Dst: isa.Operand{X: 0}},
		{Op: isa.JEQ, Dst: isa.Operand{X: 0}},
		{Op: isa.JNC, Dst: isa.Operand{X: 0}},
		{Op: isa.JC, Dst: isa.Operand{X: 0}},
		{Op: isa.JN, Dst: isa.Operand{X: 0}},
		{Op: isa.JGE, Dst: isa.Operand{X: 0}},
		{Op: isa.JL, Dst: isa.Operand{X: 0}},
		{Op: isa.JMP, Dst: isa.Operand{X: 0}},
		// A real taken backward branch: count R11 down from 3.
		{Op: isa.MOV, Src: ri(3), Dst: rr(isa.R11)},
		{Op: isa.SUB, Src: ri(1), Dst: rr(isa.R11)},
		{Op: isa.JNE, Dst: isa.Operand{X: 0xFFFE}}, // -2 words: back to the SUB
	}
	// CALL #target: the target is the instruction right after the call site;
	// the return address is popped below. RETI: push (return, SR) and pop
	// both, landing on the next instruction with SR restored.
	addr := uint16(0x4400)
	for _, in := range prog {
		addr += in.Size()
	}
	callSize := isa.Instr{Op: isa.CALL, Src: isa.Imm(0)}.Size()
	prog = append(prog, isa.Instr{Op: isa.CALL, Src: isa.Imm(addr + callSize)})
	addr += callSize
	prog = append(prog, isa.Instr{Op: isa.MOV, Src: isa.IndInc(isa.SP), Dst: rr(isa.R12)})
	addr += prog[len(prog)-1].Size()
	// RETI target = address after the RETI below: two pushes + RETI.
	pushSize := isa.Instr{Op: isa.PUSH, Src: isa.Imm(0x4400)}.Size()
	retiTarget := addr + 2*pushSize + isa.Instr{Op: isa.RETI}.Size()
	prog = append(prog,
		isa.Instr{Op: isa.PUSH, Src: isa.Imm(retiTarget)},
		isa.Instr{Op: isa.PUSH, Src: isa.Imm(0x0003)}, // SR with C and Z set
		isa.Instr{Op: isa.RETI},
		isa.Instr{Op: isa.ADDC, Src: isa.Imm(0), Dst: rr(isa.R12)}, // consumes restored C
	)
	return prog
}

// TestThreadedMatchesSwitch runs threadProgram under the threaded and the
// switch engine and compares every observable: registers, cycles, retired
// instructions, bus statistics, the stop fault, and the full access trace.
func TestThreadedMatchesSwitch(t *testing.T) {
	type result struct {
		regs          [isa.NumRegs]uint16
		cycles, insns uint64
		r, w, f       uint64
		stop          StopReason
		fault         string
		accesses      []mem.Access
	}
	run := func(threaded bool) result {
		defer isa.SetThreading(true)
		isa.SetThreading(threaded)
		bus := mem.NewBus()
		c := New(bus)
		addr := uint16(0x4400)
		for _, in := range threadProgram() {
			for _, w := range isa.MustEncode(in) {
				bus.Poke16(addr, w)
				addr += 2
			}
		}
		c.SetPC(0x4400)
		c.SetSP(0x2400)
		c.UseProgram(isa.Predecode(bus, []isa.TextRange{{Lo: 0x4400, Hi: addr}}))
		if threaded {
			bound := false
			for pc := uint16(0x4400); pc < addr; pc += 2 {
				if e := c.Program().At(pc); e != nil && e.H != isa.HNone {
					bound = true
				}
			}
			if !bound {
				t.Fatal("threaded engine has no bound handlers")
			}
		}
		var accesses []mem.Access
		c.Bus.OnAccess = func(a mem.Access) { accesses = append(accesses, a) }
		stop, fault := c.Run(1_000_000)
		res := result{regs: c.Regs, cycles: c.Cycles, insns: c.Insns, stop: stop, accesses: accesses}
		res.r, res.w, res.f = c.Bus.Stats()
		if fault != nil {
			res.fault = fault.Error()
		}
		return res
	}
	sw, th := run(false), run(true)
	if sw.stop != StopFault {
		t.Fatalf("program should run off the end of text into a decode fault, stopped %v (%s)", sw.stop, sw.fault)
	}
	if sw.regs != th.regs || sw.cycles != th.cycles || sw.insns != th.insns ||
		sw.r != th.r || sw.w != th.w || sw.f != th.f ||
		sw.stop != th.stop || sw.fault != th.fault {
		t.Errorf("engines diverged:\n  switch:   %+v\n  threaded: %+v", sw, th)
	}
	if len(sw.accesses) != len(th.accesses) {
		t.Fatalf("access trace length: switch %d, threaded %d", len(sw.accesses), len(th.accesses))
	}
	for i := range sw.accesses {
		if sw.accesses[i] != th.accesses[i] {
			t.Fatalf("access %d: switch %+v, threaded %+v", i, sw.accesses[i], th.accesses[i])
		}
	}
}
