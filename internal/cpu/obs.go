package cpu

import "amuletiso/internal/obs"

// Process-wide block-JIT metrics. Compile-side counters sit on the
// once-per-Program compile path; the deopt counters sit on block boundaries
// (never inside a segment) and are single predictable-branch atomics, per
// the zero-cost-when-off discipline.
var (
	mJITBlocks = obs.Default.Counter(obs.MetricJITBlocksCompiled,
		"Superblocks compiled to Go executors.")
	mJITSteps = obs.Default.Counter(obs.MetricJITStepsCompiled,
		"Instructions compiled into superblock executors.")
	mJITFlagsElided = obs.Default.Counter(obs.MetricJITFlagsElided,
		"Compiled steps whose SR flag stores were eliminated as dead.")
	mJITExtElided = obs.Default.Counter(obs.MetricJITExtElided,
		"Extension words baked into executors (never re-read at run time).")
	mJITAddrsFolded = obs.Default.Counter(obs.MetricJITAddrsFolded,
		"Absolute/symbolic effective addresses folded to constants.")
	mJITCompileNS = obs.Default.Counter(obs.MetricJITCompileNS,
		"Wall-clock nanoseconds spent compiling superblock plans.")

	jitDeopts = obs.Default.CounterVec(obs.MetricJITDeopts,
		"Compiled-block deoptimizations into the interpreter, by reason.",
		"reason")
	// Children pre-resolved so the boundary path never takes the vec lock.
	mDeoptBudget = jitDeopts.With("budget")
	mDeoptIRQ    = jitDeopts.With("irq")
	mDeoptHalt   = jitDeopts.With("halt")
	mDeoptCPUOff = jitDeopts.With("cpuoff")
	mDeoptText   = jitDeopts.With("text")
)
