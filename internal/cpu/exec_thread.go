package cpu

// Threaded dispatch: the executor table behind isa.HandlerID. Predecode
// binds every cached instruction (and fused component) to one of these
// handlers, so the hot loop replaces the exec switch cascade — format class,
// then opcode, then addressing mode — with a single indirect call. Every
// handler is observably identical to the corresponding exec path: the
// equivalence battery in internal/torture replays whole campaigns across
// {threaded, switch} and asserts byte-identical traces, and the `-nothread`
// hatch (isa.SetThreading) keeps the switch engine as the enforcement
// oracle.
//
// The fast format-I handlers cover the register/immediate-source,
// register-destination shape: no extension words, no bus traffic, no operand
// `location` plumbing — just the ALU core and the flag writes, in exactly
// the order the switch executor performs them.

import "amuletiso/internal/isa"

// execFn is the threaded executor signature: pc is the instruction address
// (the PC register has already been advanced past the encoding), in points
// into the shared predecode cache and must not be written through.
type execFn func(c *CPU, pc, size uint16, in *isa.Instr) *Fault

// handlers is the executor table indexed by isa.HandlerID. Every ID except
// isa.HNone must be bound (TestHandlerTableComplete enforces it).
var handlers = [isa.NumHandlers]execFn{
	isa.HJNE: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if !c.flag(isa.FlagZ) {
			c.jump(in)
		}
		return nil
	},
	isa.HJEQ: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if c.flag(isa.FlagZ) {
			c.jump(in)
		}
		return nil
	},
	isa.HJNC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if !c.flag(isa.FlagC) {
			c.jump(in)
		}
		return nil
	},
	isa.HJC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if c.flag(isa.FlagC) {
			c.jump(in)
		}
		return nil
	},
	isa.HJN: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if c.flag(isa.FlagN) {
			c.jump(in)
		}
		return nil
	},
	isa.HJGE: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if c.flag(isa.FlagN) == c.flag(isa.FlagV) {
			c.jump(in)
		}
		return nil
	},
	isa.HJL: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		if c.flag(isa.FlagN) != c.flag(isa.FlagV) {
			c.jump(in)
		}
		return nil
	},
	isa.HJMP: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		c.jump(in)
		return nil
	},

	isa.HRETI: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		sr, viol := c.pop()
		if viol != nil {
			return &Fault{PC: pc, Violation: viol}
		}
		c.Regs[isa.SR] = sr
		ret, viol := c.pop()
		if viol != nil {
			return &Fault{PC: pc, Violation: viol}
		}
		c.SetPC(ret)
		return nil
	},

	// PUSH Rn (word): the source register is read before SP moves, so
	// PUSH SP stores the pre-decrement value, as on hardware (and as
	// resolveSrc-before-decrement does on the switch path).
	isa.HPushReg: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		val := c.Regs[in.Src.Reg]
		c.Regs[isa.SP] -= 2
		if v := c.Bus.Write16(c.Regs[isa.SP], val); v != nil {
			return &Fault{PC: pc, Violation: v}
		}
		return nil
	},

	isa.HCallImm: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		val := in.Src.X
		if in.Byte {
			val &= 0xFF
		}
		if v := c.push(c.PC()); v != nil {
			return &Fault{PC: pc, Violation: v}
		}
		c.SetPC(val)
		return nil
	},

	isa.HOneGeneric: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		return c.execOneOperand(pc, size, *in)
	},

	// Generic format I, one handler per opcode: the operand prologue is
	// shared (twoOps) but the op core is bound at predecode, so the
	// per-execution opcode switch disappears.
	isa.HGenMOV: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, _, loc, flt := c.twoOps(pc, size, in, false)
		if flt != nil {
			return flt
		}
		return c.finishTwo(pc, loc, src, in.Byte)
	},
	isa.HGenADD: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		return c.finishTwo(pc, loc, c.addCore(dst, src, 0, in.Byte), in.Byte)
	},
	isa.HGenADDC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		ci := uint16(0)
		if c.flag(isa.FlagC) {
			ci = 1
		}
		return c.finishTwo(pc, loc, c.addCore(dst, src, ci, in.Byte), in.Byte)
	},
	isa.HGenSUBC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		ci := uint16(0)
		if c.flag(isa.FlagC) {
			ci = 1
		}
		return c.finishTwo(pc, loc, c.addCore(dst, ^src, ci, in.Byte), in.Byte)
	},
	isa.HGenSUB: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		return c.finishTwo(pc, loc, c.addCore(dst, ^src, 1, in.Byte), in.Byte)
	},
	isa.HGenCMP: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, _, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		c.addCore(dst, ^src, 1, in.Byte)
		return nil
	},
	isa.HGenDADD: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		return c.finishTwo(pc, loc, c.dadd(dst, src, in.Byte), in.Byte)
	},
	isa.HGenBIT: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, _, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		c.logicFlags(dst&src, in.Byte, false)
		return nil
	},
	isa.HGenBIC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		return c.finishTwo(pc, loc, dst&^src, in.Byte)
	},
	isa.HGenBIS: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		return c.finishTwo(pc, loc, dst|src, in.Byte)
	},
	isa.HGenXOR: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		res := dst ^ src
		sign := uint16(0x8000)
		if in.Byte {
			sign = 0x80
		}
		c.logicFlags(res, in.Byte, dst&src&sign != 0)
		return c.finishTwo(pc, loc, res, in.Byte)
	},
	isa.HGenAND: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst, loc, flt := c.twoOps(pc, size, in, true)
		if flt != nil {
			return flt
		}
		res := dst & src
		c.logicFlags(res, in.Byte, false)
		return c.finishTwo(pc, loc, res, in.Byte)
	},

	isa.HFastMOV: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		c.writeReg(in.Dst.Reg, c.fastSrc(in), in.Byte)
		return nil
	},
	isa.HFastADD: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.writeReg(in.Dst.Reg, c.addCore(dst, src, 0, in.Byte), in.Byte)
		return nil
	},
	isa.HFastADDC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		ci := uint16(0)
		if c.flag(isa.FlagC) {
			ci = 1
		}
		c.writeReg(in.Dst.Reg, c.addCore(dst, src, ci, in.Byte), in.Byte)
		return nil
	},
	isa.HFastSUBC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		ci := uint16(0)
		if c.flag(isa.FlagC) {
			ci = 1
		}
		c.writeReg(in.Dst.Reg, c.addCore(dst, ^src, ci, in.Byte), in.Byte)
		return nil
	},
	isa.HFastSUB: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.writeReg(in.Dst.Reg, c.addCore(dst, ^src, 1, in.Byte), in.Byte)
		return nil
	},
	isa.HFastCMP: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.addCore(dst, ^src, 1, in.Byte)
		return nil
	},
	isa.HFastDADD: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.writeReg(in.Dst.Reg, c.dadd(dst, src, in.Byte), in.Byte)
		return nil
	},
	isa.HFastBIT: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.logicFlags(dst&src, in.Byte, false)
		return nil
	},
	isa.HFastBIC: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.writeReg(in.Dst.Reg, dst&^src, in.Byte)
		return nil
	},
	isa.HFastBIS: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		c.writeReg(in.Dst.Reg, dst|src, in.Byte)
		return nil
	},
	isa.HFastXOR: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		res := dst ^ src
		sign := uint16(0x8000)
		if in.Byte {
			sign = 0x80
		}
		c.logicFlags(res, in.Byte, dst&src&sign != 0)
		c.writeReg(in.Dst.Reg, res, in.Byte)
		return nil
	},
	isa.HFastAND: func(c *CPU, pc, size uint16, in *isa.Instr) *Fault {
		src, dst := c.fastOperands(in)
		res := dst & src
		c.logicFlags(res, in.Byte, false)
		c.writeReg(in.Dst.Reg, res, in.Byte)
		return nil
	},
}

// jump applies a taken format-III branch (PC is already past the encoding).
func (c *CPU) jump(in *isa.Instr) {
	c.SetPC(c.PC() + 2*uint16(int16(in.Dst.X)))
}

// fastSrc reads a register or immediate source with byte masking — the only
// two source shapes the fast handlers are bound for.
func (c *CPU) fastSrc(in *isa.Instr) uint16 {
	if in.Src.Mode == isa.ModeRegister {
		return c.readReg(in.Src.Reg, in.Byte)
	}
	v := in.Src.X
	if in.Byte {
		v &= 0xFF
	}
	return v
}

// fastOperands reads both operands of a fast format-I instruction (the
// destination is always a register; reading it is side-effect free even for
// ops that ignore the old value).
func (c *CPU) fastOperands(in *isa.Instr) (src, dst uint16) {
	return c.fastSrc(in), c.readReg(in.Dst.Reg, in.Byte)
}

// twoOps is the generic format-I operand prologue shared by the HGen*
// handlers: resolve the source (with side effects), then the destination.
// The extension-word addresses fall out of pc and size exactly as in
// execTwoOperand.
func (c *CPU) twoOps(pc, size uint16, in *isa.Instr, needRead bool) (src, dst uint16, loc location, flt *Fault) {
	src, _, viol := c.resolveSrc(*in, pc+2)
	if viol != nil {
		return 0, 0, location{}, &Fault{PC: pc, Violation: viol}
	}
	dst, loc, viol = c.resolveDst(*in, pc+size-2, needRead)
	if viol != nil {
		return 0, 0, location{}, &Fault{PC: pc, Violation: viol}
	}
	return src, dst, loc, nil
}

// finishTwo stores a format-I result.
func (c *CPU) finishTwo(pc uint16, loc location, res uint16, byteOp bool) *Fault {
	if v := c.writeLoc(loc, res, byteOp); v != nil {
		return &Fault{PC: pc, Violation: v}
	}
	return nil
}

// writeReg stores a result to a register with byte masking and PC/SP
// alignment — the register branch of writeLoc, without the location box.
func (c *CPU) writeReg(r isa.Reg, v uint16, byteOp bool) {
	if byteOp {
		v &= 0xFF
	}
	c.Regs[r] = v
	if r == isa.PC || r == isa.SP {
		c.Regs[r] &^= 1
	}
}

// dispatch executes one decoded instruction through its bound handler, or
// through the classic switch executor when no handler is bound (threading
// disabled, or a live-decoded instruction).
func (c *CPU) dispatch(pc, size uint16, in *isa.Instr, h isa.HandlerID) *Fault {
	if h != isa.HNone {
		return handlers[h](c, pc, size, in)
	}
	return c.exec(pc, size, *in)
}
