// Package cpu implements the execution core of the simulated MSP430-class
// MCU: fetch/decode/execute for the full ISA defined in internal/isa, status
// flags, CALL/PUSH/RETI and interrupt entry, a cycle counter with the TI
// per-instruction costs, a Timer_A-style hardware timer (16-cycle
// resolution, as used by the paper's Figure 3 measurements), and debug ports
// used by the OS gates (syscall, halt, console).
//
// The CPU performs every data access and instruction fetch through the
// checked mem.Bus, so MPU enforcement and access profiling both observe real
// executed traffic.
package cpu

import (
	"fmt"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	StopBudget StopReason = iota // cycle budget exhausted
	StopHalt                     // program wrote the halt port
	StopFault                    // memory violation or illegal instruction
	StopCPUOff                   // CPUOFF set in SR (low-power idle)
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopBudget:
		return "budget"
	case StopHalt:
		return "halt"
	case StopFault:
		return "fault"
	case StopCPUOff:
		return "cpuoff"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Fault describes an aborted instruction.
type Fault struct {
	PC        uint16         // address of the faulting instruction
	Violation *mem.Violation // non-nil for memory-protection faults
	Reason    string         // non-empty for decode or execution faults
}

func (f *Fault) Error() string {
	if f.Violation != nil {
		return fmt.Sprintf("cpu: fault at PC=0x%04X: %v", f.PC, f.Violation)
	}
	return fmt.Sprintf("cpu: fault at PC=0x%04X: %s", f.PC, f.Reason)
}

// CPU is the execution core.
type CPU struct {
	Regs [isa.NumRegs]uint16
	Bus  *mem.Bus

	// Cycles is the master clock: total CPU cycles executed since reset,
	// including cycles charged by syscall services.
	Cycles uint64

	// Insns counts retired instructions.
	Insns uint64

	// OnSyscall is invoked when code writes the syscall port. The handler
	// may modify registers (return values), charge Cycles, or halt.
	OnSyscall func(id uint16)

	// Halted latches after a halt-port write; ExitCode carries the value.
	Halted   bool
	ExitCode uint16

	// Console accumulates bytes written to the console port.
	Console []byte

	pendingIRQ []uint16 // queued interrupt vector addresses
}

// New returns a CPU attached to bus with PC/SP zeroed. Callers must set PC
// (and usually SP) before Run.
func New(bus *mem.Bus) *CPU {
	c := &CPU{Bus: bus}
	bus.Map(portBase, portLimit, &portDevice{c})
	bus.Map(TimerBase, TimerBase+0x1E, &TimerA{c: c})
	bus.Map(MPYBase, MPYResHi+1, &MPY32{})
	return c
}

// Register accessors; PC and SP keep architectural alignment.

// PC returns the program counter.
func (c *CPU) PC() uint16 { return c.Regs[isa.PC] }

// SetPC sets the program counter (bit 0 forced clear).
func (c *CPU) SetPC(v uint16) { c.Regs[isa.PC] = v &^ 1 }

// SP returns the stack pointer.
func (c *CPU) SP() uint16 { return c.Regs[isa.SP] }

// SetSP sets the stack pointer (bit 0 forced clear).
func (c *CPU) SetSP(v uint16) { c.Regs[isa.SP] = v &^ 1 }

// SRBits returns the status register.
func (c *CPU) SRBits() uint16 { return c.Regs[isa.SR] }

// flag helpers
func (c *CPU) flag(bit uint16) bool { return c.Regs[isa.SR]&bit != 0 }

func (c *CPU) setFlag(bit uint16, on bool) {
	if on {
		c.Regs[isa.SR] |= bit
	} else {
		c.Regs[isa.SR] &^= bit
	}
}

// push writes v to the pre-decremented stack.
func (c *CPU) push(v uint16) *mem.Violation {
	c.Regs[isa.SP] -= 2
	return c.Bus.Write16(c.Regs[isa.SP], v)
}

// pop reads from the stack and post-increments.
func (c *CPU) pop() (uint16, *mem.Violation) {
	v, viol := c.Bus.Read16(c.Regs[isa.SP])
	if viol != nil {
		return 0, viol
	}
	c.Regs[isa.SP] += 2
	return v, nil
}

// RequestInterrupt queues an interrupt whose vector word lives at vecAddr
// (for example 0xFFF2). It is accepted before the next instruction if GIE is
// set.
func (c *CPU) RequestInterrupt(vecAddr uint16) {
	c.pendingIRQ = append(c.pendingIRQ, vecAddr)
}

// serviceInterrupt performs interrupt entry for the first pending vector.
func (c *CPU) serviceInterrupt() *Fault {
	vec := c.pendingIRQ[0]
	c.pendingIRQ = c.pendingIRQ[1:]
	if v := c.push(c.Regs[isa.PC]); v != nil {
		return &Fault{PC: c.PC(), Violation: v}
	}
	if v := c.push(c.Regs[isa.SR]); v != nil {
		return &Fault{PC: c.PC(), Violation: v}
	}
	c.setFlag(isa.FlagGIE, false)
	c.setFlag(isa.FlagCPUOFF, false)
	target := c.Bus.Peek16(vec)
	c.SetPC(target)
	c.Cycles += uint64(isa.InterruptCycles)
	return nil
}

// Step executes one instruction (servicing a pending interrupt first).
// It returns a non-nil *Fault if the instruction could not complete; CPU
// state is left as of the fault for inspection.
func (c *CPU) Step() *Fault {
	if len(c.pendingIRQ) > 0 && c.flag(isa.FlagGIE) {
		if f := c.serviceInterrupt(); f != nil {
			return f
		}
	}
	pc := c.PC()
	in, size, err := isa.Decode(c.Bus, pc)
	if err != nil {
		return &Fault{PC: pc, Reason: err.Error()}
	}
	// Charge the fetch through the checked path (execute permission).
	for off := uint16(0); off < size; off += 2 {
		if _, viol := c.Bus.Fetch16(pc + off); viol != nil {
			return &Fault{PC: pc, Violation: viol}
		}
	}
	c.SetPC(pc + size)
	f := c.exec(pc, size, in)
	if f == nil {
		c.Cycles += uint64(isa.Cycles(in))
		c.Insns++
	}
	return f
}

// Run executes until the cycle budget is exceeded, the CPU halts, faults, or
// enters CPUOFF. The budget is a limit on additional cycles from the call.
func (c *CPU) Run(budget uint64) (StopReason, *Fault) {
	limit := c.Cycles + budget
	for {
		if c.Halted {
			return StopHalt, nil
		}
		if c.flag(isa.FlagCPUOFF) {
			return StopCPUOff, nil
		}
		if c.Cycles >= limit {
			return StopBudget, nil
		}
		if f := c.Step(); f != nil {
			return StopFault, f
		}
	}
}

// Reset clears registers, cycle state and latches (memory is untouched).
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint16{}
	c.Cycles = 0
	c.Insns = 0
	c.Halted = false
	c.ExitCode = 0
	c.Console = nil
	c.pendingIRQ = nil
}
