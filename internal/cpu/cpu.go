// Package cpu implements the execution core of the simulated MSP430-class
// MCU: fetch/decode/execute for the full ISA defined in internal/isa, status
// flags, CALL/PUSH/RETI and interrupt entry, a cycle counter with the TI
// per-instruction costs, a Timer_A-style hardware timer (16-cycle
// resolution, as used by the paper's Figure 3 measurements), and debug ports
// used by the OS gates (syscall, halt, console).
//
// The CPU performs every data access and instruction fetch through the
// checked mem.Bus, so MPU enforcement and access profiling both observe real
// executed traffic.
package cpu

import (
	"fmt"
	"sync/atomic"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// decodeCacheOff globally disables UseProgram when set — the
// `-nodecodecache` escape hatch the CLIs expose so any run can be replayed
// on the always-correct live-decode path (differential guardrail).
var decodeCacheOff atomic.Bool

// SetDecodeCache enables or disables attachment of predecode caches
// process-wide. It affects machines loaded after the call; already-attached
// caches stay attached. The flag is also consulted at firmware build time
// (aft.Build / cc.CompileProgram skip the predecode pass entirely when
// disabled), so a firmware built while disabled carries no cache even if
// the flag is re-enabled before load — set the flag once, before building,
// as the CLIs do.
func SetDecodeCache(on bool) { decodeCacheOff.Store(!on) }

// DecodeCacheEnabled reports whether predecode caches are attached at load.
func DecodeCacheEnabled() bool { return !decodeCacheOff.Load() }

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	StopBudget StopReason = iota // cycle budget exhausted
	StopHalt                     // program wrote the halt port
	StopFault                    // memory violation or illegal instruction
	StopCPUOff                   // CPUOFF set in SR (low-power idle)
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopBudget:
		return "budget"
	case StopHalt:
		return "halt"
	case StopFault:
		return "fault"
	case StopCPUOff:
		return "cpuoff"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Fault describes an aborted instruction.
type Fault struct {
	PC        uint16         // address of the faulting instruction
	Violation *mem.Violation // non-nil for memory-protection faults
	Reason    string         // non-empty for decode or execution faults
}

func (f *Fault) Error() string {
	if f.Violation != nil {
		return fmt.Sprintf("cpu: fault at PC=0x%04X: %v", f.PC, f.Violation)
	}
	return fmt.Sprintf("cpu: fault at PC=0x%04X: %s", f.PC, f.Reason)
}

// CPU is the execution core.
type CPU struct {
	Regs [isa.NumRegs]uint16
	Bus  *mem.Bus

	// Cycles is the master clock: total CPU cycles executed since reset,
	// including cycles charged by syscall services.
	Cycles uint64

	// Insns counts retired instructions.
	Insns uint64

	// OnSyscall is invoked when code writes the syscall port. The handler
	// may modify registers (return values), charge Cycles, or halt.
	OnSyscall func(id uint16)

	// Halted latches after a halt-port write; ExitCode carries the value.
	Halted   bool
	ExitCode uint16

	// Console accumulates bytes written to the console port.
	Console []byte

	pendingIRQ []uint16 // queued interrupt vector addresses

	// prog is the attached predecode cache (nil: every Step live-decodes).
	// dirty holds the word-aligned addresses of cached text overwritten on
	// THIS machine; the cache itself is shared and immutable (a fleet's
	// devices all point at one Program), so self-modification must be
	// tracked per device, not by mutating the shared cache.
	prog  *isa.Program
	dirty map[uint16]struct{}
	// fuseLimit is Run's cycle limit, mirrored here so the fused fast path
	// can stop at a component boundary exactly where the unfused engine's
	// Run loop would stop between two instructions. Outside Run it stays 0,
	// which disables fusion entirely: a bare Step always retires exactly one
	// instruction, preserving the historical single-step granularity.
	fuseLimit uint64
	// jit/jitBase are the attached superblock plan (see jit_exec.go): block
	// executors indexed by the same (pc - base) >> 1 slot arithmetic as the
	// decode cache. The plan is compiled once per Program and shared; like
	// fusion, block execution is additionally gated on fuseLimit so bare
	// Step keeps single-instruction granularity.
	jit     []*compiledBlock
	jitBase uint16
	// slow is the live-decode path's reusable checked word reader (a field
	// so taking its address for the isa.WordReader interface never
	// allocates on the per-instruction path).
	slow slowFetch

	// timer/mpy are the peripheral devices New maps onto the bus, kept so
	// State/SetState can checkpoint their registers alongside the core.
	timer *TimerA
	mpy   *MPY32
}

// slowFetch feeds the decoder through the checked bus fetch path, latching
// the first execute violation instead of failing mid-decode.
type slowFetch struct {
	bus  *mem.Bus
	viol *mem.Violation
}

// ReadCodeWord implements isa.WordReader: each word the decoder consumes is
// execute-checked and counted exactly once; after a violation the bus is not
// touched again.
func (s *slowFetch) ReadCodeWord(addr uint16) uint16 {
	if s.viol != nil {
		return 0
	}
	v, fv := s.bus.Fetch16(addr)
	if fv != nil {
		s.viol = fv
		return 0
	}
	return v
}

// New returns a CPU attached to bus with PC/SP zeroed. Callers must set PC
// (and usually SP) before Run.
func New(bus *mem.Bus) *CPU {
	c := &CPU{Bus: bus}
	c.slow.bus = bus
	c.timer = &TimerA{c: c}
	c.mpy = &MPY32{}
	bus.Map(portBase, portLimit, &portDevice{c})
	bus.Map(TimerBase, TimerBase+0x1E, c.timer)
	bus.Map(MPYBase, MPYResHi+1, c.mpy)
	return c
}

// Register accessors; PC and SP keep architectural alignment.

// PC returns the program counter.
func (c *CPU) PC() uint16 { return c.Regs[isa.PC] }

// SetPC sets the program counter (bit 0 forced clear).
func (c *CPU) SetPC(v uint16) { c.Regs[isa.PC] = v &^ 1 }

// SP returns the stack pointer.
func (c *CPU) SP() uint16 { return c.Regs[isa.SP] }

// SetSP sets the stack pointer (bit 0 forced clear).
func (c *CPU) SetSP(v uint16) { c.Regs[isa.SP] = v &^ 1 }

// SRBits returns the status register.
func (c *CPU) SRBits() uint16 { return c.Regs[isa.SR] }

// flag helpers
func (c *CPU) flag(bit uint16) bool { return c.Regs[isa.SR]&bit != 0 }

func (c *CPU) setFlag(bit uint16, on bool) {
	if on {
		c.Regs[isa.SR] |= bit
	} else {
		c.Regs[isa.SR] &^= bit
	}
}

// push writes v to the pre-decremented stack.
func (c *CPU) push(v uint16) *mem.Violation {
	c.Regs[isa.SP] -= 2
	return c.Bus.Write16(c.Regs[isa.SP], v)
}

// pop reads from the stack and post-increments.
func (c *CPU) pop() (uint16, *mem.Violation) {
	v, viol := c.Bus.Read16(c.Regs[isa.SP])
	if viol != nil {
		return 0, viol
	}
	c.Regs[isa.SP] += 2
	return v, nil
}

// RequestInterrupt queues an interrupt whose vector word lives at vecAddr
// (for example 0xFFF2). It is accepted before the next instruction if GIE is
// set.
func (c *CPU) RequestInterrupt(vecAddr uint16) {
	c.pendingIRQ = append(c.pendingIRQ, vecAddr)
}

// serviceInterrupt performs interrupt entry for the first pending vector.
func (c *CPU) serviceInterrupt() *Fault {
	vec := c.pendingIRQ[0]
	c.pendingIRQ = c.pendingIRQ[1:]
	if v := c.push(c.Regs[isa.PC]); v != nil {
		return &Fault{PC: c.PC(), Violation: v}
	}
	if v := c.push(c.Regs[isa.SR]); v != nil {
		return &Fault{PC: c.PC(), Violation: v}
	}
	c.setFlag(isa.FlagGIE, false)
	c.setFlag(isa.FlagCPUOFF, false)
	target := c.Bus.Peek16(vec)
	c.SetPC(target)
	c.Cycles += uint64(isa.InterruptCycles)
	return nil
}

// UseProgram attaches a predecoded cache of the loaded image's text (built
// once per firmware, typically shared across many machines) and registers
// the bus code watch that keeps it honest: any write into cached text marks
// the covered words dirty on this CPU, and dirty or uncached PCs fall back
// to the live decoder. Passing nil (or disabling via SetDecodeCache before
// load) detaches the cache and the watch.
func (c *CPU) UseProgram(p *isa.Program) {
	c.dirty = nil
	c.jit, c.jitBase = nil, 0
	if p == nil || decodeCacheOff.Load() {
		c.prog = nil
		c.Bus.WatchCode(nil, nil)
		return
	}
	c.prog = p
	watch := make([]mem.CodeRange, p.NumRanges())
	for i := range watch {
		r := p.RangeAt(i)
		watch[i] = mem.CodeRange{Lo: r.Lo, Hi: r.Hi}
	}
	c.Bus.WatchCode(watch, c.invalidateCode)
	if plan, _ := p.JITPlan(func() any { return compileJITPlan(p) }).(*jitPlan); plan != nil {
		c.jit, c.jitBase = plan.blocks, plan.base
	}
}

// Program returns the attached predecode cache, if any.
func (c *CPU) Program() *isa.Program { return c.prog }

// invalidateCode marks every word of the overwritten byte span [lo, hi]
// dirty; Step routes dirty PCs to the live decoder so the new bytes execute.
func (c *CPU) invalidateCode(lo, hi uint16) {
	if c.dirty == nil {
		c.dirty = make(map[uint16]struct{})
	}
	// Both bounds aligned down: a walks even addresses and lands exactly on
	// hi&^1, so the loop cannot wrap.
	for a := lo &^ 1; ; a += 2 {
		c.dirty[a] = struct{}{}
		if a >= hi&^1 {
			break
		}
	}
}

// spanDirty reports whether any instruction word of [pc, pc+size) has been
// overwritten since the cache was built. A write to an extension word
// invalidates the instruction just as a write to its opcode word does.
func (c *CPU) spanDirty(pc, size uint16) bool {
	if len(c.dirty) == 0 {
		return false
	}
	for off := uint16(0); off < size; off += 2 {
		if _, ok := c.dirty[pc+off]; ok {
			return true
		}
	}
	return false
}

// Step executes one instruction (servicing a pending interrupt first).
// It returns a non-nil *Fault if the instruction could not complete; CPU
// state is left as of the fault for inspection.
//
// With a predecode cache attached, PCs inside clean cached text skip the
// decoder entirely: the bus still execute-checks and counts every
// instruction word (so MPU enforcement and fetch statistics are identical
// to the live path), but operands and cycle costs come from the cache.
func (c *CPU) Step() *Fault {
	if len(c.pendingIRQ) > 0 && c.flag(isa.FlagGIE) {
		if f := c.serviceInterrupt(); f != nil {
			return f
		}
	}
	pc := c.PC()
	if c.prog != nil {
		if e := c.prog.At(pc); e != nil {
			// Superblock fast path: a compiled block headed here runs whole
			// atomic segments at a time (jit_exec.go); done=false means it
			// deopted before retiring anything and this Step proceeds
			// normally. The slot index is in range because At succeeded and
			// the plan mirrors the cache's slot table.
			if c.jit != nil && c.Cycles < c.fuseLimit {
				if b := c.jit[(pc-c.jitBase)>>1]; b != nil {
					if f, done := c.runBlock(b); done {
						return f
					}
				}
			}
			if f := e.Fused; f != nil && c.Cycles < c.fuseLimit && !c.spanDirty(pc, f.Size) {
				if f.Fast {
					return c.stepFusedPair(pc, f)
				}
				return c.stepFused(pc, f)
			}
			if !c.spanDirty(pc, e.Size) {
				if viol := c.Bus.FetchWords(pc, e.Size); viol != nil {
					return &Fault{PC: pc, Violation: viol}
				}
				c.SetPC(pc + e.Size)
				f := c.dispatch(pc, e.Size, &e.In, e.H)
				if f == nil {
					c.Cycles += uint64(e.Cost)
					c.Insns++
				}
				return f
			}
		}
	}
	return c.stepSlow(pc)
}

// stepFusedPair is the combined executor for Fast pairs: the head is a
// memory-free, control-safe CMP (registers/immediates) or MOV #imm into a
// plain register, so it is inlined here without the generic operand
// machinery, and the only split condition that can arise at the component
// boundary is the cycle budget (the head cannot fault, halt, set CPUOFF or
// GIE, or dirty code — see isa.Fused.Fast). The second component runs
// through the ordinary executor, so faults, branches and side effects there
// behave exactly as on the unfused engine.
func (c *CPU) stepFusedPair(pc uint16, f *isa.Fused) *Fault {
	p0, p1 := &f.Parts[0], &f.Parts[1]
	if viol := c.Bus.FetchWords(pc, p0.Size); viol != nil {
		return &Fault{PC: pc, Violation: viol}
	}
	mid := pc + p0.Size
	c.Regs[isa.PC] = mid // mid is even: sizes are multiples of 2
	if in := &p0.In; in.Op == isa.CMP {
		var src uint16
		if in.Src.Mode == isa.ModeRegister {
			src = c.readReg(in.Src.Reg, in.Byte)
		} else {
			src = in.Src.X
			if in.Byte {
				src &= 0xFF
			}
		}
		c.addCore(c.readReg(in.Dst.Reg, in.Byte), ^src, 1, in.Byte)
	} else { // MOV #imm, Rn
		v := in.Src.X
		if in.Byte {
			v &= 0xFF
		}
		if in.Dst.Reg == isa.SP {
			v &^= 1
		}
		c.Regs[in.Dst.Reg] = v
	}
	c.Cycles += uint64(p0.Cost)
	c.Insns++
	if c.Cycles >= c.fuseLimit {
		return nil
	}
	if viol := c.Bus.FetchWords(mid, p1.Size); viol != nil {
		return &Fault{PC: mid, Violation: viol}
	}
	c.SetPC(mid + p1.Size)
	if fl := c.dispatch(mid, p1.Size, &p1.In, p1.H); fl != nil {
		return fl
	}
	c.Cycles += uint64(p1.Cost)
	c.Insns++
	return nil
}

// stepFused executes a fused superinstruction component by component. Each
// component fetches, executes and charges cycles exactly as the single-slot
// path would; between components the CPU re-checks every condition Run's
// loop checks between instructions — halt, CPUOFF, the cycle budget, a
// pending enabled interrupt — plus whether an earlier component overwrote a
// later one's bytes. Any of them ends the group at the boundary with the PC
// on the next component, so Run resumes (or stops) exactly as the unfused
// engine would have. Only the last component may transfer control (the
// fusion pass guarantees earlier ones fall through).
func (c *CPU) stepFused(pc uint16, f *isa.Fused) *Fault {
	addr := pc
	for i := range f.Parts {
		p := &f.Parts[i]
		if i > 0 {
			if c.Halted || c.flag(isa.FlagCPUOFF) || c.Cycles >= c.fuseLimit ||
				(len(c.pendingIRQ) > 0 && c.flag(isa.FlagGIE)) ||
				c.spanDirty(addr, p.Size) {
				return nil
			}
		}
		if viol := c.Bus.FetchWords(addr, p.Size); viol != nil {
			return &Fault{PC: addr, Violation: viol}
		}
		c.SetPC(addr + p.Size)
		if fl := c.dispatch(addr, p.Size, &p.In, p.H); fl != nil {
			return fl
		}
		c.Cycles += uint64(p.Cost)
		c.Insns++
		addr += p.Size
	}
	return nil
}

// stepSlow is the live-decode path: PCs outside cached text, uncacheable
// slots, and self-modified code. Each instruction word is fetched through
// the checked bus path exactly once — the execute-permission check and the
// fetch statistics happen on the same read that feeds the decoder, so
// Bus.Stats() fetch counts always agree with the words the instruction
// actually consumed (and with the cached path's accounting).
func (c *CPU) stepSlow(pc uint16) *Fault {
	c.slow.viol = nil
	in, size, err := isa.Decode(&c.slow, pc)
	if c.slow.viol != nil {
		return &Fault{PC: pc, Violation: c.slow.viol}
	}
	if err != nil {
		return &Fault{PC: pc, Reason: err.Error()}
	}
	c.SetPC(pc + size)
	f := c.exec(pc, size, in)
	if f == nil {
		c.Cycles += uint64(isa.Cycles(in))
		c.Insns++
	}
	return f
}

// Run executes until the cycle budget is exceeded, the CPU halts, faults, or
// enters CPUOFF. The budget is a limit on additional cycles from the call.
func (c *CPU) Run(budget uint64) (StopReason, *Fault) {
	limit := c.Cycles + budget
	c.fuseLimit = limit
	defer func() { c.fuseLimit = 0 }()
	for {
		if c.Halted {
			return StopHalt, nil
		}
		if c.flag(isa.FlagCPUOFF) {
			return StopCPUOff, nil
		}
		if c.Cycles >= limit {
			return StopBudget, nil
		}
		if f := c.Step(); f != nil {
			return StopFault, f
		}
	}
}

// Reset clears registers, cycle state and latches (memory is untouched).
func (c *CPU) Reset() {
	c.Regs = [isa.NumRegs]uint16{}
	c.Cycles = 0
	c.Insns = 0
	c.Halted = false
	c.ExitCode = 0
	c.Console = nil
	c.pendingIRQ = nil
	c.fuseLimit = 0
}
