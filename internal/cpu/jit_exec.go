package cpu

// Superblock executors: the codegen half of the block JIT. internal/jit
// lifts the superblocks discovered at predecode into its IR; this file binds
// one Go closure per IR step and drives whole blocks from Step, deopting
// back to the interpreter at exactly the stop points the fused engine
// enumerates. The closures reproduce the interpreter's observable schedule
// instruction by instruction — same fetch counts in the same order, same
// cycle/instruction accounting, same PC at every fault and boundary — so a
// compiled run and an interpreted run are indistinguishable by exit state,
// stats, MPU violations, or access traces. The exec switch remains the
// enforcement oracle: every closure here is either a call into it (via
// dispatch) or a specialization whose equivalence the torture battery locks
// across the {jit, nojit} axis.
//
// Blocks only execute under a whole-span execute certificate with no access
// profiler attached (mem.Bus.ExecCertifiedSpan); in every other regime the
// entry check fails and the interpreter runs, making the `-nojit` and
// per-word-check cells trivially identical. One compiled plan is built per
// isa.Program (guarded by Program.JITPlan) and shared by every CPU running
// that firmware, like the decode cache itself.

import (
	"time"

	"amuletiso/internal/isa"
	"amuletiso/internal/jit"
	"amuletiso/internal/mem"
)

// jitPlan is a compiled program: block executors indexed by the same
// (pc - base) >> 1 slot arithmetic as the decode cache, so Step's lookup is
// one load off the already-validated slot index.
type jitPlan struct {
	base   uint16
	blocks []*compiledBlock
}

// compiledBlock is one bound superblock.
type compiledBlock struct {
	addr, end  uint16
	size       uint16
	segs       []cseg
	lastIsTerm bool // final step writes PC itself (branch/terminator)
}

// cseg is one atomic run: its boundary conditions are checked on entry and
// provably cannot change until its last step completes (see internal/jit).
type cseg struct {
	addr     uint16 // deopt PC at this boundary
	restSize uint16 // block.end - addr: the span a post-write re-probe covers
	reprobe  bool   // previous segment may have written memory
	preCost  uint64 // segment cycles minus the last step's (budget atomicity)
	steps    []cstep
}

// cstep is one bound instruction: fn executes it (nil for dead steps whose
// only remaining effects are the accounting), words/cost feed the fetch and
// cycle counters exactly as the interpreter would per instruction.
type cstep struct {
	fn    func(*CPU) *Fault
	words uint64
	cost  uint64
}

// compileJITPlan lifts and binds every discovered superblock of p. Called
// once per Program through Program.JITPlan; returns nil when discovery found
// nothing (JIT off at build, or no compilable text).
func compileJITPlan(p *isa.Program) *jitPlan {
	spans := p.BlockSpans()
	if len(spans) == 0 {
		return nil
	}
	start := time.Now()
	plan := &jitPlan{base: p.Base(), blocks: make([]*compiledBlock, p.Slots())}
	var st jit.Stats
	for _, bs := range spans {
		lb := jit.Lift(p, bs)
		if lb == nil {
			continue
		}
		plan.blocks[(bs.Addr-plan.base)>>1] = compileBlock(lb)
		mJITBlocks.Inc()
		st.Steps += lb.Stats.Steps
		st.Elided += lb.Stats.Elided
		st.Folded += lb.Stats.Folded
		st.ExtBaked += lb.Stats.ExtBaked
	}
	mJITSteps.Add(uint64(st.Steps))
	mJITFlagsElided.Add(uint64(st.Elided))
	mJITAddrsFolded.Add(uint64(st.Folded))
	mJITExtElided.Add(uint64(st.ExtBaked))
	mJITCompileNS.Add(uint64(time.Since(start)))
	return plan
}

// compileBlock binds closures for one lifted block.
func compileBlock(lb *jit.Block) *compiledBlock {
	cb := &compiledBlock{
		addr: lb.Addr, end: lb.End, size: lb.Size, lastIsTerm: lb.LastIsTerm,
	}
	cb.segs = make([]cseg, len(lb.Segs))
	for i := range lb.Segs {
		sg := &lb.Segs[i]
		cs := cseg{
			addr:     sg.Addr,
			restSize: lb.End - sg.Addr,
			reprobe:  i > 0 && lb.Segs[i-1].MayWrite,
			preCost:  uint64(sg.PreCost),
			steps:    make([]cstep, 0, sg.Hi-sg.Lo),
		}
		for j := sg.Lo; j < sg.Hi; j++ {
			st := &lb.Steps[j]
			cs.steps = append(cs.steps, cstep{
				fn:    compileStep(st),
				words: uint64(st.Size >> 1),
				cost:  uint64(st.Cost),
			})
		}
		cb.segs[i] = cs
	}
	return cb
}

// runBlock executes a compiled block whose head the caller's PC sits on.
// done=false means the block could not be entered (no certificate, dirty
// text, or the very first boundary condition fired) and NOTHING ran — Step
// falls through to the ordinary path, which always retires one instruction,
// so deopt can never livelock. done=true means at least one segment retired;
// a nil fault leaves the PC at the boundary (or past the block) exactly
// where the interpreter's Run loop would pick up.
func (c *CPU) runBlock(b *compiledBlock) (f *Fault, done bool) {
	if !c.Bus.ExecCertifiedSpan(b.addr, b.size) || c.spanDirty(b.addr, b.size) {
		return nil, false
	}
	for si := range b.segs {
		seg := &b.segs[si]
		if seg.reprobe &&
			(c.spanDirty(seg.addr, seg.restSize) || !c.Bus.ExecCertifiedSpan(seg.addr, seg.restSize)) {
			mDeoptText.Inc()
			return c.deopt(seg, si)
		}
		if c.Halted {
			mDeoptHalt.Inc()
			return c.deopt(seg, si)
		}
		if c.flag(isa.FlagCPUOFF) {
			mDeoptCPUOff.Inc()
			return c.deopt(seg, si)
		}
		if len(c.pendingIRQ) > 0 && c.flag(isa.FlagGIE) {
			mDeoptIRQ.Inc()
			return c.deopt(seg, si)
		}
		if c.Cycles+seg.preCost >= c.fuseLimit {
			mDeoptBudget.Inc()
			return c.deopt(seg, si)
		}
		for i := range seg.steps {
			s := &seg.steps[i]
			c.Bus.AddFetchWords(s.words)
			if s.fn != nil {
				if fl := s.fn(c); fl != nil {
					return fl, true
				}
			}
			c.Cycles += s.cost
			c.Insns++
		}
	}
	if !b.lastIsTerm {
		c.Regs[isa.PC] = b.end
	}
	return nil, true
}

// deopt hands control back to the interpreter at a segment boundary: if any
// earlier segment retired, the PC is parked on the boundary instruction (it
// is exactly where the interpreter's own loop would have stopped); if this
// is the block head, nothing ran and the caller's PC is untouched.
func (c *CPU) deopt(seg *cseg, si int) (*Fault, bool) {
	if si == 0 {
		return nil, false
	}
	c.Regs[isa.PC] = seg.addr
	return nil, true
}

// compileStep binds the executor closure for one IR step, picking the most
// specialized tier the passes proved safe. Every tier reproduces the
// corresponding interpreter path exactly (same flag stores or proven-dead
// omissions, same fault PC discipline: Fault.PC is the instruction address
// and Regs[PC] is past the encoding whenever a step can fault or read PC).
func compileStep(st *jit.Step) func(*CPU) *Fault {
	if st.Dead {
		// CMP/BIT whose flags nothing reads: accounting-only.
		return nil
	}
	if st.Kind == jit.KindJump {
		return compileJump(st)
	}
	var fn func(*CPU) *Fault
	switch {
	case st.Elide:
		fn = compileElidedALU(st)
	case st.In.Op == isa.MOV:
		fn = compileMOV(st)
	}
	if fn == nil {
		fn = compileDispatch(st)
	}
	if st.NeedPC && st.Kind == jit.KindPure {
		// Pure steps skip PC maintenance unless the instruction observes or
		// can expose it; generic/memory tiers advance PC themselves.
		inner, end := fn, st.Addr+st.Size
		fn = func(c *CPU) *Fault {
			c.Regs[isa.PC] = end
			return inner(c)
		}
	}
	return fn
}

// compileDispatch is the universal tier: advance PC as Step would, then run
// the bound handler or the exec switch. Correct for any cacheable
// instruction; the specialized tiers below exist only for speed.
func compileDispatch(st *jit.Step) func(*CPU) *Fault {
	addr, size, h := st.Addr, st.Size, st.H
	end := addr + size
	in := st.In // heap copy owned by the closure; never written through
	if st.Kind == jit.KindPure {
		// Register-only shape: cannot fault — skip the PC store (the
		// NeedPC wrapper in compileStep re-materializes it for the rare
		// pure step that observes PC).
		return func(c *CPU) *Fault {
			return c.dispatch(addr, size, &in, h)
		}
	}
	return func(c *CPU) *Fault {
		c.Regs[isa.PC] = end
		return c.dispatch(addr, size, &in, h)
	}
}

// compileJump binds a format-III branch with both targets folded. Taken and
// fall-through cost the same 2 cycles on this ISA, so the accounting stays
// in the shared per-step path.
func compileJump(st *jit.Step) func(*CPU) *Fault {
	taken, fall := st.Taken, st.Fall
	switch st.In.Op {
	case isa.JMP:
		return func(c *CPU) *Fault { c.Regs[isa.PC] = taken; return nil }
	case isa.JNE:
		return func(c *CPU) *Fault {
			if c.Regs[isa.SR]&isa.FlagZ == 0 {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	case isa.JEQ:
		return func(c *CPU) *Fault {
			if c.Regs[isa.SR]&isa.FlagZ != 0 {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	case isa.JNC:
		return func(c *CPU) *Fault {
			if c.Regs[isa.SR]&isa.FlagC == 0 {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	case isa.JC:
		return func(c *CPU) *Fault {
			if c.Regs[isa.SR]&isa.FlagC != 0 {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	case isa.JN:
		return func(c *CPU) *Fault {
			if c.Regs[isa.SR]&isa.FlagN != 0 {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	case isa.JGE:
		return func(c *CPU) *Fault {
			sr := c.Regs[isa.SR]
			if (sr&isa.FlagN != 0) == (sr&isa.FlagV != 0) {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	case isa.JL:
		return func(c *CPU) *Fault {
			sr := c.Regs[isa.SR]
			if (sr&isa.FlagN != 0) != (sr&isa.FlagV != 0) {
				c.Regs[isa.PC] = taken
			} else {
				c.Regs[isa.PC] = fall
			}
			return nil
		}
	}
	return nil // unreachable: classify only marks KindJump for format III
}

// compileElidedALU binds the flagless variant of a pure register/immediate
// ALU step whose flag writes the liveness pass proved dead. The data result
// is computed exactly as addCore/logicFlags would (SUB/SUBC via the same
// d + ^s + carry identity); only the SR store is omitted.
func compileElidedALU(st *jit.Step) func(*CPU) *Fault {
	in := &st.In
	op, byteOp := in.Op, in.Byte
	sreg, dreg := in.Src.Reg, in.Dst.Reg
	imm := in.Src.Mode == isa.ModeImmediate
	k := in.Src.X
	if byteOp {
		k &= 0xFF
	}
	clearLow := dreg == isa.PC || dreg == isa.SP
	return func(c *CPU) *Fault {
		s := k
		if !imm {
			s = c.Regs[sreg]
			if byteOp {
				s &= 0xFF
			}
		}
		d := c.Regs[dreg]
		if byteOp {
			d &= 0xFF
		}
		var r uint16
		switch op {
		case isa.ADD:
			r = d + s
		case isa.ADDC:
			r = d + s + c.Regs[isa.SR]&isa.FlagC // FlagC is bit 0
		case isa.SUB:
			r = d - s
		case isa.SUBC:
			r = d + ^s + c.Regs[isa.SR]&isa.FlagC
		case isa.XOR:
			r = d ^ s
		case isa.AND:
			r = d & s
		}
		if byteOp {
			r &= 0xFF
		}
		if clearLow {
			r &^= 1
		}
		c.Regs[dreg] = r
		return nil
	}
}

// compileMOV binds the specialized MOV tiers: constant-to-register,
// register-to-register, and the folded-address load/store shapes produced by
// the constant-address pass. Returns nil when the shape is not specialized
// (the dispatch tier handles it).
func compileMOV(st *jit.Step) func(*CPU) *Fault {
	in := &st.In
	byteOp := in.Byte
	pc, end := st.Addr, st.Addr+st.Size

	srcImm, srcReg, srcK := in.Src.Mode == isa.ModeImmediate, in.Src.Reg, in.Src.X
	if byteOp {
		srcK &= 0xFF
	}
	loadSrc := func(c *CPU) uint16 { // register/immediate source value
		if srcImm {
			return srcK
		}
		v := c.Regs[srcReg]
		if byteOp {
			v &= 0xFF
		}
		return v
	}
	regImmSrc := srcImm || in.Src.Mode == isa.ModeRegister

	switch {
	case in.Src.Mode == isa.ModeImmediate && in.Dst.Mode == isa.ModeRegister:
		// MOV #k, Rd: the stored value is fully computable at compile time.
		v, dreg := in.Src.X, in.Dst.Reg
		if byteOp {
			v &= 0xFF
		}
		if dreg == isa.PC || dreg == isa.SP {
			v &^= 1
		}
		return func(c *CPU) *Fault { c.Regs[dreg] = v; return nil }

	case in.Src.Mode == isa.ModeRegister && in.Dst.Mode == isa.ModeRegister:
		sreg, dreg := in.Src.Reg, in.Dst.Reg
		clearLow := dreg == isa.PC || dreg == isa.SP
		return func(c *CPU) *Fault {
			v := c.Regs[sreg]
			if byteOp {
				v &= 0xFF
			}
			if clearLow {
				v &^= 1
			}
			c.Regs[dreg] = v
			return nil
		}

	case st.SrcFold && in.Dst.Mode == isa.ModeRegister:
		// MOV &addr, Rd / MOV sym, Rd: checked load from a constant address.
		addr, dreg := st.SrcAddr, in.Dst.Reg
		clearLow := dreg == isa.PC || dreg == isa.SP
		return func(c *CPU) *Fault {
			c.Regs[isa.PC] = end
			v, viol := c.readMem(addr, byteOp)
			if viol != nil {
				return &Fault{PC: pc, Violation: viol}
			}
			if clearLow {
				v &^= 1
			}
			c.Regs[dreg] = v
			return nil
		}

	case st.DstFold && regImmSrc:
		// MOV Rs/#k, &addr: checked store to a constant address.
		addr := st.DstAddr
		return func(c *CPU) *Fault {
			c.Regs[isa.PC] = end
			v := loadSrc(c)
			var viol *mem.Violation
			if byteOp {
				viol = c.Bus.Write8(addr, uint8(v))
			} else {
				viol = c.Bus.Write16(addr, v)
			}
			if viol != nil {
				return &Fault{PC: pc, Violation: viol}
			}
			return nil
		}

	case st.SrcFold && st.DstFold:
		// MOV &a, &b: global-to-global copy, both addresses constant.
		saddr, daddr := st.SrcAddr, st.DstAddr
		return func(c *CPU) *Fault {
			c.Regs[isa.PC] = end
			v, viol := c.readMem(saddr, byteOp)
			if viol != nil {
				return &Fault{PC: pc, Violation: viol}
			}
			if byteOp {
				viol = c.Bus.Write8(daddr, uint8(v))
			} else {
				viol = c.Bus.Write16(daddr, v)
			}
			if viol != nil {
				return &Fault{PC: pc, Violation: viol}
			}
			return nil
		}
	}
	return nil
}
