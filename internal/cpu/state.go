package cpu

import (
	"sort"

	"amuletiso/internal/isa"
)

// State is the serializable execution state of a CPU: everything a machine
// carries between instructions that is not reconstructible from the firmware
// image. It covers the core (registers, clocks, halt latch), the debug
// surfaces (console buffer, pending interrupts), the per-device dirty-code
// set that shadows the shared predecode cache, and the two memory-mapped
// peripherals New wires up (Timer_A and the MPY32 multiplier), whose
// registers live outside bus pages and so outside mem.SnapshotData.
//
// The attached Program/JIT plan and fuseLimit are deliberately absent: the
// caches are derived from the firmware and reattached at load, and fuseLimit
// is only nonzero inside Run.
type State struct {
	Regs     [isa.NumRegs]uint16 `json:"regs"`
	Cycles   uint64              `json:"cycles"`
	Insns    uint64              `json:"insns"`
	Halted   bool                `json:"halted,omitempty"`
	ExitCode uint16              `json:"exitCode,omitempty"`

	Console    []byte   `json:"console,omitempty"`
	PendingIRQ []uint16 `json:"pendingIRQ,omitempty"`

	// DirtyCode lists the word-aligned text addresses overwritten on this
	// machine, sorted so encoding is deterministic.
	DirtyCode []uint16 `json:"dirtyCode,omitempty"`

	TimerCTL  uint16 `json:"timerCtl,omitempty"`
	TimerBias uint64 `json:"timerBias,omitempty"`

	MPYOp1    uint16 `json:"mpyOp1,omitempty"`
	MPYSigned bool   `json:"mpySigned,omitempty"`
	MPYRes    uint32 `json:"mpyRes,omitempty"`
}

// State captures the CPU's execution state for checkpointing.
func (c *CPU) State() State {
	s := State{
		Regs:      c.Regs,
		Cycles:    c.Cycles,
		Insns:     c.Insns,
		Halted:    c.Halted,
		ExitCode:  c.ExitCode,
		TimerCTL:  c.timer.ctl,
		TimerBias: c.timer.bias,
		MPYOp1:    c.mpy.op1,
		MPYSigned: c.mpy.signed,
		MPYRes:    c.mpy.res,
	}
	s.Console = append(s.Console, c.Console...)
	s.PendingIRQ = append(s.PendingIRQ, c.pendingIRQ...)
	if len(c.dirty) > 0 {
		s.DirtyCode = make([]uint16, 0, len(c.dirty))
		for a := range c.dirty {
			s.DirtyCode = append(s.DirtyCode, a)
		}
		sort.Slice(s.DirtyCode, func(i, j int) bool { return s.DirtyCode[i] < s.DirtyCode[j] })
	}
	return s
}

// SetState restores a previously captured State. The checkpoint's dirty set
// replaces whatever the restore process accumulated (writing checkpointed
// memory back through the bus trips the code watch), so the machine decodes
// exactly the words the original run would have.
func (c *CPU) SetState(s State) {
	c.Regs = s.Regs
	c.Cycles = s.Cycles
	c.Insns = s.Insns
	c.Halted = s.Halted
	c.ExitCode = s.ExitCode
	c.Console = append([]byte(nil), s.Console...)
	c.pendingIRQ = append([]uint16(nil), s.PendingIRQ...)
	c.dirty = nil
	if len(s.DirtyCode) > 0 {
		c.dirty = make(map[uint16]struct{}, len(s.DirtyCode))
		for _, a := range s.DirtyCode {
			c.dirty[a] = struct{}{}
		}
	}
	c.timer.ctl = s.TimerCTL
	c.timer.bias = s.TimerBias
	c.mpy.op1 = s.MPYOp1
	c.mpy.signed = s.MPYSigned
	c.mpy.res = s.MPYRes
}
