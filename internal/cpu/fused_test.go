package cpu

import (
	"fmt"
	"testing"

	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
)

// engineResult is the complete observable machine state after a run — the
// fingerprint the fused and unfused engines must agree on bit for bit.
type engineResult struct {
	stop    StopReason
	fault   string
	regs    [isa.NumRegs]uint16
	cycles  uint64
	insns   uint64
	reads   uint64
	writes  uint64
	fetches uint64
	halted  bool
	exit    uint16
	trace   string
}

// runEngine assembles instrs at 0x4400, runs them under Run(budget) with or
// without fusion (the decode cache is attached either way), and fingerprints
// the result. prep, if non-nil, adjusts the fresh machine before Run.
func runEngine(t *testing.T, fused bool, budget uint64, prep func(*CPU), instrs ...isa.Instr) engineResult {
	t.Helper()
	defer isa.SetFusion(true)
	isa.SetFusion(fused)
	bus := mem.NewBus()
	c := New(bus)
	addr := uint16(0x4400)
	for _, in := range instrs {
		for _, w := range isa.MustEncode(in) {
			bus.Poke16(addr, w)
			addr += 2
		}
	}
	c.SetPC(0x4400)
	c.SetSP(0x2400)
	c.UseProgram(isa.Predecode(bus, []isa.TextRange{{Lo: 0x4400, Hi: addr}}))
	trace := ""
	bus.OnAccess = func(a mem.Access) {
		trace += fmt.Sprintf("%v:%04X:%04X;", a.Kind, a.Addr, a.Value)
	}
	if prep != nil {
		prep(c)
	}
	stop, fault := c.Run(budget)
	r, w, f := bus.Stats()
	res := engineResult{
		stop: stop, regs: c.Regs, cycles: c.Cycles, insns: c.Insns,
		reads: r, writes: w, fetches: f, halted: c.Halted, exit: c.ExitCode,
		trace: trace,
	}
	if fault != nil {
		res.fault = fault.Error()
	}
	return res
}

// compareEngines runs the program under both engines and fails on any
// observable difference, including the full access trace.
func compareEngines(t *testing.T, budget uint64, prep func(*CPU), instrs ...isa.Instr) {
	t.Helper()
	plain := runEngine(t, false, budget, prep, instrs...)
	fused := runEngine(t, true, budget, prep, instrs...)
	if plain.trace != fused.trace {
		t.Errorf("budget %d: access traces diverge\n  plain: %s\n  fused: %s", budget, plain.trace, fused.trace)
		plain.trace, fused.trace = "", ""
	}
	plain.trace, fused.trace = "", ""
	if plain != fused {
		t.Errorf("budget %d: state diverged\n  plain: %+v\n  fused: %+v", budget, plain, fused)
	}
}

// loopProgram exercises every fusion pattern inside a loop: MOV#imm+ALU,
// a PUSH pair, and the CMP+Jcc loop condition, then halts via the debug
// port with R4 as the exit code.
var loopProgram = []isa.Instr{
	{Op: isa.MOV, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)}, // +ALU head
	{Op: isa.ADD, Src: isa.Imm(0), Dst: isa.RegOp(isa.R6)},
	// loop:
	{Op: isa.MOV, Src: isa.Imm(3), Dst: isa.RegOp(isa.R5)}, // fused pair
	{Op: isa.ADD, Src: isa.RegOp(isa.R5), Dst: isa.RegOp(isa.R4)},
	{Op: isa.PUSH, Src: isa.RegOp(isa.R4)}, // fused run
	{Op: isa.PUSH, Src: isa.RegOp(isa.R5)},
	{Op: isa.CMP, Src: isa.Imm(60), Dst: isa.RegOp(isa.R4)}, // fused pair
	{Op: isa.JL, Dst: isa.Operand{X: 0xFFF8}},               // -8 words, back to loop
	{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.Abs(PortHalt)},
}

// TestFusedBudgetSweep runs the loop under every cycle budget from 0 to past
// completion: each budget lands the stop at a different instruction — many
// of them between the halves of a fused group — and the fused engine must
// stop in exactly the same state the unfused one does (the watchdog-
// mid-group property the kernel relies on).
func TestFusedBudgetSweep(t *testing.T) {
	for budget := uint64(0); budget <= 700; budget++ {
		compareEngines(t, budget, nil, loopProgram...)
		if t.Failed() {
			t.Fatalf("first divergence at budget %d", budget)
		}
	}
	// Sanity: the program actually completes and fuses.
	res := runEngine(t, true, 1_000_000, nil, loopProgram...)
	if !res.halted || res.exit != 60 {
		t.Fatalf("loop did not complete: %+v", res)
	}
}

// TestJumpIntoFusedPair pins the mid-group landing rule: a branch targeting
// the SECOND half of a fused CMP+Jcc pair executes that half from its own
// cache slot, identically on both engines.
func TestJumpIntoFusedPair(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.MOV, Src: isa.Imm(5), Dst: isa.RegOp(isa.R4)},
		{Op: isa.JMP, Dst: isa.Operand{X: 1}},                  // over the CMP, onto the JEQ
		{Op: isa.CMP, Src: isa.Imm(0), Dst: isa.RegOp(isa.R4)}, // head of fused pair
		{Op: isa.JEQ, Dst: isa.Operand{X: 1}},                  // landed on directly; Z=0, falls through
		{Op: isa.MOV, Src: isa.Imm(0xAA), Dst: isa.RegOp(isa.R5)},
		{Op: isa.MOV, Src: isa.RegOp(isa.R5), Dst: isa.Abs(PortHalt)},
	}
	// The pair must actually fuse, or this test pins nothing.
	res := runEngine(t, true, 1_000_000, func(c *CPU) {
		if c.Program().FusedHeads() == 0 {
			t.Fatal("no fused heads in the probe program")
		}
	}, prog...)
	if !res.halted || res.exit != 0xAA {
		t.Fatalf("fall-through path not taken: %+v", res)
	}
	for budget := uint64(0); budget <= 40; budget++ {
		compareEngines(t, budget, nil, prog...)
	}
}

// TestInterruptBetweenFusedHalves enables GIE in the FIRST half of a fused
// pair while an interrupt is pending: the unfused engine services it between
// the two instructions, so the fused engine must split the group there.
func TestInterruptBetweenFusedHalves(t *testing.T) {
	const vec = 0xFFF2
	prog := []isa.Instr{
		{Op: isa.MOV, Src: isa.Imm(uint16(isa.FlagGIE)), Dst: isa.RegOp(isa.SR)}, // head; GIE on
		{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R6)},                   // second half
		{Op: isa.MOV, Src: isa.RegOp(isa.R6), Dst: isa.Abs(PortHalt)},
	}
	// ISR: bump R7, RETI. Placed right after the main program.
	isr := []isa.Instr{
		{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(isa.R7)},
		{Op: isa.RETI},
	}
	all := append(append([]isa.Instr{}, prog...), isr...)
	isrAddr := uint16(0x4400)
	for _, in := range prog {
		isrAddr += in.Size()
	}
	prep := func(c *CPU) {
		c.Bus.Poke16(vec, isrAddr)
		c.RequestInterrupt(vec)
	}
	for budget := uint64(0); budget <= 60; budget++ {
		compareEngines(t, budget, prep, all...)
	}
	res := runEngine(t, true, 1_000_000, prep, all...)
	if res.regs[isa.R7] != 1 {
		t.Fatalf("ISR did not run exactly once: R7 = %d", res.regs[isa.R7])
	}
	if !res.halted || res.exit != 1 {
		t.Fatalf("main line did not complete after the ISR: %+v", res)
	}
}

// TestSelfModifyBetweenFusedHalves makes the first half of a fused PUSH run
// overwrite the second half's bytes (SP aimed into the code): the unfused
// engine live-decodes the NEW instruction; the fused engine must notice the
// dirty span at the component boundary and do the same.
func TestSelfModifyBetweenFusedHalves(t *testing.T) {
	// Layout: PUSH R4 (2 bytes) at 0x4400, PUSH R5 at 0x4402, then halt.
	// SP = 0x4404 makes the first push write 0x4402, replacing PUSH R5 with
	// whatever R4 holds — we plant the encoding of MOV R4, R7.
	patch := isa.MustEncode(isa.Instr{Op: isa.MOV, Src: isa.RegOp(isa.R4), Dst: isa.RegOp(isa.R7)})
	if len(patch) != 1 {
		t.Fatalf("patch instruction must be one word, got %d", len(patch))
	}
	prog := []isa.Instr{
		{Op: isa.PUSH, Src: isa.RegOp(isa.R4)},
		{Op: isa.PUSH, Src: isa.RegOp(isa.R5)},
		{Op: isa.MOV, Src: isa.RegOp(isa.R7), Dst: isa.Abs(PortHalt)},
	}
	prep := func(c *CPU) {
		c.SetSP(0x4404)
		c.Regs[isa.R4] = patch[0]
	}
	for budget := uint64(0); budget <= 30; budget++ {
		compareEngines(t, budget, prep, prog...)
	}
	res := runEngine(t, true, 1_000_000, prep, prog...)
	if !res.halted || res.exit != patch[0] {
		t.Fatalf("overwritten instruction did not execute: %+v", res)
	}
}

// TestBareStepStaysSingleInstruction pins the Step contract: outside Run a
// fused program still retires exactly one instruction per Step call, so
// debuggers and existing step-lockstep tests keep their granularity.
func TestBareStepStaysSingleInstruction(t *testing.T) {
	defer isa.SetFusion(true)
	isa.SetFusion(true)
	c, _ := loadProgram(t, true, fetchProgram...)
	if c.Program().FusedHeads() == 0 {
		t.Fatal("fetchProgram should contain at least one fused head")
	}
	for i := range fetchProgram {
		if f := c.Step(); f != nil {
			t.Fatalf("step %d: %v", i, f)
		}
		if c.Insns != uint64(i+1) {
			t.Fatalf("after %d bare Steps: %d instructions retired", i+1, c.Insns)
		}
	}
}
