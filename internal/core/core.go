// Package core assembles the paper's contribution into a usable system and
// regenerates its evaluation: the hybrid MPU+compiler isolation pipeline
// (compile → analyze → instrument → place → run under the kernel), plus the
// measurement harnesses for Table 1, Figure 2 and Figure 3.
//
// The heavy lifting lives in the substrate packages (internal/cc emits the
// checks, internal/aft plans memory and gates, internal/mpu enforces
// segments, internal/kernel schedules); core is the composition root a
// downstream user programs against.
package core

import (
	"fmt"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/kernel"
)

// Mode re-exports the isolation models for the public API.
type Mode = cc.Mode

// The four memory models of the paper.
const (
	NoIsolation    = cc.ModeNoIsolation
	FeatureLimited = cc.ModeFeatureLimited
	SoftwareOnly   = cc.ModeSoftwareOnly
	MPU            = cc.ModeMPU
)

// Modes lists the models in the paper's column order.
var Modes = cc.Modes

// System is a built firmware plus a booted kernel: the deliverable a user
// of the library instantiates to run isolated applications.
type System struct {
	Mode     Mode
	Firmware *aft.Firmware
	Kernel   *kernel.Kernel
}

// NewSystem compiles the given applications under the mode and boots a
// kernel around the resulting firmware.
func NewSystem(list []apps.App, mode Mode) (*System, error) {
	srcs := make([]aft.AppSource, len(list))
	for i, a := range list {
		srcs[i] = a.AFT()
	}
	fw, err := aft.Build(srcs, mode)
	if err != nil {
		return nil, err
	}
	return &System{Mode: mode, Firmware: fw, Kernel: kernel.New(fw)}, nil
}

// RunFor advances the system by the given amount of virtual wear time.
func (s *System) RunFor(ms uint64) int {
	return s.Kernel.RunUntil(s.Kernel.NowMS + ms)
}

// App returns the kernel state of the i-th application.
func (s *System) App(i int) *kernel.AppState { return s.Kernel.Apps[i] }

// measureEvent dispatches one event to app 0 and returns the active cycles
// it consumed (including gates and services, excluding queue idle time).
func measureEvent(k *kernel.Kernel, ev, arg uint16) (uint64, error) {
	k.Post(0, ev, arg, 0)
	before := k.CPU.Cycles
	if !k.Step() {
		return 0, fmt.Errorf("core: event not delivered")
	}
	if n := len(k.Faults); n > 0 {
		return 0, fmt.Errorf("core: fault during measurement: %s", k.Faults[n-1].Reason)
	}
	return k.CPU.Cycles - before, nil
}

// benchKernel builds a single-app kernel for a benchmark app under a mode
// and consumes its init event.
func benchKernel(app apps.App, mode Mode) (*kernel.Kernel, error) {
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, mode)
	if err != nil {
		return nil, err
	}
	k := kernel.New(fw)
	k.RunUntil(1) // deliver EvInit
	return k, nil
}
