package core

import (
	"fmt"
	"strings"

	"amuletiso/internal/apps"
)

// Table1Result reproduces the paper's Table 1: average cycle counts of the
// two primitive operations that incur memory-protection overhead, per
// memory model.
type Table1Result struct {
	// MemoryAccess is the average cycles of one checked array/pointer
	// write-after-read operation (the synthetic app's canonical op).
	MemoryAccess map[Mode]float64
	// ContextSwitch is the average cycles of one full API round trip
	// through a pointer-carrying gate (app -> OS -> app).
	ContextSwitch map[Mode]float64
	// YieldSwitch is the same through the cheapest gate (no pointer
	// validation) — an ablation showing the validation share.
	YieldSwitch map[Mode]float64
}

// table1Iters is the measurement batch size; the paper used 200 runs.
const table1Iters = 200

// Table1 measures the synthetic app under every mode. Per-operation cost
// uses the two-batch difference trick — cost(2N) - cost(N) divided by N —
// which cancels the dispatch veneer and loop-setup overhead exactly.
func Table1() (*Table1Result, error) {
	res := &Table1Result{
		MemoryAccess:  map[Mode]float64{},
		ContextSwitch: map[Mode]float64{},
		YieldSwitch:   map[Mode]float64{},
	}
	synth := apps.Synthetic()
	for _, mode := range Modes {
		k, err := benchKernel(synth, mode)
		if err != nil {
			return nil, err
		}
		perOp := func(ev uint16) (float64, error) {
			c1, err := measureEvent(k, ev, table1Iters)
			if err != nil {
				return 0, err
			}
			c2, err := measureEvent(k, ev, 2*table1Iters)
			if err != nil {
				return 0, err
			}
			return float64(c2-c1) / table1Iters, nil
		}
		mem, err := perOp(apps.EvMemOps)
		if err != nil {
			return nil, fmt.Errorf("table1 %v mem: %w", mode, err)
		}
		// The canonical op reads and writes one slot: two checked accesses
		// per loop iteration, so halve to get the per-access figure.
		mem /= 2
		gate, err := perOp(apps.EvGateOps)
		if err != nil {
			return nil, fmt.Errorf("table1 %v gate: %w", mode, err)
		}
		yld, err := perOp(apps.EvYieldOps)
		if err != nil {
			return nil, fmt.Errorf("table1 %v yield: %w", mode, err)
		}
		res.MemoryAccess[mode] = mem
		res.ContextSwitch[mode] = gate
		res.YieldSwitch[mode] = yld
	}
	return res, nil
}

// PaperTable1 holds the published values for side-by-side reporting.
var PaperTable1 = struct {
	MemoryAccess  map[Mode]float64
	ContextSwitch map[Mode]float64
}{
	MemoryAccess:  map[Mode]float64{NoIsolation: 23, FeatureLimited: 41, MPU: 29, SoftwareOnly: 32},
	ContextSwitch: map[Mode]float64{NoIsolation: 90, FeatureLimited: 90, MPU: 142, SoftwareOnly: 98},
}

// String renders the result next to the paper's numbers.
func (r *Table1Result) String() string {
	var sb strings.Builder
	order := []Mode{NoIsolation, FeatureLimited, MPU, SoftwareOnly}
	sb.WriteString("Table 1: average cycle count for basic memory isolation operations\n")
	sb.WriteString(fmt.Sprintf("%-24s", "Operation"))
	for _, m := range order {
		sb.WriteString(fmt.Sprintf("%16s", m))
	}
	sb.WriteString("\n")
	row := func(name string, vals map[Mode]float64, paper map[Mode]float64) {
		sb.WriteString(fmt.Sprintf("%-24s", name))
		for _, m := range order {
			sb.WriteString(fmt.Sprintf("%16.1f", vals[m]))
		}
		sb.WriteString("\n")
		if paper != nil {
			sb.WriteString(fmt.Sprintf("%-24s", "  (paper)"))
			for _, m := range order {
				sb.WriteString(fmt.Sprintf("%16.0f", paper[m]))
			}
			sb.WriteString("\n")
		}
	}
	row("Memory Access", r.MemoryAccess, PaperTable1.MemoryAccess)
	row("Context Switch", r.ContextSwitch, PaperTable1.ContextSwitch)
	row("Yield Switch (ablation)", r.YieldSwitch, nil)
	return sb.String()
}
