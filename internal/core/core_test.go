package core

import (
	"strings"
	"testing"

	"amuletiso/internal/apps"
)

func TestNewSystemAndRun(t *testing.T) {
	list := []apps.App{apps.Suite()[0], apps.Suite()[1]}
	for _, mode := range Modes {
		sys, err := NewSystem(list, mode)
		if err != nil {
			t.Fatalf("[%v] %v", mode, err)
		}
		if n := sys.RunFor(2000); n == 0 {
			t.Fatalf("[%v] no events ran", mode)
		}
		if len(sys.Kernel.Faults) != 0 {
			t.Fatalf("[%v] faults: %v", mode, sys.Kernel.Faults)
		}
	}
}

func TestTable1RenderIncludesPaperRows(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"Memory Access", "Context Switch", "(paper)", "142"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Sanity: measured values are in a plausible band of the paper's.
	if r.MemoryAccess[NoIsolation] < 10 || r.MemoryAccess[NoIsolation] > 60 {
		t.Errorf("baseline memory access %.1f out of band", r.MemoryAccess[NoIsolation])
	}
	if r.ContextSwitch[MPU] < r.ContextSwitch[NoIsolation]+20 {
		t.Errorf("MPU switch uplift too small: %v", r.ContextSwitch)
	}
}

func TestFigure3SmallIterationCount(t *testing.T) {
	r, err := Figure3(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 10 {
		t.Fatal("iteration count not honored")
	}
	for _, b := range Figure3Benches {
		if r.BaseCycles[b] == 0 {
			t.Fatalf("%s: no baseline cycles", b)
		}
	}
	if !strings.Contains(r.String(), "Quicksort") {
		t.Error("render missing benchmark name")
	}
}

func TestFigure2SingleWindowRender(t *testing.T) {
	r, err := Figure2(30_000)
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, app := range apps.Suite() {
		if !strings.Contains(out, app.Title) {
			t.Errorf("render missing %s", app.Title)
		}
	}
	if r.MaxBatteryImpact() >= 0.5 {
		t.Errorf("battery impact %.3f%% violates the paper's claim", r.MaxBatteryImpact())
	}
}
