package core

import (
	"fmt"
	"strings"

	"amuletiso/internal/apps"
	"amuletiso/internal/cpu"
)

// Figure3Result reproduces the paper's Figure 3: percentage slowdown of
// each benchmark application under each isolation method, against the
// NoIsolation baseline. Timing uses the hardware timer (16-cycle
// precision), exactly as the paper's measurement did.
type Figure3Result struct {
	// Slowdown[bench][mode] is percent slowdown vs NoIsolation.
	Slowdown map[string]map[Mode]float64
	// BaseCycles[bench] is the NoIsolation total for the run.
	BaseCycles map[string]uint64
	Iterations int
}

// Figure3Benches names the three benchmark workloads in figure order.
var Figure3Benches = []string{"Activity Case 1", "Activity Case 2", "Quicksort"}

// figure3Spec maps a bench name to its app and trigger event.
func figure3Spec(name string) (apps.App, uint16) {
	switch name {
	case "Activity Case 1":
		return apps.Activity(), apps.EvCase1
	case "Activity Case 2":
		return apps.Activity(), apps.EvCase2
	default:
		return apps.Quicksort(), apps.EvSort
	}
}

// Figure3 runs every benchmark `iters` times under every mode (the paper
// used 200 iterations) and reports slowdowns.
func Figure3(iters int) (*Figure3Result, error) {
	if iters <= 0 {
		iters = 200
	}
	res := &Figure3Result{
		Slowdown:   map[string]map[Mode]float64{},
		BaseCycles: map[string]uint64{},
		Iterations: iters,
	}
	for _, bench := range Figure3Benches {
		app, ev := figure3Spec(bench)
		totals := map[Mode]uint64{}
		for _, mode := range Modes {
			k, err := benchKernel(app, mode)
			if err != nil {
				return nil, fmt.Errorf("figure3 %s/%v: %w", bench, mode, err)
			}
			var total uint64
			for i := 0; i < iters; i++ {
				// Measure with the hardware timer, as the paper did:
				// reset TAR, run one iteration, read TAR (x16 cycles).
				k.Bus.Poke16(cpu.TimerTAR, 0)
				t0 := k.Bus.Peek16(cpu.TimerTAR)
				if _, err := measureEvent(k, ev, uint16(i)); err != nil {
					return nil, fmt.Errorf("figure3 %s/%v iter %d: %w", bench, mode, i, err)
				}
				t1 := k.Bus.Peek16(cpu.TimerTAR)
				total += uint64(t1-t0) * cpu.TimerPrescale
			}
			totals[mode] = total
		}
		base := totals[NoIsolation]
		res.BaseCycles[bench] = base
		res.Slowdown[bench] = map[Mode]float64{}
		for _, mode := range Modes {
			if mode == NoIsolation {
				continue
			}
			res.Slowdown[bench][mode] = 100 * (float64(totals[mode]) - float64(base)) / float64(base)
		}
	}
	return res, nil
}

// String renders the figure as a table.
func (r *Figure3Result) String() string {
	var sb strings.Builder
	order := []Mode{FeatureLimited, MPU, SoftwareOnly}
	sb.WriteString(fmt.Sprintf("Figure 3: percentage slowdown vs NoIsolation (%d iterations, hardware-timer measured)\n", r.Iterations))
	sb.WriteString(fmt.Sprintf("%-18s", "Benchmark"))
	for _, m := range order {
		sb.WriteString(fmt.Sprintf("%16s", m))
	}
	sb.WriteString(fmt.Sprintf("%16s\n", "base cycles"))
	for _, bench := range Figure3Benches {
		sb.WriteString(fmt.Sprintf("%-18s", bench))
		for _, m := range order {
			sb.WriteString(fmt.Sprintf("%15.1f%%", r.Slowdown[bench][m]))
		}
		sb.WriteString(fmt.Sprintf("%16d\n", r.BaseCycles[bench]))
	}
	return sb.String()
}
