package core

import (
	"fmt"
	"strings"

	"amuletiso/internal/arp"
)

// Figure2Result reproduces the paper's Figure 2: weekly isolation overhead
// (billions of cycles) and battery-lifetime impact for the nine Amulet
// applications under the three isolation methods.
type Figure2Result struct {
	Overheads []*arp.Overhead
	SampleMS  uint64
}

// Figure2 profiles the whole suite with the ARP pipeline. sampleMS=0 uses
// the default 20-minute window (one full activity cycle of the wearer
// model).
func Figure2(sampleMS uint64) (*Figure2Result, error) {
	if sampleMS == 0 {
		sampleMS = arp.DefaultSampleMS
	}
	ovs, err := arp.MeasureSuite(sampleMS)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{Overheads: ovs, SampleMS: sampleMS}, nil
}

// MaxBatteryImpact returns the worst battery impact across all bars — the
// paper's headline claim is that this stays under 0.5%.
func (r *Figure2Result) MaxBatteryImpact() float64 {
	max := 0.0
	for _, o := range r.Overheads {
		if o.BatteryImpactPct > max {
			max = o.BatteryImpactPct
		}
	}
	return max
}

// String renders the figure as a table: one row per app, one column pair
// (billions of cycles / battery %) per isolation method.
func (r *Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf(
		"Figure 2: isolation overhead per week and battery impact (sample window %d min)\n",
		r.SampleMS/60000))
	sb.WriteString(fmt.Sprintf("%-15s", "Application"))
	for _, m := range arp.Figure2Modes {
		sb.WriteString(fmt.Sprintf("%22s", m.String()+" Gcyc/wk(%batt)"))
	}
	sb.WriteString("\n")
	byApp := map[string]map[Mode]*arp.Overhead{}
	var order []string
	for _, o := range r.Overheads {
		if byApp[o.Title] == nil {
			byApp[o.Title] = map[Mode]*arp.Overhead{}
			order = append(order, o.Title)
		}
		byApp[o.Title][o.Mode] = o
	}
	for _, title := range order {
		sb.WriteString(fmt.Sprintf("%-15s", title))
		for _, m := range arp.Figure2Modes {
			o := byApp[title][m]
			if o == nil {
				sb.WriteString(fmt.Sprintf("%22s", "-"))
				continue
			}
			sb.WriteString(fmt.Sprintf("%14.3f(%5.3f%%)", o.BillionsPerWeek, o.BatteryImpactPct))
		}
		sb.WriteString("\n")
	}
	sb.WriteString(fmt.Sprintf("max battery impact: %.3f%% (paper: < 0.5%% for all)\n", r.MaxBatteryImpact()))
	return sb.String()
}
