package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ShutdownTimeout bounds how long a Serve stop func waits for in-flight
// requests (a /metrics scrape mid-body, a pprof profile) before falling back
// to a hard close. Long-running daemons want scrapes to complete; nothing
// wants to hang a shutdown behind a stuck client.
const ShutdownTimeout = 2 * time.Second

// Handler returns an http.Handler exposing reg at /metrics and the standard
// pprof handlers at /debug/pprof/ — the observability surface as a mountable
// unit, so long-running servers (amuletfleetd) can serve it on the same mux
// as their own API instead of a second port.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Expose(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes reg at /metrics and the standard pprof handlers at
// /debug/pprof/ on addr, using a private mux (no global side effects). It
// returns the bound listener address — useful with a ":0" addr in tests —
// and a shutdown func. The server runs until stop is called or the process
// exits; stop drains in-flight requests for up to ShutdownTimeout before
// closing the remaining connections, so a scrape racing the shutdown still
// receives its complete body.
func Serve(addr string, reg *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { StopServer(srv) }, nil
}

// StopServer gracefully shuts down an http.Server: in-flight requests get
// ShutdownTimeout to complete, then the remaining connections are closed
// hard. Shared by Serve's stop func and the fleetd daemon's termination path.
func StopServer(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}
