package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve exposes reg at /metrics and the standard pprof handlers at
// /debug/pprof/ on addr, using a private mux (no global side effects). It
// returns the bound listener address — useful with a ":0" addr in tests —
// and a shutdown func. The server runs until stop is called or the process
// exits.
func Serve(addr string, reg *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Expose(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop := func() { _ = srv.Close() }
	return ln.Addr().String(), stop, nil
}
