package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Kind classifies a flight-recorder event.
type Kind uint8

// Flight-recorder event kinds. A and B in TraceEvent carry kind-specific
// payloads noted per constant.
const (
	KindEventPost    Kind = iota + 1 // A=event code, B=arg
	KindDispatch                     // A=event code, B=arg
	KindDispatchDone                 // A=event code
	KindSyscall                      // A=syscall number
	KindSyscallRet                   // A=syscall number, B=result
	KindGateCross                    // MPU reconfiguration (privilege-domain change)
	KindFault                        // A=FaultClass ordinal
	KindRestart                      // B=restart count
)

var kindNames = [...]string{
	KindEventPost:    "event-post",
	KindDispatch:     "dispatch",
	KindDispatchDone: "dispatch-done",
	KindSyscall:      "syscall",
	KindSyscallRet:   "syscall-ret",
	KindGateCross:    "gate-cross",
	KindFault:        "fault",
	KindRestart:      "restart",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TraceEvent is one cycle-stamped flight-recorder entry. It is deliberately
// 16 bytes: a 256-entry ring costs 4KiB per device.
type TraceEvent struct {
	Cycle uint64
	Kind  Kind
	App   int16 // app index, -1 for OS-level events
	A, B  uint16
}

// Recorder is a per-device flight recorder. With a positive capacity it is a
// fixed-size ring keeping the most recent events; with capacity <= 0 it
// appends without bound (full-run export for `amuletsim -trace`).
//
// A Recorder is single-goroutine like the kernel that owns it; it needs no
// locking.
type Recorder struct {
	ring []TraceEvent
	all  []TraceEvent // unbounded mode
	n    uint64       // total events ever recorded (ring write cursor mod len)
}

// NewRecorder returns a recorder with the given ring capacity, or an
// unbounded recorder when size <= 0.
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		return &Recorder{}
	}
	return &Recorder{ring: make([]TraceEvent, size)}
}

// Record appends one event.
func (r *Recorder) Record(cycle uint64, kind Kind, app int16, a, b uint16) {
	ev := TraceEvent{Cycle: cycle, Kind: kind, App: app, A: a, B: b}
	if r.ring == nil {
		r.all = append(r.all, ev)
		r.n++
		return
	}
	r.ring[r.n%uint64(len(r.ring))] = ev
	r.n++
}

// Len returns the total number of events ever recorded.
func (r *Recorder) Len() uint64 { return r.n }

// Events returns the recorded events in order, oldest first. For a ring that
// has wrapped, only the retained window is returned.
func (r *Recorder) Events() []TraceEvent {
	if r.ring == nil {
		return r.all
	}
	cap64 := uint64(len(r.ring))
	if r.n <= cap64 {
		out := make([]TraceEvent, r.n)
		copy(out, r.ring[:r.n])
		return out
	}
	out := make([]TraceEvent, cap64)
	start := r.n % cap64
	copy(out, r.ring[start:])
	copy(out[cap64-start:], r.ring[:start])
	return out
}

// DumpEvent is the JSON-friendly form of a TraceEvent, used in fault dumps
// embedded in fleet results.
type DumpEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	App   int16  `json:"app"`
	A     uint16 `json:"a,omitempty"`
	B     uint16 `json:"b,omitempty"`
}

// Dump returns the last (at most) n events as JSON-friendly records, oldest
// first — the post-mortem window around a fault.
func (r *Recorder) Dump(n int) []DumpEvent {
	evs := r.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := make([]DumpEvent, len(evs))
	for i, ev := range evs {
		out[i] = DumpEvent{Cycle: ev.Cycle, Kind: ev.Kind.String(), App: ev.App, A: ev.A, B: ev.B}
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// cyclesPerMicro converts simulated cycles to trace microseconds at the
// simulated 8MHz clock, so trace timestamps read as device real time.
const cyclesPerMicro = 8.0

// WriteChromeTrace renders a full event stream as Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto). Dispatch and syscall windows
// become duration (B/E) spans on a per-app track; posts, gate crossings,
// faults and restarts become instants.
func WriteChromeTrace(w io.Writer, evs []TraceEvent) error {
	out := make([]chromeEvent, 0, len(evs))
	tid := func(app int16) int { return int(app) + 1 } // OS (-1) on track 0
	for _, ev := range evs {
		ce := chromeEvent{
			Ts:  float64(ev.Cycle) / cyclesPerMicro,
			Pid: 1,
			Tid: tid(ev.App),
			Args: map[string]any{
				"cycle": ev.Cycle, "a": ev.A, "b": ev.B,
			},
		}
		switch ev.Kind {
		case KindDispatch:
			ce.Name, ce.Ph = fmt.Sprintf("dispatch ev=%d", ev.A), "B"
		case KindDispatchDone:
			ce.Name, ce.Ph = fmt.Sprintf("dispatch ev=%d", ev.A), "E"
		case KindSyscall:
			ce.Name, ce.Ph = fmt.Sprintf("sys %d", ev.A), "B"
		case KindSyscallRet:
			ce.Name, ce.Ph = fmt.Sprintf("sys %d", ev.A), "E"
		default:
			ce.Name, ce.Ph, ce.S = ev.Kind.String(), "i", "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out, "displayTimeUnit": "ms"})
}
