package obs

import "testing"

// TestQuantileNearestRankCeiling is the regression test for the rank-floor
// bug: uint64(q*total) truncated, so p50 over an odd sample count resolved
// one rank too low. Small exact histograms make the off-by-one observable.
func TestQuantileNearestRankCeiling(t *testing.T) {
	// Three samples in three distinct buckets: 10 (le=64), 200 (le=256),
	// 5000 (le=16384). Nearest-rank p50 of 3 samples is rank ceil(1.5) = 2.
	var h CycleHist
	h.Observe(10)
	h.Observe(200)
	h.Observe(5000)
	if q := h.Quantile(0.50); q != 256 {
		t.Fatalf("p50 over 3 samples = %d, want rank-2 bucket bound 256", q)
	}
	// rank ceil(0.9*3) = 3: the highest bucket.
	if q := h.Quantile(0.90); q != 16<<10 {
		t.Fatalf("p90 over 3 samples = %d, want rank-3 bucket bound 16384", q)
	}
	// Two samples: p50 is rank ceil(1.0) = 1 — the lower of the two.
	var h2 CycleHist
	h2.Observe(10)
	h2.Observe(5000)
	if q := h2.Quantile(0.50); q != 64 {
		t.Fatalf("p50 over 2 samples = %d, want rank-1 bucket bound 64", q)
	}
	// Exact-percentage boundary: p90 of 10 samples is rank 9 exactly (the
	// float product 0.9*10 must not round past it).
	var h3 CycleHist
	for i := 0; i < 9; i++ {
		h3.Observe(10)
	}
	h3.Observe(5000)
	if q := h3.Quantile(0.90); q != 64 {
		t.Fatalf("p90 over 10 samples = %d, want rank-9 bucket bound 64", q)
	}
	if q := h3.Quantile(0.91); q != 16<<10 {
		t.Fatalf("p91 over 10 samples = %d, want rank-10 bucket bound 16384", q)
	}
}

// TestBucketForEdges locks the binary-search bucket lookup at every boundary:
// v == bound lands in that bucket, v == bound+1 in the next, v == 0 in the
// first, v past the last bound in +Inf.
func TestBucketForEdges(t *testing.T) {
	if got := bucketFor(0); got != 0 {
		t.Fatalf("bucketFor(0) = %d, want 0", got)
	}
	for i, bound := range CycleBounds {
		if got := bucketFor(bound); got != i {
			t.Fatalf("bucketFor(%d) = %d, want bucket %d (v == bound is inclusive)", bound, got, i)
		}
		if got := bucketFor(bound + 1); got != i+1 {
			t.Fatalf("bucketFor(%d) = %d, want bucket %d", bound+1, got, i+1)
		}
	}
	last := CycleBounds[len(CycleBounds)-1]
	for _, v := range []uint64{last + 1, 1 << 40, ^uint64(0)} {
		if got := bucketFor(v); got != len(CycleBounds) {
			t.Fatalf("bucketFor(%d) = %d, want +Inf bucket %d", v, got, len(CycleBounds))
		}
	}
}

// TestBucketForMatchesLinearScan cross-checks the binary search against the
// linear scan it replaced, over an exhaustive sweep of interesting values.
func TestBucketForMatchesLinearScan(t *testing.T) {
	linear := func(v uint64) int {
		i := 0
		for i < len(CycleBounds) && v > CycleBounds[i] {
			i++
		}
		return i
	}
	var vals []uint64
	for v := uint64(0); v < 2048; v++ {
		vals = append(vals, v)
	}
	for _, b := range CycleBounds {
		vals = append(vals, b-1, b, b+1)
	}
	vals = append(vals, 1<<32, ^uint64(0))
	for _, v := range vals {
		if got, want := bucketFor(v), linear(v); got != want {
			t.Fatalf("bucketFor(%d) = %d, linear oracle says %d", v, got, want)
		}
	}
}
