package obs

import "math"

// CycleHist is a fixed-bucket histogram over the simulated cycle domain. It
// is the one observability structure allowed inside fleet reports: cycle
// counts are a pure function of the simulation, so per-device hists and their
// merge are byte-identical at any worker count, batching mode, or tracing
// setting.
//
// It is plain data with value semantics — no atomics, no pointers — so a
// DeviceResult embedding one stays trivially copyable and JSON-stable.
type CycleHist struct {
	// Counts[i] counts observations v with v <= CycleBounds[i] (and greater
	// than the previous bound); the last bucket is +Inf.
	Counts [len(CycleBounds) + 1]uint64 `json:"counts"`
	Sum    uint64                       `json:"sum"`
	Max    uint64                       `json:"max"`
}

// CycleBounds are the bucket upper bounds in simulated cycles. At the
// simulated 8MHz clock they span 8µs to 8s: the low buckets resolve
// same-millisecond dispatch backlog (one handler is tens of thousands of
// cycles), the high ones catch starvation behind watchdog-scale stalls.
var CycleBounds = [...]uint64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Observe records one latency sample. It runs once per delivered event on
// the dispatch hot path, so the bucket lookup is a binary search rather than
// a linear scan over the bounds.
func (h *CycleHist) Observe(v uint64) {
	h.Counts[bucketFor(v)]++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// bucketFor returns the index of the bucket holding v: the first bound with
// v <= bound, or the +Inf bucket past the last bound. Lower-bound binary
// search, equivalent to the linear scan the tests keep as an oracle.
func bucketFor(v uint64) int {
	lo, hi := 0, len(CycleBounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > CycleBounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Merge folds other into h. Merging is commutative and associative, so the
// fleet-level merge order cannot affect the result.
func (h *CycleHist) Merge(other *CycleHist) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Count returns the total number of observations.
func (h *CycleHist) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) by
// nearest-rank over the buckets: the bound of the bucket containing the
// rank'th observation, or Max for the +Inf bucket. Returns 0 for an empty
// histogram. Deterministic: a pure function of the counts.
func (h *CycleHist) Quantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	// Nearest-rank wants the ceiling: p50 over 3 samples is rank 2, not the
	// rank 1 a truncating conversion used to give.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(CycleBounds) {
				return CycleBounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}
