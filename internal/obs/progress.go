package obs

import (
	"fmt"
	"io"
	"time"
)

// StartProgress emits line() to w every interval until the returned stop
// func is called. CLIs use it for the periodic devices-done / instr-per-sec
// line on stderr during long fleet runs.
func StartProgress(w io.Writer, every time.Duration, line func() string) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, line())
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
		}
	}
}

// Rate renders a per-second rate from a delta over an interval, with SI-ish
// scaling for readability (e.g. "12.3M/s").
func Rate(delta uint64, interval time.Duration) string {
	if interval <= 0 {
		return "0/s"
	}
	r := float64(delta) / interval.Seconds()
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.1fG/s", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.1fM/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk/s", r/1e3)
	}
	return fmt.Sprintf("%.0f/s", r)
}
