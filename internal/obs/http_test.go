package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerMountable asserts the observability surface works as a plain
// http.Handler mounted under another server's mux — the fleetd use case.
func TestHandlerMountable(t *testing.T) {
	r := NewRegistry()
	r.Counter("mounted_total", "").Add(3)
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "jobs")
	})
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/pprof/", Handler(r))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	for path, want := range map[string]string{
		"/jobs":    "jobs",
		"/metrics": "mounted_total 3",
	} {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), want) {
			t.Errorf("%s: body %q missing %q", path, body, want)
		}
	}
}

// TestStopServerDrainsInFlightRequests is the graceful-shutdown contract:
// a request already being served when stop is called must receive its
// complete body instead of being cut off mid-response (the old srv.Close
// behavior this replaces).
func TestStopServerDrainsInFlightRequests(t *testing.T) {
	const body = "complete-response-body"
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		_, _ = io.WriteString(w, body)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()

	var (
		got     []byte
		getErr  error
		getDone sync.WaitGroup
	)
	getDone.Add(1)
	go func() {
		defer getDone.Done()
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			getErr = err
			return
		}
		defer resp.Body.Close()
		got, getErr = io.ReadAll(resp.Body)
	}()

	<-inHandler // the request is in flight
	stopped := make(chan struct{})
	go func() { StopServer(srv); close(stopped) }()
	// Give Shutdown a beat to start draining, then let the handler finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	<-stopped
	getDone.Wait()
	if getErr != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", getErr)
	}
	if string(got) != body {
		t.Fatalf("in-flight request got %q, want %q", got, body)
	}
	// New connections must be refused after shutdown completes.
	if _, err := http.Get("http://" + ln.Addr().String() + "/slow"); err == nil {
		t.Fatal("server accepted a request after StopServer returned")
	}
}
