package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. A no-op when metrics are disabled.
func (c *Counter) Add(n uint64) {
	if metricsOff.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. A no-op when metrics are disabled.
func (g *Gauge) Set(v int64) {
	if metricsOff.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds n (may be negative). A no-op when metrics are disabled.
func (g *Gauge) Add(n int64) {
	if metricsOff.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a counter family partitioned by one label. Children are
// created on first use and live forever (label cardinality here is tiny and
// closed: fault classes, isolation modes).
type CounterVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

// With returns the child counter for the label value, creating it if needed.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

// Value returns the child's current count without creating it.
func (v *CounterVec) Value(value string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c.Value()
	}
	return 0
}

// Total sums all children.
func (v *CounterVec) Total() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t uint64
	for _, c := range v.kids {
		t += c.Value()
	}
	return t
}

// Histogram is a fixed-bucket cumulative histogram with atomic buckets, for
// process-level wall-domain observations (e.g. device run durations). For
// deterministic cycle-domain data that feeds reports, use CycleHist instead.
type Histogram struct {
	bounds []uint64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64
	sum    atomic.Uint64
}

// Observe records v. A no-op when metrics are disabled.
func (h *Histogram) Observe(v uint64) {
	if metricsOff.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// metric is one registered family.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	v    *CounterVec
	h    *Histogram
}

// Registry holds metric families and renders them in Prometheus text format.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
}

// Default is the process-wide registry every instrumented package uses.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) get(name, help string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := mk()
	m.name, m.help = name, help
	r.byName[name] = m
	return m
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, func() *metric { return &metric{g: &Gauge{}} }).g
}

// CounterVec registers (or returns the existing) labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.get(name, help, func() *metric {
		return &metric{v: &CounterVec{label: label, kids: map[string]*Counter{}}}
	}).v
}

// Histogram registers (or returns the existing) histogram with the given
// ascending upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, bounds []uint64) *Histogram {
	return r.get(name, help, func() *metric {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Uint64, len(bounds)+1)
		return &metric{h: h}
	}).h
}

// Lookup returns the counter registered under name, or nil. CLIs use it to
// print summary lines without re-declaring help strings.
func (r *Registry) Lookup(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.c
	}
	return nil
}

// LookupVec returns the counter family registered under name, or nil.
func (r *Registry) LookupVec(name string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.v
	}
	return nil
}

// Expose writes every family in Prometheus text exposition format, sorted by
// name for stable output.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	metrics := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		metrics = append(metrics, r.byName[n])
	}
	r.mu.Unlock()

	for _, m := range metrics {
		typ := "counter"
		if m.g != nil {
			typ = "gauge"
		} else if m.h != nil {
			typ = "histogram"
		}
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
			return err
		}
		switch {
		case m.c != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value()); err != nil {
				return err
			}
		case m.g != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value()); err != nil {
				return err
			}
		case m.v != nil:
			m.v.mu.Lock()
			vals := make([]string, 0, len(m.v.kids))
			for val := range m.v.kids {
				vals = append(vals, val)
			}
			sort.Strings(vals)
			kids := make([]uint64, len(vals))
			for i, val := range vals {
				kids[i] = m.v.kids[val].Value()
			}
			label := m.v.label
			m.v.mu.Unlock()
			for i, val := range vals {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, label, val, kids[i]); err != nil {
					return err
				}
			}
		case m.h != nil:
			var cum uint64
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				le := "+Inf"
				if i < len(m.h.bounds) {
					le = fmt.Sprintf("%d", m.h.bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n", m.name, m.h.sum.Load()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.name, cum); err != nil {
				return err
			}
		}
	}
	return nil
}
