package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "ignored"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestMetricsDisabled(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("d_total", "")
	SetMetrics(false)
	c.Inc()
	SetMetrics(true)
	if c.Value() != 0 {
		t.Fatalf("counter advanced to %d while metrics were off", c.Value())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("counter = %d after re-enable, want 1", c.Value())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("faults_total", "faults by class", "class")
	v.With("mpu").Add(3)
	v.With("gate").Inc()
	if v.Value("mpu") != 3 || v.Value("gate") != 1 || v.Value("absent") != 0 {
		t.Fatalf("vec values wrong: mpu=%d gate=%d", v.Value("mpu"), v.Value("gate"))
	}
	if v.Total() != 4 {
		t.Fatalf("vec total = %d, want 4", v.Total())
	}
}

func TestExposeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(2)
	r.Gauge("a_gauge", "").Set(-3)
	v := r.CounterVec("z_total", "", "mode")
	v.With("mpu").Inc()
	v.With("none").Add(2)
	h := r.Histogram("h_lat", "", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var sb strings.Builder
	if err := r.Expose(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge -3\n",
		"# HELP b_total bees\n# TYPE b_total counter\nb_total 2\n",
		`z_total{mode="mpu"} 1`,
		`z_total{mode="none"} 2`,
		`h_lat_bucket{le="10"} 1`,
		`h_lat_bucket{le="100"} 2`,
		`h_lat_bucket{le="+Inf"} 3`,
		"h_lat_sum 555",
		"h_lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted name order.
	if ai, bi := strings.Index(out, "a_gauge"), strings.Index(out, "b_total"); ai > bi {
		t.Error("exposition not sorted by family name")
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(uint64(i*10), KindDispatch, 0, uint16(i), 0)
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.A != uint16(i+2) {
			t.Fatalf("event %d has A=%d, want %d (oldest-first after wrap)", i, ev.A, i+2)
		}
	}
	d := r.Dump(2)
	if len(d) != 2 || d[1].A != 5 || d[1].Kind != "dispatch" {
		t.Fatalf("Dump(2) = %+v", d)
	}
}

func TestRecorderUnbounded(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 1000; i++ {
		r.Record(uint64(i), KindSyscall, 1, 0, 0)
	}
	if len(r.Events()) != 1000 {
		t.Fatalf("unbounded recorder retained %d events", len(r.Events()))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(0)
	r.Record(100, KindEventPost, -1, 2, 0)
	r.Record(800, KindDispatch, 0, 2, 0)
	r.Record(810, KindSyscall, 0, 3, 0)
	r.Record(900, KindSyscallRet, 0, 3, 1)
	r.Record(1600, KindDispatchDone, 0, 2, 0)
	r.Record(1700, KindFault, 0, 4, 0)

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, r.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("trace has %d events, want 6", len(doc.TraceEvents))
	}
	// 800 cycles at 8MHz = 100µs.
	if doc.TraceEvents[1].Ph != "B" || doc.TraceEvents[1].Ts != 100 {
		t.Fatalf("dispatch span wrong: %+v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[4].Ph != "E" {
		t.Fatalf("dispatch-done should close the span: %+v", doc.TraceEvents[4])
	}
	if doc.TraceEvents[0].Tid != 0 || doc.TraceEvents[1].Tid != 1 {
		t.Fatal("OS events should land on track 0, app 0 on track 1")
	}
}

func TestCycleHist(t *testing.T) {
	var h CycleHist
	for _, v := range []uint64{0, 64, 65, 100_000_000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Counts[0] != 2 { // 0 and 64 both <= 64
		t.Fatalf("first bucket = %d, want 2", h.Counts[0])
	}
	if h.Counts[len(CycleBounds)] != 1 {
		t.Fatal("overflow sample not in +Inf bucket")
	}
	if h.Max != 100_000_000 || h.Sum != 100_000_129 {
		t.Fatalf("max=%d sum=%d", h.Max, h.Sum)
	}

	var a, b CycleHist
	a.Observe(10)
	b.Observe(2000)
	b.Observe(100_000_000)
	a.Merge(&b)
	if a.Count() != 3 || a.Max != 100_000_000 {
		t.Fatalf("merge wrong: count=%d max=%d", a.Count(), a.Max)
	}
}

func TestCycleHistQuantile(t *testing.T) {
	var h CycleHist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket le=64
	}
	h.Observe(5000) // bucket le=16384
	if q := h.Quantile(0.50); q != 64 {
		t.Fatalf("p50 = %d, want 64", q)
	}
	if q := h.Quantile(0.99); q != 64 {
		t.Fatalf("p99 = %d, want 64", q)
	}
	if q := h.Quantile(1.0); q != 16<<10 {
		t.Fatalf("p100 = %d, want bucket bound 16384", q)
	}
	var inf CycleHist
	inf.Observe(1 << 30)
	if q := inf.Quantile(0.99); q != 1<<30 {
		t.Fatalf("+Inf bucket quantile should report Max, got %d", q)
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "").Add(9)
	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "served_total 9") {
		t.Fatalf("metrics endpoint missing series:\n%s", body)
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint returned %d", resp2.StatusCode)
	}
}

func TestStartProgress(t *testing.T) {
	pr, pw := io.Pipe()
	stop := StartProgress(pw, time.Millisecond, func() string { return "tick" })
	defer stop()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "tick" {
		t.Fatalf("progress line = %q", line)
	}
	stop()
	stop() // idempotent
}

func TestRate(t *testing.T) {
	if got := Rate(2_000_000, time.Second); got != "2.0M/s" {
		t.Fatalf("Rate = %q", got)
	}
	if got := Rate(500, time.Second); got != "500/s" {
		t.Fatalf("Rate = %q", got)
	}
	if got := Rate(10, 0); got != "0/s" {
		t.Fatalf("Rate with zero interval = %q", got)
	}
}
