// Package obs is the fleet-scale observability layer: a process-wide metrics
// registry with a Prometheus-text exposition endpoint, a per-device flight
// recorder of cycle-stamped trace events, and deterministic cycle-domain
// latency histograms.
//
// The package follows the repository's zero-cost-when-off discipline
// (`-nofuse`, `-nothread`, ...): metrics are atomic counters behind a single
// predictable branch, the flight recorder is a nil pointer check on the
// kernel hot path unless SetTracing armed it, and nothing in this package may
// ever feed a simulation result — fleet reports and torture campaigns stay
// byte-identical across the {obs, noobs} axis. The only observability data
// that reaches a report is the cycle-domain latency histogram, which is
// deterministic by construction (simulated cycles, never wall clock) and
// therefore always on, and flight-recorder dumps a scenario explicitly
// requested.
//
// obs depends on the standard library only, so every internal package may
// import it without cycles.
package obs

import (
	"os"
	"sync/atomic"
)

// metricsOff disables every counter/gauge/histogram mutation when set — the
// `-noobs` escape hatch. Exposition still works (values freeze).
var metricsOff atomic.Bool

// SetMetrics enables or disables metric recording process-wide.
func SetMetrics(on bool) { metricsOff.Store(!on) }

// MetricsEnabled reports whether metric mutations are recorded.
func MetricsEnabled() bool { return !metricsOff.Load() }

// tracingOn arms the flight recorder: kernels booted while it is set attach
// a ring recorder automatically. Like the fusion/threading switches it is a
// boot-time property — already-booted kernels keep whatever recorder they
// have.
var tracingOn atomic.Bool

// SetTracing arms or disarms automatic flight-recorder attachment for
// subsequently booted kernels.
func SetTracing(on bool) { tracingOn.Store(on) }

// TracingEnabled reports whether newly booted kernels attach a recorder.
func TracingEnabled() bool { return tracingOn.Load() }

// DefaultRing is the per-device flight-recorder capacity: enough to hold the
// last few dozen dispatches of context (gate crossings included) around a
// fault without measurable per-device memory cost at fleet scale.
const DefaultRing = 256

// init honors AMULET_OBS_TRACE=1, so test jobs (the CI race leg) can run an
// entire binary with tracing armed without threading a flag through every
// harness.
func init() {
	if os.Getenv("AMULET_OBS_TRACE") == "1" {
		tracingOn.Store(true)
	}
}

// Canonical metric names. Instrumented packages register under these names
// and CLIs look the same names up for progress lines and summary output, so
// the name is defined exactly once.
const (
	MetricDispatches    = "amulet_kernel_dispatches_total"
	MetricSyscalls      = "amulet_kernel_syscalls_total"
	MetricFaults        = "amulet_kernel_faults_total"
	MetricWatchdogTrips = "amulet_kernel_watchdog_trips_total"
	MetricRestarts      = "amulet_kernel_app_restarts_total"

	MetricFirmwareBuilds = "amulet_firmware_builds_total"
	MetricBuildCacheHits = "amulet_build_cache_hits_total"
	MetricTemplateBuilds = "amulet_boot_template_builds_total"
	MetricTemplateHits   = "amulet_boot_template_hits_total"

	MetricDevicesStarted   = "amulet_fleet_devices_started_total"
	MetricDevicesCompleted = "amulet_fleet_devices_completed_total"
	MetricInstrSimulated   = "amulet_fleet_instr_simulated_total"
	MetricWearMS           = "amulet_fleet_wear_ms_total"

	MetricJITBlocksCompiled = "amulet_jit_blocks_compiled"
	MetricJITStepsCompiled  = "amulet_jit_steps_compiled"
	MetricJITFlagsElided    = "amulet_jit_flag_stores_elided"
	MetricJITExtElided      = "amulet_jit_ext_words_elided"
	MetricJITAddrsFolded    = "amulet_jit_addrs_folded"
	MetricJITCompileNS      = "amulet_jit_compile_ns_total"
	MetricJITDeopts         = "amulet_jit_deopts_total"

	MetricCertDrops     = "amulet_mem_cert_drops_total"
	MetricWatchInval    = "amulet_mem_watch_invalidations_total"
	MetricPagesDirtied  = "amulet_mem_cow_pages_dirtied_total"
	MetricPagesRecycled = "amulet_mem_cow_pages_recycled_total"
	MetricTortureCase   = "amulet_torture_cases_total"

	MetricBrownouts       = "amulet_power_brownouts_total"
	MetricReboots         = "amulet_power_reboots_total"
	MetricChargePJ        = "amulet_power_charge_picojoules"
	MetricFirstBrownoutMS = "amulet_power_first_brownout_ms"
)
