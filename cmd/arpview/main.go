// Command arpview is the ARP-view analogue: it prints the Figure 2 data set
// — per-application weekly isolation overhead and battery-lifetime impact —
// for any subset of apps and isolation methods.
//
// Usage:
//
//	arpview [-sample minutes] [-app name]...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"amuletiso"
	"amuletiso/internal/arp"
)

type appList []string

func (a *appList) String() string     { return strings.Join(*a, ",") }
func (a *appList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	sample := flag.Int("sample", 20, "profiling window in minutes of virtual wear")
	var names appList
	flag.Var(&names, "app", "profile only this app (repeatable; default: whole suite)")
	flag.Parse()

	apps := amuletiso.Suite()
	if len(names) > 0 {
		apps = apps[:0]
		for _, n := range names {
			a, ok := amuletiso.AppByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "arpview: no app %q\n", n)
				os.Exit(1)
			}
			apps = append(apps, a)
		}
	}

	window := uint64(*sample) * 60 * 1000
	fmt.Printf("%-15s %-15s %14s %12s %12s\n",
		"Application", "Mode", "Gcycles/week", "battery %", "life -hrs")
	for _, app := range apps {
		for _, mode := range arp.Figure2Modes {
			o, err := amuletiso.MeasureApp(app, mode, window)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arpview:", err)
				os.Exit(1)
			}
			fmt.Printf("%-15s %-15s %14.3f %11.3f%% %12.2f\n",
				app.Title, mode.String(), o.BillionsPerWeek, o.BatteryImpactPct, o.LifetimeLossHours)
		}
	}
}
